(* Benchmark entry point.

   With no argument, every experiment of the paper's evaluation runs and
   prints its table/figure:

     dune exec bench/main.exe              # all experiments
     dune exec bench/main.exe -- table2    # one experiment
     dune exec bench/main.exe -- list      # name + one-line description

   An unknown experiment name lists what is available and exits 2. *)

module W = Flexcl_workloads.Workload
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Sysrun = Flexcl_simrtl.Sysrun

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure, measuring
   the cost of the computation that regenerates it. *)

let bechamel_tests () =
  let open Bechamel in
  let dev = Device.virtex7 in
  let w = List.find (fun w -> W.name w = "hotspot/hotspot") Flexcl_workloads.Rodinia.all in
  let analysis = Analysis.analyze (W.parse w) w.W.launch in
  let cfg =
    { Config.wg_size = 64; n_pe = 2; n_cu = 2; wi_pipeline = true;
      comm_mode = Config.Pipeline_mode }
  in
  let nn = List.find (fun w -> W.name w = "nn/nn") Flexcl_workloads.Rodinia.all in
  let nn_analysis = Analysis.analyze (W.parse nn) nn.W.launch in
  Test.make_grouped ~name:"flexcl"
    [
      (* Table 2 / PolyBench: one analytical estimate per design point *)
      Test.make ~name:"table2-model-estimate"
        (Staged.stage (fun () -> ignore (Model.estimate dev analysis cfg)));
      (* Figure 4: one simulator evaluation per design point *)
      Test.make ~name:"figure4-sysrun-point"
        (Staged.stage (fun () -> ignore (Sysrun.run dev nn_analysis cfg)));
      (* Robustness: estimate on the second platform *)
      Test.make ~name:"robustness-ku060-estimate"
        (Staged.stage (fun () -> ignore (Model.estimate Device.ku060 analysis cfg)));
      (* DSE columns: frontend + kernel analysis cost *)
      Test.make ~name:"dse-kernel-analysis"
        (Staged.stage (fun () -> ignore (Analysis.analyze (W.parse nn) nn.W.launch)));
      Test.make ~name:"dse-parse-kernel"
        (Staged.stage (fun () -> ignore (W.parse w)));
    ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  print_endline "=== Bechamel micro-benchmarks (ns per run) ===";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-40s %12.0f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Experiment registry: one row per experiment, so the dispatch, the
   all-experiments run and the listing printed on a typo cannot drift
   apart. *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table2", "Rodinia accuracy & exploration cost (paper Table 2)",
     fun () -> ignore (Experiments.run_table2 ()));
    ("polybench", "PolyBench accuracy (paper Table 3)",
     fun () -> ignore (Experiments.run_polybench ()));
    ("figure4", "model-vs-simulator cycle scatter (paper Figure 4)",
     fun () -> ignore (Experiments.run_figure4 ()));
    ("robustness", "second-platform (KU060) accuracy",
     fun () -> ignore (Experiments.run_robustness ()));
    ("dse-speed", "exploration wall-clock per oracle",
     fun () -> ignore (Experiments.run_dse_speed ()));
    ("dse-quality", "picked-vs-optimal design-point quality",
     fun () -> ignore (Experiments.run_dse_quality ()));
    ("dse-parallel", "parallel sweep engine speedup & pruning",
     fun () -> ignore (Experiments.run_dse_parallel ()));
    ("dse-specialize",
     "staged model vs full estimate per point (BENCH_dse_specialize.json)",
     fun () -> ignore (Experiments.run_dse_specialize ()));
    ("ablation", "model refinements ablated one at a time",
     fun () -> Experiments.run_ablation ());
    ("serve-load", "flexcl serve cold-vs-cached latency (BENCH_serve.json)",
     fun () -> ignore (Experiments.run_serve_load ()));
    ("trace-overhead", "explain-vs-estimate cost on a warm cache (BENCH_trace.json)",
     fun () -> ignore (Experiments.run_trace_overhead ()));
    ("bechamel", "micro-benchmarks (ns per run)", run_bechamel);
  ]

let list_experiments oc =
  List.iter
    (fun (name, doc, _) -> Printf.fprintf oc "  %-14s %s\n" name doc)
    experiments

let run_all () = List.iter (fun (_, _, run) -> run ()) experiments

let () =
  let t0 = Unix.gettimeofday () in
  (match Array.to_list Sys.argv with
  | _ :: "list" :: _ -> list_experiments stdout
  | _ :: name :: _ -> (
      match
        List.find_opt (fun (name', _, _) -> name' = name) experiments
      with
      | Some (_, _, run) -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; available experiments:\n"
            name;
          list_experiments stderr;
          exit 2)
  | _ -> run_all ());
  Printf.printf "total bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
