(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (§4). Each [run_*] function prints the same rows/series the
   paper reports; EXPERIMENTS.md records paper-vs-measured values. *)

module W = Flexcl_workloads.Workload
module Rodinia = Flexcl_workloads.Rodinia
module Polybench = Flexcl_workloads.Polybench
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Sysrun = Flexcl_simrtl.Sysrun
module Sdaccel = Flexcl_simrtl.Sdaccel_estimate
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module Launch = Flexcl_ir.Launch
module Stats = Flexcl_util.Stats
module Table = Flexcl_util.Table

let dev = Device.virtex7

(* base analyses are cached per workload *)
let analysis_cache : (string, Analysis.t) Hashtbl.t = Hashtbl.create 64

let analysis_of (w : W.t) =
  match Hashtbl.find_opt analysis_cache (W.name w) with
  | Some a -> a
  | None ->
      let a = Analysis.analyze (W.parse w) w.W.launch in
      Hashtbl.replace analysis_cache (W.name w) a;
      a

let subsample stride xs = List.filteri (fun i _ -> i mod stride = 0) xs

let space_of (w : W.t) =
  Space.default ~total_work_items:(Launch.n_work_items w.W.launch)

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Per-kernel accuracy measurement *)

type kernel_row = {
  name : string;
  n_designs : int;          (* feasible design points (the paper's #Designs) *)
  flexcl_err : float;       (* mean abs % error vs System Run *)
  sdaccel_err : float;      (* over the points SDAccel survives *)
  sdaccel_fail_pct : float;
  t_model : float;          (* seconds for the FULL design space, measured *)
  t_sdaccel : float;
  t_sysrun : float;         (* simulator seconds over the sampled points *)
  sampled : int;
}

let measure_kernel ?(device = dev) ?(stride = 6) (w : W.t) =
  let base = analysis_of w in
  let space = space_of w in
  let points = Space.feasible_points device base space in
  let n_designs = List.length points in
  (* FlexCL model over the FULL space (it is cheap; this is the paper's
     exploration-time column) *)
  let _, t_model =
    time_of (fun () ->
        List.iter
          (fun (c : Config.t) ->
            let a = Explore.analysis_for base c.Config.wg_size in
            ignore (Model.cycles device a c))
          points)
  in
  let _, t_sdaccel =
    time_of (fun () ->
        List.iter
          (fun (c : Config.t) ->
            let a = Explore.analysis_for base c.Config.wg_size in
            ignore (Sdaccel.estimate device a c))
          points)
  in
  (* accuracy over a deterministic subsample of the space *)
  let sample = subsample stride points in
  let t0 = Unix.gettimeofday () in
  let flexcl_errs, sdaccel_errs, sd_fail =
    List.fold_left
      (fun (fe, se, sf) (c : Config.t) ->
        let a = Explore.analysis_for base c.Config.wg_size in
        let truth = (Sysrun.run device a c).Sysrun.cycles in
        let m = Model.cycles device a c in
        let fe = Stats.abs_pct_error ~actual:truth ~predicted:m :: fe in
        match Sdaccel.estimate device a c with
        | Some sd -> (fe, Stats.abs_pct_error ~actual:truth ~predicted:sd :: se, sf)
        | None -> (fe, se, sf + 1))
      ([], [], 0) sample
  in
  let t_sysrun = Unix.gettimeofday () -. t0 in
  {
    name = W.name w;
    n_designs;
    flexcl_err = Stats.mean flexcl_errs;
    sdaccel_err = (if sdaccel_errs = [] then nan else Stats.mean sdaccel_errs);
    sdaccel_fail_pct = 100.0 *. float_of_int sd_fail /. float_of_int (List.length sample);
    t_model;
    t_sdaccel;
    t_sysrun;
    sampled = List.length sample;
  }

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let hours_per_synthesis = 0.75
(* The paper's System Run column is bitstream synthesis + board runs at
   roughly 45 minutes per design point; our substitute simulator is
   measured directly and the projected RTL-flow time is also printed so
   the >10,000x exploration-speed claim can be checked. *)

let run_table2 ?(stride = 6) () =
  print_endline "=== Table 2: Rodinia accuracy and exploration time ===";
  Printf.printf
    "(errors vs the cycle-level System-Run simulator; %d-point design\n\
     subsample per kernel; 'RTL proj.' projects %.2f h per design point)\n\n"
    stride hours_per_synthesis;
  let t = Table.create
      ~headers:
        [ "Benchmark/Kernel"; "#Designs"; "SDAccel err%"; "FlexCL err%";
          "SDAccel fail%"; "RTL proj. (hrs)"; "SysRun sim (s)"; "FlexCL (s)" ]
  in
  let rows = List.map (measure_kernel ~stride) Rodinia.all in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.name;
          string_of_int r.n_designs;
          (if Float.is_nan r.sdaccel_err then "-" else Table.fmt_float r.sdaccel_err);
          Table.fmt_float r.flexcl_err;
          Table.fmt_float r.sdaccel_fail_pct;
          Table.fmt_float (float_of_int r.n_designs *. hours_per_synthesis);
          Table.fmt_float ~decimals:2
            (r.t_sysrun /. float_of_int r.sampled *. float_of_int r.n_designs);
          Table.fmt_float ~decimals:2 r.t_model;
        ])
    rows;
  Table.add_separator t;
  let mean f = Stats.mean (List.map f rows) in
  Table.add_row t
    [
      "AVERAGE";
      Table.fmt_float ~decimals:0 (mean (fun r -> float_of_int r.n_designs));
      Table.fmt_float (Stats.mean (List.filter_map (fun r -> if Float.is_nan r.sdaccel_err then None else Some r.sdaccel_err) rows));
      Table.fmt_float (mean (fun r -> r.flexcl_err));
      Table.fmt_float (mean (fun r -> r.sdaccel_fail_pct));
      "";
      "";
      "";
    ];
  print_string (Table.render t);
  Printf.printf
    "\npaper: FlexCL avg 9.5%%, SDAccel 30.4-84.9%% with ~42%% failed runs,\n\
     System Run 47-182 hrs vs FlexCL seconds per kernel\n\n";
  rows

(* ------------------------------------------------------------------ *)
(* PolyBench accuracy (§4.2) *)

let run_polybench ?(stride = 6) () =
  print_endline "=== PolyBench accuracy (sec. 4.2) ===";
  let t =
    Table.create ~headers:[ "Kernel"; "#Designs"; "FlexCL err%"; "SDAccel err%" ]
  in
  let rows = List.map (measure_kernel ~stride) Polybench.all in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.name;
          string_of_int r.n_designs;
          Table.fmt_float r.flexcl_err;
          (if Float.is_nan r.sdaccel_err then "-" else Table.fmt_float r.sdaccel_err);
        ])
    rows;
  Table.add_separator t;
  Table.add_row t
    [ "AVERAGE"; ""; Table.fmt_float (Stats.mean (List.map (fun r -> r.flexcl_err) rows)) ];
  print_string (Table.render t);
  Printf.printf "\npaper: FlexCL average absolute error 8.7%% on PolyBench\n\n";
  rows

(* ------------------------------------------------------------------ *)
(* Figure 4: per-design-point scatter for hotspot3D and nn *)

let run_figure4 ?(stride = 4) () =
  print_endline "=== Figure 4: estimated vs actual per design point ===";
  let plot kernel_name =
    let w = List.find (fun w -> W.name w = kernel_name) Rodinia.all in
    let base = analysis_of w in
    let points = subsample stride (Space.feasible_points dev base (space_of w)) in
    Printf.printf "--- %s (%d design points) ---\n" kernel_name (List.length points);
    Printf.printf "%-6s %12s %12s %8s\n" "id" "actual" "flexcl" "err%";
    let pairs =
      List.mapi
        (fun i (c : Config.t) ->
          let a = Explore.analysis_for base c.Config.wg_size in
          let actual = (Sysrun.run dev a c).Sysrun.cycles in
          let est = Model.cycles dev a c in
          (i, actual, est))
        points
      |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
    in
    List.iteri
      (fun rank (_, actual, est) ->
        Printf.printf "%-6d %12.0f %12.0f %8.1f\n" rank actual est
          (Stats.abs_pct_error ~actual ~predicted:est))
      pairs;
    let corr = Stats.correlation (List.map (fun (_, a, e) -> (a, e)) pairs) in
    Printf.printf "correlation(actual, flexcl) = %.4f\n\n" corr;
    corr
  in
  let c1 = plot "hotspot3D/hotspot3D" in
  let c2 = plot "nn/nn" in
  print_endline
    "paper: the two series visually coincide across all configuration ids";
  (c1, c2)

(* ------------------------------------------------------------------ *)
(* Robustness: KU060 (§4.2) *)

let run_robustness ?(stride = 6) () =
  print_endline "=== Robustness: Kintex UltraScale KU060 ===";
  let t = Table.create ~headers:[ "Kernel"; "FlexCL err% (KU060)" ] in
  let rows =
    List.map
      (fun name ->
        let w = List.find (fun w -> W.name w = name) Rodinia.all in
        let r = measure_kernel ~device:Device.ku060 ~stride w in
        Table.add_row t [ r.name; Table.fmt_float r.flexcl_err ];
        r)
      [ "hotspot/hotspot"; "pathfinder/dynproc" ]
  in
  print_string (Table.render t);
  print_endline "\npaper: HotSpot 9.7%, pathfinder 13.6% on the KU060\n";
  rows

(* ------------------------------------------------------------------ *)
(* DSE speed (§4.3 / Table 2 time columns) *)

let run_dse_speed () =
  print_endline "=== Design-space exploration speed ===";
  let w = List.find (fun w -> W.name w = "hotspot/hotspot") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  let n = List.length (Space.feasible_points dev base space) in
  let _, t_flexcl =
    time_of (fun () -> ignore (Explore.exhaustive dev base space (Explore.model_oracle dev)))
  in
  let sim_points = subsample 8 (Space.feasible_points dev base space) in
  let _, t_sim_sample =
    time_of (fun () ->
        List.iter
          (fun (c : Config.t) ->
            ignore (Sysrun.run dev (Explore.analysis_for base c.Config.wg_size) c))
          sim_points)
  in
  let t_sim = t_sim_sample /. float_of_int (List.length sim_points) *. float_of_int n in
  let t_rtl = float_of_int n *. hours_per_synthesis *. 3600.0 in
  Printf.printf "design points explored         : %d\n" n;
  Printf.printf "FlexCL exhaustive exploration  : %8.2f s\n" t_flexcl;
  Printf.printf "cycle-level simulator (extrap.): %8.2f s   (%.0fx slower)\n" t_sim
    (t_sim /. t_flexcl);
  Printf.printf "projected RTL synthesis flow   : %8.0f s   (%.0fx slower)\n" t_rtl
    (t_rtl /. t_flexcl);
  print_endline "\npaper: >10,000x faster than System Run\n";
  (t_flexcl, t_sim, t_rtl)

(* ------------------------------------------------------------------ *)
(* Parallel sweep engine: sequential-vs-parallel speedup and pruning *)

let run_dse_parallel ?(domains = 4) () =
  let module Parsweep = Flexcl_dse.Parsweep in
  Printf.printf "=== Parallel DSE engine (hotspot3D, %d worker domains) ===\n"
    domains;
  Printf.printf "host offers %d recommended domain(s)\n\n"
    (Domain.recommended_domain_count ());
  let w = List.find (fun w -> W.name w = "hotspot3D/hotspot3D") Rodinia.all in
  let base = analysis_of w in
  let space = space_of w in
  let oracle = Explore.model_oracle dev in
  (* warm the per-wg analysis memo and the model's trace caches so the
     timed runs compare sweep cost, not first-touch analysis cost *)
  let warm = Parsweep.sweep ~num_domains:0 dev base space oracle in
  let seq, t_seq =
    time_of (fun () -> Parsweep.sweep ~num_domains:0 dev base space oracle)
  in
  let par, t_par =
    time_of (fun () -> Parsweep.sweep ~num_domains:domains dev base space oracle)
  in
  let identical = seq = par && warm = seq in
  Printf.printf "design points ranked           : %d\n" (List.length seq);
  Printf.printf "sequential sweep (0 domains)   : %8.4f s\n" t_seq;
  Printf.printf "parallel sweep  (%d domains)    : %8.4f s  (%.2fx)\n" domains
    t_par
    (t_seq /. t_par);
  Printf.printf "identical ranked results       : %s\n"
    (if identical then "yes (bit-for-bit)" else "NO - ENGINE BUG");
  (* best-mode: bound-based pruning skips full model evaluations *)
  let best_seq, t_best_seq =
    time_of (fun () -> Parsweep.best ~num_domains:0 dev base space oracle)
  in
  let best_pruned_seq, t_best_pruned_seq =
    time_of (fun () ->
        Parsweep.best ~num_domains:0
          ~bound:(Model.lower_bound dev)
          dev base space oracle)
  in
  let best_pruned, t_best_pruned =
    time_of (fun () ->
        Parsweep.best ~num_domains:domains
          ~bound:(Model.lower_bound dev)
          dev base space oracle)
  in
  let picked = function
    | Some (e : Parsweep.evaluated), _ ->
        Printf.sprintf "%s (%.0f cycles)" (Config.to_string e.Parsweep.config)
          e.Parsweep.cycles
    | None, _ -> "none"
  in
  let stats (_, (s : Parsweep.progress)) = s in
  Printf.printf "\nbest (no pruning, 0 domains)   : %8.4f s  -> %s\n" t_best_seq
    (picked best_seq);
  Printf.printf "best (pruned, 0 domains)       : %8.4f s  -> %s  (%.2fx)\n"
    t_best_pruned_seq (picked best_pruned_seq)
    (t_best_seq /. t_best_pruned_seq);
  Printf.printf "best (pruned, %d domains)       : %8.4f s  -> %s\n" domains
    t_best_pruned (picked best_pruned);
  Printf.printf "pruned points                  : %d of %d (%.0f%% skipped)\n"
    (stats best_pruned).Parsweep.pruned
    (stats best_pruned).Parsweep.total
    (100.0
    *. float_of_int (stats best_pruned).Parsweep.pruned
    /. float_of_int (max 1 (stats best_pruned).Parsweep.total));
  Printf.printf "best-mode speedup              : %.2fx\n"
    (t_best_seq /. t_best_pruned);
  let same_best =
    match (best_seq, best_pruned_seq, best_pruned) with
    | (Some a, _), (Some b, _), (Some c, _) -> a = b && b = c
    | (None, _), (None, _), (None, _) -> true
    | _ -> false
  in
  Printf.printf "pruned best equals exact best  : %s\n\n"
    (if same_best then "yes" else "NO - PRUNER BUG");
  (t_seq, t_par, t_best_seq, t_best_pruned, identical && same_best)

(* ------------------------------------------------------------------ *)
(* Staged specialization payoff (DESIGN.md §11): warm per-point cost of
   the closed-form [Model.specialized_estimate] tail against the full
   [Model.estimate] pipeline, plus end-to-end sweep time through both
   oracles. "Warm" is the steady state a sweep lives in: analyses
   memoized, schedules cached, specializations staged — what remains is
   exactly the per-point work the staging was built to shrink. Target:
   >= 5x per point. The rankings are also cross-checked bit-for-bit
   (the [test_specialize] differential contract, re-asserted here on
   the timed runs themselves). *)

let run_dse_specialize ?(iters = 40) ?(out_file = "BENCH_dse_specialize.json")
    () =
  let module Parsweep = Flexcl_dse.Parsweep in
  let module Json = Flexcl_util.Json in
  Printf.printf
    "=== Staged specialization: closed-form eval vs full estimate (%d \
     sweeps) ===\n"
    iters;
  let kernels =
    [ "hotspot/hotspot"; "hotspot3D/hotspot3D"; "backprop/layer";
      "lavaMD/lavaMD"; "gemm/gemm"; "mvt/mvt" ]
  in
  let rows =
    List.map
      (fun name ->
        let w =
          List.find (fun w -> W.name w = name) (Rodinia.all @ Polybench.all)
        in
        let base = analysis_of w in
        let space = space_of w in
        let points = Space.feasible_points dev base space in
        let n = List.length points in
        (* pair each point with its memoized analysis once: both timed
           loops then measure evaluation, not analysis lookup *)
        let paired =
          List.map
            (fun (c : Config.t) ->
              (Explore.analysis_for base c.Config.wg_size, c))
            points
        in
        (* warm both paths (schedule caches, pattern-count memos, staged
           specializations) before timing *)
        List.iter
          (fun (a, c) ->
            ignore (Model.cycles dev a c);
            ignore (Model.specialized_cycles (Explore.specialized_for dev a) c))
          paired;
        let (), t_unspec =
          time_of (fun () ->
              for _ = 1 to iters do
                List.iter (fun (a, c) -> ignore (Model.cycles dev a c)) paired
              done)
        in
        let (), t_spec =
          time_of (fun () ->
              for _ = 1 to iters do
                List.iter
                  (fun (a, c) ->
                    ignore
                      (Model.specialized_cycles (Explore.specialized_for dev a) c))
                  paired
              done)
        in
        let evals = float_of_int (n * iters) in
        let unspec_us = t_unspec /. evals *. 1e6 in
        let spec_us = t_spec /. evals *. 1e6 in
        (* the differential contract, re-checked on the benchmarked
           workloads: identical rankings, bit for bit *)
        let ranking_identical =
          Parsweep.sweep ~num_domains:0 dev base space
            (Explore.model_oracle dev)
          = Parsweep.sweep ~num_domains:0 dev base space
              (Explore.specialized_model_oracle dev)
        in
        if not ranking_identical then
          Printf.printf "!! %s: specialized ranking DIVERGES\n" name;
        (name, n, unspec_us, spec_us, t_unspec, t_spec, ranking_identical))
      kernels
  in
  let t =
    Table.create
      ~headers:
        [ "workload"; "points"; "estimate us/pt"; "specialized us/pt";
          "speedup"; "ranking" ]
  in
  List.iter
    (fun (name, n, unspec_us, spec_us, _, _, ok) ->
      Table.add_row t
        [
          name;
          string_of_int n;
          Printf.sprintf "%.2f" unspec_us;
          Printf.sprintf "%.2f" spec_us;
          Printf.sprintf "%.1fx" (unspec_us /. Float.max spec_us 1e-9);
          (if ok then "bit-identical" else "DIVERGES");
        ])
    rows;
  print_string (Table.render t);
  (* aggregate over total time so large spaces weigh proportionally *)
  let tot_unspec =
    List.fold_left (fun a (_, _, _, _, u, _, _) -> a +. u) 0.0 rows
  in
  let tot_spec =
    List.fold_left (fun a (_, _, _, _, _, s, _) -> a +. s) 0.0 rows
  in
  let speedup = tot_unspec /. Float.max tot_spec 1e-9 in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, ok) -> ok) rows
  in
  Printf.printf "warm per-point speedup : %.1fx %s\n" speedup
    (if speedup >= 5.0 then "(>= 5x target)" else "(BELOW 5x TARGET)");
  Printf.printf "rankings bit-identical : %s\n"
    (if all_identical then "yes (all workloads)" else "NO - STAGING BUG");
  let json =
    Json.Obj
      [
        ("experiment", Json.Str "dse-specialize");
        ("iters", Json.int iters);
        ("speedup_per_point", Json.Num speedup);
        ("target", Json.Num 5.0);
        ("within_target", Json.Bool (speedup >= 5.0));
        ("rankings_bit_identical", Json.Bool all_identical);
        ( "workloads",
          Json.Arr
            (List.map
               (fun (name, n, unspec_us, spec_us, _, _, ok) ->
                 Json.Obj
                   [
                     ("workload", Json.Str name);
                     ("points", Json.int n);
                     ("estimate_us_per_point", Json.Num unspec_us);
                     ("specialized_us_per_point", Json.Num spec_us);
                     ( "speedup",
                       Json.Num (unspec_us /. Float.max spec_us 1e-9) );
                     ("ranking_bit_identical", Json.Bool ok);
                   ])
               rows) );
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n\n" out_file;
  (speedup, all_identical)

(* ------------------------------------------------------------------ *)
(* DSE quality (§4.3): optimality of picked configs, gap, speedup *)

type dse_row = {
  kernel : string;
  flexcl_gap : float;     (* % above the true (sampled) optimum *)
  heuristic_gap : float;
  flexcl_optimal : bool;  (* within 0.5% of the sampled optimum *)
  heuristic_optimal : bool;
  speedup_vs_default : float;
}

let run_dse_quality ?(stride = 5) () =
  print_endline "=== Design-space exploration quality (PolyBench) ===";
  let t =
    Table.create
      ~headers:
        [ "Kernel"; "FlexCL gap%"; "Greedy[16] gap%"; "FlexCL opt?"; "Greedy opt?";
          "Speedup vs base" ]
  in
  let truth_cache = Hashtbl.create 64 in
  let rows =
    List.map
      (fun w ->
        let base = analysis_of w in
        let space = space_of w in
        let oracle = Explore.model_oracle dev in
        let picked = (Explore.best dev base space oracle).Explore.config in
        let greedy = (Heuristic.search dev base space oracle).Explore.config in
        let truth (c : Config.t) =
          match Hashtbl.find_opt truth_cache (W.name w, c) with
          | Some v -> v
          | None ->
              let v =
                (Sysrun.run dev (Explore.analysis_for base c.Config.wg_size) c)
                  .Sysrun.cycles
              in
              Hashtbl.replace truth_cache (W.name w, c) v;
              v
        in
        let sample =
          let pts = Space.feasible_points dev base space in
          let s = subsample stride pts in
          let s = if List.mem picked s then s else picked :: s in
          if List.mem greedy s then s else greedy :: s
        in
        let flexcl_gap = Explore.quality_vs_optimal ~picked ~truth ~all:sample in
        let heuristic_gap =
          Explore.quality_vs_optimal ~picked:greedy ~truth ~all:sample
        in
        let speedup = truth Config.default /. truth picked in
        let row =
          {
            kernel = W.name w;
            flexcl_gap;
            heuristic_gap;
            flexcl_optimal = flexcl_gap <= 0.5;
            heuristic_optimal = heuristic_gap <= 0.5;
            speedup_vs_default = speedup;
          }
        in
        Table.add_row t
          [
            row.kernel;
            Table.fmt_float row.flexcl_gap;
            Table.fmt_float row.heuristic_gap;
            (if row.flexcl_optimal then "yes" else "no");
            (if row.heuristic_optimal then "yes" else "no");
            Table.fmt_float row.speedup_vs_default ^ "x";
          ];
        row)
      Polybench.all
  in
  Table.add_separator t;
  let pct p = 100.0 *. float_of_int (List.length (List.filter p rows))
              /. float_of_int (List.length rows) in
  Table.add_row t
    [
      "SUMMARY";
      Table.fmt_float (Stats.mean (List.map (fun r -> r.flexcl_gap) rows));
      Table.fmt_float (Stats.mean (List.map (fun r -> r.heuristic_gap) rows));
      Table.fmt_float (pct (fun r -> r.flexcl_optimal)) ^ "%";
      Table.fmt_float (pct (fun r -> r.heuristic_optimal)) ^ "%";
      Table.fmt_float (Stats.geomean (List.map (fun r -> r.speedup_vs_default) rows))
      ^ "x geo";
    ];
  print_string (Table.render t);
  print_endline
    "\npaper: 96% of FlexCL's exhaustive picks optimal vs 12% for the greedy\n\
     heuristic of [16]; picks within 2.1% of optimal; 273x average speedup\n\
     over the unoptimized baseline\n";
  rows

(* ------------------------------------------------------------------ *)
(* Ablation: contribution of each DESIGN.md §4b refinement *)

let run_ablation ?(stride = 8) () =
  print_endline "=== Ablation: model refinements (DESIGN.md 4b) ===";
  let kernels =
    [ "backprop/layer"; "hotspot/hotspot"; "kmeans/center"; "cfd/memset";
      "gemm/gemm"; "mvt/mvt" ]
  in
  let variants =
    [
      ("full model", Model.default_options);
      ("no cross-WI coalescing",
       { Model.default_options with Model.cross_wi_coalescing = false });
      ("no warm classification",
       { Model.default_options with Model.warm_classification = false });
      ("no bus roofline",
       { Model.default_options with Model.bus_roofline = false });
      ("no multi-CU DRAM replay",
       { Model.default_options with Model.multi_cu_dram_replay = false });
    ]
  in
  let t =
    Table.create ~headers:("variant" :: kernels @ [ "mean" ])
  in
  let truth_cache = Hashtbl.create 256 in
  List.iter
    (fun (label, options) ->
      let errs =
        List.map
          (fun name ->
            let w =
              List.find (fun w -> W.name w = name) (Rodinia.all @ Polybench.all)
            in
            let base = analysis_of w in
            let pts =
              subsample stride (Space.feasible_points dev base (space_of w))
            in
            let es =
              List.map
                (fun (c : Config.t) ->
                  let a = Explore.analysis_for base c.Config.wg_size in
                  let truth =
                    match Hashtbl.find_opt truth_cache (name, c) with
                    | Some v -> v
                    | None ->
                        let v = (Sysrun.run dev a c).Sysrun.cycles in
                        Hashtbl.replace truth_cache (name, c) v;
                        v
                  in
                  let m = (Model.estimate ~options dev a c).Model.cycles in
                  Stats.abs_pct_error ~actual:truth ~predicted:m)
                pts
            in
            Stats.mean es)
          kernels
      in
      Table.add_row t
        (label
        :: List.map Table.fmt_float errs
        @ [ Table.fmt_float (Stats.mean errs) ]))
    variants;
  print_string (Table.render t);
  print_endline
    "\n(each refinement is justified when removing it raises the error)\n"

(* ------------------------------------------------------------------ *)
(* Serve load: the request-level cache against cold analysis cost *)

(* ------------------------------------------------------------------ *)
(* Trace overhead: [Model.explain] must stay a cheap add-on over
   [Model.estimate] (< 10% on a warm cache) or nobody turns it on. The
   first explain of a design point pays the extra region traversal that
   builds the tree (reported as "cold build"); after that the trace is
   memoized per design point, so the steady-state loops measure the
   serving pattern the cache exists for. *)

let run_trace_overhead ?(iters = 300) ?(out_file = "BENCH_trace.json") () =
  let module Trace = Flexcl_util.Trace in
  let module Json = Flexcl_util.Json in
  Printf.printf "=== Trace overhead: explain vs estimate (%d iters) ===\n"
    iters;
  let points =
    List.concat_map
      (fun (w : W.t) ->
        let wg = Launch.wg_size w.W.launch in
        List.map
          (fun mode ->
            ( w,
              { Config.wg_size = wg; n_pe = 2; n_cu = 2; wi_pipeline = true;
                comm_mode = mode } ))
          [ Config.Barrier_mode; Config.Pipeline_mode ])
      Rodinia.all
  in
  let rows =
    List.map
      (fun ((w : W.t), cfg) ->
        let a = analysis_of w in
        (* warm every memo table both paths share before timing; the
           first explain builds (and caches) the trace — its cost is the
           one-time surcharge a traced request pays *)
        let b = Model.estimate dev a cfg in
        let (_, tr), t_cold = time_of (fun () -> Model.explain dev a cfg) in
        (match Trace.check tr with
        | Ok () -> ()
        | Error e ->
            failwith
              (Printf.sprintf "conservation violated on %s: %s" (W.name w) e));
        if Float.abs (tr.Trace.cycles -. b.Model.cycles) > 1e-9 *. b.Model.cycles
        then
          failwith
            (Printf.sprintf "trace root diverges from estimate on %s"
               (W.name w));
        let (), t_est =
          time_of (fun () ->
              for _ = 1 to iters do
                ignore (Model.estimate dev a cfg)
              done)
        in
        let (), t_exp =
          time_of (fun () ->
              for _ = 1 to iters do
                ignore (Model.explain dev a cfg)
              done)
        in
        let est_us = t_est /. float_of_int iters *. 1e6 in
        let exp_us = t_exp /. float_of_int iters *. 1e6 in
        let overhead = (exp_us -. est_us) /. Float.max est_us 1e-9 in
        let mode =
          match cfg.Config.comm_mode with
          | Config.Barrier_mode -> "barrier"
          | Config.Pipeline_mode -> "pipeline"
        in
        (W.name w, mode, t_cold *. 1e6, est_us, exp_us, overhead))
      points
  in
  let t =
    Table.create
      ~headers:
        [ "workload"; "mode"; "cold build us"; "estimate us"; "explain us";
          "overhead" ]
  in
  List.iter
    (fun (name, mode, cold_us, est_us, exp_us, ov) ->
      Table.add_row t
        [ name; mode; Printf.sprintf "%.1f" cold_us;
          Printf.sprintf "%.1f" est_us; Printf.sprintf "%.1f" exp_us;
          Printf.sprintf "%+.1f%%" (ov *. 100.0) ])
    rows;
  print_string (Table.render t);
  (* aggregate over total time, not mean-of-ratios: tiny kernels with
     sub-microsecond estimates would otherwise dominate the verdict *)
  let tot_est = List.fold_left (fun a (_, _, _, e, _, _) -> a +. e) 0.0 rows in
  let tot_exp = List.fold_left (fun a (_, _, _, _, x, _) -> a +. x) 0.0 rows in
  let overall = (tot_exp -. tot_est) /. Float.max tot_est 1e-9 in
  Printf.printf "overall overhead       : %+.1f%% %s\n" (overall *. 100.0)
    (if overall < 0.10 then "(< 10% target)" else "(ABOVE 10% TARGET)");
  let json =
    Json.Obj
      [
        ("experiment", Json.Str "trace-overhead");
        ("iters", Json.int iters);
        ("overall_overhead", Json.Num overall);
        ("target", Json.Num 0.10);
        ("within_target", Json.Bool (overall < 0.10));
        ( "points",
          Json.Arr
            (List.map
               (fun (name, mode, cold_us, est_us, exp_us, ov) ->
                 Json.Obj
                   [
                     ("workload", Json.Str name);
                     ("mode", Json.Str mode);
                     ("cold_build_us", Json.Num cold_us);
                     ("estimate_us", Json.Num est_us);
                     ("explain_us", Json.Num exp_us);
                     ("overhead", Json.Num ov);
                   ])
               rows) );
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n\n" out_file;
  overall

let run_serve_load ?(requests = 100) ?(out_file = "BENCH_serve.json") () =
  let module Client = Flexcl_server.Client in
  let module Json = Flexcl_util.Json in
  Printf.printf "=== Serve load generator (%d predict requests) ===\n" requests;
  let line id =
    Printf.sprintf
      {|{"id":%d,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true}|}
      id
  in
  let client = Client.create ~num_domains:0 () in
  (* request 1 is cold: parse + profile + model. *)
  let cold_resp, t_cold = time_of (fun () -> Client.request_line client (line 1)) in
  (* requests 2..N replay the same kernel/design point: the serving
     pattern the cache exists for. *)
  let warm_lat = ref [] in
  let warm_resp = ref cold_resp in
  let (), t_warm_total =
    time_of (fun () ->
        for id = 2 to requests do
          let r, dt = time_of (fun () -> Client.request_line client (line id)) in
          warm_resp := r;
          warm_lat := (dt *. 1e6) :: !warm_lat
        done)
  in
  let warm_lat = List.rev !warm_lat in
  let result_of resp =
    match Json.of_string resp with
    | Ok v -> Option.map Json.to_string (Json.member "result" v)
    | Error _ -> None
  in
  let identical =
    match (result_of cold_resp, result_of !warm_resp) with
    | Some a, Some b -> a = b
    | _ -> false
  in
  (* the one-shot CLI path computes the same estimate directly; cached
     responses must agree byte-for-byte on the rendered cycle count *)
  let w = List.find (fun w -> W.name w = "hotspot/hotspot") Rodinia.all in
  let cfg =
    { Config.wg_size = Launch.wg_size w.W.launch; n_pe = 2; n_cu = 2;
      wi_pipeline = true; comm_mode = Config.Pipeline_mode }
  in
  let direct = Model.estimate dev (analysis_of w) cfg in
  let direct_cycles = Json.to_string (Json.Num direct.Model.cycles) in
  let served_cycles =
    match Json.of_string !warm_resp with
    | Ok v ->
        Option.bind (Json.member "result" v) (Json.member "cycles")
        |> Option.map Json.to_string
    | Error _ -> None
  in
  let matches_cli = served_cycles = Some direct_cycles in
  let hit_rate =
    match Json.member "cache" (Client.stats client) with
    | Some cache -> (
        match
          Option.bind (Json.member "predict" cache) (Json.member "hit_rate")
        with
        | Some (Json.Num r) -> r
        | _ -> 0.0)
    | None -> 0.0
  in
  let mean_warm_us = Stats.mean warm_lat in
  let p50 = Stats.percentile 50.0 warm_lat in
  let p95 = Stats.percentile 95.0 warm_lat in
  let p99 = Stats.percentile 99.0 warm_lat in
  let cold_us = t_cold *. 1e6 in
  let speedup = cold_us /. Float.max mean_warm_us 1e-9 in
  let throughput =
    float_of_int (requests - 1) /. Float.max t_warm_total 1e-9
  in
  Printf.printf "cold first request     : %10.0f us\n" cold_us;
  Printf.printf "cached mean / p50      : %10.1f / %.1f us\n" mean_warm_us p50;
  Printf.printf "cached p95 / p99       : %10.1f / %.1f us\n" p95 p99;
  Printf.printf "cached throughput      : %10.0f req/s\n" throughput;
  Printf.printf "cold/cached speedup    : %10.1fx %s\n" speedup
    (if speedup >= 10.0 then "(>= 10x)" else "(BELOW 10x TARGET)");
  Printf.printf "predict cache hit rate : %10.1f%% %s\n" (hit_rate *. 100.0)
    (if hit_rate >= 0.99 then "(>= 99%)" else "(BELOW 99% TARGET)");
  Printf.printf "cold == cached result  : %s\n"
    (if identical then "yes (byte-identical)" else "NO - CACHE BUG");
  Printf.printf "serve == one-shot CLI  : %s\n"
    (if matches_cli then "yes (byte-identical cycles)" else "NO - DIVERGENCE");
  (* --- overload scenario: offered load >= 2x admission capacity over a
     real socket server; excess is shed immediately with E-OVERLOAD, and
     every accepted response carries the same result bytes as the
     sequential client above --- *)
  let module Server = Flexcl_server.Server in
  let max_inflight = 2 in
  let n_threads = 8 and bursts_per_thread = 6 and burst = 4 in
  Printf.printf
    "--- overload: %d clients x bursts of %d vs max_inflight=%d ---\n"
    n_threads burst max_inflight;
  let srv = Server.create ~num_domains:2 ~max_inflight () in
  let sock_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "flexcl_bench_%d.sock" (Unix.getpid ()))
  in
  let srv_thread =
    Thread.create (fun () -> Server.serve_unix_socket srv sock_path) ()
  in
  let connect () =
    let rec go n =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
      | () -> Some fd
      | exception Unix.Unix_error _ ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          if n = 0 then None
          else begin
            Thread.delay 0.05;
            go (n - 1)
          end
    in
    go 100
  in
  let send_all fd s =
    let b = Bytes.of_string s in
    let rec go off =
      if off < Bytes.length b then
        match Unix.write fd b off (Bytes.length b - off) with
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    try
      go 0;
      true
    with Unix.Unix_error _ -> false
  in
  let read_line_bounded fd buf =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match String.index_opt !buf '\n' with
      | Some i ->
          let l = String.sub !buf 0 i in
          buf := String.sub !buf (i + 1) (String.length !buf - i - 1);
          Some l
      | None ->
          let left = deadline -. Unix.gettimeofday () in
          if left <= 0.0 then None
          else
            let readable =
              try
                let r, _, _ =
                  Unix.select [ fd ] [] [] (Float.min left 0.5)
                in
                r <> []
              with Unix.Unix_error (Unix.EINTR, _, _) -> false
            in
            if not readable then go ()
            else
              let n =
                try Unix.read fd chunk 0 (Bytes.length chunk)
                with Unix.Unix_error _ -> 0
              in
              if n = 0 then None
              else begin
                buf := !buf ^ Bytes.sub_string chunk 0 n;
                go ()
              end
    in
    go ()
  in
  let expected_result = result_of cold_resp in
  let ov_mutex = Mutex.create () in
  let accepted_lat = ref [] in
  let shed = ref 0 and lost = ref 0 and mismatched = ref 0 in
  let t0_overload = Unix.gettimeofday () in
  let client_threads =
    List.init n_threads (fun ti ->
        Thread.create
          (fun () ->
            for b = 1 to bursts_per_thread do
              match connect () with
              | None ->
                  Mutex.lock ov_mutex;
                  lost := !lost + burst;
                  Mutex.unlock ov_mutex
              | Some fd ->
                  let payload =
                    String.concat ""
                      (List.init burst (fun i ->
                           line ((10000 * ti) + (100 * b) + i) ^ "\n"))
                  in
                  let t_send = Unix.gettimeofday () in
                  if send_all fd payload then begin
                    let buf = ref "" in
                    for _ = 1 to burst do
                      match read_line_bounded fd buf with
                      | None ->
                          Mutex.lock ov_mutex;
                          incr lost;
                          Mutex.unlock ov_mutex
                      | Some resp -> (
                          let lat_us =
                            (Unix.gettimeofday () -. t_send) *. 1e6
                          in
                          match Json.of_string resp with
                          | Error _ ->
                              Mutex.lock ov_mutex;
                              incr lost;
                              Mutex.unlock ov_mutex
                          | Ok v ->
                              let ok =
                                Option.bind (Json.member "ok" v) Json.to_bool
                              in
                              Mutex.lock ov_mutex;
                              (if ok = Some true then begin
                                 accepted_lat := lat_us :: !accepted_lat;
                                 if result_of resp <> expected_result then
                                   incr mismatched
                               end
                               else incr shed);
                              Mutex.unlock ov_mutex)
                    done
                  end
                  else begin
                    Mutex.lock ov_mutex;
                    lost := !lost + burst;
                    Mutex.unlock ov_mutex
                  end;
                  (try Unix.close fd with Unix.Unix_error _ -> ())
            done)
          ())
  in
  List.iter Thread.join client_threads;
  let overload_wall = Unix.gettimeofday () -. t0_overload in
  (* graceful drain, so the bench process exits cleanly *)
  (match connect () with
  | Some fd ->
      ignore (send_all fd "{\"id\":0,\"kind\":\"shutdown\"}\n");
      ignore (read_line_bounded fd (ref ""));
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> Server.request_shutdown srv);
  Thread.join srv_thread;
  let offered = n_threads * bursts_per_thread * burst in
  let accepted_lat = !accepted_lat in
  let n_accepted = List.length accepted_lat in
  let shed_rate = float_of_int !shed /. float_of_int (max 1 offered) in
  let goodput =
    float_of_int n_accepted /. Float.max overload_wall 1e-9
  in
  let p99_accepted =
    if accepted_lat = [] then 0.0 else Stats.percentile 99.0 accepted_lat
  in
  let overload_identical = !mismatched = 0 && n_accepted > 0 in
  Printf.printf "offered / accepted     : %10d / %d (%d shed, %d lost)\n"
    offered n_accepted !shed !lost;
  Printf.printf "shed rate              : %10.1f%%\n" (shed_rate *. 100.0);
  Printf.printf "accepted p99 latency   : %10.1f us\n" p99_accepted;
  Printf.printf "goodput                : %10.0f req/s\n" goodput;
  Printf.printf "accepted == sequential : %s\n"
    (if overload_identical then "yes (byte-identical)"
     else "NO - DIVERGENCE UNDER LOAD");
  let json =
    Json.Obj
      [
        ("experiment", Json.Str "serve-load");
        ("requests", Json.int requests);
        ("cold_us", Json.Num cold_us);
        ("cached_mean_us", Json.Num mean_warm_us);
        ("cached_p50_us", Json.Num p50);
        ("cached_p95_us", Json.Num p95);
        ("cached_p99_us", Json.Num p99);
        ("cached_throughput_rps", Json.Num throughput);
        ("speedup_cold_over_cached", Json.Num speedup);
        ("predict_cache_hit_rate", Json.Num hit_rate);
        ("cold_equals_cached", Json.Bool identical);
        ("serve_equals_cli", Json.Bool matches_cli);
        ( "overload",
          Json.Obj
            [
              ("max_inflight", Json.int max_inflight);
              ("offered_requests", Json.int offered);
              ( "offered_concurrency",
                Json.int (n_threads * burst) );
              ("accepted", Json.int n_accepted);
              ("shed", Json.int !shed);
              ("lost", Json.int !lost);
              ("shed_rate", Json.Num shed_rate);
              ("accepted_p99_us", Json.Num p99_accepted);
              ("goodput_rps", Json.Num goodput);
              ("accepted_identical", Json.Bool overload_identical);
            ] );
      ]
  in
  Out_channel.with_open_text out_file (fun oc ->
      output_string oc (Json.to_string json);
      output_char oc '\n');
  Printf.printf "wrote %s\n\n" out_file;
  (speedup, hit_rate)
