(* flexcl — command-line front end.

   Subcommands:
     flexcl analyze   (--kernel FILE | --workload NAME) [launch/design flags]
     flexcl simulate  (--kernel FILE | --workload NAME) [launch/design flags]
     flexcl explore   (--kernel FILE | --workload NAME) [--top N]
     flexcl workloads [--suite rodinia|polybench]
     flexcl pipeline  list | analyze | explain | explore | cosim
                      [--graph NAME] [--depth N] [...]
     flexcl predict   (--kernel FILE | --workload NAME) [launch/design flags]
                      [--calibrated MODEL]
     flexcl suite     [--list] [--smoke] [--filter SUBSTR] [--out FILE]
                      [--compare BASELINE] [--repeat N] [--warmup N]
                      [--seed N] [--quiet] [--model MODEL] [--fit FILE]
     flexcl fit       --from REPORT [--out MODEL] [--lambda F] [--alpha F]
     flexcl crossval  --from REPORT [--gate] [--lambda F] [--alpha F]
     flexcl serve     [--jobs N] [--cache N] [--socket PATH]
                      [--max-inflight N] [--max-line-bytes N]
                      [--drain-timeout-ms MS] [--model MODEL]

   For a kernel file, pointer parameters become deterministic random
   buffers of --buffer-size elements; integer scalars default to the
   NDRange size and can be pinned with --int-arg name=value. *)

open Cmdliner
module L = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module Sysrun = Flexcl_simrtl.Sysrun
module W = Flexcl_workloads.Workload
module Table = Flexcl_util.Table
module Diag = Flexcl_util.Diag
module Json = Flexcl_util.Json
module Server = Flexcl_server.Server
module Learn = Flexcl_learn.Learn
open Flexcl_opencl

(* Exit codes (documented in README "Error handling"): 0 success,
   1 input error (bad kernel/launch/design point), 2 usage error,
   3 internal error. *)
let exit_input_error = 1
let exit_usage_error = 2
let exit_internal_error = 3

let print_diags ?source diags =
  prerr_endline (Diag.render_all ?source diags)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* Last line of defense: a subcommand must never escape with an
   exception — report it as an internal diagnostic and exit 3. *)
let guarded f =
  try f () with
  | exn ->
      print_diags [ Analysis.diag_of_exn exn ];
      exit_internal_error

let all_workloads = Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all

(* ------------------------------------------------------------------ *)
(* Shared options *)

let device_arg =
  let parse = function
    | "virtex7" | "v7" | "xc7vx690t" -> Ok Device.virtex7
    | "ku060" | "xcku060" -> Ok Device.ku060
    | "ku060-2ddr" | "xcku060-2ddr" -> Ok Device.ku060_2ddr
    | "u280" | "xcu280" -> Ok Device.u280
    | s ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown device %S (virtex7 | ku060 | ku060-2ddr | xcu280)" s))
  in
  let print ppf (d : Device.t) = Format.pp_print_string ppf d.Device.name in
  Arg.(
    value
    & opt (conv (parse, print)) Device.virtex7
    & info [ "device" ] ~docv:"NAME"
        ~doc:"Target FPGA: virtex7, ku060, ku060-2ddr or xcu280.")

let kernel_file =
  Arg.(
    value
    (* a plain string, not [non_dir_file]: unreadable files are reported
       through the E-IO diagnostic path with exit code 1 *)
    & opt (some string) None
    & info [ "kernel"; "k" ] ~docv:"FILE" ~doc:"OpenCL kernel source file.")

let workload_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload"; "w" ] ~docv:"NAME"
        ~doc:"Built-in workload, e.g. hotspot/hotspot (see 'flexcl workloads').")

let global_size =
  Arg.(value & opt int 4096 & info [ "global" ] ~docv:"N" ~doc:"NDRange size.")

let wg_size =
  Arg.(value & opt int 64 & info [ "wg" ] ~docv:"N" ~doc:"Work-group size.")

let n_pe = Arg.(value & opt int 1 & info [ "pe" ] ~docv:"N" ~doc:"PEs per CU.")
let n_cu = Arg.(value & opt int 1 & info [ "cu" ] ~docv:"N" ~doc:"Compute units.")

let pipeline =
  Arg.(value & flag & info [ "pipeline" ] ~doc:"Enable work-item pipelining.")

let comm_mode =
  let parse = function
    | "barrier" -> Ok Config.Barrier_mode
    | "pipeline" -> Ok Config.Pipeline_mode
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf = function
    | Config.Barrier_mode -> Format.pp_print_string ppf "barrier"
    | Config.Pipeline_mode -> Format.pp_print_string ppf "pipeline"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Pipeline_mode
    & info [ "mode" ] ~docv:"MODE" ~doc:"Communication mode: barrier or pipeline.")

let buffer_size =
  Arg.(
    value & opt int 4096
    & info [ "buffer-size" ] ~docv:"N" ~doc:"Elements per buffer argument.")

let int_args =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "int-arg" ] ~docv:"NAME=V" ~doc:"Pin an integer scalar argument.")

let float_args =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string float) []
    & info [ "float-arg" ] ~docv:"NAME=V" ~doc:"Pin a float scalar argument.")

let placement_args =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "placement" ] ~docv:"BUF=CHAN"
        ~doc:
          "Bind buffer $(b,BUF) to DRAM channel $(b,CHAN) (repeatable; only \
           meaningful on multi-channel devices such as xcu280).")

(* ------------------------------------------------------------------ *)
(* Kernel / launch resolution *)

(* one launch-synthesis rule for the whole system: the serve subsystem
   owns it so `flexcl serve` and the one-shot CLI agree byte-for-byte *)
let launch_for_file kernel ~global ~wg ~buffer_size ~ints ~floats =
  Server.launch_for_kernel kernel ~global ~wg ~buffer_size ~ints ~floats

(* [resolve] outcomes: [`Usage] is caller misuse (exit 2), [`Input]
   carries diagnostics (and the source text for caret context, when
   available; exit 1). *)
let resolve ~file ~workload ~global ~wg ~buffer_size ~ints ~floats =
  match (file, workload) with
  | Some _, Some _ -> `Usage "--kernel and --workload are mutually exclusive"
  | None, None -> `Usage "one of --kernel FILE or --workload NAME is required"
  | Some f, None -> (
      match In_channel.with_open_bin f In_channel.input_all with
      | exception Sys_error msg ->
          (* OCaml's [Sys_error] sometimes omits the path (e.g. "Is a
             directory" when reading a directory): tag it back on *)
          let d = Diag.make Diag.Io_error msg in
          let d = if contains msg f then d else Diag.with_file f d in
          `Input ([ d ], None)
      | src -> (
          match Parser.parse_program_partial src with
          | _, (_ :: _ as diags) ->
              `Input (List.map (Diag.with_file f) diags, Some src)
          | [ k ], [] -> (
              match launch_for_file k ~global ~wg ~buffer_size ~ints ~floats with
              | Ok launch -> `Ok (f, src, k, launch)
              | Error problems ->
                  `Input
                    ( List.map
                        (fun p -> Diag.error Diag.Launch_invalid "%s" p)
                        problems,
                      None ))
          | ks, [] ->
              `Input
                ( [
                    Diag.error ~file:f Diag.Parse_error
                      "expected exactly one kernel, found %d" (List.length ks);
                  ],
                  Some src )))
  | None, Some name -> (
      match List.find_opt (fun w -> W.name w = name) all_workloads with
      | Some w -> `Ok (name, w.W.source, W.parse w, w.W.launch)
      | None ->
          `Input
            ( [
                Diag.error Diag.Io_error
                  "unknown workload %S (try 'flexcl workloads')" name;
              ],
              None ))

(* A bad --placement is caller misuse, like a bad flag value: a
   [Usage_error] diagnostic and exit 2, checked against the concrete
   device (channel range) and the resolved launch (buffer names). *)
let placed_launch ~dev ~placement launch =
  if placement = [] then Ok launch
  else
    match
      Flexcl_dram.Dram.placement_error dev.Device.dram placement
        ~buffers:(L.buffer_names launch)
    with
    | Some msg -> Error [ Diag.error Diag.Usage_error "--placement: %s" msg ]
    | None -> (
        match L.with_placement_result launch placement with
        | Ok l -> Ok l
        | Error problems ->
            Error
              (List.map
                 (fun p -> Diag.error Diag.Usage_error "--placement: %s" p)
                 problems))

let with_kernel ~dev ~placement file workload global wg buffer_size ints floats
    f =
  guarded (fun () ->
      match resolve ~file ~workload ~global ~wg ~buffer_size ~ints ~floats with
      | `Usage msg ->
          prerr_endline ("flexcl: " ^ msg);
          exit_usage_error
      | `Input (diags, source) ->
          print_diags ?source diags;
          exit_input_error
      | `Ok (name, source, kernel, launch) -> (
          match placed_launch ~dev ~placement launch with
          | Error diags ->
              print_diags diags;
              exit_usage_error
          | Ok launch -> (
              match Analysis.analyze_result kernel launch with
              | Error diags ->
                  print_diags ~source (List.map (Diag.with_file name) diags);
                  exit_input_error
              | Ok a -> f name a)))

(* ------------------------------------------------------------------ *)
(* analyze *)

let print_breakdown dev name cfg (b : Model.breakdown) =
  Printf.printf "kernel        : %s on %s\n" name dev.Device.name;
  Printf.printf "design point  : %s\n" (Config.to_string cfg);
  Printf.printf "II work-item  : %d (RecMII %d, ResMII %d)\n" b.Model.ii_wi
    b.Model.rec_mii b.Model.res_mii;
  Printf.printf "depth         : %d cycles\n" b.Model.depth_pe;
  Printf.printf "L_PE          : %.0f cycles\n" b.Model.l_pe;
  Printf.printf "L_CU          : %.0f cycles (N_PE eff %d)\n" b.Model.l_cu
    b.Model.n_pe_eff;
  Printf.printf "L_comp kernel : %.0f cycles (N_CU eff %d)\n" b.Model.l_comp_kernel
    b.Model.n_cu_eff;
  Printf.printf "L_mem / WI    : %.2f cycles\n" b.Model.l_mem_wi;
  List.iter
    (fun (p, c) ->
      if c > 0.004 then
        Printf.printf "  %-10s %.3f txns/WI\n" (Flexcl_dram.Dram.pattern_name p) c)
    b.Model.pattern_counts;
  Printf.printf "DSP footprint : %d per PE\n" b.Model.dsp_footprint;
  Printf.printf "TOTAL         : %.0f cycles = %.2f us\n" b.Model.cycles
    (b.Model.seconds *. 1e6);
  Printf.printf "bottleneck    : %s\n" (Model.bottleneck b)

module Trace = Flexcl_util.Trace

(* A trace is only printed after it passes its own conservation check and
   a byte-level JSON round-trip; a violation is a model bug, not an input
   problem, so it exits 3. *)
let validated_trace_against ~cycles (tr : Trace.t) =
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        print_diags [ Diag.error Diag.Internal_error "%s" msg ];
        Error exit_internal_error)
      fmt
  in
  match Trace.check tr with
  | Error e -> fail "trace conservation violated: %s" e
  | Ok () ->
      if
        Float.abs (tr.Trace.cycles -. cycles)
        > 1e-9 *. Float.max 1.0 (Float.abs cycles)
      then
        fail "trace root %.17g disagrees with the prediction %.17g"
          tr.Trace.cycles cycles
      else
        let s = Json.to_string (Trace.to_json tr) in
        match Result.bind (Json.of_string s) (fun j -> Trace.of_json j) with
        | Error e -> fail "trace does not survive a JSON round-trip: %s" e
        | Ok tr' when tr' <> tr -> fail "trace JSON round-trip is lossy"
        | Ok _ -> Ok s

let validated_trace (b : Model.breakdown) tr =
  validated_trace_against ~cycles:b.Model.cycles tr

let analyze_cmd =
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Also print the cycle-attribution trace (see 'flexcl explain').")
  in
  let run dev file workload global wg pe cu pipe mode buffer_size ints floats
      placement trace =
    with_kernel ~dev ~placement file workload global wg buffer_size ints floats
      (fun name a ->
        let cfg =
          { Config.wg_size = L.wg_size a.Analysis.launch; n_pe = pe; n_cu = cu;
            wi_pipeline = pipe; comm_mode = mode }
        in
        if not (Model.feasible dev a cfg) then begin
          print_diags
            [
              Diag.error Diag.Config_invalid
                "design point %s exceeds %s resources" (Config.to_string cfg)
                dev.Device.name;
            ];
          exit_input_error
        end
        else
          match Model.estimate_result dev a cfg with
          | Error d ->
              print_diags [ d ];
              exit_input_error
          | Ok b ->
              print_breakdown dev name cfg b;
              if not trace then 0
              else
                let _, tr = Model.explain dev a cfg in
                (match validated_trace b tr with
                | Error code -> code
                | Ok _ ->
                    print_newline ();
                    print_endline (Trace.render tr);
                    0))
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Estimate a kernel's performance analytically.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ n_pe $ n_cu $ pipeline $ comm_mode $ buffer_size $ int_args
      $ float_args $ placement_args $ trace_flag)

(* ------------------------------------------------------------------ *)
(* explain *)

let explain_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the trace as JSON instead of a tree.")
  in
  let max_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Truncate the printed tree below depth $(docv) (text mode only).")
  in
  let run dev file workload global wg pe cu pipe mode buffer_size ints floats
      placement json max_depth =
    with_kernel ~dev ~placement file workload global wg buffer_size ints floats
      (fun name a ->
        let cfg =
          { Config.wg_size = L.wg_size a.Analysis.launch; n_pe = pe; n_cu = cu;
            wi_pipeline = pipe; comm_mode = mode }
        in
        (* same validation path as analyze, so the two agree on inputs *)
        match Model.estimate_result dev a cfg with
        | Error d ->
            print_diags [ d ];
            exit_input_error
        | Ok b -> (
            let _, tr = Model.explain dev a cfg in
            match validated_trace b tr with
            | Error code -> code
            | Ok trace_json ->
                if json then (
                  print_endline
                    (Json.to_string
                       (Json.Obj
                          [
                            ("kernel", Json.Str name);
                            ("device", Json.Str dev.Device.name);
                            ("config", Json.Str (Config.to_string cfg));
                            ("cycles", Json.Num b.Model.cycles);
                            ( "trace",
                              match Json.of_string trace_json with
                              | Ok j -> j
                              | Error _ -> assert false );
                          ]));
                  0)
                else begin
                  Printf.printf "kernel       : %s on %s\n" name dev.Device.name;
                  Printf.printf "design point : %s\n" (Config.to_string cfg);
                  Printf.printf "prediction   : %.0f cycles = %.2f us\n\n"
                    b.Model.cycles (b.Model.seconds *. 1e6);
                  print_endline (Trace.render ?max_depth tr);
                  0
                end))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute every predicted cycle to a model term: a conservation-\
          checked tree from the kernel total down to per-block schedules \
          and per-pattern DRAM costs.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ n_pe $ n_cu $ pipeline $ comm_mode $ buffer_size $ int_args
      $ float_args $ placement_args $ json_flag $ max_depth)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let run dev file workload global wg pe cu pipe mode buffer_size ints floats
      placement =
    with_kernel ~dev ~placement file workload global wg buffer_size ints floats
      (fun name a ->
        let cfg =
          { Config.wg_size = L.wg_size a.Analysis.launch; n_pe = pe; n_cu = cu;
            wi_pipeline = pipe; comm_mode = mode }
        in
        match Model.estimate_result dev a cfg with
        | Error d ->
            print_diags [ d ];
            exit_input_error
        | Ok b ->
            let s = Sysrun.run dev a cfg in
            Printf.printf "kernel    : %s on %s (%s)\n" name dev.Device.name
              (Config.to_string cfg);
            Printf.printf "model     : %.0f cycles\n" b.Model.cycles;
            Printf.printf "simulator : %.0f cycles (%d DRAM transactions)\n"
              s.Sysrun.cycles s.Sysrun.mem_transactions;
            if s.Sysrun.cycles = 0.0 then
              Printf.printf "error     : n/a (simulator reported 0 cycles)\n"
            else
              Printf.printf "error     : %.1f%%\n"
                (100.0
                *. Float.abs (b.Model.cycles -. s.Sysrun.cycles)
                /. s.Sysrun.cycles);
            0)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the cycle-level System-Run simulator and compare to the model.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ n_pe $ n_cu $ pipeline $ comm_mode $ buffer_size $ int_args
      $ float_args $ placement_args)

(* ------------------------------------------------------------------ *)
(* explore *)

let explore_cmd =
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the N best points.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the parallel sweep engine (0 = sequential; \
             default: cores - 1). Results are identical at any N.")
  in
  let run dev file workload global wg buffer_size ints floats placement top jobs
      =
    match jobs with
    | Some n when n < 0 ->
        prerr_endline "flexcl: --jobs must be >= 0";
        exit_usage_error
    | _ ->
    with_kernel ~dev ~placement file workload global wg buffer_size ints floats
      (fun name a ->
        let space =
          Space.default ~total_work_items:(L.n_work_items a.Analysis.launch)
        in
        let ranked =
          Explore.exhaustive ?num_domains:jobs dev a space
            (Explore.specialized_model_oracle dev)
        in
        if ranked = [] then begin
          print_diags [ Explore.empty_space_diag ];
          exit_input_error
        end
        else begin
          Printf.printf "%s: %d feasible design points\n\n" name
            (List.length ranked);
          let t =
            Table.create ~headers:[ "rank"; "configuration"; "cycles"; "us" ]
          in
          List.iteri
            (fun i (e : Explore.evaluated) ->
              if i < top then
                Table.add_row t
                  [
                    string_of_int (i + 1);
                    Config.to_string e.Explore.config;
                    Printf.sprintf "%.0f" e.Explore.cycles;
                    Printf.sprintf "%.2f"
                      (Device.cycles_to_seconds dev e.Explore.cycles *. 1e6);
                  ])
            ranked;
          print_string (Table.render t);
          (match
             Heuristic.search_result ?num_domains:jobs dev a space
               (Explore.specialized_model_oracle dev)
           with
          | Ok greedy ->
              Printf.printf "\ngreedy heuristic [16] would pick %s (%.0f cycles)\n"
                (Config.to_string greedy.Explore.config) greedy.Explore.cycles
          | Error d ->
              Printf.printf "\ngreedy heuristic [16] found no feasible point (%s)\n"
                (Diag.code_name d.Diag.code));
          0
        end)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Exhaustively explore the optimization design space.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ buffer_size $ int_args $ float_args $ placement_args $ top
      $ jobs)

(* ------------------------------------------------------------------ *)
(* Learned-residual calibration: shared loaders.

   A bad --calibrated / --model file is caller misuse (exit 2, like any
   bad flag value): the model is a flag-supplied artifact, not the input
   under analysis. A bad --from report, by contrast, is the input (exit
   1). *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg ->
      (* Sys_error already leads with the path; the Diag carries it *)
      let prefix = path ^ ": " in
      let n = String.length prefix in
      Error
        (if String.length msg >= n && String.sub msg 0 n = prefix then
           String.sub msg n (String.length msg - n)
         else msg)
  | s -> Ok s

let load_model path =
  match read_file path with
  | Error msg ->
      Error
        [
          Diag.make ~file:path Diag.Usage_error
            (Printf.sprintf "cannot read model: %s" msg);
        ]
  | Ok s -> (
      match Learn.model_of_string s with
      | Ok m -> Ok m
      | Error d -> Error [ Diag.with_file path d ])

let load_suite_report path =
  match read_file path with
  | Error msg -> Error [ Diag.make ~file:path Diag.Io_error msg ]
  | Ok s -> (
      match Flexcl_suite.Report.of_string s with
      | Ok r -> Ok r
      | Error e ->
          Error
            [
              Diag.error ~file:path Diag.Parse_error "invalid suite report: %s"
                e;
            ])

let calibrated_model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "calibrated" ] ~docv:"MODEL"
        ~doc:
          "Also report the calibrated estimate and its empirical \
           prediction interval using the learned-residual model at \
           $(docv) (written by 'flexcl fit' or 'flexcl suite --fit').")

(* ------------------------------------------------------------------ *)
(* predict *)

let predict_cmd =
  let run dev file workload global wg pe cu pipe mode buffer_size ints floats
      placement calibrated =
    (* the model loads before the (possibly expensive) analysis, so a
       missing or corrupt --calibrated file fails fast as usage *)
    let model =
      match calibrated with
      | None -> Ok None
      | Some path -> Result.map Option.some (load_model path)
    in
    match model with
    | Error diags ->
        print_diags diags;
        exit_usage_error
    | Ok model ->
        with_kernel ~dev ~placement file workload global wg buffer_size ints
          floats (fun name a ->
            let cfg =
              { Config.wg_size = L.wg_size a.Analysis.launch; n_pe = pe;
                n_cu = cu; wi_pipeline = pipe; comm_mode = mode }
            in
            if not (Model.feasible dev a cfg) then begin
              print_diags
                [
                  Diag.error Diag.Config_invalid
                    "design point %s exceeds %s resources"
                    (Config.to_string cfg) dev.Device.name;
                ];
              exit_input_error
            end
            else
              match Model.estimate_result dev a cfg with
              | Error d ->
                  print_diags [ d ];
                  exit_input_error
              | Ok b ->
                  Printf.printf "kernel       : %s on %s\n" name
                    dev.Device.name;
                  Printf.printf "design point : %s\n" (Config.to_string cfg);
                  Printf.printf "prediction   : %.0f cycles = %.2f us\n"
                    b.Model.cycles (b.Model.seconds *. 1e6);
                  (match model with
                  | None -> ()
                  | Some m ->
                      let c =
                        Learn.calibrate m ~device:dev ~est:b.Model.cycles
                          (Learn.features a dev)
                      in
                      Printf.printf
                        "calibrated   : %.0f cycles  [%.0f, %.0f] (%.0f%% \
                         empirical interval)\n"
                        c.Learn.cycles c.Learn.lo c.Learn.hi
                        (100.0 *. m.Learn.nominal_coverage));
                  0)
  in
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict a kernel's cycle count; with --calibrated MODEL, also \
          apply the learned residual correction and report its empirical \
          prediction interval.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ n_pe $ n_cu $ pipeline $ comm_mode $ buffer_size $ int_args
      $ float_args $ placement_args $ calibrated_model_arg)

(* ------------------------------------------------------------------ *)
(* fit / crossval *)

let from_report_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "from" ] ~docv:"REPORT"
        ~doc:
          "The BENCH_suite.json report (from 'flexcl suite') supplying \
           training samples: per-entry features, analytical estimate and \
           simrtl ground truth.")

let lambda_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "lambda" ] ~docv:"F"
        ~doc:
          "Pin the ridge strength instead of selecting it by \
           leave-one-kernel-out grid search.")

let alpha_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "alpha" ] ~docv:"F"
        ~doc:
          "Pin the prediction shrinkage in (0, 1] instead of selecting \
           it by leave-one-kernel-out grid search.")

let fit_cmd =
  let out_arg =
    Arg.(
      value & opt string "model.json"
      & info [ "out"; "o" ] ~docv:"MODEL"
          ~doc:"Where to write the model artifact.")
  in
  let run from out lambda alpha =
    guarded (fun () ->
        match load_suite_report from with
        | Error diags ->
            print_diags diags;
            exit_input_error
        | Ok r -> (
            let samples =
              Flexcl_suite.Runner.samples_of_report r
            in
            match Learn.fit ?lambda ?alpha samples with
            | Error d ->
                print_diags [ d ];
                exit_input_error
            | Ok m ->
                Out_channel.with_open_bin out (fun oc ->
                    output_string oc (Learn.model_to_string m));
                Printf.printf
                  "fit: %d samples over %d kernels (lambda %g, alpha %g)\n"
                  m.Learn.n_train
                  (List.length m.Learn.kernels)
                  m.Learn.lambda m.Learn.alpha;
                Printf.printf "wrote %s\n" out;
                0))
  in
  Cmd.v
    (Cmd.info "fit"
       ~doc:
         "Fit the learned-residual ridge model on a suite report and \
          write the byte-deterministic model artifact (hyperparameters \
          selected by leave-one-kernel-out cross-validation unless \
          pinned).")
    Term.(const run $ from_report_arg $ out_arg $ lambda_arg $ alpha_arg)

let crossval_cmd =
  let gate_flag =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:
            "Exit 1 unless the per-kernel-held-out calibrated mean error \
             strictly beats the raw analytical mean (the acceptance claim \
             of the calibration subsystem).")
  in
  let run from gate lambda alpha =
    guarded (fun () ->
        match load_suite_report from with
        | Error diags ->
            print_diags diags;
            exit_input_error
        | Ok r -> (
            match
              Learn.crossval ?lambda ?alpha
                (Flexcl_suite.Runner.samples_of_report r)
            with
            | Error d ->
                print_diags [ d ];
                exit_input_error
            | Ok cv ->
                print_string (Learn.cv_to_string cv);
                if not gate then 0
                else if cv.Learn.mean_cal_mape < cv.Learn.mean_raw_mape then
                  0
                else begin
                  Printf.eprintf
                    "crossval gate: FAIL (held-out calibrated mean %.3f%% \
                     does not beat raw %.3f%%)\n"
                    cv.Learn.mean_cal_mape cv.Learn.mean_raw_mape;
                  exit_input_error
                end))
  in
  Cmd.v
    (Cmd.info "crossval"
       ~doc:
         "Leave-one-kernel-out cross-validation of the learned-residual \
          model over a suite report: per-held-out-kernel MAPE, the \
          empirical prediction interval and its achieved coverage, as \
          canonical JSON on stdout (byte-deterministic).")
    Term.(const run $ from_report_arg $ gate_flag $ lambda_arg $ alpha_arg)

(* ------------------------------------------------------------------ *)
(* serve *)

let serve_cmd =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains handling requests concurrently (0 = handle on \
             the serving domain; default: cores - 1).")
  in
  let cache =
    Arg.(
      value
      & opt int Server.default_cache_capacity
      & info [ "cache" ] ~docv:"N"
          ~doc:"Capacity of each artifact cache (parse/analysis/predict).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve a Unix-domain socket at $(docv) instead of \
             stdin/stdout; each accepted connection gets its own \
             thread against one shared worker pool.")
  in
  let max_inflight =
    Arg.(
      value
      & opt int Server.default_max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Admission high-water mark: requests in compute at once; \
             beyond it new work is shed with E-OVERLOAD and a \
             retry_after_ms hint.")
  in
  let max_line_bytes =
    Arg.(
      value
      & opt int Server.default_max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:
            "Frame bound: a request line longer than $(docv) is \
             discarded and answered with E-FRAME.")
  in
  let drain_timeout_ms =
    Arg.(
      value
      & opt int Server.default_drain_timeout_ms
      & info [ "drain-timeout-ms" ] ~docv:"MS"
          ~doc:
            "On shutdown (SIGTERM, SIGINT or a shutdown request), how \
             long open connections get to wind down before being \
             severed.")
  in
  let model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Load the learned-residual model at $(docv) at startup so \
             requests may ask for \"calibrated\":true; without it such \
             requests answer E-NOMODEL.")
  in
  let run jobs cache socket max_inflight max_line_bytes drain_timeout_ms
      model_path =
    match jobs with
    | Some n when n < 0 ->
        prerr_endline "flexcl: --jobs must be >= 0";
        exit_usage_error
    | _ when cache < 1 ->
        prerr_endline "flexcl: --cache must be >= 1";
        exit_usage_error
    | _ when max_inflight < 1 ->
        prerr_endline "flexcl: --max-inflight must be >= 1";
        exit_usage_error
    | _ when max_line_bytes < 64 ->
        prerr_endline "flexcl: --max-line-bytes must be >= 64";
        exit_usage_error
    | _ when drain_timeout_ms < 0 ->
        prerr_endline "flexcl: --drain-timeout-ms must be >= 0";
        exit_usage_error
    | _ -> (
        let model =
          match model_path with
          | None -> Ok None
          | Some path -> Result.map Option.some (load_model path)
        in
        match model with
        | Error diags ->
            print_diags diags;
            exit_usage_error
        | Ok model ->
        guarded (fun () ->
            let server =
              Server.create ?num_domains:jobs ~cache_capacity:cache
                ~max_inflight ~max_line_bytes ~drain_timeout_ms ?model ()
            in
            (* SIGTERM/SIGINT start a graceful drain: in-flight requests
               finish, new ones answer E-SHUTDOWN, then the loops return
               and the final stats land on stderr *)
            let graceful =
              Sys.Signal_handle (fun _ -> Server.request_shutdown server)
            in
            (try Sys.set_signal Sys.sigterm graceful with _ -> ());
            (try Sys.set_signal Sys.sigint graceful with _ -> ());
            (match socket with
            | Some path -> Server.serve_unix_socket server path
            | None -> Server.serve_fd server Unix.stdin stdout);
            (* final metrics dump, stderr so it never interleaves with
               the NDJSON response stream *)
            prerr_endline (Json.to_string (Server.stats_json server));
            0))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived analysis service (newline-delimited JSON \
          requests on stdin, one response per line on stdout; see the \
          README for the protocol).")
    Term.(
      const run $ jobs $ cache $ socket $ max_inflight $ max_line_bytes
      $ drain_timeout_ms $ model_arg)

(* ------------------------------------------------------------------ *)
(* workloads *)

let workloads_cmd =
  let suite =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"NAME" ~doc:"Filter: rodinia or polybench.")
  in
  let run suite =
    (* an unknown suite name silently printing an empty table would hide
       typos from scripts; it is CLI misuse, diagnosed and exited 2 *)
    let known = List.sort_uniq compare (List.map (fun w -> w.W.suite) all_workloads) in
    match suite with
    | Some s when not (List.mem s known) ->
        print_diags
          [
            Diag.error Diag.Cli_error "unknown suite %S (%s)" s
              (String.concat " | " known);
          ];
        exit_usage_error
    | _ ->
        let t = Table.create ~headers:[ "name"; "suite"; "work-items"; "wg" ] in
        List.iter
          (fun w ->
            if suite = None || suite = Some w.W.suite then
              Table.add_row t
                [
                  W.name w;
                  w.W.suite;
                  string_of_int (L.n_work_items w.W.launch);
                  string_of_int (L.wg_size w.W.launch);
                ])
          all_workloads;
        print_string (Table.render t);
        0
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the built-in Rodinia/PolyBench kernels.")
    Term.(const run $ suite)

(* ------------------------------------------------------------------ *)
(* pipeline *)

module Graph = Flexcl_graph.Graph
module Gdef = Flexcl_graph.Gdef
module GCosim = Flexcl_graph.Cosim
module Pipelines = Flexcl_workloads.Pipelines

let pipeline_names () =
  String.concat " | "
    (List.map (fun (p : Pipelines.t) -> p.Pipelines.name) Pipelines.all)

(* Mirrors [with_kernel]: a missing --graph is CLI misuse (exit 2), an
   unknown graph or one that fails validation is an input problem with
   diagnostics (exit 1). *)
let with_graph graph f =
  guarded (fun () ->
      match graph with
      | None ->
          prerr_endline
            "flexcl: --graph NAME is required (see 'flexcl pipeline list')";
          exit_usage_error
      | Some gname -> (
          match Pipelines.find gname with
          | None ->
              print_diags
                [
                  Diag.error Diag.Io_error "unknown pipeline graph %S (%s)"
                    gname (pipeline_names ());
                ];
              exit_input_error
          | Some p -> (
              match Graph.analyze (Pipelines.graph p) with
              | Error diags ->
                  print_diags diags;
                  exit_input_error
              | Ok g -> f gname g)))

let graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "graph"; "g" ] ~docv:"NAME"
        ~doc:
          "Built-in pipeline graph, e.g. stream/produce-filter-consume \
           (see 'flexcl pipeline list').")

let gdepth_arg =
  Arg.(
    value & opt int 0
    & info [ "depth" ] ~docv:"N"
        ~doc:
          "Uniform FIFO depth override for every channel (0 keeps the \
           graph's declared depths).")

(* A non-positive override is not rejected here: it flows into the joint
   point and comes back as the model's own Config_invalid diagnostic, so
   the CLI and the serve kind report the identical message. *)
let joint_with_depth g depth =
  let j0 = Graph.default_joint g in
  if depth = 0 then j0
  else
    {
      j0 with
      Graph.depths = List.map (fun (c, _) -> (c, depth)) j0.Graph.depths;
    }

let print_gbreakdown dev gname j (gb : Graph.gbreakdown) =
  Printf.printf "graph       : %s on %s\n" gname dev.Device.name;
  Printf.printf "joint point : %s\n" (Graph.joint_to_string j);
  List.iter
    (fun (s, (b : Model.breakdown)) ->
      Printf.printf "  stage %-10s %8.0f cycles  (%s)\n" s b.Model.cycles
        (Model.bottleneck b))
    gb.Graph.per_stage;
  Printf.printf "L_steady    : %.0f cycles (stage %s)\n" gb.Graph.steady
    gb.Graph.bottleneck_stage;
  Printf.printf "L_fill      : %.0f cycles (path %s)\n" gb.Graph.fill
    (String.concat " -> " gb.Graph.critical_path);
  Printf.printf "L_stall     : %.0f cycles\n" gb.Graph.stall;
  List.iter
    (fun (c, s) ->
      if s > 0.0 then Printf.printf "  channel %-8s %8.0f cycles\n" c s)
    gb.Graph.per_edge_stall;
  Printf.printf "TOTAL       : %.0f cycles = %.2f us\n" gb.Graph.cycles
    (gb.Graph.seconds *. 1e6);
  Printf.printf "bottleneck  : %s\n" (Graph.bottleneck gb)

let pipeline_list_cmd =
  let run () =
    guarded (fun () ->
        let t =
          Table.create
            ~headers:[ "name"; "stages"; "channels"; "work-items"; "depth" ]
        in
        List.iter
          (fun (p : Pipelines.t) ->
            let g = Pipelines.graph p in
            Table.add_row t
              [
                p.Pipelines.name;
                string_of_int (List.length g.Gdef.stages);
                string_of_int (List.length g.Gdef.channels);
                string_of_int
                  (List.fold_left
                     (fun acc (_, _, l) -> acc + L.n_work_items l)
                     0 p.Pipelines.stages);
                string_of_int p.Pipelines.default_depth;
              ])
          Pipelines.all;
        print_string (Table.render t);
        0)
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the bundled multi-kernel pipeline graphs.")
    Term.(const run $ const ())

let pipeline_analyze_cmd =
  let run dev graph depth =
    with_graph graph (fun gname g ->
        let j = joint_with_depth g depth in
        match Graph.estimate_result dev g j with
        | Error d ->
            print_diags [ d ];
            exit_input_error
        | Ok gb ->
            print_gbreakdown dev gname j gb;
            0)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Estimate a kernel graph analytically: per-stage cycles plus the \
          steady/fill/stall decomposition (Eq. G1).")
    Term.(const run $ device_arg $ graph_arg $ gdepth_arg)

let pipeline_explain_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the trace as JSON instead of a tree.")
  in
  let max_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-depth" ] ~docv:"N"
          ~doc:"Truncate the printed tree below depth $(docv) (text mode only).")
  in
  let run dev graph depth json max_depth =
    with_graph graph (fun gname g ->
        let j = joint_with_depth g depth in
        match Graph.estimate_result dev g j with
        | Error d ->
            print_diags [ d ];
            exit_input_error
        | Ok gb -> (
            let _, tr = Graph.explain dev g j in
            match validated_trace_against ~cycles:gb.Graph.cycles tr with
            | Error code -> code
            | Ok trace_json ->
                if json then (
                  print_endline
                    (Json.to_string
                       (Json.Obj
                          [
                            ("graph", Json.Str gname);
                            ("device", Json.Str dev.Device.name);
                            ("joint", Json.Str (Graph.joint_to_string j));
                            ("cycles", Json.Num gb.Graph.cycles);
                            ( "trace",
                              match Json.of_string trace_json with
                              | Ok v -> v
                              | Error _ -> assert false );
                          ]));
                  0)
                else begin
                  Printf.printf "graph       : %s on %s\n" gname
                    dev.Device.name;
                  Printf.printf "joint point : %s\n"
                    (Graph.joint_to_string j);
                  Printf.printf "prediction  : %.0f cycles = %.2f us\n\n"
                    gb.Graph.cycles (gb.Graph.seconds *. 1e6);
                  print_endline (Trace.render ?max_depth tr);
                  0
                end))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Attribute every predicted graph cycle to a model term: the \
          conservation-checked tree from L_graph down through \
          steady/fill/stall (Eq. G1-G4) into the bottleneck stage's \
          single-kernel schedule.")
    Term.(
      const run $ device_arg $ graph_arg $ gdepth_arg $ json_flag $ max_depth)

let pipeline_explore_cmd =
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"Show the N best joint points.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the staged sweep (0 = sequential; \
             default: cores - 1). Results are identical at any N.")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the ranking as JSON instead of a table.")
  in
  let run dev graph top jobs json =
    match jobs with
    | Some n when n < 0 ->
        prerr_endline "flexcl: --jobs must be >= 0";
        exit_usage_error
    | _ ->
        with_graph graph (fun gname g ->
            let space = Graph.default_jspace in
            let ranked = Graph.explore ?num_domains:jobs dev g space in
            if ranked = [] then begin
              print_diags
                [
                  Diag.error Diag.Config_invalid
                    "no feasible joint design point for %S on %s" gname
                    dev.Device.name;
                ];
              exit_input_error
            end
            else begin
              let prog =
                match Graph.best ?num_domains:jobs dev g space with
                | Some (_, prog) -> prog
                | None -> assert false (* ranked <> [] *)
              in
              if json then (
                let take n xs =
                  List.filteri (fun i _ -> i < n) xs
                in
                print_endline
                  (Json.to_string
                     (Json.Obj
                        [
                          ("graph", Json.Str gname);
                          ("device", Json.Str dev.Device.name);
                          ("points", Json.Num (float_of_int (List.length ranked)));
                          ("pruned", Json.Num (float_of_int prog.Graph.jpruned));
                          ( "top",
                            Json.Arr
                              (List.map
                                 (fun (e : Graph.jevaluated) ->
                                   Json.Obj
                                     [
                                       ( "joint",
                                         Json.Str
                                           (Graph.joint_to_string
                                              e.Graph.joint) );
                                       ("cycles", Json.Num e.Graph.jcycles);
                                     ])
                                 (take top ranked)) );
                        ]));
                0)
              else begin
                Printf.printf "%s: %d joint design points\n\n" gname
                  (List.length ranked);
                let t =
                  Table.create
                    ~headers:[ "rank"; "joint point"; "cycles"; "us" ]
                in
                List.iteri
                  (fun i (e : Graph.jevaluated) ->
                    if i < top then
                      Table.add_row t
                        [
                          string_of_int (i + 1);
                          Graph.joint_to_string e.Graph.joint;
                          Printf.sprintf "%.0f" e.Graph.jcycles;
                          Printf.sprintf "%.2f"
                            (Device.cycles_to_seconds dev e.Graph.jcycles
                            *. 1e6);
                        ])
                  ranked;
                print_string (Table.render t);
                Printf.printf
                  "\nbound-pruned search: %d/%d points evaluated (%d pruned)\n"
                  prog.Graph.jevaluated prog.Graph.jtotal prog.Graph.jpruned;
                0
              end
            end)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Explore the joint design space (per-stage DSP share x \
          per-channel FIFO depth) through the staged per-stage oracles.")
    Term.(const run $ device_arg $ graph_arg $ top $ jobs $ json_flag)

let pipeline_cosim_cmd =
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N" ~doc:"Per-stage simulator seed.")
  in
  let rounds =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string int) []
      & info [ "rounds" ] ~docv:"STAGE=N"
          ~doc:
            "Reschedule $(i,STAGE) for $(i,N) work-group rounds at its \
             measured service time (a sizing sensitivity knob; an \
             unbalanced override can deadlock the DES, reported as an \
             internal error).")
  in
  let run dev graph depth seed rounds =
    with_graph graph (fun gname g ->
        let j = joint_with_depth g depth in
        match Graph.estimate_result dev g j with
        | Error d ->
            print_diags [ d ];
            exit_input_error
        | Ok gb ->
            let r = GCosim.run ?seed ~rounds_override:rounds dev g j in
            Printf.printf "graph     : %s on %s\n" gname dev.Device.name;
            Printf.printf "joint     : %s\n" (Graph.joint_to_string j);
            Printf.printf "model     : %.0f cycles\n" gb.Graph.cycles;
            Printf.printf "co-sim    : %.0f cycles (%d work-group rounds)\n"
              r.GCosim.cycles r.GCosim.rounds;
            if r.GCosim.cycles = 0.0 then
              Printf.printf "error     : n/a (co-sim reported 0 cycles)\n"
            else
              Printf.printf "error     : %.1f%%\n"
                (100.0
                *. Float.abs (gb.Graph.cycles -. r.GCosim.cycles)
                /. r.GCosim.cycles);
            0)
  in
  Cmd.v
    (Cmd.info "cosim"
       ~doc:
         "Run the work-group-granular co-simulation over bounded channels \
          and compare it to the analytical graph estimate.")
    Term.(const run $ device_arg $ graph_arg $ gdepth_arg $ seed $ rounds)

let pipeline_cmd =
  Cmd.group
    (Cmd.info "pipeline"
       ~doc:
         "Model multi-kernel pipe-connected pipelines: analyze, explain, \
          co-simulate and jointly explore the bundled kernel graphs.")
    [
      pipeline_list_cmd; pipeline_analyze_cmd; pipeline_explain_cmd;
      pipeline_explore_cmd; pipeline_cosim_cmd;
    ]

(* ------------------------------------------------------------------ *)
(* suite *)

module Suite_def = Flexcl_suite.Sdef
module Suite_runner = Flexcl_suite.Runner
module Suite_report = Flexcl_suite.Report
module Suite_gate = Flexcl_suite.Gate

let suite_cmd =
  let list_flag =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the entry matrix without running it.")
  in
  let smoke_flag =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Run the fast smoke subset (the one gating 'make check') \
             instead of the full matrix.")
  in
  let filter_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "filter" ] ~docv:"SUBSTR"
          ~doc:
            "Keep only entries whose id (suite/benchmark/kernel\\@device) \
             contains $(docv).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "BENCH_suite.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Where to write the normalized report.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"BASELINE"
          ~doc:
            "After running, gate this run against the baseline report at \
             $(docv); regressions beyond the noise band exit 1.")
  in
  let repeat_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "repeat" ] ~docv:"N" ~doc:"Timed samples per entry.")
  in
  let warmup_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "warmup" ] ~docv:"N" ~doc:"Discarded warmup samples per entry.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Simulator and bootstrap-resampling seed.")
  in
  let quiet_flag =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress per-entry progress lines.")
  in
  let suite_model_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~docv:"MODEL"
          ~doc:
            "Annotate every entry with the calibrated-error column \
             computed through the learned-residual model at $(docv); the \
             gate then compares (and requires) those columns.")
  in
  let fit_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fit" ] ~docv:"MODEL"
          ~doc:
            "After the run, fit the learned-residual model on this run's \
             rows and write the byte-deterministic artifact to $(docv).")
  in
  let print_summary (r : Suite_report.t) =
    let t =
      Table.create
        ~headers:[ "suite"; "entries"; "mean err%"; "max err%" ]
    in
    List.iter
      (fun (s : Suite_report.suite_summary) ->
        Table.add_row t
          [
            s.Suite_report.suite_name;
            string_of_int s.Suite_report.entries;
            Printf.sprintf "%.2f" s.Suite_report.mean_err_pct;
            Printf.sprintf "%.2f" s.Suite_report.max_err_pct;
          ])
      r.Suite_report.summaries;
    print_string (Table.render t);
    (let cal_rows =
       List.filter
         (fun (e : Suite_report.entry) ->
           Option.is_some e.Suite_report.cal_err_pct)
         r.Suite_report.rows
     in
     if cal_rows <> [] then
       let mean f =
         List.fold_left (fun acc e -> acc +. f e) 0.0 cal_rows
         /. float_of_int (List.length cal_rows)
       in
       Printf.printf "calibrated mean err%%    : %.2f (raw %.2f, %d rows)\n"
         (mean (fun (e : Suite_report.entry) ->
              Option.value e.Suite_report.cal_err_pct ~default:0.0))
         (mean (fun (e : Suite_report.entry) -> e.Suite_report.err_pct))
         (List.length cal_rows));
    Printf.printf "analysis cache hit rate : %.0f%%\n"
      (100.0 *. Suite_report.hit_rate r.Suite_report.analysis_cache);
    Printf.printf "engines bitwise identical: %s\n"
      (if
         List.for_all
           (fun (e : Suite_report.entry) -> e.Suite_report.engines_identical)
           r.Suite_report.rows
       then "yes (all entries)"
       else "NO")
  in
  let run list smoke filter out compare repeat warmup seed quiet model_path
      fit_path =
    guarded (fun () ->
        let entries =
          if smoke then Suite_def.smoke () else Suite_def.full ()
        in
        let entries, zero_match =
          match filter with
          | None -> (entries, false)
          | Some pat ->
              let kept = Suite_def.filter pat entries in
              (kept, kept = [])
        in
        if zero_match then begin
          print_diags
            [
              Diag.error Diag.Cli_error
                "--filter %S matches no suite entry (try 'flexcl suite \
                 --list')"
                (Option.get filter);
            ];
          exit_usage_error
        end
        else if list then begin
          let t =
            Table.create ~headers:[ "entry"; "work-items"; "wg" ]
          in
          List.iter
            (fun (e : Suite_def.entry) ->
              Table.add_row t
                [
                  Suite_def.id e;
                  string_of_int (Suite_def.work_items e);
                  string_of_int (Suite_def.wg e);
                ])
            entries;
          print_string (Table.render t);
          Printf.printf "%d entries\n" (List.length entries);
          0
        end
        else begin
          (* load the model and baseline BEFORE the (expensive) run, so
             a missing or corrupt file fails fast *)
          match
            match model_path with
            | None -> Ok None
            | Some path -> Result.map Option.some (load_model path)
          with
          | Error diags ->
              print_diags diags;
              exit_usage_error
          | Ok model ->
          let baseline =
            match compare with
            | None -> Ok None
            | Some path -> (
                match In_channel.with_open_bin path In_channel.input_all with
                | exception Sys_error msg ->
                    Error [ Diag.make Diag.Io_error msg ]
                | s -> (
                    match Suite_report.of_string s with
                    | Ok b -> Ok (Some b)
                    | Error e ->
                        Error
                          [
                            Diag.error ~file:path Diag.Parse_error
                              "invalid baseline report: %s" e;
                          ]))
          in
          match baseline with
          | Error diags ->
              print_diags diags;
              exit_input_error
          | Ok baseline -> (
              let opts =
                let base =
                  if smoke then Suite_runner.smoke_opts
                  else Suite_runner.default_opts
                in
                {
                  base with
                  Suite_runner.repeat =
                    Option.value repeat ~default:base.Suite_runner.repeat;
                  warmup =
                    Option.value warmup ~default:base.Suite_runner.warmup;
                  seed = Option.value seed ~default:base.Suite_runner.seed;
                }
              in
              let progress =
                if quiet then fun _ -> () else fun s -> Printf.printf "%s\n%!" s
              in
              let report = Suite_runner.run ?model ~progress opts entries in
              Out_channel.with_open_text out (fun oc ->
                  output_string oc (Suite_report.to_string report);
                  output_char oc '\n');
              print_summary report;
              Printf.printf "wrote %s\n" out;
              let fit_failed =
                match fit_path with
                | None -> false
                | Some path -> (
                    match
                      Learn.fit (Suite_runner.samples_of_report report)
                    with
                    | Error d ->
                        print_diags [ d ];
                        true
                    | Ok m ->
                        Out_channel.with_open_bin path (fun oc ->
                            output_string oc (Learn.model_to_string m));
                        Printf.printf "wrote %s\n" path;
                        false)
              in
              if fit_failed then exit_input_error
              else
              match baseline with
              | None -> 0
              | Some baseline ->
                  let offenses =
                    Suite_gate.gate ~baseline ~current:report ()
                  in
                  if offenses = [] then begin
                    Printf.printf
                      "gate: PASS (no regression beyond the noise band)\n";
                    0
                  end
                  else begin
                    prerr_endline (Suite_gate.render offenses);
                    Printf.eprintf "gate: FAIL (%d regression%s)\n"
                      (List.length offenses)
                      (if List.length offenses = 1 then "" else "s");
                    exit_input_error
                  end)
        end)
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Run the declarative benchmark-suite matrix (every workload x \
          device through the estimate engines and the simrtl ground \
          truth) with warmup, repetition and bootstrap confidence \
          intervals; write a normalized BENCH_suite.json; optionally \
          gate against a committed baseline.")
    Term.(
      const run $ list_flag $ smoke_flag $ filter_arg $ out_arg $ compare_arg
      $ repeat_arg $ warmup_arg $ seed_arg $ quiet_flag $ suite_model_arg
      $ fit_arg)

let () =
  let info =
    Cmd.info "flexcl" ~version:"1.0.0"
      ~doc:"Analytical performance model for OpenCL workloads on FPGAs."
  in
  let code =
    Cmd.eval'
      (Cmd.group info
         [
           analyze_cmd; explain_cmd; simulate_cmd; predict_cmd; explore_cmd;
           workloads_cmd; pipeline_cmd; suite_cmd; serve_cmd; fit_cmd;
           crossval_cmd;
         ])
  in
  (* cmdliner signals its own parse errors (unknown flag, bad value)
     with 124: fold them into the documented usage-error code *)
  exit (if code = Cmd.Exit.cli_error then exit_usage_error else code)
