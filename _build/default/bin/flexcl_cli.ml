(* flexcl — command-line front end.

   Subcommands:
     flexcl analyze   (--kernel FILE | --workload NAME) [launch/design flags]
     flexcl simulate  (--kernel FILE | --workload NAME) [launch/design flags]
     flexcl explore   (--kernel FILE | --workload NAME) [--top N]
     flexcl workloads [--suite rodinia|polybench]

   For a kernel file, pointer parameters become deterministic random
   buffers of --buffer-size elements; integer scalars default to the
   NDRange size and can be pinned with --int-arg name=value. *)

open Cmdliner
module L = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module Sysrun = Flexcl_simrtl.Sysrun
module W = Flexcl_workloads.Workload
module Table = Flexcl_util.Table
open Flexcl_opencl

let all_workloads = Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all

(* ------------------------------------------------------------------ *)
(* Shared options *)

let device_arg =
  let parse = function
    | "virtex7" | "v7" -> Ok Device.virtex7
    | "ku060" -> Ok Device.ku060
    | s -> Error (`Msg (Printf.sprintf "unknown device %S (virtex7 | ku060)" s))
  in
  let print ppf (d : Device.t) = Format.pp_print_string ppf d.Device.name in
  Arg.(
    value
    & opt (conv (parse, print)) Device.virtex7
    & info [ "device" ] ~docv:"NAME" ~doc:"Target FPGA: virtex7 or ku060.")

let kernel_file =
  Arg.(
    value
    & opt (some non_dir_file) None
    & info [ "kernel"; "k" ] ~docv:"FILE" ~doc:"OpenCL kernel source file.")

let workload_name =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload"; "w" ] ~docv:"NAME"
        ~doc:"Built-in workload, e.g. hotspot/hotspot (see 'flexcl workloads').")

let global_size =
  Arg.(value & opt int 4096 & info [ "global" ] ~docv:"N" ~doc:"NDRange size.")

let wg_size =
  Arg.(value & opt int 64 & info [ "wg" ] ~docv:"N" ~doc:"Work-group size.")

let n_pe = Arg.(value & opt int 1 & info [ "pe" ] ~docv:"N" ~doc:"PEs per CU.")
let n_cu = Arg.(value & opt int 1 & info [ "cu" ] ~docv:"N" ~doc:"Compute units.")

let pipeline =
  Arg.(value & flag & info [ "pipeline" ] ~doc:"Enable work-item pipelining.")

let comm_mode =
  let parse = function
    | "barrier" -> Ok Config.Barrier_mode
    | "pipeline" -> Ok Config.Pipeline_mode
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf = function
    | Config.Barrier_mode -> Format.pp_print_string ppf "barrier"
    | Config.Pipeline_mode -> Format.pp_print_string ppf "pipeline"
  in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Pipeline_mode
    & info [ "mode" ] ~docv:"MODE" ~doc:"Communication mode: barrier or pipeline.")

let buffer_size =
  Arg.(
    value & opt int 4096
    & info [ "buffer-size" ] ~docv:"N" ~doc:"Elements per buffer argument.")

let int_args =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string int) []
    & info [ "int-arg" ] ~docv:"NAME=V" ~doc:"Pin an integer scalar argument.")

let float_args =
  Arg.(
    value
    & opt_all (pair ~sep:'=' string float) []
    & info [ "float-arg" ] ~docv:"NAME=V" ~doc:"Pin a float scalar argument.")

(* ------------------------------------------------------------------ *)
(* Kernel / launch resolution *)

let launch_for_file kernel ~global ~wg ~buffer_size ~ints ~floats =
  let args =
    List.mapi
      (fun i (p : Ast.param) ->
        let name = p.Ast.p_name in
        match p.Ast.p_type with
        | Types.Ptr _ ->
            (name, L.Buffer { length = buffer_size; init = L.Random_floats (i + 1) })
        | Types.Scalar s when Types.is_float s ->
            let v = Option.value (List.assoc_opt name floats) ~default:1.0 in
            (name, L.Scalar (L.Float v))
        | _ ->
            let v =
              Option.value (List.assoc_opt name ints) ~default:buffer_size
            in
            (name, L.Scalar (L.Int (Int64.of_int v))))
      kernel.Ast.k_params
  in
  L.make ~global:(L.dim3 global) ~local:(L.dim3 wg) ~args

let resolve ~file ~workload ~global ~wg ~buffer_size ~ints ~floats =
  match (file, workload) with
  | Some _, Some _ -> Error "--kernel and --workload are mutually exclusive"
  | None, None -> Error "one of --kernel FILE or --workload NAME is required"
  | Some f, None -> (
      let src =
        let ic = open_in f in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      in
      match Parser.parse_kernel src with
      | k -> Ok (f, k, launch_for_file k ~global ~wg ~buffer_size ~ints ~floats)
      | exception Parser.Error (msg, line, col) ->
          Error (Printf.sprintf "%s:%d:%d: %s" f line col msg)
      | exception Lexer.Error (msg, line, col) ->
          Error (Printf.sprintf "%s:%d:%d: %s" f line col msg))
  | None, Some name -> (
      match List.find_opt (fun w -> W.name w = name) all_workloads with
      | Some w -> Ok (name, W.parse w, w.W.launch)
      | None ->
          Error
            (Printf.sprintf "unknown workload %S (try 'flexcl workloads')" name))

let with_kernel file workload global wg buffer_size ints floats f =
  match
    resolve ~file ~workload ~global ~wg ~buffer_size ~ints ~floats
  with
  | Error msg ->
      prerr_endline ("flexcl: " ^ msg);
      1
  | Ok (name, kernel, launch) -> (
      match Analysis.analyze kernel launch with
      | a -> f name a
      | exception Sema.Error msg ->
          Printf.eprintf "flexcl: %s: semantic error: %s\n" name msg;
          1
      | exception Flexcl_interp.Interp.Runtime_error msg ->
          Printf.eprintf "flexcl: %s: profiling failed: %s\n" name msg;
          1)

(* ------------------------------------------------------------------ *)
(* analyze *)

let print_breakdown dev name cfg (b : Model.breakdown) =
  Printf.printf "kernel        : %s on %s\n" name dev.Device.name;
  Printf.printf "design point  : %s\n" (Config.to_string cfg);
  Printf.printf "II work-item  : %d (RecMII %d, ResMII %d)\n" b.Model.ii_wi
    b.Model.rec_mii b.Model.res_mii;
  Printf.printf "depth         : %d cycles\n" b.Model.depth_pe;
  Printf.printf "L_PE          : %.0f cycles\n" b.Model.l_pe;
  Printf.printf "L_CU          : %.0f cycles (N_PE eff %d)\n" b.Model.l_cu
    b.Model.n_pe_eff;
  Printf.printf "L_comp kernel : %.0f cycles (N_CU eff %d)\n" b.Model.l_comp_kernel
    b.Model.n_cu_eff;
  Printf.printf "L_mem / WI    : %.2f cycles\n" b.Model.l_mem_wi;
  List.iter
    (fun (p, c) ->
      if c > 0.004 then
        Printf.printf "  %-10s %.3f txns/WI\n" (Flexcl_dram.Dram.pattern_name p) c)
    b.Model.pattern_counts;
  Printf.printf "DSP footprint : %d per PE\n" b.Model.dsp_footprint;
  Printf.printf "TOTAL         : %.0f cycles = %.2f us\n" b.Model.cycles
    (b.Model.seconds *. 1e6);
  Printf.printf "bottleneck    : %s\n" (Model.bottleneck b)

let analyze_cmd =
  let run dev file workload global wg pe cu pipe mode buffer_size ints floats =
    with_kernel file workload global wg buffer_size ints floats (fun name a ->
        let cfg =
          { Config.wg_size = L.wg_size a.Analysis.launch; n_pe = pe; n_cu = cu;
            wi_pipeline = pipe; comm_mode = mode }
        in
        if not (Model.feasible dev a cfg) then begin
          Printf.eprintf "flexcl: design point %s exceeds %s resources\n"
            (Config.to_string cfg) dev.Device.name;
          1
        end
        else begin
          print_breakdown dev name cfg (Model.estimate dev a cfg);
          0
        end)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Estimate a kernel's performance analytically.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ n_pe $ n_cu $ pipeline $ comm_mode $ buffer_size $ int_args
      $ float_args)

(* ------------------------------------------------------------------ *)
(* simulate *)

let simulate_cmd =
  let run dev file workload global wg pe cu pipe mode buffer_size ints floats =
    with_kernel file workload global wg buffer_size ints floats (fun name a ->
        let cfg =
          { Config.wg_size = L.wg_size a.Analysis.launch; n_pe = pe; n_cu = cu;
            wi_pipeline = pipe; comm_mode = mode }
        in
        let b = Model.estimate dev a cfg in
        let s = Sysrun.run dev a cfg in
        Printf.printf "kernel    : %s on %s (%s)\n" name dev.Device.name
          (Config.to_string cfg);
        Printf.printf "model     : %.0f cycles\n" b.Model.cycles;
        Printf.printf "simulator : %.0f cycles (%d DRAM transactions)\n"
          s.Sysrun.cycles s.Sysrun.mem_transactions;
        Printf.printf "error     : %.1f%%\n"
          (100.0 *. Float.abs (b.Model.cycles -. s.Sysrun.cycles) /. s.Sysrun.cycles);
        0)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run the cycle-level System-Run simulator and compare to the model.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ n_pe $ n_cu $ pipeline $ comm_mode $ buffer_size $ int_args
      $ float_args)

(* ------------------------------------------------------------------ *)
(* explore *)

let explore_cmd =
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the N best points.")
  in
  let run dev file workload global wg buffer_size ints floats top =
    with_kernel file workload global wg buffer_size ints floats (fun name a ->
        let space =
          Space.default ~total_work_items:(L.n_work_items a.Analysis.launch)
        in
        let ranked = Explore.exhaustive dev a space (Explore.model_oracle dev) in
        Printf.printf "%s: %d feasible design points\n\n" name (List.length ranked);
        let t = Table.create ~headers:[ "rank"; "configuration"; "cycles"; "us" ] in
        List.iteri
          (fun i (e : Explore.evaluated) ->
            if i < top then
              Table.add_row t
                [
                  string_of_int (i + 1);
                  Config.to_string e.Explore.config;
                  Printf.sprintf "%.0f" e.Explore.cycles;
                  Printf.sprintf "%.2f"
                    (Device.cycles_to_seconds dev e.Explore.cycles *. 1e6);
                ])
          ranked;
        print_string (Table.render t);
        let greedy = Heuristic.search dev a space (Explore.model_oracle dev) in
        Printf.printf "\ngreedy heuristic [16] would pick %s (%.0f cycles)\n"
          (Config.to_string greedy.Explore.config) greedy.Explore.cycles;
        0)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Exhaustively explore the optimization design space.")
    Term.(
      const run $ device_arg $ kernel_file $ workload_name $ global_size
      $ wg_size $ buffer_size $ int_args $ float_args $ top)

(* ------------------------------------------------------------------ *)
(* workloads *)

let workloads_cmd =
  let suite =
    Arg.(
      value
      & opt (some string) None
      & info [ "suite" ] ~docv:"NAME" ~doc:"Filter: rodinia or polybench.")
  in
  let run suite =
    let t = Table.create ~headers:[ "name"; "suite"; "work-items"; "wg" ] in
    List.iter
      (fun w ->
        if suite = None || suite = Some w.W.suite then
          Table.add_row t
            [
              W.name w;
              w.W.suite;
              string_of_int (L.n_work_items w.W.launch);
              string_of_int (L.wg_size w.W.launch);
            ])
      all_workloads;
    print_string (Table.render t);
    0
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the built-in Rodinia/PolyBench kernels.")
    Term.(const run $ suite)

let () =
  let info =
    Cmd.info "flexcl" ~version:"1.0.0"
      ~doc:"Analytical performance model for OpenCL workloads on FPGAs."
  in
  exit (Cmd.eval' (Cmd.group info [ analyze_cmd; simulate_cmd; explore_cmd; workloads_cmd ]))
