open Flexcl_opencl
open Flexcl_ir
module Interp = Flexcl_interp.Interp
module Dram = Flexcl_dram.Dram

type t = {
  kernel : Ast.kernel;
  sema : Sema.info;
  launch : Launch.t;
  cdfg : Cdfg.t;
  profile : Interp.profile;
  wi_recurrences : Depend.recurrence list;
  loop_recurrences : (int * Depend.recurrence list) list;
  layout : Dram.layout;
}

let buffer_layout (kernel : Ast.kernel) (launch : Launch.t) =
  let sized =
    List.filter_map
      (fun (p : Ast.param) ->
        match Launch.find_arg launch p.Ast.p_name with
        | Some (Launch.Buffer { length; _ }) ->
            let bits =
              match Types.elem p.Ast.p_type with
              | Types.Scalar s -> Types.scalar_bits s
              | _ -> 32
            in
            Some (p.Ast.p_name, length * (bits / 8))
        | Some (Launch.Scalar _) | None -> None)
      kernel.Ast.k_params
  in
  Dram.layout sized

let analyze ?(max_work_groups = 3) (kernel : Ast.kernel) (launch : Launch.t) =
  let sema = Sema.analyze kernel in
  let cdfg = Lower.lower kernel sema launch in
  let profile = Interp.run ~max_work_groups kernel sema launch in
  {
    kernel;
    sema;
    launch;
    cdfg;
    profile;
    wi_recurrences = Depend.work_item_recurrences cdfg launch;
    loop_recurrences = Depend.loop_recurrences cdfg launch;
    layout = buffer_layout kernel launch;
  }

let of_source ?max_work_groups src launch =
  analyze ?max_work_groups (Parser.parse_kernel src) launch

let trip t (info : Cdfg.loop_info) =
  match info.Cdfg.static_trip with
  | Some n -> float_of_int n
  | None -> Interp.trip_of t.profile info.Cdfg.loop_id

let divisors n =
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let with_wg_size t wg_size =
  let g = t.launch.Launch.global in
  let candidates =
    List.concat_map
      (fun lx ->
        if wg_size mod lx <> 0 then []
        else
          List.filter_map
            (fun ly ->
              let rest = wg_size / lx in
              if rest mod ly <> 0 then None
              else
                let lz = rest / ly in
                if g.Launch.z mod lz = 0 then Some (lx, ly, lz) else None)
            (divisors (min g.Launch.y (wg_size / lx))))
      (divisors (min g.Launch.x wg_size))
  in
  (* prefer wide-x shapes, matching how the paper's kernels are launched *)
  match List.sort (fun (a, _, _) (b, _, _) -> compare b a) candidates with
  | [] ->
      invalid_arg
        (Printf.sprintf "Analysis.with_wg_size: %d does not tile the NDRange"
           wg_size)
  | (lx, ly, lz) :: _ ->
      let launch =
        Launch.make ~global:g
          ~local:{ Launch.x = lx; y = ly; z = lz }
          ~args:t.launch.Launch.args
      in
      analyze t.kernel launch
