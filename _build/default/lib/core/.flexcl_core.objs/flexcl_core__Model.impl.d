lib/core/model.ml: Analysis Array Ast Cdfg Config Depend Dfg Flexcl_device Flexcl_dram Flexcl_interp Flexcl_ir Flexcl_opencl Flexcl_sched Flexcl_util Float Hashtbl Launch List Opcode Option
