lib/core/config.ml: Printf Stdlib
