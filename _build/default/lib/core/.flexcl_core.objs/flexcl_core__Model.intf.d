lib/core/model.mli: Analysis Config Flexcl_device Flexcl_dram Flexcl_ir
