lib/core/analysis.ml: Ast Cdfg Depend Flexcl_dram Flexcl_interp Flexcl_ir Flexcl_opencl Launch List Lower Parser Printf Sema Types
