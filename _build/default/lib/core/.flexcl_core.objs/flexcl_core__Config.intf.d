lib/core/config.mli:
