lib/core/analysis.mli: Ast Cdfg Depend Flexcl_dram Flexcl_interp Flexcl_ir Flexcl_opencl Launch Sema
