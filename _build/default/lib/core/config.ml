type comm_mode = Barrier_mode | Pipeline_mode

type t = {
  wg_size : int;
  n_pe : int;
  n_cu : int;
  wi_pipeline : bool;
  comm_mode : comm_mode;
}

let default =
  { wg_size = 64; n_pe = 1; n_cu = 1; wi_pipeline = false; comm_mode = Barrier_mode }

let to_string t =
  Printf.sprintf "wg%d pe%d cu%d %s %s" t.wg_size t.n_pe t.n_cu
    (if t.wi_pipeline then "pipe" else "nopipe")
    (match t.comm_mode with Barrier_mode -> "barrier" | Pipeline_mode -> "pipeline")

let compare = Stdlib.compare
