lib/interp/interp.ml: Array Ast Builtins Flexcl_ir Flexcl_opencl Flexcl_util Float Hashtbl Int64 Launch List Option Printf Sema Types
