lib/interp/interp.mli: Ast Flexcl_ir Flexcl_opencl Launch Sema
