lib/sched/listsched.ml: Array Flexcl_ir Flexcl_util Fun List
