lib/sched/sms.ml: Array Flexcl_util Fun List Option
