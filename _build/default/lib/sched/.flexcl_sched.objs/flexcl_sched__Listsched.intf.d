lib/sched/listsched.mli: Flexcl_ir
