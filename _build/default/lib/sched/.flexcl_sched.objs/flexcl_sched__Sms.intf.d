lib/sched/sms.mli:
