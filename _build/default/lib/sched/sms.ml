module Graph = Flexcl_util.Graph

type usage = { reads : int; writes : int; dsps : int }

let no_usage = { reads = 0; writes = 0; dsps = 0 }

type limits = { read_ports : int; write_ports : int; dsp_slots : int }

let unlimited = { read_ports = max_int; write_ports = max_int; dsp_slots = max_int }

type problem = {
  lat : int array;
  usage : usage array;
  deps : (int * int * int) list;
}

let n_nodes p = Array.length p.lat

let ceil_div a b = if b <= 0 then 1 else (a + b - 1) / b

let res_mii p limits =
  let total f = Array.fold_left (fun acc u -> acc + f u) 0 p.usage in
  let of_limit total limit = if limit = max_int || total = 0 then 1 else ceil_div total limit in
  let r = of_limit (total (fun u -> u.reads)) limits.read_ports in
  let w = of_limit (total (fun u -> u.writes)) limits.write_ports in
  let d = of_limit (total (fun u -> u.dsps)) limits.dsp_slots in
  max 1 (max r (max w d))

let full_graph p =
  let g = Graph.create (n_nodes p) in
  List.iter (fun (u, v, dist) -> Graph.add_edge ~weight:dist g u v) p.deps;
  g

let rec_mii p =
  if n_nodes p = 0 then 1
  else
    let g = full_graph p in
    max 1 (Graph.max_cycle_ratio g ~cost:(fun u -> p.lat.(u)))

let mii p limits = max (rec_mii p) (res_mii p limits)

type result = { ii : int; depth : int; start : int array }

(* Longest latency-weighted path to a sink over distance-0 edges. *)
let heights p =
  let n = n_nodes p in
  let g = Graph.create n in
  List.iter (fun (u, v, dist) -> if dist = 0 then Graph.add_edge g u v) p.deps;
  match Graph.topo_sort g with
  | None -> invalid_arg "Sms: zero-distance dependence cycle"
  | Some order ->
      let h = Array.make n 0 in
      List.iter
        (fun u ->
          let best =
            List.fold_left (fun acc (v, _) -> max acc h.(v)) 0 (Graph.succs g u)
          in
          h.(u) <- p.lat.(u) + best)
        (List.rev order);
      h

let recurrence_members p =
  let g = full_graph p in
  let members = Array.make (max 1 (n_nodes p)) false in
  List.iter
    (fun comp ->
      match comp with
      | [ u ] -> if Graph.has_self_loop g u then members.(u) <- true
      | _ -> List.iter (fun u -> members.(u) <- true) comp)
    (Graph.sccs g);
  members

let try_ii p limits ~priority ii =
  let n = n_nodes p in
  let start = Array.make n (-1) in
  let mrt_r = Array.make ii 0 and mrt_w = Array.make ii 0 and mrt_d = Array.make ii 0 in
  let fits t u =
    let s = t mod ii in
    let usg = p.usage.(u) in
    (limits.read_ports = max_int || mrt_r.(s) + usg.reads <= limits.read_ports)
    && (limits.write_ports = max_int || mrt_w.(s) + usg.writes <= limits.write_ports)
    && (limits.dsp_slots = max_int || mrt_d.(s) + usg.dsps <= limits.dsp_slots)
  in
  let reserve t u =
    let s = t mod ii in
    let usg = p.usage.(u) in
    mrt_r.(s) <- mrt_r.(s) + usg.reads;
    mrt_w.(s) <- mrt_w.(s) + usg.writes;
    mrt_d.(s) <- mrt_d.(s) + usg.dsps
  in
  let ok = ref true in
  List.iter
    (fun u ->
      if !ok then begin
        (* window from already-scheduled neighbours *)
        let est = ref 0 and lst = ref max_int in
        List.iter
          (fun (a, b, dist) ->
            if b = u && start.(a) >= 0 then
              est := max !est (start.(a) + p.lat.(a) - (ii * dist));
            if a = u && start.(b) >= 0 then
              lst := min !lst (start.(b) - p.lat.(u) + (ii * dist)))
          p.deps;
        let est = max 0 !est in
        let ub = min !lst (est + ii - 1) in
        let rec find t = if t > ub then None else if fits t u then Some t else find (t + 1) in
        match find est with
        | Some t ->
            start.(u) <- t;
            reserve t u
        | None -> ok := false
      end)
    priority;
  if not !ok then None
  else begin
    (* final verification of every dependence *)
    let valid =
      List.for_all
        (fun (a, b, dist) -> start.(b) >= start.(a) + p.lat.(a) - (ii * dist))
        p.deps
    in
    if not valid then None
    else
      let depth =
        Array.to_list (Array.init n (fun u -> start.(u) + p.lat.(u)))
        |> List.fold_left max 0
      in
      Some { ii; depth; start }
  end

let schedule ?max_ii p limits =
  let n = n_nodes p in
  if n = 0 then { ii = 1; depth = 0; start = [||] }
  else begin
    let m = mii p limits in
    let max_ii = Option.value max_ii ~default:(m + 256) in
    let h = heights p in
    let members = recurrence_members p in
    let priority =
      List.init n Fun.id
      |> List.sort (fun a b ->
             compare
               ((if members.(b) then 1 else 0), h.(b), a)
               ((if members.(a) then 1 else 0), h.(a), b))
    in
    let rec attempt ii =
      if ii > max_ii then invalid_arg "Sms.schedule: no feasible II found"
      else
        match try_ii p limits ~priority ii with
        | Some r -> r
        | None -> attempt (ii + 1)
    in
    attempt m
  end
