(** Modulo scheduling in the style of Swing Modulo Scheduling, used to
    derive the work-item initiation interval [II_comp^wi] and the
    pipeline depth [D_comp^PE] (paper §3.3.1), and the II of pipelined
    inner loops.

    The scheduler is generic over "nodes" so it can run at op granularity
    (loop bodies) or at basic-block macro-node granularity (the work-item
    pipeline): a problem is an array of latencies, an array of per-issue
    resource usages, and dependence edges with iteration distances.
    Distance-0 edges must form a DAG; recurrences enter through edges
    with distance >= 1. *)

type usage = { reads : int; writes : int; dsps : int }
(** Resources occupied in the node's issue cycle (fully pipelined
    units). *)

val no_usage : usage

type limits = { read_ports : int; write_ports : int; dsp_slots : int }

val unlimited : limits

type problem = {
  lat : int array;
  usage : usage array;
  deps : (int * int * int) list;
      (** [(producer, consumer, distance)]; distance in initiations. *)
}

val res_mii : problem -> limits -> int
(** Resource-constrained MII (Eq. 3–4): for each resource,
    [ceil (total usage / available per cycle)]; at least 1. *)

val rec_mii : problem -> int
(** Recurrence-constrained MII: max over dependence cycles of
    [ceil (cycle latency / cycle distance)] (Eq. 2's RecMII). 1 when there
    is no recurrence. Raises [Invalid_argument] on a zero-distance
    cycle. *)

val mii : problem -> limits -> int
(** [max (rec_mii p) (res_mii p limits)] (Eq. 2). *)

type result = {
  ii : int;           (** achieved initiation interval, >= MII. *)
  depth : int;        (** schedule length: one initiation's makespan. *)
  start : int array;  (** issue cycle of each node. *)
}

val schedule : ?max_ii:int -> problem -> limits -> result
(** Modulo-schedule the problem: starting at MII, try increasing II until
    a schedule satisfies all dependence and modulo-resource constraints.
    Nodes are placed highest-priority first (priority = criticality:
    membership in the tightest recurrence, then height). Raises
    [Invalid_argument] when no schedule is found up to [max_ii]
    (default [mii + 256]) — which cannot happen for well-formed problems
    whose single-node usages fit the limits. *)
