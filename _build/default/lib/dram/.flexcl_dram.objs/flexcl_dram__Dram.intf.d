lib/dram/dram.mli: Flexcl_interp
