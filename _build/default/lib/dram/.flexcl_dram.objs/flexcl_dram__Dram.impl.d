lib/dram/dram.ml: Array Flexcl_interp Hashtbl List Printf
