lib/dse/explore.ml: Flexcl_core Flexcl_ir Flexcl_simrtl Float Hashtbl List Space
