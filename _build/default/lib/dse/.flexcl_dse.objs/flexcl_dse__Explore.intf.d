lib/dse/explore.mli: Flexcl_core Space
