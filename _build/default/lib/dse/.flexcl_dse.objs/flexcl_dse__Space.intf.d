lib/dse/space.mli: Flexcl_core
