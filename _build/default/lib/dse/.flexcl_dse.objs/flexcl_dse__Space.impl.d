lib/dse/space.ml: Flexcl_core List
