lib/dse/heuristic.ml: Explore Flexcl_core List Space
