lib/dse/heuristic.mli: Explore Flexcl_core Space
