(** Design-space definition (§4.1): the cross product of work-group size,
    work-item pipelining, PE and CU parallelism, and communication mode. *)

module Config = Flexcl_core.Config

type t = {
  wg_sizes : int list;
  pe_counts : int list;
  cu_counts : int list;
  pipeline_choices : bool list;
  comm_modes : Config.comm_mode list;
}

val default : total_work_items:int -> t
(** The sweep used throughout the evaluation: work-group sizes
    {32, 64, 128, 256} (clipped to divisors of the NDRange), PE counts
    {1, 2, 4, 8}, CU counts {1, 2, 4}, pipelining on/off, both
    communication modes — a few hundred raw points, matching the
    "#Designs" column of Table 2 after feasibility filtering. *)

val points : t -> Config.t list
(** All design points, in a deterministic order. *)

val size : t -> int

val feasible_points :
  Flexcl_core.Model.Device.t -> Flexcl_core.Analysis.t -> t -> Config.t list
(** Points that pass {!Flexcl_core.Model.feasible}. *)
