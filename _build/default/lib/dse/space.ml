module Config = Flexcl_core.Config
module Model = Flexcl_core.Model

type t = {
  wg_sizes : int list;
  pe_counts : int list;
  cu_counts : int list;
  pipeline_choices : bool list;
  comm_modes : Config.comm_mode list;
}

let default ~total_work_items =
  let wg_sizes =
    List.filter
      (fun w -> w <= total_work_items && total_work_items mod w = 0)
      [ 32; 64; 128; 256 ]
  in
  let wg_sizes = if wg_sizes = [] then [ total_work_items ] else wg_sizes in
  {
    wg_sizes;
    pe_counts = [ 1; 2; 4; 8 ];
    cu_counts = [ 1; 2; 4 ];
    pipeline_choices = [ false; true ];
    comm_modes = [ Config.Barrier_mode; Config.Pipeline_mode ];
  }

let points t =
  List.concat_map
    (fun wg ->
      List.concat_map
        (fun pe ->
          List.concat_map
            (fun cu ->
              List.concat_map
                (fun pipe ->
                  List.map
                    (fun mode ->
                      {
                        Config.wg_size = wg;
                        n_pe = pe;
                        n_cu = cu;
                        wi_pipeline = pipe;
                        comm_mode = mode;
                      })
                    t.comm_modes)
                t.pipeline_choices)
            t.cu_counts)
        t.pe_counts)
    t.wg_sizes

let size t = List.length (points t)

let feasible_points dev analysis t =
  List.filter (fun c -> Model.feasible dev analysis c) (points t)
