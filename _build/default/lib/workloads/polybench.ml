(* PolyBench kernels in the FlexCL OpenCL subset. PolyBench kernels have
   simpler, fully-affine structures than Rodinia (§4.2), which is why the
   paper reports a slightly lower average error on them. Matrices are
   32x32 (N = 32) so one work-item computes one output element. *)

module L = Flexcl_ir.Launch

let n = 32
let nn = n * n

(* 1-D kernels give each row its own work-item: 256 rows. *)
let m = 256
let mm = m * m

let fbuf length seed = L.Buffer { length; init = L.Random_floats seed }
let zbuf length = L.Buffer { length; init = L.Zeros }
let int_ v = L.Scalar (L.Int (Int64.of_int v))
let float_ x = L.Scalar (L.Float x)

let launch1d args = L.make ~global:(L.dim3 m) ~local:(L.dim3 64) ~args

let launch2d args =
  L.make ~global:(L.dim3 ~y:n n) ~local:(L.dim3 ~y:2 32) ~args

let mk benchmark source launch =
  { Workload.suite = "polybench"; benchmark; kernel = benchmark; source; launch }

let gemm =
  mk "gemm"
    {|
__kernel void gemm(__global const float* a, __global const float* b,
                   __global float* c, int nk, float alpha, float beta) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < nk; k++) {
    acc += a[i * nk + k] * b[k * nk + j];
  }
  c[i * nk + j] = beta * c[i * nk + j] + alpha * acc;
}
|}
    (launch2d
       [
         ("a", fbuf nn 501);
         ("b", fbuf nn 502);
         ("c", fbuf nn 503);
         ("nk", int_ n);
         ("alpha", float_ 1.5);
         ("beta", float_ 1.2);
       ])

let mm2 =
  mk "2mm"
    {|
__kernel void mm2(__global const float* a, __global const float* b,
                  __global const float* tmp_in, __global float* d_out,
                  int nk, float alpha) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < nk; k++) {
    acc += alpha * a[i * nk + k] * b[k * nk + j];
  }
  float acc2 = 0.0f;
  for (int k = 0; k < nk; k++) {
    acc2 += tmp_in[i * nk + k] * b[k * nk + j];
  }
  d_out[i * nk + j] = acc + acc2;
}
|}
    (launch2d
       [
         ("a", fbuf nn 511);
         ("b", fbuf nn 512);
         ("tmp_in", fbuf nn 513);
         ("d_out", zbuf nn);
         ("nk", int_ n);
         ("alpha", float_ 1.5);
       ])

let mm3 =
  mk "3mm"
    {|
__kernel void mm3(__global const float* e, __global const float* f,
                  __global float* g, int nk) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < nk; k++) {
    acc += e[i * nk + k] * f[k * nk + j];
  }
  g[i * nk + j] = acc;
}
|}
    (launch2d
       [ ("e", fbuf nn 521); ("f", fbuf nn 522); ("g", zbuf nn); ("nk", int_ n) ])

let atax =
  mk "atax"
    {|
__kernel void atax(__global const float* a, __global const float* tmp,
                   __global float* y, int nrows, int ncols) {
  int j = get_global_id(0);
  if (j < ncols) {
    float acc = 0.0f;
    for (int i = 0; i < nrows; i++) {
      acc += a[i * ncols + j] * tmp[i];
    }
    y[j] = acc;
  }
}
|}
    (launch1d
       [
         ("a", fbuf mm 531);
         ("tmp", fbuf m 532);
         ("y", zbuf m);
         ("nrows", int_ m);
         ("ncols", int_ m);
       ])

let bicg =
  mk "bicg"
    {|
__kernel void bicg(__global const float* a, __global const float* p,
                   __global const float* r, __global float* q,
                   __global float* s, int nrows, int ncols) {
  int i = get_global_id(0);
  if (i < nrows) {
    float accq = 0.0f;
    float accs = 0.0f;
    for (int j = 0; j < ncols; j++) {
      accq += a[i * ncols + j] * p[j];
      accs += a[j * ncols + i] * r[j];
    }
    q[i] = accq;
    s[i] = accs;
  }
}
|}
    (launch1d
       [
         ("a", fbuf mm 541);
         ("p", fbuf m 542);
         ("r", fbuf m 543);
         ("q", zbuf m);
         ("s", zbuf m);
         ("nrows", int_ m);
         ("ncols", int_ m);
       ])

let mvt =
  mk "mvt"
    {|
__kernel void mvt(__global float* x1, __global float* x2,
                  __global const float* y1, __global const float* y2,
                  __global const float* a, int nsize) {
  int i = get_global_id(0);
  if (i < nsize) {
    float acc1 = 0.0f;
    float acc2 = 0.0f;
    for (int j = 0; j < nsize; j++) {
      acc1 += a[i * nsize + j] * y1[j];
      acc2 += a[j * nsize + i] * y2[j];
    }
    x1[i] = x1[i] + acc1;
    x2[i] = x2[i] + acc2;
  }
}
|}
    (launch1d
       [
         ("x1", fbuf m 551);
         ("x2", fbuf m 552);
         ("y1", fbuf m 553);
         ("y2", fbuf m 554);
         ("a", fbuf mm 555);
         ("nsize", int_ m);
       ])

let gesummv =
  mk "gesummv"
    {|
__kernel void gesummv(__global const float* a, __global const float* b,
                      __global const float* x, __global float* y,
                      int nsize, float alpha, float beta) {
  int i = get_global_id(0);
  if (i < nsize) {
    float acc_a = 0.0f;
    float acc_b = 0.0f;
    for (int j = 0; j < nsize; j++) {
      acc_a += a[i * nsize + j] * x[j];
      acc_b += b[i * nsize + j] * x[j];
    }
    y[i] = alpha * acc_a + beta * acc_b;
  }
}
|}
    (launch1d
       [
         ("a", fbuf mm 561);
         ("b", fbuf mm 562);
         ("x", fbuf m 563);
         ("y", zbuf m);
         ("nsize", int_ m);
         ("alpha", float_ 1.5);
         ("beta", float_ 1.2);
       ])

let syrk =
  mk "syrk"
    {|
__kernel void syrk(__global const float* a, __global float* c,
                   int nsize, float alpha, float beta) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < nsize; k++) {
    acc += a[i * nsize + k] * a[j * nsize + k];
  }
  c[i * nsize + j] = beta * c[i * nsize + j] + alpha * acc;
}
|}
    (launch2d
       [
         ("a", fbuf nn 571);
         ("c", fbuf nn 572);
         ("nsize", int_ n);
         ("alpha", float_ 1.5);
         ("beta", float_ 1.2);
       ])

let syr2k =
  mk "syr2k"
    {|
__kernel void syr2k(__global const float* a, __global const float* b,
                    __global float* c, int nsize, float alpha, float beta) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < nsize; k++) {
    acc += a[i * nsize + k] * b[j * nsize + k]
         + b[i * nsize + k] * a[j * nsize + k];
  }
  c[i * nsize + j] = beta * c[i * nsize + j] + alpha * acc;
}
|}
    (launch2d
       [
         ("a", fbuf nn 581);
         ("b", fbuf nn 582);
         ("c", fbuf nn 583);
         ("nsize", int_ n);
         ("alpha", float_ 1.5);
         ("beta", float_ 1.2);
       ])

let gramschmidt =
  mk "gramschmidt"
    {|
__kernel void gramschmidt(__global const float* a, __global float* q,
                          int nsize, int col) {
  int i = get_global_id(0);
  if (i < nsize) {
    float norm = 0.0f;
    for (int k = 0; k < nsize; k++) {
      float v = a[k * nsize + col];
      norm += v * v;
    }
    float r = sqrt(norm) + 0.001f;
    q[i * nsize + col] = a[i * nsize + col] / r;
  }
}
|}
    (launch1d
       [
         ("a", fbuf mm 591);
         ("q", zbuf mm);
         ("nsize", int_ m);
         ("col", int_ 3);
       ])

let covariance =
  mk "covariance"
    {|
__kernel void covariance(__global const float* data, __global const float* mean,
                         __global float* cov, int npoints, int ndims) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < npoints; k++) {
    acc += (data[k * ndims + i] - mean[i]) * (data[k * ndims + j] - mean[j]);
  }
  cov[i * ndims + j] = acc / ((float)npoints - 1.0f);
}
|}
    (launch2d
       [
         ("data", fbuf nn 601);
         ("mean", fbuf n 602);
         ("cov", zbuf nn);
         ("npoints", int_ n);
         ("ndims", int_ n);
       ])

let correlation =
  mk "correlation"
    {|
__kernel void correlation(__global const float* data, __global const float* mean,
                          __global const float* stddev, __global float* corr,
                          int npoints, int ndims) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  float acc = 0.0f;
  for (int k = 0; k < npoints; k++) {
    acc += (data[k * ndims + i] - mean[i]) * (data[k * ndims + j] - mean[j]);
  }
  corr[i * ndims + j] = acc / ((float)npoints * stddev[i] * stddev[j] + 0.001f);
}
|}
    (launch2d
       [
         ("data", fbuf nn 611);
         ("mean", fbuf n 612);
         ("stddev", fbuf n 613);
         ("corr", zbuf nn);
         ("npoints", int_ n);
         ("ndims", int_ n);
       ])

let doitgen =
  mk "doitgen"
    {|
__kernel void doitgen(__global const float* a, __global const float* c4,
                      __global float* sum, int np, int nq) {
  int r = get_global_id(1);
  int q = get_global_id(0);
  for (int p = 0; p < np; p++) {
    float acc = 0.0f;
    for (int s = 0; s < np; s++) {
      acc += a[(r * nq + q) * np + s] * c4[s * np + p];
    }
    sum[(r * nq + q) * np + p] = acc;
  }
}
|}
    (launch2d
       [
         ("a", fbuf (nn * n) 621);
         ("c4", fbuf nn 622);
         ("sum", zbuf (nn * n));
         ("np", int_ n);
         ("nq", int_ n);
       ])

let fdtd2d =
  mk "fdtd2d"
    {|
__kernel void fdtd2d(__global float* ey, __global float* ex,
                     __global const float* hz, int nx, int ny) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  int idx = i * ny + j;
  if (i > 0) {
    ey[idx] = ey[idx] - 0.5f * (hz[idx] - hz[idx - ny]);
  }
  if (j > 0) {
    ex[idx] = ex[idx] - 0.5f * (hz[idx] - hz[idx - 1]);
  }
}
|}
    (launch2d
       [
         ("ey", fbuf nn 631);
         ("ex", fbuf nn 632);
         ("hz", fbuf nn 633);
         ("nx", int_ n);
         ("ny", int_ n);
       ])

let jacobi2d =
  mk "jacobi2d"
    {|
__kernel void jacobi2d(__global const float* a, __global float* b, int nsize) {
  int i = get_global_id(1);
  int j = get_global_id(0);
  if (i > 0 && i < nsize - 1 && j > 0 && j < nsize - 1) {
    int idx = i * nsize + j;
    b[idx] = 0.2f * (a[idx] + a[idx - 1] + a[idx + 1]
                     + a[idx - nsize] + a[idx + nsize]);
  }
}
|}
    (launch2d [ ("a", fbuf nn 641); ("b", zbuf nn); ("nsize", int_ n) ])

let all : Workload.t list =
  [
    gemm;
    mm2;
    mm3;
    atax;
    bicg;
    mvt;
    gesummv;
    syrk;
    syr2k;
    gramschmidt;
    covariance;
    correlation;
    doitgen;
    fdtd2d;
    jacobi2d;
  ]
