(** A benchmark kernel: OpenCL source plus its evaluation launch.

    The Rodinia and PolyBench kernels of the paper's evaluation are
    rewritten in the FlexCL OpenCL subset — structurally faithful (same
    loop nests, array access patterns, [__local] usage, barriers) but
    sized so that profiling a few work-groups stays fast. *)

type t = {
  suite : string;      (** ["rodinia"] or ["polybench"]. *)
  benchmark : string;  (** e.g. ["backprop"]. *)
  kernel : string;     (** e.g. ["layer"]. *)
  source : string;     (** single-kernel OpenCL source. *)
  launch : Flexcl_ir.Launch.t;
}

val name : t -> string
(** ["benchmark/kernel"]. *)

val parse : t -> Flexcl_opencl.Ast.kernel
(** Parse the source (raises on malformed workload definitions — covered
    by tests). *)
