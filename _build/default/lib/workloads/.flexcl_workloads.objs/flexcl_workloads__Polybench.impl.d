lib/workloads/polybench.ml: Flexcl_ir Int64 Workload
