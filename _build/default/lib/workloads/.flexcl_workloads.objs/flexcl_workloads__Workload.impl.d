lib/workloads/workload.ml: Flexcl_ir Flexcl_opencl
