lib/workloads/polybench.mli: Workload
