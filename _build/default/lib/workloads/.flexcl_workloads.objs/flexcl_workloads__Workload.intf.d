lib/workloads/workload.mli: Flexcl_ir Flexcl_opencl
