lib/workloads/rodinia.ml: Flexcl_ir Int64 Printf Workload
