(** The 45 Rodinia kernels of the paper's Table 2 (19 benchmarks), in the
    FlexCL OpenCL subset with their evaluation launches. *)

val all : Workload.t list
(** In Table 2 order: backprop (layer, adjust), bfs (bfs_1, bfs_2),
    b+tree (findK, rangeK), cfd (memset, initialize, compute, time_step),
    dwt2d (compute, components, component, fdwt), gaussian (fan1, fan2),
    hotspot, hotspot3D, hybridsort (count, prefix, sort), kmeans (center,
    swap), lavaMD, leukocyte (gicov, dilate, imgvf), lud (diagonal,
    perimeter), nn, nw (nw1, nw2), particlefilter (find_index, normalize,
    sum, likelihood), pathfinder (dynproc), srad (extract, prepare,
    reduce, srad, srad2, compress), streamcluster (memset, pgain). *)
