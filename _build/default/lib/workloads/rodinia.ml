(* The 45 Rodinia kernels of Table 2, rewritten in the FlexCL OpenCL
   subset. Each kernel keeps the original's loop structure, memory access
   pattern, local-memory usage and barriers, with problem sizes scaled so
   that dynamic profiling stays fast. *)

module L = Flexcl_ir.Launch

let fbuf length seed = L.Buffer { length; init = L.Random_floats seed }
let ibuf length seed bound = L.Buffer { length; init = L.Random_ints (seed, bound) }
let zbuf length = L.Buffer { length; init = L.Zeros }
let rampf length = L.Buffer { length; init = L.Ramp }
let int_ n = L.Scalar (L.Int (Int64.of_int n))
let float_ x = L.Scalar (L.Float x)

let launch1d ?(wg = 64) n args = L.make ~global:(L.dim3 n) ~local:(L.dim3 wg) ~args

let launch2d ?(wg = (32, 2)) (gx, gy) args =
  L.make ~global:(L.dim3 ~y:gy gx) ~local:(L.dim3 ~y:(snd wg) (fst wg)) ~args

let mk benchmark kernel source launch =
  { Workload.suite = "rodinia"; benchmark; kernel; source; launch }

(* ------------------------------------------------------------------ *)
(* backprop *)

let backprop_layer =
  mk "backprop" "layer"
    {|
__kernel void layer(__global const float* input, __global const float* weights,
                    __global float* hidden, int in_size) {
  int gid = get_global_id(0);
  float sum = 0.0f;
  for (int i = 0; i < in_size; i++) {
    sum += input[i] * weights[i * 1024 + gid];
  }
  hidden[gid] = 1.0f / (1.0f + exp(-sum));
}
|}
    (launch1d 1024
       [
         ("input", fbuf 16 11);
         ("weights", fbuf (16 * 1024) 12);
         ("hidden", zbuf 1024);
         ("in_size", int_ 16);
       ])

let backprop_adjust =
  mk "backprop" "adjust"
    {|
__kernel void adjust(__global float* w, __global const float* delta,
                     __global const float* ly, __global float* oldw,
                     float eta, float momentum, int hid) {
  int gid = get_global_id(0);
  for (int j = 0; j < hid; j++) {
    int idx = gid * hid + j;
    float dw = eta * delta[j] * ly[gid] + momentum * oldw[idx];
    w[idx] = w[idx] + dw;
    oldw[idx] = dw;
  }
}
|}
    (launch1d 1024
       [
         ("w", fbuf (1024 * 16) 21);
         ("delta", fbuf 16 22);
         ("ly", fbuf 1024 23);
         ("oldw", zbuf (1024 * 16));
         ("eta", float_ 0.3);
         ("momentum", float_ 0.3);
         ("hid", int_ 16);
       ])

(* ------------------------------------------------------------------ *)
(* bfs *)

let bfs_1 =
  mk "bfs" "bfs_1"
    {|
__kernel void bfs_1(__global const int* node_start, __global const int* node_len,
                    __global const int* edges, __global int* mask,
                    __global int* updating, __global const int* visited,
                    __global int* cost, int n) {
  int tid = get_global_id(0);
  if (tid < n) {
    if (mask[tid] == 1) {
      mask[tid] = 0;
      int start = node_start[tid];
      int len = node_len[tid];
      for (int i = start; i < start + len; i++) {
        int id = edges[i];
        if (visited[id] == 0) {
          cost[id] = cost[tid] + 1;
          updating[id] = 1;
        }
      }
    }
  }
}
|}
    (launch1d 1024
       [
         ("node_start", ibuf 1024 31 4088);
         ("node_len", ibuf 1024 32 8);
         ("edges", ibuf 4096 33 1024);
         ("mask", ibuf 1024 34 2);
         ("updating", zbuf 1024);
         ("visited", ibuf 1024 35 2);
         ("cost", zbuf 1024);
         ("n", int_ 1024);
       ])

let bfs_2 =
  mk "bfs" "bfs_2"
    {|
__kernel void bfs_2(__global int* mask, __global int* updating,
                    __global int* visited, __global int* over, int n) {
  int tid = get_global_id(0);
  if (tid < n) {
    if (updating[tid] == 1) {
      mask[tid] = 1;
      visited[tid] = 1;
      over[0] = 1;
      updating[tid] = 0;
    }
  }
}
|}
    (launch1d 1024
       [
         ("mask", zbuf 1024);
         ("updating", ibuf 1024 41 2);
         ("visited", zbuf 1024);
         ("over", zbuf 1);
         ("n", int_ 1024);
       ])

(* ------------------------------------------------------------------ *)
(* b+tree *)

let btree_findk =
  mk "b+tree" "findK"
    {|
__kernel void findK(__global const int* node_keys, __global const int* node_ptrs,
                    __global const int* keys, __global int* ans,
                    int height, int order) {
  int gid = get_global_id(0);
  int key = keys[gid];
  int node = 0;
  for (int lvl = 0; lvl < height; lvl++) {
    int child = 0;
    for (int i = 0; i < order; i++) {
      if (node_keys[node * order + i] <= key) {
        child = i;
      }
    }
    node = node_ptrs[node * order + child];
  }
  ans[gid] = node;
}
|}
    (launch1d 1024
       [
         ("node_keys", ibuf (256 * 8) 51 1000);
         ("node_ptrs", ibuf (256 * 8) 52 256);
         ("keys", ibuf 1024 53 1000);
         ("ans", zbuf 1024);
         ("height", int_ 4);
         ("order", int_ 8);
       ])

let btree_rangek =
  mk "b+tree" "rangeK"
    {|
__kernel void rangeK(__global const int* node_keys, __global const int* node_ptrs,
                     __global const int* starts, __global const int* ends,
                     __global int* recstart, __global int* reclen,
                     int height, int order) {
  int gid = get_global_id(0);
  int lo = starts[gid];
  int hi = ends[gid];
  int node_lo = 0;
  int node_hi = 0;
  for (int lvl = 0; lvl < height; lvl++) {
    int child_lo = 0;
    int child_hi = 0;
    for (int i = 0; i < order; i++) {
      if (node_keys[node_lo * order + i] <= lo) { child_lo = i; }
      if (node_keys[node_hi * order + i] <= hi) { child_hi = i; }
    }
    node_lo = node_ptrs[node_lo * order + child_lo];
    node_hi = node_ptrs[node_hi * order + child_hi];
  }
  recstart[gid] = node_lo;
  reclen[gid] = node_hi - node_lo;
}
|}
    (launch1d 1024
       [
         ("node_keys", ibuf (256 * 8) 61 1000);
         ("node_ptrs", ibuf (256 * 8) 62 256);
         ("starts", ibuf 1024 63 500);
         ("ends", ibuf 1024 64 1000);
         ("recstart", zbuf 1024);
         ("reclen", zbuf 1024);
         ("height", int_ 4);
         ("order", int_ 8);
       ])

(* ------------------------------------------------------------------ *)
(* cfd *)

let cfd_memset =
  mk "cfd" "memset"
    {|
__kernel void memset(__global float* buf, float value, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    buf[gid] = value;
  }
}
|}
    (launch1d 1024 [ ("buf", zbuf 1024); ("value", float_ 0.0); ("n", int_ 1024) ])

let cfd_initialize =
  mk "cfd" "initialize"
    {|
__kernel void initialize(__global float* density, __global float* momentum_x,
                         __global float* momentum_y, __global float* energy,
                         __global const float* ff, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    density[gid] = ff[0];
    momentum_x[gid] = ff[1];
    momentum_y[gid] = ff[2];
    energy[gid] = ff[3];
  }
}
|}
    (launch1d 1024
       [
         ("density", zbuf 1024);
         ("momentum_x", zbuf 1024);
         ("momentum_y", zbuf 1024);
         ("energy", zbuf 1024);
         ("ff", fbuf 4 71);
         ("n", int_ 1024);
       ])

let cfd_compute =
  mk "cfd" "compute"
    {|
__kernel void compute(__global const int* neighbors, __global const float* density,
                      __global const float* momx, __global const float* momy,
                      __global float* fluxes, int nelr) {
  int i = get_global_id(0);
  float flux_d = 0.0f;
  float flux_x = 0.0f;
  float flux_y = 0.0f;
  for (int j = 0; j < 4; j++) {
    int nb = neighbors[i * 4 + j];
    float d = density[nb] + 1.0f;
    float mx = momx[nb];
    float my = momy[nb];
    float speed = sqrt(mx * mx + my * my) / d;
    flux_d += d * speed;
    flux_x += mx * speed;
    flux_y += my * speed;
  }
  fluxes[i * 3] = flux_d;
  fluxes[i * 3 + 1] = flux_x;
  fluxes[i * 3 + 2] = flux_y;
}
|}
    (launch1d 1024
       [
         ("neighbors", ibuf 4096 81 1024);
         ("density", fbuf 1024 82);
         ("momx", fbuf 1024 83);
         ("momy", fbuf 1024 84);
         ("fluxes", zbuf 3072);
         ("nelr", int_ 1024);
       ])

let cfd_time_step =
  mk "cfd" "time_step"
    {|
__kernel void time_step(__global float* vars, __global const float* old_vars,
                        __global const float* fluxes, float factor, int n) {
  int i = get_global_id(0);
  if (i < n) {
    vars[i] = old_vars[i] + factor * fluxes[i];
  }
}
|}
    (launch1d 1024
       [
         ("vars", zbuf 1024);
         ("old_vars", fbuf 1024 91);
         ("fluxes", fbuf 1024 92);
         ("factor", float_ 0.2);
         ("n", int_ 1024);
       ])

(* ------------------------------------------------------------------ *)
(* dwt2d *)

let dwt2d_compute =
  mk "dwt2d" "compute"
    {|
__kernel void compute(__global const float* src, __global float* dst,
                      int width, int height) {
  int gid = get_global_id(0);
  int x = gid % width;
  int y = gid / width;
  float c = src[gid];
  float left = c;
  float right = c;
  if (x > 0) { left = src[gid - 1]; }
  if (x < width - 1) { right = src[gid + 1]; }
  dst[gid] = c - 0.5f * (left + right);
}
|}
    (launch1d 1024
       [
         ("src", fbuf 1024 101);
         ("dst", zbuf 1024);
         ("width", int_ 32);
         ("height", int_ 32);
       ])

let dwt2d_components =
  mk "dwt2d" "components"
    {|
__kernel void components(__global const int* r, __global const int* g,
                         __global const int* b, __global float* out, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    float fr = (float)r[gid];
    float fg = (float)g[gid];
    float fb = (float)b[gid];
    out[gid] = 0.299f * fr + 0.587f * fg + 0.114f * fb - 128.0f;
  }
}
|}
    (launch1d 1024
       [
         ("r", ibuf 1024 111 256);
         ("g", ibuf 1024 112 256);
         ("b", ibuf 1024 113 256);
         ("out", zbuf 1024);
         ("n", int_ 1024);
       ])

let dwt2d_component =
  mk "dwt2d" "component"
    {|
__kernel void component(__global const int* src, __global float* dst, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    dst[gid] = (float)src[gid] - 128.0f;
  }
}
|}
    (launch1d 1024
       [ ("src", ibuf 1024 121 256); ("dst", zbuf 1024); ("n", int_ 1024) ])

let dwt2d_fdwt =
  mk "dwt2d" "fdwt"
    {|
__kernel void fdwt(__global const float* in, __global float* out, int n) {
  __local float tile[258];
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  int ls = get_local_size(0);
  tile[lid] = in[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float v = tile[lid];
  if (lid > 0 && lid < ls - 1) {
    v = tile[lid] - 0.5f * (tile[lid - 1] + tile[lid + 1]);
  }
  out[gid] = v;
}
|}
    (launch1d 1024 [ ("in", fbuf 1024 131); ("out", zbuf 1024); ("n", int_ 1024) ])

(* ------------------------------------------------------------------ *)
(* gaussian *)

let gaussian_fan1 =
  mk "gaussian" "fan1"
    {|
__kernel void fan1(__global const float* a, __global float* m, int size, int t) {
  int gid = get_global_id(0);
  if (gid < size - 1 - t) {
    m[(gid + t + 1) * size + t] = a[(gid + t + 1) * size + t] / (a[t * size + t] + 1.0f);
  }
}
|}
    (launch1d 512
       [
         ("a", fbuf (512 * 512) 141);
         ("m", zbuf (512 * 512));
         ("size", int_ 512);
         ("t", int_ 1);
       ])

let gaussian_fan2 =
  mk "gaussian" "fan2"
    {|
__kernel void fan2(__global float* a, __global float* b, __global const float* m,
                   int size, int t) {
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  if (gx < size - 1 - t && gy < size - t) {
    a[(gx + 1 + t) * size + (gy + t)] -= m[(gx + 1 + t) * size + t] * a[t * size + (gy + t)];
    if (gy == 0) {
      b[gx + 1 + t] -= m[(gx + 1 + t) * size + t] * b[t];
    }
  }
}
|}
    (launch2d (32, 32)
       [
         ("a", fbuf (32 * 32) 151);
         ("b", fbuf 32 152);
         ("m", fbuf (32 * 32) 153);
         ("size", int_ 31);
         ("t", int_ 1);
       ])

(* ------------------------------------------------------------------ *)
(* hotspot / hotspot3D *)

let hotspot =
  mk "hotspot" "hotspot"
    {|
__kernel void hotspot(__global const float* power, __global const float* tin,
                      __global float* tout, int cols, int rows,
                      float rx, float ry, float rz, float step) {
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  __local float tile[1024];
  int lid = get_local_id(1) * get_local_size(0) + get_local_id(0);
  int idx = gy * cols + gx;
  tile[lid] = tin[idx];
  barrier(CLK_LOCAL_MEM_FENCE);
  float c = tile[lid];
  float n = c;
  float s = c;
  float e = c;
  float w = c;
  if (gy > 0) { n = tin[idx - cols]; }
  if (gy < rows - 1) { s = tin[idx + cols]; }
  if (gx > 0) { w = tin[idx - 1]; }
  if (gx < cols - 1) { e = tin[idx + 1]; }
  float delta = step * (power[idx] + (n + s - 2.0f * c) * ry
                        + (e + w - 2.0f * c) * rx + (80.0f - c) * rz);
  tout[idx] = c + delta;
}
|}
    (launch2d (32, 32)
       [
         ("power", fbuf 1024 161);
         ("tin", fbuf 1024 162);
         ("tout", zbuf 1024);
         ("cols", int_ 32);
         ("rows", int_ 32);
         ("rx", float_ 0.1);
         ("ry", float_ 0.1);
         ("rz", float_ 0.05);
         ("step", float_ 0.5);
       ])

let hotspot3d =
  mk "hotspot3D" "hotspot3D"
    {|
__kernel void hotspot3D(__global const float* power, __global const float* tin,
                        __global float* tout, int nx, int ny, int nz,
                        float cc, float cn, float ct) {
  int gx = get_global_id(0);
  int gy = get_global_id(1);
  int area = nx * ny;
  for (int z = 0; z < nz; z++) {
    int idx = z * area + gy * nx + gx;
    float c = tin[idx];
    float n = c;
    float s = c;
    float e = c;
    float w = c;
    float t = c;
    float b = c;
    if (gy > 0) { n = tin[idx - nx]; }
    if (gy < ny - 1) { s = tin[idx + nx]; }
    if (gx > 0) { w = tin[idx - 1]; }
    if (gx < nx - 1) { e = tin[idx + 1]; }
    if (z > 0) { b = tin[idx - area]; }
    if (z < nz - 1) { t = tin[idx + area]; }
    tout[idx] = cc * c + cn * (n + s + e + w) + ct * (t + b) + power[idx];
  }
}
|}
    (launch2d (32, 32)
       [
         ("power", fbuf (8 * 1024) 171);
         ("tin", fbuf (8 * 1024) 172);
         ("tout", zbuf (8 * 1024));
         ("nx", int_ 32);
         ("ny", int_ 32);
         ("nz", int_ 8);
         ("cc", float_ 0.4);
         ("cn", float_ 0.1);
         ("ct", float_ 0.1);
       ])

(* ------------------------------------------------------------------ *)
(* hybridsort *)

let hybridsort_count =
  mk "hybridsort" "count"
    {|
__kernel void count(__global const float* input, __global int* histo,
                    int listsize, int divisions) {
  int gid = get_global_id(0);
  if (gid < listsize) {
    int bucket = (int)(input[gid] * (float)divisions);
    if (bucket >= divisions) {
      bucket = divisions - 1;
    }
    histo[bucket] += 1;
  }
}
|}
    (launch1d 1024
       [
         ("input", fbuf 1024 181);
         ("histo", zbuf 64);
         ("listsize", int_ 1024);
         ("divisions", int_ 64);
       ])

let hybridsort_prefix =
  mk "hybridsort" "prefix"
    {|
__kernel void prefix(__global int* histo, int divisions) {
  __local int temp[256];
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  temp[lid] = histo[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  int sum = 0;
  for (int i = 0; i < 256; i++) {
    if (i < lid) {
      sum += temp[i];
    }
  }
  histo[gid] = sum;
}
|}
    (launch1d 1024 [ ("histo", ibuf 1024 191 16); ("divisions", int_ 1024) ])

let hybridsort_sort =
  mk "hybridsort" "sort"
    {|
__kernel void sort(__global const float* input, __global const int* offsets,
                   __global int* counters, __global float* output,
                   int listsize, int divisions) {
  int gid = get_global_id(0);
  if (gid < listsize) {
    float v = input[gid];
    int bucket = (int)(v * (float)divisions);
    if (bucket >= divisions) {
      bucket = divisions - 1;
    }
    int pos = offsets[bucket] + counters[bucket];
    counters[bucket] += 1;
    if (pos < listsize) {
      output[pos] = v;
    }
  }
}
|}
    (launch1d 1024
       [
         ("input", fbuf 1024 201);
         ("offsets", ibuf 64 202 960);
         ("counters", zbuf 64);
         ("output", zbuf 1024);
         ("listsize", int_ 1024);
         ("divisions", int_ 64);
       ])

(* ------------------------------------------------------------------ *)
(* kmeans *)

let kmeans_center =
  mk "kmeans" "center"
    {|
__kernel void center(__global const float* features, __global const float* clusters,
                     __global int* membership, int npoints, int nclusters,
                     int nfeatures) {
  int gid = get_global_id(0);
  if (gid < npoints) {
    int index = 0;
    float min_dist = FLT_MAX;
    for (int i = 0; i < nclusters; i++) {
      float dist = 0.0f;
      for (int l = 0; l < nfeatures; l++) {
        float diff = features[l * npoints + gid] - clusters[i * nfeatures + l];
        dist += diff * diff;
      }
      if (dist < min_dist) {
        min_dist = dist;
        index = i;
      }
    }
    membership[gid] = index;
  }
}
|}
    (launch1d 1024
       [
         ("features", fbuf (8 * 1024) 211);
         ("clusters", fbuf (5 * 8) 212);
         ("membership", zbuf 1024);
         ("npoints", int_ 1024);
         ("nclusters", int_ 5);
         ("nfeatures", int_ 8);
       ])

let kmeans_swap =
  mk "kmeans" "swap"
    {|
__kernel void swap(__global const float* feature, __global float* feature_swap,
                   int npoints, int nfeatures) {
  int gid = get_global_id(0);
  if (gid < npoints) {
    for (int i = 0; i < nfeatures; i++) {
      feature_swap[i * npoints + gid] = feature[gid * nfeatures + i];
    }
  }
}
|}
    (launch1d 1024
       [
         ("feature", fbuf (1024 * 8) 221);
         ("feature_swap", zbuf (1024 * 8));
         ("npoints", int_ 1024);
         ("nfeatures", int_ 8);
       ])

(* ------------------------------------------------------------------ *)
(* lavaMD *)

let lavamd =
  mk "lavaMD" "lavaMD"
    {|
__kernel void lavaMD(__global const float* rv, __global const int* nn,
                     __global float* fv, int par_per_box, int nboxes) {
  int gid = get_global_id(0);
  int box = gid / par_per_box;
  float px = rv[gid * 2];
  float py = rv[gid * 2 + 1];
  float fx = 0.0f;
  float fy = 0.0f;
  for (int j = 0; j < 4; j++) {
    int nbox = nn[box * 4 + j];
    for (int k = 0; k < par_per_box; k++) {
      int other = nbox * par_per_box + k;
      float dx = px - rv[other * 2];
      float dy = py - rv[other * 2 + 1];
      float r2 = dx * dx + dy * dy + 1.0f;
      float u2 = 1.0f / r2;
      float vij = exp(-r2);
      fx += dx * u2 * vij;
      fy += dy * u2 * vij;
    }
  }
  fv[gid * 2] = fx;
  fv[gid * 2 + 1] = fy;
}
|}
    (launch1d 1024
       [
         ("rv", fbuf 2048 231);
         ("nn", ibuf 256 232 64);
         ("fv", zbuf 2048);
         ("par_per_box", int_ 16);
         ("nboxes", int_ 64);
       ])

(* ------------------------------------------------------------------ *)
(* leukocyte *)

let leukocyte_gicov =
  mk "leukocyte" "gicov"
    {|
__kernel void gicov(__global const float* grad_x, __global const float* grad_y,
                    __global float* gicov_out, int width, int height) {
  int gid = get_global_id(0);
  int x = gid % width;
  int y = gid / width;
  float max_gicov = 0.0f;
  for (int d = 0; d < 8; d++) {
    float sum = 0.0f;
    float m2 = 0.0f;
    for (int k = 0; k < 4; k++) {
      int px = x + k;
      int py = y + d % 4;
      float g = 0.0f;
      if (px < width && py < height) {
        g = grad_x[py * width + px] + grad_y[py * width + px];
      }
      sum += g;
      m2 += g * g;
    }
    float mean = sum / 4.0f;
    float var = m2 / 4.0f - mean * mean;
    float gi = mean * mean / (var + 0.001f);
    if (gi > max_gicov) {
      max_gicov = gi;
    }
  }
  gicov_out[gid] = max_gicov;
}
|}
    (launch1d 1024
       [
         ("grad_x", fbuf 1024 241);
         ("grad_y", fbuf 1024 242);
         ("gicov_out", zbuf 1024);
         ("width", int_ 32);
         ("height", int_ 32);
       ])

let leukocyte_dilate =
  mk "leukocyte" "dilate"
    {|
__kernel void dilate(__global const float* img, __global float* dilated,
                     int width, int height) {
  int gid = get_global_id(0);
  int x = gid % width;
  int y = gid / width;
  float m = 0.0f;
  for (int dy = 0; dy < 5; dy++) {
    for (int dx = 0; dx < 5; dx++) {
      int px = x + dx - 2;
      int py = y + dy - 2;
      if (px >= 0 && px < width && py >= 0 && py < height) {
        float v = img[py * width + px];
        if (v > m) {
          m = v;
        }
      }
    }
  }
  dilated[gid] = m;
}
|}
    (launch1d 1024
       [
         ("img", fbuf 1024 251);
         ("dilated", zbuf 1024);
         ("width", int_ 32);
         ("height", int_ 32);
       ])

let leukocyte_imgvf =
  mk "leukocyte" "imgvf"
    {|
__kernel void imgvf(__global const float* vf_in, __global float* vf_out,
                    int width, int height) {
  int gid = get_global_id(0);
  int x = gid % width;
  int y = gid / width;
  float c = vf_in[gid];
  float n = c;
  float s = c;
  float e = c;
  float w = c;
  if (y > 0) { n = vf_in[gid - width]; }
  if (y < height - 1) { s = vf_in[gid + width]; }
  if (x > 0) { w = vf_in[gid - 1]; }
  if (x < width - 1) { e = vf_in[gid + 1]; }
  float u = 0.25f * (n + s + e + w) - c;
  vf_out[gid] = c + 0.2f * u / (1.0f + exp(-10.0f * u));
}
|}
    (launch1d 1024
       [
         ("vf_in", fbuf 1024 261);
         ("vf_out", zbuf 1024);
         ("width", int_ 32);
         ("height", int_ 32);
       ])

(* ------------------------------------------------------------------ *)
(* lud *)

let lud_diagonal =
  mk "lud" "diagonal"
    {|
__kernel void diagonal(__global float* m, int matrix_dim, int offset) {
  __local float shadow[256];
  int lid = get_local_id(0);
  for (int i = 0; i < 16; i++) {
    if (lid < 16) {
      shadow[i * 16 + lid] = m[(offset + i) * matrix_dim + offset + lid];
    }
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int i = 0; i < 15; i++) {
    if (lid > i && lid < 16) {
      shadow[lid * 16 + i] = shadow[lid * 16 + i] / (shadow[i * 16 + i] + 1.0f);
      for (int j = i + 1; j < 16; j++) {
        shadow[lid * 16 + j] -= shadow[lid * 16 + i] * shadow[i * 16 + j];
      }
    }
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int i = 0; i < 16; i++) {
    if (lid < 16) {
      m[(offset + i) * matrix_dim + offset + lid] = shadow[i * 16 + lid];
    }
  }
}
|}
    (launch1d 1024
       [ ("m", fbuf (64 * 64) 271); ("matrix_dim", int_ 64); ("offset", int_ 8) ])

let lud_perimeter =
  mk "lud" "perimeter"
    {|
__kernel void perimeter(__global float* m, int matrix_dim, int offset) {
  __local float dia[256];
  __local float row[256];
  int lid = get_local_id(0);
  for (int i = 0; i < 16; i++) {
    if (lid < 16) {
      dia[i * 16 + lid] = m[(offset + i) * matrix_dim + offset + lid];
      row[i * 16 + lid] = m[(offset + i) * matrix_dim + offset + 16 + lid];
    }
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  if (lid < 16) {
    for (int i = 1; i < 16; i++) {
      float sum = 0.0f;
      for (int j = 0; j < i; j++) {
        sum += dia[i * 16 + j] * row[j * 16 + lid];
      }
      row[i * 16 + lid] -= sum;
    }
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int i = 0; i < 16; i++) {
    if (lid < 16) {
      m[(offset + i) * matrix_dim + offset + 16 + lid] = row[i * 16 + lid];
    }
  }
}
|}
    (launch1d 1024
       [ ("m", fbuf (64 * 64) 281); ("matrix_dim", int_ 64); ("offset", int_ 8) ])

(* ------------------------------------------------------------------ *)
(* nn *)

let nn_nn =
  mk "nn" "nn"
    {|
__kernel void nn(__global const float* locations, __global float* distances,
                 int num_records, float lat, float lng) {
  int gid = get_global_id(0);
  if (gid < num_records) {
    float dx = lat - locations[gid * 2];
    float dy = lng - locations[gid * 2 + 1];
    distances[gid] = sqrt(dx * dx + dy * dy);
  }
}
|}
    (launch1d 1024
       [
         ("locations", fbuf 2048 291);
         ("distances", zbuf 1024);
         ("num_records", int_ 1024);
         ("lat", float_ 0.5);
         ("lng", float_ 0.5);
       ])

(* ------------------------------------------------------------------ *)
(* nw *)

let nw_source direction =
  Printf.sprintf
    {|
__kernel void %s(__global const int* ref, __global int* items,
                 int cols, int penalty, int diag) {
  int tid = get_global_id(0);
  int x = tid %s 1;
  int y = diag - tid;
  if (x >= 1 && x < cols && y >= 1 && y < cols) {
    int idx = y * cols + x;
    int a = items[idx - cols - 1] + ref[idx];
    int b = items[idx - 1] - penalty;
    int c = items[idx - cols] - penalty;
    int m = a;
    if (b > m) { m = b; }
    if (c > m) { m = c; }
    items[idx] = m;
  }
}
|}
    direction
    (if direction = "nw1" then "+" else "-")

(* the NDRange covers one anti-diagonal wave, as in the original host code *)
let nw1 =
  mk "nw" "nw1" (nw_source "nw1")
    (launch1d ~wg:32 128
       [
         ("ref", ibuf (256 * 256) 301 10);
         ("items", ibuf (256 * 256) 302 100);
         ("cols", int_ 256);
         ("penalty", int_ 10);
         ("diag", int_ 128);
       ])

let nw2 =
  mk "nw" "nw2" (nw_source "nw2")
    (launch1d ~wg:32 128
       [
         ("ref", ibuf (256 * 256) 311 10);
         ("items", ibuf (256 * 256) 312 100);
         ("cols", int_ 256);
         ("penalty", int_ 10);
         ("diag", int_ 200);
       ])

(* ------------------------------------------------------------------ *)
(* particlefilter *)

let particlefilter_find_index =
  mk "particlefilter" "find_index"
    {|
__kernel void find_index(__global const float* cdf, __global const float* u,
                         __global float* xj, __global const float* array_x,
                         int nparticles) {
  int i = get_global_id(0);
  if (i < nparticles) {
    int index = 63;
    for (int x = 0; x < 64; x++) {
      if (cdf[x] >= u[i] && x < index) {
        index = x;
      }
    }
    xj[i] = array_x[index];
  }
}
|}
    (launch1d 1024
       [
         ("cdf", rampf 64);
         ("u", fbuf 1024 321);
         ("xj", zbuf 1024);
         ("array_x", fbuf 64 322);
         ("nparticles", int_ 1024);
       ])

let particlefilter_normalize =
  mk "particlefilter" "normalize"
    {|
__kernel void normalize(__global float* weights, __global const float* sum_w, int n) {
  int i = get_global_id(0);
  if (i < n) {
    weights[i] = weights[i] / (sum_w[0] + 1.0f);
  }
}
|}
    (launch1d 1024
       [ ("weights", fbuf 1024 331); ("sum_w", fbuf 1 332); ("n", int_ 1024) ])

let particlefilter_sum =
  mk "particlefilter" "sum"
    {|
__kernel void sum(__global const float* weights, __global float* partial, int n) {
  __local float sdata[256];
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  sdata[lid] = weights[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  if (lid == 0) {
    float s = 0.0f;
    int ls = get_local_size(0);
    for (int i = 0; i < ls; i++) {
      s += sdata[i];
    }
    partial[get_group_id(0)] = s;
  }
}
|}
    (launch1d 1024
       [ ("weights", fbuf 1024 341); ("partial", zbuf 32); ("n", int_ 1024) ])

let particlefilter_likelihood =
  mk "particlefilter" "likelihood"
    {|
__kernel void likelihood(__global const float* array_x, __global const float* array_y,
                         __global float* lk_out, __global const int* objxy, int n) {
  int i = get_global_id(0);
  if (i < n) {
    float lk = 0.0f;
    for (int j = 0; j < 8; j++) {
      float ind = array_x[i] * 10.0f + (float)objxy[j] + array_y[i];
      lk += (ind * ind - 100.0f) / 50.0f;
    }
    lk_out[i] = exp(lk / 8.0f);
  }
}
|}
    (launch1d 1024
       [
         ("array_x", fbuf 1024 351);
         ("array_y", fbuf 1024 352);
         ("lk_out", zbuf 1024);
         ("objxy", ibuf 8 353 10);
         ("n", int_ 1024);
       ])

(* ------------------------------------------------------------------ *)
(* pathfinder *)

let pathfinder_dynproc =
  mk "pathfinder" "dynproc"
    {|
__kernel void dynproc(__global const int* wall, __global const int* src,
                      __global int* dst, int cols, int iteration) {
  int tid = get_global_id(0);
  if (tid < cols) {
    int m = src[tid];
    if (tid > 0) {
      int l = src[tid - 1];
      if (l < m) { m = l; }
    }
    if (tid < cols - 1) {
      int r = src[tid + 1];
      if (r < m) { m = r; }
    }
    dst[tid] = m + wall[iteration * cols + tid];
  }
}
|}
    (launch1d 1024
       [
         ("wall", ibuf (8 * 1024) 361 10);
         ("src", ibuf 1024 362 100);
         ("dst", zbuf 1024);
         ("cols", int_ 1024);
         ("iteration", int_ 3);
       ])

(* ------------------------------------------------------------------ *)
(* srad *)

let srad_extract =
  mk "srad" "extract"
    {|
__kernel void extract(__global float* image, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    image[gid] = exp(image[gid] / 255.0f);
  }
}
|}
    (launch1d 1024 [ ("image", fbuf 1024 371); ("n", int_ 1024) ])

let srad_prepare =
  mk "srad" "prepare"
    {|
__kernel void prepare(__global const float* image, __global float* sums,
                      __global float* sums2, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    float v = image[gid];
    sums[gid] = v;
    sums2[gid] = v * v;
  }
}
|}
    (launch1d 1024
       [
         ("image", fbuf 1024 381);
         ("sums", zbuf 1024);
         ("sums2", zbuf 1024);
         ("n", int_ 1024);
       ])

let srad_reduce =
  mk "srad" "reduce"
    {|
__kernel void reduce(__global const float* sums, __global const float* sums2,
                     __global float* partial, __global float* partial2, int n) {
  __local float psum[256];
  __local float psum2[256];
  int lid = get_local_id(0);
  int gid = get_global_id(0);
  psum[lid] = sums[gid];
  psum2[lid] = sums2[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  if (lid == 0) {
    float s = 0.0f;
    float s2 = 0.0f;
    int ls = get_local_size(0);
    for (int i = 0; i < ls; i++) {
      s += psum[i];
      s2 += psum2[i];
    }
    partial[get_group_id(0)] = s;
    partial2[get_group_id(0)] = s2;
  }
}
|}
    (launch1d 1024
       [
         ("sums", fbuf 1024 391);
         ("sums2", fbuf 1024 392);
         ("partial", zbuf 32);
         ("partial2", zbuf 32);
         ("n", int_ 1024);
       ])

let srad_srad =
  mk "srad" "srad"
    {|
__kernel void srad(__global const float* image, __global float* dn_out,
                   __global float* ds_out, __global float* dw_out,
                   __global float* de_out, __global float* c_out,
                   int rows, int cols, float q0sqr) {
  int gid = get_global_id(0);
  int y = gid / cols;
  int x = gid % cols;
  float jc = image[gid] + 0.01f;
  float n = jc;
  float s = jc;
  float w = jc;
  float e = jc;
  if (y > 0) { n = image[gid - cols]; }
  if (y < rows - 1) { s = image[gid + cols]; }
  if (x > 0) { w = image[gid - 1]; }
  if (x < cols - 1) { e = image[gid + 1]; }
  float dn = n - jc;
  float ds = s - jc;
  float dw = w - jc;
  float de = e - jc;
  float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
  float l = (dn + ds + dw + de) / jc;
  float num = 0.5f * g2 - 0.0625f * l * l;
  float den = 1.0f + 0.25f * l;
  float qsqr = num / (den * den + 0.001f);
  den = (qsqr - q0sqr) / (q0sqr + 1.0f);
  float cval = 1.0f / (1.0f + den);
  if (cval < 0.0f) { cval = 0.0f; }
  if (cval > 1.0f) { cval = 1.0f; }
  dn_out[gid] = dn;
  ds_out[gid] = ds;
  dw_out[gid] = dw;
  de_out[gid] = de;
  c_out[gid] = cval;
}
|}
    (launch1d 1024
       [
         ("image", fbuf 1024 401);
         ("dn_out", zbuf 1024);
         ("ds_out", zbuf 1024);
         ("dw_out", zbuf 1024);
         ("de_out", zbuf 1024);
         ("c_out", zbuf 1024);
         ("rows", int_ 32);
         ("cols", int_ 32);
         ("q0sqr", float_ 0.05);
       ])

let srad_srad2 =
  mk "srad" "srad2"
    {|
__kernel void srad2(__global float* image, __global const float* dn_in,
                    __global const float* ds_in, __global const float* dw_in,
                    __global const float* de_in, __global const float* c_in,
                    int rows, int cols, float lambda) {
  int gid = get_global_id(0);
  int y = gid / cols;
  int x = gid % cols;
  float cn = c_in[gid];
  float cs = cn;
  float cw = cn;
  float ce = cn;
  if (y < rows - 1) { cs = c_in[gid + cols]; }
  if (x < cols - 1) { ce = c_in[gid + 1]; }
  float d = cn * dn_in[gid] + cs * ds_in[gid] + cw * dw_in[gid] + ce * de_in[gid];
  image[gid] = image[gid] + 0.25f * lambda * d;
}
|}
    (launch1d 1024
       [
         ("image", fbuf 1024 411);
         ("dn_in", fbuf 1024 412);
         ("ds_in", fbuf 1024 413);
         ("dw_in", fbuf 1024 414);
         ("de_in", fbuf 1024 415);
         ("c_in", fbuf 1024 416);
         ("rows", int_ 32);
         ("cols", int_ 32);
         ("lambda", float_ 0.5);
       ])

let srad_compress =
  mk "srad" "compress"
    {|
__kernel void compress(__global float* image, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    image[gid] = log(image[gid] + 1.0f) * 255.0f;
  }
}
|}
    (launch1d 1024 [ ("image", fbuf 1024 421); ("n", int_ 1024) ])

(* ------------------------------------------------------------------ *)
(* streamcluster *)

let streamcluster_memset =
  mk "streamcluster" "memset"
    {|
__kernel void memset(__global int* buf, int value, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    buf[gid] = value;
  }
}
|}
    (launch1d 1024 [ ("buf", zbuf 1024); ("value", int_ 0); ("n", int_ 1024) ])

let streamcluster_pgain =
  mk "streamcluster" "pgain"
    {|
__kernel void pgain(__global const float* points, __global const float* center,
                    __global float* cost, __global int* assign,
                    int npoints, int dim) {
  int gid = get_global_id(0);
  if (gid < npoints) {
    float c = 0.0f;
    for (int d = 0; d < dim; d++) {
      float diff = points[gid * dim + d] - center[d];
      c += diff * diff;
    }
    float old = cost[gid];
    if (c < old) {
      cost[gid] = c;
      assign[gid] = 1;
    }
  }
}
|}
    (launch1d 1024
       [
         ("points", fbuf (1024 * 8) 431);
         ("center", fbuf 8 432);
         ("cost", fbuf 1024 433);
         ("assign", zbuf 1024);
         ("npoints", int_ 1024);
         ("dim", int_ 8);
       ])

let all : Workload.t list =
  [
    backprop_layer;
    backprop_adjust;
    bfs_1;
    bfs_2;
    btree_findk;
    btree_rangek;
    cfd_memset;
    cfd_initialize;
    cfd_compute;
    cfd_time_step;
    dwt2d_compute;
    dwt2d_components;
    dwt2d_component;
    dwt2d_fdwt;
    gaussian_fan1;
    gaussian_fan2;
    hotspot;
    hotspot3d;
    hybridsort_count;
    hybridsort_prefix;
    hybridsort_sort;
    kmeans_center;
    kmeans_swap;
    lavamd;
    leukocyte_gicov;
    leukocyte_dilate;
    leukocyte_imgvf;
    lud_diagonal;
    lud_perimeter;
    nn_nn;
    nw1;
    nw2;
    particlefilter_find_index;
    particlefilter_normalize;
    particlefilter_sum;
    particlefilter_likelihood;
    pathfinder_dynproc;
    srad_extract;
    srad_prepare;
    srad_reduce;
    srad_srad;
    srad_srad2;
    srad_compress;
    streamcluster_memset;
    streamcluster_pgain;
  ]
