(** Fifteen PolyBench kernels in the FlexCL OpenCL subset: gemm, 2mm,
    3mm, atax, bicg, mvt, gesummv, syrk, syr2k, gramschmidt, covariance,
    correlation, doitgen, fdtd2d, jacobi2d. *)

val all : Workload.t list
