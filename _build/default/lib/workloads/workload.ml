type t = {
  suite : string;
  benchmark : string;
  kernel : string;
  source : string;
  launch : Flexcl_ir.Launch.t;
}

let name t = t.benchmark ^ "/" ^ t.kernel

let parse t = Flexcl_opencl.Parser.parse_kernel t.source
