lib/device/device.mli: Flexcl_dram Flexcl_ir
