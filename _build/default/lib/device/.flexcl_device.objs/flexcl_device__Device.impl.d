lib/device/device.ml: Array Flexcl_dram Flexcl_ir Flexcl_util
