open Flexcl_opencl

(** Data-flow graph of one simplified basic block.

    Nodes are IR operations; edges are data dependencies. Memory nodes
    carry the accessed array name and the source-level index expression
    (used by the dependence analysis and by the memory model). The block
    also records which variables the covered statements read and write,
    so block-level parallelism can be derived without op-level cross-block
    edges. *)

type node = {
  id : int;
  op : Opcode.t;
  array : string option;  (** for [Load]/[Store] nodes. *)
  index : Ast.expr option;  (** linearized index expression of the access. *)
}

type t

val n_nodes : t -> int
val node : t -> int -> node
val nodes : t -> node list
val graph : t -> Flexcl_util.Graph.t
(** Dependence DAG over node ids (edge [u -> v] when [v] consumes [u]). *)

val reads : t -> string list
(** Variables/arrays read by the block's statements (sorted, unique). *)

val writes : t -> string list

val count : t -> (Opcode.t -> bool) -> int
(** Number of nodes whose opcode satisfies the predicate. *)

val op_histogram : t -> (Opcode.t * int) list

val mem_nodes : t -> node list
(** All [Load]/[Store] nodes in id order. *)

val is_empty : t -> bool

val live_ins : t -> (string * int) list
(** Scalar variables read before any in-block definition, with their
    {!Opcode.Live_in} node. *)

val scalar_defs : t -> (string * int) list
(** Final producer node of each scalar variable the block assigns. *)

(** {2 Construction} *)

type builder

val builder : unit -> builder
val add_node : builder -> ?array:string -> ?index:Ast.expr -> Opcode.t -> int
val add_dep : builder -> int -> int -> unit
(** [add_dep b producer consumer]. *)

val live_in : builder -> string -> int
(** Get or create the [Live_in] node for a scalar variable. *)

val note_scalar_def : builder -> string -> int -> unit
val note_read : builder -> string -> unit
val note_write : builder -> string -> unit
val freeze : builder -> t

val empty : t
