open Flexcl_opencl

(** Lowering from the typed AST to the simplified CDFG.

    Mirrors FlexCL's kernel-analysis step: statements are merged into
    basic blocks, control flow becomes structured regions, memory
    accesses keep their source index expressions, and loop trip counts
    are resolved statically where the bounds reduce to constants, scalar
    kernel arguments or NDRange queries. *)

val lower : Ast.kernel -> Sema.info -> Launch.t -> Cdfg.t

val eval_static :
  Launch.t -> env:(string * int64) list -> Ast.expr -> int64 option
(** Fold an expression to an integer using kernel scalar arguments plus
    [env], resolving [get_global_size]/[get_local_size]/[get_num_groups]
    calls against the launch geometry. Work-item ids are not static and
    yield [None]. Exposed for the dependence analysis and tests. *)

val wi_size_value : Launch.t -> Builtins.wi_fn -> int -> int option
(** Value of a size-query builtin ([get_global_size] etc.) at a dimension
    under the launch geometry; [None] for the id queries, which vary per
    work-item. *)

val static_trip :
  Launch.t -> Ast.for_header -> int option
(** Trip count of a canonical [for] loop ([i = a; i < b; i += c] and the
    [<=], [>], [>=], [!=] variants), when all three parts are static. *)
