open Flexcl_opencl

type recurrence = {
  block : Dfg.t;
  load : int;
  store : int;
  array : string;
  distance : int;
}

(* Evaluation with a distinguished "carried" variable set to [t]. Free
   variables resolve through [subst], then kernel scalar args, then a
   fixed sample value (the analysis only needs affinity in the carried
   variable, so sampling the others at a constant is sound for affine
   indexes and at worst conservative for non-affine ones). *)
let sample_value = 3L

let eval_at launch ~subst ~carried ~t expr =
  let ( let* ) = Option.bind in
  let rec go (e : Ast.expr) : int64 option =
    match e with
    | Ast.Int_lit i -> Some i
    | Ast.Float_lit _ -> None
    | Ast.Var v -> (
        match carried with
        | `Loop_var lv when lv = v -> Some t
        | `Loop_var _ | `Work_item -> (
            match subst v with
            | Some value -> Some value
            | None -> (
                match List.assoc_opt v (Launch.scalar_env launch) with
                | Some value -> Some value
                | None -> Some sample_value)))
    | Ast.Cast (_, a) -> go a
    | Ast.Unop (Ast.Neg, a) ->
        let* v = go a in
        Some (Int64.neg v)
    | Ast.Unop (Ast.Bnot, a) ->
        let* v = go a in
        Some (Int64.lognot v)
    | Ast.Unop (Ast.Lnot, a) ->
        let* v = go a in
        Some (if v = 0L then 1L else 0L)
    | Ast.Ternary (c, a, b) ->
        let* v = go c in
        if v <> 0L then go a else go b
    | Ast.Call (f, args) -> (
        match (Builtins.find f, args) with
        | Some (Builtins.Wi fn), [ d ] -> (
            let* dim = go d in
            let dim = Int64.to_int dim in
            match fn with
            | Builtins.Get_global_id | Builtins.Get_local_id ->
                if dim = 0 then
                  match carried with
                  | `Work_item -> Some t
                  | `Loop_var _ -> Some sample_value
                else Some 0L
            | Builtins.Get_group_id -> Some 0L
            | Builtins.Get_global_size | Builtins.Get_local_size
            | Builtins.Get_num_groups ->
                Option.map Int64.of_int (Lower.wi_size_value launch fn dim))
        | _, _ -> None)
    | Ast.Index _ -> None (* data-dependent index: not affine *)
    | Ast.Binop (op, a, b) -> (
        let* x = go a in
        let* y = go b in
        let bool_ c = Some (if c then 1L else 0L) in
        match op with
        | Ast.Add -> Some (Int64.add x y)
        | Ast.Sub -> Some (Int64.sub x y)
        | Ast.Mul -> Some (Int64.mul x y)
        | Ast.Div -> if y = 0L then None else Some (Int64.div x y)
        | Ast.Mod -> if y = 0L then None else Some (Int64.rem x y)
        | Ast.Band -> Some (Int64.logand x y)
        | Ast.Bor -> Some (Int64.logor x y)
        | Ast.Bxor -> Some (Int64.logxor x y)
        | Ast.Shl -> Some (Int64.shift_left x (Int64.to_int y))
        | Ast.Shr -> Some (Int64.shift_right x (Int64.to_int y))
        | Ast.Land -> bool_ (x <> 0L && y <> 0L)
        | Ast.Lor -> bool_ (x <> 0L || y <> 0L)
        | Ast.Eq -> bool_ (x = y)
        | Ast.Ne -> bool_ (x <> y)
        | Ast.Lt -> bool_ (x < y)
        | Ast.Le -> bool_ (x <= y)
        | Ast.Gt -> bool_ (x > y)
        | Ast.Ge -> bool_ (x >= y))
  in
  go expr

let affine_probe launch ~subst ~carried expr =
  let probe t = eval_at launch ~subst ~carried ~t expr in
  match (probe 10L, probe 11L, probe 12L) with
  | Some v0, Some v1, Some v2 ->
      let d1 = Int64.sub v1 v0 and d2 = Int64.sub v2 v1 in
      if d1 = d2 then
        (* base = value at t=0 *)
        let base = Int64.sub v0 (Int64.mul 10L d1) in
        Some (base, d1)
      else None
  | _, _, _ -> None

(* Candidate (store -> later load) distances between two affine accesses
   with the same stride. *)
let distance_of ~store_affine:(s0, s1) ~load_affine:(l0, l1) =
  if s1 <> l1 then None
  else if s1 = 0L then
    (* same fixed location touched by every instance: accumulator *)
    if s0 = l0 then Some 1 else None
  else
    let delta = Int64.sub s0 l0 in
    (* instance g writes s0 + c g; instance g + d reads it when
       l0 + c (g + d) = s0 + c g, i.e. d = (s0 - l0) / c *)
    if Int64.rem delta s1 = 0L then
      let d = Int64.div delta s1 in
      if d >= 1L && d <= 1024L then Some (Int64.to_int d) else None
    else None

let block_recurrences launch ~subst ~carried (d : Dfg.t) =
  let mem = Dfg.mem_nodes d in
  let stores =
    List.filter (fun (n : Dfg.node) -> match n.Dfg.op with Opcode.Store _ -> true | _ -> false) mem
  in
  let loads =
    List.filter (fun (n : Dfg.node) -> match n.Dfg.op with Opcode.Load _ -> true | _ -> false) mem
  in
  let recs = ref [] in
  List.iter
    (fun (s : Dfg.node) ->
      match (s.Dfg.array, s.Dfg.index) with
      | Some arr, Some si -> (
          match affine_probe launch ~subst ~carried si with
          | None -> ()
          | Some store_affine ->
              List.iter
                (fun (l : Dfg.node) ->
                  if l.Dfg.array = Some arr then
                    match l.Dfg.index with
                    | None -> ()
                    | Some li -> (
                        match affine_probe launch ~subst ~carried li with
                        | None -> ()
                        | Some load_affine -> (
                            match distance_of ~store_affine ~load_affine with
                            | Some distance ->
                                recs :=
                                  {
                                    block = d;
                                    load = l.Dfg.id;
                                    store = s.Dfg.id;
                                    array = arr;
                                    distance;
                                  }
                                  :: !recs
                            | None -> ())))
                loads)
      | _, _ -> ())
    stores;
  !recs

let scalar_recurrences (d : Dfg.t) =
  List.filter_map
    (fun (v, live) ->
      match List.assoc_opt v (Dfg.scalar_defs d) with
      | Some def when def <> live ->
          Some { block = d; load = live; store = def; array = "<" ^ v ^ ">"; distance = 1 }
      | Some _ | None -> None)
    (Dfg.live_ins d)

let work_item_recurrences (cdfg : Cdfg.t) launch =
  Cdfg.fold_blocks
    (fun acc d ->
      block_recurrences launch ~subst:(fun _ -> None) ~carried:`Work_item d @ acc)
    [] cdfg.Cdfg.body

let loop_recurrences (cdfg : Cdfg.t) launch =
  let results = ref [] in
  let rec walk (r : Cdfg.region) =
    match r with
    | Cdfg.Straight _ -> ()
    | Cdfg.Seq rs -> List.iter walk rs
    | Cdfg.Branch { then_; else_; _ } ->
        walk then_;
        walk else_
    | Cdfg.Loop { info; body; _ } ->
        (match info.Cdfg.var with
        | Some lv ->
            let recs =
              Cdfg.fold_blocks
                (fun acc d ->
                  block_recurrences launch ~subst:(fun _ -> None)
                    ~carried:(`Loop_var lv) d
                  @ scalar_recurrences d @ acc)
                [] body
            in
            results := (info.Cdfg.loop_id, recs) :: !results
        | None ->
            (* while-loops: scalar accumulators only *)
            let recs =
              Cdfg.fold_blocks (fun acc d -> scalar_recurrences d @ acc) [] body
            in
            results := (info.Cdfg.loop_id, recs) :: !results);
        walk body
  in
  walk cdfg.Cdfg.body;
  List.rev !results
