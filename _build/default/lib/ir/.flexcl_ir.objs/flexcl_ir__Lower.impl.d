lib/ir/lower.ml: Ast Builtins Cdfg Dfg Flexcl_opencl Hashtbl Int64 Launch List Opcode Option Sema Types
