lib/ir/depend.ml: Ast Builtins Cdfg Dfg Flexcl_opencl Int64 Launch List Lower Opcode Option
