lib/ir/cdfg.mli: Ast Dfg Flexcl_opencl Format Opcode
