lib/ir/cdfg.ml: Ast Dfg Flexcl_opencl Float Format List Map Opcode Printf
