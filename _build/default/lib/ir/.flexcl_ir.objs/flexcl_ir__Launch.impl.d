lib/ir/launch.ml: List Printf
