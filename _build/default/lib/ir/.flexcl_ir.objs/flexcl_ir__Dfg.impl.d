lib/ir/dfg.ml: Array Ast Flexcl_opencl Flexcl_util Hashtbl List Opcode Option
