lib/ir/opcode.ml: Ast Builtins Flexcl_opencl Format
