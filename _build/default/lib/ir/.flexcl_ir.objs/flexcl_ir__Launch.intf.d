lib/ir/launch.mli:
