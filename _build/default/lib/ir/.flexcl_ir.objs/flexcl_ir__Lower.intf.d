lib/ir/lower.mli: Ast Builtins Cdfg Flexcl_opencl Launch Sema
