lib/ir/dfg.mli: Ast Flexcl_opencl Flexcl_util Opcode
