lib/ir/depend.mli: Ast Cdfg Dfg Flexcl_opencl Launch
