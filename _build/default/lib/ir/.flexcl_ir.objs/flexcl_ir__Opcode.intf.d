lib/ir/opcode.mli: Ast Builtins Flexcl_opencl Format
