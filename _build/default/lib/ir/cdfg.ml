open Flexcl_opencl

type loop_info = {
  loop_id : int;
  attrs : Ast.loop_attrs;
  static_trip : int option;
  var : string option;
}

type region =
  | Straight of Dfg.t
  | Seq of region list
  | Branch of { cond : Dfg.t; then_ : region; else_ : region }
  | Loop of { info : loop_info; header : Dfg.t; body : region }

type t = {
  kernel_name : string;
  body : region;
  n_loops : int;
  uses_barrier : bool;
}

let rec fold_blocks f acc = function
  | Straight d -> f acc d
  | Seq rs -> List.fold_left (fold_blocks f) acc rs
  | Branch { cond; then_; else_ } ->
      let acc = f acc cond in
      let acc = fold_blocks f acc then_ in
      fold_blocks f acc else_
  | Loop { header; body; _ } ->
      let acc = f acc header in
      fold_blocks f acc body

let rec fold_loops f acc = function
  | Straight _ -> acc
  | Seq rs -> List.fold_left (fold_loops f) acc rs
  | Branch { then_; else_; _ } -> fold_loops f (fold_loops f acc then_) else_
  | Loop { info; body; _ } -> fold_loops f (f acc info) body

let region_reads r =
  fold_blocks (fun acc d -> List.rev_append (Dfg.reads d) acc) [] r
  |> List.sort_uniq compare

let region_writes r =
  fold_blocks (fun acc d -> List.rev_append (Dfg.writes d) acc) [] r
  |> List.sort_uniq compare

module Op_map = Map.Make (struct
  type t = Opcode.t

  let compare = compare
end)

let merge_max = Op_map.union (fun _ a b -> Some (Float.max a b))

let merge_add = Op_map.union (fun _ a b -> Some (a +. b))

let scale k m = Op_map.map (fun v -> v *. k) m

let counts_of_block d =
  List.fold_left
    (fun m (op, c) -> Op_map.add op (float_of_int c) m)
    Op_map.empty (Dfg.op_histogram d)

let rec dyn_counts ~trip = function
  | Straight d -> counts_of_block d
  | Seq rs ->
      List.fold_left (fun m r -> merge_add m (dyn_counts ~trip r)) Op_map.empty rs
  | Branch { cond; then_; else_ } ->
      merge_add (counts_of_block cond)
        (merge_max (dyn_counts ~trip then_) (dyn_counts ~trip else_))
  | Loop { info; header; body } ->
      let n = float_of_int (max 1 (trip info)) in
      scale n (merge_add (counts_of_block header) (dyn_counts ~trip body))

let weighted_op_counts ~trip r = Op_map.bindings (dyn_counts ~trip r)

let count_ops r pred ~trip =
  List.fold_left
    (fun acc (op, c) -> if pred op then acc +. c else acc)
    0.0
    (weighted_op_counts ~trip r)

let rec pp_region ppf = function
  | Straight d -> Format.fprintf ppf "block(%d ops)" (Dfg.n_nodes d)
  | Seq rs ->
      Format.fprintf ppf "@[<v 2>seq {@ %a@]@ }"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ")
           pp_region)
        rs
  | Branch { cond; then_; else_ } ->
      Format.fprintf ppf "@[<v 2>if(%d ops) {@ %a@ } else {@ %a@]@ }"
        (Dfg.n_nodes cond) pp_region then_ pp_region else_
  | Loop { info; header; body } ->
      Format.fprintf ppf "@[<v 2>loop#%d%s(hdr %d ops) {@ %a@]@ }" info.loop_id
        (match info.static_trip with
        | Some n -> Printf.sprintf " trip=%d" n
        | None -> "")
        (Dfg.n_nodes header) pp_region body
