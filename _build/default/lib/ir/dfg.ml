open Flexcl_opencl

module Graph = Flexcl_util.Graph

type node = {
  id : int;
  op : Opcode.t;
  array : string option;
  index : Ast.expr option;
}

type t = {
  nodes : node array;
  graph : Graph.t;
  reads : string list;
  writes : string list;
  live_ins : (string * int) list;
  scalar_defs : (string * int) list;
}

let n_nodes t = Array.length t.nodes

let node t i = t.nodes.(i)

let nodes t = Array.to_list t.nodes

let graph t = t.graph

let reads t = t.reads

let writes t = t.writes

let count t pred =
  Array.fold_left (fun acc n -> if pred n.op then acc + 1 else acc) 0 t.nodes

let op_histogram t =
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun n ->
      let c = Option.value (Hashtbl.find_opt tbl n.op) ~default:0 in
      Hashtbl.replace tbl n.op (c + 1))
    t.nodes;
  Hashtbl.fold (fun op c acc -> (op, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mem_nodes t =
  Array.to_list t.nodes |> List.filter (fun n -> Opcode.is_mem n.op)

let is_empty t = Array.length t.nodes = 0

let live_ins t = t.live_ins

let scalar_defs t = t.scalar_defs

type builder = {
  mutable rev_nodes : node list;
  mutable next : int;
  mutable deps : (int * int) list;
  mutable b_reads : string list;
  mutable b_writes : string list;
  mutable b_live_ins : (string * int) list;
  mutable b_scalar_defs : (string * int) list;
}

let builder () =
  {
    rev_nodes = [];
    next = 0;
    deps = [];
    b_reads = [];
    b_writes = [];
    b_live_ins = [];
    b_scalar_defs = [];
  }

let add_node b ?array ?index op =
  let id = b.next in
  b.next <- id + 1;
  b.rev_nodes <- { id; op; array; index } :: b.rev_nodes;
  id

let add_dep b producer consumer = b.deps <- (producer, consumer) :: b.deps

let note_read b v = b.b_reads <- v :: b.b_reads

let note_write b v = b.b_writes <- v :: b.b_writes

let live_in b v =
  match List.assoc_opt v b.b_live_ins with
  | Some id -> id
  | None ->
      let id = add_node b Opcode.Live_in in
      b.b_live_ins <- (v, id) :: b.b_live_ins;
      id

let note_scalar_def b v id =
  b.b_scalar_defs <- (v, id) :: List.remove_assoc v b.b_scalar_defs

let freeze b =
  let nodes = Array.of_list (List.rev b.rev_nodes) in
  let g = Graph.create (Array.length nodes) in
  List.iter (fun (u, v) -> Graph.add_edge g u v) b.deps;
  let uniq xs = List.sort_uniq compare xs in
  {
    nodes;
    graph = g;
    reads = uniq b.b_reads;
    writes = uniq b.b_writes;
    live_ins = b.b_live_ins;
    scalar_defs = b.b_scalar_defs;
  }

let empty = freeze (builder ())
