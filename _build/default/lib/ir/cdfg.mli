open Flexcl_opencl

(** Control-data-flow graph of a kernel, after the paper's simplification:
    straight-line statements are merged into one basic block ({!Dfg.t}),
    and control constructs become structured regions.

    Loop numbering contract: loops are numbered in source pre-order — the
    order in which [For]/[While] statements are encountered walking the
    statement list, descending into if-branches and loop bodies. The
    interpreter ({!Flexcl_interp}) uses the same numbering, so profiled
    trip counts line up with {!loop_info.loop_id}. *)

type loop_info = {
  loop_id : int;
  attrs : Ast.loop_attrs;
  static_trip : int option;
      (** Trip count when derivable from constants, scalar kernel
          arguments and NDRange queries; [None] means dynamic profiling
          must supply it. *)
  var : string option;
      (** Induction variable of a canonical [for] loop, for loop-carried
          dependence analysis. *)
}

type region =
  | Straight of Dfg.t
  | Seq of region list
      (** Children execute as a dependency-ordered partial order: blocks
          with no data dependence run in parallel circuits. *)
  | Branch of { cond : Dfg.t; then_ : region; else_ : region }
  | Loop of { info : loop_info; header : Dfg.t; body : region }

type t = {
  kernel_name : string;
  body : region;
  n_loops : int;
  uses_barrier : bool;
}

val fold_blocks : ('a -> Dfg.t -> 'a) -> 'a -> region -> 'a
(** Every block (straight, cond, header) in pre-order. *)

val fold_loops : ('a -> loop_info -> 'a) -> 'a -> region -> 'a

val region_reads : region -> string list
(** Union of variable reads over the region (sorted, unique). *)

val region_writes : region -> string list

val weighted_op_counts :
  trip:(loop_info -> int) -> region -> (Opcode.t * float) list
(** Per-work-item dynamic operation counts: each block's ops multiplied by
    the product of enclosing loop trip counts (from [trip], which should
    consult static info or profiles); branch sides contribute the
    element-wise {e maximum} of the two sides (the circuit exists for
    both, one executes). Loop [unroll] does not change dynamic counts. *)

val count_ops : region -> (Opcode.t -> bool) -> trip:(loop_info -> int) -> float
(** Total dynamic count of matching ops per work-item. *)

val pp_region : Format.formatter -> region -> unit
(** Debug printer showing the region structure and block sizes. *)
