open Flexcl_opencl

(** Static dependence analysis for recurrence-constrained MII.

    Detects true (read-after-write) recurrences carried between successive
    work-items in the pipeline ([work_item_recurrences]) and between
    successive iterations of a loop ([loop_recurrences]), using affine
    analysis of memory index expressions: an index is probed at three
    values of the carried variable (work-item id or induction variable);
    if the results are affine, store/load pairs on the same array are
    solved for their dependence distance, as in the static method of
    iterative modulo scheduling. Non-affine (data-dependent) indexes are
    conservatively ignored — the paper handles their cost through the
    profiled memory model instead. *)

type recurrence = {
  block : Dfg.t;    (** the basic block containing the cycle. *)
  load : int;       (** node id of the load. *)
  store : int;      (** node id of the store. *)
  array : string;
  distance : int;   (** dependence distance, >= 1. *)
}

val work_item_recurrences : Cdfg.t -> Launch.t -> recurrence list
(** Recurrences carried across work-items (distance measured in
    work-items): a store at affine index [s0 + c*gid] read back by a
    later work-item, or an accumulator location touched by every
    work-item (distance 1). *)

val loop_recurrences : Cdfg.t -> Launch.t -> (int * recurrence list) list
(** Per-loop ([loop_id]) recurrences carried by the loop induction
    variable, used when a loop body is pipelined. Scalar accumulation
    across iterations ([sum += ...]) is also reported, as a distance-1
    recurrence on the pseudo-array ["<scalar>"] with load/store on the
    accumulating operation chain when it is detectable. *)

val affine_probe :
  Launch.t ->
  subst:(string -> int64 option) ->
  carried:[ `Work_item | `Loop_var of string ] ->
  Ast.expr ->
  (int64 * int64) option
(** [affine_probe launch ~subst ~carried e] evaluates [e] at three values
    of the carried variable and returns [(base, stride)] when affine.
    [subst] resolves free scalar variables (loop indices of {e other}
    loops, kernel arguments are resolved from the launch automatically).
    Exposed for tests. *)
