type dim3 = { x : int; y : int; z : int }

let dim3 ?(y = 1) ?(z = 1) x = { x; y; z }

let volume d = d.x * d.y * d.z

type scalar_value = Int of int64 | Float of float

type buffer_init =
  | Zeros
  | Ramp
  | Const_init of float
  | Random_floats of int
  | Random_ints of int * int

type arg =
  | Scalar of scalar_value
  | Buffer of { length : int; init : buffer_init }

type t = { global : dim3; local : dim3; args : (string * arg) list }

let make ~global ~local ~args =
  let check g l name =
    if l <= 0 then invalid_arg (Printf.sprintf "Launch.make: local.%s <= 0" name);
    if g <= 0 then invalid_arg (Printf.sprintf "Launch.make: global.%s <= 0" name);
    if g mod l <> 0 then
      invalid_arg
        (Printf.sprintf "Launch.make: local.%s=%d does not divide global.%s=%d"
           name l name g)
  in
  check global.x local.x "x";
  check global.y local.y "y";
  check global.z local.z "z";
  { global; local; args }

let n_work_items t = volume t.global

let wg_size t = volume t.local

let n_work_groups t = n_work_items t / wg_size t

let find_arg t name = List.assoc_opt name t.args

let scalar_env t =
  List.filter_map
    (fun (name, arg) ->
      match arg with
      | Scalar (Int v) -> Some (name, v)
      | Scalar (Float _) | Buffer _ -> None)
    t.args

let cartesian nx ny nz =
  let out = ref [] in
  for z = nz - 1 downto 0 do
    for y = ny - 1 downto 0 do
      for x = nx - 1 downto 0 do
        out := { x; y; z } :: !out
      done
    done
  done;
  !out

let work_groups t =
  cartesian (t.global.x / t.local.x) (t.global.y / t.local.y)
    (t.global.z / t.local.z)

let local_ids t = cartesian t.local.x t.local.y t.local.z
