(** "System Run" substitute: a cycle-level simulator of the synthesized
    design, standing in for bitstream generation + on-board measurement
    (see DESIGN.md, substitution table).

    It executes the same design point the model estimates, but with the
    physical effects the paper attributes estimation error to:
    {ul
    {- every op instance gets one of the synthesis tool's implementation
       variants (deterministic per kernel/block/node), not the table
       average;}
    {- every global-memory transaction goes through the stateful banked
       DRAM simulator shared by all concurrent compute units — open-row
       state, turnaround, refresh and queuing included;}
    {- work-group dispatch has per-dispatch jitter around
       [ΔL_comp^schedule].}} *)

type result = {
  cycles : float;
  seconds : float;
  mem_transactions : int;  (** DRAM transactions actually simulated. *)
  detail_rounds : int;     (** dispatch rounds simulated in full detail. *)
}

val run :
  ?seed:int ->
  ?max_detail_rounds:int ->
  Flexcl_core.Model.Device.t ->
  Flexcl_core.Analysis.t ->
  Flexcl_core.Config.t ->
  result
(** Simulate the design point. [max_detail_rounds] (default 8) bounds how
    many dispatch rounds are simulated transaction-by-transaction; later
    rounds reuse the measured steady-state round time (the DRAM reaches a
    steady state quickly, so this changes results by well under 1%%). *)
