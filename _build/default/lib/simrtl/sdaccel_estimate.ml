module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Dram = Flexcl_dram.Dram
module Listsched = Flexcl_sched.Listsched
module Prng = Flexcl_util.Prng
open Flexcl_ir

let has_data_dependent_global_index (analysis : Analysis.t) =
  let launch = analysis.Analysis.launch in
  Cdfg.fold_blocks
    (fun acc d ->
      acc
      || List.exists
           (fun (n : Dfg.node) ->
             Opcode.is_global_access n.Dfg.op
             &&
             match n.Dfg.index with
             | None -> false
             | Some idx ->
                 Depend.affine_probe launch
                   ~subst:(fun _ -> None)
                   ~carried:`Work_item idx
                 = None)
           (Dfg.nodes d))
    false analysis.Analysis.cdfg.Cdfg.body

let uses_local (analysis : Analysis.t) =
  analysis.Analysis.sema.Flexcl_opencl.Sema.local_arrays <> []

let supported (analysis : Analysis.t) (cfg : Config.t) =
  let salt =
    Prng.hash_mix
      (Hashtbl.hash analysis.Analysis.cdfg.Cdfg.kernel_name)
      (Hashtbl.hash (Config.to_string cfg))
  in
  not
    (cfg.Config.n_pe > 4
    || (cfg.Config.n_cu > 2 && uses_local analysis)
    || (cfg.Config.n_cu > 1 && has_data_dependent_global_index analysis)
    || salt mod 100 < 15 (* long-running syntheses killed after an hour *))

(* Simplified region latency: critical path only, branches summed
   (conservative control estimation), loops fully sequential. *)
let rec naive_latency lat (analysis : Analysis.t) (r : Cdfg.region) : float =
  match r with
  | Cdfg.Straight d -> float_of_int (Listsched.critical_path d ~lat)
  | Cdfg.Seq rs ->
      List.fold_left (fun acc r -> acc +. naive_latency lat analysis r) 0.0 rs
  | Cdfg.Branch { cond; then_; else_ } ->
      float_of_int (Listsched.critical_path cond ~lat)
      +. naive_latency lat analysis then_
      +. naive_latency lat analysis else_
  | Cdfg.Loop { info; header; body } ->
      let trip = Analysis.trip analysis info in
      if trip <= 0.0 then 0.0
      else
        let u =
          match info.Cdfg.attrs.Flexcl_opencl.Ast.unroll with
          | Some u -> float_of_int (max 1 u)
          | None -> 1.0
        in
        Float.ceil (trip /. u)
        *. (float_of_int (Listsched.critical_path header ~lat)
           +. naive_latency lat analysis body)

let estimate (dev : Device.t) (analysis : Analysis.t) (cfg : Config.t) =
  if not (supported analysis cfg) then None
  else begin
    let analysis =
      if Launch.wg_size analysis.Analysis.launch = cfg.Config.wg_size then analysis
      else Analysis.with_wg_size analysis cfg.Config.wg_size
    in
    let dram = dev.Device.dram in
    let lat (op : Opcode.t) =
      match op with
      (* every global access assumed a streaming row-buffer hit *)
      | Opcode.Load Opcode.Global_mem -> dram.Dram.t_cas + dram.Dram.t_bus
      | Opcode.Store Opcode.Global_mem -> dram.Dram.t_bus
      | other -> Device.op_latency dev other
    in
    let depth = naive_latency lat analysis analysis.Analysis.cdfg.Cdfg.body in
    let wg = cfg.Config.wg_size in
    let ii = if cfg.Config.wi_pipeline then 1.0 else Float.max 1.0 depth in
    (* memory: transaction count x bus transfer only *)
    let txns =
      List.fold_left
        (fun acc (_, c) -> acc +. c)
        0.0
        (Model.mean_pattern_counts analysis dev)
    in
    let l_mem = txns *. float_of_int dram.Dram.t_bus in
    let lanes = max 1 cfg.Config.n_pe in
    let waves = float_of_int ((max 0 (wg - lanes) + lanes - 1) / lanes) in
    let n_wi = Launch.n_work_items analysis.Analysis.launch in
    let n_wg = (n_wi + wg - 1) / wg in
    (* every CU assumed fully parallel, dispatch assumed free *)
    let wg_rounds = Float.ceil (float_of_int n_wg /. float_of_int cfg.Config.n_cu) in
    let cycles =
      match cfg.Config.comm_mode with
      | Config.Barrier_mode ->
          (l_mem *. float_of_int n_wi) +. (((ii *. waves) +. depth) *. wg_rounds)
      | Config.Pipeline_mode ->
          ((Float.max ii l_mem *. waves) +. depth) *. wg_rounds
    in
    Some cycles
  end
