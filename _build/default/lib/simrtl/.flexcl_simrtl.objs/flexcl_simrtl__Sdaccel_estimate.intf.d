lib/simrtl/sdaccel_estimate.mli: Flexcl_core
