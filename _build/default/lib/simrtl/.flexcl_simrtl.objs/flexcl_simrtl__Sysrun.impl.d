lib/simrtl/sysrun.ml: Array Cdfg Dfg Flexcl_core Flexcl_device Flexcl_dram Flexcl_interp Flexcl_ir Flexcl_sched Flexcl_util Float Hashtbl Launch List Queue
