lib/simrtl/sdaccel_estimate.ml: Cdfg Depend Dfg Flexcl_core Flexcl_device Flexcl_dram Flexcl_ir Flexcl_opencl Flexcl_sched Flexcl_util Float Hashtbl Launch List Opcode
