lib/simrtl/sysrun.mli: Flexcl_core
