(** Baseline estimator standing in for SDAccel's HLS cycle report
    (the paper's weak comparison point, §4.2, 30–85% average error).

    It is a genuinely simplified analytical estimator reproducing the
    three error sources the paper names:
    {ol
    {- {b memory underestimation} — every global access is assumed to be
       a row-buffer hit served at the raw column latency, with no
       coalescing analysis, no pattern distinction and no inter-access
       state;}
    {- {b conservative control estimation} — both sides of every branch
       are summed (as if predicated sequentially) instead of overlapped;}
    {- {b no multi-CU scheduling overhead} — compute units are assumed
       perfectly parallel and dispatch is free.}}

    Like the real tool, it fails to produce an estimate for a sizeable
    fraction of design points (unsupported parallelism/memory shapes). *)

val estimate :
  Flexcl_core.Model.Device.t ->
  Flexcl_core.Analysis.t ->
  Flexcl_core.Config.t ->
  float option
(** [None] models an SDAccel failure: high PE replication, multi-CU
    designs touching [__local] memory, or kernels with data-dependent
    global indexing — the shapes §4.2 reports the tool giving up on. *)

val supported : Flexcl_core.Analysis.t -> Flexcl_core.Config.t -> bool
(** Whether the tool would return an estimate for this design point. *)
