(** Recursive-descent parser for the OpenCL-C subset.

    Grammar summary:
    {v
    program   := kernel*
    kernel    := pragma* "__kernel" attribute? "void" IDENT "(" params ")"
                 block
    attribute := "__attribute__" "((" IDENT ( "(" INT ("," INT)* ")" )? "))"
    stmt      := decl | local-decl | assignment | if | for | while
               | "barrier" "(" ... ")" ";" | return | break | continue
               | call ";" | block
    v}

    Pragmas recognized: [#pragma unroll N] and [#pragma pipeline] (attach
    to the following loop), [#pragma work_item_pipeline] (attaches to the
    enclosing/following kernel). Unknown pragmas are ignored. *)

exception Error of string * int * int
(** [Error (message, line, col)]; positions are 1-based. *)

val parse_program : string -> Ast.program
(** Parse source text into kernels. Raises {!Error} or {!Lexer.Error}. *)

val parse_kernel : string -> Ast.kernel
(** Convenience: parse a source containing exactly one kernel. Raises
    {!Error} if there are zero or several kernels. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
