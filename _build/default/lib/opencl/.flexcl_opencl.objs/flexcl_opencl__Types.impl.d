lib/opencl/types.ml: Format List Option Printf String
