lib/opencl/parser.ml: Ast Int64 Lexer List Option Printf Token Types
