lib/opencl/lexer.ml: Buffer Int64 List Option Printf String Token
