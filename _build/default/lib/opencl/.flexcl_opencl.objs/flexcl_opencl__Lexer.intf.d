lib/opencl/lexer.mli: Token
