lib/opencl/ast.ml: Format List Option Types
