lib/opencl/token.ml: Int64 String
