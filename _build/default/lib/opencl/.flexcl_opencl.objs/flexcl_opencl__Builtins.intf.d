lib/opencl/builtins.mli: Types
