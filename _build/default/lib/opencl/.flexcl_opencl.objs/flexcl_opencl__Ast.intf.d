lib/opencl/ast.mli: Format Types
