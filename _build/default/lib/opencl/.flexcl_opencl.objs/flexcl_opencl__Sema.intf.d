lib/opencl/sema.mli: Ast Hashtbl Types
