lib/opencl/parser.mli: Ast
