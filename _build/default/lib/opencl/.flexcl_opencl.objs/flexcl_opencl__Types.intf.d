lib/opencl/types.mli: Format
