lib/opencl/builtins.ml: List Printf Result Types
