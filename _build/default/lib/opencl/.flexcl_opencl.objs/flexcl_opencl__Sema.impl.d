lib/opencl/sema.ml: Ast Builtins Hashtbl Int64 List Option Printf Types
