type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; mutable rows : row list (* reversed *) }

let create ~headers = { headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers and k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than headers";
  let padded = cells @ List.init (n - k) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let fmt_float ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let render ?align t =
  let ncols = List.length t.headers in
  let align =
    match align with
    | Some a when List.length a = ncols -> a
    | Some _ -> invalid_arg "Table.render: alignment length mismatch"
    | None -> List.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let rows = List.rev t.rows in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad a w s =
    let fill = String.make (w - String.length s) ' ' in
    match a with Left -> s ^ fill | Right -> fill ^ s
  in
  let line ch junction =
    Buffer.add_string buf junction;
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_string buf junction)
      widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    Buffer.add_string buf "|";
    List.iteri
      (fun i c ->
        let a = List.nth align i in
        Buffer.add_string buf (" " ^ pad a widths.(i) c ^ " |"))
      cells;
    Buffer.add_char buf '\n'
  in
  line '-' "+";
  emit t.headers;
  line '=' "+";
  List.iter (function Cells c -> emit c | Separator -> line '-' "+") rows;
  line '-' "+";
  Buffer.contents buf
