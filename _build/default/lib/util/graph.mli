(** Directed-graph helpers shared by the CDFG, scheduler and dependence
    analyses. Nodes are dense integers [0 .. n-1]. *)

type t
(** Adjacency-list digraph; edges may carry an integer weight (latency or
    dependence distance, depending on the client). *)

val create : int -> t
(** [create n] makes a graph with [n] nodes and no edges. *)

val n_nodes : t -> int

val add_edge : ?weight:int -> t -> int -> int -> unit
(** [add_edge g u v] adds [u -> v] (parallel edges allowed, default
    weight 0). Raises [Invalid_argument] on out-of-range nodes. *)

val succs : t -> int -> (int * int) list
(** Successor list with weights. *)

val preds : t -> int -> (int * int) list

val topo_sort : t -> int list option
(** Topological order, or [None] if the graph is cyclic. *)

val is_dag : t -> bool

val longest_paths : t -> source_weight:(int -> int) -> int array
(** For a DAG: [longest_paths g ~source_weight] gives, per node, the
    largest sum of node weights along any path ending at that node
    (inclusive). Raises [Invalid_argument] on cyclic graphs. *)

val sccs : t -> int list list
(** Strongly connected components (Tarjan), in reverse topological order
    of the condensation. Singleton components without self-loops are
    included. *)

val has_self_loop : t -> int -> bool

val max_cycle_ratio :
  t -> cost:(int -> int) -> int
(** [max_cycle_ratio g ~cost] computes [max over cycles C of
    ceil(sum of cost(node) for nodes in C / sum of edge weights in C)]
    where edge weights are dependence distances (must be >= 0 on every
    edge participating in a cycle, with at least one positive weight per
    cycle — otherwise the recurrence is unschedulable and the function
    raises [Invalid_argument]). Returns 0 for acyclic graphs. This is the
    RecMII computation of modulo scheduling. *)
