(** Deterministic pseudo-random number generation.

    Every stochastic choice in FlexCL (work-group sampling, simulator
    implementation-variant selection, dispatch jitter) flows from a [t]
    seeded explicitly, so whole-repo runs are reproducible bit-for-bit. The
    generator is splitmix64, which is small, fast and has no ambient
    state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators with the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each kernel / design point its own stream so evaluation
    order does not affect results. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val hash_mix : int -> int -> int
(** [hash_mix a b] deterministically mixes two ints into a well-spread
    non-negative int; used to give op instances stable per-instance
    "implementation variants" without carrying generator state around. *)
