let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
      let sum_logs =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
            else acc +. log x)
          0.0 xs
      in
      exp (sum_logs /. float_of_int (List.length xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let sorted xs = List.sort compare xs

let percentile p xs =
  match sorted xs with
  | [] -> 0.0
  | [ x ] -> x
  | s ->
      let arr = Array.of_list s in
      let n = Array.length arr in
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (n - 1) (lo + 1) in
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let median xs = percentile 50.0 xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let abs_pct_error ~actual ~predicted =
  if actual = 0.0 then invalid_arg "Stats.abs_pct_error: actual is zero";
  100.0 *. Float.abs (predicted -. actual) /. Float.abs actual

let mean_abs_pct_error pairs =
  mean (List.map (fun (actual, predicted) -> abs_pct_error ~actual ~predicted) pairs)

let correlation pairs =
  match pairs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let xs = List.map fst pairs and ys = List.map snd pairs in
      let mx = mean xs and my = mean ys in
      let cov =
        mean (List.map (fun (x, y) -> (x -. mx) *. (y -. my)) pairs)
      in
      let sx = stddev xs and sy = stddev ys in
      if sx = 0.0 || sy = 0.0 then 0.0 else cov /. (sx *. sy)
