type t = {
  n : int;
  succ : (int * int) list array;
  pred : (int * int) list array;
  mutable n_edges : int;
}

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  { n; succ = Array.make n []; pred = Array.make n []; n_edges = 0 }

let n_nodes g = g.n

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Graph: node out of range"

let add_edge ?(weight = 0) g u v =
  check g u;
  check g v;
  g.succ.(u) <- (v, weight) :: g.succ.(u);
  g.pred.(v) <- (u, weight) :: g.pred.(v);
  g.n_edges <- g.n_edges + 1

let succs g u =
  check g u;
  g.succ.(u)

let preds g u =
  check g u;
  g.pred.(u)

let topo_sort g =
  let indeg = Array.make g.n 0 in
  for u = 0 to g.n - 1 do
    List.iter (fun (v, _) -> indeg.(v) <- indeg.(v) + 1) g.succ.(u)
  done;
  let queue = Queue.create () in
  for u = 0 to g.n - 1 do
    if indeg.(u) = 0 then Queue.add u queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    incr seen;
    order := u :: !order;
    List.iter
      (fun (v, _) ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.add v queue)
      g.succ.(u)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let is_dag g = topo_sort g <> None

let longest_paths g ~source_weight =
  match topo_sort g with
  | None -> invalid_arg "Graph.longest_paths: graph is cyclic"
  | Some order ->
      let dist = Array.init g.n source_weight in
      List.iter
        (fun u ->
          List.iter
            (fun (v, _) ->
              let candidate = dist.(u) + source_weight v in
              if candidate > dist.(v) then dist.(v) <- candidate)
            g.succ.(u))
        order;
      dist

let sccs g =
  (* Tarjan, iterative to avoid stack overflow on deep graphs. *)
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = Stack.create () in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    Stack.push v stack;
    on_stack.(v) <- true;
    List.iter
      (fun (w, _) ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.succ.(v);
    if lowlink.(v) = index.(v) then begin
      let comp = ref [] in
      let continue = ref true in
      while !continue do
        let w = Stack.pop stack in
        on_stack.(w) <- false;
        comp := w :: !comp;
        if w = v then continue := false
      done;
      components := !comp :: !components
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  !components

let has_self_loop g u = List.exists (fun (v, _) -> v = u) (succs g u)

let max_cycle_ratio g ~cost =
  (* RecMII: smallest integer II such that no cycle C has
     sum(cost) > II * sum(dist).  Feasibility of a candidate II is checked
     by looking for a positive-weight cycle under edge weight
     cost(u) - II * dist(u,v) with Bellman-Ford. *)
  let any_cycle =
    List.exists (fun comp -> List.length comp > 1) (sccs g)
    || Array.exists (fun u -> u) (Array.init g.n (has_self_loop g))
  in
  if not any_cycle then 0
  else begin
    let total_cost =
      Array.to_list (Array.init g.n cost) |> List.fold_left ( + ) 0
    in
    let has_positive_cycle ii =
      (* Bellman-Ford longest paths; relax up to n rounds. *)
      let dist = Array.make g.n 0 in
      let changed = ref true in
      let rounds = ref 0 in
      while !changed && !rounds <= g.n do
        changed := false;
        incr rounds;
        for u = 0 to g.n - 1 do
          List.iter
            (fun (v, d) ->
              let w = cost u - (ii * d) in
              if dist.(u) + w > dist.(v) then begin
                dist.(v) <- dist.(u) + w;
                changed := true
              end)
            g.succ.(u)
        done
      done;
      !changed
    in
    if has_positive_cycle total_cost then
      invalid_arg "Graph.max_cycle_ratio: zero-distance recurrence cycle";
    let lo = ref 0 and hi = ref total_cost in
    (* Invariant: II = hi is feasible, II = lo - 1 .. unknown; find the
       smallest feasible II in (lo, hi]. *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if has_positive_cycle mid then lo := mid + 1 else hi := mid
    done;
    !hi
  end
