(** Small statistics toolkit used by the model-accuracy experiments. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on lists shorter than 2. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation. *)

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val abs_pct_error : actual:float -> predicted:float -> float
(** [abs_pct_error ~actual ~predicted] is [100 * |pred - actual| / actual].
    Raises [Invalid_argument] if [actual] is 0. *)

val mean_abs_pct_error : (float * float) list -> float
(** Mean of {!abs_pct_error} over [(actual, predicted)] pairs. *)

val correlation : (float * float) list -> float
(** Pearson correlation coefficient; 0. when either variance is 0. *)
