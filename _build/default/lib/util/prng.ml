type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, as in [Random.float]. *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw ()
    else
      let u2 = float t 1.0 in
      mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let hash_mix a b =
  let z = Int64.add (Int64.of_int a) (Int64.mul golden_gamma (Int64.of_int (b + 1))) in
  Int64.to_int (Int64.shift_right_logical (mix64 z) 1) land max_int
