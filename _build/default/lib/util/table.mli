(** ASCII table rendering for experiment reports.

    The bench harness prints the same rows the paper's tables report; this
    module keeps the formatting in one place. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table whose width adapts to its widest cell per column. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : ?align:align list -> t -> string
(** Render with box-drawing; default alignment is [Left] for the first
    column and [Right] for the rest. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float formatting shared by all reports (default 1 decimal). *)
