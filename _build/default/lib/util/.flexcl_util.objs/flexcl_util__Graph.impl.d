lib/util/graph.ml: Array List Queue Stack
