lib/util/graph.mli:
