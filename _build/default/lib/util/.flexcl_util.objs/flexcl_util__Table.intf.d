lib/util/table.mli:
