lib/util/stats.mli:
