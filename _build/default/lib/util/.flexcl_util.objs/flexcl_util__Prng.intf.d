lib/util/prng.mli:
