bench/experiments.ml: Flexcl_core Flexcl_device Flexcl_dse Flexcl_ir Flexcl_simrtl Flexcl_util Flexcl_workloads Float Hashtbl List Printf Unix
