bench/main.mli:
