bench/main.ml: Analyze Array Bechamel Benchmark Experiments Flexcl_core Flexcl_device Flexcl_simrtl Flexcl_workloads Hashtbl Instance List Measure Printf Staged Sys Test Time Toolkit Unix
