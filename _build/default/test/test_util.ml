(* Unit and property tests for Flexcl_util: PRNG, statistics, tables and
   the graph algorithms the schedulers build on. *)

module Prng = Flexcl_util.Prng
module Stats = Flexcl_util.Stats
module Table = Flexcl_util.Table
module Graph = Flexcl_util.Graph

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check Alcotest.bool "different seeds diverge"
    true
    (List.exists
       (fun _ -> Prng.next_int64 a <> Prng.next_int64 b)
       (List.init 4 Fun.id))

let test_prng_int_range () =
  let r = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_prng_int_rejects_nonpositive () =
  let r = Prng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int r 0))

let test_prng_float_range () =
  let r = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let test_prng_split_independent () =
  let parent = Prng.create 11 in
  let child = Prng.split parent in
  let a = Prng.next_int64 parent and b = Prng.next_int64 child in
  check Alcotest.bool "split streams differ" true (a <> b)

let test_prng_copy_preserves () =
  let a = Prng.create 13 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.next_int64 a)
    (Prng.next_int64 b)

let test_prng_gaussian_moments () =
  let r = Prng.create 17 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Prng.gaussian r ~mu:5.0 ~sigma:2.0) in
  let mean = Stats.mean xs in
  let sd = Stats.stddev xs in
  check (Alcotest.float 0.1) "mean" 5.0 mean;
  check (Alcotest.float 0.1) "sigma" 2.0 sd

let test_prng_shuffle_permutes () =
  let r = Prng.create 19 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 50 Fun.id) sorted

let test_hash_mix_nonnegative () =
  for a = -5 to 5 do
    for b = -5 to 5 do
      if Prng.hash_mix a b < 0 then Alcotest.fail "negative hash"
    done
  done

let test_hash_mix_stable () =
  check Alcotest.int "deterministic" (Prng.hash_mix 42 7) (Prng.hash_mix 42 7)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_mean () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  check (Alcotest.float 1e-9) "empty" 0.0 (Stats.mean [])

let test_geomean () =
  check (Alcotest.float 1e-9) "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ])

let test_stddev () =
  check (Alcotest.float 1e-9) "constant list" 0.0 (Stats.stddev [ 3.0; 3.0; 3.0 ]);
  check (Alcotest.float 1e-6) "known" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_median_even_odd () =
  check (Alcotest.float 1e-9) "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_percentile_bounds () =
  let xs = [ 10.0; 20.0; 30.0 ] in
  check (Alcotest.float 1e-9) "p0" 10.0 (Stats.percentile 0.0 xs);
  check (Alcotest.float 1e-9) "p100" 30.0 (Stats.percentile 100.0 xs);
  check (Alcotest.float 1e-9) "p50" 20.0 (Stats.percentile 50.0 xs)

let test_abs_pct_error () =
  check (Alcotest.float 1e-9) "10% high" 10.0
    (Stats.abs_pct_error ~actual:100.0 ~predicted:110.0);
  check (Alcotest.float 1e-9) "10% low" 10.0
    (Stats.abs_pct_error ~actual:100.0 ~predicted:90.0)

let test_correlation_perfect () =
  let pairs = List.init 10 (fun i -> (float_of_int i, float_of_int (2 * i))) in
  check (Alcotest.float 1e-6) "r=1" 1.0 (Stats.correlation pairs)

let test_correlation_anticorrelated () =
  let pairs = List.init 10 (fun i -> (float_of_int i, float_of_int (-i))) in
  check (Alcotest.float 1e-6) "r=-1" (-1.0) (Stats.correlation pairs)

let test_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 7.0 ] in
  check (Alcotest.float 1e-9) "lo" (-1.0) lo;
  check (Alcotest.float 1e-9) "hi" 7.0 hi

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy" ];
  let s = Table.render t in
  check Alcotest.bool "contains header" true
    (Thelpers.contains s "name" && Thelpers.contains s "value");
  check Alcotest.bool "pads short rows" true (Thelpers.contains s "yy")

and test_table_too_many_cells () =
  let t = Table.create ~headers:[ "one" ] in
  Alcotest.check_raises "overflow row"
    (Invalid_argument "Table.add_row: more cells than headers") (fun () ->
      Table.add_row t [ "a"; "b" ])

let test_fmt_float () =
  check Alcotest.string "one decimal" "3.1" (Table.fmt_float 3.14159);
  check Alcotest.string "three decimals" "3.142" (Table.fmt_float ~decimals:3 3.14159)

(* ------------------------------------------------------------------ *)
(* Graph *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  g

let test_topo_sort_dag () =
  match Graph.topo_sort (diamond ()) with
  | None -> Alcotest.fail "diamond is a DAG"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i u -> pos.(u) <- i) order;
      check Alcotest.bool "0 before 3" true (pos.(0) < pos.(3));
      check Alcotest.bool "1 before 3" true (pos.(1) < pos.(3))

let test_topo_sort_cycle () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  check Alcotest.bool "cycle detected" true (Graph.topo_sort g = None)

let test_longest_paths () =
  let g = diamond () in
  let d = Graph.longest_paths g ~source_weight:(fun u -> if u = 1 then 5 else 1) in
  (* path 0 -> 1 -> 3 has weight 1 + 5 + 1 = 7 *)
  check Alcotest.int "sink distance" 7 d.(3)

let test_longest_paths_cyclic_rejected () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Alcotest.check_raises "cyclic"
    (Invalid_argument "Graph.longest_paths: graph is cyclic") (fun () ->
      ignore (Graph.longest_paths g ~source_weight:(fun _ -> 1)))

let test_sccs () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  let comps = Graph.sccs g |> List.map (List.sort compare) in
  check Alcotest.bool "0-1 component" true (List.mem [ 0; 1 ] comps);
  check Alcotest.bool "singletons" true (List.mem [ 2 ] comps && List.mem [ 3 ] comps)

let test_self_loop () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 0;
  check Alcotest.bool "self" true (Graph.has_self_loop g 0);
  check Alcotest.bool "no self" false (Graph.has_self_loop g 1)

let test_max_cycle_ratio_acyclic () =
  check Alcotest.int "acyclic -> 0" 0
    (Graph.max_cycle_ratio (diamond ()) ~cost:(fun _ -> 3))

let test_max_cycle_ratio_simple () =
  (* cycle 0 -> 1 -> 0 with total cost 10 and total distance 2: MII 5 *)
  let g = Graph.create 2 in
  Graph.add_edge ~weight:1 g 0 1;
  Graph.add_edge ~weight:1 g 1 0;
  check Alcotest.int "cycle ratio" 5 (Graph.max_cycle_ratio g ~cost:(fun _ -> 5))

let test_max_cycle_ratio_self_loop () =
  (* self-loop cost 7 distance 2: ceil(7/2) = 4 *)
  let g = Graph.create 1 in
  Graph.add_edge ~weight:2 g 0 0;
  check Alcotest.int "self loop" 4 (Graph.max_cycle_ratio g ~cost:(fun _ -> 7))

let test_max_cycle_ratio_zero_distance () =
  let g = Graph.create 2 in
  Graph.add_edge ~weight:0 g 0 1;
  Graph.add_edge ~weight:0 g 1 0;
  Alcotest.check_raises "unschedulable"
    (Invalid_argument "Graph.max_cycle_ratio: zero-distance recurrence cycle")
    (fun () -> ignore (Graph.max_cycle_ratio g ~cost:(fun _ -> 1)))

let test_max_cycle_ratio_picks_max () =
  (* two cycles: (0,1) ratio 10/2 = 5, (2) self ratio 3/1 = 3 -> 5 *)
  let g = Graph.create 3 in
  Graph.add_edge ~weight:1 g 0 1;
  Graph.add_edge ~weight:1 g 1 0;
  Graph.add_edge ~weight:1 g 2 2;
  check Alcotest.int "max of cycles" 5
    (Graph.max_cycle_ratio g ~cost:(fun u -> if u = 2 then 3 else 5))

(* ------------------------------------------------------------------ *)
(* qcheck properties *)

let prop_prng_int_in_range =
  QCheck.Test.make ~name:"prng int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Prng.create seed in
      let v = Prng.int r bound in
      v >= 0 && v < bound)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 100.0))
    (fun xs ->
      Stats.percentile 25.0 xs <= Stats.percentile 75.0 xs)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_exclusive 1000.0))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-9 && m <= hi +. 1e-9)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological order respects random DAG edges" ~count:200
    QCheck.(pair (int_range 2 15) (list_of_size Gen.(int_range 0 30) (pair small_nat small_nat)))
    (fun (n, raw) ->
      let g = Graph.create n in
      (* orient all edges from lower to higher id: always a DAG *)
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          if a < b then Graph.add_edge g a b
          else if b < a then Graph.add_edge g b a)
        raw;
      match Graph.topo_sort g with
      | None -> false
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i u -> pos.(u) <- i) order;
          List.for_all
            (fun u ->
              List.for_all (fun (v, _) -> pos.(u) < pos.(v)) (Graph.succs g u))
            (List.init n Fun.id))

let suite =
  [
    Alcotest.test_case "prng: deterministic streams" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng: int range" `Quick test_prng_int_range;
    Alcotest.test_case "prng: int rejects <= 0" `Quick test_prng_int_rejects_nonpositive;
    Alcotest.test_case "prng: float range" `Quick test_prng_float_range;
    Alcotest.test_case "prng: split independence" `Quick test_prng_split_independent;
    Alcotest.test_case "prng: copy preserves state" `Quick test_prng_copy_preserves;
    Alcotest.test_case "prng: gaussian moments" `Quick test_prng_gaussian_moments;
    Alcotest.test_case "prng: shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "prng: hash_mix nonnegative" `Quick test_hash_mix_nonnegative;
    Alcotest.test_case "prng: hash_mix stable" `Quick test_hash_mix_stable;
    Alcotest.test_case "stats: mean" `Quick test_mean;
    Alcotest.test_case "stats: geomean" `Quick test_geomean;
    Alcotest.test_case "stats: stddev" `Quick test_stddev;
    Alcotest.test_case "stats: median" `Quick test_median_even_odd;
    Alcotest.test_case "stats: percentile bounds" `Quick test_percentile_bounds;
    Alcotest.test_case "stats: abs pct error" `Quick test_abs_pct_error;
    Alcotest.test_case "stats: perfect correlation" `Quick test_correlation_perfect;
    Alcotest.test_case "stats: anticorrelation" `Quick test_correlation_anticorrelated;
    Alcotest.test_case "stats: min max" `Quick test_min_max;
    Alcotest.test_case "table: render" `Quick test_table_render;
    Alcotest.test_case "table: too many cells" `Quick test_table_too_many_cells;
    Alcotest.test_case "table: float formatting" `Quick test_fmt_float;
    Alcotest.test_case "graph: topo sort DAG" `Quick test_topo_sort_dag;
    Alcotest.test_case "graph: topo sort cycle" `Quick test_topo_sort_cycle;
    Alcotest.test_case "graph: longest paths" `Quick test_longest_paths;
    Alcotest.test_case "graph: longest paths rejects cycles" `Quick
      test_longest_paths_cyclic_rejected;
    Alcotest.test_case "graph: sccs" `Quick test_sccs;
    Alcotest.test_case "graph: self loops" `Quick test_self_loop;
    Alcotest.test_case "graph: cycle ratio acyclic" `Quick test_max_cycle_ratio_acyclic;
    Alcotest.test_case "graph: cycle ratio simple" `Quick test_max_cycle_ratio_simple;
    Alcotest.test_case "graph: cycle ratio self loop" `Quick
      test_max_cycle_ratio_self_loop;
    Alcotest.test_case "graph: cycle ratio zero distance" `Quick
      test_max_cycle_ratio_zero_distance;
    Alcotest.test_case "graph: cycle ratio max" `Quick test_max_cycle_ratio_picks_max;
    QCheck_alcotest.to_alcotest prop_prng_int_in_range;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_between_min_max;
    QCheck_alcotest.to_alcotest prop_topo_respects_edges;
  ]
