(* Interpreter tests: functional execution, tracing, trip counting and
   barrier phase semantics. *)

open Flexcl_opencl
open Flexcl_ir
module Interp = Flexcl_interp.Interp

let check = Alcotest.check

let run ?(max_work_groups = 64) src launch =
  let k = Parser.parse_kernel src in
  let info = Sema.analyze k in
  Interp.run ~max_work_groups k info launch

let fval = function Interp.F f -> f | Interp.I i -> Int64.to_float i
let ival = function Interp.I i -> i | Interp.F f -> Int64.of_float f

let launch1 ?(n = 64) ?(wg = 16) args =
  Launch.make ~global:(Launch.dim3 n) ~local:(Launch.dim3 wg) ~args

let test_vector_add () =
  let l =
    launch1
      [
        ("a", Launch.Buffer { length = 64; init = Launch.Ramp });
        ("b", Launch.Buffer { length = 64; init = Launch.Ramp });
        ("c", Launch.Buffer { length = 64; init = Launch.Zeros });
      ]
  in
  let p =
    run {|__kernel void f(__global const float* a, __global const float* b,
                          __global float* c) {
            int g = get_global_id(0);
            c[g] = a[g] + b[g];
          }|}
      l
  in
  let c = List.assoc "c" p.Interp.buffers in
  for i = 0 to 63 do
    check (Alcotest.float 1e-6) "c[i] = 2i" (2.0 *. float_of_int i) (fval c.(i))
  done

let test_int_arithmetic () =
  let l = launch1 [ ("out", Launch.Buffer { length = 64; init = Launch.Zeros }) ] in
  let p =
    run
      {|__kernel void f(__global int* out) {
          int g = get_global_id(0);
          out[g] = (g * 3 + 7) % 5 - (g >> 1) + (g & 3);
        }|}
      l
  in
  let out = List.assoc "out" p.Interp.buffers in
  for g = 0 to 63 do
    let expected = ((g * 3) + 7) mod 5 - (g asr 1) + (g land 3) in
    check Alcotest.int (Printf.sprintf "out[%d]" g) expected (Int64.to_int (ival out.(g)))
  done

let test_builtin_ids () =
  let l =
    Launch.make ~global:(Launch.dim3 ~y:4 8) ~local:(Launch.dim3 ~y:2 4)
      ~args:[ ("out", Launch.Buffer { length = 32; init = Launch.Zeros }) ]
  in
  let p =
    run
      {|__kernel void f(__global int* out) {
          int gx = get_global_id(0);
          int gy = get_global_id(1);
          out[gy * 8 + gx] = get_group_id(0) * 100 + get_local_id(0) * 10 + get_local_id(1);
        }|}
      l
  in
  let out = List.assoc "out" p.Interp.buffers in
  (* work-item (5, 3): group x = 1, lid x = 1, lid y = 1 *)
  check Alcotest.int "encoded ids" 111 (Int64.to_int (ival out.((3 * 8) + 5)))

let test_loop_and_accumulator () =
  let l = launch1 [ ("out", Launch.Buffer { length = 64; init = Launch.Zeros }) ] in
  let p =
    run
      {|__kernel void f(__global float* out) {
          int g = get_global_id(0);
          float s = 0.0f;
          for (int i = 0; i <= g; i++) { s += (float)i; }
          out[g] = s;
        }|}
      l
  in
  let out = List.assoc "out" p.Interp.buffers in
  check (Alcotest.float 1e-6) "gauss sum 10" 55.0 (fval out.(10));
  (* trip depends on gid: avg over 64 work-items = mean(1..64) = 32.5 *)
  check (Alcotest.float 1e-6) "avg trips" 32.5 (Interp.trip_of p 0);
  check Alcotest.bool "max trips" true (List.assoc 0 p.Interp.max_trips = 64)

let test_while_break_continue () =
  let l = launch1 [ ("out", Launch.Buffer { length = 64; init = Launch.Zeros }) ] in
  let p =
    run
      {|__kernel void f(__global int* out) {
          int g = get_global_id(0);
          int i = 0;
          int acc = 0;
          while (1) {
            i = i + 1;
            if (i > 10) { break; }
            if (i % 2 == 0) { continue; }
            acc += i;
          }
          out[g] = acc;
        }|}
      l
  in
  let out = List.assoc "out" p.Interp.buffers in
  (* odd numbers 1..9 sum to 25 *)
  check Alcotest.int "break/continue" 25 (Int64.to_int (ival out.(0)))

let test_barrier_local_exchange () =
  (* classic reversal through local memory: requires phase semantics *)
  let l =
    launch1 ~n:32 ~wg:16
      [
        ("a", Launch.Buffer { length = 32; init = Launch.Ramp });
        ("out", Launch.Buffer { length = 32; init = Launch.Zeros });
      ]
  in
  let p =
    run
      {|__kernel void f(__global const float* a, __global float* out) {
          __local float tile[16];
          int lid = get_local_id(0);
          int gid = get_global_id(0);
          tile[lid] = a[gid];
          barrier(CLK_LOCAL_MEM_FENCE);
          int ls = get_local_size(0);
          out[gid] = tile[ls - 1 - lid];
        }|}
      l
  in
  let out = List.assoc "out" p.Interp.buffers in
  (* group 0 reverses 0..15 *)
  check (Alcotest.float 1e-6) "reversed head" 15.0 (fval out.(0));
  (* group 1 reverses 16..31 *)
  check (Alcotest.float 1e-6) "reversed second group" 31.0 (fval out.(16))

let test_trace_order_and_kinds () =
  let l =
    launch1 ~n:16 ~wg:16
      [
        ("a", Launch.Buffer { length = 16; init = Launch.Ramp });
        ("b", Launch.Buffer { length = 16; init = Launch.Zeros });
      ]
  in
  let p =
    run
      {|__kernel void f(__global const float* a, __global float* b) {
          int g = get_global_id(0);
          b[g] = a[g] + a[g + 0];
        }|}
      l
  in
  check Alcotest.int "16 traces" 16 (Array.length p.Interp.wi_traces);
  match p.Interp.wi_traces.(3) with
  | [ r1; r2; w ] ->
      check Alcotest.string "first read a" "a" r1.Interp.array;
      check Alcotest.int "index" 3 r1.Interp.index;
      check Alcotest.bool "read kind" true (r1.Interp.kind = `Read);
      check Alcotest.bool "second read" true (r2.Interp.kind = `Read);
      check Alcotest.string "write b" "b" w.Interp.array;
      check Alcotest.bool "write kind" true (w.Interp.kind = `Write);
      check Alcotest.int "elem bits" 32 w.Interp.elem_bits
  | t -> Alcotest.failf "unexpected trace length %d" (List.length t)

let test_local_accesses_not_traced () =
  let l = launch1 ~n:16 ~wg:16 [ ("b", Launch.Buffer { length = 16; init = Launch.Zeros }) ] in
  let p =
    run
      {|__kernel void f(__global float* b) {
          __local float t[16];
          int lid = get_local_id(0);
          t[lid] = 1.0f;
          b[lid] = t[lid];
        }|}
      l
  in
  (* only the global write (and global read none): local ops invisible *)
  check Alcotest.int "one access" 1 (List.length p.Interp.wi_traces.(0))

let test_out_of_bounds_raises () =
  let l = launch1 ~n:16 ~wg:16 [ ("b", Launch.Buffer { length = 4; init = Launch.Zeros }) ] in
  match
    run {|__kernel void f(__global float* b) { b[get_global_id(0)] = 1.0f; }|} l
  with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected out-of-bounds error"

let test_div_by_zero_raises () =
  let l = launch1 ~n:16 ~wg:16 [ ("b", Launch.Buffer { length = 16; init = Launch.Zeros }) ] in
  match
    run {|__kernel void f(__global int* b) { int z = 0; b[0] = 1 / z; }|} l
  with
  | exception Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected division error"

let test_private_array () =
  let l = launch1 ~n:16 ~wg:16 [ ("b", Launch.Buffer { length = 16; init = Launch.Zeros }) ] in
  let p =
    run
      {|__kernel void f(__global float* b) {
          float tmp[8];
          int g = get_global_id(0);
          for (int i = 0; i < 8; i++) { tmp[i] = (float)(i * g); }
          float s = 0.0f;
          for (int i = 0; i < 8; i++) { s += tmp[i]; }
          b[g] = s;
        }|}
      l
  in
  let b = List.assoc "b" p.Interp.buffers in
  (* sum i*g for i in 0..7 = 28 g *)
  check (Alcotest.float 1e-6) "private array sum" 56.0 (fval b.(2))

let test_math_builtins () =
  let l = launch1 ~n:16 ~wg:16 [ ("b", Launch.Buffer { length = 16; init = Launch.Zeros }) ] in
  let p =
    run
      {|__kernel void f(__global float* b) {
          b[0] = sqrt(16.0f);
          b[1] = fmax(2.0f, 3.0f);
          b[2] = fabs(-5.5f);
          b[3] = mad(2.0f, 3.0f, 4.0f);
          b[4] = clamp(7.0f, 0.0f, 5.0f);
          b[5] = pow(2.0f, 10.0f);
          b[6] = floor(3.7f);
          b[7] = (float)max(3, 9);
          b[8] = (float)abs(-4);
          b[9] = exp(0.0f);
        }|}
      l
  in
  let b = List.assoc "b" p.Interp.buffers in
  let expect i v = check (Alcotest.float 1e-5) (Printf.sprintf "b[%d]" i) v (fval b.(i)) in
  expect 0 4.0;
  expect 1 3.0;
  expect 2 5.5;
  expect 3 10.0;
  expect 4 5.0;
  expect 5 1024.0;
  expect 6 3.0;
  expect 7 9.0;
  expect 8 4.0;
  expect 9 1.0

let test_sampled_profiling_spread () =
  (* 8 work-groups, sample 3: adjacent pair at the start (for
     concurrent-CU interactions) plus the far end of the range *)
  let l =
    launch1 ~n:128 ~wg:16 [ ("b", Launch.Buffer { length = 128; init = Launch.Zeros }) ]
  in
  let p =
    Interp.run ~max_work_groups:3
      (Parser.parse_kernel
         {|__kernel void f(__global int* b) { b[get_global_id(0)] = 1; }|})
      (Sema.analyze
         (Parser.parse_kernel
            {|__kernel void f(__global int* b) { b[get_global_id(0)] = 1; }|}))
      l
  in
  check Alcotest.int "3 groups profiled" 48 p.Interp.n_work_items_profiled;
  let touched =
    Array.to_list p.Interp.wi_traces
    |> List.concat
    |> List.map (fun a -> a.Interp.index)
  in
  check Alcotest.bool "first group" true (List.mem 0 touched);
  check Alcotest.bool "adjacent second group" true (List.mem 16 touched);
  check Alcotest.bool "last group" true (List.mem 127 touched)

let test_buffer_inits () =
  let l =
    launch1 ~n:16 ~wg:16
      [
        ("z", Launch.Buffer { length = 8; init = Launch.Zeros });
        ("r", Launch.Buffer { length = 8; init = Launch.Ramp });
        ("c", Launch.Buffer { length = 8; init = Launch.Const_init 2.5 });
        ("u", Launch.Buffer { length = 8; init = Launch.Random_floats 3 });
        ("b", Launch.Buffer { length = 16; init = Launch.Zeros });
      ]
  in
  let p =
    run
      {|__kernel void f(__global const float* z, __global const float* r,
                        __global const float* c, __global const float* u,
                        __global float* b) {
          b[0] = z[0] + r[3] + c[1];
        }|}
      l
  in
  let b = List.assoc "b" p.Interp.buffers in
  check (Alcotest.float 1e-6) "0 + 3 + 2.5" 5.5 (fval b.(0));
  let u = List.assoc "u" p.Interp.buffers in
  Array.iter (fun v -> check Alcotest.bool "in [0,1)" true (fval v >= 0.0 && fval v < 1.0)) u

let test_determinism () =
  let l =
    launch1
      [
        ("a", Launch.Buffer { length = 64; init = Launch.Random_floats 9 });
        ("b", Launch.Buffer { length = 64; init = Launch.Zeros });
      ]
  in
  let src =
    {|__kernel void f(__global const float* a, __global float* b) {
        b[get_global_id(0)] = a[get_global_id(0)] * 2.0f;
      }|}
  in
  let p1 = run src l and p2 = run src l in
  let b1 = List.assoc "b" p1.Interp.buffers and b2 = List.assoc "b" p2.Interp.buffers in
  Array.iteri
    (fun i v -> check (Alcotest.float 0.0) "bitwise equal" (fval v) (fval b2.(i)))
    b1

(* qcheck: interpreter against a native OCaml evaluation of an affine map *)
let prop_affine_kernel_matches =
  QCheck.Test.make ~name:"interpreted affine kernel matches native evaluation"
    ~count:50
    QCheck.(triple (int_range (-10) 10) (int_range (-10) 10) (int_range 1 4))
    (fun (c0, c1, stride) ->
      let src =
        Printf.sprintf
          {|__kernel void f(__global int* b) {
              int g = get_global_id(0);
              b[g] = %d + %d * (g * %d);
            }|}
          c0 c1 stride
      in
      let l =
        launch1 ~n:32 ~wg:16
          [ ("b", Launch.Buffer { length = 32; init = Launch.Zeros }) ]
      in
      let p = run src l in
      let b = List.assoc "b" p.Interp.buffers in
      List.for_all
        (fun g -> Int64.to_int (ival b.(g)) = c0 + (c1 * g * stride))
        (List.init 32 Fun.id))

let suite =
  [
    Alcotest.test_case "interp: vector add" `Quick test_vector_add;
    Alcotest.test_case "interp: integer arithmetic" `Quick test_int_arithmetic;
    Alcotest.test_case "interp: work-item ids" `Quick test_builtin_ids;
    Alcotest.test_case "interp: loops and accumulators" `Quick test_loop_and_accumulator;
    Alcotest.test_case "interp: while/break/continue" `Quick test_while_break_continue;
    Alcotest.test_case "interp: barrier exchange" `Quick test_barrier_local_exchange;
    Alcotest.test_case "interp: trace order" `Quick test_trace_order_and_kinds;
    Alcotest.test_case "interp: local not traced" `Quick test_local_accesses_not_traced;
    Alcotest.test_case "interp: out-of-bounds" `Quick test_out_of_bounds_raises;
    Alcotest.test_case "interp: division by zero" `Quick test_div_by_zero_raises;
    Alcotest.test_case "interp: private arrays" `Quick test_private_array;
    Alcotest.test_case "interp: math builtins" `Quick test_math_builtins;
    Alcotest.test_case "interp: sampled profiling" `Quick test_sampled_profiling_spread;
    Alcotest.test_case "interp: buffer initializers" `Quick test_buffer_inits;
    Alcotest.test_case "interp: determinism" `Quick test_determinism;
    QCheck_alcotest.to_alcotest prop_affine_kernel_matches;
  ]
