(* Scheduler tests: list scheduling and modulo scheduling (MII/SMS). *)

open Flexcl_ir
module Listsched = Flexcl_sched.Listsched
module Sms = Flexcl_sched.Sms

let check = Alcotest.check

(* latency table used by the hand-built tests *)
let lat (op : Opcode.t) =
  match op with
  | Opcode.Float_add -> 7
  | Opcode.Float_mul -> 5
  | Opcode.Load Opcode.Local_mem -> 2
  | Opcode.Store Opcode.Local_mem -> 1
  | Opcode.Int_alu -> 1
  | Opcode.Live_in | Opcode.Const_op | Opcode.Wi_query -> 0
  | _ -> 3

let dsp (op : Opcode.t) =
  match op with Opcode.Float_mul -> 3 | Opcode.Float_add -> 2 | _ -> 0

(* chain: load -> mul -> add -> store *)
let chain_block () =
  let b = Dfg.builder () in
  let ld = Dfg.add_node b ~array:"t" (Opcode.Load Opcode.Local_mem) in
  let mul = Dfg.add_node b Opcode.Float_mul in
  let add = Dfg.add_node b Opcode.Float_add in
  let st = Dfg.add_node b ~array:"t" (Opcode.Store Opcode.Local_mem) in
  Dfg.add_dep b ld mul;
  Dfg.add_dep b mul add;
  Dfg.add_dep b add st;
  Dfg.freeze b

let test_list_chain_latency () =
  let s =
    Listsched.schedule_block (chain_block ()) ~lat ~dsp_cost:dsp
      ~cons:Listsched.unconstrained
  in
  (* 2 + 5 + 7 + 1 = 15 *)
  check Alcotest.int "chain" 15 s.Listsched.latency

let test_list_empty_block () =
  let s =
    Listsched.schedule_block Dfg.empty ~lat ~dsp_cost:dsp
      ~cons:Listsched.unconstrained
  in
  check Alcotest.int "empty" 0 s.Listsched.latency

let test_list_parallel_ops () =
  (* two independent adds: same latency as one when unconstrained *)
  let b = Dfg.builder () in
  ignore (Dfg.add_node b Opcode.Float_add);
  ignore (Dfg.add_node b Opcode.Float_add);
  let s =
    Listsched.schedule_block (Dfg.freeze b) ~lat ~dsp_cost:dsp
      ~cons:Listsched.unconstrained
  in
  check Alcotest.int "parallel adds" 7 s.Listsched.latency

let test_list_port_serialization () =
  (* 4 independent local loads with 2 read ports: 2 issue cycles *)
  let b = Dfg.builder () in
  for _ = 1 to 4 do
    ignore (Dfg.add_node b ~array:"t" (Opcode.Load Opcode.Local_mem))
  done;
  let cons = { Listsched.read_ports = 2; write_ports = 2; dsp = max_int } in
  let s = Listsched.schedule_block (Dfg.freeze b) ~lat ~dsp_cost:dsp ~cons in
  (* second pair issues at cycle 1, finishes at 3 *)
  check Alcotest.int "port limited" 3 s.Listsched.latency

let test_list_dsp_serialization () =
  (* 3 independent fmuls, 3 DSP slots each, only 3 DSPs per cycle *)
  let b = Dfg.builder () in
  for _ = 1 to 3 do
    ignore (Dfg.add_node b Opcode.Float_mul)
  done;
  let cons = { Listsched.read_ports = max_int; write_ports = max_int; dsp = 3 } in
  let s = Listsched.schedule_block (Dfg.freeze b) ~lat ~dsp_cost:dsp ~cons in
  (* one mul per cycle: issues at 0,1,2, finishes at 5,6,7 *)
  check Alcotest.int "dsp limited" 7 s.Listsched.latency

let test_list_respects_deps () =
  let d = chain_block () in
  let s = Listsched.schedule_block d ~lat ~dsp_cost:dsp ~cons:Listsched.unconstrained in
  Flexcl_util.Graph.succs (Dfg.graph d) 0
  |> List.iter (fun (v, _) ->
         check Alcotest.bool "consumer after producer" true
           (s.Listsched.start.(v) >= s.Listsched.finish.(0)))

let test_list_impossible_constraint () =
  let b = Dfg.builder () in
  ignore (Dfg.add_node b Opcode.Float_mul);
  let cons = { Listsched.read_ports = 1; write_ports = 1; dsp = 1 } in
  Alcotest.check_raises "op exceeds dsp"
    (Invalid_argument "Listsched: op exceeds resource constraints") (fun () ->
      ignore (Listsched.schedule_block (Dfg.freeze b) ~lat ~dsp_cost:dsp ~cons))

let test_critical_path () =
  check Alcotest.int "matches unconstrained schedule" 15
    (Listsched.critical_path (chain_block ()) ~lat)

let test_zero_latency_chains () =
  (* live_in -> alu: live-in is combinational *)
  let b = Dfg.builder () in
  let li = Dfg.live_in b "x" in
  let alu = Dfg.add_node b Opcode.Int_alu in
  Dfg.add_dep b li alu;
  let s =
    Listsched.schedule_block (Dfg.freeze b) ~lat ~dsp_cost:dsp
      ~cons:Listsched.unconstrained
  in
  check Alcotest.int "no extra cycle" 1 s.Listsched.latency

(* ------------------------------------------------------------------ *)
(* Sms *)

let simple_problem ?(deps = []) lats usages =
  { Sms.lat = Array.of_list lats; usage = Array.of_list usages; deps }

let u ?(r = 0) ?(w = 0) ?(d = 0) () = { Sms.reads = r; writes = w; dsps = d }

let test_res_mii () =
  let p =
    simple_problem [ 1; 1; 1; 1 ]
      [ u ~r:1 (); u ~r:1 (); u ~r:1 (); u ~w:1 () ]
  in
  let limits = { Sms.read_ports = 2; write_ports = 1; dsp_slots = max_int } in
  (* 3 reads / 2 ports -> 2; 1 write / 1 port -> 1 *)
  check Alcotest.int "res mii" 2 (Sms.res_mii p limits)

let test_res_mii_dsp () =
  let p = simple_problem [ 1; 1 ] [ u ~d:3 (); u ~d:3 () ] in
  let limits = { Sms.read_ports = max_int; write_ports = max_int; dsp_slots = 4 } in
  check Alcotest.int "dsp mii" 2 (Sms.res_mii p limits)

let test_rec_mii () =
  (* cycle of two nodes, latencies 7 and 3, distance 1 -> 10 *)
  let p = simple_problem ~deps:[ (0, 1, 0); (1, 0, 1) ] [ 7; 3 ] [ u (); u () ] in
  check Alcotest.int "rec mii" 10 (Sms.rec_mii p)

let test_rec_mii_distance_2 () =
  let p = simple_problem ~deps:[ (0, 1, 0); (1, 0, 2) ] [ 7; 3 ] [ u (); u () ] in
  check Alcotest.int "rec mii /2" 5 (Sms.rec_mii p)

let test_rec_mii_acyclic () =
  let p = simple_problem ~deps:[ (0, 1, 0) ] [ 7; 3 ] [ u (); u () ] in
  check Alcotest.int "no recurrence" 1 (Sms.rec_mii p)

let test_mii_combines () =
  let p =
    simple_problem ~deps:[ (0, 1, 0); (1, 0, 1) ] [ 2; 1 ] [ u ~r:1 (); u ~r:1 () ]
  in
  let limits = { Sms.read_ports = 1; write_ports = 1; dsp_slots = max_int } in
  (* RecMII = 3, ResMII = 2 -> 3 *)
  check Alcotest.int "max of both" 3 (Sms.mii p limits)

let test_schedule_achieves_mii () =
  let p =
    simple_problem
      ~deps:[ (0, 1, 0); (1, 2, 0) ]
      [ 2; 2; 2 ]
      [ u ~r:1 (); u (); u ~w:1 () ]
  in
  let limits = { Sms.read_ports = 1; write_ports = 1; dsp_slots = max_int } in
  let r = Sms.schedule p limits in
  check Alcotest.int "ii = mii" (Sms.mii p limits) r.Sms.ii;
  check Alcotest.int "depth is makespan" 6 r.Sms.depth

let test_schedule_respects_deps () =
  let p =
    simple_problem ~deps:[ (0, 1, 0); (1, 2, 0); (2, 0, 1) ] [ 3; 3; 3 ]
      [ u (); u (); u () ]
  in
  let r = Sms.schedule p Sms.unlimited in
  check Alcotest.bool "deps hold" true
    (List.for_all
       (fun (a, b, dist) ->
         r.Sms.start.(b) >= r.Sms.start.(a) + p.Sms.lat.(a) - (r.Sms.ii * dist))
       p.Sms.deps)

let test_schedule_modulo_resources () =
  (* 4 loads, 2 ports, no deps: II 2, and no modulo slot may host > 2 *)
  let p =
    simple_problem [ 2; 2; 2; 2 ] [ u ~r:1 (); u ~r:1 (); u ~r:1 (); u ~r:1 () ]
  in
  let limits = { Sms.read_ports = 2; write_ports = 2; dsp_slots = max_int } in
  let r = Sms.schedule p limits in
  check Alcotest.int "ii 2" 2 r.Sms.ii;
  let slot_counts = Array.make r.Sms.ii 0 in
  Array.iter
    (fun s -> slot_counts.(s mod r.Sms.ii) <- slot_counts.(s mod r.Sms.ii) + 1)
    r.Sms.start;
  Array.iter (fun c -> check Alcotest.bool "slot within ports" true (c <= 2)) slot_counts

let test_schedule_empty () =
  let r = Sms.schedule (simple_problem [] []) Sms.unlimited in
  check Alcotest.int "empty ii" 1 r.Sms.ii;
  check Alcotest.int "empty depth" 0 r.Sms.depth

let test_schedule_figure3 () =
  (* The paper's Figure 3: inter work-item dependency yielding II = 2
     with pipeline depth 6. Modeled as: load(2) -> add(3) -> store(1)
     with a distance-2 recurrence store -> load. *)
  let p =
    simple_problem
      ~deps:[ (0, 1, 0); (1, 2, 0); (2, 0, 2) ]
      [ 2; 3; 1 ]
      [ u ~r:1 (); u (); u ~w:1 () ]
  in
  let r = Sms.schedule p Sms.unlimited in
  check Alcotest.int "II = ceil(6/2) = 3" 3 r.Sms.ii;
  check Alcotest.int "depth 6" 6 r.Sms.depth

(* qcheck: for random DAG problems the schedule always verifies *)
let prop_sms_valid =
  QCheck.Test.make ~name:"modulo schedule satisfies every constraint" ~count:200
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 0 12) (triple small_nat small_nat (int_range 0 2))))
    (fun (n, rawdeps) ->
      let lats = Array.init n (fun i -> 1 + (i mod 5)) in
      let usages =
        Array.init n (fun i -> { Sms.reads = i mod 2; writes = 0; dsps = 0 })
      in
      let deps =
        List.filter_map
          (fun (a, b, d) ->
            let a = a mod n and b = b mod n in
            if a < b then Some (a, b, 0)
            else if b < a && d > 0 then Some (a, b, d) (* back edge with distance *)
            else None)
          rawdeps
      in
      let p = { Sms.lat = lats; usage = usages; deps } in
      let limits = { Sms.read_ports = 1; write_ports = 1; dsp_slots = max_int } in
      match Sms.schedule p limits with
      | r ->
          r.Sms.ii >= Sms.mii p limits
          && List.for_all
               (fun (a, b, dist) ->
                 r.Sms.start.(b) >= r.Sms.start.(a) + p.Sms.lat.(a) - (r.Sms.ii * dist))
               deps
      | exception Invalid_argument _ -> true (* zero-distance cycle in input *))

let suite =
  [
    Alcotest.test_case "list: chain latency" `Quick test_list_chain_latency;
    Alcotest.test_case "list: empty block" `Quick test_list_empty_block;
    Alcotest.test_case "list: parallel ops" `Quick test_list_parallel_ops;
    Alcotest.test_case "list: port serialization" `Quick test_list_port_serialization;
    Alcotest.test_case "list: dsp serialization" `Quick test_list_dsp_serialization;
    Alcotest.test_case "list: dependence order" `Quick test_list_respects_deps;
    Alcotest.test_case "list: impossible constraint" `Quick test_list_impossible_constraint;
    Alcotest.test_case "list: critical path" `Quick test_critical_path;
    Alcotest.test_case "list: zero-latency chaining" `Quick test_zero_latency_chains;
    Alcotest.test_case "sms: resource mii (ports)" `Quick test_res_mii;
    Alcotest.test_case "sms: resource mii (dsp)" `Quick test_res_mii_dsp;
    Alcotest.test_case "sms: recurrence mii" `Quick test_rec_mii;
    Alcotest.test_case "sms: recurrence distance 2" `Quick test_rec_mii_distance_2;
    Alcotest.test_case "sms: acyclic rec mii" `Quick test_rec_mii_acyclic;
    Alcotest.test_case "sms: mii combines" `Quick test_mii_combines;
    Alcotest.test_case "sms: achieves mii" `Quick test_schedule_achieves_mii;
    Alcotest.test_case "sms: respects dependences" `Quick test_schedule_respects_deps;
    Alcotest.test_case "sms: modulo reservation table" `Quick
      test_schedule_modulo_resources;
    Alcotest.test_case "sms: empty problem" `Quick test_schedule_empty;
    Alcotest.test_case "sms: figure 3 example" `Quick test_schedule_figure3;
    QCheck_alcotest.to_alcotest prop_sms_valid;
  ]
