(* Shared helpers for the test suites. *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  if nl = 0 then true
  else
    let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
    at 0

let virtex7 = Flexcl_device.Device.virtex7
let ku060 = Flexcl_device.Device.ku060

(* A moderate kernel exercising loops, local memory, barrier and floats. *)
let sample_kernel_src =
  {|
__kernel void sample(__global const float* a, __global const float* b,
                     __global float* c, int n) {
  __local float tile[256];
  int gid = get_global_id(0);
  int lid = get_local_id(0);
  tile[lid] = a[gid];
  barrier(CLK_LOCAL_MEM_FENCE);
  float sum = 0.0f;
  for (int k = 0; k < 8; k++) {
    sum += tile[lid] * b[gid] + (float)k;
  }
  c[gid] = sum;
}
|}

let sample_launch =
  let module L = Flexcl_ir.Launch in
  L.make ~global:(L.dim3 1024) ~local:(L.dim3 64)
    ~args:
      [
        ("a", L.Buffer { length = 1024; init = L.Random_floats 1 });
        ("b", L.Buffer { length = 1024; init = L.Random_floats 2 });
        ("c", L.Buffer { length = 1024; init = L.Zeros });
        ("n", L.Scalar (L.Int 1024L));
      ]

let sample_analysis () =
  Flexcl_core.Analysis.of_source sample_kernel_src sample_launch
