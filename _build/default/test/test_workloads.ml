(* Workload integration tests: every Rodinia and PolyBench kernel parses,
   type-checks, lowers, profiles, models and simulates; functional
   validation of representative kernels. *)

module W = Flexcl_workloads.Workload
module Rodinia = Flexcl_workloads.Rodinia
module Polybench = Flexcl_workloads.Polybench
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Sysrun = Flexcl_simrtl.Sysrun
module Launch = Flexcl_ir.Launch
module Interp = Flexcl_interp.Interp
open Flexcl_opencl

let check = Alcotest.check
let dev = Flexcl_device.Device.virtex7
let all = Rodinia.all @ Polybench.all

let test_counts () =
  check Alcotest.int "45 Rodinia kernels (Table 2)" 45 (List.length Rodinia.all);
  check Alcotest.int "15 PolyBench kernels" 15 (List.length Polybench.all)

let test_names_unique () =
  let names = List.map W.name all in
  check Alcotest.int "no duplicate names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_table2_roster () =
  (* benchmark -> kernel count must match Table 2 *)
  let expected =
    [
      ("backprop", 2); ("bfs", 2); ("b+tree", 2); ("cfd", 4); ("dwt2d", 4);
      ("gaussian", 2); ("hotspot", 1); ("hotspot3D", 1); ("hybridsort", 3);
      ("kmeans", 2); ("lavaMD", 1); ("leukocyte", 3); ("lud", 2); ("nn", 1);
      ("nw", 2); ("particlefilter", 4); ("pathfinder", 1); ("srad", 6);
      ("streamcluster", 2);
    ]
  in
  List.iter
    (fun (bench, n) ->
      let got =
        List.length (List.filter (fun w -> w.W.benchmark = bench) Rodinia.all)
      in
      check Alcotest.int bench n got)
    expected

let test_every_kernel_parses_and_checks () =
  List.iter
    (fun w ->
      let k = W.parse w in
      ignore (Sema.analyze k);
      (* every argument matches a parameter *)
      List.iter
        (fun (name, _) ->
          check Alcotest.bool
            (W.name w ^ ": arg " ^ name ^ " has a parameter")
            true
            (List.exists (fun p -> p.Ast.p_name = name) k.Ast.k_params))
        w.W.launch.Launch.args)
    all

let test_every_kernel_profiles () =
  (* full analysis incl. dynamic profiling (2 sampled work-groups) *)
  List.iter
    (fun w ->
      let a = Analysis.analyze (W.parse w) w.W.launch in
      check Alcotest.bool
        (W.name w ^ " produced traces")
        true
        (Array.length a.Analysis.profile.Interp.wi_traces > 0))
    all

let test_every_kernel_models_and_simulates () =
  let cfg =
    { Config.wg_size = 32; n_pe = 2; n_cu = 1; wi_pipeline = true;
      comm_mode = Config.Pipeline_mode }
  in
  List.iter
    (fun w ->
      let a = Analysis.analyze (W.parse w) w.W.launch in
      let wg = min 32 (Launch.wg_size w.W.launch) in
      let cfg = { cfg with Config.wg_size = wg } in
      if Model.feasible dev a cfg then begin
        let m = Model.cycles dev a cfg in
        check Alcotest.bool (W.name w ^ " model positive") true (m > 0.0);
        let s = (Sysrun.run dev a cfg).Sysrun.cycles in
        check Alcotest.bool (W.name w ^ " sim positive") true (s > 0.0)
      end)
    all

let find name = List.find (fun w -> W.name w = name) all

(* functional checks of representative kernels through run_all *)
let run_all w =
  let k = W.parse w in
  Interp.run_all k (Sema.analyze k) w.W.launch

let test_functional_cfd_timestep () =
  let p = run_all (find "cfd/time_step") in
  let vars = List.assoc "vars" p.Interp.buffers in
  let old_vars = List.assoc "old_vars" p.Interp.buffers in
  let fluxes = List.assoc "fluxes" p.Interp.buffers in
  let f = function Interp.F x -> x | Interp.I i -> Int64.to_float i in
  for i = 0 to 1023 do
    check (Alcotest.float 1e-5) "vars = old + 0.2 flux"
      (f old_vars.(i) +. (0.2 *. f fluxes.(i)))
      (f vars.(i))
  done

let test_functional_kmeans_swap () =
  let p = run_all (find "kmeans/swap") in
  let feature = List.assoc "feature" p.Interp.buffers in
  let swapped = List.assoc "feature_swap" p.Interp.buffers in
  let f = function Interp.F x -> x | Interp.I i -> Int64.to_float i in
  (* transposition: swapped[i * npoints + g] = feature[g * nfeatures + i] *)
  for g = 0 to 20 do
    for i = 0 to 7 do
      check (Alcotest.float 1e-6) "transposed"
        (f feature.((g * 8) + i))
        (f swapped.((i * 1024) + g))
    done
  done

let test_functional_hybridsort_count () =
  let p = run_all (find "hybridsort/count") in
  let histo = List.assoc "histo" p.Interp.buffers in
  let total =
    Array.fold_left
      (fun acc v -> acc + Int64.to_int (match v with Interp.I i -> i | Interp.F f -> Int64.of_float f))
      0 histo
  in
  check Alcotest.int "histogram counts every element" 1024 total

let test_functional_pathfinder () =
  let p = run_all (find "pathfinder/dynproc") in
  let src = List.assoc "src" p.Interp.buffers in
  let wall = List.assoc "wall" p.Interp.buffers in
  let dst = List.assoc "dst" p.Interp.buffers in
  let i v = Int64.to_int (match v with Interp.I x -> x | Interp.F f -> Int64.of_float f) in
  (* spot-check an interior element *)
  let tid = 100 in
  let m = min (i src.(tid)) (min (i src.(tid - 1)) (i src.(tid + 1))) in
  check Alcotest.int "min of neighbours plus wall"
    (m + i wall.((3 * 1024) + tid))
    (i dst.(tid))

let test_functional_nn () =
  let p = run_all (find "nn/nn") in
  let loc = List.assoc "locations" p.Interp.buffers in
  let d = List.assoc "distances" p.Interp.buffers in
  let f = function Interp.F x -> x | Interp.I i -> Int64.to_float i in
  let g = 17 in
  let dx = 0.5 -. f loc.(g * 2) and dy = 0.5 -. f loc.((g * 2) + 1) in
  check (Alcotest.float 1e-5) "euclidean distance"
    (sqrt ((dx *. dx) +. (dy *. dy)))
    (f d.(g))

let test_functional_gemm () =
  let p = run_all (find "gemm/gemm") in
  let f = function Interp.F x -> x | Interp.I i -> Int64.to_float i in
  let a = List.assoc "a" p.Interp.buffers in
  let b = List.assoc "b" p.Interp.buffers in
  let c = List.assoc "c" p.Interp.buffers in
  (* recompute c[1][2]; c was overwritten, so recompute beta * c0 needs
     the original value: use the generator stream instead. The original
     c is Random_floats 503; regenerate it. *)
  let rng = Flexcl_util.Prng.create 503 in
  let c0 = Array.init 1024 (fun _ -> Flexcl_util.Prng.float rng 1.0) in
  let i = 1 and j = 2 in
  let acc = ref 0.0 in
  for k = 0 to 31 do
    acc := !acc +. (f a.((i * 32) + k) *. f b.((k * 32) + j))
  done;
  check (Alcotest.float 1e-4) "gemm element"
    ((1.2 *. c0.((i * 32) + j)) +. (1.5 *. !acc))
    (f c.((i * 32) + j))

let test_functional_lud_diagonal_stable () =
  (* LU factorization of the diagonal block: deterministic and finite *)
  let p = run_all (find "lud/diagonal") in
  let m = List.assoc "m" p.Interp.buffers in
  Array.iter
    (fun v ->
      let f = match v with Interp.F x -> x | Interp.I i -> Int64.to_float i in
      check Alcotest.bool "finite" true (Float.is_finite f))
    m

let test_barrier_kernels_use_top_level_barriers () =
  (* phase-exact barrier handling requires top-level barriers; all our
     barrier kernels are written that way *)
  List.iter
    (fun w ->
      let k = W.parse w in
      let info = Sema.analyze k in
      if info.Sema.uses_barrier then begin
        let nested = ref false in
        let rec check_nested stmts =
          List.iter
            (fun (s : Ast.stmt) ->
              match s with
              | Ast.Barrier -> nested := true
              | Ast.If (_, t, e) ->
                  check_nested t;
                  check_nested e
              | Ast.For (_, b, _) | Ast.While (_, b, _) -> check_nested b
              | _ -> ())
            stmts
        in
        List.iter
          (fun (s : Ast.stmt) ->
            match s with
            | Ast.If (_, t, e) ->
                check_nested t;
                check_nested e
            | Ast.For (_, b, _) | Ast.While (_, b, _) -> check_nested b
            | _ -> ())
          k.Ast.k_body;
        check Alcotest.bool (W.name w ^ ": barriers top-level") false !nested
      end)
    all

let test_suite_diversity () =
  (* the suite must exercise local memory, barriers, transcendentals,
     data-dependent gathers and recurrences somewhere *)
  let analyses = List.map (fun w -> (w, Sema.analyze (W.parse w))) all in
  check Alcotest.bool "some kernel uses barrier" true
    (List.exists (fun (_, i) -> i.Sema.uses_barrier) analyses);
  check Alcotest.bool "some kernel uses local arrays" true
    (List.exists (fun (_, i) -> i.Sema.local_arrays <> []) analyses);
  check Alcotest.bool "some kernel has loops" true
    (List.exists (fun (_, i) -> i.Sema.n_loops > 0) analyses);
  check Alcotest.bool "some kernel has nesting depth 2" true
    (List.exists (fun (_, i) -> i.Sema.max_loop_depth >= 2) analyses)

let suite =
  [
    Alcotest.test_case "roster: suite sizes" `Quick test_counts;
    Alcotest.test_case "roster: unique names" `Quick test_names_unique;
    Alcotest.test_case "roster: Table 2 benchmarks" `Quick test_table2_roster;
    Alcotest.test_case "all: parse and type-check" `Quick
      test_every_kernel_parses_and_checks;
    Alcotest.test_case "all: profile" `Slow test_every_kernel_profiles;
    Alcotest.test_case "all: model and simulate" `Slow
      test_every_kernel_models_and_simulates;
    Alcotest.test_case "functional: cfd/time_step" `Quick test_functional_cfd_timestep;
    Alcotest.test_case "functional: kmeans/swap" `Quick test_functional_kmeans_swap;
    Alcotest.test_case "functional: hybridsort/count" `Quick
      test_functional_hybridsort_count;
    Alcotest.test_case "functional: pathfinder" `Quick test_functional_pathfinder;
    Alcotest.test_case "functional: nn" `Quick test_functional_nn;
    Alcotest.test_case "functional: gemm" `Quick test_functional_gemm;
    Alcotest.test_case "functional: lud stability" `Quick
      test_functional_lud_diagonal_stable;
    Alcotest.test_case "barriers: top-level only" `Quick
      test_barrier_kernels_use_top_level_barriers;
    Alcotest.test_case "suite diversity" `Quick test_suite_diversity;
  ]
