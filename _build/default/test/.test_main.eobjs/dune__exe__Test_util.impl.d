test/test_util.ml: Alcotest Array Flexcl_util Fun Gen List QCheck QCheck_alcotest Thelpers
