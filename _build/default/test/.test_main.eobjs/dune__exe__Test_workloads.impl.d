test/test_workloads.ml: Alcotest Array Ast Flexcl_core Flexcl_device Flexcl_interp Flexcl_ir Flexcl_opencl Flexcl_simrtl Flexcl_util Flexcl_workloads Float Int64 List Sema
