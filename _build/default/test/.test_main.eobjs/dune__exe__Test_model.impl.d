test/test_model.ml: Alcotest Array Flexcl_core Flexcl_device Flexcl_dse Flexcl_ir Flexcl_simrtl Flexcl_util Float Lazy List Option Printf Thelpers
