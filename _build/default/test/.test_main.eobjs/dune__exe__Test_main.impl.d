test/test_main.ml: Alcotest Test_dram Test_interp Test_ir Test_model Test_opencl Test_sched Test_util Test_workloads
