test/test_opencl.ml: Alcotest Ast Builtins Flexcl_opencl Gen Lexer List Parser Printf QCheck QCheck_alcotest Sema String Token Types
