test/test_dram.ml: Alcotest Array Flexcl_dram Flexcl_interp Gen List Printf QCheck QCheck_alcotest
