test/thelpers.ml: Flexcl_core Flexcl_device Flexcl_ir String
