test/test_ir.ml: Alcotest Ast Builtins Cdfg Depend Dfg Flexcl_core Flexcl_device Flexcl_interp Flexcl_ir Flexcl_opencl Format Launch List Lower Opcode Option Parser Printf QCheck QCheck_alcotest Sema
