test/test_sched.ml: Alcotest Array Dfg Flexcl_ir Flexcl_sched Flexcl_util Gen List Opcode QCheck QCheck_alcotest
