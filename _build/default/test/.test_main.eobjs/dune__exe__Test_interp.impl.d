test/test_interp.ml: Alcotest Array Flexcl_interp Flexcl_ir Flexcl_opencl Fun Int64 Launch List Parser Printf QCheck QCheck_alcotest Sema
