(* Cross-platform comparison: the same kernels and design points on the
   Virtex-7 board and on the Kintex UltraScale KU060.

     dune exec examples/cross_platform.exe

   FlexCL's platform descriptions make "what would this design do on the
   other board?" a seconds-scale question (the paper's robustness study,
   plus the heterogeneous-comparison use-case from the introduction). *)

module W = Flexcl_workloads.Workload
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Table = Flexcl_util.Table

let () =
  let kernels =
    [ "hotspot/hotspot"; "pathfinder/dynproc"; "srad/srad"; "gemm/gemm" ]
  in
  let cfg =
    { Config.wg_size = 64; n_pe = 2; n_cu = 2; wi_pipeline = true;
      comm_mode = Config.Pipeline_mode }
  in
  let t =
    Table.create
      ~headers:
        [ "kernel"; "Virtex-7 (us)"; "KU060 (us)"; "KU060 speedup"; "why" ]
  in
  List.iter
    (fun name ->
      let w =
        List.find
          (fun w -> W.name w = name)
          (Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all)
      in
      let a = Analysis.analyze (W.parse w) w.W.launch in
      let b7 = Model.estimate Device.virtex7 a cfg in
      let bk = Model.estimate Device.ku060 a cfg in
      let why =
        if bk.Model.depth_pe < b7.Model.depth_pe then "shallower FP pipelines"
        else if bk.Model.l_mem_wi < b7.Model.l_mem_wi then "faster DRAM column access"
        else "comparable"
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" (b7.Model.seconds *. 1e6);
          Printf.sprintf "%.2f" (bk.Model.seconds *. 1e6);
          Printf.sprintf "%.2fx" (b7.Model.cycles /. bk.Model.cycles);
          why;
        ])
    kernels;
  print_string (Table.render t)
