examples/quickstart.mli:
