examples/explore_hotspot.mli:
