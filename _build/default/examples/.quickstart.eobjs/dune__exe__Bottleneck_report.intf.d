examples/bottleneck_report.mli:
