examples/explore_hotspot.ml: Flexcl_core Flexcl_device Flexcl_dse Flexcl_ir Flexcl_simrtl Flexcl_util Flexcl_workloads List Printf Unix
