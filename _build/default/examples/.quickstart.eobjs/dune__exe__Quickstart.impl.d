examples/quickstart.ml: Flexcl_core Flexcl_device Flexcl_ir Flexcl_simrtl Float Printf
