examples/cross_platform.ml: Flexcl_core Flexcl_device Flexcl_util Flexcl_workloads List Printf
