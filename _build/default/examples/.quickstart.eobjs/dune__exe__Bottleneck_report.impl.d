examples/bottleneck_report.ml: Flexcl_core Flexcl_device Flexcl_ir Flexcl_util Flexcl_workloads List Printf
