(* Design-space exploration of the Rodinia hotspot stencil.

     dune exec examples/explore_hotspot.exe

   Explores work-group size x pipelining x PE x CU x communication mode
   with the analytical model (seconds), shows the Pareto head of the
   space, compares against the greedy one-knob-at-a-time heuristic of
   the HPCA'16 framework, and validates the winner on the cycle-level
   simulator. *)

module W = Flexcl_workloads.Workload
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module Sysrun = Flexcl_simrtl.Sysrun
module Launch = Flexcl_ir.Launch
module Table = Flexcl_util.Table

let dev = Device.virtex7

let () =
  let w =
    List.find (fun w -> W.name w = "hotspot/hotspot") Flexcl_workloads.Rodinia.all
  in
  let analysis = Analysis.analyze (W.parse w) w.W.launch in
  let space = Space.default ~total_work_items:(Launch.n_work_items w.W.launch) in
  Printf.printf "exploring %d feasible design points of %s with FlexCL...\n\n"
    (List.length (Space.feasible_points dev analysis space))
    (W.name w);
  let t0 = Unix.gettimeofday () in
  let ranked = Explore.exhaustive dev analysis space (Explore.model_oracle dev) in
  let dt = Unix.gettimeofday () -. t0 in

  let t = Table.create ~headers:[ "rank"; "configuration"; "estimated cycles" ] in
  List.iteri
    (fun i (e : Explore.evaluated) ->
      if i < 8 then
        Table.add_row t
          [ string_of_int (i + 1); Config.to_string e.Explore.config;
            Printf.sprintf "%.0f" e.Explore.cycles ])
    ranked;
  print_string (Table.render t);
  Printf.printf "\nexploration took %.2f s (the RTL flow would need days)\n\n" dt;

  let best = List.hd ranked in
  let greedy = Heuristic.search dev analysis space (Explore.model_oracle dev) in
  Printf.printf "FlexCL exhaustive pick : %s (%.0f cycles)\n"
    (Config.to_string best.Explore.config) best.Explore.cycles;
  Printf.printf "greedy heuristic pick  : %s (%.0f cycles, %.1fx worse)\n"
    (Config.to_string greedy.Explore.config) greedy.Explore.cycles
    (greedy.Explore.cycles /. best.Explore.cycles);

  (* check the winner against ground truth and the unoptimized baseline *)
  let truth c =
    (Sysrun.run dev (Explore.analysis_for analysis c.Config.wg_size) c)
      .Sysrun.cycles
  in
  let t_best = truth best.Explore.config in
  let t_default = truth Config.default in
  Printf.printf "\nsimulator check        : picked design %.0f cycles,\n" t_best;
  Printf.printf "unoptimized baseline   : %.0f cycles -> %.0fx speedup\n" t_default
    (t_default /. t_best)
