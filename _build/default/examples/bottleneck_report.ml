(* Bottleneck analysis: where does each kernel's time go, and what should
   be restructured?

     dune exec examples/bottleneck_report.exe

   Runs the model over a few representative kernels in a fixed design
   point and reports the dominant limiter with a restructuring hint —
   the use-case the paper's introduction motivates ("help designers
   identify the performance bottlenecks ... give code restructuring
   hints"). *)

module W = Flexcl_workloads.Workload
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Table = Flexcl_util.Table

let dev = Device.virtex7

let hint = function
  | "global memory" ->
      "restructure for coalescing (unit-stride per work-item pipeline) or stage data in __local"
  | "recurrence" -> "break the loop-carried/inter-work-item dependence (tree reduction, privatization)"
  | "local-memory ports" -> "bank the __local arrays or reduce accesses per iteration"
  | "DSP" -> "share multipliers (lower unroll) or move constants out of the loop"
  | "compute depth" -> "enable work-item pipelining; deep pipelines amortize across items"
  | "scheduling overhead" -> "increase work per work-group (larger wg_size or more work per item)"
  | other -> other

let () =
  let kernels =
    [ "backprop/layer"; "bfs/bfs_1"; "hotspot/hotspot"; "kmeans/center";
      "srad/srad"; "gemm/gemm"; "mvt/mvt" ]
  in
  let cfg =
    { Config.wg_size = 64; n_pe = 2; n_cu = 2; wi_pipeline = true;
      comm_mode = Config.Pipeline_mode }
  in
  let t =
    Table.create
      ~headers:[ "kernel"; "cycles"; "II"; "depth"; "mem/WI"; "bottleneck" ]
  in
  let hints = ref [] in
  List.iter
    (fun name ->
      let w =
        List.find
          (fun w -> W.name w = name)
          (Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all)
      in
      let a = Analysis.analyze (W.parse w) w.W.launch in
      let wg = min 64 (Flexcl_ir.Launch.n_work_items w.W.launch) in
      let b = Model.estimate dev a { cfg with Config.wg_size = wg } in
      let bn = Model.bottleneck b in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f" b.Model.cycles;
          string_of_int b.Model.ii_wi;
          string_of_int b.Model.depth_pe;
          Printf.sprintf "%.2f" b.Model.l_mem_wi;
          bn;
        ];
      if not (List.mem_assoc bn !hints) then hints := (bn, hint bn) :: !hints)
    kernels;
  print_string (Table.render t);
  print_endline "\nrestructuring hints:";
  List.iter (fun (bn, h) -> Printf.printf "  %-20s -> %s\n" bn h) (List.rev !hints)
