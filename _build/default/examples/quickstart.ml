(* Quickstart: estimate the performance of an OpenCL kernel on an FPGA.

     dune exec examples/quickstart.exe

   Takes a SAXPY-like kernel from source to a cycle estimate in four
   steps: describe the launch, analyze the kernel (static + dynamic
   profiling), pick a design point, and ask the model. *)

module L = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device

let kernel_source =
  {|
__kernel void saxpy(__global const float* x, __global float* y,
                    float alpha, int n) {
  int gid = get_global_id(0);
  if (gid < n) {
    y[gid] = alpha * x[gid] + y[gid];
  }
}
|}

let () =
  (* 1. the launch: a 4096-item NDRange in work-groups of 64, with
        deterministic buffer contents for the profiling run *)
  let launch =
    L.make ~global:(L.dim3 4096) ~local:(L.dim3 64)
      ~args:
        [
          ("x", L.Buffer { length = 4096; init = L.Random_floats 1 });
          ("y", L.Buffer { length = 4096; init = L.Random_floats 2 });
          ("alpha", L.Scalar (L.Float 2.0));
          ("n", L.Scalar (L.Int 4096L));
        ]
  in

  (* 2. kernel analysis: parse, type-check, lower to the CDFG and profile
        a couple of work-groups (trip counts + memory trace) *)
  let analysis = Analysis.of_source kernel_source launch in

  (* 3. a design point: 4 PEs per CU, 2 CUs, work-item pipelining,
        pipelined global-memory communication *)
  let config =
    { Config.wg_size = 64; n_pe = 4; n_cu = 2; wi_pipeline = true;
      comm_mode = Config.Pipeline_mode }
  in

  (* 4. the estimate *)
  let b = Model.estimate Device.virtex7 analysis config in
  Printf.printf "kernel            : saxpy on %s @ %d MHz\n"
    Device.virtex7.Device.name Device.virtex7.Device.clock_mhz;
  Printf.printf "design point      : %s\n" (Config.to_string config);
  Printf.printf "II (work-item)    : %d cycles  (RecMII %d, ResMII %d)\n"
    b.Model.ii_wi b.Model.rec_mii b.Model.res_mii;
  Printf.printf "pipeline depth    : %d cycles\n" b.Model.depth_pe;
  Printf.printf "memory / work-item: %.2f cycles\n" b.Model.l_mem_wi;
  Printf.printf "effective PE / CU : %d PEs, %d CUs\n" b.Model.n_pe_eff
    b.Model.n_cu_eff;
  Printf.printf "estimated total   : %.0f cycles = %.2f us\n" b.Model.cycles
    (b.Model.seconds *. 1e6);
  Printf.printf "bottleneck        : %s\n" (Model.bottleneck b);

  (* the ground-truth simulator agrees within the usual model error *)
  let s = Flexcl_simrtl.Sysrun.run Device.virtex7 analysis config in
  Printf.printf "simulator (truth) : %.0f cycles (model error %.1f%%)\n"
    s.Flexcl_simrtl.Sysrun.cycles
    (100.0
    *. Float.abs (b.Model.cycles -. s.Flexcl_simrtl.Sysrun.cycles)
    /. s.Flexcl_simrtl.Sysrun.cycles)
