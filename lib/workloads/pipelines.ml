(* Multi-kernel pipeline workloads: kernel graphs connected by [pipe]
   channels, in the style of the streaming OpenCL designs vendors map
   onto on-chip FIFOs. Stage kernels share the single-kernel subset
   (same loops, memory patterns) plus the pipe builtins; channels are
   auto-wired by pipe parameter name (the writer of pipe [p] feeds the
   one reader of [p]). Problem sizes keep per-stage profiling fast. *)

module L = Flexcl_ir.Launch
module Gdef = Flexcl_graph.Gdef

let fbuf length seed = L.Buffer { length; init = L.Random_floats seed }
let zbuf length = L.Buffer { length; init = L.Zeros }
let int_ n = L.Scalar (L.Int (Int64.of_int n))

let launch1d ?(wg = 64) n args =
  L.make ~global:(L.dim3 n) ~local:(L.dim3 wg) ~args

type t = {
  benchmark : string;  (* e.g. ["stream"]. *)
  name : string;       (* e.g. ["stream/produce-filter-consume"]. *)
  stages : (string * string * L.t) list;
  default_depth : int;
}

(* ------------------------------------------------------------------ *)
(* stream/produce-filter-consume: a three-stage streaming chain. The
   producer scales a global buffer into the channel, the filter applies
   a small iterative kernel per packet (compute-weighted middle stage),
   the consumer commits packets back to DRAM. *)

let stream_producer =
  {|
__kernel void produce(__global const float* src, pipe float ab, int n) {
  int gid = get_global_id(0);
  float v = src[gid] * 2.0f + 1.0f;
  write_pipe(ab, v);
}
|}

let stream_filter =
  {|
__kernel void filter(pipe float ab, pipe float bc) {
  float v = read_pipe(ab);
  float acc = v;
  for (int k = 0; k < 8; k++) {
    acc = acc * 0.5f + v;
  }
  write_pipe(bc, acc);
}
|}

let stream_consumer =
  {|
__kernel void consume(pipe float bc, __global float* dst) {
  int gid = get_global_id(0);
  float v = read_pipe(bc);
  dst[gid] = v;
}
|}

let stream_n = 512

let produce_filter_consume =
  {
    benchmark = "stream";
    name = "stream/produce-filter-consume";
    stages =
      [
        ( "produce",
          stream_producer,
          launch1d stream_n
            [ ("src", fbuf stream_n 21); ("n", int_ stream_n) ] );
        ("filter", stream_filter, launch1d stream_n []);
        ( "consume",
          stream_consumer,
          launch1d stream_n [ ("dst", zbuf stream_n) ] );
      ];
    default_depth = 16;
  }

(* ------------------------------------------------------------------ *)
(* stencil/blur-sharpen: a two-stage stencil. The first stage streams a
   3-point blur of a global buffer into the channel; the second reads
   the smoothed stream and sharpens against the original input. *)

let stencil_blur =
  {|
__kernel void blur(__global const float* a, pipe float smooth, int n) {
  int gid = get_global_id(0);
  int im = gid > 0 ? gid - 1 : 0;
  int ip = gid < n - 1 ? gid + 1 : n - 1;
  float v = (a[im] + a[gid] + a[ip]) * 0.3333333f;
  write_pipe(smooth, v);
}
|}

let stencil_sharpen =
  {|
__kernel void sharpen(pipe float smooth, __global const float* a,
                      __global float* out, float amount) {
  int gid = get_global_id(0);
  float s = read_pipe(smooth);
  out[gid] = a[gid] + amount * (a[gid] - s);
}
|}

let stencil_n = 512

let blur_sharpen =
  {
    benchmark = "stencil";
    name = "stencil/blur-sharpen";
    stages =
      [
        ( "blur",
          stencil_blur,
          launch1d stencil_n [ ("a", fbuf stencil_n 31); ("n", int_ stencil_n) ]
        );
        ( "sharpen",
          stencil_sharpen,
          launch1d stencil_n
            [
              ("a", fbuf stencil_n 31);
              ("out", zbuf stencil_n);
              ("amount", L.Scalar (L.Float 0.5));
            ] );
      ];
    default_depth = 8;
  }

let all = [ produce_filter_consume; blur_sharpen ]

let find name = List.find_opt (fun p -> p.name = name) all

let graph (p : t) =
  match Gdef.of_program ~name:p.name ~depth:p.default_depth p.stages with
  | Ok g -> g
  | Error ds ->
      invalid_arg
        (Printf.sprintf "Pipelines.graph: workload %S does not wire: %s"
           p.name
           (String.concat "; "
              (List.map (fun (d : Flexcl_util.Diag.t) -> d.Flexcl_util.Diag.message) ds)))
