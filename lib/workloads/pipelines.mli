(** Multi-kernel pipeline workloads: kernel graphs connected by [pipe]
    channels. Each stage is a single kernel in the FlexCL OpenCL subset
    with its own launch; channels are auto-wired by pipe parameter name
    ({!Flexcl_graph.Gdef.of_program}). *)

type t = {
  benchmark : string;  (** e.g. ["stream"]. *)
  name : string;       (** ["benchmark/graph"], e.g.
                           ["stream/produce-filter-consume"]. *)
  stages : (string * string * Flexcl_ir.Launch.t) list;
      (** [(stage name, single-kernel source, launch)]. *)
  default_depth : int;  (** FIFO depth every channel starts with. *)
}

val produce_filter_consume : t
(** Three-stage streaming chain: scale from DRAM -> iterative per-packet
    filter -> commit to DRAM. *)

val blur_sharpen : t
(** Two-stage stencil: 3-point blur streamed into an unsharp-mask
    second pass. *)

val all : t list

val find : string -> t option
(** Look up by {!field:name}. *)

val graph : t -> Flexcl_graph.Gdef.t
(** The wired kernel graph (raises on malformed bundled workloads —
    covered by tests). *)
