open Flexcl_opencl

(* ------------------------------------------------------------------ *)
(* Static expression evaluation against a launch configuration *)

let wi_size_value (launch : Launch.t) (fn : Builtins.wi_fn) dim =
  let pick (d : Launch.dim3) = match dim with 0 -> d.Launch.x | 1 -> d.y | 2 -> d.z | _ -> 1 in
  match fn with
  | Builtins.Get_global_size -> Some (pick launch.Launch.global)
  | Builtins.Get_local_size -> Some (pick launch.Launch.local)
  | Builtins.Get_num_groups ->
      Some (pick launch.Launch.global / pick launch.Launch.local)
  | Builtins.Get_global_id | Builtins.Get_local_id | Builtins.Get_group_id ->
      None

let eval_static launch ~env expr =
  let ( let* ) = Option.bind in
  let rec go (e : Ast.expr) : int64 option =
    match e with
    | Ast.Int_lit i -> Some i
    | Ast.Float_lit _ -> None
    | Ast.Var v -> (
        match List.assoc_opt v env with
        | Some value -> Some value
        | None -> List.assoc_opt v (Launch.scalar_env launch))
    | Ast.Cast (_, a) -> go a
    | Ast.Unop (Ast.Neg, a) ->
        let* v = go a in
        Some (Int64.neg v)
    | Ast.Unop (Ast.Bnot, a) ->
        let* v = go a in
        Some (Int64.lognot v)
    | Ast.Unop (Ast.Lnot, a) ->
        let* v = go a in
        Some (if v = 0L then 1L else 0L)
    | Ast.Ternary (c, a, b) ->
        let* v = go c in
        if v <> 0L then go a else go b
    | Ast.Call (f, [ d ]) -> (
        match (Builtins.find f, go d) with
        | Some (Builtins.Wi fn), Some dim ->
            Option.map Int64.of_int (wi_size_value launch fn (Int64.to_int dim))
        | _, _ -> None)
    | Ast.Call _ | Ast.Index _ -> None
    | Ast.Binop (op, a, b) -> (
        let* x = go a in
        let* y = go b in
        let bool_ c = Some (if c then 1L else 0L) in
        match op with
        | Ast.Add -> Some (Int64.add x y)
        | Ast.Sub -> Some (Int64.sub x y)
        | Ast.Mul -> Some (Int64.mul x y)
        | Ast.Div -> if y = 0L then None else Some (Int64.div x y)
        | Ast.Mod -> if y = 0L then None else Some (Int64.rem x y)
        | Ast.Band -> Some (Int64.logand x y)
        | Ast.Bor -> Some (Int64.logor x y)
        | Ast.Bxor -> Some (Int64.logxor x y)
        | Ast.Shl -> Some (Int64.shift_left x (Int64.to_int y))
        | Ast.Shr -> Some (Int64.shift_right x (Int64.to_int y))
        | Ast.Land -> bool_ (x <> 0L && y <> 0L)
        | Ast.Lor -> bool_ (x <> 0L || y <> 0L)
        | Ast.Eq -> bool_ (x = y)
        | Ast.Ne -> bool_ (x <> y)
        | Ast.Lt -> bool_ (x < y)
        | Ast.Le -> bool_ (x <= y)
        | Ast.Gt -> bool_ (x > y)
        | Ast.Ge -> bool_ (x >= y))
  in
  go expr

let static_trip launch (hdr : Ast.for_header) =
  let ( let* ) = Option.bind in
  let* init = hdr.Ast.init in
  let* var, init_expr =
    match init with
    | Ast.Decl (_, v, Some e) | Ast.Assign (Ast.Lvar v, e) -> Some (v, e)
    | _ -> None
  in
  let* cond = hdr.Ast.cond in
  let* op, bound_expr =
    match cond with
    | Ast.Binop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Ne) as op), Ast.Var v, b)
      when v = var ->
        Some (op, b)
    | Ast.Binop (op, b, Ast.Var v) when v = var -> (
        (* mirror: b > i  means  i < b *)
        match op with
        | Ast.Lt -> Some (Ast.Gt, b)
        | Ast.Le -> Some (Ast.Ge, b)
        | Ast.Gt -> Some (Ast.Lt, b)
        | Ast.Ge -> Some (Ast.Le, b)
        | Ast.Ne -> Some (Ast.Ne, b)
        | _ -> None)
    | _ -> None
  in
  let* step = hdr.Ast.step in
  let* stride =
    match step with
    | Ast.Assign (Ast.Lvar v, Ast.Binop (Ast.Add, Ast.Var v', e)) when v = var && v' = var
      ->
        eval_static launch ~env:[] e
    | Ast.Assign (Ast.Lvar v, Ast.Binop (Ast.Add, e, Ast.Var v')) when v = var && v' = var
      ->
        eval_static launch ~env:[] e
    | Ast.Assign (Ast.Lvar v, Ast.Binop (Ast.Sub, Ast.Var v', e)) when v = var && v' = var
      ->
        Option.map Int64.neg (eval_static launch ~env:[] e)
    | _ -> None
  in
  let* i0 = eval_static launch ~env:[] init_expr in
  let* b = eval_static launch ~env:[] bound_expr in
  if stride = 0L then None
  else
    let ceil_div num den =
      (* ceiling for positive den and any num *)
      if num <= 0L then 0L
      else Int64.div (Int64.add num (Int64.sub den 1L)) den
    in
    let trip =
      match op with
      | Ast.Lt when stride > 0L -> Some (ceil_div (Int64.sub b i0) stride)
      | Ast.Le when stride > 0L -> Some (ceil_div (Int64.add (Int64.sub b i0) 1L) stride)
      | Ast.Gt when stride < 0L -> Some (ceil_div (Int64.sub i0 b) (Int64.neg stride))
      | Ast.Ge when stride < 0L ->
          Some (ceil_div (Int64.add (Int64.sub i0 b) 1L) (Int64.neg stride))
      | Ast.Ne ->
          let diff = Int64.sub b i0 in
          if Int64.rem diff stride = 0L && Int64.div diff stride >= 0L then
            Some (Int64.div diff stride)
          else None
      | _ -> None
    in
    Option.map Int64.to_int trip

(* ------------------------------------------------------------------ *)
(* Expression lowering *)

type block_state = {
  b : Dfg.builder;
  env : (string, int) Hashtbl.t;  (* scalar var -> producer node *)
  memord : (string, int option * int list) Hashtbl.t;
      (* array -> (last store, loads since) *)
}

let fresh_block () =
  { b = Dfg.builder (); env = Hashtbl.create 16; memord = Hashtbl.create 8 }

type ctx = {
  info : Sema.info;
  launch : Launch.t;
  counter : int ref;
  defs : (string, Ast.expr option) Hashtbl.t;
      (* single-assignment scalar definitions, kernel-wide; [None] marks
         variables assigned more than once (loop counters, accumulators),
         which stay symbolic so the dependence analysis can treat them as
         carried variables. Used to inline index expressions. *)
}

let expr_size e = Ast.fold_expr (fun n _ -> n + 1) 0 e

let rec subst_defs ctx (e : Ast.expr) : Ast.expr =
  match e with
  | Ast.Var v -> (
      match Hashtbl.find_opt ctx.defs v with
      | Some (Some d) -> d
      | Some None | None -> e)
  | Ast.Int_lit _ | Ast.Float_lit _ -> e
  | Ast.Binop (op, a, b) -> Ast.Binop (op, subst_defs ctx a, subst_defs ctx b)
  | Ast.Unop (op, a) -> Ast.Unop (op, subst_defs ctx a)
  | Ast.Cast (t, a) -> Ast.Cast (t, subst_defs ctx a)
  | Ast.Ternary (c, a, b) ->
      Ast.Ternary (subst_defs ctx c, subst_defs ctx a, subst_defs ctx b)
  | Ast.Call (f, args) -> Ast.Call (f, List.map (subst_defs ctx) args)
  | Ast.Index (b, idxs) ->
      Ast.Index (subst_defs ctx b, List.map (subst_defs ctx) idxs)

let record_def ctx v e =
  if Hashtbl.mem ctx.defs v then Hashtbl.replace ctx.defs v None
  else
    let inlined = subst_defs ctx e in
    if expr_size inlined <= 200 then Hashtbl.replace ctx.defs v (Some inlined)
    else Hashtbl.replace ctx.defs v None

let is_float_type = function
  | Types.Scalar s -> Types.is_float s
  | Types.Vector (s, _) -> Types.is_float s
  | Types.Void | Types.Ptr _ | Types.Array _ | Types.Pipe _ -> false

let type_of ctx e = Sema.type_of ctx.info e

let mem_space_of ctx arr =
  match Hashtbl.find_opt ctx.info.Sema.var_types arr with
  | Some t -> (
      match Types.addr_space_of t with
      | Some (Types.Global | Types.Constant) -> Opcode.Global_mem
      | Some Types.Local | Some Types.Private | None -> Opcode.Local_mem)
  | None -> Opcode.Local_mem

(* Linearize a multi-dimensional index using the declared array dims. *)
let linearize ctx arr idxs =
  match idxs with
  | [ i ] -> i
  | _ ->
      let rec inner_dims t n =
        if n = 0 then []
        else
          match t with
          | Types.Array (inner, _) | Types.Ptr (_, inner) -> (
              match inner with
              | Types.Array (_, d) -> d :: inner_dims inner (n - 1)
              | _ -> 1 :: inner_dims inner (n - 1))
          | _ -> 1 :: []
      in
      let ty =
        Option.value
          (Hashtbl.find_opt ctx.info.Sema.var_types arr)
          ~default:Types.Void
      in
      let dims = inner_dims ty (List.length idxs - 1) in
      let rec combine acc = function
        | [], _ -> acc
        | i :: rest, d :: ds ->
            combine
              (Ast.Binop
                 (Ast.Add, Ast.Binop (Ast.Mul, acc, Ast.Int_lit (Int64.of_int d)), i))
              (rest, ds)
        | i :: rest, [] -> combine (Ast.Binop (Ast.Add, acc, i)) (rest, [])
      in
      (match idxs with
      | first :: rest -> combine first (rest, dims)
      | [] -> Ast.Int_lit 0L)

let mem_state st arr =
  Option.value (Hashtbl.find_opt st.memord arr) ~default:(None, [])

let dep_opt st ~from ~to_ =
  match from with Some p -> Dfg.add_dep st.b p to_ | None -> ()

let rec lower_expr ctx st (e : Ast.expr) : int option =
  match e with
  | Ast.Int_lit _ | Ast.Float_lit _ -> None
  | Ast.Var v -> (
      Dfg.note_read st.b v;
      match Hashtbl.find_opt st.env v with
      | Some p -> Some p
      | None ->
          (* Scalar live into the block: materialize a zero-cost input
             node so accumulator recurrences close into cycles. *)
          if Hashtbl.mem ctx.info.Sema.var_types v then
            Some (Dfg.live_in st.b v)
          else None)
  | Ast.Cast (_, a) ->
      let pa = lower_expr ctx st a in
      let id = Dfg.add_node st.b Opcode.Convert in
      dep_opt st ~from:pa ~to_:id;
      Some id
  | Ast.Unop (op, a) ->
      let fl = is_float_type (type_of ctx a) in
      let pa = lower_expr ctx st a in
      let opc =
        match op with
        | Ast.Neg -> if fl then Opcode.Float_add else Opcode.Int_alu
        | Ast.Bnot | Ast.Lnot -> Opcode.Int_alu
      in
      let id = Dfg.add_node st.b opc in
      dep_opt st ~from:pa ~to_:id;
      Some id
  | Ast.Binop (op, a, b) ->
      let fl = is_float_type (type_of ctx a) || is_float_type (type_of ctx b) in
      let pa = lower_expr ctx st a in
      let pb = lower_expr ctx st b in
      let id = Dfg.add_node st.b (Opcode.of_binop op ~float:fl) in
      dep_opt st ~from:pa ~to_:id;
      dep_opt st ~from:pb ~to_:id;
      Some id
  | Ast.Ternary (c, a, b) ->
      let pc = lower_expr ctx st c in
      let pa = lower_expr ctx st a in
      let pb = lower_expr ctx st b in
      let id = Dfg.add_node st.b Opcode.Select in
      dep_opt st ~from:pc ~to_:id;
      dep_opt st ~from:pa ~to_:id;
      dep_opt st ~from:pb ~to_:id;
      Some id
  | Ast.Call (f, args) -> (
      match Builtins.find f with
      | Some bi ->
          let producers = List.map (lower_expr ctx st) args in
          let id = Dfg.add_node st.b (Opcode.of_builtin bi) in
          List.iter (fun p -> dep_opt st ~from:p ~to_:id) producers;
          Some id
      | None -> None (* sema guarantees this does not happen *))
  | Ast.Index (Ast.Var arr, idxs) ->
      Dfg.note_read st.b arr;
      let idx_producers = List.map (lower_expr ctx st) idxs in
      let index = subst_defs ctx (linearize ctx arr idxs) in
      let space = mem_space_of ctx arr in
      let id = Dfg.add_node st.b ~array:arr ~index (Opcode.Load space) in
      List.iter (fun p -> dep_opt st ~from:p ~to_:id) idx_producers;
      let last_store, loads = mem_state st arr in
      dep_opt st ~from:last_store ~to_:id;
      Hashtbl.replace st.memord arr (last_store, id :: loads);
      Some id
  | Ast.Index (_, _) -> None (* non-variable bases are rejected by sema *)

let lower_store ctx st arr idxs value =
  Dfg.note_write st.b arr;
  let value_p = lower_expr ctx st value in
  let idx_producers = List.map (lower_expr ctx st) idxs in
  let index = subst_defs ctx (linearize ctx arr idxs) in
  let space = mem_space_of ctx arr in
  let id = Dfg.add_node st.b ~array:arr ~index (Opcode.Store space) in
  dep_opt st ~from:value_p ~to_:id;
  List.iter (fun p -> dep_opt st ~from:p ~to_:id) idx_producers;
  let last_store, loads = mem_state st arr in
  dep_opt st ~from:last_store ~to_:id;
  List.iter (fun l -> Dfg.add_dep st.b l id) loads;
  Hashtbl.replace st.memord arr (Some id, [])

let lower_simple ctx st (s : Ast.stmt) =
  match s with
  | Ast.Decl (_, v, init) -> (
      Dfg.note_write st.b v;
      match init with
      | Some e -> (
          record_def ctx v e;
          match lower_expr ctx st e with
          | Some p ->
              Hashtbl.replace st.env v p;
              Dfg.note_scalar_def st.b v p
          | None -> Hashtbl.remove st.env v)
      | None -> ())
  | Ast.Local_decl _ -> ()
  | Ast.Assign (Ast.Lvar v, e) -> (
      Dfg.note_write st.b v;
      record_def ctx v e;
      match lower_expr ctx st e with
      | Some p ->
          Hashtbl.replace st.env v p;
          Dfg.note_scalar_def st.b v p
      | None -> Hashtbl.remove st.env v)
  | Ast.Assign (Ast.Lindex (arr, idxs), e) -> lower_store ctx st arr idxs e
  | Ast.Expr_stmt e -> ignore (lower_expr ctx st e)
  | Ast.Return (Some e) -> ignore (lower_expr ctx st e)
  | Ast.Return None | Ast.Break | Ast.Continue -> ()
  | Ast.If _ | Ast.For _ | Ast.While _ | Ast.Barrier ->
      invalid_arg "Lower.lower_simple: control statement"

let is_simple = function
  | Ast.Decl _ | Ast.Local_decl _ | Ast.Assign _ | Ast.Expr_stmt _
  | Ast.Return _ | Ast.Break | Ast.Continue ->
      true
  | Ast.If _ | Ast.For _ | Ast.While _ | Ast.Barrier -> false

let rec lower_stmts ctx (stmts : Ast.stmt list) : Cdfg.region list =
  let regions = ref [] in
  let current = ref (fresh_block ()) in
  let flush () =
    let d = Dfg.freeze !current.b in
    if not (Dfg.is_empty d) then regions := Cdfg.Straight d :: !regions;
    current := fresh_block ()
  in
  let emit r = regions := r :: !regions in
  List.iter
    (fun s ->
      if is_simple s then lower_simple ctx !current s
      else
        match s with
        | Ast.Barrier ->
            flush ();
            let st = fresh_block () in
            ignore (Dfg.add_node st.b Opcode.Barrier_op);
            emit (Cdfg.Straight (Dfg.freeze st.b))
        | Ast.If (c, then_s, else_s) ->
            flush ();
            let cst = fresh_block () in
            ignore (lower_expr ctx cst c);
            let cond = Dfg.freeze cst.b in
            let then_ = Cdfg.Seq (lower_stmts ctx then_s) in
            let else_ = Cdfg.Seq (lower_stmts ctx else_s) in
            emit (Cdfg.Branch { cond; then_; else_ })
        | Ast.For (hdr, body, attrs) ->
            Option.iter (lower_simple ctx !current) hdr.Ast.init;
            flush ();
            let loop_id = !(ctx.counter) in
            incr ctx.counter;
            let hst = fresh_block () in
            Option.iter (fun c -> ignore (lower_expr ctx hst c)) hdr.Ast.cond;
            Option.iter (lower_simple ctx hst) hdr.Ast.step;
            let header = Dfg.freeze hst.b in
            let var =
              match hdr.Ast.init with
              | Some (Ast.Decl (_, v, _)) | Some (Ast.Assign (Ast.Lvar v, _)) ->
                  Some v
              | Some _ | None -> None
            in
            let info =
              { Cdfg.loop_id; attrs; static_trip = static_trip ctx.launch hdr; var }
            in
            let body_region = Cdfg.Seq (lower_stmts ctx body) in
            emit (Cdfg.Loop { info; header; body = body_region })
        | Ast.While (c, body, attrs) ->
            flush ();
            let loop_id = !(ctx.counter) in
            incr ctx.counter;
            let hst = fresh_block () in
            ignore (lower_expr ctx hst c);
            let header = Dfg.freeze hst.b in
            let info = { Cdfg.loop_id; attrs; static_trip = None; var = None } in
            let body_region = Cdfg.Seq (lower_stmts ctx body) in
            emit (Cdfg.Loop { info; header; body = body_region })
        | Ast.Decl _ | Ast.Local_decl _ | Ast.Assign _ | Ast.Expr_stmt _
        | Ast.Return _ | Ast.Break | Ast.Continue ->
            (* covered by [is_simple] *)
            assert false)
    stmts;
  flush ();
  List.rev !regions

let lower (k : Ast.kernel) (info : Sema.info) (launch : Launch.t) : Cdfg.t =
  let ctx = { info; launch; counter = ref 0; defs = Hashtbl.create 32 } in
  let body = Cdfg.Seq (lower_stmts ctx k.Ast.k_body) in
  {
    Cdfg.kernel_name = k.Ast.k_name;
    body;
    n_loops = !(ctx.counter);
    uses_barrier = info.Sema.uses_barrier;
  }
