open Flexcl_opencl

type mem_space = Global_mem | Local_mem

type t =
  | Load of mem_space
  | Store of mem_space
  | Int_alu
  | Int_mul
  | Int_div
  | Float_add
  | Float_mul
  | Float_div
  | Float_cmp
  | Float_sqrt
  | Float_exp
  | Float_trig
  | Convert
  | Wi_query
  | Const_op
  | Select
  | Barrier_op
  | Live_in
  | Pipe_read_op
  | Pipe_write_op

let equal (a : t) (b : t) = a = b

let to_string = function
  | Load Global_mem -> "load.global"
  | Load Local_mem -> "load.local"
  | Store Global_mem -> "store.global"
  | Store Local_mem -> "store.local"
  | Int_alu -> "int.alu"
  | Int_mul -> "int.mul"
  | Int_div -> "int.div"
  | Float_add -> "float.add"
  | Float_mul -> "float.mul"
  | Float_div -> "float.div"
  | Float_cmp -> "float.cmp"
  | Float_sqrt -> "float.sqrt"
  | Float_exp -> "float.exp"
  | Float_trig -> "float.trig"
  | Convert -> "convert"
  | Wi_query -> "wi.query"
  | Const_op -> "const"
  | Select -> "select"
  | Barrier_op -> "barrier"
  | Live_in -> "live_in"
  | Pipe_read_op -> "pipe.read"
  | Pipe_write_op -> "pipe.write"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all =
  [
    Load Global_mem;
    Load Local_mem;
    Store Global_mem;
    Store Local_mem;
    Int_alu;
    Int_mul;
    Int_div;
    Float_add;
    Float_mul;
    Float_div;
    Float_cmp;
    Float_sqrt;
    Float_exp;
    Float_trig;
    Convert;
    Wi_query;
    Const_op;
    Select;
    Barrier_op;
    Live_in;
    Pipe_read_op;
    Pipe_write_op;
  ]

let is_mem = function Load _ | Store _ -> true | _ -> false

let is_local_access = function
  | Load Local_mem | Store Local_mem -> true
  | _ -> false

let is_global_access = function
  | Load Global_mem | Store Global_mem -> true
  | _ -> false

let of_binop (op : Ast.binop) ~float =
  match op with
  | Ast.Add | Ast.Sub -> if float then Float_add else Int_alu
  | Ast.Mul -> if float then Float_mul else Int_mul
  | Ast.Div | Ast.Mod -> if float then Float_div else Int_div
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr | Ast.Land | Ast.Lor ->
      Int_alu
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if float then Float_cmp else Int_alu

let of_builtin (b : Builtins.t) =
  match b with
  | Builtins.Wi _ -> Wi_query
  | Builtins.Math1 (Builtins.Sqrt | Builtins.Rsqrt) -> Float_sqrt
  | Builtins.Math1 (Builtins.Exp | Builtins.Exp2 | Builtins.Log | Builtins.Log2) ->
      Float_exp
  | Builtins.Math1
      ( Builtins.Sin | Builtins.Cos | Builtins.Tan | Builtins.Atan ) ->
      Float_trig
  | Builtins.Math1 (Builtins.Fabs | Builtins.Floor | Builtins.Ceil | Builtins.Round)
    ->
      Float_add
  | Builtins.Math2 (Builtins.Pow | Builtins.Atan2 | Builtins.Hypot) -> Float_exp
  | Builtins.Math2 (Builtins.Fmod) -> Float_div
  | Builtins.Math2 (Builtins.Fmax | Builtins.Fmin | Builtins.Max | Builtins.Min)
    ->
      Select
  | Builtins.Math3 (Builtins.Mad | Builtins.Fma) -> Float_mul
  | Builtins.Math3 (Builtins.Clamp | Builtins.Mix) -> Select
  | Builtins.Abs -> Int_alu
  | Builtins.Pipe_read -> Pipe_read_op
  | Builtins.Pipe_write -> Pipe_write_op
