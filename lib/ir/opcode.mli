open Flexcl_opencl

(** IR operation classes.

    Each AST operation lowers to one of these classes; on FPGAs each class
    corresponds to an IP core whose latency is taken from the device's
    micro-benchmark-profiled table ({!Flexcl_device}). *)

type mem_space = Global_mem | Local_mem

type t =
  | Load of mem_space
  | Store of mem_space
  | Int_alu    (** add/sub/compare/bitwise/shift on integers *)
  | Int_mul
  | Int_div    (** division and modulo *)
  | Float_add  (** add/sub *)
  | Float_mul
  | Float_div
  | Float_cmp
  | Float_sqrt
  | Float_exp  (** exp/log family *)
  | Float_trig (** sin/cos/tan/atan *)
  | Convert    (** type casts *)
  | Wi_query   (** get_global_id and friends: wired counters *)
  | Const_op   (** literal materialization *)
  | Select     (** ternary / mux *)
  | Barrier_op (** work-group barrier *)
  | Live_in    (** block input wire (zero latency, zero resources) *)
  | Pipe_read_op  (** blocking read from an on-chip FIFO channel *)
  | Pipe_write_op (** blocking write to an on-chip FIFO channel *)

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val all : t list
(** Every opcode (for exhaustive latency tables and tests). *)

val is_mem : t -> bool

val is_local_access : t -> bool

val is_global_access : t -> bool

val of_binop : Ast.binop -> float:bool -> t
(** Opcode class for a binary operator at integer or float type. *)

val of_builtin : Builtins.t -> t
