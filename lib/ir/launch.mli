(** Kernel launch configuration: NDRange geometry and argument values.

    FlexCL needs concrete argument values for its dynamic profiling step
    (trip counts, memory traces), exactly like the paper's CPU/GPU
    profiling run. Buffers are described by a length and a deterministic
    initialization recipe so the whole pipeline stays reproducible. *)

type dim3 = { x : int; y : int; z : int }

val dim3 : ?y:int -> ?z:int -> int -> dim3
(** [dim3 x] is [{x; y = 1; z = 1}] unless overridden. *)

val volume : dim3 -> int

type scalar_value = Int of int64 | Float of float

type buffer_init =
  | Zeros
  | Ramp  (** element [i] gets value [i] (as the element type). *)
  | Const_init of float
  | Random_floats of int  (** seed; uniform in [\[0, 1)]. *)
  | Random_ints of int * int  (** seed, exclusive bound. *)

type arg =
  | Scalar of scalar_value
  | Buffer of { length : int; init : buffer_init }

type t = {
  global : dim3;  (** total work-items per dimension (NDRange). *)
  local : dim3;   (** work-items per work-group per dimension. *)
  args : (string * arg) list;  (** by parameter name. *)
  placement : (string * int) list;
      (** buffer name → DRAM channel binding; [[]] places every buffer
          on channel 0 (the only channel of classic DDR devices). *)
}

val make :
  global:dim3 -> local:dim3 -> args:(string * arg) list -> t
(** Validates that each local dimension divides the global one and is
    positive; raises [Invalid_argument] otherwise. The placement starts
    empty; see {!with_placement_result}. *)

val make_result :
  global:dim3 -> local:dim3 -> args:(string * arg) list ->
  (t, string list) result
(** Total variant of {!make}: [Error problems] lists every violated
    invariant (non-positive or non-dividing dimensions, NDRange volume
    or buffer length beyond the supported bounds, duplicate or NaN
    arguments) instead of raising. *)

val validate : t -> string list
(** All invariant violations of an already-built value (a record
    assembled by hand can bypass {!make}); [[]] means well-formed. *)

val n_work_items : t -> int
val wg_size : t -> int
val n_work_groups : t -> int

val find_arg : t -> string -> arg option

val scalar_env : t -> (string * int64) list
(** Integer-valued scalar arguments, for static trip-count evaluation. *)

val work_groups : t -> dim3 list
(** All work-group ids in dispatch (row-major) order. *)

val local_ids : t -> dim3 list
(** All local ids within one work-group, row-major. *)

val fingerprint : t -> string
(** Stable content hash (hex, via {!Flexcl_util.Hash}) of the NDRange,
    the full argument recipe and the buffer→channel placement —
    everything that determines analysis results {e except} the local
    size, which is deliberately excluded so the DSE engine can key its
    per-work-group-size re-analysis memo on [(fingerprint, wg_size)].
    An empty placement hashes to the pre-placement fingerprint. Callers
    for whom the local size matters (e.g. the serve cache) pair the
    fingerprint with the design point's [wg_size]. *)

val buffer_names : t -> string list
(** Names of the buffer-typed arguments, in declaration order. *)

val with_placement : t -> (string * int) list -> t
(** Same launch with a different buffer→channel placement (not
    re-validated; pair with {!validate} or
    {!Flexcl_dram.Dram.placement_error} as appropriate). *)

val with_placement_result : t -> (string * int) list -> (t, string list) result
(** {!with_placement} + {!validate}: [Error problems] when the placement
    names unknown or scalar arguments, repeats a buffer, or uses a
    negative channel. Whether a placed channel exists on the target
    device is checked where the device is known
    ({!Flexcl_dram.Dram.placement_error}). *)

val round_robin_placement : t -> n_channels:int -> (string * int) list
(** Buffer [i] → channel [i mod n_channels]; [[]] when [n_channels <= 1].
    The default placement heuristic for multi-channel devices. *)
