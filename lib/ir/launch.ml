type dim3 = { x : int; y : int; z : int }

let dim3 ?(y = 1) ?(z = 1) x = { x; y; z }

let volume d = d.x * d.y * d.z

type scalar_value = Int of int64 | Float of float

type buffer_init =
  | Zeros
  | Ramp
  | Const_init of float
  | Random_floats of int
  | Random_ints of int * int

type arg =
  | Scalar of scalar_value
  | Buffer of { length : int; init : buffer_init }

type t = {
  global : dim3;
  local : dim3;
  args : (string * arg) list;
  placement : (string * int) list;
      (* buffer name -> DRAM channel; [] = every buffer on channel 0 *)
}

(* Generous sanity bounds: far above anything the paper's sweeps use,
   low enough that a corrupted launch cannot drive the profiler into
   multi-gigabyte allocations or overflow index arithmetic. *)
let max_work_items = 1 lsl 30
let max_buffer_length = 1 lsl 28

let validate_parts ~placement ~global ~local ~args =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let check g l name =
    if l <= 0 then add "local.%s = %d is not positive" name l;
    if g <= 0 then add "global.%s = %d is not positive" name g;
    if l > 0 && g > 0 && g mod l <> 0 then
      add "local.%s = %d does not divide global.%s = %d" name l name g
  in
  check global.x local.x "x";
  check global.y local.y "y";
  check global.z local.z "z";
  if global.x > 0 && global.y > 0 && global.z > 0 then begin
    (* overflow-safe volume check *)
    let v = float_of_int global.x *. float_of_int global.y *. float_of_int global.z in
    if v > float_of_int max_work_items then
      add "NDRange volume %.0f exceeds the supported maximum %d" v max_work_items
  end;
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, arg) ->
      if Hashtbl.mem seen name then add "argument %s bound twice" name;
      Hashtbl.replace seen name ();
      match arg with
      | Buffer { length; _ } ->
          if length < 0 then add "buffer %s has negative length %d" name length
          else if length > max_buffer_length then
            add "buffer %s length %d exceeds the supported maximum %d" name length
              max_buffer_length
      | Scalar (Float f) ->
          if Float.is_nan f then add "scalar %s is NaN" name
      | Scalar (Int _) -> ())
    args;
  let placed = Hashtbl.create 4 in
  List.iter
    (fun (name, chan) ->
      if Hashtbl.mem placed name then add "buffer %s placed twice" name;
      Hashtbl.replace placed name ();
      if chan < 0 then add "buffer %s placed on negative channel %d" name chan;
      match List.assoc_opt name args with
      | Some (Buffer _) -> ()
      | Some (Scalar _) -> add "placement names scalar argument %s" name
      | None -> add "placement names unknown argument %s" name)
    placement;
  List.rev !problems

let validate t =
  validate_parts ~placement:t.placement ~global:t.global ~local:t.local
    ~args:t.args

let make_result ~global ~local ~args =
  match validate_parts ~placement:[] ~global ~local ~args with
  | [] -> Ok { global; local; args; placement = [] }
  | problems -> Error problems

let make ~global ~local ~args =
  match make_result ~global ~local ~args with
  | Ok t -> t
  | Error (p :: _) -> invalid_arg ("Launch.make: " ^ p)
  | Error [] -> assert false

let n_work_items t = volume t.global

let wg_size t = volume t.local

let n_work_groups t = n_work_items t / wg_size t

let find_arg t name = List.assoc_opt name t.args

let scalar_env t =
  List.filter_map
    (fun (name, arg) ->
      match arg with
      | Scalar (Int v) -> Some (name, v)
      | Scalar (Float _) | Buffer _ -> None)
    t.args

let cartesian nx ny nz =
  let out = ref [] in
  for z = nz - 1 downto 0 do
    for y = ny - 1 downto 0 do
      for x = nx - 1 downto 0 do
        out := { x; y; z } :: !out
      done
    done
  done;
  !out

let work_groups t =
  cartesian (t.global.x / t.local.x) (t.global.y / t.local.y)
    (t.global.z / t.local.z)

let local_ids t = cartesian t.local.x t.local.y t.local.z

(* ------------------------------------------------------------------ *)
(* Content fingerprint *)

module Hash = Flexcl_util.Hash

let hash_dim3 h d = Hash.add_int (Hash.add_int (Hash.add_int h d.x) d.y) d.z

let hash_arg h (name, arg) =
  let h = Hash.add_string h name in
  match arg with
  | Scalar (Int v) ->
      Hash.add_int (Hash.add_char h 'i') (Int64.to_int v)
  | Scalar (Float v) ->
      Hash.add_int (Hash.add_char h 'f') (Int64.to_int (Int64.bits_of_float v))
  | Buffer { length; init } ->
      let h = Hash.add_int (Hash.add_char h 'b') length in
      (match init with
      | Zeros -> Hash.add_char h 'z'
      | Ramp -> Hash.add_char h 'r'
      | Const_init v ->
          Hash.add_int (Hash.add_char h 'c')
            (Int64.to_int (Int64.bits_of_float v))
      | Random_floats seed -> Hash.add_int (Hash.add_char h 'F') seed
      | Random_ints (seed, bound) ->
          Hash.add_int (Hash.add_int (Hash.add_char h 'I') seed) bound)

let fingerprint t =
  let h = hash_dim3 Hash.init t.global in
  let h = List.fold_left hash_arg h t.args in
  (* an empty placement folds nothing, so pre-placement fingerprints are
     unchanged (serve cache keys, DSE memo keys) *)
  let h =
    List.fold_left
      (fun h (name, chan) ->
        Hash.add_int (Hash.add_string (Hash.add_char h 'p') name) chan)
      h t.placement
  in
  Hash.to_hex h

(* ------------------------------------------------------------------ *)
(* Placement helpers *)

let buffer_names t =
  List.filter_map
    (fun (name, arg) -> match arg with Buffer _ -> Some name | Scalar _ -> None)
    t.args

let with_placement t placement = { t with placement }

let with_placement_result t placement =
  let t = { t with placement } in
  match validate t with
  | [] -> Ok t
  | problems -> Error problems

let round_robin_placement t ~n_channels =
  if n_channels <= 1 then []
  else List.mapi (fun i name -> (name, i mod n_channels)) (buffer_names t)
