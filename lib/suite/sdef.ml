(* Declarative benchmark-suite definitions.

   A suite run is a matrix of entries — (workload × device) — and for
   every entry the runner evaluates both modes (analytical estimate and
   simrtl ground truth) through all three estimate engines (sequential,
   parallel, specialized). The matrix is data, not code: the CLI lists
   it, filters it by substring, and the smoke subset is just a smaller
   literal matrix, in the style of the Phoronix suite definitions.

   Single-kernel workloads and multi-kernel pipeline graphs share the
   matrix: a [Pipeline] entry measures the graph model against the
   co-simulated ground truth instead of the single-kernel pair. *)

module W = Flexcl_workloads.Workload
module P = Flexcl_workloads.Pipelines
module Device = Flexcl_device.Device
module Config = Flexcl_core.Config
module Launch = Flexcl_ir.Launch

type payload = Single of W.t | Pipeline of P.t

type entry = {
  suite : string;
  payload : payload;
  device_name : string;
  device : Device.t;
}

let devices =
  [
    ("xc7vx690t", Device.virtex7);
    ("xcku060", Device.ku060);
    ("xcku060-2ddr", Device.ku060_2ddr);
    ("xcu280", Device.u280);
  ]

let workload_name (e : entry) =
  match e.payload with Single w -> W.name w | Pipeline p -> p.P.name

let id (e : entry) =
  Printf.sprintf "%s/%s@%s" e.suite (workload_name e) e.device_name

let work_items (e : entry) =
  match e.payload with
  | Single w -> Launch.n_work_items w.W.launch
  | Pipeline p ->
      List.fold_left
        (fun acc (_, _, l) -> acc + Launch.n_work_items l)
        0 p.P.stages

let wg (e : entry) =
  match e.payload with
  | Single w -> Launch.wg_size w.W.launch
  | Pipeline p -> (
      match p.P.stages with
      | (_, _, l) :: _ -> Launch.wg_size l
      | [] -> 0)

let entries_of ~devices workloads =
  List.concat_map
    (fun (w : W.t) ->
      List.map
        (fun (device_name, device) ->
          { suite = w.W.suite; payload = Single w; device_name; device })
        devices)
    workloads

let pipeline_entries_of ~devices pipelines =
  List.concat_map
    (fun (p : P.t) ->
      List.map
        (fun (device_name, device) ->
          { suite = "pipeline"; payload = Pipeline p; device_name; device })
        devices)
    pipelines

let full () =
  entries_of ~devices
    (Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all)
  @ pipeline_entries_of ~devices P.all

(* The smoke subset behind `make check`: one compute-bound and one
   memory-heavy kernel per suite on the primary device, plus one entry
   on the second device so the device axis stays covered, plus the two
   memory-bound kernels on the 32-channel HBM device (round-robin
   placed by the runner) so a channel-roofline or channel-simulator
   regression trips the gate, plus one pipeline graph so a graph-model
   or co-simulation regression trips it too. Small enough to run in
   seconds, wide enough that an accuracy or warm-latency regression in
   any suite, device or memory regime trips the gate. *)
let smoke_workload_names =
  [ "hotspot/hotspot"; "backprop/layer"; "gemm/gemm"; "mvt/mvt" ]

(* memory-bound kernels whose model-vs-simrtl error the HBM gate pins *)
let smoke_hbm_workload_names = [ "bfs/bfs_1"; "mvt/mvt" ]

let smoke () =
  let all = Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all in
  let named n = List.find (fun w -> W.name w = n) all in
  let primary = [ List.hd devices ] in
  let secondary = [ List.nth devices 1 ] in
  let hbm = [ List.nth devices 3 ] in
  entries_of ~devices:primary (List.map named smoke_workload_names)
  @ entries_of ~devices:secondary [ named "hotspot/hotspot" ]
  @ entries_of ~devices:hbm (List.map named smoke_hbm_workload_names)
  @ pipeline_entries_of ~devices:primary [ P.produce_filter_consume ]

let filter pattern entries =
  let contains haystack needle =
    let nl = String.length needle and hl = String.length haystack in
    let rec at i =
      i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1))
    in
    nl = 0 || at 0
  in
  List.filter (fun e -> contains (id e) pattern) entries

(* Candidate design points for an entry, most-optimized first; the
   runner picks the first one feasible on the entry's device so every
   workload lands on a comparable, resource-valid point. Pipeline
   entries apply the same ladder stage by stage. *)
let candidate_configs ~wg_size =
  List.map
    (fun (n_pe, n_cu, wi_pipeline) ->
      {
        Config.wg_size;
        n_pe;
        n_cu;
        wi_pipeline;
        comm_mode = Config.Pipeline_mode;
      })
    [ (2, 2, true); (2, 1, true); (1, 1, true); (1, 1, false) ]
