(** The normalized, schema-versioned suite report ([BENCH_suite.json]).

    This is the artifact the regression gate diffs, so serialization is
    canonical: entries sorted by {!entry_id}, feature keys sorted, fixed
    field order, and the deterministic {!Flexcl_util.Json} printer. Two
    runs that measured the same numbers produce the same bytes, and
    [of_string |> to_string] is the identity on bytes (pinned by
    [test/test_suite.ml]). *)

val schema_version : int
val kind : string

type timing = {
  mean_us : float;
  stddev_us : float;
  ci_lo_us : float;   (** bootstrap 95% CI on the mean, lower bound. *)
  ci_hi_us : float;
  samples : int;
}

type entry = {
  suite : string;      (** ["rodinia"] or ["polybench"]. *)
  workload : string;   (** ["benchmark/kernel"]. *)
  device : string;     (** ["xc7vx690t"] or ["xcku060"]. *)
  config : string;     (** the evaluated design point, [Config.to_string]. *)
  est_cycles : float;  (** analytical estimate (sequential engine). *)
  sim_cycles : float;  (** simrtl (System-Run simulator) ground truth. *)
  err_pct : float;     (** [100 |est - sim| / sim]. *)
  cal_err_pct : float option;
      (** [100 |calibrated - sim| / sim] when the run was given a
          learned-residual model ([suite --model]); absent otherwise so
          pre-calibration reports keep their exact bytes. *)
  learn_schema : int option;
      (** [Flexcl_learn.Learn.schema_version] of the model that produced
          [cal_err_pct]; the gate refuses to compare calibrated columns
          across schema versions. *)
  engines_identical : bool;
      (** sequential, parallel and specialized engines agreed bitwise. *)
  warm : timing;       (** warm per-point estimate latency. *)
  features : (string * float) list;
      (** architecture-independent workload features (Johnston et al.):
          op mix, trip counts, barrier density, per-pattern memory
          transaction counts — recorded so the same harness later feeds
          the learned-residual predictor (the ROADMAP's learned-residual item). *)
}

type suite_summary = {
  suite_name : string;
  entries : int;
  mean_err_pct : float;
  max_err_pct : float;
}

type cache_stats = { hits : int; misses : int }

type t = {
  smoke : bool;
  seed : int;
  repeat : int;
  warmup : int;
  inner : int;
  calibration_us : float;
      (** wall time of a fixed reference computation on the measuring
          machine; the gate compares latencies normalized by it so a
          committed baseline survives a machine change. *)
  analysis_cache : cache_stats;
  rows : entry list;
  summaries : suite_summary list;
}

val entry_id : entry -> string
(** Stable identity the gate matches entries on:
    ["suite/benchmark/kernel\@device"]. *)

val hit_rate : cache_stats -> float

val normalize : t -> t
(** Canonical order (entries by id, features and summaries sorted). *)

val summarize : entry list -> suite_summary list
(** Per-suite mean/max error over a row list. *)

val to_json : t -> Flexcl_util.Json.t
val to_string : t -> string

val of_json : Flexcl_util.Json.t -> (t, string) result
(** Total decoder; the error names the offending field. Rejects foreign
    [kind]s and unknown [schema_version]s rather than guessing. *)

val of_string : string -> (t, string) result
