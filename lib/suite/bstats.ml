(* Statistics for the benchmark-suite harness: mean, stddev and a
   percentile-bootstrap confidence interval on the mean, all pure OCaml
   and bit-for-bit deterministic (the resampling flows from an explicit
   Flexcl_util.Prng seed). *)

module Prng = Flexcl_util.Prng

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let ss = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int n)

(* linear-interpolation percentile on a sorted array, p in [0,100] *)
let percentile_sorted p sorted =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Bstats.percentile_sorted: empty";
  if n = 1 then sorted.(0)
  else begin
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

type ci = { lo : float; hi : float }

let default_replicates = 200

let bootstrap_ci_mean ?(replicates = default_replicates) ?(confidence = 0.95)
    ~seed xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Bstats.bootstrap_ci_mean: empty sample";
  if replicates < 1 then invalid_arg "Bstats.bootstrap_ci_mean: replicates < 1";
  if not (confidence > 0.0 && confidence < 1.0) then
    invalid_arg "Bstats.bootstrap_ci_mean: confidence outside (0,1)";
  if n = 1 then { lo = xs.(0); hi = xs.(0) }
  else begin
    let rng = Prng.create seed in
    let means =
      Array.init replicates (fun _ ->
          let acc = ref 0.0 in
          for _ = 1 to n do
            acc := !acc +. xs.(Prng.int rng n)
          done;
          !acc /. float_of_int n)
    in
    Array.sort compare means;
    let tail = (1.0 -. confidence) /. 2.0 *. 100.0 in
    {
      lo = percentile_sorted tail means;
      hi = percentile_sorted (100.0 -. tail) means;
    }
  end

let ci_width { lo; hi } = hi -. lo

(* relative half-width of a CI around a mean: the per-measurement noise
   figure the regression gate turns into a tolerance band *)
let rel_half_width ~mean:m ci =
  if Float.abs m <= 0.0 then 0.0 else ci_width ci /. 2.0 /. Float.abs m
