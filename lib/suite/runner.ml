(* Suite runner: measures every entry of a declarative matrix and
   assembles the normalized report.

   Per entry the runner
   - resolves (and memoizes) the workload analysis, counting cache
     hits so the report can pin the shared-analysis payoff;
   - picks the first candidate design point feasible on the device;
   - evaluates the analytical estimate through all three engines —
     sequential [Model.estimate], the parallel sweep engine
     ([Parsweep.eval_batch] over worker domains) and the staged
     [Model.specialize] path — and records whether the three agreed
     bitwise;
   - runs the simrtl ground truth ([Sysrun.run], seeded) and the
     resulting accuracy error;
   - times the warm specialized path with warmup, repetition and a
     bootstrap confidence interval (deterministic resampling seed per
     entry);
   - extracts the architecture-independent workload features. *)

module W = Flexcl_workloads.Workload
module Pipelines = Flexcl_workloads.Pipelines
module Graph = Flexcl_graph.Graph
module Cosim = Flexcl_graph.Cosim
module Trace = Flexcl_util.Trace
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Explore = Flexcl_dse.Explore
module Parsweep = Flexcl_dse.Parsweep
module Sysrun = Flexcl_simrtl.Sysrun
module Launch = Flexcl_ir.Launch
module Dram = Flexcl_dram.Dram
module Prng = Flexcl_util.Prng
module Learn = Flexcl_learn.Learn

type opts = {
  repeat : int;   (* timed samples per entry *)
  warmup : int;   (* discarded samples per entry *)
  inner : int;    (* model evaluations per sample *)
  seed : int;     (* simulator + bootstrap determinism *)
  smoke : bool;   (* recorded in the report *)
  domains : int;  (* worker domains for the parallel engine *)
}

let default_opts =
  { repeat = 12; warmup = 3; inner = 64; seed = 42; smoke = false; domains = 2 }

let smoke_opts = { default_opts with repeat = 8; warmup = 2; smoke = true }

(* ------------------------------------------------------------------ *)
(* Calibration: a fixed reference computation timed on the measuring
   machine. The gate compares latencies normalized by this figure, so a
   committed baseline survives a move to faster or slower hardware. *)

let calibration_loop () =
  let acc = ref 0.0 in
  for i = 1 to 200_000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  !acc

let calibrate () =
  (* best of 3: calibration must reflect machine speed, not a scheduler
     hiccup during one run *)
  let once () =
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (calibration_loop ()));
    (Unix.gettimeofday () -. t0) *. 1e6
  in
  ignore (once ());
  Float.min (once ()) (Float.min (once ()) (once ()))

(* ------------------------------------------------------------------ *)
(* Feature extraction (Johnston et al.): the architecture-independent
   workload descriptors recorded per entry live in Flexcl_learn so the
   learned-residual predictor and the runner can never drift apart. *)

let features = Learn.features

(* ------------------------------------------------------------------ *)

type analysis_memo = {
  table : (string, Analysis.t) Hashtbl.t;
  gtable : (string, Graph.analyzed) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let memo_create () =
  { table = Hashtbl.create 64; gtable = Hashtbl.create 8; hits = 0; misses = 0 }

let analysis_of memo (w : W.t) =
  match Hashtbl.find_opt memo.table (W.name w) with
  | Some a ->
      memo.hits <- memo.hits + 1;
      a
  | None ->
      memo.misses <- memo.misses + 1;
      let a = Analysis.analyze (W.parse w) w.W.launch in
      Hashtbl.replace memo.table (W.name w) a;
      a

let graph_of memo (p : Pipelines.t) =
  match Hashtbl.find_opt memo.gtable p.Pipelines.name with
  | Some t ->
      memo.hits <- memo.hits + 1;
      t
  | None ->
      memo.misses <- memo.misses + 1;
      let t =
        match Graph.analyze (Pipelines.graph p) with
        | Ok t -> t
        | Error ds ->
            failwith
              (Printf.sprintf "Pipeline.suite: %s does not analyze: %s"
                 p.Pipelines.name
                 (Flexcl_util.Diag.render_all ds))
      in
      Hashtbl.replace memo.gtable p.Pipelines.name t;
      t

let bits = Int64.bits_of_float

let time_of f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Warm latency of an entry's hot path. One sample = best of 3 bursts
   of [inner] evaluations: the min discards bursts inflated by
   preemption or a major GC, which would otherwise dominate
   sub-microsecond timings. *)
let warm_timing ~opts ~entry_index eval =
  let burst () =
    let (), dt =
      time_of (fun () ->
          for _ = 1 to opts.inner do
            ignore (Sys.opaque_identity (eval ()))
          done)
    in
    dt /. float_of_int opts.inner *. 1e6
  in
  let sample () = Float.min (burst ()) (Float.min (burst ()) (burst ())) in
  for _ = 1 to opts.warmup do
    ignore (sample ())
  done;
  let samples = Array.init opts.repeat (fun _ -> sample ()) in
  let boot_seed = Prng.hash_mix opts.seed entry_index in
  let ci = Bstats.bootstrap_ci_mean ~seed:boot_seed samples in
  {
    Report.mean_us = Bstats.mean samples;
    stddev_us = Bstats.stddev samples;
    ci_lo_us = ci.Bstats.lo;
    ci_hi_us = ci.Bstats.hi;
    samples = opts.repeat;
  }

(* Multi-channel entries run with the default placement heuristic
   (round robin), so both the model's channel roofline and the
   channel-accurate simulator see spread traffic; 1-channel devices
   keep the empty placement (bitwise-identical to the pre-channel
   suite). [Analysis.with_placement] is cheap, so the memoized base
   analysis stays shared across devices. *)
let placed_for (dev : Flexcl_device.Device.t) (a : Analysis.t) =
  let n_channels = dev.Flexcl_device.Device.dram.Dram.n_channels in
  if n_channels <= 1 then a
  else
    Analysis.with_placement a
      (Launch.round_robin_placement a.Analysis.launch ~n_channels)

let measure_single ~opts ~memo ~entry_index (e : Sdef.entry) (w : W.t) =
  let a = placed_for e.Sdef.device (analysis_of memo w) in
  let wg_size = Launch.wg_size a.Analysis.launch in
  match
    List.find_opt
      (fun cfg -> Model.feasible e.Sdef.device a cfg)
      (Sdef.candidate_configs ~wg_size)
  with
  | None -> None (* no candidate fits the device; entry is skipped *)
  | Some cfg ->
      let dev = e.Sdef.device in
      (* estimate mode, three engines *)
      let seq = Model.cycles dev a cfg in
      let spec = Model.specialized_cycles (Explore.specialized_for dev a) cfg in
      let par =
        match
          Parsweep.eval_batch ~num_domains:opts.domains a [ cfg ]
            (Explore.model_oracle dev)
        with
        | [ { Parsweep.cycles; _ } ] -> cycles
        | _ -> nan
      in
      let engines_identical = bits seq = bits spec && bits seq = bits par in
      (* simrtl mode: ground truth *)
      let sim = (Sysrun.run ~seed:opts.seed dev a cfg).Sysrun.cycles in
      let err_pct =
        if sim <= 0.0 then 0.0
        else 100.0 *. Float.abs (seq -. sim) /. sim
      in
      (* warm latency of the specialized path (the sweep/serve hot path) *)
      let sm = Explore.specialized_for dev a in
      let warm =
        warm_timing ~opts ~entry_index (fun () ->
            Model.specialized_cycles sm cfg)
      in
      Some
        {
          Report.suite = e.Sdef.suite;
          workload = W.name w;
          device = e.Sdef.device_name;
          config = Config.to_string cfg;
          est_cycles = seq;
          sim_cycles = sim;
          err_pct;
          cal_err_pct = None;
          learn_schema = None;
          engines_identical;
          warm;
          features = features a dev;
        }

(* A pipeline entry measures the kernel-graph model: the analytical
   estimate (with its conservation-checked explain trace standing in
   for the engine-identity column — estimate, explain root and trace
   recomposition must agree bitwise) against the work-group-granular
   co-simulation, and the warm latency of a full graph evaluation (the
   joint-DSE hot path). *)
let measure_pipeline ~opts ~memo ~entry_index (e : Sdef.entry)
    (p : Pipelines.t) =
  let t = graph_of memo p in
  let dev = e.Sdef.device in
  let t =
    {
      t with
      Graph.stage_analyses =
        List.map
          (fun (s, a) -> (s, placed_for dev a))
          t.Graph.stage_analyses;
    }
  in
  (* first feasible candidate per stage, same ladder as single entries *)
  let cfgs =
    List.map
      (fun (s, a) ->
        let wg_size = Launch.wg_size a.Analysis.launch in
        Option.map
          (fun c -> (s, c))
          (List.find_opt
             (fun cfg -> Model.feasible dev a cfg)
             (Sdef.candidate_configs ~wg_size)))
      t.Graph.stage_analyses
  in
  if List.exists Option.is_none cfgs then None
  else
    let stage_configs = List.filter_map Fun.id cfgs in
    let j = { (Graph.default_joint t) with Graph.stage_configs } in
    let gb, tr = Graph.explain dev t j in
    let seq = gb.Graph.cycles in
    let engines_identical =
      bits seq = bits (Graph.cycles dev t j)
      && bits seq = bits tr.Trace.cycles
      && Result.is_ok (Trace.check tr)
    in
    (* cosim mode: ground truth *)
    let sim = (Cosim.run ~seed:opts.seed dev t j).Cosim.cycles in
    let err_pct =
      if sim <= 0.0 then 0.0 else 100.0 *. Float.abs (seq -. sim) /. sim
    in
    let warm = warm_timing ~opts ~entry_index (fun () -> Graph.cycles dev t j) in
    let ba = Graph.stage_analysis t gb.Graph.bottleneck_stage in
    Some
      {
        Report.suite = e.Sdef.suite;
        workload = Sdef.workload_name e;
        device = e.Sdef.device_name;
        config = Graph.joint_to_string j;
        est_cycles = seq;
        sim_cycles = sim;
        err_pct;
        cal_err_pct = None;
        learn_schema = None;
        engines_identical;
        warm;
        features =
          ("stages", float_of_int (List.length t.Graph.stage_analyses))
          :: ( "channels",
               float_of_int
                 (List.length
                    t.Graph.resolved.Flexcl_graph.Gdef.graph
                      .Flexcl_graph.Gdef.channels) )
          :: features ba dev;
      }

let measure_entry ~opts ~memo ~entry_index (e : Sdef.entry) =
  match e.Sdef.payload with
  | Sdef.Single w -> measure_single ~opts ~memo ~entry_index e w
  | Sdef.Pipeline p -> measure_pipeline ~opts ~memo ~entry_index e p

(* ------------------------------------------------------------------ *)
(* Learned-residual bridge: report rows carry the device only by name,
   so both directions (annotating a run with calibrated columns, and
   turning a report back into training samples) resolve it through the
   suite's device registry. Rows naming an unknown device are left
   untouched / skipped rather than failing the whole report. *)

let device_of_name name = List.assoc_opt name Sdef.devices

let calibrate_row (m : Learn.model) (e : Report.entry) =
  match device_of_name e.Report.device with
  | None -> e
  | Some device ->
      let c =
        Learn.calibrate m ~device ~est:e.Report.est_cycles e.Report.features
      in
      let cal_err_pct =
        if e.Report.sim_cycles <= 0.0 then 0.0
        else
          100.0
          *. Float.abs (c.Learn.cycles -. e.Report.sim_cycles)
          /. e.Report.sim_cycles
      in
      {
        e with
        Report.cal_err_pct = Some cal_err_pct;
        learn_schema = Some Learn.schema_version;
      }

let samples_of_report (r : Report.t) =
  List.filter_map
    (fun (e : Report.entry) ->
      match device_of_name e.Report.device with
      | None -> None
      | Some device ->
          Some
            {
              Learn.workload = e.Report.workload;
              device;
              est_cycles = e.Report.est_cycles;
              sim_cycles = e.Report.sim_cycles;
              features = e.Report.features;
            })
    r.Report.rows

let run ?model ?(progress = fun (_ : string) -> ()) opts entries =
  let memo = memo_create () in
  let calibration_us = calibrate () in
  let rows =
    entries
    |> List.mapi (fun i e ->
           let row = measure_entry ~opts ~memo ~entry_index:i e in
           (match row with
           | Some r ->
               progress
                 (Printf.sprintf "%-44s err %5.1f%%  warm %.2f us%s"
                    (Sdef.id e) r.Report.err_pct r.Report.warm.Report.mean_us
                    (if r.Report.engines_identical then ""
                     else "  ENGINES DIVERGE"))
           | None ->
               progress
                 (Printf.sprintf "%-44s skipped (no feasible design point)"
                    (Sdef.id e)));
           row)
    |> List.filter_map Fun.id
  in
  let rows =
    match model with
    | None -> rows
    | Some m -> List.map (calibrate_row m) rows
  in
  Report.normalize
    {
      Report.smoke = opts.smoke;
      seed = opts.seed;
      repeat = opts.repeat;
      warmup = opts.warmup;
      inner = opts.inner;
      calibration_us;
      analysis_cache = { Report.hits = memo.hits; misses = memo.misses };
      rows;
      summaries = Report.summarize rows;
    }
