(* Normalized, schema-versioned suite report (`BENCH_suite.json`).

   The report is the unit the regression gate diffs, so its JSON form is
   canonical: entries sorted by id, feature keys sorted, fixed field
   order, and the deterministic Flexcl_util.Json printer — two runs that
   measured the same numbers serialize byte-identically, and
   [of_json |> to_json] is the identity on bytes. *)

module Json = Flexcl_util.Json

let schema_version = 1
let kind = "flexcl-suite-report"

type timing = {
  mean_us : float;
  stddev_us : float;
  ci_lo_us : float;
  ci_hi_us : float;
  samples : int;
}

type entry = {
  suite : string;
  workload : string;
  device : string;
  config : string;
  est_cycles : float;    (* sequential-engine model estimate *)
  sim_cycles : float;    (* simrtl ground truth *)
  err_pct : float;       (* |est - sim| / sim * 100 *)
  cal_err_pct : float option;
      (* |calibrated - sim| / sim * 100, when a learn model was given *)
  learn_schema : int option;
      (* Learn.schema_version of the model that produced cal_err_pct *)
  engines_identical : bool;
      (* sequential / parallel / specialized engines bitwise equal *)
  warm : timing;         (* warm per-point estimate latency *)
  features : (string * float) list;
      (* architecture-independent workload features, key-sorted *)
}

type suite_summary = {
  suite_name : string;
  entries : int;
  mean_err_pct : float;
  max_err_pct : float;
}

type cache_stats = { hits : int; misses : int }

type t = {
  smoke : bool;
  seed : int;
  repeat : int;
  warmup : int;
  inner : int;
  calibration_us : float;
      (* wall time of a fixed reference computation on the measuring
         machine; the gate compares latencies normalized by it *)
  analysis_cache : cache_stats;
  rows : entry list;
  summaries : suite_summary list;
}

let entry_id (e : entry) =
  Printf.sprintf "%s/%s@%s" e.suite e.workload e.device

let hit_rate (c : cache_stats) =
  let total = c.hits + c.misses in
  if total = 0 then 0.0 else float_of_int c.hits /. float_of_int total

let normalize (r : t) =
  {
    r with
    rows =
      List.sort (fun a b -> compare (entry_id a) (entry_id b)) r.rows
      |> List.map (fun e ->
             { e with features = List.sort compare e.features });
    summaries =
      List.sort (fun a b -> compare a.suite_name b.suite_name) r.summaries;
  }

let summarize rows =
  let suites =
    List.sort_uniq compare (List.map (fun e -> e.suite) rows)
  in
  List.map
    (fun s ->
      let errs =
        List.filter_map
          (fun e -> if e.suite = s then Some e.err_pct else None)
          rows
      in
      {
        suite_name = s;
        entries = List.length errs;
        mean_err_pct = Bstats.mean (Array.of_list errs);
        max_err_pct = List.fold_left Float.max 0.0 errs;
      })
    suites

(* ------------------------------------------------------------------ *)
(* JSON *)

let timing_to_json (t : timing) =
  Json.Obj
    [
      ("mean_us", Json.Num t.mean_us);
      ("stddev_us", Json.Num t.stddev_us);
      ("ci_lo_us", Json.Num t.ci_lo_us);
      ("ci_hi_us", Json.Num t.ci_hi_us);
      ("samples", Json.int t.samples);
    ]

let entry_to_json (e : entry) =
  Json.Obj
    ([
       ("suite", Json.Str e.suite);
       ("workload", Json.Str e.workload);
       ("device", Json.Str e.device);
       ("config", Json.Str e.config);
       ("est_cycles", Json.Num e.est_cycles);
       ("sim_cycles", Json.Num e.sim_cycles);
       ("err_pct", Json.Num e.err_pct);
     ]
    (* calibrated columns appear only when a learn model was supplied,
       so pre-calibration reports keep their exact bytes *)
    @ (match e.cal_err_pct with
      | Some c -> [ ("cal_err_pct", Json.Num c) ]
      | None -> [])
    @ (match e.learn_schema with
      | Some v -> [ ("learn_schema", Json.int v) ]
      | None -> [])
    @ [
      ("engines_identical", Json.Bool e.engines_identical);
      ("warm", timing_to_json e.warm);
      ( "features",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) e.features) );
    ])

let summary_to_json (s : suite_summary) =
  Json.Obj
    [
      ("suite", Json.Str s.suite_name);
      ("entries", Json.int s.entries);
      ("mean_err_pct", Json.Num s.mean_err_pct);
      ("max_err_pct", Json.Num s.max_err_pct);
    ]

let to_json (r : t) =
  let r = normalize r in
  Json.Obj
    [
      ("kind", Json.Str kind);
      ("schema_version", Json.int schema_version);
      ("smoke", Json.Bool r.smoke);
      ("seed", Json.int r.seed);
      ("repeat", Json.int r.repeat);
      ("warmup", Json.int r.warmup);
      ("inner", Json.int r.inner);
      ("calibration_us", Json.Num r.calibration_us);
      ( "analysis_cache",
        Json.Obj
          [
            ("hits", Json.int r.analysis_cache.hits);
            ("misses", Json.int r.analysis_cache.misses);
            ("hit_rate", Json.Num (hit_rate r.analysis_cache));
          ] );
      ("entries", Json.Arr (List.map entry_to_json r.rows));
      ("suites", Json.Arr (List.map summary_to_json r.summaries));
    ]

let to_string r = Json.to_string (to_json r)

(* total decoders: every failure names the missing/ill-typed field *)

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)

let opt_field name conv j =
  match Json.member name j with
  | None -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "ill-typed field %S" name))

let timing_of_json j =
  let* mean_us = field "mean_us" Json.to_float j in
  let* stddev_us = field "stddev_us" Json.to_float j in
  let* ci_lo_us = field "ci_lo_us" Json.to_float j in
  let* ci_hi_us = field "ci_hi_us" Json.to_float j in
  let* samples = field "samples" Json.to_int j in
  Ok { mean_us; stddev_us; ci_lo_us; ci_hi_us; samples }

let features_of_json j =
  match j with
  | Json.Obj kvs ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_float v with
          | Some f -> Ok ((k, f) :: acc)
          | None -> Error (Printf.sprintf "feature %S is not a number" k))
        (Ok []) kvs
      |> Result.map List.rev
  | _ -> Error "features is not an object"

let entry_of_json j =
  let* suite = field "suite" Json.to_str j in
  let* workload = field "workload" Json.to_str j in
  let* device = field "device" Json.to_str j in
  let* config = field "config" Json.to_str j in
  let* est_cycles = field "est_cycles" Json.to_float j in
  let* sim_cycles = field "sim_cycles" Json.to_float j in
  let* err_pct = field "err_pct" Json.to_float j in
  (* optional calibrated columns: absent in pre-calibration reports and
     in runs without a model, but ill-typed values still fail loudly *)
  let* cal_err_pct = opt_field "cal_err_pct" Json.to_float j in
  let* learn_schema = opt_field "learn_schema" Json.to_int j in
  let* engines_identical = field "engines_identical" Json.to_bool j in
  let* warm = field "warm" (fun x -> Some x) j in
  let* warm = timing_of_json warm in
  let* features = field "features" (fun x -> Some x) j in
  let* features = features_of_json features in
  Ok
    {
      suite;
      workload;
      device;
      config;
      est_cycles;
      sim_cycles;
      err_pct;
      cal_err_pct;
      learn_schema;
      engines_identical;
      warm;
      features;
    }

let summary_of_json j =
  let* suite_name = field "suite" Json.to_str j in
  let* entries = field "entries" Json.to_int j in
  let* mean_err_pct = field "mean_err_pct" Json.to_float j in
  let* max_err_pct = field "max_err_pct" Json.to_float j in
  Ok { suite_name; entries; mean_err_pct; max_err_pct }

let list_of rows conv =
  List.fold_left
    (fun acc j ->
      let* acc = acc in
      let* v = conv j in
      Ok (v :: acc))
    (Ok []) rows
  |> Result.map List.rev

let of_json j =
  let* k = field "kind" Json.to_str j in
  if k <> kind then Error (Printf.sprintf "not a suite report (kind %S)" k)
  else
    let* version = field "schema_version" Json.to_int j in
    if version <> schema_version then
      Error
        (Printf.sprintf "unsupported schema_version %d (this build reads %d)"
           version schema_version)
    else
      let* smoke = field "smoke" Json.to_bool j in
      let* seed = field "seed" Json.to_int j in
      let* repeat = field "repeat" Json.to_int j in
      let* warmup = field "warmup" Json.to_int j in
      let* inner = field "inner" Json.to_int j in
      let* calibration_us = field "calibration_us" Json.to_float j in
      let* cache = field "analysis_cache" (fun x -> Some x) j in
      let* hits = field "hits" Json.to_int cache in
      let* misses = field "misses" Json.to_int cache in
      let* entries = field "entries" Json.to_list j in
      let* rows = list_of entries entry_of_json in
      let* summaries = field "suites" Json.to_list j in
      let* summaries = list_of summaries summary_of_json in
      Ok
        (normalize
           {
             smoke;
             seed;
             repeat;
             warmup;
             inner;
             calibration_us;
             analysis_cache = { hits; misses };
             rows;
             summaries;
           })

let of_string s =
  let* j = Json.of_string s in
  of_json j
