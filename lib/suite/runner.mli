(** Suite runner: measures a declarative entry matrix into a normalized
    {!Report.t}.

    Per entry: the analytical estimate is evaluated through all three
    engines — sequential [Model.estimate], the parallel sweep engine's
    [eval_batch] over worker domains, and the staged [Model.specialize]
    path — with bitwise identity recorded; the simrtl simulator supplies
    ground truth (seeded, so accuracy numbers are deterministic); warm
    per-point latency is measured with warmup, repetition and a
    deterministic bootstrap confidence interval; and the
    architecture-independent workload features are extracted. *)

type opts = {
  repeat : int;   (** timed samples per entry. *)
  warmup : int;   (** discarded warmup samples per entry. *)
  inner : int;    (** model evaluations averaged into one sample. *)
  seed : int;     (** simulator + bootstrap determinism. *)
  smoke : bool;   (** recorded in the report; gates match on it. *)
  domains : int;  (** worker domains for the parallel engine. *)
}

val default_opts : opts
val smoke_opts : opts

val calibrate : unit -> float
(** Microseconds for a fixed reference computation on this machine
    (best of 3); latencies are compared normalized by it. *)

val features :
  Flexcl_core.Analysis.t -> Flexcl_device.Device.t -> (string * float) list
(** The architecture-independent feature vector recorded per entry
    (alias of [Flexcl_learn.Learn.features], so the runner and the
    learned-residual predictor can never drift apart). *)

val calibrate_row :
  Flexcl_learn.Learn.model -> Report.entry -> Report.entry
(** Annotate one report row with [cal_err_pct] (and the model's
    [learn_schema] stamp) from the learned-residual prediction; rows
    naming a device unknown to {!Sdef.devices} are returned untouched. *)

val samples_of_report : Report.t -> Flexcl_learn.Learn.sample list
(** Turn a report's rows back into training samples for
    [Flexcl_learn.Learn.fit]/[crossval]; rows naming an unknown device
    are skipped. *)

val run :
  ?model:Flexcl_learn.Learn.model ->
  ?progress:(string -> unit) ->
  opts ->
  Sdef.entry list ->
  Report.t
(** Measure every entry (entries with no feasible candidate design
    point are skipped and reported through [progress]) and assemble the
    normalized report. When [model] is given, every row additionally
    carries the calibrated-error column ({!calibrate_row}). *)
