(** Suite runner: measures a declarative entry matrix into a normalized
    {!Report.t}.

    Per entry: the analytical estimate is evaluated through all three
    engines — sequential [Model.estimate], the parallel sweep engine's
    [eval_batch] over worker domains, and the staged [Model.specialize]
    path — with bitwise identity recorded; the simrtl simulator supplies
    ground truth (seeded, so accuracy numbers are deterministic); warm
    per-point latency is measured with warmup, repetition and a
    deterministic bootstrap confidence interval; and the
    architecture-independent workload features are extracted. *)

type opts = {
  repeat : int;   (** timed samples per entry. *)
  warmup : int;   (** discarded warmup samples per entry. *)
  inner : int;    (** model evaluations averaged into one sample. *)
  seed : int;     (** simulator + bootstrap determinism. *)
  smoke : bool;   (** recorded in the report; gates match on it. *)
  domains : int;  (** worker domains for the parallel engine. *)
}

val default_opts : opts
val smoke_opts : opts

val calibrate : unit -> float
(** Microseconds for a fixed reference computation on this machine
    (best of 3); latencies are compared normalized by it. *)

val features :
  Flexcl_core.Analysis.t -> Flexcl_device.Device.t -> (string * float) list
(** The architecture-independent feature vector recorded per entry. *)

val run :
  ?progress:(string -> unit) -> opts -> Sdef.entry list -> Report.t
(** Measure every entry (entries with no feasible candidate design
    point are skipped and reported through [progress]) and assemble the
    normalized report. *)
