(* Regression gate: diff a fresh suite report against a committed
   baseline and fail when accuracy worsens, engines diverge, coverage
   shrinks, or warm latency regresses beyond the measured noise band.

   Accuracy is deterministic (seeded simulator, pure model), so its gate
   is a tight absolute tolerance. Latency is noisy and machine-relative,
   so its gate (a) normalizes both sides by each report's calibration
   figure, cancelling machine speed, and (b) widens the tolerance by the
   bootstrap confidence intervals both reports measured — a regression
   only fires when the normalized mean moves beyond what the recorded
   noise explains, with a floor so routine jitter never gates. *)

type reason =
  | Accuracy
  | Suite_accuracy
  | Latency
  | Identity
  | Missing
  | Calibration
  | Calibration_schema

let reason_name = function
  | Accuracy -> "accuracy"
  | Suite_accuracy -> "suite-accuracy"
  | Latency -> "latency"
  | Identity -> "engine-identity"
  | Missing -> "missing-entry"
  | Calibration -> "calibration"
  | Calibration_schema -> "calibration-schema"

type offense = {
  id : string;       (* entry id or suite name *)
  reason : reason;
  baseline : float;
  current : float;
  limit : float;     (* the gate the current value crossed *)
  detail : string;
}

type thresholds = {
  accuracy_tol_pct : float;
      (* per-entry absolute error-percentage-point headroom *)
  suite_tol_pct : float;
      (* per-suite mean-error headroom *)
  latency_floor : float;
      (* minimum relative latency band, e.g. 1.5 = +150% *)
  noise_mult : float;
      (* how many combined CI half-widths the band also allows *)
}

let default_thresholds =
  {
    accuracy_tol_pct = 0.5;
    suite_tol_pct = 0.25;
    latency_floor = 1.5;
    noise_mult = 3.0;
  }

let rel_hw (t : Report.timing) =
  Bstats.rel_half_width ~mean:t.Report.mean_us
    { Bstats.lo = t.Report.ci_lo_us; hi = t.Report.ci_hi_us }

let check_entry th ~comparable ~(base : Report.entry) ~(cur : Report.entry)
    ~base_calib ~cur_calib =
  let id = Report.entry_id cur in
  let offenses = ref [] in
  let push o = offenses := o :: !offenses in
  (* calibrated-error column: only same-schema numbers are comparable;
     a model-schema bump across the diff always gates (coverage-shrink
     semantics — refresh the baseline deliberately, never silently) *)
  (match (base.Report.cal_err_pct, cur.Report.cal_err_pct) with
  | Some bc, Some cc ->
      let bs = Option.value base.Report.learn_schema ~default:(-1) in
      let cs = Option.value cur.Report.learn_schema ~default:(-1) in
      if bs <> cs then
        push
          {
            id;
            reason = Calibration_schema;
            baseline = float_of_int bs;
            current = float_of_int cs;
            limit = float_of_int bs;
            detail =
              Printf.sprintf
                "calibrated columns use learn schema %d vs baseline %d; \
                 refresh the baseline instead of comparing across schemas"
                cs bs;
          }
      else
        let cal_limit = bc +. th.accuracy_tol_pct in
        if cc > cal_limit then
          push
            {
              id;
              reason = Calibration;
              baseline = bc;
              current = cc;
              limit = cal_limit;
              detail =
                Printf.sprintf
                  "calibrated error vs simrtl rose %.2f%% -> %.2f%% \
                   (limit %.2f%%)"
                  bc cc cal_limit;
            }
  | Some bc, None ->
      (* the baseline carried a calibrated column and this run dropped
         it — coverage shrank; only comparable runs gate on it *)
      if comparable then
        push
          {
            id;
            reason = Calibration_schema;
            baseline = bc;
            current = 0.0;
            limit = bc;
            detail =
              "calibrated column present in baseline but absent from this \
               run (was the suite run without --model?)";
          }
  | None, _ -> ());
  if not cur.Report.engines_identical then
    push
      {
        id;
        reason = Identity;
        baseline = 1.0;
        current = 0.0;
        limit = 1.0;
        detail = "sequential/parallel/specialized engines disagree bitwise";
      };
  let acc_limit = base.Report.err_pct +. th.accuracy_tol_pct in
  if cur.Report.err_pct > acc_limit then
    push
      {
        id;
        reason = Accuracy;
        baseline = base.Report.err_pct;
        current = cur.Report.err_pct;
        limit = acc_limit;
        detail =
          Printf.sprintf
            "model error vs simrtl rose %.2f%% -> %.2f%% (limit %.2f%%)"
            base.Report.err_pct cur.Report.err_pct acc_limit;
      };
  (* normalized latency: machine speed cancels through calibration *)
  let norm calib (t : Report.timing) =
    if calib <= 0.0 then t.Report.mean_us else t.Report.mean_us /. calib
  in
  let nb = norm base_calib base.Report.warm in
  let nc = norm cur_calib cur.Report.warm in
  let band =
    Float.max th.latency_floor
      (th.noise_mult
      *. (rel_hw base.Report.warm +. rel_hw cur.Report.warm))
  in
  let lat_limit = nb *. (1.0 +. band) in
  if nb > 0.0 && nc > lat_limit then
    push
      {
        id;
        reason = Latency;
        baseline = nb;
        current = nc;
        limit = lat_limit;
        detail =
          Printf.sprintf
            "normalized warm latency rose %.4f -> %.4f (band +%.0f%%, \
             %.2f us -> %.2f us raw)"
            nb nc (band *. 100.0) base.Report.warm.Report.mean_us
            cur.Report.warm.Report.mean_us;
      };
  List.rev !offenses

let gate ?(thresholds = default_thresholds) ~(baseline : Report.t)
    ~(current : Report.t) () =
  let baseline = Report.normalize baseline in
  let current = Report.normalize current in
  let cur_by_id =
    List.map (fun e -> (Report.entry_id e, e)) current.Report.rows
  in
  let comparable = baseline.Report.smoke = current.Report.smoke in
  let entry_offenses =
    List.concat_map
      (fun (base : Report.entry) ->
        let id = Report.entry_id base in
        match List.assoc_opt id cur_by_id with
        | Some cur ->
            check_entry thresholds ~comparable ~base ~cur
              ~base_calib:baseline.Report.calibration_us
              ~cur_calib:current.Report.calibration_us
        | None ->
            (* coverage shrank — but only comparable runs gate on it:
               a smoke run diffed against a full baseline legitimately
               covers a subset *)
            if baseline.Report.smoke = current.Report.smoke then
              [
                {
                  id;
                  reason = Missing;
                  baseline = 1.0;
                  current = 0.0;
                  limit = 1.0;
                  detail = "entry present in baseline but absent from this run";
                };
              ]
            else [])
      baseline.Report.rows
  in
  (* per-suite mean error, over the suites both reports cover *)
  let suite_offenses =
    List.filter_map
      (fun (b : Report.suite_summary) ->
        match
          List.find_opt
            (fun (c : Report.suite_summary) ->
              c.Report.suite_name = b.Report.suite_name)
            current.Report.summaries
        with
        | None -> None
        | Some c ->
            let limit =
              b.Report.mean_err_pct +. thresholds.suite_tol_pct
            in
            if c.Report.mean_err_pct > limit then
              Some
                {
                  id = b.Report.suite_name;
                  reason = Suite_accuracy;
                  baseline = b.Report.mean_err_pct;
                  current = c.Report.mean_err_pct;
                  limit;
                  detail =
                    Printf.sprintf
                      "suite mean error rose %.2f%% -> %.2f%% (limit %.2f%%)"
                      b.Report.mean_err_pct c.Report.mean_err_pct limit;
                }
            else None)
      baseline.Report.summaries
  in
  (* the point of calibration: over this run's calibrated rows, the
     calibrated mean error must strictly beat the raw analytical mean.
     A model that stops paying for itself gates immediately. *)
  let calibration_offenses =
    let cal_rows =
      List.filter
        (fun (e : Report.entry) -> Option.is_some e.Report.cal_err_pct)
        current.Report.rows
    in
    if cal_rows = [] then []
    else
      let mean f =
        List.fold_left (fun acc e -> acc +. f e) 0.0 cal_rows
        /. float_of_int (List.length cal_rows)
      in
      let raw = mean (fun e -> e.Report.err_pct) in
      let cal =
        mean (fun e -> Option.value e.Report.cal_err_pct ~default:0.0)
      in
      if cal < raw then []
      else
        [
          {
            id = "suite";
            reason = Calibration;
            baseline = raw;
            current = cal;
            limit = raw;
            detail =
              Printf.sprintf
                "calibrated mean error %.2f%% does not beat the raw \
                 analytical mean %.2f%% over the %d calibrated rows"
                cal raw (List.length cal_rows);
          };
        ]
  in
  entry_offenses @ suite_offenses @ calibration_offenses

let render offenses =
  String.concat "\n"
    (List.map
       (fun o ->
         Printf.sprintf "REGRESSION [%s] %s: %s" (reason_name o.reason) o.id
           o.detail)
       offenses)
