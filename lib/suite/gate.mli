(** Regression gate: diff a fresh suite report against a committed
    baseline with noise-aware thresholds.

    Accuracy (deterministic: seeded simulator, pure model) gates on a
    tight absolute tolerance; warm latency (noisy, machine-relative)
    gates on calibration-normalized means with a band widened by the
    bootstrap confidence intervals both reports recorded, floored so
    routine jitter never fires. An empty offense list means the gate
    passes; gating a report against itself always passes (pinned by
    [test/test_suite.ml]). *)

type reason =
  | Accuracy
  | Suite_accuracy
  | Latency
  | Identity
  | Missing
  | Calibration
      (** a calibrated-error column regressed past the tolerance, or the
          run-wide calibrated mean stopped beating the raw mean. *)
  | Calibration_schema
      (** calibrated columns are not comparable: the learn-model schema
          version changed across the diff, or a column the baseline
          carried disappeared (coverage shrink — always gates between
          comparable runs). *)

val reason_name : reason -> string

type offense = {
  id : string;        (** offending entry id, or suite name. *)
  reason : reason;
  baseline : float;
  current : float;
  limit : float;      (** the gate value the current number crossed. *)
  detail : string;    (** human-readable one-liner. *)
}

type thresholds = {
  accuracy_tol_pct : float;
      (** per-entry headroom in error percentage points (default 0.5). *)
  suite_tol_pct : float;
      (** per-suite mean-error headroom (default 0.25). *)
  latency_floor : float;
      (** minimum relative latency band (default 1.5 = +150%): warm
          per-point latencies are sub-microsecond, so run-to-run jitter
          on shared hardware is routinely 2x; the regressions this gate
          exists for (losing a staged-specialization or cache win) are
          orders of magnitude. *)
  noise_mult : float;
      (** CI half-widths the band also allows (default 3). *)
}

val default_thresholds : thresholds

val gate :
  ?thresholds:thresholds ->
  baseline:Report.t ->
  current:Report.t ->
  unit ->
  offense list
(** All regressions of [current] vs [baseline]: per-entry accuracy,
    per-suite mean accuracy, engine-identity violations, normalized
    warm-latency regressions beyond the noise band, and — when both
    reports cover the same matrix kind ([smoke] flags equal) — baseline
    entries missing from the current run. Calibrated columns gate the
    same way as raw accuracy (same tolerance), but only within one
    learn-model schema version; a schema mismatch or a dropped column
    between comparable runs always gates. When the current run carries
    any calibrated rows, their calibrated mean error must additionally
    beat their raw analytical mean strictly. *)

val render : offense list -> string
(** One ["REGRESSION [kind] id: detail"] line per offense. *)
