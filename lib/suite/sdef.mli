(** Declarative benchmark-suite definitions (Phoronix-style): the matrix
    of (workload × device) entries a suite run measures. The estimate
    mode runs through all three engines (sequential, parallel,
    specialized) and the simrtl mode supplies ground truth — per entry,
    inside the runner — so the full evaluation matrix of the paper is
    one [entry list]. *)

module W = Flexcl_workloads.Workload
module Device = Flexcl_device.Device
module Config = Flexcl_core.Config

type entry = {
  suite : string;       (** ["rodinia"] or ["polybench"]. *)
  workload : W.t;
  device_name : string; (** ["xc7vx690t"] or ["xcku060"]. *)
  device : Device.t;
}

val devices : (string * Device.t) list
(** The device axis of the matrix, in report order. *)

val id : entry -> string
(** ["suite/benchmark/kernel\@device"] — matches {!Report.entry_id}. *)

val full : unit -> entry list
(** Every Rodinia and PolyBench workload on every device (the paper's
    full evaluation matrix; [make bench-suite]). *)

val smoke : unit -> entry list
(** The fast subset gating [make check]: both suites and both devices
    represented, seconds not minutes. *)

val smoke_workload_names : string list

val filter : string -> entry list -> entry list
(** Entries whose {!id} contains the pattern as a substring. *)

val candidate_configs : wg_size:int -> Config.t list
(** Design-point candidates for an entry, most-optimized first; the
    runner evaluates the first one feasible on the entry's device. *)
