(** Declarative benchmark-suite definitions (Phoronix-style): the matrix
    of (workload × device) entries a suite run measures. The estimate
    mode runs through all three engines (sequential, parallel,
    specialized) and the simrtl mode supplies ground truth — per entry,
    inside the runner — so the full evaluation matrix of the paper is
    one [entry list]. Multi-kernel pipeline graphs ride the same matrix
    as [Pipeline] entries, measured by the graph model against the
    co-simulated ground truth. *)

module W = Flexcl_workloads.Workload
module P = Flexcl_workloads.Pipelines
module Device = Flexcl_device.Device
module Config = Flexcl_core.Config

type payload =
  | Single of W.t      (** one kernel, one launch. *)
  | Pipeline of P.t    (** a kernel graph connected by [pipe] channels. *)

type entry = {
  suite : string;       (** ["rodinia"], ["polybench"] or ["pipeline"]. *)
  payload : payload;
  device_name : string; (** ["xc7vx690t"] or ["xcku060"]. *)
  device : Device.t;
}

val devices : (string * Device.t) list
(** The device axis of the matrix, in report order. *)

val workload_name : entry -> string
(** ["benchmark/kernel"] or ["benchmark/graph"]. *)

val id : entry -> string
(** ["suite/benchmark/kernel\@device"] — matches {!Report.entry_id}. *)

val work_items : entry -> int
(** Launch work-items (summed over stages for a pipeline entry). *)

val wg : entry -> int
(** Work-group size (first stage's for a pipeline entry). *)

val full : unit -> entry list
(** Every Rodinia and PolyBench workload plus every pipeline graph on
    every device (the paper's full evaluation matrix;
    [make bench-suite]). *)

val smoke : unit -> entry list
(** The fast subset gating [make check]: both suites, both devices and
    one pipeline graph represented, seconds not minutes. *)

val smoke_workload_names : string list

val filter : string -> entry list -> entry list
(** Entries whose {!id} contains the pattern as a substring. *)

val candidate_configs : wg_size:int -> Config.t list
(** Design-point candidates for an entry, most-optimized first; the
    runner evaluates the first one feasible on the entry's device
    (stage by stage for a pipeline entry). *)
