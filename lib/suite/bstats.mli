(** Statistics for the benchmark-suite harness.

    Everything here is pure OCaml and deterministic: the bootstrap
    resampling is driven by an explicit {!Flexcl_util.Prng} seed, so a
    suite run reproduces its confidence intervals bit-for-bit. *)

val mean : float array -> float
(** Arithmetic mean; [0.] on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; [0.] on arrays shorter than 2
    (matching {!Flexcl_util.Stats.stddev} on lists). *)

val percentile_sorted : float -> float array -> float
(** [percentile_sorted p sorted] with [p] clamped to [\[0,100\]], linear
    interpolation over an already-sorted array. Raises
    [Invalid_argument] on the empty array. *)

type ci = { lo : float; hi : float }
(** A two-sided confidence interval. *)

val default_replicates : int
(** Bootstrap resampling count used when [?replicates] is omitted. *)

val bootstrap_ci_mean :
  ?replicates:int -> ?confidence:float -> seed:int -> float array -> ci
(** [bootstrap_ci_mean ~seed xs] is the percentile-bootstrap confidence
    interval (default 95%) on the mean of [xs]: [replicates] resamples
    of size [|xs|] drawn with replacement from [xs], interval at the
    [(1±confidence)/2] percentiles of the resampled means. Same [seed],
    same data — same interval, bitwise. A singleton sample collapses to
    [{lo = x; hi = x}]. Raises [Invalid_argument] on an empty sample, a
    non-positive replicate count, or a confidence outside (0,1). *)

val ci_width : ci -> float
(** [hi - lo]. *)

val rel_half_width : mean:float -> ci -> float
(** [(hi - lo) / 2 / |mean|]; [0.] when the mean is 0 — the relative
    noise figure the regression gate widens its tolerance band by. *)
