(* Learned residual calibration (DESIGN.md §16).

   Everything here is closed-form and RNG-free: ridge on the normal
   equations via Cholesky, hyperparameters picked on a fixed grid by
   leave-one-kernel-out MAPE, interval bounds from empirical quantiles
   of the held-out errors. Samples are canonically sorted before any
   accumulation so the fit is bitwise permutation-invariant over
   training rows (float addition is not associative). *)

module Device = Flexcl_device.Device
module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Launch = Flexcl_ir.Launch
module Cdfg = Flexcl_ir.Cdfg
module Opcode = Flexcl_ir.Opcode
module Dram = Flexcl_dram.Dram
module Diag = Flexcl_util.Diag
module Json = Flexcl_util.Json

let schema_version = 1
let kind = "flexcl-learn-model"

(* ------------------------------------------------------------------ *)
(* Features *)

(* The recorded, architecture-independent vector (moved here from the
   suite runner; the device is consulted only for coalescing). *)
let features (a : Analysis.t) dev =
  let trip li = int_of_float (Float.round (Analysis.trip a li)) in
  let op_counts = Cdfg.weighted_op_counts ~trip a.Analysis.cdfg.Cdfg.body in
  let total = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 op_counts in
  let count pred =
    List.fold_left
      (fun acc (op, c) -> if pred op then acc +. c else acc)
      0.0 op_counts
  in
  let pattern_counts = Model.mean_pattern_counts a dev in
  let mem_txns =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 pattern_counts
  in
  [
    ("work_items", float_of_int (Launch.n_work_items a.Analysis.launch));
    ("wg_size", float_of_int (Launch.wg_size a.Analysis.launch));
    ("loops", float_of_int a.Analysis.cdfg.Cdfg.n_loops);
    ("uses_barrier", if a.Analysis.cdfg.Cdfg.uses_barrier then 1.0 else 0.0);
    ("ops_per_wi", total);
    ("mem_ops_per_wi", count Opcode.is_mem);
    ("global_ops_per_wi", count Opcode.is_global_access);
    ("local_ops_per_wi", count Opcode.is_local_access);
    ("mem_txns_per_wi", mem_txns);
  ]
  @ List.map
      (fun (p, c) -> ("txns_" ^ Dram.pattern_name p, c))
      pattern_counts

let log1p x = Stdlib.log1p (Float.max x 0.0)

(* Derived regression inputs. Logs tame the orders-of-magnitude spread
   of the raw counts; per-op ratios describe the kernel's memory
   intensity independent of its size; the multichannel interactions
   give the ridge a way to attribute the HBM/dual-DDR roofline
   residual to the specific Table-1 pattern that causes it without
   touching single-channel predictions. *)
let expand ~device feats =
  let get k = match List.assoc_opt k feats with Some v -> v | None -> 0.0 in
  let ops = get "ops_per_wi" in
  let per_op v = if ops > 0.0 then v /. ops else 0.0 in
  let n_channels = device.Device.dram.Dram.n_channels in
  let multi = if n_channels > 1 then 1.0 else 0.0 in
  let logs = List.map (fun (k, v) -> ("log_" ^ k, log1p v)) feats in
  let pattern_feats =
    List.filter_map
      (fun (k, v) ->
        if String.length k > 5 && String.sub k 0 5 = "txns_" then
          Some (String.sub k 5 (String.length k - 5), v)
        else None)
      feats
  in
  let derived =
    [
      ("uses_barrier", get "uses_barrier");
      ("mem_frac", per_op (get "mem_ops_per_wi"));
      ("glob_frac", per_op (get "global_ops_per_wi"));
      ("txn_per_op", per_op (get "mem_txns_per_wi"));
      ("dev_log_clock", log (float_of_int device.Device.clock_mhz));
      ("dev_log_dsp", log (float_of_int device.Device.dsp_total));
      ("dev_log_bram", log (float_of_int device.Device.bram_blocks));
      ("dev_log_max_cu", log (float_of_int device.Device.max_cu));
      ("dev_log_channels", log1p (float_of_int n_channels));
      ("dev_multi", multi);
      ("x_multi_log_txns", multi *. log1p (get "mem_txns_per_wi"));
      ("x_multi_txn_per_op", multi *. per_op (get "mem_txns_per_wi"));
      ("x_multi_mem_frac", multi *. per_op (get "mem_ops_per_wi"));
      ("x_multi_log_wi", multi *. log1p (get "work_items"));
    ]
    @ List.concat_map
        (fun (p, v) ->
          [
            ("frac_" ^ p, per_op v);
            ("x_multi_frac_" ^ p, multi *. per_op v);
            ("x_multi_log_" ^ p, multi *. log1p v);
          ])
        pattern_feats
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (logs @ derived)

(* ------------------------------------------------------------------ *)
(* Samples *)

type sample = {
  workload : string;
  device : Device.t;
  est_cycles : float;
  sim_cycles : float;
  features : (string * float) list;
}

let residual s = log (s.sim_cycles /. s.est_cycles)

let usable s =
  s.est_cycles > 0.0 && s.sim_cycles > 0.0
  && Float.is_finite s.est_cycles
  && Float.is_finite s.sim_cycles

(* Canonical sample order: the permutation-invariance pin. Feature
   lists are sorted per sample first so equal samples compare equal
   regardless of recording order. *)
let canonicalize samples =
  samples |> List.filter usable
  |> List.map (fun s ->
         {
           s with
           features = List.sort (fun (a, _) (b, _) -> compare a b) s.features;
         })
  |> List.sort (fun a b ->
         compare
           ( a.workload,
             a.device.Device.name,
             a.est_cycles,
             a.sim_cycles,
             a.features )
           ( b.workload,
             b.device.Device.name,
             b.est_cycles,
             b.sim_cycles,
             b.features ))

(* ------------------------------------------------------------------ *)
(* Linear algebra *)

let cholesky a =
  let n = Array.length a in
  let l = Array.make_matrix n n 0.0 in
  let exception Not_spd in
  try
    for i = 0 to n - 1 do
      for j = 0 to i do
        let s = ref a.(i).(j) in
        for k = 0 to j - 1 do
          s := !s -. (l.(i).(k) *. l.(j).(k))
        done;
        if i = j then
          if !s > 0.0 then l.(i).(i) <- sqrt !s else raise Not_spd
        else l.(i).(j) <- !s /. l.(j).(j)
      done
    done;
    Ok l
  with Not_spd -> Error "matrix is not positive definite"

let solve_spd a b =
  match cholesky a with
  | Error _ as e -> e
  | Ok l ->
      let n = Array.length b in
      let y = Array.make n 0.0 in
      for i = 0 to n - 1 do
        let s = ref b.(i) in
        for k = 0 to i - 1 do
          s := !s -. (l.(i).(k) *. y.(k))
        done;
        y.(i) <- !s /. l.(i).(i)
      done;
      let x = Array.make n 0.0 in
      for i = n - 1 downto 0 do
        let s = ref y.(i) in
        for k = i + 1 to n - 1 do
          s := !s -. (l.(k).(i) *. x.(k))
        done;
        x.(i) <- !s /. l.(i).(i)
      done;
      Ok x

type standardizer = { mu : float array; sigma : float array }

let standardizer_of rows =
  let n = Array.length rows in
  let p = if n = 0 then 0 else Array.length rows.(0) in
  let nf = float_of_int (max n 1) in
  let mu =
    Array.init p (fun j ->
        Array.fold_left (fun acc r -> acc +. r.(j)) 0.0 rows /. nf)
  in
  let sigma =
    Array.init p (fun j ->
        let v =
          Array.fold_left
            (fun acc r ->
              let d = r.(j) -. mu.(j) in
              acc +. (d *. d))
            0.0 rows
          /. nf
        in
        let s = sqrt v in
        if s > 0.0 then s else 1.0)
  in
  { mu; sigma }

let standardize s x = Array.mapi (fun j v -> (v -. s.mu.(j)) /. s.sigma.(j)) x
let unstandardize s z = Array.mapi (fun j v -> (v *. s.sigma.(j)) +. s.mu.(j)) z

(* ------------------------------------------------------------------ *)
(* Model and cross-validation types *)

type model = {
  feature_names : string array;
  mu : float array;
  sigma : float array;
  weights : float array;
  intercept : float;
  lambda : float;
  alpha : float;
  q_lo : float;
  q_hi : float;
  nominal_coverage : float;
  n_train : int;
  kernels : string list;
}

type fold_report = {
  kernel : string;
  rows : int;
  raw_mape : float;
  cal_mape : float;
}

type cv = {
  cv_lambda : float;
  cv_alpha : float;
  cv_coverage : float;
  achieved_coverage : float;
  cv_q_lo : float;
  cv_q_hi : float;
  n : int;
  n_kernels : int;
  mean_raw_mape : float;
  mean_cal_mape : float;
  folds : fold_report list;
}

(* ------------------------------------------------------------------ *)
(* The fitting core: unscaled ridge over a fixed feature basis *)

type core = {
  c_std : standardizer;
  c_w : float array;
  c_ybar : float;
}

let feature_row names s =
  let expanded = expand ~device:s.device s.features in
  Array.map
    (fun n ->
      match List.assoc_opt n expanded with Some v -> v | None -> 0.0)
    names

let union_names samples =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun (k, _) -> Hashtbl.replace tbl k ())
        (expand ~device:s.device s.features))
    samples;
  Hashtbl.fold (fun k () acc -> k :: acc) tbl []
  |> List.sort compare |> Array.of_list

(* Ridge on standardized features: (Z'Z/n + λI) w = Z'(y - ȳ)/n. *)
let fit_core names ~lambda samples =
  let x =
    Array.of_list (List.map (fun s -> feature_row names s) samples)
  in
  let y = Array.of_list (List.map residual samples) in
  let n = Array.length x in
  let p = Array.length names in
  let nf = float_of_int (max n 1) in
  let std = standardizer_of x in
  let z = Array.map (standardize std) x in
  let ybar = Array.fold_left ( +. ) 0.0 y /. nf in
  let a =
    Array.init p (fun i ->
        Array.init p (fun j ->
            let s = ref 0.0 in
            for r = 0 to n - 1 do
              s := !s +. (z.(r).(i) *. z.(r).(j))
            done;
            (!s /. nf) +. if i = j then lambda else 0.0))
  in
  let b =
    Array.init p (fun i ->
        let s = ref 0.0 in
        for r = 0 to n - 1 do
          s := !s +. (z.(r).(i) *. (y.(r) -. ybar))
        done;
        !s /. nf)
  in
  match solve_spd a b with
  | Error e -> Error e
  | Ok w -> Ok { c_std = std; c_w = w; c_ybar = ybar }

let core_predict core row =
  let z = standardize core.c_std row in
  let acc = ref core.c_ybar in
  Array.iteri (fun j wj -> acc := !acc +. (wj *. z.(j))) core.c_w;
  !acc

(* ------------------------------------------------------------------ *)
(* LOKO cross-validation and hyperparameter selection *)

let lambda_grid = [ 0.001; 0.003; 0.01; 0.03; 0.1; 0.3 ]
let alpha_grid = [ 0.25; 0.5; 0.75; 1.0 ]
let default_lambda = 0.3
let default_alpha = 1.0
let default_coverage = 0.9

let distinct_kernels samples =
  List.sort_uniq compare (List.map (fun s -> s.workload) samples)

let loko_folds samples =
  let samples = canonicalize samples in
  List.map
    (fun k ->
      ( k,
        List.filter (fun s -> s.workload <> k) samples,
        List.filter (fun s -> s.workload = k) samples ))
    (distinct_kernels samples)

let cal_err ~alpha ~that s =
  let cal = s.est_cycles *. exp (alpha *. that) in
  100.0 *. Float.abs (cal -. s.sim_cycles) /. s.sim_cycles

let raw_err s = 100.0 *. Float.abs (s.est_cycles -. s.sim_cycles) /. s.sim_cycles

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

(* Linear-interpolation percentile on a sorted array (the Bstats
   convention, reimplemented locally: util must not depend on learn
   nor learn on suite). *)
let percentile_sorted v pct =
  let n = Array.length v in
  if n = 0 then 0.0
  else
    let pos = pct /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (lo + 1) (n - 1) in
    v.(lo) +. ((v.(hi) -. v.(lo)) *. (pos -. float_of_int lo))

(* Held-out predictions per λ: one fit per fold, shared by every α. *)
let loko_predictions samples lambda =
  let names = union_names samples in
  List.concat_map
    (fun (_, train, held) ->
      match fit_core names ~lambda train with
      | Error _ ->
          (* unreachable for λ > 0 (A stays SPD); predict no correction *)
          List.map (fun s -> (s, 0.0)) held
      | Ok core ->
          List.map (fun s -> (s, core_predict core (feature_row names s))) held)
    (loko_folds samples)

let select_hyper ?lambda ?alpha samples =
  let lambdas = match lambda with Some l -> [ l ] | None -> lambda_grid in
  let alphas = match alpha with Some a -> [ a ] | None -> alpha_grid in
  let best = ref None in
  List.iter
    (fun lam ->
      let preds = loko_predictions samples lam in
      List.iter
        (fun al ->
          let m =
            mean (List.map (fun (s, t) -> cal_err ~alpha:al ~that:t s) preds)
          in
          match !best with
          | Some (bm, _, _, _) when bm <= m -> ()
          | _ -> best := Some (m, lam, al, preds))
        alphas)
    lambdas;
  match !best with
  | Some (_, lam, al, preds) -> (lam, al, preds)
  | None -> (default_lambda, default_alpha, [])

let no_samples_diag () =
  Diag.error Usage_error
    "learn: no usable samples (need est_cycles > 0 and sim_cycles > 0)"

let quantiles ~coverage errs =
  let errs = List.sort compare errs |> Array.of_list in
  let tail = (1.0 -. coverage) /. 2.0 *. 100.0 in
  let q_lo = percentile_sorted errs tail in
  let q_hi = percentile_sorted errs (100.0 -. tail) in
  (errs, q_lo, q_hi)

let crossval ?lambda ?alpha ?(coverage = default_coverage) samples =
  let samples = canonicalize samples in
  let kernels = distinct_kernels samples in
  if samples = [] then Error (no_samples_diag ())
  else if List.length kernels < 2 then
    Error
      (Diag.error Usage_error
         "learn: cross-validation needs at least 2 distinct kernels, got %d"
         (List.length kernels))
  else
    let lam, al, preds = select_hyper ?lambda ?alpha samples in
    let errs, q_lo, q_hi =
      quantiles ~coverage
        (List.map (fun (s, t) -> residual s -. (al *. t)) preds)
    in
    let inside =
      Array.fold_left
        (fun acc e -> if q_lo <= e && e <= q_hi then acc + 1 else acc)
        0 errs
    in
    let folds =
      List.map
        (fun k ->
          let rows = List.filter (fun (s, _) -> s.workload = k) preds in
          {
            kernel = k;
            rows = List.length rows;
            raw_mape = mean (List.map (fun (s, _) -> raw_err s) rows);
            cal_mape =
              mean (List.map (fun (s, t) -> cal_err ~alpha:al ~that:t s) rows);
          })
        kernels
    in
    Ok
      {
        cv_lambda = lam;
        cv_alpha = al;
        cv_coverage = coverage;
        achieved_coverage =
          float_of_int inside /. float_of_int (max 1 (Array.length errs));
        cv_q_lo = q_lo;
        cv_q_hi = q_hi;
        n = List.length samples;
        n_kernels = List.length kernels;
        mean_raw_mape = mean (List.map (fun (s, _) -> raw_err s) preds);
        mean_cal_mape =
          mean (List.map (fun (s, t) -> cal_err ~alpha:al ~that:t s) preds);
        folds;
      }

let fit ?lambda ?alpha ?(coverage = default_coverage) samples =
  let samples = canonicalize samples in
  if samples = [] then Error (no_samples_diag ())
  else
    let kernels = distinct_kernels samples in
    let multi_kernel = List.length kernels >= 2 in
    let lam, al, preds =
      if multi_kernel then select_hyper ?lambda ?alpha samples
      else
        ( Option.value lambda ~default:default_lambda,
          Option.value alpha ~default:default_alpha,
          [] )
    in
    let names = union_names samples in
    match fit_core names ~lambda:lam samples with
    | Error e -> Error (Diag.error Model_error "learn: fit failed: %s" e)
    | Ok core ->
        (* interval from held-out errors when LOKO ran, else training *)
        let _, q_lo, q_hi =
          quantiles ~coverage
            (if preds <> [] then
               List.map (fun (s, t) -> residual s -. (al *. t)) preds
             else
               List.map
                 (fun s ->
                   residual s
                   -. (al *. core_predict core (feature_row names s)))
                 samples)
        in
        Ok
          {
            feature_names = names;
            mu = core.c_std.mu;
            sigma = core.c_std.sigma;
            weights = Array.map (fun w -> al *. w) core.c_w;
            intercept = al *. core.c_ybar;
            lambda = lam;
            alpha = al;
            q_lo;
            q_hi;
            nominal_coverage = coverage;
            n_train = List.length samples;
            kernels;
          }

(* ------------------------------------------------------------------ *)
(* Prediction *)

type calibrated = { raw : float; cycles : float; lo : float; hi : float }

let predict_residual m ~device feats =
  let expanded = expand ~device feats in
  let acc = ref m.intercept in
  Array.iteri
    (fun j name ->
      let v =
        match List.assoc_opt name expanded with Some v -> v | None -> 0.0
      in
      acc := !acc +. (m.weights.(j) *. ((v -. m.mu.(j)) /. m.sigma.(j))))
    m.feature_names;
  !acc

let calibrate m ~device ~est feats =
  let that = predict_residual m ~device feats in
  let cycles = est *. exp that in
  let lo = est *. exp (that +. m.q_lo) in
  let hi = est *. exp (that +. m.q_hi) in
  { raw = est; cycles; lo = Float.min lo cycles; hi = Float.max hi cycles }

let calibrated_estimate m dev a cfg =
  match Model.estimate_result dev a cfg with
  | Error d -> Error d
  | Ok bd -> Ok (calibrate m ~device:dev ~est:bd.Model.cycles (features a dev))

(* ------------------------------------------------------------------ *)
(* The artifact codec *)

let model_to_json m =
  Json.Obj
    [
      ("kind", Json.Str kind);
      ("schema_version", Json.int schema_version);
      ("lambda", Json.Num m.lambda);
      ("alpha", Json.Num m.alpha);
      ("coverage", Json.Num m.nominal_coverage);
      ("q_lo", Json.Num m.q_lo);
      ("q_hi", Json.Num m.q_hi);
      ("intercept", Json.Num m.intercept);
      ("n_train", Json.int m.n_train);
      ("kernels", Json.Arr (List.map (fun k -> Json.Str k) m.kernels));
      ( "features",
        Json.Arr
          (Array.to_list
             (Array.mapi
                (fun j name ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("mu", Json.Num m.mu.(j));
                      ("sigma", Json.Num m.sigma.(j));
                      ("weight", Json.Num m.weights.(j));
                    ])
                m.feature_names)) );
    ]

let model_to_string m = Json.to_string (model_to_json m) ^ "\n"

let decode_error fmt = Printf.ksprintf (fun s -> Diag.make Usage_error s) fmt

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (decode_error "model artifact: bad or missing field %S" name)

let ( let* ) = Result.bind

let model_of_json j =
  let* k = field "kind" Json.to_str j in
  if k <> kind then
    Error (decode_error "model artifact: foreign kind %S (want %S)" k kind)
  else
    let* v = field "schema_version" Json.to_int j in
    if v <> schema_version then
      Error
        (decode_error "model artifact: unknown schema_version %d (want %d)" v
           schema_version)
    else
      let* lambda = field "lambda" Json.to_float j in
      let* alpha = field "alpha" Json.to_float j in
      let* coverage = field "coverage" Json.to_float j in
      let* q_lo = field "q_lo" Json.to_float j in
      let* q_hi = field "q_hi" Json.to_float j in
      let* intercept = field "intercept" Json.to_float j in
      let* n_train = field "n_train" Json.to_int j in
      let* kernel_js = field "kernels" Json.to_list j in
      let* kernels =
        List.fold_right
          (fun kj acc ->
            let* acc = acc in
            match Json.to_str kj with
            | Some s -> Ok (s :: acc)
            | None -> Error (decode_error "model artifact: non-string kernel"))
          kernel_js (Ok [])
      in
      let* feat_js = field "features" Json.to_list j in
      let* feats =
        List.fold_right
          (fun fj acc ->
            let* acc = acc in
            let* name = field "name" Json.to_str fj in
            let* mu = field "mu" Json.to_float fj in
            let* sigma = field "sigma" Json.to_float fj in
            let* weight = field "weight" Json.to_float fj in
            Ok ((name, mu, sigma, weight) :: acc))
          feat_js (Ok [])
      in
      if List.for_all (fun (_, _, s, _) -> s > 0.0) feats then
        Ok
          {
            feature_names =
              Array.of_list (List.map (fun (n, _, _, _) -> n) feats);
            mu = Array.of_list (List.map (fun (_, m, _, _) -> m) feats);
            sigma = Array.of_list (List.map (fun (_, _, s, _) -> s) feats);
            weights = Array.of_list (List.map (fun (_, _, _, w) -> w) feats);
            intercept;
            lambda;
            alpha;
            q_lo;
            q_hi;
            nominal_coverage = coverage;
            n_train;
            kernels;
          }
      else Error (decode_error "model artifact: non-positive feature sigma")

let model_of_string s =
  match Json.of_string (String.trim s) with
  | Error e -> Error (decode_error "model artifact: %s" e)
  | Ok j -> model_of_json j

(* ------------------------------------------------------------------ *)
(* Crossval report codec (write-only: consumed by humans and cram) *)

let cv_to_json c =
  Json.Obj
    [
      ("kind", Json.Str "flexcl-learn-crossval");
      ("schema_version", Json.int schema_version);
      ("lambda", Json.Num c.cv_lambda);
      ("alpha", Json.Num c.cv_alpha);
      ("coverage", Json.Num c.cv_coverage);
      ("achieved_coverage", Json.Num c.achieved_coverage);
      ("q_lo", Json.Num c.cv_q_lo);
      ("q_hi", Json.Num c.cv_q_hi);
      ("entries", Json.int c.n);
      ("kernels", Json.int c.n_kernels);
      ("mean_raw_mape", Json.Num c.mean_raw_mape);
      ("mean_cal_mape", Json.Num c.mean_cal_mape);
      ( "folds",
        Json.Arr
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("kernel", Json.Str f.kernel);
                   ("rows", Json.int f.rows);
                   ("raw_mape", Json.Num f.raw_mape);
                   ("cal_mape", Json.Num f.cal_mape);
                 ])
             c.folds) );
    ]

let cv_to_string c = Json.to_string (cv_to_json c) ^ "\n"
