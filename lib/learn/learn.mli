(** Learned residual calibration (DESIGN.md §16).

    FlexCL's analytical estimate is closed-form, so its residual against
    the simrtl ground truth is systematic and learnable (Johnston et
    al., PAPERS.md). This module fits a pure-OCaml ridge regression to
    the log-ratio [ln (sim / est)] over the suite's
    architecture-independent feature vector expanded with device
    descriptors and multichannel interaction terms, entirely
    closed-form: standardized features, normal equations, Cholesky
    solve — no RNG anywhere in the fit path, so the same samples
    produce the same model bytes.

    Hyperparameters (the ridge strength λ and a prediction shrinkage α)
    are selected on a fixed grid by leave-one-kernel-out (LOKO)
    cross-validation: every fold holds out all rows of one workload, so
    the reported MAPE is a generalization claim, not a training score.
    The empirical prediction interval comes from the 5%/95% quantiles
    of the held-out log-residual errors. *)

module Device = Flexcl_device.Device
module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Diag = Flexcl_util.Diag
module Json = Flexcl_util.Json

val schema_version : int
val kind : string
(** Model-artifact identity ([{"kind":"flexcl-learn-model",...}]). *)

(* ------------------------------------------------------------------ *)
(** {1 Features} *)

val features : Analysis.t -> Device.t -> (string * float) list
(** Architecture-independent workload descriptors (Johnston et al.):
    launch geometry, op mix, loop/barrier structure and per-pattern
    Table-1 memory transaction counts. This is the vector the suite
    records per entry in [BENCH_suite.json] (the device is consulted
    only for transaction coalescing, it contributes no fields). *)

val expand : device:Device.t -> (string * float) list -> (string * float) list
(** The derived regression inputs, sorted by name: [log1p] of every
    recorded feature, per-op intensity ratios, device descriptors
    (clock, DSP/BRAM budgets, channel count) and
    multichannel × memory-pattern interaction terms. Total over any
    input; unknown features simply contribute their transform. *)

(* ------------------------------------------------------------------ *)
(** {1 Samples} *)

type sample = {
  workload : string;       (** LOKO grouping key ["benchmark/kernel"]. *)
  device : Device.t;
  est_cycles : float;      (** analytical estimate (> 0 to be usable). *)
  sim_cycles : float;      (** simrtl ground truth (> 0 to be usable). *)
  features : (string * float) list;  (** recorded vector, un-expanded. *)
}

val residual : sample -> float
(** The regression target [ln (sim_cycles /. est_cycles)]. *)

(* ------------------------------------------------------------------ *)
(** {1 Linear algebra (exposed for the property suite)} *)

val cholesky : float array array -> (float array array, string) result
(** Lower-triangular L with [L L^T = A] for a symmetric positive
    definite [A]; [Error] if a pivot is not strictly positive. *)

val solve_spd : float array array -> float array -> (float array, string) result
(** [solve_spd a b] solves [A x = b] by {!cholesky} plus forward and
    back substitution. *)

type standardizer = { mu : float array; sigma : float array }

val standardizer_of : float array array -> standardizer
(** Per-column mean and population stddev over the rows; a constant
    column gets [sigma = 1] so standardization stays total. *)

val standardize : standardizer -> float array -> float array
val unstandardize : standardizer -> float array -> float array
(** [unstandardize s (standardize s x) = x] elementwise. *)

(* ------------------------------------------------------------------ *)
(** {1 The model artifact} *)

type model = {
  feature_names : string array;  (** sorted; parallel to the arrays. *)
  mu : float array;
  sigma : float array;
  weights : float array;         (** pre-scaled by [alpha]. *)
  intercept : float;             (** pre-scaled by [alpha]. *)
  lambda : float;
  alpha : float;                 (** prediction shrinkage in (0, 1]. *)
  q_lo : float;                  (** empirical log-residual quantiles *)
  q_hi : float;                  (** bounding the prediction interval. *)
  nominal_coverage : float;
  n_train : int;
  kernels : string list;         (** sorted distinct training workloads. *)
}

val model_to_json : model -> Json.t
val model_to_string : model -> string
(** Canonical bytes: fixed field order, features sorted by name,
    deterministic float printing; [model_of_string |> model_to_string]
    is the identity on bytes. *)

val model_of_json : Json.t -> (model, Diag.t) result
val model_of_string : string -> (model, Diag.t) result
(** Total decoders; foreign [kind]s, unknown [schema_version]s and
    malformed fields are rejected with a [Diag] naming the offense. *)

(* ------------------------------------------------------------------ *)
(** {1 Fitting and cross-validation} *)

val lambda_grid : float list
val alpha_grid : float list
(** The fixed hyperparameter grids LOKO selection searches (ascending;
    ties keep the earliest grid point, so selection is deterministic). *)

val loko_folds : sample list -> (string * sample list * sample list) list
(** [(kernel, train, held_out)] per distinct workload, sorted by
    kernel: every sample of the kernel is in [held_out] and none in
    [train], and each kernel appears exactly once. *)

val fit :
  ?lambda:float ->
  ?alpha:float ->
  ?coverage:float ->
  sample list ->
  (model, Diag.t) result
(** Fit on every usable sample (both cycle counts strictly positive).
    Unset hyperparameters are selected by LOKO grid search when the
    samples span at least two workloads, otherwise they fall back to
    deterministic defaults. The prediction interval uses held-out
    errors when LOKO ran, training errors otherwise. [Error] when no
    usable sample remains. *)

type fold_report = {
  kernel : string;
  rows : int;
  raw_mape : float;  (** mean [err_pct] of the held-out rows. *)
  cal_mape : float;  (** mean calibrated error of the held-out rows. *)
}

type cv = {
  cv_lambda : float;
  cv_alpha : float;
  cv_coverage : float;           (** nominal. *)
  achieved_coverage : float;     (** share of held-out errors inside
                                     [[cv_q_lo, cv_q_hi]]. *)
  cv_q_lo : float;
  cv_q_hi : float;
  n : int;                       (** usable rows. *)
  n_kernels : int;
  mean_raw_mape : float;         (** over rows, uncalibrated. *)
  mean_cal_mape : float;         (** over rows, per-kernel-held-out. *)
  folds : fold_report list;      (** sorted by kernel. *)
}

val crossval :
  ?lambda:float ->
  ?alpha:float ->
  ?coverage:float ->
  sample list ->
  (cv, Diag.t) result
(** Leave-one-kernel-out report over the usable samples; every
    calibrated error is computed by a model that never saw the row's
    workload. [Error] (usage) when fewer than two distinct workloads
    remain. *)

val cv_to_json : cv -> Json.t
val cv_to_string : cv -> string
(** Canonical bytes (same discipline as the model artifact). *)

(* ------------------------------------------------------------------ *)
(** {1 Prediction} *)

type calibrated = {
  raw : float;     (** the uncalibrated analytical estimate. *)
  cycles : float;  (** [raw *. exp predicted_residual]. *)
  lo : float;      (** interval endpoints from the stored quantiles; *)
  hi : float;      (** [lo <= cycles <= hi] always holds. *)
}

val predict_residual : model -> device:Device.t -> (string * float) list -> float
(** Predicted log-residual for a recorded (un-expanded) feature
    vector; features the model never saw are ignored, features it saw
    but the vector lacks count as zero. *)

val calibrate :
  model -> device:Device.t -> est:float -> (string * float) list -> calibrated

val calibrated_estimate :
  model -> Device.t -> Analysis.t -> Config.t -> (calibrated, Diag.t) result
(** The end-to-end path [predict --calibrated] and serve use: the
    sequential analytical estimate, then {!calibrate} over
    {!features}. *)
