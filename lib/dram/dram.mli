(** Off-chip global memory (DRAM) model: banked architecture with
    row-buffers, byte-interleaved data mapping, automatic coalescing of
    consecutive accesses, and the eight access patterns of the paper's
    Table 1 (read/write × after-read/after-write × row-buffer hit/miss).

    Two views of the same architecture coexist:
    {ul
    {- the {e analytical} view used by FlexCL — pattern counts multiplied
       by micro-benchmark-profiled average pattern latencies
       ({!pattern_counts}, {!profile_latencies});}
    {- the {e stateful} view used by the ground-truth simulator — a
       cycle-accurate bank state machine with open-row tracking, refresh
       and queuing ({!Sim}).}} *)

type kind = Read | Write

type pattern = {
  kind : kind;       (** this access. *)
  prev : kind;       (** previous access to the same bank. *)
  row_hit : bool;    (** row-buffer hit or miss. *)
}

val all_patterns : pattern list
(** The 8 patterns of Table 1, in the paper's order (hits before misses,
    RAR/RAW/WAR/WAW within each). *)

val pattern_name : pattern -> string
(** e.g. ["RAR.hit"], ["WAW.miss"]. Note the paper's mnemonic: [RAW] is a
    {e read} access after a {e write}. *)

type config = {
  n_channels : int;          (** independent channels (1 = classic DDR). *)
  n_banks : int;             (** banks per channel. *)
  row_bytes : int;           (** row-buffer size per bank. *)
  interleave_bytes : int;    (** interleaving granularity across banks. *)
  access_unit_bits : int;    (** coalesced transaction width (512 in SDAccel). *)
  t_cas : int;               (** column access latency (cycles). *)
  t_rcd : int;               (** row activate latency. *)
  t_rp : int;                (** precharge latency. *)
  t_bus : int;               (** data transfer per transaction. *)
  t_wtr : int;               (** write-to-read turnaround. *)
  t_rtw : int;               (** read-to-write turnaround. *)
  refresh_interval : int;    (** cycles between refreshes ({!Sim} only). *)
  t_rfc : int;               (** refresh duration ({!Sim} only). *)
  queue_depth : int;         (** outstanding-transaction slots per channel
                                 ({!Sim} and the model's roofline);
                                 0 = unbounded. *)
}

val ddr3_config : config
(** The evaluation board's DDR3: one channel, 8 banks, 1 KB row buffer,
    512-bit access unit, timing in 200 MHz kernel-clock cycles. *)

val hbm2_config : config
(** Alveo U280-class HBM2: 32 pseudo-channels, 16 banks each, 256-bit
    access unit and a bounded (8-deep) outstanding-transaction queue per
    channel. *)

(** {2 Channel addressing} *)

val chan_region : int
(** Each channel owns a disjoint [2{^40}]-byte address region; a
    buffer's base address encodes its channel. Addresses below
    {!chan_region} (everything a 1-channel device ever issues) decode
    exactly as in the single-controller model. *)

val chan_of : config -> int -> int
(** Channel that services an address (always 0 on 1-channel configs). *)

(** {2 Address layout} *)

type layout
(** Assignment of row-aligned base addresses to named buffers. *)

type placement = (string * int) list
(** Buffer-name → channel binding; buffers not named ride on channel 0. *)

val placement_error : config -> placement -> buffers:string list -> string option
(** [Some msg] when the placement names a buffer the kernel does not
    have or a channel the device does not have; [None] when valid. *)

val layout : ?placement:placement -> (string * int) list -> layout
(** [layout [(name, bytes); ...]] places buffers consecutively in
    declaration order, each aligned up to a row boundary, within their
    channel's address region ({!chan_region}); with no [placement]
    every buffer lands on channel 0, reproducing the single-controller
    layout byte for byte. *)

val base : layout -> string -> int
(** Base address of a buffer; raises [Invalid_argument] naming the
    unknown buffer and the buffers the layout does hold (classified as a
    model-stage diagnostic by the total [_result] API). *)

val address : layout -> string -> elem_bits:int -> int -> int
(** Byte address of element [i] of a buffer. *)

(** {2 Transactions and patterns} *)

type txn = { addr : int; t_kind : kind; bytes : int }

val coalesce : config -> layout -> Flexcl_interp.Interp.access list -> txn list
(** Merge runs of consecutive same-kind accesses into transactions of at
    most [access_unit_bits] (the coalescing factor
    [f = unit_size / elem_bits] of §3.4). Program order is preserved. *)

val coalesce_workgroup :
  config ->
  layout ->
  Flexcl_interp.Interp.access list array ->
  txn list
(** Coalescing across the work-item pipeline, the way SDAccel's memory
    interface sees a work-group: when every work-item performs the same
    access sequence (uniform control flow), the i-th access site of all
    work-items issues back-to-back, so the stream is transposed
    site-major before merging — [a\[gid\]] across 16 int-typed work-items
    becomes one 512-bit transaction. Non-uniform traces fall back to
    work-item-major concatenation. *)

val bank_of : config -> int -> int
val row_of : config -> int -> int

val pattern_counts : ?warmup:txn list -> config -> txn list -> (pattern * int) list
(** Classify a transaction stream: per-channel per-bank open-row and
    last-kind state, first access to each channel's bank counts as a
    miss after read. All 8 patterns appear in the result (possibly with
    count 0), in Table-1 order. [warmup] transactions update the bank
    state without being counted — FlexCL replays the profiled stream
    once before measuring so that resident buffers show their
    steady-state row-hit behaviour. Always the elementwise sum of
    {!pattern_counts_by_channel}. *)

val pattern_counts_by_channel :
  ?warmup:txn list -> config -> txn list -> (pattern * int) list array
(** Per-channel pattern counts (index = channel), same classification
    and warmup semantics as {!pattern_counts}; each channel's bank state
    is independent, so the first access to a bank of {e each} channel is
    a miss after read. *)

val pattern_latency : config -> pattern -> int
(** Closed-form service cycles of one isolated transaction of the given
    pattern (the quantity the micro-benchmarks measure): hits issue one
    column command, misses precharge + activate + column (§3.4). *)

val profile_latencies : config -> (pattern * float) list
(** Micro-benchmark profiling: for each pattern, run a synthetic
    single-bank stream that exhibits it through {!Sim} and average the
    per-transaction latency. This is the table FlexCL multiplies pattern
    counts with (Eq. 9); it differs from {!pattern_latency} by the
    refresh overhead the micro-benchmark stream absorbs. *)

(** {2 Stateful simulation} *)

module Sim : sig
  type t

  val create : config -> t

  val access : t -> now:int -> txn -> int
  (** [access t ~now txn] services a transaction that arrives at cycle
      [now]; returns its completion cycle. Models bank busy time, open-row
      switches, read/write turnaround and periodic refresh. [now] must not
      decrease between calls. *)

  val completed_reads : t -> int
  val completed_writes : t -> int
end
