(** Off-chip global memory (DRAM) model: banked architecture with
    row-buffers, byte-interleaved data mapping, automatic coalescing of
    consecutive accesses, and the eight access patterns of the paper's
    Table 1 (read/write × after-read/after-write × row-buffer hit/miss).

    Two views of the same architecture coexist:
    {ul
    {- the {e analytical} view used by FlexCL — pattern counts multiplied
       by micro-benchmark-profiled average pattern latencies
       ({!pattern_counts}, {!profile_latencies});}
    {- the {e stateful} view used by the ground-truth simulator — a
       cycle-accurate bank state machine with open-row tracking, refresh
       and queuing ({!Sim}).}} *)

type kind = Read | Write

type pattern = {
  kind : kind;       (** this access. *)
  prev : kind;       (** previous access to the same bank. *)
  row_hit : bool;    (** row-buffer hit or miss. *)
}

val all_patterns : pattern list
(** The 8 patterns of Table 1, in the paper's order (hits before misses,
    RAR/RAW/WAR/WAW within each). *)

val pattern_name : pattern -> string
(** e.g. ["RAR.hit"], ["WAW.miss"]. Note the paper's mnemonic: [RAW] is a
    {e read} access after a {e write}. *)

type config = {
  n_banks : int;
  row_bytes : int;           (** row-buffer size per bank. *)
  interleave_bytes : int;    (** interleaving granularity across banks. *)
  access_unit_bits : int;    (** coalesced transaction width (512 in SDAccel). *)
  t_cas : int;               (** column access latency (cycles). *)
  t_rcd : int;               (** row activate latency. *)
  t_rp : int;                (** precharge latency. *)
  t_bus : int;               (** data transfer per transaction. *)
  t_wtr : int;               (** write-to-read turnaround. *)
  t_rtw : int;               (** read-to-write turnaround. *)
  refresh_interval : int;    (** cycles between refreshes ({!Sim} only). *)
  t_rfc : int;               (** refresh duration ({!Sim} only). *)
}

val ddr3_config : config
(** The evaluation board's DDR3: 8 banks, 1 KB row buffer, 512-bit
    access unit, timing in 200 MHz kernel-clock cycles. *)

(** {2 Address layout} *)

type layout
(** Assignment of row-aligned base addresses to named buffers. *)

val layout : (string * int) list -> layout
(** [layout [(name, bytes); ...]] places buffers consecutively in
    declaration order, each aligned up to a row boundary. *)

val base : layout -> string -> int
(** Base address of a buffer; raises [Invalid_argument] naming the
    unknown buffer and the buffers the layout does hold (classified as a
    model-stage diagnostic by the total [_result] API). *)

val address : layout -> string -> elem_bits:int -> int -> int
(** Byte address of element [i] of a buffer. *)

(** {2 Transactions and patterns} *)

type txn = { addr : int; t_kind : kind; bytes : int }

val coalesce : config -> layout -> Flexcl_interp.Interp.access list -> txn list
(** Merge runs of consecutive same-kind accesses into transactions of at
    most [access_unit_bits] (the coalescing factor
    [f = unit_size / elem_bits] of §3.4). Program order is preserved. *)

val coalesce_workgroup :
  config ->
  layout ->
  Flexcl_interp.Interp.access list array ->
  txn list
(** Coalescing across the work-item pipeline, the way SDAccel's memory
    interface sees a work-group: when every work-item performs the same
    access sequence (uniform control flow), the i-th access site of all
    work-items issues back-to-back, so the stream is transposed
    site-major before merging — [a\[gid\]] across 16 int-typed work-items
    becomes one 512-bit transaction. Non-uniform traces fall back to
    work-item-major concatenation. *)

val bank_of : config -> int -> int
val row_of : config -> int -> int

val pattern_counts : ?warmup:txn list -> config -> txn list -> (pattern * int) list
(** Classify a transaction stream: per-bank open-row and last-kind state,
    first access to a bank counts as a miss after read. All 8 patterns
    appear in the result (possibly with count 0), in Table-1 order.
    [warmup] transactions update the bank state without being counted —
    FlexCL replays the profiled stream once before measuring so that
    resident buffers show their steady-state row-hit behaviour. *)

val pattern_latency : config -> pattern -> int
(** Closed-form service cycles of one isolated transaction of the given
    pattern (the quantity the micro-benchmarks measure): hits issue one
    column command, misses precharge + activate + column (§3.4). *)

val profile_latencies : config -> (pattern * float) list
(** Micro-benchmark profiling: for each pattern, run a synthetic
    single-bank stream that exhibits it through {!Sim} and average the
    per-transaction latency. This is the table FlexCL multiplies pattern
    counts with (Eq. 9); it differs from {!pattern_latency} by the
    refresh overhead the micro-benchmark stream absorbs. *)

(** {2 Stateful simulation} *)

module Sim : sig
  type t

  val create : config -> t

  val access : t -> now:int -> txn -> int
  (** [access t ~now txn] services a transaction that arrives at cycle
      [now]; returns its completion cycle. Models bank busy time, open-row
      switches, read/write turnaround and periodic refresh. [now] must not
      decrease between calls. *)

  val completed_reads : t -> int
  val completed_writes : t -> int
end
