type kind = Read | Write

type pattern = { kind : kind; prev : kind; row_hit : bool }

let all_patterns =
  [
    { kind = Read; prev = Read; row_hit = true };
    { kind = Read; prev = Write; row_hit = true };
    { kind = Write; prev = Read; row_hit = true };
    { kind = Write; prev = Write; row_hit = true };
    { kind = Read; prev = Read; row_hit = false };
    { kind = Read; prev = Write; row_hit = false };
    { kind = Write; prev = Read; row_hit = false };
    { kind = Write; prev = Write; row_hit = false };
  ]

let pattern_name p =
  let k = match p.kind with Read -> "R" | Write -> "W" in
  let pr = match p.prev with Read -> "R" | Write -> "W" in
  Printf.sprintf "%sA%s.%s" k pr (if p.row_hit then "hit" else "miss")

type config = {
  n_banks : int;
  row_bytes : int;
  interleave_bytes : int;
  access_unit_bits : int;
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  t_bus : int;
  t_wtr : int;
  t_rtw : int;
  refresh_interval : int;
  t_rfc : int;
}

let ddr3_config =
  {
    n_banks = 8;
    row_bytes = 1024;
    interleave_bytes = 64;
    access_unit_bits = 512;
    t_cas = 3;
    t_rcd = 3;
    t_rp = 3;
    t_bus = 2;
    t_wtr = 2;
    t_rtw = 1;
    refresh_interval = 1560;
    t_rfc = 32;
  }

(* ------------------------------------------------------------------ *)
(* Layout *)

type layout = (string * int) list (* name -> base address *)

let layout buffers =
  let row_align = 1024 in
  let rec place addr = function
    | [] -> []
    | (name, bytes) :: rest ->
        let aligned = (addr + row_align - 1) / row_align * row_align in
        (name, aligned) :: place (aligned + bytes) rest
  in
  place 0 buffers

let base l name =
  match List.assoc_opt name l with
  | Some b -> b
  | None ->
      (* a bare [Not_found] escaping here is useless in a batch sweep;
         name the missing buffer and what the layout actually holds so
         the total [_result] API reports a meaningful diagnostic *)
      invalid_arg
        (Printf.sprintf "Dram.base: unknown buffer %S (layout has: %s)" name
           (match l with
           | [] -> "no buffers"
           | _ -> String.concat ", " (List.map fst l)))

let address l name ~elem_bits i = base l name + (i * (elem_bits / 8))

(* ------------------------------------------------------------------ *)
(* Coalescing *)

type txn = { addr : int; t_kind : kind; bytes : int }

let kind_of_access (a : Flexcl_interp.Interp.access) =
  match a.Flexcl_interp.Interp.kind with `Read -> Read | `Write -> Write

let coalesce cfg l (accesses : Flexcl_interp.Interp.access list) =
  let unit_bytes = cfg.access_unit_bits / 8 in
  let rec go acc = function
    | [] -> List.rev acc
    | (a : Flexcl_interp.Interp.access) :: rest ->
        let k = kind_of_access a in
        let eb = a.Flexcl_interp.Interp.elem_bits / 8 in
        let addr0 = address l a.Flexcl_interp.Interp.array ~elem_bits:a.elem_bits a.index in
        (* absorb consecutive same-kind accesses to adjacent elements while
           the transaction stays within the access unit; accesses repeating
           the previous element (a broadcast, e.g. every work-item reading
           the same coefficient) ride along for free *)
        let rec absorb bytes next_index rest =
          match rest with
          | (b : Flexcl_interp.Interp.access) :: more
            when kind_of_access b = k
                 && b.Flexcl_interp.Interp.array = a.Flexcl_interp.Interp.array
                 && b.index = next_index - 1 ->
              absorb bytes next_index more
          | (b : Flexcl_interp.Interp.access) :: more
            when kind_of_access b = k
                 && b.Flexcl_interp.Interp.array = a.Flexcl_interp.Interp.array
                 && b.index = next_index
                 && bytes + eb <= unit_bytes ->
              absorb (bytes + eb) (next_index + 1) more
          | _ -> (bytes, rest)
        in
        let bytes, rest = absorb eb (a.index + 1) rest in
        go ({ addr = addr0; t_kind = k; bytes } :: acc) rest
  in
  go [] accesses

let coalesce_workgroup cfg l (traces : Flexcl_interp.Interp.access list array) =
  let n = Array.length traces in
  if n = 0 then []
  else begin
    (* transpose to site-major order: the i-th access of every work-item
       issues back-to-back in the pipeline. Work-items whose control flow
       skipped some accesses simply contribute nothing at that site. *)
    let arrs = Array.map Array.of_list traces in
    let max_len = Array.fold_left (fun m a -> max m (Array.length a)) 0 arrs in
    let out = ref [] in
    for site = max_len - 1 downto 0 do
      for wi = n - 1 downto 0 do
        if site < Array.length arrs.(wi) then out := arrs.(wi).(site) :: !out
      done
    done;
    coalesce cfg l !out
  end

let bank_of cfg addr = addr / cfg.interleave_bytes mod cfg.n_banks

let row_of cfg addr = addr / (cfg.interleave_bytes * cfg.n_banks) / (cfg.row_bytes / cfg.interleave_bytes)

(* ------------------------------------------------------------------ *)
(* Pattern classification *)

type bank_state = { mutable open_row : int; mutable last : kind }

let fresh_banks cfg =
  Array.init cfg.n_banks (fun _ -> { open_row = -1; last = Read })

let pattern_counts ?(warmup = []) cfg txns =
  let banks = fresh_banks cfg in
  let step count t =
    let b = banks.(bank_of cfg t.addr) in
    let row = row_of cfg t.addr in
    let p = { kind = t.t_kind; prev = b.last; row_hit = b.open_row = row } in
    count p;
    b.open_row <- row;
    b.last <- t.t_kind
  in
  List.iter (step (fun _ -> ())) warmup;
  let counts = Hashtbl.create 8 in
  List.iter (fun p -> Hashtbl.replace counts p 0) all_patterns;
  List.iter (step (fun p -> Hashtbl.replace counts p (Hashtbl.find counts p + 1))) txns;
  List.map (fun p -> (p, Hashtbl.find counts p)) all_patterns

(* ------------------------------------------------------------------ *)
(* Timing *)

let turnaround cfg p =
  match (p.prev, p.kind) with
  | Write, Read -> cfg.t_wtr
  | Read, Write -> cfg.t_rtw
  | Read, Read | Write, Write -> 0

let pattern_latency cfg p =
  let core =
    if p.row_hit then cfg.t_cas + cfg.t_bus
    else cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_bus
  in
  core + turnaround cfg p

module Sim = struct
  type bank = { mutable row : int; mutable busy_until : int; mutable last_kind : kind }

  type t = {
    cfg : config;
    banks : bank array;
    mutable bus_free : int;  (* shared data bus: one transfer at a time *)
    mutable next_refresh : int;
    mutable reads : int;
    mutable writes : int;
  }

  let create cfg =
    {
      cfg;
      banks = Array.init cfg.n_banks (fun _ -> { row = -1; busy_until = 0; last_kind = Read });
      bus_free = 0;
      next_refresh = cfg.refresh_interval;
      reads = 0;
      writes = 0;
    }

  let access t ~now txn =
    let cfg = t.cfg in
    let b = t.banks.(bank_of cfg txn.addr) in
    let row = row_of cfg txn.addr in
    (* refresh stalls the whole device *)
    let start = max now b.busy_until in
    let start =
      if start >= t.next_refresh then begin
        let after = t.next_refresh + cfg.t_rfc in
        t.next_refresh <- t.next_refresh + cfg.refresh_interval;
        max start after
      end
      else start
    in
    let p = { kind = txn.t_kind; prev = b.last_kind; row_hit = b.row = row } in
    let prep =
      (if p.row_hit then 0 else cfg.t_rp + cfg.t_rcd) + cfg.t_cas + turnaround cfg p
    in
    (* row activation overlaps across banks; the data transfer serializes
       on the shared bus *)
    let bus_cycles =
      let unit_bytes = cfg.access_unit_bits / 8 in
      max 1 ((txn.bytes + unit_bytes - 1) / unit_bytes) * cfg.t_bus
    in
    let transfer_start = max (start + prep) t.bus_free in
    let finish = transfer_start + bus_cycles in
    t.bus_free <- finish;
    b.busy_until <- finish;
    b.row <- row;
    b.last_kind <- txn.t_kind;
    (match txn.t_kind with
    | Read -> t.reads <- t.reads + 1
    | Write -> t.writes <- t.writes + 1);
    finish

  let completed_reads t = t.reads
  let completed_writes t = t.writes
end

let profile_latencies cfg =
  (* For each pattern, build a single-bank synthetic stream alternating to
     exhibit exactly that pattern, run it through the simulator and average
     per-transaction latency. Mirrors the paper's micro-benchmarks. *)
  let stride_same_row = cfg.interleave_bytes * cfg.n_banks in
  let row_span = cfg.row_bytes / cfg.interleave_bytes * stride_same_row in
  List.map
    (fun p ->
      let sim = Sim.create cfg in
      let n = 64 in
      let total = ref 0 in
      let now = ref 0 in
      for i = 0 to n - 1 do
        (* set up the 'prev' state with a prologue access, then measure *)
        let addr_base = 2 * i * row_span in
        let prologue =
          { addr = addr_base; t_kind = p.prev; bytes = cfg.access_unit_bits / 8 }
        in
        let fin = Sim.access sim ~now:!now prologue in
        let measured_addr =
          if p.row_hit then addr_base + stride_same_row else addr_base + row_span
        in
        let txn =
          { addr = measured_addr; t_kind = p.kind; bytes = cfg.access_unit_bits / 8 }
        in
        let fin2 = Sim.access sim ~now:fin txn in
        total := !total + (fin2 - fin);
        now := fin2
      done;
      (p, float_of_int !total /. float_of_int n))
    all_patterns
