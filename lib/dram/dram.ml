type kind = Read | Write

type pattern = { kind : kind; prev : kind; row_hit : bool }

let all_patterns =
  [
    { kind = Read; prev = Read; row_hit = true };
    { kind = Read; prev = Write; row_hit = true };
    { kind = Write; prev = Read; row_hit = true };
    { kind = Write; prev = Write; row_hit = true };
    { kind = Read; prev = Read; row_hit = false };
    { kind = Read; prev = Write; row_hit = false };
    { kind = Write; prev = Read; row_hit = false };
    { kind = Write; prev = Write; row_hit = false };
  ]

let pattern_name p =
  let k = match p.kind with Read -> "R" | Write -> "W" in
  let pr = match p.prev with Read -> "R" | Write -> "W" in
  Printf.sprintf "%sA%s.%s" k pr (if p.row_hit then "hit" else "miss")

type config = {
  n_channels : int;
  n_banks : int;
  row_bytes : int;
  interleave_bytes : int;
  access_unit_bits : int;
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  t_bus : int;
  t_wtr : int;
  t_rtw : int;
  refresh_interval : int;
  t_rfc : int;
  queue_depth : int;
}

let ddr3_config =
  {
    n_channels = 1;
    n_banks = 8;
    row_bytes = 1024;
    interleave_bytes = 64;
    access_unit_bits = 512;
    t_cas = 3;
    t_rcd = 3;
    t_rp = 3;
    t_bus = 2;
    t_wtr = 2;
    t_rtw = 1;
    refresh_interval = 1560;
    t_rfc = 32;
    queue_depth = 0;
  }

let hbm2_config =
  (* Alveo U280-class HBM2: 32 pseudo-channels, each a narrower (256-bit
     AXI port) bank machine with small row buffers and a bounded
     outstanding-transaction queue per channel.  Timings stay in kernel
     clock cycles like [ddr3_config]. *)
  {
    n_channels = 32;
    n_banks = 16;
    row_bytes = 1024;
    interleave_bytes = 64;
    access_unit_bits = 256;
    t_cas = 3;
    t_rcd = 3;
    t_rp = 3;
    t_bus = 1;
    t_wtr = 2;
    t_rtw = 1;
    refresh_interval = 1560;
    t_rfc = 26;
    queue_depth = 8;
  }

(* ------------------------------------------------------------------ *)
(* Channel addressing *)

(* Each channel owns a disjoint 2^40-byte address region; buffer placement
   picks the region, and [chan_of]/[bank_of]/[row_of] decode within it.
   Every address a 1-channel device ever sees is far below 2^40, so the
   decode is bitwise identical to the pre-channel model there. *)
let chan_shift = 40
let chan_region = 1 lsl chan_shift

let chan_of cfg addr =
  if cfg.n_channels <= 1 then 0
  else min (addr lsr chan_shift) (cfg.n_channels - 1)

(* ------------------------------------------------------------------ *)
(* Layout *)

type layout = (string * int) list (* name -> base address *)

type placement = (string * int) list (* buffer name -> channel *)

let placement_error cfg placement ~buffers =
  let rec check = function
    | [] -> None
    | (name, chan) :: rest ->
        if not (List.mem name buffers) then
          Some
            (Printf.sprintf
               "unknown buffer %S in placement (kernel buffers: %s)" name
               (match buffers with
               | [] -> "none"
               | _ -> String.concat ", " buffers))
        else if chan < 0 || chan >= cfg.n_channels then
          Some
            (Printf.sprintf
               "buffer %S placed on channel %d, but device has %d channel%s \
                (valid: 0..%d)"
               name chan cfg.n_channels
               (if cfg.n_channels = 1 then "" else "s")
               (cfg.n_channels - 1))
        else check rest
  in
  check placement

let layout ?(placement = []) buffers =
  let row_align = 1024 in
  let chan_of_name name =
    match List.assoc_opt name placement with
    | Some c ->
        if c < 0 then
          invalid_arg
            (Printf.sprintf "Dram.layout: buffer %S placed on negative channel %d"
               name c)
        else c
    | None -> 0
  in
  let chans =
    List.sort_uniq compare (List.map (fun (n, _) -> chan_of_name n) buffers)
  in
  List.concat_map
    (fun chan ->
      let mine = List.filter (fun (n, _) -> chan_of_name n = chan) buffers in
      let rec place addr = function
        | [] -> []
        | (name, bytes) :: rest ->
            let aligned = (addr + row_align - 1) / row_align * row_align in
            (name, aligned) :: place (aligned + bytes) rest
      in
      place (chan * chan_region) mine)
    chans

let base l name =
  match List.assoc_opt name l with
  | Some b -> b
  | None ->
      (* a bare [Not_found] escaping here is useless in a batch sweep;
         name the missing buffer and what the layout actually holds so
         the total [_result] API reports a meaningful diagnostic *)
      invalid_arg
        (Printf.sprintf "Dram.base: unknown buffer %S (layout has: %s)" name
           (match l with
           | [] -> "no buffers"
           | _ -> String.concat ", " (List.map fst l)))

let address l name ~elem_bits i = base l name + (i * (elem_bits / 8))

(* ------------------------------------------------------------------ *)
(* Coalescing *)

type txn = { addr : int; t_kind : kind; bytes : int }

let kind_of_access (a : Flexcl_interp.Interp.access) =
  match a.Flexcl_interp.Interp.kind with `Read -> Read | `Write -> Write

let coalesce cfg l (accesses : Flexcl_interp.Interp.access list) =
  let unit_bytes = cfg.access_unit_bits / 8 in
  let rec go acc = function
    | [] -> List.rev acc
    | (a : Flexcl_interp.Interp.access) :: rest ->
        let k = kind_of_access a in
        let eb = a.Flexcl_interp.Interp.elem_bits / 8 in
        let addr0 = address l a.Flexcl_interp.Interp.array ~elem_bits:a.elem_bits a.index in
        (* absorb consecutive same-kind accesses to adjacent elements while
           the transaction stays within the access unit; accesses repeating
           the previous element (a broadcast, e.g. every work-item reading
           the same coefficient) ride along for free *)
        let rec absorb bytes next_index rest =
          match rest with
          | (b : Flexcl_interp.Interp.access) :: more
            when kind_of_access b = k
                 && b.Flexcl_interp.Interp.array = a.Flexcl_interp.Interp.array
                 && b.index = next_index - 1 ->
              absorb bytes next_index more
          | (b : Flexcl_interp.Interp.access) :: more
            when kind_of_access b = k
                 && b.Flexcl_interp.Interp.array = a.Flexcl_interp.Interp.array
                 && b.index = next_index
                 && bytes + eb <= unit_bytes ->
              absorb (bytes + eb) (next_index + 1) more
          | _ -> (bytes, rest)
        in
        let bytes, rest = absorb eb (a.index + 1) rest in
        go ({ addr = addr0; t_kind = k; bytes } :: acc) rest
  in
  go [] accesses

let coalesce_workgroup cfg l (traces : Flexcl_interp.Interp.access list array) =
  let n = Array.length traces in
  if n = 0 then []
  else begin
    (* transpose to site-major order: the i-th access of every work-item
       issues back-to-back in the pipeline. Work-items whose control flow
       skipped some accesses simply contribute nothing at that site. *)
    let arrs = Array.map Array.of_list traces in
    let max_len = Array.fold_left (fun m a -> max m (Array.length a)) 0 arrs in
    let out = ref [] in
    for site = max_len - 1 downto 0 do
      for wi = n - 1 downto 0 do
        if site < Array.length arrs.(wi) then out := arrs.(wi).(site) :: !out
      done
    done;
    coalesce cfg l !out
  end

let chan_offset addr = addr land (chan_region - 1)

let bank_of cfg addr = chan_offset addr / cfg.interleave_bytes mod cfg.n_banks

let row_of cfg addr =
  chan_offset addr / (cfg.interleave_bytes * cfg.n_banks)
  / (cfg.row_bytes / cfg.interleave_bytes)

(* ------------------------------------------------------------------ *)
(* Pattern classification *)

type bank_state = { mutable open_row : int; mutable last : kind }

let fresh_banks cfg =
  Array.init cfg.n_banks (fun _ -> { open_row = -1; last = Read })

(* Bank state is tracked per channel: the first access to each channel's
   bank is a miss-after-read, independently of activity on other
   channels, and warmup replay primes every channel's banks the same
   way.  With one channel this degenerates to the original single bank
   array. *)
let pattern_counts_by_channel ?(warmup = []) cfg txns =
  let n_chans = max 1 cfg.n_channels in
  let banks = Array.init n_chans (fun _ -> fresh_banks cfg) in
  let step count t =
    let c = chan_of cfg t.addr in
    let b = banks.(c).(bank_of cfg t.addr) in
    let row = row_of cfg t.addr in
    let p = { kind = t.t_kind; prev = b.last; row_hit = b.open_row = row } in
    count c p;
    b.open_row <- row;
    b.last <- t.t_kind
  in
  List.iter (step (fun _ _ -> ())) warmup;
  let counts = Array.init n_chans (fun _ -> Hashtbl.create 8) in
  Array.iter
    (fun h -> List.iter (fun p -> Hashtbl.replace h p 0) all_patterns)
    counts;
  List.iter
    (step (fun c p ->
         Hashtbl.replace counts.(c) p (Hashtbl.find counts.(c) p + 1)))
    txns;
  Array.map
    (fun h -> List.map (fun p -> (p, Hashtbl.find h p)) all_patterns)
    counts

let pattern_counts ?warmup cfg txns =
  (* elementwise sum over channels, so per-channel counts always sum to
     the single-stream counts by construction *)
  let per_chan = pattern_counts_by_channel ?warmup cfg txns in
  List.mapi
    (fun i p ->
      (p, Array.fold_left (fun acc l -> acc + snd (List.nth l i)) 0 per_chan))
    all_patterns

(* ------------------------------------------------------------------ *)
(* Timing *)

let turnaround cfg p =
  match (p.prev, p.kind) with
  | Write, Read -> cfg.t_wtr
  | Read, Write -> cfg.t_rtw
  | Read, Read | Write, Write -> 0

let pattern_latency cfg p =
  let core =
    if p.row_hit then cfg.t_cas + cfg.t_bus
    else cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_bus
  in
  core + turnaround cfg p

module Sim = struct
  type bank = { mutable row : int; mutable busy_until : int; mutable last_kind : kind }

  (* one independent controller per channel: its own banks, its own data
     bus, its own refresh clock, and (when [queue_depth > 0]) a bounded
     set of outstanding-transaction slots — a transaction arriving while
     every slot is in flight queues until the earliest one retires *)
  type chan = {
    banks : bank array;
    mutable bus_free : int;  (* per-channel data bus: one transfer at a time *)
    mutable next_refresh : int;
    slots : int array;       (* completion cycles; [||] = unbounded queue *)
  }

  type t = {
    cfg : config;
    chans : chan array;
    mutable reads : int;
    mutable writes : int;
  }

  let create cfg =
    let mk_chan () =
      {
        banks =
          Array.init cfg.n_banks (fun _ ->
              { row = -1; busy_until = 0; last_kind = Read });
        bus_free = 0;
        next_refresh = cfg.refresh_interval;
        slots = Array.make (max 0 cfg.queue_depth) 0;
      }
    in
    {
      cfg;
      chans = Array.init (max 1 cfg.n_channels) (fun _ -> mk_chan ());
      reads = 0;
      writes = 0;
    }

  let access t ~now txn =
    let cfg = t.cfg in
    let c = t.chans.(chan_of cfg txn.addr) in
    (* admission: wait for a free outstanding-transaction slot *)
    let slot, now =
      if Array.length c.slots = 0 then (-1, now)
      else begin
        let mi = ref 0 in
        for i = 1 to Array.length c.slots - 1 do
          if c.slots.(i) < c.slots.(!mi) then mi := i
        done;
        (!mi, max now c.slots.(!mi))
      end
    in
    let b = c.banks.(bank_of cfg txn.addr) in
    let row = row_of cfg txn.addr in
    (* refresh stalls the whole channel *)
    let start = max now b.busy_until in
    let start =
      if start >= c.next_refresh then begin
        let after = c.next_refresh + cfg.t_rfc in
        c.next_refresh <- c.next_refresh + cfg.refresh_interval;
        max start after
      end
      else start
    in
    let p = { kind = txn.t_kind; prev = b.last_kind; row_hit = b.row = row } in
    let prep =
      (if p.row_hit then 0 else cfg.t_rp + cfg.t_rcd) + cfg.t_cas + turnaround cfg p
    in
    (* row activation overlaps across banks; the data transfer serializes
       on the channel's bus *)
    let bus_cycles =
      let unit_bytes = cfg.access_unit_bits / 8 in
      max 1 ((txn.bytes + unit_bytes - 1) / unit_bytes) * cfg.t_bus
    in
    let transfer_start = max (start + prep) c.bus_free in
    let finish = transfer_start + bus_cycles in
    c.bus_free <- finish;
    b.busy_until <- finish;
    b.row <- row;
    b.last_kind <- txn.t_kind;
    if slot >= 0 then c.slots.(slot) <- finish;
    (match txn.t_kind with
    | Read -> t.reads <- t.reads + 1
    | Write -> t.writes <- t.writes + 1);
    finish

  let completed_reads t = t.reads
  let completed_writes t = t.writes
end

let profile_latencies cfg =
  (* For each pattern, build a single-bank synthetic stream alternating to
     exhibit exactly that pattern, run it through the simulator and average
     per-transaction latency. Mirrors the paper's micro-benchmarks. *)
  let stride_same_row = cfg.interleave_bytes * cfg.n_banks in
  let row_span = cfg.row_bytes / cfg.interleave_bytes * stride_same_row in
  List.map
    (fun p ->
      let sim = Sim.create cfg in
      let n = 64 in
      let total = ref 0 in
      let now = ref 0 in
      for i = 0 to n - 1 do
        (* set up the 'prev' state with a prologue access, then measure *)
        let addr_base = 2 * i * row_span in
        let prologue =
          { addr = addr_base; t_kind = p.prev; bytes = cfg.access_unit_bits / 8 }
        in
        let fin = Sim.access sim ~now:!now prologue in
        let measured_addr =
          if p.row_hit then addr_base + stride_same_row else addr_base + row_span
        in
        let txn =
          { addr = measured_addr; t_kind = p.kind; bytes = cfg.access_unit_bits / 8 }
        in
        let fin2 = Sim.access sim ~now:fin txn in
        total := !total + (fin2 - fin);
        now := fin2
      done;
      (p, float_of_int !total /. float_of_int n))
    all_patterns
