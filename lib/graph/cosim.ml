(* Co-simulated ground truth for kernel graphs.

   Each stage runs through the cycle-level system simulator
   ([Sysrun.run], seeded) to get its per-work-group service time with
   all the physical effects the analytical model averages away (variant
   latencies, stateful DRAM, dispatch jitter). The stages are then
   composed by a discrete-event simulation at work-group granularity
   over bounded channels:

   - a consumer work-group may start only when its inbound channels
     hold enough packets (cumulative producer output covers its reads);
   - a producer work-group may start only when the channel has room —
     depth bounds how many producer rounds can run ahead of the
     consumer (at least one, so progress is always possible: packets
     transfer per work-group round, the granularity of this DES);
   - each stage processes its work-groups in order, one at a time.

   The DES is deterministic: stages start in topological order within a
   time step and completions pop smallest-time-first with topological
   tie-breaking. Errors use the "Pipeline." message prefix. *)

module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Launch = Flexcl_ir.Launch
module Sysrun = Flexcl_simrtl.Sysrun

type result = {
  cycles : float;
  seconds : float;
  per_stage : (string * Sysrun.result) list;
      (** the per-stage simulator runs (topological order). *)
  rounds : int;  (** work-group completions simulated by the DES. *)
}

type edge_state = {
  producer : int;  (* stage index *)
  consumer : int;
  w_wg : float;    (* packets produced per producer work-group *)
  r_wg : float;    (* packets consumed per consumer work-group *)
  cap_rounds : int;  (* producer rounds allowed ahead of the consumer *)
  mutable prod_done : int;
  mutable cons_done : int;
}

let run ?seed ?(rounds_override = []) dev (t : Graph.analyzed)
    (j : Graph.joint) =
  let graph = t.resolved.Gdef.graph in
  let stages = Array.of_list t.resolved.Gdef.order in
  let n = Array.length stages in
  let index s =
    let rec go i = if stages.(i) = s then i else go (i + 1) in
    go 0
  in
  List.iter
    (fun (s, r) ->
      if not (Array.exists (( = ) s) stages) then
        invalid_arg
          (Printf.sprintf "Pipeline.cosim: no stage %S in graph %S" s
             graph.Gdef.g_name)
      else if r < 1 then
        invalid_arg
          (Printf.sprintf
             "Pipeline.cosim: rounds override for %S must be >= 1" s))
    rounds_override;
  (* Per-stage ground truth and per-work-group service time. *)
  let sims =
    Array.map
      (fun s ->
        let cfg = Graph.config_of j s in
        let a =
          let a0 = Graph.stage_analysis t s in
          if Launch.wg_size a0.Analysis.launch = cfg.Config.wg_size then a0
          else Flexcl_dse.Explore.analysis_for a0 cfg.Config.wg_size
        in
        let r = Sysrun.run ?seed dev a cfg in
        let launch_wgs = max 1 (Launch.n_work_groups a.Analysis.launch) in
        (* an override reschedules more or fewer rounds at the stage's
           measured per-work-group service time *)
        let sched_wgs =
          match List.assoc_opt s rounds_override with
          | Some k -> k
          | None -> launch_wgs
        in
        (a, r, sched_wgs, r.Sysrun.cycles /. float_of_int launch_wgs))
      stages
  in
  let analysis i = match sims.(i) with a, _, _, _ -> a in
  let n_wgs i = match sims.(i) with _, _, k, _ -> k in
  let service i = match sims.(i) with _, _, _, s -> s in
  (* Channel states. *)
  let edges =
    List.map
      (fun (c : Gdef.channel) ->
        let pi = index c.Gdef.producer.Gdef.e_stage
        and ci = index c.Gdef.consumer.Gdef.e_stage in
        let rate accesses param pick =
          match List.assoc_opt param accesses with
          | Some rw -> pick rw
          | None -> 0.0
        in
        let w_wg =
          rate
            (Analysis.pipe_accesses (analysis pi))
            c.Gdef.producer.Gdef.e_param snd
          *. float_of_int (Launch.wg_size (analysis pi).Analysis.launch)
        in
        let r_wg =
          rate
            (Analysis.pipe_accesses (analysis ci))
            c.Gdef.consumer.Gdef.e_param fst
          *. float_of_int (Launch.wg_size (analysis ci).Analysis.launch)
        in
        let cap_rounds =
          if r_wg <= 0.0 || w_wg <= 0.0 then max_int
          else
            max 1
              (int_of_float
                 (Float.floor (float_of_int c.Gdef.depth /. w_wg)))
        in
        {
          producer = pi;
          consumer = ci;
          w_wg;
          r_wg;
          cap_rounds;
          prod_done = 0;
          cons_done = 0;
        })
      graph.Gdef.channels
  in
  (* DES state. *)
  let next = Array.make n 0 in
  let busy_until = Array.make n neg_infinity in
  let running = Array.make n false in
  let rounds = ref 0 in
  let can_start i =
    (not running.(i))
    && next.(i) < n_wgs i
    && List.for_all
         (fun e ->
           if e.consumer = i && e.w_wg > 0.0 then
             (* enough packets produced for round [next.(i)] *)
             float_of_int e.prod_done *. e.w_wg
             >= (float_of_int (next.(i) + 1) *. e.r_wg) -. 1e-9
           else true)
         edges
    && List.for_all
         (fun e ->
           if e.producer = i && e.cap_rounds <> max_int then
             (* how many producer rounds the consumer has drained *)
             let drained =
               if e.w_wg <= 0.0 then e.prod_done
               else
                 int_of_float
                   (Float.floor
                      ((float_of_int e.cons_done *. e.r_wg) /. e.w_wg
                      +. 1e-9))
             in
             next.(i) - drained < e.cap_rounds
           else true)
         edges
  in
  let finished () =
    let ok = ref true in
    for i = 0 to n - 1 do
      if running.(i) || next.(i) < n_wgs i then ok := false
    done;
    !ok
  in
  let now = ref 0.0 in
  let total = ref 0.0 in
  (try
     while not (finished ()) do
       (* start every eligible stage at the current time, topo order *)
       for i = 0 to n - 1 do
         if can_start i then begin
           running.(i) <- true;
           busy_until.(i) <- !now +. service i
         end
       done;
       (* advance to the earliest completion *)
       let best = ref (-1) in
       for i = n - 1 downto 0 do
         if running.(i) && (!best < 0 || busy_until.(i) <= busy_until.(!best))
         then best := i
       done;
       if !best < 0 then
         failwith
           (Printf.sprintf
              "Pipeline.cosim: deadlock in graph %S (no stage can run)"
              graph.Gdef.g_name)
       else begin
         let i = !best in
         now := busy_until.(i);
         total := Float.max !total !now;
         running.(i) <- false;
         next.(i) <- next.(i) + 1;
         incr rounds;
         List.iter
           (fun e ->
             if e.producer = i then e.prod_done <- e.prod_done + 1;
             if e.consumer = i then e.cons_done <- e.cons_done + 1)
           edges
       end
     done
   with Stack_overflow -> failwith "Pipeline.cosim: internal overflow");
  {
    cycles = !total;
    seconds = Device.cycles_to_seconds dev !total;
    per_stage =
      Array.to_list
        (Array.mapi (fun i s -> (s, (fun (_, r, _, _) -> r) sims.(i))) stages);
    rounds = !rounds;
  }
