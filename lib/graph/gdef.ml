(* Kernel-graph definitions: a multi-kernel pipeline as data.

   A graph is a list of stages (one kernel each, with its own launch)
   plus a list of channels wiring one stage's [pipe] parameter to
   another's. Validation is total: every structural fault — an endpoint
   that names no stage or no pipe, a pipe left unwired, a direction
   violation, a packet-type mismatch across a channel, a cycle in the
   stage graph — becomes a structured diagnostic with a stable code, so
   batch sweeps over many graphs report errors instead of escaping
   exceptions. *)

module Ast = Flexcl_opencl.Ast
module Parser = Flexcl_opencl.Parser
module Sema = Flexcl_opencl.Sema
module Types = Flexcl_opencl.Types
module Launch = Flexcl_ir.Launch
module Diag = Flexcl_util.Diag
module Ugraph = Flexcl_util.Graph

type stage = {
  s_name : string;
  s_source : string;
  s_launch : Launch.t;
}

type endpoint = { e_stage : string; e_param : string }

type channel = {
  c_name : string;
  producer : endpoint;
  consumer : endpoint;
  depth : int;
}

type t = {
  g_name : string;
  stages : stage list;
  channels : channel list;
}

type resolved_stage = {
  r_stage : stage;
  r_kernel : Ast.kernel;
  r_info : Sema.info;
}

type resolved = {
  graph : t;
  rstages : resolved_stage list;  (* topological order *)
  order : string list;
}

let stage_names g = List.map (fun s -> s.s_name) g.stages

let find_stage g name = List.find_opt (fun s -> s.s_name = name) g.stages

let find_channel g name = List.find_opt (fun c -> c.c_name = name) g.channels

let in_edges g stage = List.filter (fun c -> c.consumer.e_stage = stage) g.channels
let out_edges g stage = List.filter (fun c -> c.producer.e_stage = stage) g.channels

(* ------------------------------------------------------------------ *)
(* Validation *)

let err code fmt = Printf.ksprintf (fun m -> Diag.make code m) fmt

let dup_names what names =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n then
        Some (err Diag.Config_invalid "duplicate %s name %S" what n)
      else (
        Hashtbl.replace seen n ();
        None))
    names

(* Per-stage frontend: parse + sema, errors tagged with the stage name. *)
let resolve_stage (s : stage) =
  match Parser.parse_kernel_result s.s_source with
  | Error diags -> Error (List.map (Diag.with_file s.s_name) diags)
  | Ok kernel -> (
      match Sema.analyze kernel with
      | info -> Ok { r_stage = s; r_kernel = kernel; r_info = info }
      | exception Sema.Error msg ->
          Error [ Diag.error ~file:s.s_name Diag.Sema_error "%s" msg ]
      | exception Sema.Error_at (msg, line, col) ->
          Error
            [
              Diag.error ~file:s.s_name ~span:{ Diag.line; col }
                Diag.Sema_error "%s" msg;
            ])

(* Channel endpoints against the stages' inferred pipe endpoints. *)
let check_channel (rs : (string * resolved_stage) list) (c : channel) =
  let endpoint_errs role (e : endpoint) ~want_writes =
    match List.assoc_opt e.e_stage rs with
    | None ->
        [
          err Diag.Pipe_unbound "channel %S %s references unknown stage %S"
            c.c_name role e.e_stage;
        ]
    | Some r -> (
        match List.assoc_opt e.e_param r.r_info.Sema.pipes with
        | None ->
            [
              err Diag.Pipe_unbound
                "channel %S %s: stage %S has no pipe parameter %S" c.c_name
                role e.e_stage e.e_param;
            ]
        | Some pe ->
            let dir_ok =
              if want_writes then pe.Sema.pe_writes && not pe.Sema.pe_reads
              else pe.Sema.pe_reads && not pe.Sema.pe_writes
            in
            if dir_ok then []
            else
              [
                err Diag.Pipe_unbound
                  "channel %S %s: pipe %s.%s must be %s-only (kernel %s it)"
                  c.c_name role e.e_stage e.e_param
                  (if want_writes then "write" else "read")
                  (match (pe.Sema.pe_reads, pe.Sema.pe_writes) with
                  | true, true -> "both reads and writes"
                  | true, false -> "only reads"
                  | false, true -> "only writes"
                  | false, false -> "never accesses");
              ])
  in
  let depth_errs =
    if c.depth >= 1 then []
    else
      [
        err Diag.Config_invalid "channel %S: depth must be >= 1, got %d"
          c.c_name c.depth;
      ]
  in
  let self_errs =
    if c.producer.e_stage = c.consumer.e_stage then
      [
        err Diag.Pipe_cycle "channel %S connects stage %S to itself" c.c_name
          c.producer.e_stage;
      ]
    else []
  in
  let packet_errs =
    match
      ( List.assoc_opt c.producer.e_stage rs,
        List.assoc_opt c.consumer.e_stage rs )
    with
    | Some rp, Some rc -> (
        match
          ( List.assoc_opt c.producer.e_param rp.r_info.Sema.pipes,
            List.assoc_opt c.consumer.e_param rc.r_info.Sema.pipes )
        with
        | Some pp, Some pc when pp.Sema.pe_packet <> pc.Sema.pe_packet ->
            [
              err Diag.Pipe_mismatch
                "channel %S: producer %s.%s carries %s (%d bits) but \
                 consumer %s.%s expects %s (%d bits)"
                c.c_name c.producer.e_stage c.producer.e_param
                (Types.scalar_name pp.Sema.pe_packet)
                (Types.scalar_bits pp.Sema.pe_packet)
                c.consumer.e_stage c.consumer.e_param
                (Types.scalar_name pc.Sema.pe_packet)
                (Types.scalar_bits pc.Sema.pe_packet);
            ]
        | _ -> [])
    | _ -> []
  in
  depth_errs @ self_errs
  @ endpoint_errs "producer" c.producer ~want_writes:true
  @ endpoint_errs "consumer" c.consumer ~want_writes:false
  @ packet_errs

(* Every pipe parameter of every stage must be wired by exactly one
   channel endpoint of the matching direction. *)
let check_coverage g (rs : (string * resolved_stage) list) =
  List.concat_map
    (fun (stage_name, r) ->
      List.concat_map
        (fun (param, (pe : Sema.pipe_endpoint)) ->
          let matches =
            List.filter
              (fun c ->
                (c.producer.e_stage = stage_name && c.producer.e_param = param)
                || (c.consumer.e_stage = stage_name
                   && c.consumer.e_param = param))
              g.channels
          in
          match matches with
          | [] ->
              [
                err Diag.Pipe_unbound
                  "pipe %s.%s (%s, %s) is not wired to any channel" stage_name
                  param
                  (Types.scalar_name pe.Sema.pe_packet)
                  (match (pe.Sema.pe_reads, pe.Sema.pe_writes) with
                  | true, _ -> "read endpoint"
                  | _, true -> "write endpoint"
                  | _ -> "unused");
              ]
          | [ _ ] -> []
          | many ->
              [
                err Diag.Pipe_unbound
                  "pipe %s.%s is wired by %d channels (%s); endpoints bind \
                   exactly once"
                  stage_name param (List.length many)
                  (String.concat ", "
                     (List.map (fun c -> c.c_name) many));
              ])
        r.r_info.Sema.pipes)
    rs

let topo_order g =
  let names = stage_names g in
  let index = Hashtbl.create 8 in
  List.iteri (fun i n -> Hashtbl.replace index n i) names;
  let n = List.length names in
  let ug = Ugraph.create n in
  List.iter
    (fun c ->
      match
        ( Hashtbl.find_opt index c.producer.e_stage,
          Hashtbl.find_opt index c.consumer.e_stage )
      with
      | Some u, Some v when u <> v -> Ugraph.add_edge ug u v
      | _ -> ())
    g.channels;
  match Ugraph.topo_sort ug with
  | Some order -> Ok (List.map (fun i -> List.nth names i) order)
  | None ->
      let cyclic =
        List.filter_map
          (fun scc ->
            match scc with
            | _ :: _ :: _ ->
                Some
                  (String.concat " -> "
                     (List.map (fun i -> List.nth names i) scc))
            | _ -> None)
          (Ugraph.sccs ug)
      in
      Error
        [
          err Diag.Pipe_cycle "kernel graph is cyclic: %s"
            (String.concat "; " cyclic);
        ]

let validate_structure g (rs : (string * resolved_stage) list) =
  let errs =
    (if g.stages = [] then
       [ err Diag.Config_invalid "graph %S has no stages" g.g_name ]
     else [])
    @ dup_names "stage" (stage_names g)
    @ dup_names "channel" (List.map (fun c -> c.c_name) g.channels)
    @ List.concat_map (check_channel rs) g.channels
    @ check_coverage g rs
  in
  match errs with
  | [] -> Result.map (fun order -> order) (topo_order g)
  | _ -> Error errs

let resolve (g : t) : (resolved, Diag.t list) result =
  let resolved, errors =
    List.fold_left
      (fun (ok, errs) s ->
        match resolve_stage s with
        | Ok r -> ((s.s_name, r) :: ok, errs)
        | Error ds -> (ok, errs @ ds))
      ([], []) g.stages
  in
  let rs = List.rev resolved in
  if errors <> [] then Error errors
  else
    match validate_structure g rs with
    | Error ds -> Error ds
    | Ok order ->
        let rstages =
          List.map (fun name -> List.assoc name rs) order
        in
        Ok { graph = g; rstages; order }

(* ------------------------------------------------------------------ *)
(* Auto-wiring: one source with several kernels, channels inferred by
   matching pipe parameter names (the writer of pipe [p] feeds every...
   exactly one reader of pipe [p]). *)

let of_program ~name ~depth (kernels : (string * string * Launch.t) list)
    : (t, Diag.t list) result =
  let stages =
    List.map (fun (s_name, s_source, s_launch) -> { s_name; s_source; s_launch })
      kernels
  in
  (* Need sema info to classify endpoint directions. *)
  let infos, errors =
    List.fold_left
      (fun (ok, errs) s ->
        match resolve_stage s with
        | Ok r -> ((s.s_name, r.r_info) :: ok, errs)
        | Error ds -> (ok, errs @ ds))
      ([], []) stages
  in
  if errors <> [] then Error errors
  else
    let infos = List.rev infos in
    let writers, readers =
      List.fold_left
        (fun (ws, rds) (stage, info) ->
          List.fold_left
            (fun (ws, rds) (param, (pe : Sema.pipe_endpoint)) ->
              let ep = { e_stage = stage; e_param = param } in
              if pe.Sema.pe_writes then ((param, ep) :: ws, rds)
              else if pe.Sema.pe_reads then (ws, (param, ep) :: rds)
              else (ws, rds))
            (ws, rds) info.Sema.pipes)
        ([], []) infos
    in
    let writers = List.rev writers and readers = List.rev readers in
    let channels, errs =
      List.fold_left
        (fun (chans, errs) (pname, producer) ->
          match List.filter (fun (n, _) -> n = pname) readers with
          | [ (_, consumer) ] ->
              ({ c_name = pname; producer; consumer; depth } :: chans, errs)
          | [] ->
              ( chans,
                err Diag.Pipe_unbound
                  "pipe %S is written by %s but no kernel reads it" pname
                  producer.e_stage
                :: errs )
          | many ->
              ( chans,
                err Diag.Pipe_unbound
                  "pipe %S has %d readers; auto-wiring needs exactly one"
                  pname (List.length many)
                :: errs ))
        ([], []) writers
    in
    let orphan_reads =
      List.filter_map
        (fun (pname, reader) ->
          if List.exists (fun (n, _) -> n = pname) writers then None
          else
            Some
              (err Diag.Pipe_unbound
                 "pipe %S is read by %s but no kernel writes it" pname
                 reader.e_stage))
        readers
    in
    match errs @ orphan_reads with
    | [] -> Ok { g_name = name; stages; channels = List.rev channels }
    | ds -> Error ds
