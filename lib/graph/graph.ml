(* The kernel-graph analytical model (DESIGN.md §14).

   A resolved graph estimates as

     L_graph = L_steady + L_fill + L_stall                      (Eq. G1)

   - L_steady: in steady state the pipeline advances at the rate of the
     slowest stage, so the steady term is the max over stages of the
     single-kernel model's cycles (Eq. 10/11 per stage); the losing
     stages appear as 0-cycle alternatives, exactly like the model's
     roofline max.                                              (Eq. G2)
   - L_fill: before the sink reaches steady state every upstream stage
     on the critical path must produce its first results; fill is the
     max over source-to-sink paths of the sum of one CU pass (Eq. 5's
     L_CU) of every stage on the path except the sink.          (Eq. G3)
   - L_stall: a channel whose depth is smaller than the burst skew
     between its producer and consumer (|writes - reads| per work-group
     round) backpressures the pipeline: every work-group round pays the
     channel round-trip for each packet beyond the FIFO capacity.
                                                                (Eq. G4)

   The three terms decompose into a conservation-checked trace whose
   root recomposes bitwise ([estimate] and [explain] share one compute
   path, and all sums are the same left folds [Trace.check] uses).

   Errors raised here use the "Pipeline." message prefix (the "Graph."
   prefix belongs to Flexcl_util.Graph and classifies as a scheduler
   error). *)

module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Launch = Flexcl_ir.Launch
module Opcode = Flexcl_ir.Opcode
module Trace = Flexcl_util.Trace
module Diag = Flexcl_util.Diag
module Explore = Flexcl_dse.Explore
module Parsweep = Flexcl_dse.Parsweep

type analyzed = {
  resolved : Gdef.resolved;
  stage_analyses : (string * Analysis.t) list;  (* topo order *)
}

let name t = t.resolved.Gdef.graph.Gdef.g_name

let stage_analysis t stage =
  match List.assoc_opt stage t.stage_analyses with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Pipeline.stage_analysis: no stage %S" stage)

let analyze ?max_work_groups ?max_steps (g : Gdef.t) =
  match Gdef.resolve g with
  | Error ds -> Error ds
  | Ok resolved -> (
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (r : Gdef.resolved_stage) :: rest -> (
            match
              Analysis.analyze_result ?max_work_groups ?max_steps r.Gdef.r_kernel
                r.Gdef.r_stage.Gdef.s_launch
            with
            | Ok a -> go ((r.Gdef.r_stage.Gdef.s_name, a) :: acc) rest
            | Error ds ->
                Error
                  (List.map (Diag.with_file r.Gdef.r_stage.Gdef.s_name) ds))
      in
      match go [] resolved.Gdef.rstages with
      | Error ds -> Error ds
      | Ok stage_analyses -> Ok { resolved; stage_analyses })

(* ------------------------------------------------------------------ *)
(* Joint design points *)

type joint = {
  stage_configs : (string * Config.t) list;  (* every stage, topo order *)
  depths : (string * int) list;              (* every channel *)
}

let default_joint t =
  {
    stage_configs =
      List.map
        (fun (s, a) ->
          ( s,
            {
              Config.default with
              Config.wg_size = Launch.wg_size a.Analysis.launch;
              comm_mode = Config.Pipeline_mode;
            } ))
        t.stage_analyses;
    depths =
      List.map
        (fun (c : Gdef.channel) -> (c.Gdef.c_name, c.Gdef.depth))
        t.resolved.Gdef.graph.Gdef.channels;
  }

let joint_to_string j =
  String.concat "; "
    (List.map
       (fun (s, cfg) -> Printf.sprintf "%s[%s]" s (Config.to_string cfg))
       j.stage_configs)
  ^
  match j.depths with
  | [] -> ""
  | ds ->
      "; "
      ^ String.concat " "
          (List.map (fun (c, d) -> Printf.sprintf "%s:d%d" c d) ds)

let compare_joint a b =
  let c =
    List.compare
      (fun (s1, c1) (s2, c2) ->
        match String.compare s1 s2 with
        | 0 -> Config.compare c1 c2
        | n -> n)
      a.stage_configs b.stage_configs
  in
  if c <> 0 then c else compare a.depths b.depths

let config_of j stage =
  match List.assoc_opt stage j.stage_configs with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Pipeline.config_of: no stage %S" stage)

let depth_of j (c : Gdef.channel) =
  match List.assoc_opt c.Gdef.c_name j.depths with
  | Some d -> d
  | None -> c.Gdef.depth

(* Analysis at the joint point's work-group size (memoized re-analysis
   shared with the DSE engine when sizes differ from the launch). *)
let analysis_at t stage (cfg : Config.t) =
  let a = stage_analysis t stage in
  if Launch.wg_size a.Analysis.launch = cfg.Config.wg_size then a
  else Explore.analysis_for a cfg.Config.wg_size

let validate_joint t j =
  let stages = List.map fst t.stage_analyses in
  let missing =
    List.filter (fun s -> not (List.mem_assoc s j.stage_configs)) stages
  in
  if missing <> [] then
    invalid_arg
      (Printf.sprintf "Pipeline.estimate: joint point misses stages %s"
         (String.concat ", " missing));
  List.iter
    (fun (c, d) ->
      if d < 1 then
        invalid_arg
          (Printf.sprintf "Pipeline.estimate: channel %S depth %d < 1" c d))
    j.depths

let feasible dev t j =
  List.for_all
    (fun (s, _) ->
      let cfg = config_of j s in
      Model.feasible dev (analysis_at t s cfg) cfg)
    t.stage_analyses
  && List.for_all (fun (_, d) -> d >= 1) j.depths
  && List.for_all (fun (s, _) -> List.mem_assoc s t.stage_analyses)
       j.stage_configs

(* ------------------------------------------------------------------ *)
(* The estimate: one compute path for estimate and explain, so the two
   agree bitwise and the trace's conservation is exact by construction
   (every reported total is the same left-fold the checker re-runs). *)

type gbreakdown = {
  per_stage : (string * Model.breakdown) list;
  steady : float;
  fill : float;
  stall : float;
  per_edge_stall : (string * float) list;
  bottleneck_stage : string;
  critical_path : string list;
  cycles : float;
  seconds : float;
}

let fold_sum xs = List.fold_left (fun acc x -> acc +. x) 0.0 xs

(* Per-edge stall (Eq. G4): burst skew beyond the FIFO depth, paid once
   per work-group round at the channel round-trip latency. *)
let edge_stall dev t j (c : Gdef.channel) =
  let pstage = c.Gdef.producer.Gdef.e_stage
  and cstage = c.Gdef.consumer.Gdef.e_stage in
  let pa = analysis_at t pstage (config_of j pstage)
  and ca = analysis_at t cstage (config_of j cstage) in
  let writes_per_wi =
    match List.assoc_opt c.Gdef.producer.Gdef.e_param (Analysis.pipe_accesses pa) with
    | Some (_, w) -> w
    | None -> 0.0
  in
  let reads_per_wi =
    match List.assoc_opt c.Gdef.consumer.Gdef.e_param (Analysis.pipe_accesses ca) with
    | Some (r, _) -> r
    | None -> 0.0
  in
  let w_wg = writes_per_wi *. float_of_int (Launch.wg_size pa.Analysis.launch) in
  let r_wg = reads_per_wi *. float_of_int (Launch.wg_size ca.Analysis.launch) in
  let skew = Float.abs (w_wg -. r_wg) in
  let depth = float_of_int (depth_of j c) in
  if depth >= skew then (0.0, skew)
  else
    let rounds =
      float_of_int
        (min
           (Launch.n_work_groups pa.Analysis.launch)
           (Launch.n_work_groups ca.Analysis.launch))
    in
    let round_trip =
      float_of_int
        (Device.op_latency dev Opcode.Pipe_write_op
        + Device.op_latency dev Opcode.Pipe_read_op)
    in
    ((skew -. depth) *. rounds *. round_trip, skew)

let compute ?options ~breakdown_of ~want_trace dev t j =
  validate_joint t j;
  let graph = t.resolved.Gdef.graph in
  let stages = List.map fst t.stage_analyses in
  (* per-stage single-kernel estimates *)
  let per_stage =
    List.map
      (fun s ->
        let cfg = config_of j s in
        (s, (breakdown_of s (analysis_at t s cfg) cfg : Model.breakdown)))
      stages
  in
  (* Eq. G2: steady state = slowest stage; first of ties wins. *)
  let bottleneck_stage, steady =
    List.fold_left
      (fun (bs, bc) (s, (b : Model.breakdown)) ->
        if b.Model.cycles > bc then (s, b.Model.cycles) else (bs, bc))
      (fst (List.hd per_stage), (snd (List.hd per_stage)).Model.cycles)
      (List.tl per_stage)
  in
  (* Eq. G3: fill along the critical path. [best] accumulates by the
     same left-association as summing the recovered path's
     contributions, so the trace children recompose [fill] bitwise. *)
  let fill_contrib s = (List.assoc s per_stage).Model.l_cu in
  let best : (string, float * string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let from_pred =
        List.filter_map
          (fun (c : Gdef.channel) ->
            let p = c.Gdef.producer.Gdef.e_stage in
            match Hashtbl.find_opt best p with
            | Some (cost, path) ->
                Some (cost +. fill_contrib p, path @ [ p ])
            | None -> None)
          (Gdef.in_edges graph s)
      in
      let b =
        List.fold_left
          (fun (bc, bp) (c, p) -> if c > bc then (c, p) else (bc, bp))
          (0.0, []) from_pred
      in
      Hashtbl.replace best s b)
    t.resolved.Gdef.order;
  let fill, fill_path =
    List.fold_left
      (fun (bc, bp) s ->
        match Hashtbl.find_opt best s with
        | Some (c, p) when c > bc -> (c, p @ [ s ])
        | _ -> (bc, bp))
      (0.0, []) t.resolved.Gdef.order
  in
  let critical_path =
    match fill_path with [] -> [ bottleneck_stage ] | p -> p
  in
  (* the sink closes the path but contributes no fill cycles *)
  let fill_stages =
    match List.rev critical_path with
    | [] | [ _ ] -> []
    | _sink :: rest -> List.rev rest
  in
  (* Eq. G4: per-channel stalls, in channel declaration order. *)
  let per_edge =
    List.map
      (fun (c : Gdef.channel) ->
        let stall, skew = edge_stall dev t j c in
        (c, stall, skew))
      graph.Gdef.channels
  in
  let per_edge_stall =
    List.map (fun ((c : Gdef.channel), s, _) -> (c.Gdef.c_name, s)) per_edge
  in
  let stall = fold_sum (List.map (fun (_, s, _) -> s) per_edge) in
  let cycles = fold_sum [ steady; fill; stall ] in
  let b =
    {
      per_stage;
      steady;
      fill;
      stall;
      per_edge_stall;
      bottleneck_stage;
      critical_path;
      cycles;
      seconds = Device.cycles_to_seconds dev cycles;
    }
  in
  let trace =
    if not want_trace then None
    else
      let steady_children =
        List.map
          (fun (s, (sb : Model.breakdown)) ->
            if s = bottleneck_stage then
              let _, tr =
                Model.explain ?options dev
                  (analysis_at t s (config_of j s))
                  (config_of j s)
              in
              Trace.node_at ~eq:"Eq.G2" ("stage " ^ s) sb.Model.cycles
                [ tr ]
            else
              Trace.leaf ~eq:"Eq.G2"
                ~notes:[ ("cycles", sb.Model.cycles) ]
                ("stage " ^ s) 0.0)
          per_stage
      in
      let fill_children =
        List.map
          (fun s ->
            Trace.leaf ~eq:"Eq.G3"
              ~notes:[ ("l_cu", fill_contrib s) ]
              ("fill " ^ s) (fill_contrib s))
          fill_stages
      in
      let stall_children =
        List.map
          (fun ((c : Gdef.channel), stall, skew) ->
            Trace.leaf ~eq:"Eq.G4"
              ~notes:
                [
                  ("depth", float_of_int (depth_of j c)); ("skew", skew);
                ]
              ("channel " ^ c.Gdef.c_name) stall)
          per_edge
      in
      Some
        (Trace.node ~eq:"Eq.G1"
           ~notes:[ ("stages", float_of_int (List.length stages)) ]
           ("pipeline " ^ graph.Gdef.g_name)
           [
             Trace.node_at ~eq:"Eq.G2" "steady state" steady steady_children;
             Trace.node_at ~eq:"Eq.G3" "fill/drain" fill fill_children;
             Trace.node_at ~eq:"Eq.G4" "channel stalls" stall stall_children;
           ])
  in
  (b, trace)

let model_breakdown ?options dev _stage a cfg = Model.estimate ?options dev a cfg

let estimate ?options dev t j =
  fst (compute ?options ~breakdown_of:(model_breakdown ?options dev) ~want_trace:false dev t j)

let cycles dev t j = (estimate dev t j).cycles

let explain ?options dev t j =
  match
    compute ?options ~breakdown_of:(model_breakdown ?options dev) ~want_trace:true dev t j
  with
  | b, Some trace -> (b, trace)
  | _, None -> assert false

let estimate_result ?options dev t j =
  match estimate ?options dev t j with
  | b -> Ok b
  | exception (Out_of_memory as e) -> raise e
  | exception exn -> Error (Analysis.diag_of_exn exn)

let lower_bound dev t j =
  validate_joint t j;
  List.fold_left
    (fun acc (s, _) ->
      let cfg = config_of j s in
      Float.max acc (Model.lower_bound dev (analysis_at t s cfg) cfg))
    0.0 t.stage_analyses

let bottleneck (b : gbreakdown) =
  let stage_share = if b.cycles > 0.0 then b.steady /. b.cycles else 1.0 in
  if b.stall > b.fill && b.stall > b.steady *. 0.25 then
    "channel backpressure (deepen FIFOs)"
  else if stage_share < 0.5 then "pipeline fill/drain (fuse or shorten stages)"
  else
    Printf.sprintf "stage %s: %s" b.bottleneck_stage
      (Model.bottleneck (List.assoc b.bottleneck_stage b.per_stage))

(* ------------------------------------------------------------------ *)
(* Joint design-space exploration (per-stage DSP share x per-edge
   depth), staged through the specialized single-kernel oracles. *)

type jspace = {
  pe_counts : int list;
  cu_counts : int list;
  pipeline_choices : bool list;
  comm_modes : Config.comm_mode list;
  depth_choices : int list;
}

let default_jspace =
  {
    pe_counts = [ 1; 2; 4 ];
    cu_counts = [ 1; 2 ];
    pipeline_choices = [ true ];
    comm_modes = [ Config.Pipeline_mode ];
    depth_choices = [ 1; 4; 16 ];
  }

type jevaluated = { joint : joint; jcycles : float }

let stage_candidates t sp stage =
  let a = stage_analysis t stage in
  let wg_size = Launch.wg_size a.Analysis.launch in
  List.concat_map
    (fun n_pe ->
      List.concat_map
        (fun n_cu ->
          List.concat_map
            (fun wi_pipeline ->
              List.map
                (fun comm_mode ->
                  { Config.wg_size; n_pe; n_cu; wi_pipeline; comm_mode })
                sp.comm_modes)
            sp.pipeline_choices)
        sp.cu_counts)
    sp.pe_counts

let cross lists =
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun c -> List.map (fun rest -> c :: rest) acc) choices)
    lists [ [] ]

let joint_points dev t sp =
  let stages = List.map fst t.stage_analyses in
  let per_stage_feasible =
    List.map
      (fun s ->
        let a = stage_analysis t s in
        List.map
          (fun cfg -> (s, cfg))
          (List.filter (fun cfg -> Model.feasible dev a cfg)
             (stage_candidates t sp s)))
      stages
  in
  let channels = t.resolved.Gdef.graph.Gdef.channels in
  let depth_assignments =
    cross
      (List.map
         (fun (c : Gdef.channel) ->
           List.map (fun d -> (c.Gdef.c_name, d)) sp.depth_choices)
         channels)
  in
  List.concat_map
    (fun stage_configs ->
      List.map (fun depths -> { stage_configs; depths }) depth_assignments)
    (cross per_stage_feasible)

(* The graph tail shared by the staged sweep and the unstaged reference:
   both feed per-stage breakdowns through [compute], so rankings are
   bitwise identical whenever the per-stage breakdowns are — which
   [Model.specialize]'s bitwise contract guarantees. *)
let explore_with ~breakdown_of dev t sp =
  let points = joint_points dev t sp in
  let evaluated =
    List.map
      (fun j ->
        {
          joint = j;
          jcycles =
            (fst (compute ~breakdown_of ~want_trace:false dev t j)).cycles;
        })
      points
  in
  List.sort
    (fun a b ->
      match Float.compare a.jcycles b.jcycles with
      | 0 -> compare_joint a.joint b.joint
      | n -> n)
    evaluated

(* Stage the single-kernel model once per (device, stage): every
   stage's feasible candidates go through [Parsweep.eval_batch] with
   the specialized oracle (parallel domains), and the full breakdowns
   the graph tail needs come from the same staged model — the two are
   cross-checked bitwise per point. *)
let staged_tables ~num_domains dev t sp =
  List.map
    (fun (s, a) ->
      let sm = Explore.specialized_for dev a in
      let candidates =
        List.filter
          (fun cfg -> Model.feasible dev a cfg)
          (stage_candidates t sp s)
      in
      let batch =
        Parsweep.eval_batch ~num_domains a candidates
          (Explore.specialized_model_oracle dev)
      in
      let table = Hashtbl.create 16 in
      List.iter2
        (fun cfg (e : Parsweep.evaluated) ->
          let b = Model.specialized_estimate sm cfg in
          if
            Int64.bits_of_float b.Model.cycles
            <> Int64.bits_of_float e.Parsweep.cycles
          then
            invalid_arg
              (Printf.sprintf
                 "Pipeline.explore: staged oracle diverged on %s at %s" s
                 (Config.to_string cfg));
          Hashtbl.replace table cfg b)
        candidates batch;
      (s, (sm, table)))
    t.stage_analyses

let table_breakdown tables s (_ : Analysis.t) cfg =
  let sm, table = List.assoc s tables in
  match Hashtbl.find_opt table cfg with
  | Some b -> b
  | None -> Model.specialized_estimate sm cfg

let explore ?(num_domains = 0) dev t sp =
  let tables = staged_tables ~num_domains dev t sp in
  explore_with ~breakdown_of:(table_breakdown tables) dev t sp

(* Unstaged reference sweep: direct [Model.estimate] per joint point,
   no specialization, no parallel batch. The differential tests pin
   that [explore] ranks identically, bitwise. *)
let explore_reference dev t sp =
  explore_with ~breakdown_of:(model_breakdown dev) dev t sp

type jprogress = { jtotal : int; jevaluated : int; jpruned : int }

(* Best joint point under bound pruning: the graph lower bound — max
   over stages of the staged single-kernel lower bound, a true bound
   because cycles >= steady >= max stage cycles >= max stage bound —
   skips a point without computing the tail when it already exceeds the
   incumbent (strictly, so ties are always evaluated). *)
let best ?(num_domains = 0) dev t sp =
  let tables = staged_tables ~num_domains dev t sp in
  let breakdown_of = table_breakdown tables in
  let bound j =
    List.fold_left
      (fun acc (s, (sm, _)) ->
        Float.max acc (Model.specialized_lower_bound sm (config_of j s)))
      0.0 tables
  in
  let points = joint_points dev t sp in
  let incumbent, stats =
    List.fold_left
      (fun (inc, stats) j ->
        let prune =
          match inc with
          | Some (_, c) -> bound j > c +. (1e-9 *. Float.max c 1.0)
          | None -> false
        in
        if prune then (inc, { stats with jpruned = stats.jpruned + 1 })
        else
          let c = (fst (compute ~breakdown_of ~want_trace:false dev t j)).cycles in
          let stats = { stats with jevaluated = stats.jevaluated + 1 } in
          match inc with
          | Some (jb, cb)
            when cb < c || (cb = c && compare_joint jb j <= 0) ->
              (inc, stats)
          | _ -> (Some (j, c), stats))
      (None, { jtotal = List.length points; jevaluated = 0; jpruned = 0 })
      points
  in
  Option.map
    (fun (j, c) -> ({ joint = j; jcycles = c }, stats))
    incumbent

(* ------------------------------------------------------------------ *)
(* Buffer→channel placement co-optimization (DESIGN.md §15).

   A stage's placement affects only that stage's own memory roofline:
   L_CU (the fill term) is the compute path and the stall term is round
   geometry, both placement-independent, and the steady term is the max
   over stage cycles — monotone in each of them. The joint optimum over
   placements therefore resolves per (stage, config) independently: for
   every stage candidate keep the placement minimizing that stage's
   cycles, and sweep the joint space over the resolved tables. *)

type pevaluated = {
  pjoint : joint;
  placements : (string * (string * int) list) list;  (* per stage *)
  pcycles : float;
}

(* [breakdown_on] is called on the *placed* analysis, so the staged and
   reference variants differ only in how a breakdown is produced —
   tie-breaks (first placement in candidate order wins a cycle tie) are
   shared, which is what makes the two rankings bitwise comparable. *)
let placed_tables_with ~breakdown_on dev t sp =
  let n_channels =
    dev.Device.dram.Flexcl_dram.Dram.n_channels
  in
  List.map
    (fun (s, a) ->
      let candidates =
        List.filter (fun cfg -> Model.feasible dev a cfg) (stage_candidates t sp s)
      in
      let table : (Config.t, (string * int) list * Model.breakdown) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun p ->
          let ap = if p = [] then a else Analysis.with_placement a p in
          List.iter
            (fun cfg ->
              let b = breakdown_on ap cfg in
              match Hashtbl.find_opt table cfg with
              | Some (_, (bb : Model.breakdown))
                when bb.Model.cycles <= b.Model.cycles ->
                  ()
              | _ -> Hashtbl.replace table cfg (p, b))
            candidates)
        (Explore.placement_candidates a ~n_channels);
      (s, table))
    t.stage_analyses

let explore_placed_with ~breakdown_on dev t sp =
  let tables = placed_tables_with ~breakdown_on dev t sp in
  let breakdown_of s (_ : Analysis.t) cfg =
    snd (Hashtbl.find (List.assoc s tables) cfg)
  in
  let placements_of j =
    List.map
      (fun (s, cfg) -> (s, fst (Hashtbl.find (List.assoc s tables) cfg)))
      j.stage_configs
  in
  joint_points dev t sp
  |> List.map (fun j ->
         {
           pjoint = j;
           placements = placements_of j;
           pcycles =
             (fst (compute ~breakdown_of ~want_trace:false dev t j)).cycles;
         })
  |> List.sort (fun a b ->
         match Float.compare a.pcycles b.pcycles with
         | 0 -> compare_joint a.pjoint b.pjoint
         | n -> n)

let explore_placed dev t sp =
  explore_placed_with dev t sp ~breakdown_on:(fun ap cfg ->
      Model.specialized_estimate (Explore.specialized_for dev ap) cfg)

let explore_placed_reference dev t sp =
  explore_placed_with dev t sp ~breakdown_on:(fun ap cfg ->
      Model.estimate dev ap cfg)

(* Best placed joint point under bound pruning. The single-kernel lower
   bound is placement-independent (critical path and total transaction
   counts do not move with buffers; the memory floor is the 1/N_chan
   stream floor, valid for every placement), so the bound staged on the
   *base* analyses is a true bound for every placement-resolved point. *)
let best_placed dev t sp =
  let tables =
    placed_tables_with dev t sp ~breakdown_on:(fun ap cfg ->
        Model.specialized_estimate (Explore.specialized_for dev ap) cfg)
  in
  let breakdown_of s (_ : Analysis.t) cfg =
    snd (Hashtbl.find (List.assoc s tables) cfg)
  in
  let bound j =
    List.fold_left
      (fun acc (s, a) ->
        Float.max acc
          (Model.specialized_lower_bound
             (Explore.specialized_for dev a)
             (config_of j s)))
      0.0 t.stage_analyses
  in
  let points = joint_points dev t sp in
  let incumbent, stats =
    List.fold_left
      (fun (inc, stats) j ->
        let prune =
          match inc with
          | Some (_, c) -> bound j > c +. (1e-9 *. Float.max c 1.0)
          | None -> false
        in
        if prune then (inc, { stats with jpruned = stats.jpruned + 1 })
        else
          let c = (fst (compute ~breakdown_of ~want_trace:false dev t j)).cycles in
          let stats = { stats with jevaluated = stats.jevaluated + 1 } in
          match inc with
          | Some (jb, cb) when cb < c || (cb = c && compare_joint jb j <= 0) ->
              (inc, stats)
          | _ -> (Some (j, c), stats))
      (None, { jtotal = List.length points; jevaluated = 0; jpruned = 0 })
      points
  in
  Option.map
    (fun (j, c) ->
      let placements =
        List.map
          (fun (s, cfg) -> (s, fst (Hashtbl.find (List.assoc s tables) cfg)))
          j.stage_configs
      in
      ({ pjoint = j; placements; pcycles = c }, stats))
    incumbent
