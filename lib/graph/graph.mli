(** The kernel-graph analytical model (DESIGN.md §14).

    A resolved multi-kernel pipeline estimates as

    {v L_graph = L_steady + L_fill + L_stall                (Eq. G1) v}

    - [L_steady]: the pipeline advances at the slowest stage's rate —
      the max over stages of the single-kernel model's cycles (Eq. G2);
    - [L_fill]: fill/drain latency — the max over source-to-sink paths
      of the sum of one CU pass ([L_CU], Eq. 5) of every stage on the
      path except the sink (Eq. G3);
    - [L_stall]: channel backpressure — a channel whose depth is below
      the producer/consumer burst skew per work-group round pays the
      channel round-trip per excess packet per round (Eq. G4).

    {!estimate} and {!explain} share one compute path: the explain trace
    root carries exactly [cycles] and every level recomposes bitwise
    (the totals are the same left folds [Trace.check] re-runs). A graph
    of one kernel degenerates to [fill = stall = 0] and reproduces
    {!Model.estimate} bitwise. *)

module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Trace = Flexcl_util.Trace
module Diag = Flexcl_util.Diag

type analyzed = {
  resolved : Gdef.resolved;
  stage_analyses : (string * Analysis.t) list;
      (** per stage, topological order. *)
}

val analyze :
  ?max_work_groups:int ->
  ?max_steps:int ->
  Gdef.t ->
  (analyzed, Diag.t list) result
(** {!Gdef.resolve} plus a full single-kernel {!Analysis.analyze} per
    stage (profiling included); stage diagnostics are tagged with the
    stage name. *)

val name : analyzed -> string

val stage_analysis : analyzed -> string -> Analysis.t
(** Raises [Invalid_argument] on an unknown stage name. *)

(** {2 Joint design points} *)

type joint = {
  stage_configs : (string * Config.t) list;
      (** one design point per stage (every stage must appear). *)
  depths : (string * int) list;
      (** per-channel FIFO depth overrides; a channel not listed keeps
          its {!Gdef.channel} depth. *)
}

val default_joint : analyzed -> joint
(** [Config.default] per stage at the stage launch's work-group size
    (pipeline communication mode), graph-declared depths. *)

val joint_to_string : joint -> string

val compare_joint : joint -> joint -> int

val config_of : joint -> string -> Config.t
(** Raises [Invalid_argument] on an unknown stage. *)

val depth_of : joint -> Gdef.channel -> int

val feasible : Device.t -> analyzed -> joint -> bool
(** Every stage's point passes {!Model.feasible} and every depth is
    positive. *)

(** {2 Estimation} *)

type gbreakdown = {
  per_stage : (string * Model.breakdown) list;
  steady : float;        (** Eq. G2. *)
  fill : float;          (** Eq. G3. *)
  stall : float;         (** Eq. G4, summed over channels. *)
  per_edge_stall : (string * float) list;
      (** per channel, declaration order. *)
  bottleneck_stage : string;
  critical_path : string list;  (** the fill path, source to sink. *)
  cycles : float;        (** Eq. G1: [steady + fill + stall]. *)
  seconds : float;
}

val estimate :
  ?options:Model.options -> Device.t -> analyzed -> joint -> gbreakdown
(** Raises [Invalid_argument] (with a ["Pipeline."] prefix, classified
    as [Config_invalid]) when the joint point misses a stage or has a
    non-positive depth. Stage points whose [wg_size] differs from the
    stage launch re-analyze through the DSE engine's memo. *)

val cycles : Device.t -> analyzed -> joint -> float

val explain :
  ?options:Model.options ->
  Device.t ->
  analyzed ->
  joint ->
  gbreakdown * Trace.t
(** {!estimate} plus the conservation-checked attribution trace: the
    root carries exactly [cycles]; its three children are the steady
    (embedding the bottleneck stage's full {!Model.explain} subtree,
    other stages as 0-cycle alternatives), fill (one leaf per
    critical-path stage) and stall (one leaf per channel) terms. *)

val estimate_result :
  ?options:Model.options ->
  Device.t ->
  analyzed ->
  joint ->
  (gbreakdown, Diag.t) result
(** Total variant of {!estimate}. *)

val lower_bound : Device.t -> analyzed -> joint -> float
(** Max over stages of {!Model.lower_bound} — a true lower bound of
    {!cycles} ([cycles >= steady >= max stage cycles]). *)

val bottleneck : gbreakdown -> string
(** Human-readable dominant term: the bottleneck stage's single-kernel
    bottleneck, channel backpressure, or fill/drain. *)

(** {2 Joint design-space exploration}

    The joint space crosses per-stage knobs (the DSP share: PE and CU
    replication, work-item pipelining) with per-channel FIFO depths.
    {!explore} stages every stage's model once ({!Model.specialize} via
    {!Flexcl_dse.Explore.specialized_for}), evaluates stage candidates
    through {!Flexcl_dse.Parsweep.eval_batch}, and ranks joint points
    with the shared graph tail — bitwise identical to the unstaged
    {!explore_reference} (the differential tests pin this). *)

type jspace = {
  pe_counts : int list;
  cu_counts : int list;
  pipeline_choices : bool list;
  comm_modes : Config.comm_mode list;
  depth_choices : int list;
}

val default_jspace : jspace
(** PE {1,2,4} x CU {1,2} x pipelining on x pipeline mode x depths
    {1,4,16} — a few thousand joint points on a three-stage graph. *)

type jevaluated = { joint : joint; jcycles : float }

val joint_points : Device.t -> analyzed -> jspace -> joint list
(** Every joint assignment of per-stage feasible candidates and
    per-channel depths, deterministic order. *)

val explore : ?num_domains:int -> Device.t -> analyzed -> jspace -> jevaluated list
(** All joint points ranked fastest-first (ties by {!compare_joint}),
    through the staged per-stage oracles. Default model options. *)

val explore_reference : Device.t -> analyzed -> jspace -> jevaluated list
(** The unstaged reference sweep (direct {!Model.estimate} per stage per
    point): same ranking as {!explore}, bitwise. *)

type jprogress = { jtotal : int; jevaluated : int; jpruned : int }

val best :
  ?num_domains:int ->
  Device.t ->
  analyzed ->
  jspace ->
  (jevaluated * jprogress) option
(** The fastest joint point under bound-based pruning: a point whose
    graph lower bound (max over stages of the staged
    {!Model.specialized_lower_bound}) strictly exceeds the incumbent is
    skipped without evaluating the tail. Agrees with
    [List.hd (explore ...)]; [None] when no stage has a feasible
    candidate. *)

(** {2 Placement-aware joint DSE (DESIGN.md §15)}

    On a multi-channel device each stage's buffer→channel placement is a
    further joint knob. A stage's placement affects only that stage's
    own memory roofline — the fill term (Eq. 5's [L_CU]) and the stall
    term are placement-independent and the steady term is monotone in
    each stage's cycles — so the joint optimum resolves placement per
    (stage, config) independently: for every stage candidate the
    placement (from {!Flexcl_dse.Explore.placement_candidates})
    minimizing that stage's cycles is kept, and the joint sweep runs
    over the resolved tables. *)

type pevaluated = {
  pjoint : joint;
  placements : (string * (string * int) list) list;
      (** chosen buffer→channel placement per stage, topological order. *)
  pcycles : float;
}

val explore_placed : Device.t -> analyzed -> jspace -> pevaluated list
(** Every joint point with its per-stage placements resolved, ranked
    fastest-first (ties by {!compare_joint}), through the staged
    per-stage models. On a 1-channel device the only candidate placement
    is empty and the ranking degenerates to {!explore}'s. *)

val explore_placed_reference : Device.t -> analyzed -> jspace -> pevaluated list
(** The unstaged reference (direct {!Model.estimate} on each placed
    analysis): same ranking as {!explore_placed}, bitwise — the
    differential tests pin this. *)

val best_placed :
  Device.t -> analyzed -> jspace -> (pevaluated * jprogress) option
(** The fastest placement-resolved joint point under bound pruning. The
    single-kernel lower bound is placement-independent (the memory floor
    is the 1/N_chan stream floor, valid for every placement), so the
    bound staged on the base analyses soundly prunes placement-resolved
    points. Agrees with [List.hd (explore_placed ...)]. *)
