(** Kernel-graph definitions: a multi-kernel pipeline as data
    (DESIGN.md §14).

    A graph names its stages — one kernel with its own launch each — and
    wires channels between [pipe] parameters: the producer endpoint must
    be write-only in its kernel, the consumer read-only, packet types
    must agree across the channel, every pipe parameter must be wired by
    exactly one endpoint, and the stage graph must be acyclic.
    {!resolve} checks all of it totally, reporting structured
    diagnostics ([Pipe_unbound] / [Pipe_cycle] / [Pipe_mismatch] /
    [Config_invalid]) instead of raising. *)

module Ast = Flexcl_opencl.Ast
module Sema = Flexcl_opencl.Sema
module Launch = Flexcl_ir.Launch
module Diag = Flexcl_util.Diag

type stage = {
  s_name : string;    (** unique within the graph. *)
  s_source : string;  (** single-kernel OpenCL source. *)
  s_launch : Launch.t;
}

type endpoint = {
  e_stage : string;  (** stage name. *)
  e_param : string;  (** [pipe] parameter name within that stage. *)
}

type channel = {
  c_name : string;      (** unique within the graph. *)
  producer : endpoint;  (** write-only endpoint. *)
  consumer : endpoint;  (** read-only endpoint. *)
  depth : int;          (** FIFO capacity in packets, >= 1. *)
}

type t = {
  g_name : string;
  stages : stage list;
  channels : channel list;
}

type resolved_stage = {
  r_stage : stage;
  r_kernel : Ast.kernel;
  r_info : Sema.info;
}

type resolved = {
  graph : t;
  rstages : resolved_stage list;  (** in topological order. *)
  order : string list;  (** stage names, topologically sorted. *)
}

val stage_names : t -> string list

val find_stage : t -> string -> stage option

val find_channel : t -> string -> channel option

val in_edges : t -> string -> channel list
(** Channels consumed by a stage. *)

val out_edges : t -> string -> channel list
(** Channels produced by a stage. *)

val resolve : t -> (resolved, Diag.t list) result
(** Parse and type-check every stage (frontend diagnostics are tagged
    with the stage name as their file), then validate the wiring:
    endpoint existence and direction ([Diag.Pipe_unbound]), packet-type
    agreement ([Diag.Pipe_mismatch]), acyclicity ([Diag.Pipe_cycle]),
    single wiring per pipe, positive depths and unique names
    ([Diag.Config_invalid]). Never raises on malformed input. *)

val of_program :
  name:string ->
  depth:int ->
  (string * string * Launch.t) list ->
  (t, Diag.t list) result
(** Auto-wire a graph from [(stage_name, source, launch)] triples:
    a channel is created for every pipe parameter name written by one
    kernel and read by exactly one other (all channels get [depth]).
    A written-but-never-read or read-but-never-written pipe, or a pipe
    with several readers, is a [Pipe_unbound] diagnostic. *)
