(** Co-simulated ground truth for kernel graphs.

    Each stage runs through the cycle-level system simulator
    ({!Flexcl_simrtl.Sysrun}, seeded) for its per-work-group service
    time; stages are then composed by a deterministic discrete-event
    simulation at work-group granularity over bounded channels — a
    consumer round starts only when its inbound channels hold enough
    packets, a producer round only when the channel depth leaves room
    (backpressure), so small FIFOs serialize the pipeline just as the
    analytical stall term predicts. *)

module Device = Flexcl_device.Device
module Sysrun = Flexcl_simrtl.Sysrun

type result = {
  cycles : float;   (** completion time of the last work-group. *)
  seconds : float;
  per_stage : (string * Sysrun.result) list;
      (** the per-stage simulator runs (topological order). *)
  rounds : int;     (** work-group completions simulated by the DES. *)
}

val run :
  ?seed:int ->
  ?rounds_override:(string * int) list ->
  Device.t ->
  Graph.analyzed ->
  Graph.joint ->
  result
(** [rounds_override] reschedules a stage for a different number of
    work-group rounds at its measured service time — a sizing
    sensitivity knob (what if the producer covered 4x the data?).
    Raises [Failure] with a ["Pipeline."]-prefixed message on a graph
    whose packet rates or channel sizing deadlock the work-group-
    granular DES (e.g. a consumer that needs more packets than its
    producers ever emit — the usual outcome of an unbalanced override),
    and [Invalid_argument] on an unknown stage name or a round count
    below 1. *)
