module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis
module Launch = Flexcl_ir.Launch
module Cdfg = Flexcl_ir.Cdfg
module Memo = Flexcl_util.Memo
module Pool = Flexcl_util.Pool

type evaluated = { config : Config.t; cycles : float }

type oracle = Analysis.t -> Config.t -> float

type progress = { total : int; evaluated : int; pruned : int; failed : int }

(* ------------------------------------------------------------------ *)
(* Shared re-analysis memo: the costly part of a sweep is re-profiling
   per work-group size. One thread-safe table serves every sweep, keyed
   by the same stable content hash the serve cache uses —
   [Launch.fingerprint] covers the NDRange and the full argument recipe
   (but not the local size, which is the dimension being re-swept), so
   two launches agreeing on content share entries even when built
   separately. The identity witnesses still invalidate entries left by
   a different kernel that happens to collide on name and hash. *)

let analysis_memo : (string, Analysis.t) Memo.t = Memo.create ()

let analysis_for (base : Analysis.t) wg_size =
  if Launch.wg_size base.Analysis.launch = wg_size then base
  else
    let key =
      Printf.sprintf "%s#%s#wg%d" base.Analysis.cdfg.Cdfg.kernel_name
        (Launch.fingerprint base.Analysis.launch)
        wg_size
    in
    Memo.find_or_add analysis_memo key
      ~valid:(fun a ->
        a.Analysis.kernel == base.Analysis.kernel
        && a.Analysis.launch.Launch.global = base.Analysis.launch.Launch.global
        && a.Analysis.launch.Launch.args == base.Analysis.launch.Launch.args)
      (fun () -> Analysis.with_wg_size base wg_size)

(* ------------------------------------------------------------------ *)
(* Chunking: group points by work-group size (so a chunk needs exactly
   one memoized analysis), then split large groups so the pool has a few
   tasks per executor to balance. *)

let split_chunks size items =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 items

let chunks ?num_domains ~wg_of items =
  let d =
    match num_domains with Some d -> d | None -> Pool.default_num_domains ()
  in
  let total = List.length items in
  let target_tasks = max 1 (4 * (d + 1)) in
  let size = max 1 ((total + target_tasks - 1) / target_tasks) in
  (* group by wg size, preserving first-appearance order of sizes and
     point order within a size *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun x ->
      let wg = wg_of x in
      match Hashtbl.find_opt tbl wg with
      | Some l -> l := x :: !l
      | None ->
          let l = ref [ x ] in
          Hashtbl.replace tbl wg l;
          order := wg :: !order)
    items;
  List.rev !order
  |> List.concat_map (fun wg ->
         let group = List.rev !(Hashtbl.find tbl wg) in
         List.map (fun sub -> (wg, sub)) (split_chunks size group))

let rank =
  List.sort (fun a b -> compare (a.cycles, a.config) (b.cycles, b.config))

(* ------------------------------------------------------------------ *)

let sweep_stats ?num_domains ?progress dev (base : Analysis.t) space oracle =
  let points = Space.feasible_points dev base space in
  let total = List.length points in
  let mutex = Mutex.create () in
  let st = ref { total; evaluated = 0; pruned = 0; failed = 0 } in
  let bump update =
    Mutex.lock mutex;
    st := update !st;
    (match progress with Some f -> f !st | None -> ());
    Mutex.unlock mutex
  in
  let tasks =
    chunks ?num_domains ~wg_of:(fun (c : Config.t) -> c.Config.wg_size) points
    |> List.map (fun (wg, cfgs) () ->
           let analysis = analysis_for base wg in
           (* partially apply once per chunk: a staged oracle (e.g.
              [Explore.specialized_model_oracle]) resolves its
              specialization here, not per point *)
           let eval = oracle analysis in
           List.filter_map
             (fun cfg ->
               let c = eval cfg in
               if Float.is_finite c then begin
                 bump (fun s -> { s with evaluated = s.evaluated + 1 });
                 Some { config = cfg; cycles = c }
               end
               else begin
                 (* a failing oracle (SDAccel maps failures to infinity)
                    must never rank among real estimates *)
                 bump (fun s -> { s with failed = s.failed + 1 });
                 None
               end)
             cfgs)
  in
  let results = Pool.with_pool ?num_domains (fun pool -> Pool.run pool tasks) in
  (rank (List.concat results), !st)

let sweep ?num_domains ?progress dev base space oracle =
  fst (sweep_stats ?num_domains ?progress dev base space oracle)

(* Pruning threshold: skip only when the bound exceeds the incumbent by
   more than a rounding margin, so a point whose true cost ties the
   incumbent (and could win the config tie-break) is always evaluated. *)
let prune_threshold c = c +. (Float.abs c *. 1e-9) +. 1e-6

let best ?num_domains ?progress ?bound dev (base : Analysis.t) space oracle =
  let points = Space.feasible_points dev base space in
  let total = List.length points in
  let mutex = Mutex.create () in
  let st = ref { total; evaluated = 0; pruned = 0; failed = 0 } in
  let incumbent = ref None in
  let bump update =
    st := update !st;
    match progress with Some f -> f !st | None -> ()
  in
  let beats a b = compare (a.cycles, a.config) (b.cycles, b.config) < 0 in
  let tasks =
    chunks ?num_domains ~wg_of:(fun (c : Config.t) -> c.Config.wg_size) points
    |> List.map (fun (wg, cfgs) () ->
           let analysis = analysis_for base wg in
           let eval = oracle analysis in
           let lb_eval =
             match bound with None -> None | Some lb -> Some (lb analysis)
           in
           List.iter
             (fun cfg ->
               let skip =
                 match lb_eval with
                 | None -> false
                 | Some lb -> (
                     let b = lb cfg in
                     Mutex.lock mutex;
                     let s =
                       match !incumbent with
                       | Some e -> b > prune_threshold e.cycles
                       | None -> false
                     in
                     if s then bump (fun st -> { st with pruned = st.pruned + 1 });
                     Mutex.unlock mutex;
                     s)
               in
               if not skip then begin
                 let c = eval cfg in
                 Mutex.lock mutex;
                 if Float.is_finite c then begin
                   let e = { config = cfg; cycles = c } in
                   (match !incumbent with
                   | Some cur when not (beats e cur) -> ()
                   | _ -> incumbent := Some e);
                   bump (fun st -> { st with evaluated = st.evaluated + 1 })
                 end
                 else bump (fun st -> { st with failed = st.failed + 1 });
                 Mutex.unlock mutex
               end)
             cfgs)
  in
  (match Pool.with_pool ?num_domains (fun pool -> Pool.run pool tasks) with
  | (_ : unit list) -> ());
  (!incumbent, !st)

let eval_batch ?num_domains (base : Analysis.t) cfgs oracle =
  let n = List.length cfgs in
  if n = 0 then []
  else begin
    let out = Array.make n None in
    let indexed = List.mapi (fun i c -> (i, c)) cfgs in
    let tasks =
      chunks ?num_domains
        ~wg_of:(fun (_, (c : Config.t)) -> c.Config.wg_size)
        indexed
      |> List.map (fun (wg, sub) () ->
             let analysis = analysis_for base wg in
             let eval = oracle analysis in
             List.iter
               (fun (i, cfg) ->
                 out.(i) <- Some { config = cfg; cycles = eval cfg })
               sub)
    in
    (match Pool.with_pool ?num_domains (fun pool -> Pool.run pool tasks) with
    | (_ : unit list) -> ());
    Array.to_list out
    |> List.map (function Some e -> e | None -> assert false)
  end
