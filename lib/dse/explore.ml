module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis
module Sysrun = Flexcl_simrtl.Sysrun
module Sdaccel = Flexcl_simrtl.Sdaccel_estimate

type evaluated = Parsweep.evaluated = { config : Config.t; cycles : float }

type oracle = Parsweep.oracle

(* Re-analysis per work-group size is the costly part of a sweep: the
   engine caches it in a thread-safe memo keyed on (kernel, wg size). *)
let analysis_for = Parsweep.analysis_for

let model_oracle dev : oracle = fun analysis cfg -> Model.cycles dev analysis cfg

(* ------------------------------------------------------------------ *)
(* Staged model oracle (DESIGN.md §11): one [Model.specialize] per
   (kernel, launch fingerprint, device, wg size), shared process-wide
   and across domains, then every design point of a sweep chunk runs on
   the closed-form tail. Keyed like [Parsweep.analysis_for] — the
   fingerprint excludes the local size, which is the dimension being
   swept — with an identity witness so a stale entry left by a different
   analysis object that collides on the key is recomputed, never reused
   (specialized evaluation is only bitwise-exact against the analysis it
   was staged on). *)

let specialize_memo : (string, Analysis.t * Model.specialized) Flexcl_util.Memo.t
    =
  Flexcl_util.Memo.create ()

let specialized_for dev (analysis : Analysis.t) =
  let key =
    Printf.sprintf "%s#%s#%s#wg%d"
      analysis.Analysis.cdfg.Flexcl_ir.Cdfg.kernel_name
      (Flexcl_ir.Launch.fingerprint analysis.Analysis.launch)
      dev.Flexcl_device.Device.name
      (Flexcl_ir.Launch.wg_size analysis.Analysis.launch)
  in
  snd
    (Flexcl_util.Memo.find_or_add specialize_memo key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () -> (analysis, Model.specialize dev analysis)))

let specialized_model_oracle dev : oracle =
 fun analysis ->
  let sp = specialized_for dev analysis in
  Model.specialized_cycles sp

let specialized_bound dev : oracle =
 fun analysis ->
  let sp = specialized_for dev analysis in
  Model.specialized_lower_bound sp

let sysrun_oracle ?seed dev : oracle =
 fun analysis cfg -> (Sysrun.run ?seed dev analysis cfg).Sysrun.cycles

let sdaccel_oracle dev : oracle =
 fun analysis cfg ->
  match Sdaccel.estimate dev analysis cfg with
  | Some c -> c
  | None -> infinity

let exhaustive ?num_domains dev (base : Analysis.t) space (oracle : oracle) =
  Parsweep.sweep ?num_domains dev base space oracle

let empty_space_diag =
  Flexcl_util.Diag.error Flexcl_util.Diag.Empty_design_space
    "no feasible design point: every configuration exceeds the device resources"

let all_failed_diag =
  Flexcl_util.Diag.error Flexcl_util.Diag.Empty_design_space
    "every feasible design point failed its cost oracle (non-finite cost)"

let best ?num_domains dev base space oracle =
  match Parsweep.best ?num_domains dev base space oracle with
  | Some e, _ -> e
  | None, _ -> invalid_arg "Explore.best: no rankable design point"

let best_result ?num_domains dev base space oracle =
  match Parsweep.best ?num_domains dev base space oracle with
  | Some e, _ -> Ok e
  | None, st -> Error (if st.Parsweep.total > 0 then all_failed_diag else empty_space_diag)
  | exception (Out_of_memory as e) -> raise e
  | exception exn -> Error (Analysis.diag_of_exn exn)

(* ------------------------------------------------------------------ *)
(* Buffer→channel placement co-optimization (DESIGN.md §15).

   On a multi-channel device the memory roofline depends on which
   channel each buffer is bound to. The full placement space is
   [n_channels ^ n_buffers]; the candidate set below covers its
   structurally distinct corners — every spreading granularity plus
   every single-buffer isolation — in O(n_buffers) sweeps. Pruning
   inside each sweep stays sound because the model's memory lower bound
   is placement-independent (the 1/N_chan floor of the stream holds for
   every placement), so one bound serves all candidates. *)

type placed = { placement : (string * int) list; best_point : evaluated }

let placement_candidates (a : Analysis.t) ~n_channels =
  if n_channels <= 1 then [ [] ]
  else
    let buffers = Flexcl_ir.Launch.buffer_names a.Analysis.launch in
    let n = List.length buffers in
    (* group size g: buffers i, i+1, .., i+g-1 share channel (i/g) mod N;
       g = 1 is round robin, g >= n degenerates to all-on-0 *)
    let spread g = List.mapi (fun i b -> (b, i / g mod n_channels)) buffers in
    let rec spreads g acc =
      if g >= max 1 n then List.rev acc else spreads (2 * g) (spread g :: acc)
    in
    (* isolate buffer j on channel 1, everything else on channel 0 *)
    let isolate j = List.mapi (fun i b -> (b, if i = j then 1 else 0)) buffers in
    let nonzero p = List.exists (fun (_, c) -> c <> 0) p in
    let dedup ps =
      List.rev
        (List.fold_left
           (fun acc p -> if List.mem p acc then acc else p :: acc)
           [] ps)
    in
    [] :: dedup (List.filter nonzero (spreads 1 [] @ List.init n isolate))

let rank_placed =
  List.sort (fun a b ->
      match
        compare
          (a.best_point.cycles, a.best_point.config)
          (b.best_point.cycles, b.best_point.config)
      with
      | 0 -> compare a.placement b.placement
      | n -> n)

let explore_placements_with ~oracle ~bound ?num_domains dev (base : Analysis.t)
    space =
  let n_channels = dev.Flexcl_device.Device.dram.Flexcl_dram.Dram.n_channels in
  List.filter_map
    (fun placement ->
      let a =
        if placement = [] then base else Analysis.with_placement base placement
      in
      match Parsweep.best ?num_domains ?bound dev a space oracle with
      | Some e, _ -> Some { placement; best_point = e }
      | None, _ -> None)
    (placement_candidates base ~n_channels)
  |> rank_placed

let explore_placements ?num_domains dev base space =
  explore_placements_with ?num_domains dev base space
    ~oracle:(specialized_model_oracle dev)
    ~bound:(Some (specialized_bound dev))

let explore_placements_reference ?num_domains dev base space =
  explore_placements_with ?num_domains dev base space ~oracle:(model_oracle dev)
    ~bound:None

let quality_vs_optimal ~picked ~truth ~all =
  match all with
  | [] -> invalid_arg "Explore.quality_vs_optimal: empty space"
  | _ ->
      let opt = List.fold_left (fun acc c -> Float.min acc (truth c)) infinity all in
      if opt <= 0.0 then 0.0 else 100.0 *. (truth picked -. opt) /. opt
