module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis
module Sysrun = Flexcl_simrtl.Sysrun
module Sdaccel = Flexcl_simrtl.Sdaccel_estimate
module Launch = Flexcl_ir.Launch

type evaluated = { config : Config.t; cycles : float }

type oracle = Analysis.t -> Config.t -> float

(* Re-analysis per work-group size is the costly part of a sweep: cache
   it keyed on (kernel name, wg size). *)
let analysis_cache : (string * int, Analysis.t) Hashtbl.t = Hashtbl.create 64

let analysis_for (base : Analysis.t) wg_size =
  if Launch.wg_size base.Analysis.launch = wg_size then base
  else begin
    let key = (base.Analysis.cdfg.Flexcl_ir.Cdfg.kernel_name, wg_size) in
    match Hashtbl.find_opt analysis_cache key with
    | Some a when a.Analysis.kernel == base.Analysis.kernel -> a
    | Some _ | None ->
        let a = Analysis.with_wg_size base wg_size in
        Hashtbl.replace analysis_cache key a;
        a
  end

let model_oracle dev : oracle = fun analysis cfg -> Model.cycles dev analysis cfg

let sysrun_oracle ?seed dev : oracle =
 fun analysis cfg -> (Sysrun.run ?seed dev analysis cfg).Sysrun.cycles

let sdaccel_oracle dev : oracle =
 fun analysis cfg ->
  match Sdaccel.estimate dev analysis cfg with
  | Some c -> c
  | None -> infinity

let exhaustive dev (base : Analysis.t) space (oracle : oracle) =
  let points = Space.feasible_points dev base space in
  List.map
    (fun (cfg : Config.t) ->
      let analysis = analysis_for base cfg.Config.wg_size in
      { config = cfg; cycles = oracle analysis cfg })
    points
  |> List.sort (fun a b -> compare (a.cycles, a.config) (b.cycles, b.config))

let best dev base space oracle =
  match exhaustive dev base space oracle with
  | [] -> invalid_arg "Explore.best: empty design space"
  | e :: _ -> e

let empty_space_diag =
  Flexcl_util.Diag.error Flexcl_util.Diag.Empty_design_space
    "no feasible design point: every configuration exceeds the device resources"

let best_result dev base space oracle =
  match exhaustive dev base space oracle with
  | [] -> Error empty_space_diag
  | e :: _ -> Ok e
  | exception (Out_of_memory as e) -> raise e
  | exception exn -> Error (Analysis.diag_of_exn exn)

let quality_vs_optimal ~picked ~truth ~all =
  match all with
  | [] -> invalid_arg "Explore.quality_vs_optimal: empty space"
  | _ ->
      let opt = List.fold_left (fun acc c -> Float.min acc (truth c)) infinity all in
      if opt <= 0.0 then 0.0 else 100.0 *. (truth picked -. opt) /. opt
