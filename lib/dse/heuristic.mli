(** The step-by-step greedy optimizer of the HPCA'16 framework [16],
    reimplemented as the paper's comparison point for §4.3's
    96%-vs-12% optimal-configuration experiment.

    It tunes one knob at a time in a fixed order (work-group size →
    pipelining → PE count → CU count → communication mode), committing to
    the locally best value before moving on — i.e. it assumes the
    optimizations are independent, which is exactly why it gets stuck in
    local optima on kernels with coupled knobs (e.g. pipelining only pays
    off at large work-group sizes). *)

val search :
  ?num_domains:int ->
  Flexcl_core.Model.Device.t ->
  Flexcl_core.Analysis.t ->
  Space.t ->
  Explore.oracle ->
  Explore.evaluated
(** Greedy coordinate descent over the space; each knob is evaluated with
    the other knobs held at their current values. Each knob's candidate
    list is evaluated as one batch through the {!Parsweep} engine
    ([num_domains] as in {!Explore.exhaustive}); picks are identical at
    any domain count. *)

val search_result :
  ?num_domains:int ->
  Flexcl_core.Model.Device.t ->
  Flexcl_core.Analysis.t ->
  Space.t ->
  Explore.oracle ->
  (Explore.evaluated, Flexcl_util.Diag.t) result
(** Total variant of {!search}: an empty candidate list for any knob, a
    space with no feasible point (every candidate evaluates to
    [infinity]) or a sweep exception becomes a structured diagnostic. *)

val knob_order : string list
(** Documentation of the fixed tuning order. *)
