(** Design-space exploration (§4.3).

    [exhaustive] sweeps every feasible point through a cost oracle;
    FlexCL's oracle is the analytical model (seconds for hundreds of
    points), System Run's is the cycle-level simulator (the stand-in for
    hours-per-point synthesis). Sweeps run through the parallel memoized
    engine ({!Parsweep}): points are chunked by work-group size over a
    domain pool, and re-analysis per size is cached. Results are
    bit-for-bit independent of [num_domains]. *)

module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis

type evaluated = Parsweep.evaluated = { config : Config.t; cycles : float }

type oracle = Parsweep.oracle
(** Cost of one design point, given an analysis whose launch already has
    the point's work-group size. *)

val model_oracle : Model.Device.t -> oracle
(** FlexCL's analytical estimate, one full {!Model.estimate} per point.
    Kept as the unspecialized reference: the differential suite and the
    [dse-specialize] bench compare {!specialized_model_oracle} against
    it. *)

val specialized_model_oracle : Model.Device.t -> oracle
(** The analytical estimate through {!Model.specialize} (DESIGN.md §11):
    the first point of each [(kernel, launch fingerprint, device,
    wg size)] stages every config-invariant model term in a process-wide
    {!Flexcl_util.Memo}; subsequent points cost only the closed-form
    Eq. 5–12 tail. Returns bitwise-identical cycles to {!model_oracle}
    on every point, so sweeps, rankings and pruning behave identically —
    just faster. Partially applying the oracle to an analysis resolves
    the specialization once; {!Parsweep} does this per chunk. *)

val specialized_bound : Model.Device.t -> oracle
(** {!Model.lower_bound} on the same staged invariants (for
    [Parsweep.best ?bound] pruning alongside
    {!specialized_model_oracle}); bitwise equal to the unspecialized
    bound. *)

val specialized_for : Model.Device.t -> Analysis.t -> Model.specialized
(** The memoized specialization behind the oracle (exposed for benches
    and tests). *)

val sysrun_oracle : ?seed:int -> Model.Device.t -> oracle
(** Ground truth via the cycle-level simulator. *)

val sdaccel_oracle : Model.Device.t -> oracle
(** Baseline estimator; design points it fails on get [infinity] (which
    the sweep then filters out, so failures never rank). *)

val exhaustive :
  ?num_domains:int ->
  Model.Device.t -> Analysis.t -> Space.t -> oracle -> evaluated list
(** Every feasible point with a finite cost, sorted fastest-first.
    [num_domains] (default [Domain.recommended_domain_count () - 1])
    sizes the worker pool; [0] runs sequentially. *)

val best :
  ?num_domains:int ->
  Model.Device.t -> Analysis.t -> Space.t -> oracle -> evaluated
(** Minimum of {!exhaustive}; raises [Invalid_argument] when no point is
    rankable (empty feasible space, or every oracle call failed). *)

val best_result :
  ?num_domains:int ->
  Model.Device.t -> Analysis.t -> Space.t -> oracle ->
  (evaluated, Flexcl_util.Diag.t) result
(** Total variant of {!best}: an empty feasible space, an all-failures
    sweep (see {!all_failed_diag}) or any sweep exception becomes a
    structured diagnostic instead of raising. *)

(** {2 Buffer→channel placement co-optimization (DESIGN.md §15)}

    On a multi-channel device ({!Flexcl_dram.Dram.config.n_channels}
    [> 1]) the memory roofline depends on which channel each buffer is
    bound to. These sweeps co-optimize the placement with the design
    point: each candidate placement gets a full (pruned) sweep over the
    space, and the candidates are ranked by their best point. *)

type placed = { placement : (string * int) list; best_point : evaluated }

val placement_candidates :
  Analysis.t -> n_channels:int -> (string * int) list list
(** The deterministic candidate set: the empty placement (all buffers on
    channel 0), every power-of-two spreading granularity (group size 1 =
    round robin), and every single-buffer isolation — [O(n_buffers)]
    structurally distinct candidates out of the
    [n_channels ^ n_buffers] full space. [[ [] ]] when
    [n_channels <= 1]. *)

val explore_placements :
  ?num_domains:int ->
  Model.Device.t -> Analysis.t -> Space.t -> placed list
(** Candidates ranked by their best design point (ties by config, then
    placement), each found by a {!Parsweep.best} sweep through the
    staged oracle with {!specialized_bound} pruning — sound across
    placements because the memory lower bound is placement-independent
    (the 1/N_chan stream floor holds for every placement). A candidate
    with no rankable point is dropped. *)

val explore_placements_reference :
  ?num_domains:int ->
  Model.Device.t -> Analysis.t -> Space.t -> placed list
(** The unstaged, unpruned reference ({!model_oracle} per point): the
    differential tests pin that {!explore_placements} ranks identically,
    bitwise. *)

val quality_vs_optimal :
  picked:Config.t ->
  truth:(Config.t -> float) ->
  all:Config.t list ->
  float
(** How far the picked point is from the true optimum, in percent:
    [100 * (truth picked - min truth) / min truth]. *)

val analysis_for : Analysis.t -> int -> Analysis.t
(** Cached re-analysis at a work-group size (shared by all oracles during
    a sweep); alias of {!Parsweep.analysis_for}. *)

val empty_space_diag : Flexcl_util.Diag.t
(** The diagnostic reported when no design point is feasible. *)

val all_failed_diag : Flexcl_util.Diag.t
(** The diagnostic reported when feasible points exist but every oracle
    evaluation returned a non-finite cost. *)
