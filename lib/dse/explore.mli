(** Design-space exploration (§4.3).

    [exhaustive] sweeps every feasible point through a cost oracle;
    FlexCL's oracle is the analytical model (seconds for hundreds of
    points), System Run's is the cycle-level simulator (the stand-in for
    hours-per-point synthesis). Work-group-size re-analysis is cached so
    a sweep profiles each size once. *)

module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis

type evaluated = { config : Config.t; cycles : float }

type oracle = Analysis.t -> Config.t -> float
(** Cost of one design point, given an analysis whose launch already has
    the point's work-group size. *)

val model_oracle : Model.Device.t -> oracle
(** FlexCL's analytical estimate. *)

val sysrun_oracle : ?seed:int -> Model.Device.t -> oracle
(** Ground truth via the cycle-level simulator. *)

val sdaccel_oracle : Model.Device.t -> oracle
(** Baseline estimator; design points it fails on get [infinity]. *)

val exhaustive :
  Model.Device.t -> Analysis.t -> Space.t -> oracle -> evaluated list
(** Every feasible point, sorted fastest-first. *)

val best : Model.Device.t -> Analysis.t -> Space.t -> oracle -> evaluated
(** Head of {!exhaustive}; raises [Invalid_argument] on an empty space. *)

val best_result :
  Model.Device.t -> Analysis.t -> Space.t -> oracle ->
  (evaluated, Flexcl_util.Diag.t) result
(** Total variant of {!best}: an empty feasible space (or any sweep
    exception) becomes a structured diagnostic instead of raising. *)

val quality_vs_optimal :
  picked:Config.t ->
  truth:(Config.t -> float) ->
  all:Config.t list ->
  float
(** How far the picked point is from the true optimum, in percent:
    [100 * (truth picked - min truth) / min truth]. *)

val analysis_for : Analysis.t -> int -> Analysis.t
(** Cached re-analysis at a work-group size (shared by all oracles during
    a sweep). *)

val empty_space_diag : Flexcl_util.Diag.t
(** The diagnostic reported when no design point is feasible. *)
