(** Parallel memoized design-space sweep engine.

    FlexCL's headline claim is exploration speed: the analytical model
    sweeps thousand-point design spaces in seconds (§4.3, Table 2). This
    engine makes the sweep scale with cores and prune dominated points:

    {ul
    {- points are chunked by work-group size and distributed over a
       {!Flexcl_util.Pool} of domains, so each chunk reuses one memoized
       {!analysis_for} re-analysis;}
    {- [best]-mode sweeps can skip a point whose
       {!Flexcl_core.Model.lower_bound} already exceeds the incumbent;}
    {- a [?progress] callback reports points evaluated/pruned/failed.}}

    {b Determinism.} Oracles are pure per (analysis, config), every
    point's cost is independent of evaluation order, and the final
    ranking sorts on [(cycles, config)] — so [sweep] returns bit-for-bit
    the same list at any [num_domains] (including the [0] sequential
    fallback), and [best] with pruning returns exactly the [best] without
    (the pruner only skips points whose bound strictly exceeds the
    incumbent, plus a rounding margin, so ties are always evaluated).
    The differential tests in [test/test_parsweep.ml] pin this. *)

module Config = Flexcl_core.Config
module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis

type evaluated = { config : Config.t; cycles : float }

type oracle = Analysis.t -> Config.t -> float
(** Cost of one design point, given an analysis whose launch already has
    the point's work-group size. Must be pure and domain-safe. The
    engine partially applies an oracle to its analysis once per chunk,
    so per-analysis setup work (e.g. the staged-specialization lookup in
    {!Explore.specialized_model_oracle}) is paid per chunk, not per
    point. *)

type progress = {
  total : int;      (** feasible points in the sweep. *)
  evaluated : int;  (** oracle calls that returned a finite cost. *)
  pruned : int;     (** points skipped by bound-based pruning. *)
  failed : int;     (** oracle calls that returned a non-finite cost. *)
}

val analysis_for : Analysis.t -> int -> Analysis.t
(** Memoized re-analysis at a work-group size, keyed on
    [(kernel name, Launch.fingerprint, wg_size)] — the same stable
    content hash the serve cache uses — in a thread-safe
    {!Flexcl_util.Memo} shared by every sweep (and every domain of a
    sweep). *)

val sweep :
  ?num_domains:int ->
  ?progress:(progress -> unit) ->
  Model.Device.t -> Analysis.t -> Space.t -> oracle -> evaluated list
(** Every feasible point with a finite cost, sorted fastest-first
    (ties broken by config). [num_domains] defaults to
    [Domain.recommended_domain_count () - 1]; [0] runs sequentially on
    the calling domain. Non-finite costs (a failing oracle, e.g. the
    SDAccel baseline) are dropped, never ranked. The [progress] callback
    runs after every point, serialized under the engine's lock (it may be
    invoked from worker domains). *)

val sweep_stats :
  ?num_domains:int ->
  ?progress:(progress -> unit) ->
  Model.Device.t -> Analysis.t -> Space.t -> oracle ->
  evaluated list * progress
(** {!sweep} plus the final counters. *)

val best :
  ?num_domains:int ->
  ?progress:(progress -> unit) ->
  ?bound:(Analysis.t -> Config.t -> float) ->
  Model.Device.t -> Analysis.t -> Space.t -> oracle ->
  evaluated option * progress
(** Minimum-cost point (by [(cycles, config)]), or [None] if the space
    has no feasible point with a finite cost. When [bound] is given
    (e.g. [Model.lower_bound dev] for the model oracle), points whose
    bound strictly exceeds the incumbent's cost are skipped without
    calling the oracle; the bound must be a true lower bound of the
    oracle or pruning may discard the optimum. *)

val eval_batch :
  ?num_domains:int -> Analysis.t -> Config.t list -> oracle -> evaluated list
(** Evaluate an explicit list of points (no feasibility filter, no cost
    filter, no ranking), preserving input order. Used by the greedy
    heuristic to evaluate one knob's candidate list as a parallel batch. *)
