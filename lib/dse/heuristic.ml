module Config = Flexcl_core.Config
module Model = Flexcl_core.Model

let knob_order = [ "wg_size"; "wi_pipeline"; "n_pe"; "n_cu"; "comm_mode" ]

let search dev (base : Flexcl_core.Analysis.t) (space : Space.t)
    (oracle : Explore.oracle) =
  let eval (cfg : Config.t) =
    if Model.feasible dev base cfg then
      let analysis = Explore.analysis_for base cfg.Config.wg_size in
      oracle analysis cfg
    else infinity
  in
  let pick candidates current =
    List.fold_left
      (fun (best_cfg, best_cost) cfg ->
        let c = eval cfg in
        if c < best_cost then (cfg, c) else (best_cfg, best_cost))
      (current, eval current) candidates
  in
  let start =
    {
      Config.wg_size = List.hd space.Space.wg_sizes;
      n_pe = List.hd space.Space.pe_counts;
      n_cu = List.hd space.Space.cu_counts;
      wi_pipeline = List.hd space.Space.pipeline_choices;
      comm_mode = List.hd space.Space.comm_modes;
    }
  in
  let cfg, _ =
    pick
      (List.map (fun w -> { start with Config.wg_size = w }) space.Space.wg_sizes)
      start
  in
  let cfg, _ =
    pick
      (List.map
         (fun p -> { cfg with Config.wi_pipeline = p })
         space.Space.pipeline_choices)
      cfg
  in
  let cfg, _ =
    pick (List.map (fun p -> { cfg with Config.n_pe = p }) space.Space.pe_counts) cfg
  in
  let cfg, _ =
    pick (List.map (fun c -> { cfg with Config.n_cu = c }) space.Space.cu_counts) cfg
  in
  let cfg, cost =
    pick
      (List.map (fun m -> { cfg with Config.comm_mode = m }) space.Space.comm_modes)
      cfg
  in
  { Explore.config = cfg; cycles = cost }

let search_result dev base space oracle =
  let module Diag = Flexcl_util.Diag in
  if
    space.Space.wg_sizes = [] || space.Space.pe_counts = []
    || space.Space.cu_counts = []
    || space.Space.pipeline_choices = []
    || space.Space.comm_modes = []
  then
    Error
      (Diag.error Diag.Empty_design_space
         "heuristic search requires a non-empty candidate list for every knob")
  else
    match search dev base space oracle with
    | e when e.Explore.cycles = infinity -> Error Explore.empty_space_diag
    | e -> Ok e
    | exception (Out_of_memory as exn) -> raise exn
    | exception exn -> Error (Flexcl_core.Analysis.diag_of_exn exn)
