module Config = Flexcl_core.Config
module Model = Flexcl_core.Model

let knob_order = [ "wg_size"; "wi_pipeline"; "n_pe"; "n_cu"; "comm_mode" ]

let search ?num_domains dev (base : Flexcl_core.Analysis.t) (space : Space.t)
    (oracle : Explore.oracle) =
  (* Each knob's candidate list is evaluated as one batch through the
     sweep engine (shared analysis memo, optional domain parallelism).
     Feasibility is judged against the base analysis, as the sequential
     version did, and infeasible points cost infinity so they never
     outrank feasible ones. *)
  let costs cfgs =
    let tagged = List.map (fun c -> (c, Model.feasible dev base c)) cfgs in
    let feas = List.filter_map (fun (c, ok) -> if ok then Some c else None) tagged in
    let evals = Parsweep.eval_batch ?num_domains base feas oracle in
    let rec merge tagged evals =
      match (tagged, evals) with
      | [], [] -> []
      | (_, false) :: t, es -> infinity :: merge t es
      | (_, true) :: t, (e : Parsweep.evaluated) :: es ->
          e.Parsweep.cycles :: merge t es
      | _ -> assert false
    in
    merge tagged evals
  in
  (* strict <, fold order and current-first evaluation all match the
     original greedy loop, so picks are identical *)
  let pick candidates current =
    match costs (current :: candidates) with
    | current_cost :: candidate_costs ->
        List.fold_left2
          (fun (best_cfg, best_cost) cfg c ->
            if c < best_cost then (cfg, c) else (best_cfg, best_cost))
          (current, current_cost) candidates candidate_costs
    | [] -> assert false
  in
  let start =
    {
      Config.wg_size = List.hd space.Space.wg_sizes;
      n_pe = List.hd space.Space.pe_counts;
      n_cu = List.hd space.Space.cu_counts;
      wi_pipeline = List.hd space.Space.pipeline_choices;
      comm_mode = List.hd space.Space.comm_modes;
    }
  in
  let cfg, _ =
    pick
      (List.map (fun w -> { start with Config.wg_size = w }) space.Space.wg_sizes)
      start
  in
  let cfg, _ =
    pick
      (List.map
         (fun p -> { cfg with Config.wi_pipeline = p })
         space.Space.pipeline_choices)
      cfg
  in
  let cfg, _ =
    pick (List.map (fun p -> { cfg with Config.n_pe = p }) space.Space.pe_counts) cfg
  in
  let cfg, _ =
    pick (List.map (fun c -> { cfg with Config.n_cu = c }) space.Space.cu_counts) cfg
  in
  let cfg, cost =
    pick
      (List.map (fun m -> { cfg with Config.comm_mode = m }) space.Space.comm_modes)
      cfg
  in
  { Explore.config = cfg; cycles = cost }

let search_result ?num_domains dev base space oracle =
  let module Diag = Flexcl_util.Diag in
  if
    space.Space.wg_sizes = [] || space.Space.pe_counts = []
    || space.Space.cu_counts = []
    || space.Space.pipeline_choices = []
    || space.Space.comm_modes = []
  then
    Error
      (Diag.error Diag.Empty_design_space
         "heuristic search requires a non-empty candidate list for every knob")
  else
    match search ?num_domains dev base space oracle with
    | e when e.Explore.cycles = infinity -> Error Explore.empty_space_diag
    | e -> Ok e
    | exception (Out_of_memory as exn) -> raise exn
    | exception exn -> Error (Flexcl_core.Analysis.diag_of_exn exn)
