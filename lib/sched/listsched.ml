module Graph = Flexcl_util.Graph
module Dfg = Flexcl_ir.Dfg
module Opcode = Flexcl_ir.Opcode

type constraints = { read_ports : int; write_ports : int; dsp : int }

let unconstrained = { read_ports = max_int; write_ports = max_int; dsp = max_int }

type schedule = { start : int array; finish : int array; latency : int }

(* Priority: longest latency-weighted path from the node to any sink. *)
let heights_with d ~node_lat =
  let g = Dfg.graph d in
  let n = Graph.n_nodes g in
  match Graph.topo_sort g with
  | None -> invalid_arg "Listsched: block dependence graph is cyclic"
  | Some order ->
      let h = Array.make n 0 in
      List.iter
        (fun u ->
          let lu = node_lat (Dfg.node d u) in
          let best =
            List.fold_left
              (fun acc (v, _) -> max acc h.(v))
              0 (Graph.succs g u)
          in
          h.(u) <- lu + best)
        (List.rev order);
      h

let usage_of op ~dsp_cost =
  let is_local_read = match op with Opcode.Load Opcode.Local_mem -> true | _ -> false in
  let is_local_write = match op with Opcode.Store Opcode.Local_mem -> true | _ -> false in
  ((if is_local_read then 1 else 0), (if is_local_write then 1 else 0), dsp_cost op)

let schedule_block_with d ~node_lat ~dsp_cost ~cons =
  let g = Dfg.graph d in
  let n = Graph.n_nodes g in
  if n = 0 then { start = [||]; finish = [||]; latency = 0 }
  else begin
    (* validate single-op feasibility *)
    Array.iter
      (fun (node : Dfg.node) ->
        let r, w, k = usage_of node.Dfg.op ~dsp_cost in
        if r > cons.read_ports || w > cons.write_ports || k > cons.dsp then
          invalid_arg "Listsched: op exceeds resource constraints")
      (Array.of_list (Dfg.nodes d));
    let h = heights_with d ~node_lat in
    let start = Array.make n (-1) in
    let finish = Array.make n (-1) in
    let n_preds = Array.make n 0 in
    for u = 0 to n - 1 do
      n_preds.(u) <- List.length (Graph.preds g u)
    done;
    (* earliest start from scheduled predecessors *)
    let est = Array.make n 0 in
    let unscheduled = ref n in
    let cycle = ref 0 in
    (* per-cycle resource usage, grown on demand *)
    let used_r = ref 0 and used_w = ref 0 and used_d = ref 0 in
    while !unscheduled > 0 do
      used_r := 0;
      used_w := 0;
      used_d := 0;
      (* Zero-latency ops are combinational: they chain within the cycle,
         so keep sweeping until no more ops become ready this cycle. *)
      let progress = ref true in
      while !progress do
        progress := false;
        let ready =
          List.init n Fun.id
          |> List.filter (fun u ->
                 start.(u) < 0 && n_preds.(u) = 0 && est.(u) <= !cycle)
          |> List.sort (fun a b -> compare (h.(b), a) (h.(a), b))
        in
        List.iter
          (fun u ->
            let r, w, k = usage_of (Dfg.node d u).Dfg.op ~dsp_cost in
            let fits =
              (cons.read_ports = max_int || !used_r + r <= cons.read_ports)
              && (cons.write_ports = max_int || !used_w + w <= cons.write_ports)
              && (cons.dsp = max_int || !used_d + k <= cons.dsp)
            in
            if fits then begin
              used_r := !used_r + r;
              used_w := !used_w + w;
              used_d := !used_d + k;
              start.(u) <- !cycle;
              let l = node_lat (Dfg.node d u) in
              finish.(u) <- !cycle + l;
              decr unscheduled;
              progress := true;
              List.iter
                (fun (v, _) ->
                  n_preds.(v) <- n_preds.(v) - 1;
                  if finish.(u) > est.(v) then est.(v) <- finish.(u))
                (Graph.succs g u)
            end)
          ready
      done;
      incr cycle;
      if !cycle > 1_000_000 then invalid_arg "Listsched: schedule does not converge"
    done;
    let latency = Array.fold_left max 0 finish in
    { start; finish; latency }
  end

let schedule_block d ~lat ~dsp_cost ~cons =
  schedule_block_with d ~node_lat:(fun (n : Dfg.node) -> lat n.Dfg.op) ~dsp_cost ~cons

let critical_path d ~lat =
  let g = Dfg.graph d in
  if Graph.n_nodes g = 0 then 0
  else
    let dist =
      Graph.longest_paths g ~source_weight:(fun u -> lat (Dfg.node d u).Dfg.op)
    in
    Array.fold_left max 0 dist

type summary = {
  n_ops : int;
  latency : int;
  crit_path : int;
  res_delay : int;
  local_reads : int;
  local_writes : int;
  dsps : int;
}

let summarize d ~lat ~dsp_cost ~cons =
  let sched = schedule_block d ~lat ~dsp_cost ~cons in
  let cp = critical_path d ~lat in
  let reads, writes, dsps =
    List.fold_left
      (fun (r, w, k) (n : Dfg.node) ->
        let r', w', k' = usage_of n.Dfg.op ~dsp_cost in
        (r + r', w + w', k + k'))
      (0, 0, 0) (Dfg.nodes d)
  in
  {
    n_ops = List.length (Dfg.nodes d);
    latency = sched.latency;
    crit_path = cp;
    res_delay = max 0 (sched.latency - cp);
    local_reads = reads;
    local_writes = writes;
    dsps;
  }
