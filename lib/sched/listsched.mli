(** Resource-aware priority-ordered list scheduling (ASAP), used by the
    processing-element model to estimate the execution latency of each
    simplified basic block (paper §3.3.1).

    Ops issue in priority order (longest path to a sink first); every
    functional unit is fully pipelined, so an op occupies its resources
    only in its issue cycle. *)

type constraints = {
  read_ports : int;   (** local-memory read ports usable per cycle. *)
  write_ports : int;  (** local-memory write ports usable per cycle. *)
  dsp : int;          (** DSP slices usable per cycle. *)
}

val unconstrained : constraints
(** Effectively infinite resources (pure dependence-limited schedule). *)

type schedule = {
  start : int array;   (** issue cycle per node. *)
  finish : int array;  (** completion cycle per node ([start + latency]). *)
  latency : int;       (** block latency: max finish (0 for empty blocks). *)
}

val schedule_block :
  Flexcl_ir.Dfg.t ->
  lat:(Flexcl_ir.Opcode.t -> int) ->
  dsp_cost:(Flexcl_ir.Opcode.t -> int) ->
  cons:constraints ->
  schedule
(** Raises [Invalid_argument] if the block's dependence graph is cyclic
    (blocks are DAGs by construction) or if a single op needs more of a
    resource than the constraint provides. *)

val schedule_block_with :
  Flexcl_ir.Dfg.t ->
  node_lat:(Flexcl_ir.Dfg.node -> int) ->
  dsp_cost:(Flexcl_ir.Opcode.t -> int) ->
  cons:constraints ->
  schedule
(** Like {!schedule_block} with per-node latencies — the ground-truth
    simulator passes each node's realized implementation-variant
    latency. *)

val critical_path : Flexcl_ir.Dfg.t -> lat:(Flexcl_ir.Opcode.t -> int) -> int
(** Dependence-only lower bound on the block latency. *)

(** Per-block schedule summary, the quantities the prediction trace
    reports for each basic block: how long the scheduled block takes,
    how much of that is forced by dependences alone ([crit_path]) and
    how much the resource constraints added on top ([res_delay]). *)
type summary = {
  n_ops : int;        (** operations in the block. *)
  latency : int;      (** resource-aware scheduled latency. *)
  crit_path : int;    (** dependence-only lower bound. *)
  res_delay : int;    (** [latency - crit_path] (0 when dependence-bound). *)
  local_reads : int;  (** local-memory read ops in the block. *)
  local_writes : int; (** local-memory write ops. *)
  dsps : int;         (** DSP slices the block's ops consume. *)
}

val summarize :
  Flexcl_ir.Dfg.t ->
  lat:(Flexcl_ir.Opcode.t -> int) ->
  dsp_cost:(Flexcl_ir.Opcode.t -> int) ->
  cons:constraints ->
  summary
(** {!schedule_block} + {!critical_path} + aggregate resource usage in
    one call (raises like {!schedule_block}). *)
