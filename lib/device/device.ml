module Opcode = Flexcl_ir.Opcode
module Dram = Flexcl_dram.Dram

type t = {
  name : string;
  clock_mhz : int;
  dsp_total : int;
  bram_blocks : int;
  max_cu : int;
  local_banks : int;
  ports_per_bank : int;
  wg_dispatch_overhead : int;
  dram : Dram.config;
}

let virtex7 =
  {
    name = "xc7vx690t";
    clock_mhz = 200;
    dsp_total = 3600;
    bram_blocks = 1470;
    max_cu = 16;
    local_banks = 2;
    ports_per_bank = 2;
    wg_dispatch_overhead = 24;
    dram = Dram.ddr3_config;
  }

let ku060 =
  {
    name = "xcku060";
    clock_mhz = 200;
    dsp_total = 2760;
    bram_blocks = 1080;
    max_cu = 12;
    local_banks = 2;
    ports_per_bank = 2;
    wg_dispatch_overhead = 20;
    dram =
      {
        Dram.ddr3_config with
        (* DDR4 on the NAS-120A: faster column access, slower activate *)
        Dram.t_cas = 2;
        t_rcd = 4;
        t_rp = 3;
        t_bus = 2;
      };
  }

let ku060_2ddr =
  {
    ku060 with
    name = "xcku060-2ddr";
    (* the same KU060 card populated with its second DDR4 SODIMM: two
       independent channels, each the ku060 bank machine, with a bounded
       outstanding-transaction queue per channel *)
    dram = { ku060.dram with Dram.n_channels = 2; queue_depth = 16 };
  }

let u280 =
  {
    name = "xcu280";
    clock_mhz = 300;
    dsp_total = 9024;
    bram_blocks = 4032;
    max_cu = 32;
    local_banks = 4;
    ports_per_bank = 2;
    wg_dispatch_overhead = 24;
    dram = Dram.hbm2_config;
  }

(* Implementation variants per op class. The synthesis tool picks among
   several hardware realizations (LUT vs DSP, different pipeline depths);
   the table average is what micro-benchmarks observe. UltraScale DSPs
   retire float ops slightly faster. *)
(* Cheap single-cycle-ish ops synthesize the same way every time; the
   implementation choice only matters for the bigger cores (multipliers,
   dividers, floating-point units), whose variants differ in pipeline
   depth. *)
let variants_virtex7 (op : Opcode.t) =
  match op with
  | Opcode.Load Opcode.Global_mem -> [| 3 |] (* interface cost only *)
  | Opcode.Store Opcode.Global_mem -> [| 2 |]
  | Opcode.Load Opcode.Local_mem -> [| 2 |]
  | Opcode.Store Opcode.Local_mem -> [| 1 |]
  | Opcode.Int_alu -> [| 1 |]
  | Opcode.Int_mul -> [| 3; 4; 5 |]
  | Opcode.Int_div -> [| 16; 18; 20 |]
  | Opcode.Float_add -> [| 6; 7; 8 |]
  | Opcode.Float_mul -> [| 4; 5; 6 |]
  | Opcode.Float_div -> [| 14; 16; 18 |]
  | Opcode.Float_cmp -> [| 2 |]
  | Opcode.Float_sqrt -> [| 14; 16; 18 |]
  | Opcode.Float_exp -> [| 18; 20; 22 |]
  | Opcode.Float_trig -> [| 22; 24; 26 |]
  | Opcode.Convert -> [| 2 |]
  | Opcode.Wi_query -> [| 0 |]
  | Opcode.Const_op -> [| 0 |]
  | Opcode.Select -> [| 1 |]
  | Opcode.Barrier_op -> [| 2 |]
  | Opcode.Live_in -> [| 0 |]
  (* on-chip FIFO access: comparable to local memory, not DRAM *)
  | Opcode.Pipe_read_op -> [| 2 |]
  | Opcode.Pipe_write_op -> [| 1 |]

let variants_ku060 (op : Opcode.t) =
  match op with
  | Opcode.Float_add -> [| 5; 6; 7 |]
  | Opcode.Float_mul -> [| 3; 4; 5 |]
  | Opcode.Float_div -> [| 12; 14; 16 |]
  | Opcode.Float_sqrt -> [| 12; 14; 16 |]
  | Opcode.Float_exp -> [| 16; 18; 20 |]
  | Opcode.Float_trig -> [| 20; 22; 24 |]
  | Opcode.Int_div -> [| 14; 16; 18 |]
  | other -> variants_virtex7 other

let op_variants t op =
  match t.name with
  (* both KU060 flavours and the UltraScale+ U280 retire float ops on
     the faster UltraScale DSP variants *)
  | "xcku060" | "xcku060-2ddr" | "xcu280" -> variants_ku060 op
  | _ -> variants_virtex7 op

let op_latency t op =
  let v = op_variants t op in
  let sum = Array.fold_left ( + ) 0 v in
  (* rounded mean *)
  (sum + (Array.length v / 2)) / Array.length v

let variant_latency t op ~salt =
  let v = op_variants t op in
  v.(Flexcl_util.Prng.hash_mix salt 0x5eed mod Array.length v)

let dsp_cost _t (op : Opcode.t) =
  match op with
  | Opcode.Int_mul -> 3
  | Opcode.Float_add -> 2
  | Opcode.Float_mul -> 3
  | Opcode.Float_exp -> 7
  | Opcode.Float_trig -> 8
  | Opcode.Load _ | Opcode.Store _ | Opcode.Int_alu | Opcode.Int_div
  | Opcode.Float_div | Opcode.Float_cmp | Opcode.Float_sqrt | Opcode.Convert
  | Opcode.Wi_query | Opcode.Const_op | Opcode.Select | Opcode.Barrier_op
  | Opcode.Live_in | Opcode.Pipe_read_op | Opcode.Pipe_write_op ->
      0

let validate t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.clock_mhz <= 0 then add "clock_mhz = %d is not positive" t.clock_mhz;
  if t.dsp_total < 0 then add "dsp_total = %d is negative" t.dsp_total;
  if t.bram_blocks < 0 then add "bram_blocks = %d is negative" t.bram_blocks;
  if t.max_cu <= 0 then add "max_cu = %d is not positive" t.max_cu;
  if t.local_banks <= 0 then add "local_banks = %d is not positive" t.local_banks;
  if t.ports_per_bank <= 0 then
    add "ports_per_bank = %d is not positive" t.ports_per_bank;
  if t.wg_dispatch_overhead < 0 then
    add "wg_dispatch_overhead = %d is negative" t.wg_dispatch_overhead;
  if t.dram.Dram.n_channels <= 0 then
    add "dram.n_channels = %d is not positive" t.dram.Dram.n_channels;
  if t.dram.Dram.queue_depth < 0 then
    add "dram.queue_depth = %d is negative" t.dram.Dram.queue_depth;
  List.rev !problems

let local_read_ports t = t.local_banks * t.ports_per_bank

let local_write_ports t = t.local_banks * t.ports_per_bank

let cycles_to_seconds t cycles = cycles /. (float_of_int t.clock_mhz *. 1e6)
