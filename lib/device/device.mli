(** FPGA platform descriptions.

    Each device carries the micro-benchmark-profiled average latency of
    every IR operation class (what FlexCL uses), the set of
    implementation variants the synthesis tool may actually instantiate
    (what the ground-truth simulator draws from — §4.2 names this
    variance as FlexCL's main computational error source), the DSP cost
    per op, the resource budgets that constrain PE/CU replication, and
    the DRAM configuration of the board. *)

type t = {
  name : string;
  clock_mhz : int;
  dsp_total : int;
  bram_blocks : int;        (** 36 Kb BRAM blocks. *)
  max_cu : int;             (** practical upper bound on compute units. *)
  local_banks : int;        (** banks per [__local] array. *)
  ports_per_bank : int;     (** BRAM ports usable per bank per cycle. *)
  wg_dispatch_overhead : int;
      (** work-group scheduling overhead [ΔL_comp^schedule], cycles. *)
  dram : Flexcl_dram.Dram.config;
}

val virtex7 : t
(** Alpha Data ADM-PCIE-7V3: Xilinx Virtex-7 XC7VX690T + 16 GB DDR3. *)

val ku060 : t
(** NAS-120A: Xilinx Kintex UltraScale KU060 (robustness platform). *)

val ku060_2ddr : t
(** The KU060 card with its second DDR4 SODIMM populated: two
    independent channels with bounded per-channel transaction queues
    ([name = "xcku060-2ddr"]). *)

val u280 : t
(** Alveo U280: UltraScale+ with 32-pseudo-channel HBM2
    ([name = "xcu280"], {!Flexcl_dram.Dram.hbm2_config}). *)

val op_latency : t -> Flexcl_ir.Opcode.t -> int
(** Average latency in cycles (the value micro-benchmark profiling
    reports); always the rounded mean of {!op_variants}. *)

val op_variants : t -> Flexcl_ir.Opcode.t -> int array
(** Latencies of the implementation choices the synthesis tool may pick
    for this op class (non-empty). *)

val variant_latency : t -> Flexcl_ir.Opcode.t -> salt:int -> int
(** Deterministic per-instance latency: picks one of {!op_variants} by
    hashing [salt] (kernel/block/node ids). This is what the simulator
    executes, and why the analytical model's average is a few percent
    off, as on real hardware. *)

val dsp_cost : t -> Flexcl_ir.Opcode.t -> int

val validate : t -> string list
(** Invariant violations of a (possibly hand-assembled) device record;
    [[]] means consistent. *)

val local_read_ports : t -> int
(** [Port_read] of Eq. 4: banks × ports per bank. *)

val local_write_ports : t -> int

val cycles_to_seconds : t -> float -> float
