type severity = Error | Warning | Note

type code =
  | Io_error
  | Usage_error
  | Cli_error
  | Lex_error
  | Parse_error
  | Sema_error
  | Launch_invalid
  | Config_invalid
  | Device_invalid
  | Lower_error
  | Sched_error
  | Profile_error
  | Profile_budget_exceeded
  | Model_error
  | Pipe_unbound
  | Pipe_cycle
  | Pipe_mismatch
  | Empty_design_space
  | Frame_error
  | Deadline_expired
  | Overloaded
  | Shutting_down
  | No_model
  | Internal_error

type span = { line : int; col : int }

type t = {
  code : code;
  severity : severity;
  message : string;
  span : span option;
  file : string option;
}

let code_name = function
  | Io_error -> "E-IO"
  | Usage_error -> "E-USAGE"
  | Cli_error -> "E-CLI"
  | Lex_error -> "E-LEX"
  | Parse_error -> "E-PARSE"
  | Sema_error -> "E-SEMA"
  | Launch_invalid -> "E-LAUNCH"
  | Config_invalid -> "E-CONFIG"
  | Device_invalid -> "E-DEVICE"
  | Lower_error -> "E-LOWER"
  | Sched_error -> "E-SCHED"
  | Profile_error -> "E-PROFILE"
  | Profile_budget_exceeded -> "E-FUEL"
  | Model_error -> "E-MODEL"
  | Pipe_unbound -> "E-PIPE-UNBOUND"
  | Pipe_cycle -> "E-PIPE-CYCLE"
  | Pipe_mismatch -> "E-PIPE-TYPE"
  | Empty_design_space -> "E-SPACE"
  | Frame_error -> "E-FRAME"
  | Deadline_expired -> "E-DEADLINE"
  | Overloaded -> "E-OVERLOAD"
  | Shutting_down -> "E-SHUTDOWN"
  | No_model -> "E-NOMODEL"
  | Internal_error -> "E-INTERNAL"

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let make ?(severity = Error) ?file ?span code message =
  { code; severity; message; span; file }

let error ?file ?span code fmt =
  Printf.ksprintf (fun message -> make ?file ?span code message) fmt

let with_file file t =
  match t.file with Some _ -> t | None -> { t with file = Some file }

let is_error t = t.severity = Error

let sort diags =
  let key t =
    ( Option.value t.file ~default:"",
      (match t.span with Some s -> (0, s.line, s.col) | None -> (1, 0, 0)) )
  in
  List.stable_sort (fun a b -> compare (key a) (key b)) diags

(* ------------------------------------------------------------------ *)
(* Rendering *)

let header t =
  let b = Buffer.create 80 in
  Buffer.add_string b (severity_name t.severity);
  Buffer.add_char b '[';
  Buffer.add_string b (code_name t.code);
  Buffer.add_char b ']';
  Buffer.add_char b ' ';
  (match t.file with
  | Some f ->
      Buffer.add_string b f;
      Buffer.add_char b ':'
  | None -> ());
  (match t.span with
  | Some { line; col } -> Buffer.add_string b (Printf.sprintf "%d:%d: " line col)
  | None -> if t.file <> None then Buffer.add_char b ' ');
  Buffer.add_string b t.message;
  Buffer.contents b

let nth_line source n =
  (* 1-based; None when the source has fewer lines *)
  if n < 1 then None
  else
    let len = String.length source in
    let rec start_of k pos =
      if k = 1 then Some pos
      else
        match String.index_from_opt source pos '\n' with
        | Some i when i + 1 <= len -> start_of (k - 1) (i + 1)
        | _ -> None
    in
    match start_of n 0 with
    | None -> None
    | Some s when s >= len -> if n = 1 && len = 0 then Some "" else None
    | Some s ->
        let e =
          match String.index_from_opt source s '\n' with
          | Some i -> i
          | None -> len
        in
        Some (String.sub source s (e - s))

let caret_context source { line; col } =
  match nth_line source line with
  | None -> None
  | Some text ->
      let gutter = string_of_int line in
      let pad = String.make (String.length gutter) ' ' in
      (* clamp the caret into the rendered line (col is 1-based; an
         error "at end of line" may point one past the last char) *)
      let caret_col = max 1 (min col (String.length text + 1)) in
      Some
        (Printf.sprintf "  %s | %s\n  %s | %s^" gutter text pad
           (String.make (caret_col - 1) ' '))

let render ?source t =
  let head = header t in
  match (source, t.span) with
  | Some src, Some span -> (
      match caret_context src span with
      | Some ctx -> head ^ "\n" ^ ctx
      | None -> head)
  | _ -> head

let render_all ?source diags =
  String.concat "\n" (List.map (render ?source) (sort diags))

let pp ppf t = Format.pp_print_string ppf (header t)
