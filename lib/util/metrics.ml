let n_buckets = 64

type histogram = {
  buckets : int array;  (* buckets.(i): samples in [2^i, 2^(i+1)) *)
  mutable count : int;
  mutable sum : float;
  mutable max : float;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  gauges : (string, float) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr t ?(by = 1) key =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters key with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters key (ref by))

let bucket_of v =
  if not (Float.is_finite v) || v < 1.0 then 0
  else min (n_buckets - 1) (int_of_float (Float.log2 v))

let observe t key v =
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.histograms key with
        | Some h -> h
        | None ->
            let h =
              { buckets = Array.make n_buckets 0; count = 0; sum = 0.0;
                max = neg_infinity }
            in
            Hashtbl.replace t.histograms key h;
            h
      in
      h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
      h.count <- h.count + 1;
      if Float.is_finite v then begin
        h.sum <- h.sum +. v;
        if v > h.max then h.max <- v
      end)

type summary = {
  count : int;
  mean : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Upper bound of the bucket holding the q-th sample (rank-based, so a
   single-sample histogram reports the same value for every quantile). *)
let quantile (h : histogram) q =
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
  let rec scan i seen =
    if i >= n_buckets then h.max
    else
      let seen = seen + h.buckets.(i) in
      if seen >= rank then Float.min h.max (Float.pow 2.0 (float_of_int (i + 1)))
      else scan (i + 1) seen
  in
  scan 0 0

let summarize (h : histogram) =
  {
    count = h.count;
    mean = (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count);
    max = (if h.count = 0 then 0.0 else h.max);
    p50 = (if h.count = 0 then 0.0 else quantile h 0.50);
    p95 = (if h.count = 0 then 0.0 else quantile h 0.95);
    p99 = (if h.count = 0 then 0.0 else quantile h 0.99);
  }

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters key with Some r -> !r | None -> 0)

let set_gauge t key v = locked t (fun () -> Hashtbl.replace t.gauges key v)

let counters t = locked t (fun () -> sorted_bindings t.counters ( ! ))
let summaries t = locked t (fun () -> sorted_bindings t.histograms summarize)
let gauges t = locked t (fun () -> sorted_bindings t.gauges Fun.id)

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.counters;
      Hashtbl.reset t.histograms;
      Hashtbl.reset t.gauges)
