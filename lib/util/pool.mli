(** Work-stealing domain pool with worker supervision.

    A pool owns [num_domains] worker domains that pull tasks from a shared
    queue (self-scheduling: whichever worker is free steals the next
    task). {!run} and {!run_results} additionally make the {e submitting}
    domain participate — it drains tasks alongside the workers instead of
    blocking — so a pool with [num_domains = 0] degrades to a plain
    sequential loop on the caller's domain, with no spawning and tasks
    executed in submission order. That sequential fallback is what the
    differential tests pin the parallel engine against.

    {b Supervision.} A task submitted through {!run_results} that raises
    kills its worker domain — exactly what an escaped exception does in
    production. The pool converts the in-flight task into an [Error]
    result (the batch never hangs on a dead worker), then respawns a
    replacement domain, bounded by [restart_budget]; past the budget the
    pool degrades to fewer workers, and batches stay total because the
    submitter always helps drain the queue. [on_restart] observes each
    respawn (the serve layer counts them as [worker_restarts]).

    Tasks must not themselves call {!run} on the same pool (no nesting),
    and anything they share must be domain-safe. Distinct batches may run
    concurrently on one pool from different submitting threads. *)

type t

val default_num_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (the submitter counts as one
    executor), never negative. *)

val default_restart_budget : int
(** 64 respawns over the pool's lifetime. *)

val create :
  ?num_domains:int ->
  ?restart_budget:int ->
  ?on_restart:(exn -> unit) ->
  unit ->
  t
(** Spawn the workers. [num_domains] defaults to
    {!default_num_domains}[ ()]; [0] spawns nothing. [on_restart] runs
    (on the dying domain) after each supervised respawn with the
    exception that killed the worker. Raises [Invalid_argument] on
    negative arguments. *)

val num_domains : t -> int

val restarts : t -> int
(** Worker domains respawned so far (never exceeds the budget). *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t thunks] executes every thunk (workers + the calling domain) and
    returns their results in submission order. If any thunk raises, the
    batch still runs to completion, then the exception of the
    lowest-indexed failing thunk is re-raised with its backtrace. Thunk
    exceptions are contained — they never kill a worker. *)

val run_results : t -> (unit -> 'a) list -> ('a, exn) result list
(** Supervised batch: results in submission order, a raising thunk
    becomes [Error exn] in its slot (and costs a worker respawn when the
    thunk ran on a worker domain rather than the submitter). Never
    raises, never hangs. *)

val shutdown : t -> unit
(** Stop accepting work and join the workers. Idempotent. Pending tasks
    from an in-flight batch are completed by the submitter. *)

val with_pool :
  ?num_domains:int ->
  ?restart_budget:int ->
  ?on_restart:(exn -> unit) ->
  (t -> 'a) ->
  'a
(** [create], apply, then [shutdown] (also on exception). *)
