(** Work-stealing domain pool.

    A pool owns [num_domains] worker domains that pull tasks from a shared
    queue (self-scheduling: whichever worker is free steals the next
    task). {!run} additionally makes the {e submitting} domain participate
    — it drains tasks alongside the workers instead of blocking — so a
    pool with [num_domains = 0] degrades to a plain sequential loop on the
    caller's domain, with no spawning and tasks executed in submission
    order. That sequential fallback is what the differential tests pin the
    parallel engine against.

    Tasks must not themselves call {!run} on the same pool (no nesting),
    and anything they share must be domain-safe. *)

type t

val default_num_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (the submitter counts as one
    executor), never negative. *)

val create : ?num_domains:int -> unit -> t
(** Spawn the workers. [num_domains] defaults to
    {!default_num_domains}[ ()]; [0] spawns nothing. Raises
    [Invalid_argument] if negative. *)

val num_domains : t -> int

val run : t -> (unit -> 'a) list -> 'a list
(** [run t thunks] executes every thunk (workers + the calling domain) and
    returns their results in submission order. If any thunk raises, the
    batch still runs to completion, then the exception of the
    lowest-indexed failing thunk is re-raised with its backtrace. *)

val shutdown : t -> unit
(** Stop accepting work and join the workers. Idempotent. Pending tasks
    from an in-flight {!run} are completed by the submitter. *)

val with_pool : ?num_domains:int -> (t -> 'a) -> 'a
(** [create], apply, then [shutdown] (also on exception). *)
