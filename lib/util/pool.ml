(* Queue elements pair the work with a crash continuation so that a task
   whose exception escapes the worker still completes its batch
   bookkeeping before the domain dies: batches are total even under
   worker panics. *)
type task = { work : unit -> unit; on_crash : exn -> unit }

type t = {
  n : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : task Queue.t;
  restart_budget : int;
  on_restart : (exn -> unit) option;
  mutable restarts : int;
  mutable live : bool;
  mutable domains : unit Domain.t list;
}

let default_num_domains () = max 0 (Domain.recommended_domain_count () - 1)
let default_restart_budget = 64

(* A worker pulls tasks until shutdown. A task exception is let escape
   (after running [on_crash]) so the domain genuinely dies — and the
   handler around the loop is the supervisor: it spawns a replacement
   domain, bounded by the restart budget. With the budget spent the pool
   degrades to fewer workers (possibly zero); {!run}/{!run_results} stay
   total because the submitting domain always helps drain the queue. *)
let rec worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          Some task
      | None ->
          if not t.live then begin
            Mutex.unlock t.mutex;
            None
          end
          else begin
            Condition.wait t.work t.mutex;
            next ()
          end
    in
    match next () with
    | Some task ->
        (match task.work () with
        | () -> ()
        | exception exn ->
            (* complete the in-flight task as a failure first, so the
               batch that owns it can never hang on a dead worker *)
            (try task.on_crash exn with _ -> ());
            raise exn);
        loop ()
    | None -> ()
  in
  try loop () with
  | exn ->
      Mutex.lock t.mutex;
      let respawn = t.live && t.restarts < t.restart_budget in
      if respawn then begin
        t.restarts <- t.restarts + 1;
        (* terminated domains release their runtime slot on exit, so the
           replacement never races the dying domain for it; every handle
           stays in [domains] and is joined at shutdown *)
        let d = Domain.spawn (worker t) in
        t.domains <- d :: t.domains
      end;
      Mutex.unlock t.mutex;
      if respawn then
        match t.on_restart with
        | Some f -> ( try f exn with _ -> ())
        | None -> ()

let create ?num_domains ?(restart_budget = default_restart_budget)
    ?on_restart () =
  let n =
    match num_domains with
    | None -> default_num_domains ()
    | Some n when n >= 0 -> n
    | Some n -> invalid_arg (Printf.sprintf "Pool.create: num_domains %d < 0" n)
  in
  if restart_budget < 0 then
    invalid_arg "Pool.create: restart_budget must be >= 0";
  let t =
    {
      n;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      restart_budget;
      on_restart;
      restarts = 0;
      live = true;
      domains = [];
    }
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (worker t));
  t

let num_domains t = t.n
let restarts t = t.restarts

let enqueue t tasks =
  Mutex.lock t.mutex;
  List.iter (fun task -> Queue.add task t.queue) tasks;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex

(* The submitter steals work too: with zero (live) workers this loop
   runs the whole batch sequentially, in submission order. Unlike a
   worker, the submitter must survive a panicking task — its thread owns
   a connection or a sweep — so it routes the exception through
   [on_crash] instead of dying. *)
let help t =
  let rec go () =
    Mutex.lock t.mutex;
    let task = Queue.take_opt t.queue in
    Mutex.unlock t.mutex;
    match task with
    | Some task ->
        (try task.work () with
        | exn -> ( try task.on_crash exn with _ -> ()));
        go ()
    | None -> ()
  in
  go ()

(* Shared batch skeleton: run [n] task records built by [make_task],
   wait until every slot has reported completion exactly once. *)
let batch t n make_task =
  let batch_mutex = Mutex.create () in
  let batch_done = Condition.create () in
  let remaining = ref n in
  let complete () =
    Mutex.lock batch_mutex;
    decr remaining;
    if !remaining = 0 then Condition.broadcast batch_done;
    Mutex.unlock batch_mutex
  in
  enqueue t (List.init n (fun i -> make_task i ~complete ~batch_mutex));
  help t;
  Mutex.lock batch_mutex;
  while !remaining > 0 do
    Condition.wait batch_done batch_mutex
  done;
  Mutex.unlock batch_mutex

(* Tasks never raise: [run] wraps each thunk so failures are recorded in
   the batch state instead of killing a worker — the cheap path for
   sweeps, where a failing design point is data, not a panic. *)
let run t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let failure = ref None (* (index, exn, backtrace) of the earliest failure *) in
    let make_task i ~complete ~batch_mutex =
      let record_failure exn bt =
        Mutex.lock batch_mutex;
        (match !failure with
        | Some (j, _, _) when j < i -> ()
        | _ -> failure := Some (i, exn, bt));
        Mutex.unlock batch_mutex
      in
      {
        work =
          (fun () ->
            (match thunks.(i) () with
            | v -> results.(i) <- Some v
            | exception exn ->
                record_failure exn (Printexc.get_raw_backtrace ()));
            complete ());
        (* only reachable if the bookkeeping above itself raised *)
        on_crash =
          (fun exn ->
            record_failure exn (Printexc.get_raw_backtrace ());
            complete ());
      }
    in
    batch t n make_task;
    match !failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
        Array.to_list
          (Array.map
             (function
               | Some v -> v
               | None -> assert false (* every non-failing task stored a result *))
             results)
  end

(* Supervised variant: a thunk exception escapes into the worker (which
   dies and is respawned within the restart budget) and surfaces as an
   [Error] slot instead of poisoning the whole batch. *)
let run_results t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let make_task i ~complete ~batch_mutex:_ =
      {
        work =
          (fun () ->
            let v = thunks.(i) () in
            results.(i) <- Some (Ok v);
            complete ());
        on_crash =
          (fun exn ->
            results.(i) <- Some (Error exn);
            complete ());
      }
    in
    batch t n make_task;
    Array.to_list
      (Array.map
         (function
           | Some r -> r
           | None -> assert false (* work or on_crash filled every slot *))
         results)
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  let ds = t.domains in
  t.domains <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join ds

let with_pool ?num_domains ?restart_budget ?on_restart f =
  let t = create ?num_domains ?restart_budget ?on_restart () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
