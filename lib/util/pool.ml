type t = {
  n : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable domains : unit Domain.t list;
}

let default_num_domains () = max 0 (Domain.recommended_domain_count () - 1)

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec next () =
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.mutex;
          Some task
      | None ->
          if not t.live then begin
            Mutex.unlock t.mutex;
            None
          end
          else begin
            Condition.wait t.work t.mutex;
            next ()
          end
    in
    match next () with
    | Some task ->
        task ();
        loop ()
    | None -> ()
  in
  loop ()

let create ?num_domains () =
  let n =
    match num_domains with
    | None -> default_num_domains ()
    | Some n when n >= 0 -> n
    | Some n -> invalid_arg (Printf.sprintf "Pool.create: num_domains %d < 0" n)
  in
  let t =
    {
      n;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      live = true;
      domains = [];
    }
  in
  t.domains <- List.init n (fun _ -> Domain.spawn (worker t));
  t

let num_domains t = t.n

(* Tasks never raise: [run] wraps each thunk so failures are recorded in
   the batch state instead of killing a worker. *)
let run t thunks =
  let thunks = Array.of_list thunks in
  let n = Array.length thunks in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let remaining = ref n in
    let failure = ref None (* (index, exn, backtrace) of the earliest failure *) in
    let task i () =
      (match thunks.(i) () with
      | v -> results.(i) <- Some v
      | exception exn ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock batch_mutex;
          (match !failure with
          | Some (j, _, _) when j < i -> ()
          | _ -> failure := Some (i, exn, bt));
          Mutex.unlock batch_mutex);
      Mutex.lock batch_mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast batch_done;
      Mutex.unlock batch_mutex
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* the submitter steals work too: with zero workers this loop runs the
       whole batch sequentially, in submission order *)
    let rec help () =
      Mutex.lock t.mutex;
      let task = Queue.take_opt t.queue in
      Mutex.unlock t.mutex;
      match task with
      | Some task ->
          task ();
          help ()
      | None -> ()
    in
    help ();
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    match !failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
        Array.to_list
          (Array.map
             (function
               | Some v -> v
               | None -> assert false (* every non-failing task stored a result *))
             results)
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
