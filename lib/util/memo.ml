type 'v entry = Computing | Done of 'v

type ('k, 'v) t = {
  tbl : ('k, 'v entry) Hashtbl.t;
  mutex : Mutex.t;
  landed : Condition.t;  (* signalled when a computation completes or aborts *)
}

let create ?(size = 64) () =
  { tbl = Hashtbl.create size; mutex = Mutex.create (); landed = Condition.create () }

let find_or_add ?(valid = fun _ -> true) t k f =
  Mutex.lock t.mutex;
  let rec loop () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) when valid v ->
        Mutex.unlock t.mutex;
        v
    | Some Computing ->
        Condition.wait t.landed t.mutex;
        loop ()
    | Some (Done _) (* stale *) | None -> (
        Hashtbl.replace t.tbl k Computing;
        Mutex.unlock t.mutex;
        match f () with
        | v ->
            Mutex.lock t.mutex;
            Hashtbl.replace t.tbl k (Done v);
            Condition.broadcast t.landed;
            Mutex.unlock t.mutex;
            v
        | exception exn ->
            Mutex.lock t.mutex;
            Hashtbl.remove t.tbl k;
            Condition.broadcast t.landed;
            Mutex.unlock t.mutex;
            raise exn)
  in
  loop ()

let find_opt t k =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) -> Some v
    | Some Computing | None -> None
  in
  Mutex.unlock t.mutex;
  r

let set t k v =
  Mutex.lock t.mutex;
  Hashtbl.replace t.tbl k (Done v);
  Condition.broadcast t.landed;
  Mutex.unlock t.mutex

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.tbl;
  Condition.broadcast t.landed;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ e acc -> match e with Done _ -> acc + 1 | Computing -> acc)
      t.tbl 0
  in
  Mutex.unlock t.mutex;
  n
