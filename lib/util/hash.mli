(** Stable content hashing (FNV-1a, 64-bit).

    One hash implementation shared by everything that content-addresses
    inputs: the serve subsystem's result cache keys (kernel sources,
    launches, design points) and the DSE engine's re-analysis memo. The
    function is a fixed algorithm — {e not} [Hashtbl.hash] — so digests
    are stable across OCaml versions, word sizes and processes, which a
    cache key that may outlive one process must be. *)

type t = int64

val init : t
(** The FNV-1a offset basis. *)

val add_string : t -> string -> t
val add_int : t -> int -> t
val add_char : t -> char -> t

val string : string -> t
(** [add_string init s]. *)

val to_hex : t -> string
(** 16 lowercase hex digits. *)
