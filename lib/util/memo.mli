(** Thread-safe memoization table.

    A [Memo.t] is a mutex-protected hash table whose [find_or_add] is safe
    to call from several domains at once: the first caller of a missing key
    computes the value (outside the lock), every concurrent caller of the
    same key blocks on a condition variable until the value lands, and
    distinct keys compute in parallel. The computation must be pure — if
    two domains race past each other (see [valid]) both may run it, and
    either result may be kept.

    This is the cache primitive behind the design-space exploration
    engine's per-work-group-size analyses ({!Flexcl_dse.Parsweep}) and the
    analytical model's trace/pattern caches ({!Flexcl_core.Model}). *)

type ('k, 'v) t

val create : ?size:int -> unit -> ('k, 'v) t
(** [create ()] makes an empty table. [size] is the initial bucket hint. *)

val find_or_add : ?valid:('v -> bool) -> ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k f] returns the cached value for [k], computing it
    with [f] on a miss. While [f] runs, other callers of [k] wait rather
    than duplicating the work; if [f] raises, the key is released and the
    exception propagates to the computing caller (waiters retry).

    [valid] (default [fun _ -> true]) guards cache hits: a stored value
    for which [valid v = false] is treated as a miss and recomputed —
    used for entries that carry a physical-identity witness (e.g. "this
    cached analysis belongs to the same kernel object"). *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Non-blocking lookup; [None] for absent or still-computing keys. *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Unconditionally store a value (replacing any previous binding). *)

val clear : ('k, 'v) t -> unit
(** Drop every completed binding (in-flight computations still land). *)

val length : ('k, 'v) t -> int
(** Number of completed bindings. *)
