(** Service metrics: named counters and latency histograms.

    Built for the serve subsystem (request counts by kind and outcome,
    cache hits/misses, per-kind latency), but generic: a registry maps
    string keys to monotone counters and to log-bucketed histograms.
    Every operation is mutex-protected and safe to call from any domain
    of a {!Pool}; reads take a consistent snapshot.

    Histograms bucket samples by powers of two (bucket [i] holds
    samples in [[2^i, 2^(i+1))], in whatever unit the caller observes —
    the server uses microseconds), so memory stays constant for
    arbitrarily long runs and quantiles are exact to within a factor of
    two, which is plenty for p50/p95/p99 service reporting. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Bump a counter (created at 0 on first use). [by] defaults to 1. *)

val observe : t -> string -> float -> unit
(** Record one sample into the named histogram. Negative and non-finite
    samples count into the lowest bucket. *)

type summary = {
  count : int;
  mean : float;
  max : float;      (** largest sample seen (exact, not bucketed). *)
  p50 : float;
  p95 : float;
  p99 : float;      (** bucket upper bounds — conservative quantiles. *)
}

val counter : t -> string -> int
(** Read one counter (0 if never bumped). *)

val set_gauge : t -> string -> float -> unit
(** Set a point-in-time value (e.g. [uptime_ms], queue depth); unlike a
    counter it is overwritten, not accumulated. *)

val counters : t -> (string * int) list
(** All counters, sorted by key. *)

val summaries : t -> (string * summary) list
(** All histograms, sorted by key. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by key. *)

val reset : t -> unit
