(** Zero-dependency strict JSON codec.

    The serve subsystem speaks newline-delimited JSON; the repo depends
    only on cmdliner, so the codec lives here rather than pulling in
    yojson. The printer is {e deterministic}: objects keep field order,
    strings escape exactly the mandatory set, and numbers print in the
    shortest form that round-trips through [float_of_string] — so a
    response is byte-identical across runs, cache states and domain
    counts, which the protocol golden tests and the serve cache rely
    on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering (no newlines — safe as one NDJSON
    record). Integral numbers with magnitude below 2{^53} print without
    a fractional part; other finite numbers print with the fewest
    digits that round-trip. Non-finite numbers print as [null] (JSON
    has no representation for them). *)

val of_string : string -> (t, string) result
(** Strict parse of exactly one JSON value (surrounding whitespace
    allowed, nothing else). Rejects trailing input, unterminated
    strings/collections, bad escapes, lone surrogates, leading zeros
    and the other deviations the JSON grammar forbids. Never raises.
    The error string names the byte offset. *)

(** {2 Accessors} — total helpers for picking requests apart. *)

val member : string -> t -> t option
(** Field of an object; [None] on anything else or a missing field. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integral value within [int] range. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val int : int -> t
(** [Num] of an [int]. *)

val equal : t -> t -> bool
(** Structural equality; [Num] compares by bit pattern so [nan = nan]
    (used by the codec round-trip tests). *)
