(** Structured prediction traces: hierarchical cycle attribution.

    A trace is a tree of named nodes, each carrying the number of cycles
    it contributes to its parent, an equation tag tying it back to the
    paper (["Eq.1"], ["Eq.10"], ["Table-1:RAR.hit"], ...), and optional
    numeric notes (informational values — a losing roofline bound, a
    trip count, a coalescing factor — that do {e not} participate in the
    cycle accounting).

    The defining invariant is {e conservation}: an internal node's
    [cycles] equals the sum of its children's [cycles] (within float
    rounding), so leaf contributions recompose the root total exactly.
    Alternatives that lose a [max] (e.g. a bus roofline that did not
    bind) appear as zero-cycle leaves or as notes, never as unaccounted
    contributions. {!check} verifies the invariant on every node;
    {!total} sums the leaves. *)

type t = {
  name : string;  (** what this contribution is, human-readable. *)
  eq : string;    (** equation tag (["Eq.7"], ["Table-1:WAW.miss"]); [""] = none. *)
  cycles : float; (** contribution to the parent, in kernel-clock cycles. *)
  notes : (string * float) list;
      (** informational annotations, excluded from conservation. *)
  children : t list;
      (** additive decomposition of [cycles]; [[]] for leaves. *)
}

val leaf : ?eq:string -> ?notes:(string * float) list -> string -> float -> t
(** [leaf name cycles] — a terminal contribution. *)

val node : ?eq:string -> ?notes:(string * float) list -> string -> t list -> t
(** [node name children] — an internal node whose [cycles] is the exact
    left-to-right sum of its children's. *)

val node_at :
  ?eq:string -> ?notes:(string * float) list -> string -> float -> t list -> t
(** [node_at name cycles children] — an internal node with an explicitly
    supplied total (the model's own value for the term); {!check}
    verifies it against the children sum. *)

val scale : float -> t -> t
(** [scale f t] multiplies every node's [cycles] by [f] (notes are kept
    as-is). Used to lift a per-iteration or per-round decomposition to
    the loop or kernel total. *)

val total : t -> float
(** Sum of all leaf contributions (pre-order, left to right). *)

val check : ?rel_eps:float -> t -> (unit, string) result
(** Conservation: for every internal node, [|cycles - sum children| <=
    rel_eps * max(|cycles|, 1)] ([rel_eps] defaults to [1e-6]). The
    error string names the first offending node and both values. *)

val find : t -> string -> t option
(** First node (pre-order) with the given [name]. *)

val render : ?max_depth:int -> t -> string
(** Indented tree, one node per line:
    {v
    cycles 123456.0  kernel gemm [Eq.10]
      ├─ 98304.0  global memory [Eq.9]
      ...
    v}
    Notes print in parentheses after the name. No trailing newline. *)

val to_json : t -> Json.t
(** Deterministic object form:
    [{"name":..., "eq":..., "cycles":..., "notes":{...}, "children":[...]}].
    [eq], [notes] and [children] are omitted when empty, so the printed
    bytes are a pure function of the trace. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; the round trip is exact (field order and
    number formatting are both deterministic). *)
