(** Structured diagnostics for the whole analysis pipeline.

    Every stage — lexer, parser, sema, lowering, scheduling, dynamic
    profiling, the analytical model and design-space exploration — maps
    its failures onto one diagnostic type, so batch sweeps over thousands
    of kernels and design points report structured errors instead of
    escaping exceptions. A diagnostic carries a stable mnemonic code
    (machine-matchable), a severity, a human message and an optional
    source span; the renderer prints compiler-style caret context when
    the offending source text is available. *)

type severity = Error | Warning | Note

(** Stable error codes, one per failure class. [code_name] gives the
    mnemonic printed inside brackets (e.g. ["E-PARSE"]); match on the
    constructor, not the string. *)
type code =
  | Io_error                 (** file could not be read. *)
  | Usage_error              (** bad command-line / API usage. *)
  | Cli_error                (** command-line misuse that deserves a
                                 structured diagnostic (unknown suite
                                 name, zero-match filter, ...) rather
                                 than silent acceptance. *)
  | Lex_error                (** malformed token. *)
  | Parse_error              (** syntax error. *)
  | Sema_error               (** type / semantic error. *)
  | Launch_invalid           (** degenerate NDRange or argument list. *)
  | Config_invalid           (** degenerate design point. *)
  | Device_invalid           (** inconsistent device description. *)
  | Lower_error              (** CDFG lowering failure. *)
  | Sched_error              (** list/modulo scheduling failure. *)
  | Profile_error            (** dynamic profiling fault (OOB, div0, ...). *)
  | Profile_budget_exceeded  (** interpreter fuel exhausted (likely hang). *)
  | Model_error              (** analytical model failure. *)
  | Pipe_unbound             (** pipe endpoint not wired to a channel (or
                                 a channel endpoint names no pipe). *)
  | Pipe_cycle               (** kernel graph has a channel cycle. *)
  | Pipe_mismatch            (** producer/consumer packet types differ. *)
  | Empty_design_space       (** no feasible design point. *)
  | Frame_error              (** oversized or truncated wire frame. *)
  | Deadline_expired         (** request's wall-clock budget ran out. *)
  | Overloaded               (** shed at admission: too many in flight. *)
  | Shutting_down            (** rejected because the server is draining. *)
  | No_model                 (** calibrated prediction requested but no
                                 learned-residual model is loaded. *)
  | Internal_error           (** invariant violation — a bug, not an input. *)

type span = { line : int; col : int }
(** 1-based source position. *)

type t = {
  code : code;
  severity : severity;
  message : string;
  span : span option;
  file : string option;
}

val code_name : code -> string
(** Mnemonic, e.g. [code_name Parse_error = "E-PARSE"]. *)

val severity_name : severity -> string

val make : ?severity:severity -> ?file:string -> ?span:span -> code -> string -> t
(** [make code msg] builds an [Error]-severity diagnostic. *)

val error :
  ?file:string ->
  ?span:span ->
  code ->
  ('a, unit, string, t) format4 ->
  'a
(** [error code fmt ...] — printf-style {!make}. *)

val with_file : string -> t -> t
(** Attach a file name (kept if already present). *)

val is_error : t -> bool

val sort : t list -> t list
(** Stable order: by file, then line, then column (span-less last). *)

val render : ?source:string -> t -> string
(** One diagnostic, compiler style:
    {v
    error[E-PARSE] kernel.cl:3:11: expected ; but found }
      3 |   int x = a[0]
        |           ^
    v}
    The caret context lines appear only when [source] is given and the
    diagnostic has a span that falls inside it. No trailing newline. *)

val render_all : ?source:string -> t list -> string
(** All diagnostics in {!sort} order, one per line (caret context
    indented below each), separated by newlines. No trailing newline. *)

val pp : Format.formatter -> t -> unit
(** [render] without source context, for [%a]. *)
