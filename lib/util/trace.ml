type t = {
  name : string;
  eq : string;
  cycles : float;
  notes : (string * float) list;
  children : t list;
}

let leaf ?(eq = "") ?(notes = []) name cycles =
  { name; eq; cycles; notes; children = [] }

let sum_cycles children =
  List.fold_left (fun acc c -> acc +. c.cycles) 0.0 children

let node ?(eq = "") ?(notes = []) name children =
  { name; eq; cycles = sum_cycles children; notes; children }

let node_at ?(eq = "") ?(notes = []) name cycles children =
  { name; eq; cycles; notes; children }

let rec scale f t =
  { t with cycles = f *. t.cycles; children = List.map (scale f) t.children }

let rec total t =
  match t.children with
  | [] -> t.cycles
  | cs -> List.fold_left (fun acc c -> acc +. total c) 0.0 cs

let check ?(rel_eps = 1e-6) t =
  let rec go t =
    match t.children with
    | [] -> Ok ()
    | cs ->
        let s = sum_cycles cs in
        if Float.abs (t.cycles -. s) > rel_eps *. Float.max (Float.abs t.cycles) 1.0
        then
          Error
            (Printf.sprintf
               "trace node %S: cycles %.17g but children sum to %.17g" t.name
               t.cycles s)
        else
          List.fold_left
            (fun acc c -> match acc with Ok () -> go c | e -> e)
            (Ok ()) cs
  in
  go t

let rec find t name =
  if t.name = name then Some t
  else
    List.fold_left
      (fun acc c -> match acc with Some _ -> acc | None -> find c name)
      None t.children

(* ------------------------------------------------------------------ *)
(* Rendering *)

let render ?(max_depth = max_int) t =
  let buf = Buffer.create 256 in
  let fmt_cycles c =
    if Float.is_integer c && Float.abs c < 1e15 then
      Printf.sprintf "%.0f" c
    else Printf.sprintf "%.2f" c
  in
  let fmt_notes = function
    | [] -> ""
    | notes ->
        "  ("
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s=%g" k v) notes)
        ^ ")"
  in
  let rec go depth prefix is_last t =
    if depth = 0 then
      Buffer.add_string buf
        (Printf.sprintf "%12s  %s%s%s" (fmt_cycles t.cycles) t.name
           (if t.eq = "" then "" else " [" ^ t.eq ^ "]")
           (fmt_notes t.notes))
    else begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%12s  %s%s %s%s%s" (fmt_cycles t.cycles) prefix
           (if is_last then "└─" else "├─")
           t.name
           (if t.eq = "" then "" else " [" ^ t.eq ^ "]")
           (fmt_notes t.notes))
    end;
    if depth < max_depth then begin
      let n = List.length t.children in
      List.iteri
        (fun i c ->
          let last = i = n - 1 in
          let child_prefix =
            if depth = 0 then "" else prefix ^ (if is_last then "   " else "│  ")
          in
          go (depth + 1) child_prefix last c)
        t.children
    end
  in
  go 0 "" true t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON *)

let rec to_json t =
  let base = [ ("name", Json.Str t.name) ] in
  let eq = if t.eq = "" then [] else [ ("eq", Json.Str t.eq) ] in
  let cycles = [ ("cycles", Json.Num t.cycles) ] in
  let notes =
    match t.notes with
    | [] -> []
    | ns -> [ ("notes", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) ns)) ]
  in
  let children =
    match t.children with
    | [] -> []
    | cs -> [ ("children", Json.Arr (List.map to_json cs)) ]
  in
  Json.Obj (base @ eq @ cycles @ notes @ children)

let rec of_json v =
  let ( let* ) r f = Result.bind r f in
  match v with
  | Json.Obj _ -> (
      let* name =
        match Option.bind (Json.member "name" v) Json.to_str with
        | Some s -> Ok s
        | None -> Error "trace node: missing string field \"name\""
      in
      let eq =
        Option.value (Option.bind (Json.member "eq" v) Json.to_str) ~default:""
      in
      let* cycles =
        match Option.bind (Json.member "cycles" v) Json.to_float with
        | Some c -> Ok c
        | None ->
            Error (Printf.sprintf "trace node %S: missing number \"cycles\"" name)
      in
      let* notes =
        match Json.member "notes" v with
        | None -> Ok []
        | Some (Json.Obj fields) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | (k, Json.Num n) :: rest -> go ((k, n) :: acc) rest
              | (k, _) :: _ ->
                  Error
                    (Printf.sprintf "trace node %S: note %S is not a number"
                       name k)
            in
            go [] fields
        | Some _ ->
            Error (Printf.sprintf "trace node %S: \"notes\" must be an object" name)
      in
      let* children =
        match Json.member "children" v with
        | None -> Ok []
        | Some (Json.Arr cs) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | c :: rest -> (
                  match of_json c with
                  | Ok t -> go (t :: acc) rest
                  | Error e -> Error e)
            in
            go [] cs
        | Some _ ->
            Error
              (Printf.sprintf "trace node %S: \"children\" must be an array" name)
      in
      Ok { name; eq; cycles; notes; children })
  | _ -> Error "trace node: expected a JSON object"
