type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest decimal form that round-trips: try %.15g, %.16g, %.17g in
   order. Integral values below 2^53 are exact in float, so %.0f is
   already a round-trip (and is what keeps cycle counts readable). *)
let number_string f =
  if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Printf.sprintf "%.0f" f
  else
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_finite f then Buffer.add_string buf (number_string f)
      else Buffer.add_string buf "null"
  | Str s -> escape_string buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> advance (); Buffer.add_char buf '"'
           | '\\' -> advance (); Buffer.add_char buf '\\'
           | '/' -> advance (); Buffer.add_char buf '/'
           | 'n' -> advance (); Buffer.add_char buf '\n'
           | 't' -> advance (); Buffer.add_char buf '\t'
           | 'r' -> advance (); Buffer.add_char buf '\r'
           | 'b' -> advance (); Buffer.add_char buf '\b'
           | 'f' -> advance (); Buffer.add_char buf '\012'
           | 'u' ->
               advance ();
               let cp = hex4 () in
               if cp >= 0xD800 && cp <= 0xDBFF then begin
                 (* high surrogate: the pair is mandatory *)
                 if !pos + 2 > n || s.[!pos] <> '\\' || s.[!pos + 1] <> 'u'
                 then fail "lone high surrogate";
                 pos := !pos + 2;
                 let lo = hex4 () in
                 if lo < 0xDC00 || lo > 0xDFFF then fail "bad low surrogate";
                 add_utf8 buf
                   (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
               end
               else if cp >= 0xDC00 && cp <= 0xDFFF then
                 fail "lone low surrogate"
               else add_utf8 buf cp
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' ->
        advance ();
        (* leading zeros are forbidden *)
        (match peek () with
        | Some '0' .. '9' -> fail "leading zero"
        | _ -> ())
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    Num (float_of_string (String.sub s start (!pos - start)))
  in
  let rec parse_value depth =
    if depth > 512 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or } in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ] in array"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing input after JSON value";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "byte %d: %s" at msg)
  | exception Stack_overflow -> Error "nesting too deep"

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int ->
      Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
let int i = Num (float_of_int i)

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.compare_lengths a b = 0 && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.compare_lengths a b = 0
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           a b
  | _ -> false
