type t = int64

let init = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let add_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let add_char h c = add_byte h (Char.code c)

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_char !h c) s;
  (* length separator: add_string h "ab" + "c" <> add_string h "a" + "bc" *)
  add_byte (add_byte !h (String.length s land 0xff)) 0x1f

let add_int h i =
  let h = ref h in
  for shift = 0 to 7 do
    h := add_byte !h ((i lsr (shift * 8)) land 0xff)
  done;
  !h

let string s = add_string init s

let to_hex h = Printf.sprintf "%016Lx" h
