(** The FlexCL analytical performance model (paper §3).

    [estimate] composes, for one design point:
    {ul
    {- the PE model — per-block resource-aware list scheduling, work-item
       initiation interval [II_comp^wi = max(RecMII, ResMII)] refined by
       modulo scheduling, pipeline depth [D_comp^PE] (Eq. 1–4);}
    {- the CU model — effective PE parallelism under shared local-memory
       ports and DSPs (Eq. 5–6);}
    {- the kernel model — effective CU parallelism under the work-group
       scheduling overhead (Eq. 7–8);}
    {- the global-memory model — profiled per-work-item pattern counts ×
       micro-benchmarked pattern latencies (Eq. 9);}
    {- barrier- or pipeline-mode integration (Eq. 10–12).}} *)

module Device = Flexcl_device.Device
module Dram = Flexcl_dram.Dram

(** Ablation switches for the refinements documented in DESIGN.md §4b.
    All on by default; the bench's ablation experiment turns them off one
    at a time to quantify each one's contribution to accuracy. *)
type options = {
  cross_wi_coalescing : bool;
      (** coalesce across the work-item pipeline (off: per-work-item
          runs only). *)
  warm_classification : bool;
      (** measure the steady state of the row buffers (off: cold
          banks). *)
  bus_roofline : bool;
      (** floor estimates by the shared-bus bandwidth (off: Eq. 10/11
          literal). *)
  multi_cu_dram_replay : bool;
      (** derive multi-CU barrier memory from the calibrated DRAM state
          machine (off: divide serialized memory by [N_CU]). *)
  vector_width : int;
      (** kernel vectorization via OpenCL vector types, modeled as PE
          parallelism per the paper's footnote 1: one [intN]-wide PE
          behaves as [N] scalar PEs. Default 1 (scalar). *)
}

val default_options : options

type breakdown = {
  ii_wi : int;          (** [II_comp^wi]. *)
  depth_pe : int;       (** [D_comp^PE]. *)
  rec_mii : int;
  res_mii : int;
  l_pe : float;         (** Eq. 1. *)
  n_pe_eff : int;       (** Eq. 6. *)
  l_cu : float;         (** Eq. 5. *)
  n_cu_eff : int;       (** Eq. 8. *)
  l_comp_kernel : float;(** Eq. 7. *)
  l_mem_wi : float;     (** Eq. 9. *)
  pattern_counts : (Dram.pattern * float) list;
      (** mean per-work-item coalesced transactions per Table-1 pattern. *)
  dsp_footprint : int;  (** spatial DSP cost of one PE. *)
  cycles : float;       (** Eq. 10 (barrier) or Eq. 11 (pipeline). *)
  seconds : float;
}

val estimate :
  ?options:options -> Device.t -> Analysis.t -> Config.t -> breakdown
(** Cycle estimate for a design point. The configuration's [wg_size] must
    match the analysis' launch ([Analysis.with_wg_size] re-analyzes). *)

val cycles : Device.t -> Analysis.t -> Config.t -> float
(** Shorthand for [(estimate _ _ _).cycles]. *)

val explain :
  ?options:options ->
  Device.t ->
  Analysis.t ->
  Config.t ->
  breakdown * Flexcl_util.Trace.t
(** Like {!estimate}, plus a cycle-attribution trace (DESIGN.md §10): a
    tree whose root carries exactly [breakdown.cycles] and whose every
    level decomposes its parent — kernel into memory and compute terms,
    compute into work-group rounds and dispatch overhead, the PE depth
    into per-basic-block schedule contributions, memory into per-Table-1
    pattern [count × latency] products. Conservation holds at every
    node: the children of a node sum to its cycles within [Trace.check]'s
    tolerance ([max] alternatives keep the winning branch; losers appear
    as 0-cycle leaves annotated with the cycles they would have cost).
    The trace shares all of {!estimate}'s memo tables and is itself
    memoized per (kernel, device, design point, options): the first call
    pays one extra region traversal, repeat calls cost a hash lookup. *)

val estimate_result :
  ?options:options ->
  Device.t ->
  Analysis.t ->
  Config.t ->
  (breakdown, Flexcl_util.Diag.t) result
(** Total variant of {!estimate}: validates the device and design point
    (including the [wg_size]-matches-launch precondition) and converts
    any scheduler/model exception into a structured diagnostic instead
    of raising. *)

val feasible : Device.t -> Analysis.t -> Config.t -> bool
(** Resource check: DSP footprint × PE × CU within the device budget,
    local memory × CU within BRAM, CU count within the practical bound,
    and [n_pe <= wg_size]. *)

val lower_bound : Device.t -> Analysis.t -> Config.t -> float
(** Cheap cycles lower bound for a design point, used by the DSE engine's
    bound-based pruning: [lower_bound dev a cfg <= cycles dev a cfg] (up
    to float rounding) under {!default_options}. Built from the
    dependence-only critical path of the kernel body (no list/modulo
    scheduling), the shared-bus memory floor [txns/WI ⋅ N_wi ⋅ t_bus],
    and the work-group dispatch floor — each a provable underestimate of
    the corresponding {!estimate} term. The bound is {e not} valid for
    other oracles (the simulator, the SDAccel baseline) or non-default
    ablation options. *)

(** {2 Staged specialization for DSE sweeps (DESIGN.md §11)}

    A sweep evaluates one [(device, analysis)] pair at thousands of
    design points. {!specialize} performs the config-invariant work once
    — per-block list schedules, the SMS-refined [II_comp^wi] and
    [D_comp^PE] (staged per distinct DSP share, the scheduler's only
    PE/CU-knob dependence), Table-1 pattern counts and the Eq. 9
    per-work-item latency, bus-roofline totals, DSP/port footprints, and
    the lower bound's critical path — so each subsequent point costs only
    the closed-form Eq. 5–12 tail (~50 float operations). *)

type specialized
(** A model staged on [(device, analysis, options)]; evaluate with
    {!specialized_estimate}. Values are cheap to hold and domain-safe:
    the per-DSP-share schedule stage lives in a [Flexcl_util.Memo]. *)

val specialize : ?options:options -> Device.t -> Analysis.t -> specialized
(** Stage every config-invariant model term for this analysis. The
    staging is exact, not approximate: for every configuration [cfg]
    with [cfg.wg_size = Launch.wg_size analysis.launch],
    [specialized_estimate (specialize ?options dev a) cfg] is bitwise
    equal — every [breakdown] field, compared at the bit level — to
    [estimate ?options dev a cfg], under any [options]. A point with a
    different [wg_size] falls back to the full {!estimate} (which
    re-analyzes), so equality holds over the whole design space. The
    differential suite in [test/test_specialize.ml] enforces this. *)

val specialized_estimate : specialized -> Config.t -> breakdown
(** Evaluate one design point on the staged model. *)

val specialized_cycles : specialized -> Config.t -> float
(** Shorthand for [(specialized_estimate _ _).cycles]. *)

val specialized_lower_bound : specialized -> Config.t -> float
(** {!lower_bound} on the staged invariants (critical path, default-
    options pattern counts and bus floor are staged; the per-point tail
    is transcribed from {!lower_bound}): bitwise equal to
    [lower_bound dev a cfg] for matching [wg_size], with the same
    fallback otherwise. *)

val specialized_options : specialized -> options
(** The options the model was staged with. *)

val specialized_analysis : specialized -> Analysis.t
(** The analysis the model was staged on. *)

val bottleneck : breakdown -> string
(** Human-readable dominant term ("global memory", "recurrence",
    "local-memory ports", "DSP", "compute depth", "scheduling overhead")
    — the code-restructuring hint the paper's introduction promises. *)

(** {2 Hooks for the ground-truth simulator}

    The simulator shares the model's structural composition but injects
    realized (per-instance) block latencies and recomputes memory timing
    through the stateful DRAM simulator, so the two diverge exactly where
    real systems diverge from the analytical average. *)

val region_latency_with :
  ?block_lat:(Flexcl_ir.Dfg.t -> int) ->
  Device.t ->
  Analysis.t ->
  Config.t ->
  Flexcl_ir.Cdfg.region ->
  float
(** Latency of a region; [block_lat] overrides per-block latencies. *)

val work_item_mii_parts : Device.t -> Analysis.t -> Config.t -> int * int
(** [(RecMII, ResMII)] of the work-item pipeline (Eq. 2–4). *)

val mean_pattern_counts :
  ?options:options -> Analysis.t -> Device.t -> (Dram.pattern * float) list
(** Mean per-work-item coalesced transaction counts per pattern. *)

val mean_pattern_counts_by_channel :
  ?options:options -> Analysis.t -> Device.t -> (Dram.pattern * float) list array
(** Per-channel mean per-work-item pattern counts (index = channel);
    their elementwise sum equals {!mean_pattern_counts}. Cached like
    {!mean_pattern_counts}. *)

val channel_demands :
  ?options:options -> Analysis.t -> Device.t -> n_wi_f:float -> float array
(** Per-channel demanded service cycles of the whole NDRange (DESIGN.md
    §15, Eq. R1): transactions bound to the channel × max(t_bus, mean
    pattern latency / queue_depth). Empty demand = 0. *)

val channel_roofline :
  ?options:options -> Analysis.t -> Device.t -> n_wi_f:float -> float
(** The memory-bound path: max over {!channel_demands} (the slowest
    channel binds). On [n_channels > 1] devices this replaces the
    single shared-bus floor inside {!estimate}. *)

val pattern_latencies : Device.t -> (Dram.pattern * float) list
(** Micro-benchmark pattern latency table of a device (cached). *)
