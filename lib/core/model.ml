open Flexcl_opencl
open Flexcl_ir
module Device = Flexcl_device.Device
module Dram = Flexcl_dram.Dram
module Graph = Flexcl_util.Graph
module Memo = Flexcl_util.Memo
module Listsched = Flexcl_sched.Listsched
module Sms = Flexcl_sched.Sms
module Interp = Flexcl_interp.Interp
module Trace = Flexcl_util.Trace

(* Ablation switches for the refinements of DESIGN.md §4b; the bench's
   ablation experiment disables them one at a time. *)
type options = {
  cross_wi_coalescing : bool;
  warm_classification : bool;
  bus_roofline : bool;
  multi_cu_dram_replay : bool;
  vector_width : int;
}

let default_options =
  {
    cross_wi_coalescing = true;
    warm_classification = true;
    bus_roofline = true;
    multi_cu_dram_replay = true;
    vector_width = 1;
  }

type breakdown = {
  ii_wi : int;
  depth_pe : int;
  rec_mii : int;
  res_mii : int;
  l_pe : float;
  n_pe_eff : int;
  l_cu : float;
  n_cu_eff : int;
  l_comp_kernel : float;
  l_mem_wi : float;
  pattern_counts : (Dram.pattern * float) list;
  dsp_footprint : int;
  cycles : float;
  seconds : float;
}

let fceil x = Float.ceil x

let iceil_div a b = if b <= 0 then a else (a + b - 1) / b

(* ------------------------------------------------------------------ *)
(* Pattern-latency tables are device-wide: cache per device name. All of
   the model's caches are [Memo] tables (not plain [Hashtbl]s) because the
   DSE engine evaluates design points from several domains at once. *)

let latency_tables : (string, (Dram.pattern * float) list) Memo.t =
  Memo.create ~size:4 ()

let pattern_latencies (dev : Device.t) =
  Memo.find_or_add latency_tables dev.Device.name (fun () ->
      Dram.profile_latencies dev.Device.dram)

(* ------------------------------------------------------------------ *)
(* Computation model *)

type comp_env = {
  dev : Device.t;
  analysis : Analysis.t;
  cons : Listsched.constraints;
  lat : Opcode.t -> int;
  dsp : Opcode.t -> int;
  block_lat_override : (Dfg.t -> int) option;
      (** the simulator injects realized per-instance latencies here. *)
  mutable summaries : (Dfg.t * Listsched.summary) list;
      (** per-env schedule memo (physical keys): each block is list- and
          modulo-scheduled from several places per estimate (region
          latency, SMS macro nodes, the trace builder); one env never
          crosses domains, so a plain field suffices. *)
}

let block_summary env d =
  match List.find_opt (fun (d', _) -> d' == d) env.summaries with
  | Some (_, s) -> s
  | None ->
      let s =
        Listsched.summarize d ~lat:env.lat ~dsp_cost:env.dsp ~cons:env.cons
      in
      env.summaries <- (d, s) :: env.summaries;
      s

let block_latency env d =
  match env.block_lat_override with
  | Some f -> f d
  | None -> (block_summary env d).Listsched.latency

(* Conflict DAG of a list of sibling regions: siblings with disjoint
   read/write sets run as parallel circuits (§3.2); conflicting siblings
   order by program position. Shared by the latency computation and the
   trace builder so both walk the same critical path. *)
let seq_conflict_graph arr =
  let n = Array.length arr in
  let reads = Array.map Cdfg.region_reads arr in
  let writes = Array.map Cdfg.region_writes arr in
  let intersects a b = List.exists (fun x -> List.mem x b) a in
  let g = Graph.create n in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let conflict =
        intersects writes.(i) reads.(j)
        || intersects writes.(i) writes.(j)
        || intersects reads.(i) writes.(j)
      in
      if conflict then Graph.add_edge g i j
    done
  done;
  g

(* longest path over float node weights; [dist.(v)] includes [lats.(v)] *)
let seq_dist g lats =
  let order = match Graph.topo_sort g with Some o -> o | None -> assert false in
  let dist = Array.copy lats in
  List.iter
    (fun u ->
      List.iter
        (fun (v, _) ->
          if dist.(u) +. lats.(v) > dist.(v) then dist.(v) <- dist.(u) +. lats.(v))
        (Graph.succs g u))
    order;
  dist

(* Dependence-ordered latency of a list of sibling regions. *)
let seq_latency child_lat children =
  let n = List.length children in
  if n = 0 then 0.0
  else begin
    let arr = Array.of_list children in
    let lats = Array.map child_lat arr in
    let dist = seq_dist (seq_conflict_graph arr) lats in
    Array.fold_left Float.max 0.0 dist
  end

(* RecMII of the recurrences inside a block: block DFG + back edges. *)
let block_rec_mii env (d : Dfg.t) (recs : Depend.recurrence list) =
  match recs with
  | [] -> 0
  | _ ->
      let src = Dfg.graph d in
      let g = Graph.create (Graph.n_nodes src) in
      for u = 0 to Graph.n_nodes src - 1 do
        List.iter (fun (v, _) -> Graph.add_edge ~weight:0 g u v) (Graph.succs src u)
      done;
      List.iter
        (fun (r : Depend.recurrence) ->
          Graph.add_edge ~weight:r.Depend.distance g r.Depend.store r.Depend.load)
        recs;
      let cost u = env.lat (Dfg.node d u).Dfg.op in
      (try Graph.max_cycle_ratio g ~cost with Invalid_argument _ -> 0)

let recurrences_of_block recs d =
  List.filter (fun (r : Depend.recurrence) -> r.Depend.block == d) recs

(* Loop pipelining: II of the loop body. *)
let loop_ii env (body : Cdfg.region) loop_recs =
  let rec_part =
    Cdfg.fold_blocks
      (fun acc d -> max acc (block_rec_mii env d (recurrences_of_block loop_recs d)))
      0 body
  in
  let reads =
    Cdfg.count_ops body
      (fun op -> op = Opcode.Load Opcode.Local_mem)
      ~trip:(fun _ -> 1)
  and writes =
    Cdfg.count_ops body
      (fun op -> op = Opcode.Store Opcode.Local_mem)
      ~trip:(fun _ -> 1)
  and dsps =
    Cdfg.fold_blocks
      (fun acc d ->
        List.fold_left (fun a (n : Dfg.node) -> a + env.dsp n.Dfg.op) acc (Dfg.nodes d))
      0 body
  in
  let cap total limit = if limit <= 0 then 1 else iceil_div total limit in
  let res_part =
    max
      (cap (int_of_float reads) env.cons.Listsched.read_ports)
      (max
         (cap (int_of_float writes) env.cons.Listsched.write_ports)
         (cap dsps env.cons.Listsched.dsp))
  in
  max 1 (max rec_part res_part)

let rec region_latency env (r : Cdfg.region) : float =
  match r with
  | Cdfg.Straight d -> float_of_int (block_latency env d)
  | Cdfg.Seq rs -> seq_latency (region_latency env) rs
  | Cdfg.Branch { cond; then_; else_ } ->
      float_of_int (block_latency env cond)
      +. Float.max (region_latency env then_) (region_latency env else_)
  | Cdfg.Loop { info; header; body } ->
      let trip = Analysis.trip env.analysis info in
      if trip <= 0.0 then 0.0
      else
        let header_lat = float_of_int (block_latency env header) in
        let body_lat = region_latency env body in
        let iter_lat = header_lat +. body_lat in
        let loop_recs =
          Option.value
            (List.assoc_opt info.Cdfg.loop_id env.analysis.Analysis.loop_recurrences)
            ~default:[]
        in
        if info.Cdfg.attrs.Ast.pipeline then
          let ii = float_of_int (loop_ii env body loop_recs) in
          (ii *. (trip -. 1.0)) +. iter_lat
        else
          let u =
            match info.Cdfg.attrs.Ast.unroll with
            | Some u -> float_of_int (min u (max 1 (int_of_float trip)))
            | None -> 1.0
          in
          if u <= 1.0 then trip *. iter_lat
          else
            let eff_trip = fceil (trip /. u) in
            let carried = loop_recs <> [] in
            let unrolled_iter =
              if carried then u *. iter_lat
              else
                (* independent copies share ports: extra copies cost their
                   initiation slot, bounded below by the body's ResMII *)
                let ii = float_of_int (loop_ii env body []) in
                iter_lat +. ((u -. 1.0) *. ii)
            in
            eff_trip *. unrolled_iter

(* ------------------------------------------------------------------ *)
(* Cycle-attribution trace of the computation model (DESIGN.md §10).

   [region_trace] mirrors [region_latency] case by case: additions happen
   in the same order, each [max] keeps only the winning alternative (the
   loser appears as a 0-cycle leaf annotated with the cycles it would
   have contributed), and the Seq case re-walks the same conflict-DAG
   critical path that [seq_latency] scored — so the trace root's cycles
   recompose the very float the estimate produced. Blocks are numbered
   [b0, b1, ...] in pre-order over the region tree. *)

let block_leaf env ~ctr d =
  let i = !ctr in
  incr ctr;
  let name = Printf.sprintf "block b%d" i in
  match env.block_lat_override with
  | Some f -> Trace.leaf ~eq:"Eq.1" name (float_of_int (f d))
  | None ->
      let s = block_summary env d in
      Trace.leaf ~eq:"Eq.1" name
        (float_of_int s.Listsched.latency)
        ~notes:
          [
            ("ops", float_of_int s.Listsched.n_ops);
            ("crit_path", float_of_int s.Listsched.crit_path);
            ("resource_delay", float_of_int s.Listsched.res_delay);
          ]

let rec region_trace env ~ctr (r : Cdfg.region) : Trace.t =
  match r with
  | Cdfg.Straight d -> block_leaf env ~ctr d
  | Cdfg.Seq [] -> Trace.leaf "empty sequence" 0.0
  | Cdfg.Seq rs ->
      let arr = Array.of_list rs in
      let subs = Array.make (Array.length arr) (Trace.leaf "" 0.0) in
      Array.iteri (fun i r -> subs.(i) <- region_trace env ~ctr r) arr;
      let lats = Array.map (fun (t : Trace.t) -> t.Trace.cycles) subs in
      let g = seq_conflict_graph arr in
      let dist = seq_dist g lats in
      let best = Array.fold_left Float.max 0.0 dist in
      (* reconstruct the critical circuit by exact-float backtracking:
         [dist.(v)] was assigned the very sum [dist.(u) +. lats.(v)], so
         equality identifies the predecessor that set it (or, when none
         matches, the path starts at [v] with [dist.(v) = lats.(v)]).
         Summing the on-path sibling latencies left to right then replays
         the identical chain of additions. *)
      let v_end =
        let rec go i = if dist.(i) = best then i else go (i + 1) in
        go 0
      in
      let rec back v acc =
        let acc = v :: acc in
        match
          List.find_opt
            (fun (u, _) -> dist.(u) +. lats.(v) = dist.(v))
            (Graph.preds g v)
        with
        | Some (u, _) -> back u acc
        | None -> acc
      in
      let on_path = back v_end [] in
      let off =
        List.filter_map
          (fun v ->
            if List.mem v on_path then None
            else
              Some
                (Trace.leaf
                   (Printf.sprintf "%s (overlapped)" subs.(v).Trace.name)
                   0.0
                   ~notes:[ ("parallel_circuit_cycles", lats.(v)) ]))
          (List.init (Array.length arr) Fun.id)
      in
      Trace.node "seq (parallel circuits)"
        (List.map (fun v -> subs.(v)) on_path @ off)
  | Cdfg.Branch { cond; then_; else_ } ->
      let cond_t = block_leaf env ~ctr cond in
      let then_t = region_trace env ~ctr then_ in
      let else_t = region_trace env ~ctr else_ in
      let then_wins = then_t.Trace.cycles >= else_t.Trace.cycles in
      let win, lose, lose_name =
        if then_wins then (then_t, else_t, "else") else (else_t, then_t, "then")
      in
      let win =
        {
          win with
          Trace.name =
            win.Trace.name ^ (if then_wins then " (then arm)" else " (else arm)");
        }
      in
      Trace.node "branch"
        [
          cond_t;
          win;
          Trace.leaf (lose_name ^ " arm (shorter)") 0.0
            ~notes:[ ("alternative_cycles", lose.Trace.cycles) ];
        ]
  | Cdfg.Loop { info; header; body } ->
      let trip = Analysis.trip env.analysis info in
      let header_t = block_leaf env ~ctr header in
      let body_t = region_trace env ~ctr body in
      let lname fmt = Printf.sprintf fmt info.Cdfg.loop_id in
      if trip <= 0.0 then
        Trace.leaf (lname "loop L%d (zero trip)") 0.0 ~notes:[ ("trip", trip) ]
      else
        let iter = Trace.node (lname "loop L%d iteration") [ header_t; body_t ] in
        let loop_recs =
          Option.value
            (List.assoc_opt info.Cdfg.loop_id env.analysis.Analysis.loop_recurrences)
            ~default:[]
        in
        if info.Cdfg.attrs.Ast.pipeline then
          let ii = float_of_int (loop_ii env body loop_recs) in
          Trace.node
            (lname "loop L%d (pipelined)")
            [
              Trace.leaf "pipeline ramp (II × (trip − 1))"
                (ii *. (trip -. 1.0))
                ~notes:[ ("ii", ii); ("trip", trip) ];
              iter;
            ]
        else
          let u =
            match info.Cdfg.attrs.Ast.unroll with
            | Some u -> float_of_int (min u (max 1 (int_of_float trip)))
            | None -> 1.0
          in
          if u <= 1.0 then
            let t = Trace.scale trip iter in
            {
              t with
              Trace.name = lname "loop L%d (sequential)";
              notes = [ ("trip", trip) ];
            }
          else
            let eff_trip = fceil (trip /. u) in
            let carried = loop_recs <> [] in
            let loop_notes =
              [ ("trip", trip); ("eff_trip", eff_trip); ("unroll", u) ]
            in
            if carried then
              let unrolled = Trace.scale u iter in
              let unrolled =
                {
                  unrolled with
                  Trace.name = "unrolled copies (carried, serialized)";
                  notes = [ ("unroll", u) ];
                }
              in
              let t = Trace.scale eff_trip unrolled in
              { t with Trace.name = lname "loop L%d (unrolled)"; notes = loop_notes }
            else
              let ii = float_of_int (loop_ii env body []) in
              let group =
                Trace.node "unrolled iteration group"
                  [
                    iter;
                    Trace.leaf "extra unrolled copies (initiation slots)"
                      ((u -. 1.0) *. ii)
                      ~notes:[ ("unroll", u); ("ii", ii) ];
                  ]
              in
              let t = Trace.scale eff_trip group in
              { t with Trace.name = lname "loop L%d (unrolled)"; notes = loop_notes }

(* ------------------------------------------------------------------ *)
(* Work-item II (Eq. 2–4 + SMS refinement) *)

let weighted_counts env =
  Cdfg.weighted_op_counts
    ~trip:(fun info -> int_of_float (fceil (Analysis.trip env.analysis info)))
    env.analysis.Analysis.cdfg.Cdfg.body

let count_of counts pred =
  List.fold_left (fun acc (op, c) -> if pred op then acc +. c else acc) 0.0 counts

let work_item_res_mii env counts =
  let reads = count_of counts (fun op -> op = Opcode.Load Opcode.Local_mem) in
  let writes = count_of counts (fun op -> op = Opcode.Store Opcode.Local_mem) in
  let dsps =
    List.fold_left
      (fun acc (op, c) -> acc +. (c *. float_of_int (env.dsp op)))
      0.0 counts
  in
  let cap total limit =
    if limit <= 0 || total <= 0.0 then 1
    else int_of_float (fceil (total /. float_of_int limit))
  in
  let mem =
    max
      (cap reads env.cons.Listsched.read_ports)
      (cap writes env.cons.Listsched.write_ports)
  in
  (* Eq. 3: ResMII = max(ResMII_mem, ResMII_dsp) *)
  max mem (cap dsps env.cons.Listsched.dsp)

let work_item_rec_mii env =
  Cdfg.fold_blocks
    (fun acc d ->
      max acc
        (block_rec_mii env d
           (recurrences_of_block env.analysis.Analysis.wi_recurrences d)))
    0 env.analysis.Analysis.cdfg.Cdfg.body

(* SMS refinement at block-macro granularity: every block is a node with
   its list-scheduled latency and aggregate port/DSP usage; sequential
   program order provides distance-0 edges. The modulo scheduler then
   reports the smallest II with a conflict-free reservation table. *)
let sms_refine env ~mii =
  let blocks =
    Cdfg.fold_blocks (fun acc d -> d :: acc) [] env.analysis.Analysis.cdfg.Cdfg.body
    |> List.rev
  in
  match blocks with
  | [] -> mii
  | _ ->
      let n = List.length blocks in
      let arr = Array.of_list blocks in
      let lat = Array.map (fun d -> block_latency env d) arr in
      let usage =
        Array.map
          (fun d ->
            {
              Sms.reads = Dfg.count d (fun op -> op = Opcode.Load Opcode.Local_mem);
              writes = Dfg.count d (fun op -> op = Opcode.Store Opcode.Local_mem);
              dsps =
                List.fold_left
                  (fun a (nd : Dfg.node) -> a + env.dsp nd.Dfg.op)
                  0 (Dfg.nodes d);
            })
          arr
      in
      let deps = List.init (n - 1) (fun i -> (i, i + 1, 0)) in
      let limits =
        {
          Sms.read_ports = env.cons.Listsched.read_ports;
          write_ports = env.cons.Listsched.write_ports;
          dsp_slots = env.cons.Listsched.dsp;
        }
      in
      let problem = { Sms.lat; usage; deps } in
      (try
         let r = Sms.schedule problem limits in
         max mii r.Sms.ii
       with Invalid_argument _ -> mii)

(* ------------------------------------------------------------------ *)
(* Memory model (Eq. 9) *)

(* Per-work-item pattern counts after coalescing across the work-item
   pipeline: each profiled work-group's traces are transposed site-major
   and merged (§3.4's automatic coalescing of consecutive accesses), then
   the per-bank pattern classification runs on the merged stream. *)
let compute_chunk_streams ~options (analysis : Analysis.t) (dev : Device.t) =
  let traces = analysis.Analysis.profile.Interp.wi_traces in
  let n = Array.length traces in
  let wg = max 1 (Launch.wg_size analysis.Analysis.launch) in
  let streams = ref [] in
  let pos = ref 0 in
  while !pos < n do
    let len = min wg (n - !pos) in
    let chunk = Array.sub traces !pos len in
    let txns =
      if options.cross_wi_coalescing then
        Dram.coalesce_workgroup dev.Device.dram analysis.Analysis.layout chunk
      else
        (* ablation: per-work-item coalescing only *)
        List.concat_map
          (Dram.coalesce dev.Device.dram analysis.Analysis.layout)
          (Array.to_list chunk)
    in
    streams := txns :: !streams;
    pos := !pos + len
  done;
  List.rev !streams

(* coalescing the profiled traces is pure per (analysis, device,
   coalescing mode): cache it, since every estimate needs it. The cached
   pair carries the analysis the value was derived from; the identity
   check invalidates entries left by a different (equal-key) analysis
   object, e.g. a re-analysis of the same kernel. *)
let stream_cache :
    (string * int * string * bool, Analysis.t * Dram.txn list list) Memo.t =
  Memo.create ()

let chunk_streams ?(options = default_options) (analysis : Analysis.t)
    (dev : Device.t) =
  let key =
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      Launch.wg_size analysis.Analysis.launch,
      dev.Device.name,
      options.cross_wi_coalescing )
  in
  snd
    (Memo.find_or_add stream_cache key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () -> (analysis, compute_chunk_streams ~options analysis dev)))

let counts_cache :
    ( string * int * string * bool * bool,
      Analysis.t * (Dram.pattern * float) list )
    Memo.t =
  Memo.create ()

let round_span_cache :
    (string * int * string * bool * int, Analysis.t * float) Memo.t =
  Memo.create ()

let compute_mean_pattern_counts ~options (analysis : Analysis.t)
    (dev : Device.t) =
  let n = Array.length analysis.Analysis.profile.Interp.wi_traces in
  if n = 0 then List.map (fun p -> (p, 0.0)) Dram.all_patterns
  else begin
    (* the bank state is continuous across the profiled groups, as on
       the device *)
    let all_txns = List.concat (chunk_streams ~options analysis dev) in
    (* warm-up pass: measure the steady state, not the cold banks *)
    let warmup = if options.warm_classification then all_txns else [] in
    List.map
      (fun (p, c) -> (p, float_of_int c /. float_of_int n))
      (Dram.pattern_counts ~warmup dev.Device.dram all_txns)
  end

let mean_pattern_counts ?(options = default_options) (analysis : Analysis.t)
    (dev : Device.t) =
  let key =
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      Launch.wg_size analysis.Analysis.launch,
      dev.Device.name,
      options.cross_wi_coalescing,
      options.warm_classification )
  in
  snd
    (Memo.find_or_add counts_cache key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () -> (analysis, compute_mean_pattern_counts ~options analysis dev)))

(* Memory span of one round of [k] concurrent work-groups in barrier
   mode: each profiled stream chains its transactions (one outstanding),
   the [k] streams contend for banks and the shared bus in the
   calibrated DRAM timing model (the micro-benchmark-derived state
   machine of the pattern table). A warm-up round brings the banks to
   steady state. This is a static computation over the profiled chunk
   streams — a few hundred transactions. *)
let compute_round_mem_span ~options (analysis : Analysis.t) (dev : Device.t)
    ~k ~lanes =
  let streams = chunk_streams ~options analysis dev in
  let k = max 1 (min k (List.length streams)) in
  let lanes = max 1 lanes in
  let arrs =
    List.filteri (fun i _ -> i < k) streams |> List.map Array.of_list
  in
  let sim = Dram.Sim.create dev.Device.dram in
  let drain start =
    let cursors =
      List.map (fun a -> (a, ref 0, Array.make lanes start)) arrs
    in
    let next_time (_, i, ln) = ln.(!i mod lanes) in
    let last = ref start in
    let rec go () =
      let live =
        List.filter (fun (a, i, _) -> !i < Array.length a) cursors
      in
      match live with
      | [] -> ()
      | first :: rest ->
          let (a, i, ln) =
            List.fold_left
              (fun best cand ->
                if next_time cand < next_time best then cand else best)
              first rest
          in
          let lane = !i mod lanes in
          let fin = Dram.Sim.access sim ~now:ln.(lane) a.(!i) in
          ln.(lane) <- fin;
          if fin > !last then last := fin;
          incr i;
          go ()
    in
    go ();
    !last
  in
  let warm_end = drain 0 in
  let measured_end = drain warm_end in
  float_of_int (max 0 (measured_end - warm_end))

let round_mem_span ?(options = default_options) (analysis : Analysis.t)
    (dev : Device.t) ~k ~lanes =
  let key =
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      Launch.wg_size analysis.Analysis.launch,
      dev.Device.name,
      options.cross_wi_coalescing,
      (k * 64) + lanes )
  in
  snd
    (Memo.find_or_add round_span_cache key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () -> (analysis, compute_round_mem_span ~options analysis dev ~k ~lanes)))

let mem_latency_wi (dev : Device.t) pattern_counts =
  let table = pattern_latencies dev in
  List.fold_left
    (fun acc (p, c) -> acc +. (c *. List.assoc p table))
    0.0 pattern_counts

(* ------------------------------------------------------------------ *)
(* Multi-channel bandwidth roofline (DESIGN.md §15).

   On devices with [n_channels > 1] the single shared-bus floor is
   replaced by a per-channel one: buffer placement splits the
   transaction stream across channels, each channel serves its share at
   a delivered rate bounded by its data bus (one transaction per
   [t_bus]) and by its bounded outstanding-transaction queue (Little's
   law: at most [queue_depth] in flight, each resident for the average
   pattern latency), and the memory-bound path of the kernel is the
   {e slowest channel}. 1-channel devices never reach this code, so
   their estimates stay bitwise identical to the single-bus model. *)

let chan_counts_cache :
    ( string * int * string * bool * bool,
      Analysis.t * (Dram.pattern * float) list array )
    Memo.t =
  Memo.create ()

let compute_mean_pattern_counts_by_channel ~options (analysis : Analysis.t)
    (dev : Device.t) =
  let n = Array.length analysis.Analysis.profile.Interp.wi_traces in
  let n_chans = max 1 dev.Device.dram.Dram.n_channels in
  if n = 0 then
    Array.init n_chans (fun _ ->
        List.map (fun p -> (p, 0.0)) Dram.all_patterns)
  else begin
    let all_txns = List.concat (chunk_streams ~options analysis dev) in
    let warmup = if options.warm_classification then all_txns else [] in
    Array.map
      (List.map (fun (p, c) -> (p, float_of_int c /. float_of_int n)))
      (Dram.pattern_counts_by_channel ~warmup dev.Device.dram all_txns)
  end

let mean_pattern_counts_by_channel ?(options = default_options)
    (analysis : Analysis.t) (dev : Device.t) =
  let key =
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      Launch.wg_size analysis.Analysis.launch,
      dev.Device.name,
      options.cross_wi_coalescing,
      options.warm_classification )
  in
  snd
    (Memo.find_or_add chan_counts_cache key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () ->
         (analysis, compute_mean_pattern_counts_by_channel ~options analysis dev)))

(* Demanded service cycles of one channel: it must move [txns_c × N_wi]
   coalesced transactions, each occupying the channel for at least
   [t_bus] cycles (data bus) and — with a bounded queue of depth Q — for
   at least [L̄_c / Q] cycles (Q outstanding slots, each resident for the
   channel's average pattern latency). *)
let channel_demand_cycles (dev : Device.t) counts_c ~n_wi_f =
  let txns_c = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 counts_c in
  if txns_c <= 0.0 then 0.0
  else begin
    let t_bus_f = float_of_int dev.Device.dram.Dram.t_bus in
    let qd = dev.Device.dram.Dram.queue_depth in
    let per_txn =
      if qd > 0 then
        let l_mem_c = mem_latency_wi dev counts_c in
        Float.max t_bus_f (l_mem_c /. txns_c /. float_of_int qd)
      else t_bus_f
    in
    txns_c *. n_wi_f *. per_txn
  end

let channel_demands ?(options = default_options) (analysis : Analysis.t)
    (dev : Device.t) ~n_wi_f =
  Array.map
    (fun counts_c -> channel_demand_cycles dev counts_c ~n_wi_f)
    (mean_pattern_counts_by_channel ~options analysis dev)

let channel_roofline ?options (analysis : Analysis.t) (dev : Device.t) ~n_wi_f =
  Array.fold_left Float.max 0.0 (channel_demands ?options analysis dev ~n_wi_f)

(* ------------------------------------------------------------------ *)
(* DSP / BRAM footprints *)

let dsp_footprint_of env =
  Cdfg.fold_blocks
    (fun acc d ->
      List.fold_left (fun a (n : Dfg.node) -> a + env.dsp n.Dfg.op) acc (Dfg.nodes d))
    0 env.analysis.Analysis.cdfg.Cdfg.body

let local_bytes (analysis : Analysis.t) =
  List.fold_left
    (fun acc (_, ty) ->
      match ty with
      | Flexcl_opencl.Types.Array _ -> acc + (Flexcl_opencl.Types.bits ty / 8)
      | _ -> acc)
    0 analysis.Analysis.sema.Flexcl_opencl.Sema.local_arrays

(* ------------------------------------------------------------------ *)

(* The only PE/CU-knob dependence of the whole scheduling layer: the DSP
   share one PE may occupy. Every other schedule input is fixed by
   (device, analysis), which is what makes [specialize] below possible. *)
let dsp_share_of (dev : Device.t) (cfg : Config.t) =
  max 8 (dev.Device.dsp_total / max 1 (cfg.Config.n_pe * cfg.Config.n_cu))

let env_with_share ?block_lat (dev : Device.t) (analysis : Analysis.t)
    ~dsp_share =
  {
    dev;
    analysis;
    cons =
      {
        Listsched.read_ports = Device.local_read_ports dev;
        write_ports = Device.local_write_ports dev;
        dsp = dsp_share;
      };
    lat = Device.op_latency dev;
    dsp = Device.dsp_cost dev;
    block_lat_override = block_lat;
    summaries = [];
  }

let make_env ?block_lat (dev : Device.t) (analysis : Analysis.t) (cfg : Config.t) =
  env_with_share ?block_lat dev analysis ~dsp_share:(dsp_share_of dev cfg)

let region_latency_with ?block_lat dev analysis cfg region =
  region_latency (make_env ?block_lat dev analysis cfg) region

let work_item_mii_parts dev analysis cfg =
  let env = make_env dev analysis cfg in
  let counts = weighted_counts env in
  (work_item_rec_mii env, work_item_res_mii env counts)

(* The single evaluation path behind [estimate] and [explain]: the
   breakdown is always computed; the attribution trace only on demand.
   Every trace node recomposes the exact float of the quantity it names
   (see the [region_trace] comment for how [max]/Seq keep that exact). *)
let compute ~options ~want_trace (dev : Device.t) (analysis : Analysis.t)
    (cfg : Config.t) =
  let analysis =
    if Launch.wg_size analysis.Analysis.launch = cfg.Config.wg_size then analysis
    else Analysis.with_wg_size analysis cfg.Config.wg_size
  in
  let cfg =
    if options.vector_width > 1 then
      { cfg with Config.n_pe = cfg.Config.n_pe * options.vector_width }
    else cfg
  in
  let env = make_env dev analysis cfg in
  let counts = weighted_counts env in
  let depth_pe =
    int_of_float (fceil (region_latency env analysis.Analysis.cdfg.Cdfg.body))
  in
  let rec_mii = work_item_rec_mii env in
  let res_mii = work_item_res_mii env counts in
  let mii = max 1 (max rec_mii res_mii) in
  let ii_wi = if cfg.Config.wi_pipeline then sms_refine env ~mii else max 1 depth_pe in
  let wg = cfg.Config.wg_size in
  let l_pe = (float_of_int ii_wi *. float_of_int (wg - 1)) +. float_of_int depth_pe in
  (* Eq. 6: effective PE parallelism under shared ports and DSPs *)
  let reads = count_of counts (fun op -> op = Opcode.Load Opcode.Local_mem) in
  let writes = count_of counts (fun op -> op = Opcode.Store Opcode.Local_mem) in
  let dsp_fp = dsp_footprint_of env in
  let cap demand supply =
    if demand <= 0.0 then max_int
    else max 1 (int_of_float (float_of_int supply *. float_of_int ii_wi /. demand))
  in
  let n_pe_eff =
    min cfg.Config.n_pe
      (min
         (cap reads (Device.local_read_ports dev))
         (min
            (cap writes (Device.local_write_ports dev))
            (if dsp_fp = 0 then max_int
             else
               max 1
                 (dev.Device.dsp_total / max 1 cfg.Config.n_cu / max 1 dsp_fp))))
  in
  let q_pe = iceil_div (max 0 (wg - n_pe_eff)) n_pe_eff in
  let l_cu =
    (float_of_int ii_wi *. float_of_int q_pe) +. float_of_int depth_pe
  in
  let dl = float_of_int dev.Device.wg_dispatch_overhead in
  let n_cu_eff =
    min cfg.Config.n_cu (max 1 (int_of_float (fceil (l_cu /. dl))))
  in
  let n_wi_kernel = Launch.n_work_items analysis.Analysis.launch in
  let n_wg = iceil_div n_wi_kernel wg in
  let rounds = fceil (float_of_int n_wg /. float_of_int n_cu_eff) in
  (* Eq. 7, with the dispatch-rate floor: when a work-group finishes
     faster than the scheduler can hand out the next one, ΔL bounds the
     round time. *)
  let l_comp_kernel =
    (Float.max l_cu dl *. rounds) +. (float_of_int cfg.Config.n_cu *. dl)
  in
  let pattern_counts = mean_pattern_counts ~options analysis dev in
  let l_mem_wi = mem_latency_wi dev pattern_counts in
  let txns_per_wi =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 pattern_counts
  in
  let n_wi_f = float_of_int n_wi_kernel in
  let t_bus_f = float_of_int dev.Device.dram.Dram.t_bus in
  let n_chans = dev.Device.dram.Dram.n_channels in
  let chan_demands =
    if n_chans > 1 then channel_demands ~options analysis dev ~n_wi_f else [||]
  in
  (* aggregate DRAM bandwidth floor: on a 1-channel device the shared
     data bus serves one coalesced transaction per t_bus regardless of
     how many CUs issue them, so CU replication cannot push a memory
     stream past it; on a multi-channel device the floor is the slowest
     channel's demanded service cycles (per-channel roofline over the
     buffer placement) *)
  let bus_total =
    if n_chans > 1 then Array.fold_left Float.max 0.0 chan_demands
    else txns_per_wi *. n_wi_f *. t_bus_f
  in
  let depth_f = float_of_int depth_pe in
  let kname = analysis.Analysis.cdfg.Cdfg.kernel_name in
  (* trace scaffolding, only evaluated when a trace is wanted *)
  let mem_notes () =
    let accesses_per_wi =
      let traces = analysis.Analysis.profile.Interp.wi_traces in
      let n = Array.length traces in
      if n = 0 then 0.0
      else
        float_of_int (Array.fold_left (fun a t -> a + List.length t) 0 traces)
        /. float_of_int n
    in
    if txns_per_wi > 0.0 then
      [
        ("txns_per_wi", txns_per_wi);
        ("coalescing_factor", accesses_per_wi /. txns_per_wi);
      ]
    else []
  in
  let pattern_leaves f =
    let table = pattern_latencies dev in
    List.filter_map
      (fun (p, c) ->
        if c = 0.0 then None
        else
          let l = List.assoc p table in
          Some
            (Trace.leaf ~eq:"Table-1" (Dram.pattern_name p) (f c l)
               ~notes:[ ("count_per_wi", c); ("avg_latency", l) ]))
      pattern_counts
  in
  (* Multi-channel roofline trace: the binding (slowest) channel carries
     the whole roofline term; every other demanded channel appears as a
     0-cycle leaf annotated with its demand and utilization, so the node
     recomposes exactly while still attributing per-channel pressure. *)
  let channel_roofline_node ~eq name ~extra_notes =
    let win = ref 0 in
    Array.iteri (fun i d -> if d > chan_demands.(!win) then win := i) chan_demands;
    let top = chan_demands.(!win) in
    let leaves =
      Array.to_list
        (Array.mapi
           (fun i d ->
             if d <= 0.0 then None
             else
               let util = if top > 0.0 then d /. top else 0.0 in
               Some
                 (Trace.leaf ~eq:"Eq.R1"
                    (Printf.sprintf "channel %d%s" i
                       (if i = !win then " (binding)" else ""))
                    (if i = !win then top else 0.0)
                    ~notes:[ ("demand_cycles", d); ("utilization", util) ]))
           chan_demands)
      |> List.filter_map Fun.id
    in
    Trace.node_at ~eq name top leaves
      ~notes:
        (("n_channels", float_of_int n_chans)
        :: ("queue_depth", float_of_int dev.Device.dram.Dram.queue_depth)
        :: extra_notes)
  in
  (* the roofline lost the max: record it as a 0-cycle sibling so the
     memory-bound path stays visible without disturbing conservation *)
  let channel_loser_leaf () =
    Trace.leaf ~eq:"Eq.R1" "channel roofline (not binding)" 0.0
      ~notes:
        [
          ("roofline_cycles", bus_total);
          ("n_channels", float_of_int n_chans);
        ]
  in
  let depth_trace () =
    let ctr = ref 0 in
    let body_t = region_trace env ~ctr analysis.Analysis.cdfg.Cdfg.body in
    (* ceil of Eq. 1's region latency; the fraction rounded up appears
       explicitly so the subtree still recomposes the integer depth *)
    let gap = depth_f -. body_t.Trace.cycles in
    Trace.node_at ~eq:"Eq.1" "PE depth (D_comp^PE)" depth_f
      [ body_t; Trace.leaf "schedule ceiling" gap ]
  in
  let cycles, trace =
    match cfg.Config.comm_mode with
    | Config.Barrier_mode ->
        (* Eq. 10, refined for CU replication: each work-group's memory
           phase is a latency-chained stream. Streams of the [n_cu_eff]
           concurrent work-groups overlap through bank parallelism when
           their bank footprints are disjoint; correlated footprints
           serialize, but ride each other's open rows (captured by
           classifying the interleaved stream). Bounded below by the
           shared-bus floor. *)
        let span_opt =
          if n_cu_eff > 1 && options.multi_cu_dram_replay then
            Some (round_mem_span ~options analysis dev ~k:n_cu_eff ~lanes:1)
          else None
        in
        let mem_total =
          match span_opt with
          | Some span -> span *. rounds
          | None ->
              l_mem_wi *. n_wi_f
              /. (if options.multi_cu_dram_replay then 1.0
                  else float_of_int n_cu_eff)
        in
        let mem_used =
          if options.bus_roofline then Float.max mem_total bus_total
          else mem_total
        in
        let cycles = mem_used +. l_comp_kernel in
        let trace =
          if not want_trace then None
          else
            let mem_node =
              if options.bus_roofline && bus_total > mem_total then
                if n_chans > 1 then
                  channel_roofline_node ~eq:"Eq.9" "memory (channel roofline)"
                    ~extra_notes:
                      (("latency_model_cycles", mem_total) :: mem_notes ())
                else
                  Trace.node_at ~eq:"Eq.9" "memory (DRAM bus roofline)" bus_total
                    (pattern_leaves (fun c _ -> c *. n_wi_f *. t_bus_f))
                    ~notes:
                      (("latency_model_cycles", mem_total)
                      :: ("t_bus", t_bus_f)
                      :: mem_notes ())
              else
                match span_opt with
                | Some span ->
                    Trace.leaf ~eq:"Eq.9" "memory (multi-CU DRAM replay)"
                      mem_total
                      ~notes:
                        (("round_span", span) :: ("rounds", rounds)
                        :: mem_notes ())
                | None ->
                    Trace.node_at ~eq:"Eq.9" "memory (counts × latencies)"
                      mem_total
                      (pattern_leaves (fun c l ->
                           c *. l *. n_wi_f
                           /.
                           if options.multi_cu_dram_replay then 1.0
                           else float_of_int n_cu_eff))
                      ~notes:(mem_notes ())
            in
            let wg_node =
              if l_cu >= dl then
                Trace.node ~eq:"Eq.5-6" "work-group"
                  [
                    Trace.leaf "PE fill (II^wi × ⌈(wg−N_PE^eff)/N_PE^eff⌉)"
                      (float_of_int ii_wi *. float_of_int q_pe)
                      ~notes:
                        [
                          ("ii_wi", float_of_int ii_wi);
                          ("queue", float_of_int q_pe);
                          ("n_pe_eff", float_of_int n_pe_eff);
                        ];
                    depth_trace ();
                  ]
              else
                Trace.leaf "dispatch-rate floor (ΔL)" dl
                  ~notes:[ ("work_group_cycles", l_cu) ]
            in
            let rounds_node =
              let t = Trace.scale rounds wg_node in
              {
                t with
                Trace.name = "work-group rounds";
                notes = ("rounds", rounds) :: t.Trace.notes;
              }
            in
            let comp_node =
              Trace.node ~eq:"Eq.7" "compute"
                [
                  rounds_node;
                  Trace.leaf "CU dispatch overhead (N_CU × ΔL)"
                    (float_of_int cfg.Config.n_cu *. dl)
                    ~notes:
                      [ ("n_cu", float_of_int cfg.Config.n_cu); ("dl", dl) ];
                ]
            in
            let children =
              if
                n_chans > 1 && options.bus_roofline
                && not (bus_total > mem_total)
              then [ mem_node; channel_loser_leaf (); comp_node ]
              else [ mem_node; comp_node ]
            in
            Some
              (Trace.node ~eq:"Eq.10"
                 (Printf.sprintf "kernel %s (barrier mode)" kname)
                 children)
        in
        (cycles, trace)
    | Config.Pipeline_mode ->
        (* Eq. 11–12, with the multi-CU DRAM reality: the round takes as
           long as the slower of the compute pipeline (Eq. 11's term) and
           the concurrent memory streams draining through the calibrated
           DRAM state machine (PE lanes overlap within a work-group, CUs
           contend across). *)
        let ii = Float.max l_mem_wi (float_of_int ii_wi) in
        let fill = ii *. float_of_int q_pe in
        let eq11_round = Float.max (fill +. depth_f) dl in
        let span_opt =
          if options.multi_cu_dram_replay && n_cu_eff > 1 then
            Some (round_mem_span ~options analysis dev ~k:n_cu_eff ~lanes:n_pe_eff)
          else None
        in
        let round =
          match span_opt with
          | Some span -> Float.max eq11_round (span +. depth_f)
          | None -> eq11_round
        in
        let eq11 = round *. rounds in
        let bus_bound = bus_total +. (rounds *. (depth_f +. dl)) in
        let cycles =
          if options.bus_roofline then Float.max eq11 bus_bound else eq11
        in
        let trace =
          if not want_trace then None
          else
            let round_node =
              match span_opt with
              | Some span when span +. depth_f > eq11_round ->
                  Trace.node ~eq:"Eq.11" "round (multi-CU DRAM replay)"
                    [
                      Trace.leaf "concurrent memory streams span" span
                        ~notes:
                          (("n_cu_eff", float_of_int n_cu_eff) :: mem_notes ());
                      depth_trace ();
                    ]
              | _ ->
                  if fill +. depth_f >= dl then
                    let fill_node =
                      if l_mem_wi > float_of_int ii_wi then
                        Trace.node_at ~eq:"Eq.11"
                          "memory-bound fill (L_mem^wi × q)" fill
                          (pattern_leaves (fun c l ->
                               c *. l *. float_of_int q_pe))
                          ~notes:
                            (("l_mem_wi", l_mem_wi)
                            :: ("ii_wi", float_of_int ii_wi)
                            :: ("queue", float_of_int q_pe)
                            :: mem_notes ())
                      else
                        Trace.leaf ~eq:"Eq.11" "compute-bound fill (II^wi × q)"
                          fill
                          ~notes:
                            [
                              ("ii_wi", float_of_int ii_wi);
                              ("l_mem_wi", l_mem_wi);
                              ("queue", float_of_int q_pe);
                            ]
                    in
                    Trace.node ~eq:"Eq.11" "round" [ fill_node; depth_trace () ]
                  else
                    Trace.leaf "dispatch-rate floor (ΔL)" dl
                      ~notes:[ ("round_cycles", fill +. depth_f) ]
            in
            if options.bus_roofline && bus_bound > eq11 then
              let transfers_node =
                if n_chans > 1 then
                  channel_roofline_node ~eq:"Eq.9" "channel roofline transfers"
                    ~extra_notes:(("pipeline_cycles", eq11) :: mem_notes ())
                else
                  Trace.node_at ~eq:"Eq.9" "DRAM bus transfers" bus_total
                    (pattern_leaves (fun c _ -> c *. n_wi_f *. t_bus_f))
                    ~notes:(("pipeline_cycles", eq11) :: mem_notes ())
              in
              Some
                (Trace.node ~eq:"Eq.12"
                   (Printf.sprintf "kernel %s (pipeline mode, bus roofline)"
                      kname)
                   [
                     transfers_node;
                     Trace.leaf "per-round drain + dispatch (rounds × (D + ΔL))"
                       (rounds *. (depth_f +. dl))
                       ~notes:
                         [ ("rounds", rounds); ("depth_pe", depth_f); ("dl", dl) ];
                   ])
            else
              let rounds_node =
                let t = Trace.scale rounds round_node in
                {
                  t with
                  Trace.name = "rounds";
                  notes = ("rounds", rounds) :: t.Trace.notes;
                }
              in
              let children =
                if n_chans > 1 && options.bus_roofline then
                  [ rounds_node; channel_loser_leaf () ]
                else [ rounds_node ]
              in
              Some
                (Trace.node ~eq:"Eq.11-12"
                   (Printf.sprintf "kernel %s (pipeline mode)" kname)
                   children
                   ~notes:
                     (if options.bus_roofline then
                        [ ("bus_roofline_cycles", bus_bound) ]
                      else []))
        in
        (cycles, trace)
  in
  ( {
      ii_wi;
      depth_pe;
      rec_mii;
      res_mii;
      l_pe;
      n_pe_eff;
      l_cu;
      n_cu_eff;
      l_comp_kernel;
      l_mem_wi;
      pattern_counts;
      dsp_footprint = dsp_fp;
      cycles;
      seconds = Device.cycles_to_seconds dev cycles;
    },
    trace )

let estimate ?(options = default_options) dev analysis cfg =
  fst (compute ~options ~want_trace:false dev analysis cfg)

(* The trace is pure per (kernel, device, design point, options), like
   the pattern-count tables above: memoize the built tree so a warm
   [explain] costs a hash lookup, not a region traversal — the serve
   layer and repeated CLI runs replay the same design points. The
   identity witness invalidates entries left by a different (equal-key)
   analysis object. *)
let trace_cache :
    ( string * string * Config.t * options,
      Analysis.t * (breakdown * Trace.t) )
    Memo.t =
  Memo.create ()

let explain ?(options = default_options) dev analysis cfg =
  let key =
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      dev.Device.name,
      cfg,
      options )
  in
  snd
    (Memo.find_or_add trace_cache key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () ->
         match compute ~options ~want_trace:true dev analysis cfg with
         | b, Some t -> (analysis, (b, t))
         | _, None -> assert false))

let cycles dev analysis cfg = (estimate dev analysis cfg).cycles

let estimate_result ?options (dev : Device.t) (analysis : Analysis.t)
    (cfg : Config.t) =
  let module Diag = Flexcl_util.Diag in
  match Device.validate dev with
  | p :: _ -> Error (Diag.error Diag.Device_invalid "device %s: %s" dev.Device.name p)
  | [] -> (
      match Config.validate cfg with
      | p :: _ ->
          Error
            (Diag.error Diag.Config_invalid "design point %s: %s"
               (Config.to_string cfg) p)
      | [] ->
          if cfg.Config.wg_size <> Launch.wg_size analysis.Analysis.launch then
            Error
              (Diag.error Diag.Config_invalid
                 "wg_size %d does not match the analysis launch (%d); re-analyze \
                  with Analysis.with_wg_size"
                 cfg.Config.wg_size
                 (Launch.wg_size analysis.Analysis.launch))
          else (
            match estimate ?options dev analysis cfg with
            | b -> Ok b
            | exception (Out_of_memory as e) -> raise e
            | exception exn -> Error (Analysis.diag_of_exn exn)))

let feasible (dev : Device.t) (analysis : Analysis.t) (cfg : Config.t) =
  let env = make_env dev analysis cfg in
  let dsp_fp = dsp_footprint_of env in
  let bram_bytes = dev.Device.bram_blocks * 36 * 1024 / 8 in
  cfg.Config.n_cu >= 1
  && cfg.Config.n_cu <= dev.Device.max_cu
  && cfg.Config.n_pe >= 1
  && cfg.Config.n_pe <= cfg.Config.wg_size
  && dsp_fp * cfg.Config.n_pe * cfg.Config.n_cu <= dev.Device.dsp_total
  && local_bytes analysis * cfg.Config.n_cu <= bram_bytes

(* ------------------------------------------------------------------ *)
(* Cheap cycles lower bound for bound-based pruning (DSE engine).

   [lower_bound dev a cfg <= (estimate dev a cfg).cycles] holds (up to
   float rounding) for the default options. The bound combines

   - the dependence-only critical path of the kernel body (no list
     scheduling, no modulo scheduling) as a stand-in for D_comp^PE,
   - the shared-bus roofline  txns/WI x N_wi x t_bus  (the L_mem^wi-based
     floor of Eq. 10/11),
   - the dispatch-rate floor  dL x ceil(N_wg / N_CU),

   all of which underestimate the corresponding terms of [estimate]:
   critical path <= scheduled latency, N_PE^eff <= N_PE, and
   N_CU^eff <= N_CU make every factor a lower bound. *)

(* Structural critical path of a region: like [region_latency] but with
   each block at its dependence-only lower bound, pipelined loops at
   II = 1, and unrolled iterations at their single-copy cost. Fractional
   profiled trip counts below 1 make Eq. 1's pipelined-loop term shrink
   below one iteration, so those loops are bounded by 0. *)
let rec region_crit_path ~lat ~trip (r : Cdfg.region) : float =
  let block d = float_of_int (Listsched.critical_path d ~lat) in
  match r with
  | Cdfg.Straight d -> block d
  | Cdfg.Seq rs -> seq_latency (region_crit_path ~lat ~trip) rs
  | Cdfg.Branch { cond; then_; else_ } ->
      block cond
      +. Float.max
           (region_crit_path ~lat ~trip then_)
           (region_crit_path ~lat ~trip else_)
  | Cdfg.Loop { info; header; body } ->
      let n = trip info in
      if n <= 0.0 then 0.0
      else
        let iter = block header +. region_crit_path ~lat ~trip body in
        if info.Cdfg.attrs.Ast.pipeline then
          if n >= 1.0 then (n -. 1.0) +. iter else 0.0
        else
          let u =
            match info.Cdfg.attrs.Ast.unroll with
            | Some u -> float_of_int (min u (max 1 (int_of_float n)))
            | None -> 1.0
          in
          if u <= 1.0 then n *. iter else fceil (n /. u) *. iter

let crit_path_cache : (string * int * string, Analysis.t * float) Memo.t =
  Memo.create ()

let kernel_crit_path (dev : Device.t) (analysis : Analysis.t) =
  let key =
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      Launch.wg_size analysis.Analysis.launch,
      dev.Device.name )
  in
  snd
    (Memo.find_or_add crit_path_cache key
       ~valid:(fun (a, _) -> a == analysis)
       (fun () ->
         let lat = Device.op_latency dev in
         let trip = Analysis.trip analysis in
         (analysis, region_crit_path ~lat ~trip analysis.Analysis.cdfg.Cdfg.body)))

let lower_bound (dev : Device.t) (analysis : Analysis.t) (cfg : Config.t) =
  let analysis =
    if Launch.wg_size analysis.Analysis.launch = cfg.Config.wg_size then analysis
    else Analysis.with_wg_size analysis cfg.Config.wg_size
  in
  let depth_lb = kernel_crit_path dev analysis in
  let pattern_counts = mean_pattern_counts analysis dev in
  let l_mem_wi = mem_latency_wi dev pattern_counts in
  let txns_per_wi =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 pattern_counts
  in
  let n_wi = Launch.n_work_items analysis.Analysis.launch in
  let wg = cfg.Config.wg_size in
  let n_wg = iceil_div n_wi wg in
  let dl = float_of_int dev.Device.wg_dispatch_overhead in
  let rounds_lb = fceil (float_of_int n_wg /. float_of_int cfg.Config.n_cu) in
  let bus_total =
    let raw =
      txns_per_wi *. float_of_int n_wi *. float_of_int dev.Device.dram.Dram.t_bus
    in
    (* multi-channel: a placement-independent floor — at least one
       channel carries ≥ 1/n_channels of the transaction stream, and the
       per-channel roofline charges at least t_bus per transaction — so
       the bound stays sound for every buffer→channel placement the DSE
       may try (and below the roofline the estimate actually uses) *)
    let n_chans = dev.Device.dram.Dram.n_channels in
    if n_chans > 1 then raw /. float_of_int n_chans else raw
  in
  match cfg.Config.comm_mode with
  | Config.Barrier_mode ->
      (* Eq. 10 >= bus floor + dispatch-floored compute tail *)
      bus_total
      +. (Float.max depth_lb dl *. rounds_lb)
      +. (float_of_int cfg.Config.n_cu *. dl)
  | Config.Pipeline_mode ->
      (* Eq. 11/12 >= max(per-round pipeline floor, bus floor) *)
      let q_lb =
        float_of_int (iceil_div (max 0 (wg - cfg.Config.n_pe)) (max 1 cfg.Config.n_pe))
      in
      let ii_lb =
        Float.max l_mem_wi
          (if cfg.Config.wi_pipeline then 1.0 else Float.max 1.0 depth_lb)
      in
      let eq11_lb = Float.max ((ii_lb *. q_lb) +. depth_lb) dl *. rounds_lb in
      let bus_lb = bus_total +. (rounds_lb *. (depth_lb +. dl)) in
      Float.max eq11_lb bus_lb

(* ------------------------------------------------------------------ *)
(* Staged partial evaluation for DSE sweeps (DESIGN.md §11).

   A sweep re-evaluates one (device, analysis) pair at thousands of
   design points, but most of [compute]'s work does not depend on the
   knobs being swept:

   - stage 0 (per specialize call): Table-1 pattern counts and the Eq. 9
     per-work-item memory latency, the shared-bus roofline total, the
     work-item recurrence MII, local-memory port demands, the DSP
     footprint of one PE, and the dependence-only critical path the
     lower bound uses — all fixed by (device, analysis, options);
   - stage 1 (per distinct DSP share): the per-block list schedules,
     D_comp^PE, ResMII and the SMS-refined pipelined II. The PE/CU knobs
     reach the scheduler only through [dsp_share_of], which collapses the
     whole knob grid onto a handful of distinct shares, each staged once
     in a domain-safe [Memo].

   [specialized_estimate] then finishes Eq. 5–12 with ~50 float
   operations per point, transcribed verbatim from [compute] (same
   expressions, same association order), so its breakdown is bitwise
   equal to [estimate]'s on every field — the property
   [test/test_specialize.ml] proves exhaustively. Keep the two tails in
   sync: any arithmetic change to [compute] must be mirrored here (the
   differential suite fails loudly if not).

   A design point whose [wg_size] differs from the specialized launch
   falls back to the full [estimate] (which re-analyzes), preserving
   bitwise equality by construction. *)

type stage_pe = {
  st_depth_pe : int;       (* D_comp^PE at this DSP share *)
  st_res_mii : int;        (* Eq. 3 *)
  st_ii_pipelined : int;   (* SMS-refined II_comp^wi (Eq. 2–4) *)
}

type specialized = {
  sp_dev : Device.t;
  sp_analysis : Analysis.t;
  sp_options : options;
  sp_wg : int;                     (* the specialized launch's wg size *)
  sp_rec_mii : int;
  sp_reads : float;                (* local-memory port demands per WI *)
  sp_writes : float;
  sp_dsp_fp : int;
  sp_n_wi : int;
  sp_pattern_counts : (Dram.pattern * float) list;
  sp_l_mem_wi : float;
  sp_bus_total : float;            (* txns/WI ⋅ N_wi ⋅ t_bus *)
  (* lower-bound invariants (always default options, like [lower_bound]) *)
  sp_crit_path : float;
  sp_lb_l_mem_wi : float;
  sp_lb_bus_total : float;
  sp_stages : (int, stage_pe) Memo.t;
}

let specialize ?(options = default_options) (dev : Device.t)
    (analysis : Analysis.t) =
  let env0 = env_with_share dev analysis ~dsp_share:8 in
  let counts = weighted_counts env0 in
  let pattern_counts = mean_pattern_counts ~options analysis dev in
  let l_mem_wi = mem_latency_wi dev pattern_counts in
  let txns_per_wi =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 pattern_counts
  in
  let n_wi = Launch.n_work_items analysis.Analysis.launch in
  let n_wi_f = float_of_int n_wi in
  let t_bus_f = float_of_int dev.Device.dram.Dram.t_bus in
  let n_chans = dev.Device.dram.Dram.n_channels in
  let lb_pattern_counts = mean_pattern_counts analysis dev in
  let lb_txns_per_wi =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.0 lb_pattern_counts
  in
  {
    sp_dev = dev;
    sp_analysis = analysis;
    sp_options = options;
    sp_wg = Launch.wg_size analysis.Analysis.launch;
    sp_rec_mii = work_item_rec_mii env0;
    sp_reads = count_of counts (fun op -> op = Opcode.Load Opcode.Local_mem);
    sp_writes = count_of counts (fun op -> op = Opcode.Store Opcode.Local_mem);
    sp_dsp_fp = dsp_footprint_of env0;
    sp_n_wi = n_wi;
    sp_pattern_counts = pattern_counts;
    sp_l_mem_wi = l_mem_wi;
    sp_bus_total =
      (* same expression as [compute]'s [bus_total], association order
         and all, so the staged tail stays bitwise equal *)
      (if n_chans > 1 then
         Array.fold_left Float.max 0.0 (channel_demands ~options analysis dev ~n_wi_f)
       else txns_per_wi *. n_wi_f *. t_bus_f);
    sp_crit_path = kernel_crit_path dev analysis;
    sp_lb_l_mem_wi = mem_latency_wi dev lb_pattern_counts;
    sp_lb_bus_total =
      (let raw =
         lb_txns_per_wi *. float_of_int n_wi
         *. float_of_int dev.Device.dram.Dram.t_bus
       in
       (* placement-independent floor: at least one channel carries
          ≥ 1/n_channels of the stream — sound for every placement,
          which keeps cross-placement pruning sound *)
       if n_chans > 1 then raw /. float_of_int n_chans else raw);
    sp_stages = Memo.create ~size:8 ();
  }

let stage_for (sp : specialized) share =
  Memo.find_or_add sp.sp_stages share (fun () ->
      let env = env_with_share sp.sp_dev sp.sp_analysis ~dsp_share:share in
      let counts = weighted_counts env in
      let depth_pe =
        int_of_float
          (fceil (region_latency env sp.sp_analysis.Analysis.cdfg.Cdfg.body))
      in
      let res_mii = work_item_res_mii env counts in
      let mii = max 1 (max sp.sp_rec_mii res_mii) in
      { st_depth_pe = depth_pe; st_res_mii = res_mii;
        st_ii_pipelined = sms_refine env ~mii })

let specialized_options (sp : specialized) = sp.sp_options
let specialized_analysis (sp : specialized) = sp.sp_analysis

let specialized_estimate (sp : specialized) (cfg : Config.t) =
  if cfg.Config.wg_size <> sp.sp_wg then
    (* wrong work-group size for this specialization: take the direct
       path, which re-analyzes — bitwise equality holds by construction *)
    estimate ~options:sp.sp_options sp.sp_dev sp.sp_analysis cfg
  else begin
    let options = sp.sp_options in
    let dev = sp.sp_dev in
    let analysis = sp.sp_analysis in
    let cfg =
      if options.vector_width > 1 then
        { cfg with Config.n_pe = cfg.Config.n_pe * options.vector_width }
      else cfg
    in
    let st = stage_for sp (dsp_share_of dev cfg) in
    let depth_pe = st.st_depth_pe in
    let rec_mii = sp.sp_rec_mii in
    let res_mii = st.st_res_mii in
    let ii_wi =
      if cfg.Config.wi_pipeline then st.st_ii_pipelined else max 1 depth_pe
    in
    let wg = cfg.Config.wg_size in
    let l_pe =
      (float_of_int ii_wi *. float_of_int (wg - 1)) +. float_of_int depth_pe
    in
    let reads = sp.sp_reads in
    let writes = sp.sp_writes in
    let dsp_fp = sp.sp_dsp_fp in
    let cap demand supply =
      if demand <= 0.0 then max_int
      else max 1 (int_of_float (float_of_int supply *. float_of_int ii_wi /. demand))
    in
    let n_pe_eff =
      min cfg.Config.n_pe
        (min
           (cap reads (Device.local_read_ports dev))
           (min
              (cap writes (Device.local_write_ports dev))
              (if dsp_fp = 0 then max_int
               else
                 max 1
                   (dev.Device.dsp_total / max 1 cfg.Config.n_cu / max 1 dsp_fp))))
    in
    let q_pe = iceil_div (max 0 (wg - n_pe_eff)) n_pe_eff in
    let l_cu =
      (float_of_int ii_wi *. float_of_int q_pe) +. float_of_int depth_pe
    in
    let dl = float_of_int dev.Device.wg_dispatch_overhead in
    let n_cu_eff =
      min cfg.Config.n_cu (max 1 (int_of_float (fceil (l_cu /. dl))))
    in
    let n_wg = iceil_div sp.sp_n_wi wg in
    let rounds = fceil (float_of_int n_wg /. float_of_int n_cu_eff) in
    let l_comp_kernel =
      (Float.max l_cu dl *. rounds) +. (float_of_int cfg.Config.n_cu *. dl)
    in
    let pattern_counts = sp.sp_pattern_counts in
    let l_mem_wi = sp.sp_l_mem_wi in
    let n_wi_f = float_of_int sp.sp_n_wi in
    let bus_total = sp.sp_bus_total in
    let depth_f = float_of_int depth_pe in
    let cycles =
      match cfg.Config.comm_mode with
      | Config.Barrier_mode ->
          let span_opt =
            if n_cu_eff > 1 && options.multi_cu_dram_replay then
              Some (round_mem_span ~options analysis dev ~k:n_cu_eff ~lanes:1)
            else None
          in
          let mem_total =
            match span_opt with
            | Some span -> span *. rounds
            | None ->
                l_mem_wi *. n_wi_f
                /. (if options.multi_cu_dram_replay then 1.0
                    else float_of_int n_cu_eff)
          in
          let mem_used =
            if options.bus_roofline then Float.max mem_total bus_total
            else mem_total
          in
          mem_used +. l_comp_kernel
      | Config.Pipeline_mode ->
          let ii = Float.max l_mem_wi (float_of_int ii_wi) in
          let fill = ii *. float_of_int q_pe in
          let eq11_round = Float.max (fill +. depth_f) dl in
          let span_opt =
            if options.multi_cu_dram_replay && n_cu_eff > 1 then
              Some
                (round_mem_span ~options analysis dev ~k:n_cu_eff
                   ~lanes:n_pe_eff)
            else None
          in
          let round =
            match span_opt with
            | Some span -> Float.max eq11_round (span +. depth_f)
            | None -> eq11_round
          in
          let eq11 = round *. rounds in
          let bus_bound = bus_total +. (rounds *. (depth_f +. dl)) in
          if options.bus_roofline then Float.max eq11 bus_bound else eq11
    in
    {
      ii_wi;
      depth_pe;
      rec_mii;
      res_mii;
      l_pe;
      n_pe_eff;
      l_cu;
      n_cu_eff;
      l_comp_kernel;
      l_mem_wi;
      pattern_counts;
      dsp_footprint = dsp_fp;
      cycles;
      seconds = Device.cycles_to_seconds dev cycles;
    }
  end

let specialized_cycles sp cfg = (specialized_estimate sp cfg).cycles

let specialized_lower_bound (sp : specialized) (cfg : Config.t) =
  if cfg.Config.wg_size <> sp.sp_wg then
    lower_bound sp.sp_dev sp.sp_analysis cfg
  else begin
    let dev = sp.sp_dev in
    let depth_lb = sp.sp_crit_path in
    let l_mem_wi = sp.sp_lb_l_mem_wi in
    let wg = cfg.Config.wg_size in
    let n_wg = iceil_div sp.sp_n_wi wg in
    let dl = float_of_int dev.Device.wg_dispatch_overhead in
    let rounds_lb =
      fceil (float_of_int n_wg /. float_of_int cfg.Config.n_cu)
    in
    let bus_total = sp.sp_lb_bus_total in
    match cfg.Config.comm_mode with
    | Config.Barrier_mode ->
        bus_total
        +. (Float.max depth_lb dl *. rounds_lb)
        +. (float_of_int cfg.Config.n_cu *. dl)
    | Config.Pipeline_mode ->
        let q_lb =
          float_of_int
            (iceil_div (max 0 (wg - cfg.Config.n_pe)) (max 1 cfg.Config.n_pe))
        in
        let ii_lb =
          Float.max l_mem_wi
            (if cfg.Config.wi_pipeline then 1.0 else Float.max 1.0 depth_lb)
        in
        let eq11_lb = Float.max ((ii_lb *. q_lb) +. depth_lb) dl *. rounds_lb in
        let bus_lb = bus_total +. (rounds_lb *. (depth_lb +. dl)) in
        Float.max eq11_lb bus_lb
  end

let bottleneck (b : breakdown) =
  if b.l_mem_wi > float_of_int b.ii_wi && b.l_mem_wi > 2.0 then "global memory"
  else if b.rec_mii >= b.res_mii && b.rec_mii > 1 then "recurrence"
  else if b.res_mii > 1 then
    if b.n_pe_eff = 1 && b.dsp_footprint > 0 then "DSP" else "local-memory ports"
  else if
    (* dispatch slower than the work-group itself *)
    b.l_cu < float_of_int b.ii_wi *. 2.0 || b.l_cu <= 2.0 *. 24.0
  then "scheduling overhead"
  else "compute depth"
