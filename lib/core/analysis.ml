open Flexcl_opencl
open Flexcl_ir
module Interp = Flexcl_interp.Interp
module Dram = Flexcl_dram.Dram
module Diag = Flexcl_util.Diag

type t = {
  kernel : Ast.kernel;
  sema : Sema.info;
  launch : Launch.t;
  cdfg : Cdfg.t;
  profile : Interp.profile;
  wi_recurrences : Depend.recurrence list;
  loop_recurrences : (int * Depend.recurrence list) list;
  layout : Dram.layout;
}

let buffer_layout (kernel : Ast.kernel) (launch : Launch.t) =
  let sized =
    List.filter_map
      (fun (p : Ast.param) ->
        match Launch.find_arg launch p.Ast.p_name with
        | Some (Launch.Buffer { length; _ }) ->
            let bits =
              match Types.elem p.Ast.p_type with
              | Types.Scalar s -> Types.scalar_bits s
              | _ -> 32
            in
            Some (p.Ast.p_name, length * (bits / 8))
        | Some (Launch.Scalar _) | None -> None)
      kernel.Ast.k_params
  in
  Dram.layout ~placement:launch.Launch.placement sized

let analyze ?(max_work_groups = 3) ?max_steps (kernel : Ast.kernel)
    (launch : Launch.t) =
  let sema = Sema.analyze kernel in
  let cdfg = Lower.lower kernel sema launch in
  let profile = Interp.run ~max_work_groups ?max_steps kernel sema launch in
  {
    kernel;
    sema;
    launch;
    cdfg;
    profile;
    wi_recurrences = Depend.work_item_recurrences cdfg launch;
    loop_recurrences = Depend.loop_recurrences cdfg launch;
    layout = buffer_layout kernel launch;
  }

let of_source ?max_work_groups ?max_steps src launch =
  analyze ?max_work_groups ?max_steps (Parser.parse_kernel src) launch

(* Placement relocates buffers in the DRAM address space and nothing
   else: sema, the CDFG, the interpreter profile and the recurrences are
   all placement-independent, so re-placing costs one [Dram.layout]. *)
let with_placement t placement =
  let launch = Launch.with_placement t.launch placement in
  { t with launch; layout = buffer_layout t.kernel launch }

(* ------------------------------------------------------------------ *)
(* Total pipeline: every deep-layer exception becomes a diagnostic. *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* [Invalid_argument]/[Failure] payloads follow the "Module.fn: reason"
   convention throughout the code base; the prefix names the stage. *)
let classify_message msg =
  if starts_with "Launch." msg || starts_with "Analysis." msg then
    Diag.Launch_invalid
  else if starts_with "Pipeline." msg then Diag.Config_invalid
  else if starts_with "Lower." msg then Diag.Lower_error
  else if
    starts_with "Sms" msg || starts_with "Listsched" msg
    || starts_with "Graph." msg
  then Diag.Sched_error
  else if starts_with "Explore." msg then Diag.Empty_design_space
  else if starts_with "Types." msg then Diag.Sema_error
  else if starts_with "Dram." msg || starts_with "Model." msg then
    Diag.Model_error
  else Diag.Internal_error

let diag_of_exn = function
  | Lexer.Error (msg, line, col) ->
      Diag.error ~span:{ Diag.line; col } Diag.Lex_error "%s" msg
  | Parser.Error (msg, line, col) ->
      Diag.error ~span:{ Diag.line; col } Diag.Parse_error "%s" msg
  | Sema.Error msg -> Diag.error Diag.Sema_error "%s" msg
  | Sema.Error_at (msg, line, col) ->
      Diag.error ~span:{ Diag.line; col } Diag.Sema_error "%s" msg
  | Interp.Runtime_error msg -> Diag.error Diag.Profile_error "profiling failed: %s" msg
  | Interp.Profile_budget_exceeded budget ->
      Diag.error Diag.Profile_budget_exceeded
        "profiling exceeded its %d-step budget (non-terminating kernel?)" budget
  | Invalid_argument msg | Failure msg ->
      Diag.error (classify_message msg) "%s" msg
  | Division_by_zero -> Diag.error Diag.Internal_error "division by zero"
  | Stack_overflow ->
      Diag.error Diag.Internal_error "stack overflow (input too deeply nested?)"
  | Not_found -> Diag.error Diag.Internal_error "internal lookup failed"
  | Assert_failure (file, line, col) ->
      Diag.error Diag.Internal_error "assertion failed at %s:%d:%d" file line col
  | exn -> Diag.error Diag.Internal_error "%s" (Printexc.to_string exn)

let analyze_result ?max_work_groups ?max_steps kernel launch =
  match Launch.validate launch with
  | _ :: _ as problems ->
      Error (List.map (fun p -> Diag.error Diag.Launch_invalid "%s" p) problems)
  | [] -> (
      match analyze ?max_work_groups ?max_steps kernel launch with
      | t -> Ok t
      | exception (Out_of_memory as e) -> raise e
      | exception exn -> Error [ diag_of_exn exn ])

let of_source_result ?max_work_groups ?max_steps ?file src launch =
  let tag diags =
    match file with
    | Some f -> List.map (Diag.with_file f) diags
    | None -> diags
  in
  match Parser.parse_kernel_result src with
  | Error diags -> Error (tag diags)
  | Ok kernel ->
      Result.map_error tag (analyze_result ?max_work_groups ?max_steps kernel launch)

let pipe_accesses t = t.profile.Interp.pipe_counts

let trip t (info : Cdfg.loop_info) =
  match info.Cdfg.static_trip with
  | Some n -> float_of_int n
  | None -> Interp.trip_of t.profile info.Cdfg.loop_id

let divisors n =
  List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let with_wg_size t wg_size =
  let g = t.launch.Launch.global in
  let candidates =
    List.concat_map
      (fun lx ->
        if wg_size mod lx <> 0 then []
        else
          List.filter_map
            (fun ly ->
              let rest = wg_size / lx in
              if rest mod ly <> 0 then None
              else
                let lz = rest / ly in
                if g.Launch.z mod lz = 0 then Some (lx, ly, lz) else None)
            (divisors (min g.Launch.y (wg_size / lx))))
      (divisors (min g.Launch.x wg_size))
  in
  (* prefer wide-x shapes, matching how the paper's kernels are launched *)
  match List.sort (fun (a, _, _) (b, _, _) -> compare b a) candidates with
  | [] ->
      invalid_arg
        (Printf.sprintf "Analysis.with_wg_size: %d does not tile the NDRange"
           wg_size)
  | (lx, ly, lz) :: _ ->
      let launch =
        Launch.with_placement
          (Launch.make ~global:g
             ~local:{ Launch.x = lx; y = ly; z = lz }
             ~args:t.launch.Launch.args)
          t.launch.Launch.placement
      in
      analyze t.kernel launch
