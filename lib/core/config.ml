type comm_mode = Barrier_mode | Pipeline_mode

type t = {
  wg_size : int;
  n_pe : int;
  n_cu : int;
  wi_pipeline : bool;
  comm_mode : comm_mode;
}

let default =
  { wg_size = 64; n_pe = 1; n_cu = 1; wi_pipeline = false; comm_mode = Barrier_mode }

let validate t =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.wg_size <= 0 then add "wg_size = %d is not positive" t.wg_size;
  if t.n_pe <= 0 then add "n_pe = %d is not positive" t.n_pe;
  if t.n_cu <= 0 then add "n_cu = %d is not positive" t.n_cu;
  if t.n_pe > 0 && t.wg_size > 0 && t.n_pe > t.wg_size then
    add "n_pe = %d exceeds wg_size = %d" t.n_pe t.wg_size;
  List.rev !problems

let to_string t =
  Printf.sprintf "wg%d pe%d cu%d %s %s" t.wg_size t.n_pe t.n_cu
    (if t.wi_pipeline then "pipe" else "nopipe")
    (match t.comm_mode with Barrier_mode -> "barrier" | Pipeline_mode -> "pipeline")

let compare = Stdlib.compare
