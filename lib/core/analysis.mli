open Flexcl_opencl
open Flexcl_ir

(** Kernel analysis (§3.2): parse → type-check → lower to the simplified
    CDFG → dynamically profile a few work-groups. The result is shared by
    the analytical model, the ground-truth simulator and the baseline
    estimator, and is independent of the PE/CU/pipeline knobs (only the
    work-group size changes it, through the launch). *)

type t = {
  kernel : Ast.kernel;
  sema : Sema.info;
  launch : Launch.t;
  cdfg : Cdfg.t;
  profile : Flexcl_interp.Interp.profile;
  wi_recurrences : Depend.recurrence list;
  loop_recurrences : (int * Depend.recurrence list) list;
  layout : Flexcl_dram.Dram.layout;
      (** global buffers placed in DRAM in declaration order. *)
}

val analyze : ?max_work_groups:int -> ?max_steps:int -> Ast.kernel -> Launch.t -> t
(** Raises {!Sema.Error} on ill-typed kernels,
    {!Flexcl_interp.Interp.Runtime_error} on faulting profiling runs and
    {!Flexcl_interp.Interp.Profile_budget_exceeded} when profiling
    exhausts its [max_steps] fuel (default
    {!Flexcl_interp.Interp.default_max_steps}). *)

val of_source : ?max_work_groups:int -> ?max_steps:int -> string -> Launch.t -> t
(** Parse a single-kernel source and analyze it. *)

val analyze_result :
  ?max_work_groups:int ->
  ?max_steps:int ->
  Ast.kernel ->
  Launch.t ->
  (t, Flexcl_util.Diag.t list) result
(** Total pipeline entry point: validates the launch, then runs
    {!analyze} with every stage exception (sema, lowering, profiling,
    fuel exhaustion, internal invariants) converted to a structured
    diagnostic. Never raises (except [Out_of_memory], which is not
    maskable meaningfully). *)

val of_source_result :
  ?max_work_groups:int ->
  ?max_steps:int ->
  ?file:string ->
  string ->
  Launch.t ->
  (t, Flexcl_util.Diag.t list) result
(** {!analyze_result} from source text. Parsing uses error recovery, so
    a syntactically broken kernel reports {e all} its syntax errors
    (each with line/column), not just the first. [file] tags the
    diagnostics for rendering. *)

val diag_of_exn : exn -> Flexcl_util.Diag.t
(** The exception-to-diagnostic mapping used by the [_result] API:
    frontend errors keep their source spans, [Invalid_argument]/
    [Failure] payloads are classified by their ["Module.fn:"] prefix,
    anything unrecognized becomes [Internal_error]. *)

val pipe_accesses : t -> (string * (float * float)) list
(** Profiled pipe traffic: per [pipe] parameter, mean (reads, writes)
    per work-item. The graph layer derives producer/consumer burst
    rates — and channel-depth stall terms — from these counts. *)

val trip : t -> Cdfg.loop_info -> float
(** Trip count of a loop: static when known, otherwise the profiled
    average; 0 when the loop never executes. *)

val with_wg_size : t -> int -> t
(** Re-analyze with a different work-group size (keeps total NDRange and
    arguments). The new size must divide the total 1-D work-item count;
    multi-dimensional launches redistribute the local size along x. *)

val with_placement : t -> (string * int) list -> t
(** The same analysis with a different buffer→channel placement. Cheap
    and exact: placement relocates buffers in the DRAM address space and
    nothing else, so only [layout] (and the launch) changes — sema, the
    CDFG, the profile and the recurrences are shared. The placement is
    not validated here; see {!Flexcl_ir.Launch.with_placement_result}
    and {!Flexcl_dram.Dram.placement_error}. *)
