(** A design point: the OpenCL-to-FPGA optimization knobs FlexCL sweeps
    (§4.1 — work-group size, work-item pipelining, PE and CU parallelism,
    and the data-communication mode). *)

type comm_mode = Barrier_mode | Pipeline_mode

type t = {
  wg_size : int;       (** work-items per work-group ([N_wi^wg]). *)
  n_pe : int;          (** PE replication per compute unit ([P]). *)
  n_cu : int;          (** compute-unit replication ([C]). *)
  wi_pipeline : bool;  (** work-item pipelining inside a PE. *)
  comm_mode : comm_mode;
}

val default : t
(** The unoptimized baseline: 1 PE, 1 CU, no pipelining, barrier mode,
    work-group size 64. *)

val validate : t -> string list
(** Invariant violations (non-positive knobs, [n_pe > wg_size]); [[]]
    means the design point is well-formed. *)

val to_string : t -> string
(** Compact form, e.g. ["wg64 pe2 cu4 pipe pipeline"]. *)

val compare : t -> t -> int
