module Model = Flexcl_core.Model
module Analysis = Flexcl_core.Analysis
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Dram = Flexcl_dram.Dram
module Interp = Flexcl_interp.Interp
module Listsched = Flexcl_sched.Listsched
module Prng = Flexcl_util.Prng
open Flexcl_ir

type result = {
  cycles : float;
  seconds : float;
  mem_transactions : int;
  detail_rounds : int;
}

(* Realized latency of every block: list scheduling with per-instance
   implementation variants instead of table averages. *)
let realized_block_latencies (dev : Device.t) (analysis : Analysis.t)
    (cfg : Config.t) ~salt =
  let dsp_share =
    max 8 (dev.Device.dsp_total / max 1 (cfg.Config.n_pe * cfg.Config.n_cu))
  in
  let cons =
    {
      Listsched.read_ports = Device.local_read_ports dev;
      write_ports = Device.local_write_ports dev;
      dsp = dsp_share;
    }
  in
  let blocks =
    Cdfg.fold_blocks (fun acc d -> d :: acc) [] analysis.Analysis.cdfg.Cdfg.body
    |> List.rev
  in
  let table =
    List.mapi
      (fun bi d ->
        let node_lat (n : Dfg.node) =
          Device.variant_latency dev n.Dfg.op
            ~salt:(Prng.hash_mix salt ((bi * 4096) + n.Dfg.id))
        in
        let s =
          Listsched.schedule_block_with d ~node_lat
            ~dsp_cost:(Device.dsp_cost dev) ~cons
        in
        (* synthesis slack: place-and-route occasionally inserts a
           register stage that no pre-RTL analysis sees *)
        let slack =
          if s.Listsched.latency >= 8 && Prng.hash_mix salt (bi + 577) mod 3 = 0
          then 1 + (Prng.hash_mix salt (bi + 1201) mod 2)
          else 0
        in
        (d, s.Listsched.latency + slack))
      blocks
  in
  fun d ->
    match List.find_opt (fun (d', _) -> d' == d) table with
    | Some (_, l) -> l
    | None ->
        (* region produced outside the analysis body (not expected) *)
        (Listsched.schedule_block d ~lat:(Device.op_latency dev)
           ~dsp_cost:(Device.dsp_cost dev) ~cons)
          .Listsched.latency

(* The board executes every work-group; FlexCL's model profiles only a
   couple. The simulator therefore re-profiles with a deeper sample, so
   data-dependent kernels diverge from the model the way real runs do. *)
let deep_profile_cache : (string * string * int, Analysis.t) Hashtbl.t =
  Hashtbl.create 64

(* full-NDRange traces are large; keep only the handful of entries a
   design-space sweep of one kernel needs *)
let deep_cache_order : (string * string * int) Queue.t = Queue.create ()
let deep_cache_limit = 6

(* The sweep engine may drive the simulator oracle from several domains:
   the cache and its eviction queue are guarded by one lock. Re-profiling
   runs inside the lock — concurrent misses on different kernels
   serialize, which is acceptable for the deep-profile path (it is the
   expensive, rarely-parallel oracle). *)
let deep_cache_mutex = Mutex.create ()

let deep_analysis (analysis : Analysis.t) =
  let key =
    (* the fingerprint covers the NDRange, argument recipe and buffer
       placement — without it, the same kernel re-profiled for a device
       with a different channel placement would hit a stale entry *)
    ( analysis.Analysis.cdfg.Cdfg.kernel_name,
      Launch.fingerprint analysis.Analysis.launch,
      Launch.wg_size analysis.Analysis.launch )
  in
  Mutex.lock deep_cache_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock deep_cache_mutex)
    (fun () ->
      match Hashtbl.find_opt deep_profile_cache key with
      | Some a when a.Analysis.kernel == analysis.Analysis.kernel -> a
      | Some _ | None ->
          let a =
            Analysis.analyze
              ~max_work_groups:(Launch.n_work_groups analysis.Analysis.launch)
              analysis.Analysis.kernel analysis.Analysis.launch
          in
          Hashtbl.replace deep_profile_cache key a;
          Queue.add key deep_cache_order;
          while Queue.length deep_cache_order > deep_cache_limit do
            Hashtbl.remove deep_profile_cache (Queue.pop deep_cache_order)
          done;
          a)

let run ?(seed = 42) ?(max_detail_rounds = 4) (dev : Device.t)
    (analysis : Analysis.t) (cfg : Config.t) =
  let analysis =
    if Launch.wg_size analysis.Analysis.launch = cfg.Config.wg_size then analysis
    else Analysis.with_wg_size analysis cfg.Config.wg_size
  in
  let analysis = deep_analysis analysis in
  let salt = Prng.hash_mix (Hashtbl.hash analysis.Analysis.cdfg.Cdfg.kernel_name) seed in
  let block_lat = realized_block_latencies dev analysis cfg ~salt in
  let depth_real =
    int_of_float
      (Float.ceil
         (Model.region_latency_with ~block_lat dev analysis cfg
            analysis.Analysis.cdfg.Cdfg.body))
  in
  (* structural parameters (effective parallelism, II) come from the same
     synthesis decisions the model sees; realized timing diverges below *)
  let b = Model.estimate dev analysis cfg in
  let ii_real =
    if cfg.Config.wi_pipeline then
      (* the synthesized schedule occasionally settles one cycle above the
         MII the analytical pass predicts *)
      b.Model.ii_wi + (if Prng.hash_mix salt 77 mod 4 = 0 then 1 else 0)
    else max 1 depth_real
  in
  let lanes = max 1 b.Model.n_pe_eff in
  let n_cu_eff = max 1 b.Model.n_cu_eff in
  let wg = cfg.Config.wg_size in
  let n_wi = Launch.n_work_items analysis.Analysis.launch in
  let n_wg = (n_wi + wg - 1) / wg in
  let traces = analysis.Analysis.profile.Interp.wi_traces in
  let n_traces = Array.length traces in
  (* one coalesced transaction stream per profiled work-group; later
     work-groups reuse them cyclically (same access shape, steady-state
     DRAM) *)
  let wg_streams =
    if n_traces = 0 then [||]
    else begin
      let n_chunks = max 1 (n_traces / max 1 wg) in
      Array.init n_chunks (fun c ->
          let lo = c * wg in
          let len = min wg (n_traces - lo) in
          Dram.coalesce_workgroup dev.Device.dram analysis.Analysis.layout
            (Array.sub traces lo len))
    end
  in
  let stream_of wg_index =
    if Array.length wg_streams = 0 then []
    else wg_streams.(wg_index mod Array.length wg_streams)
  in
  let dram = Dram.Sim.create dev.Device.dram in
  let mem_txns = ref 0 in
  let dispatch_jitter wg_index = Prng.hash_mix salt (wg_index + 131) mod 7 in
  let dl = dev.Device.wg_dispatch_overhead in
  (* One memory cursor per concurrent work-group: within a work-group,
     each PE lane keeps a single transaction outstanding (chained);
     concurrent compute units interleave on the DRAM in issue-time order,
     contending for banks and the shared data bus inside Dram.Sim. In
     barrier mode the whole work-group chains through one lane (no
     pipelined issue). *)
  let simulate_round_memory wg_indices ~round_start ~mem_lanes =
    let cursors =
      List.map
        (fun wg_index ->
          let start = int_of_float round_start + dispatch_jitter wg_index in
          ( wg_index,
            Array.of_list (stream_of wg_index),
            Array.make mem_lanes start,
            ref 0,
            ref start,
            start ))
        wg_indices
    in
    let remaining () =
      List.filter (fun (_, txns, _, idx, _, _) -> !idx < Array.length txns) cursors
    in
    let next_time (_, _, lane_now, idx, _, _) =
      lane_now.(!idx mod Array.length lane_now)
    in
    let rec drain () =
      match remaining () with
      | [] -> ()
      | live ->
          (* pick the stream whose next transaction issues earliest *)
          let chosen =
            List.fold_left
              (fun best cand -> if next_time cand < next_time best then cand else best)
              (List.hd live) (List.tl live)
          in
          let _, txns, lane_now, idx, last, _ = chosen in
          let lane = !idx mod Array.length lane_now in
          incr mem_txns;
          let fin = Dram.Sim.access dram ~now:lane_now.(lane) txns.(!idx) in
          lane_now.(lane) <- fin;
          if fin > !last then last := fin;
          incr idx;
          drain ()
    in
    drain ();
    List.map
      (fun (wg_index, _, _, _, last, start) -> (wg_index, start, !last))
      cursors
  in
  let compute_span =
    (float_of_int ii_real
    *. float_of_int ((max 0 (wg - lanes) + lanes - 1) / lanes))
    +. float_of_int depth_real
  in
  let simulate_round ~round_start wg_indices =
    match cfg.Config.comm_mode with
    | Config.Barrier_mode ->
        (* memory phase then compute phase, not overlapped *)
        let mems = simulate_round_memory wg_indices ~round_start ~mem_lanes:1 in
        List.fold_left
          (fun acc (_, start, mem_last) ->
            let wt =
              float_of_int (mem_last - int_of_float round_start) +. compute_span
              |> Float.max (float_of_int (start - int_of_float round_start) +. compute_span)
            in
            Float.max acc wt)
          0.0 mems
    | Config.Pipeline_mode ->
        let mems = simulate_round_memory wg_indices ~round_start ~mem_lanes:lanes in
        List.fold_left
          (fun acc (_, start, mem_last) ->
            let mem_end = float_of_int (mem_last + depth_real) in
            let comp_end = float_of_int start +. compute_span in
            Float.max acc (Float.max mem_end comp_end -. round_start))
          0.0 mems
  in
  (* Dram.Sim works on integer cycles; wrap floats *)
  let rounds = (n_wg + n_cu_eff - 1) / n_cu_eff in
  let detail = min rounds max_detail_rounds in
  (* The scheduler prepares the next round of work-groups while the
     current one executes, so a round starts when the previous round
     finished AND its dispatch (ΔL) completed; the first round pays the
     dispatch latency in full. *)
  let t = ref (float_of_int dl) in
  let prev_start = ref 0.0 in
  let detail_times = ref [] in
  for r = 0 to detail - 1 do
    let round_start =
      Float.max !t (!prev_start +. float_of_int (dl + dispatch_jitter r))
    in
    let wgs =
      List.init n_cu_eff (fun c -> (r * n_cu_eff) + c)
      |> List.filter (fun w -> w < n_wg)
    in
    let round_time = simulate_round ~round_start wgs in
    detail_times := Float.max round_time (float_of_int dl) :: !detail_times;
    prev_start := round_start;
    t := round_start +. round_time
  done;
  let avg_round =
    match !detail_times with
    | [] -> 0.0
    | ts -> List.fold_left ( +. ) 0.0 ts /. float_of_int (List.length ts)
  in
  let cycles = !t +. (avg_round *. float_of_int (rounds - detail)) in
  {
    cycles;
    seconds = Device.cycles_to_seconds dev cycles;
    mem_transactions = !mem_txns;
    detail_rounds = detail;
  }
