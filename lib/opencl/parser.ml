exception Error of string * int * int

module Diag = Flexcl_util.Diag

type state = {
  mutable toks : Token.located list;
  mutable errors : Diag.t list;  (* reversed; only filled when [recover] *)
  mutable marks : Ast.mark list; (* reversed; barrier/pipe call positions *)
  recover : bool;
}

let fresh ?(recover = false) toks = { toks; errors = []; marks = []; recover }

(* Callees whose source positions sema needs for spanned diagnostics. *)
let marked_callee = function
  | "barrier" | "mem_fence" | "read_pipe" | "write_pipe" -> true
  | _ -> false

let here st =
  match st.toks with
  | { Token.line; col; _ } :: _ -> (line, col)
  | [] -> (0, 0)

let fail st msg =
  let line, col = here st in
  raise (Error (msg, line, col))

let peek st =
  match st.toks with { Token.tok; _ } :: _ -> tok | [] -> Token.Eof

let peek2 st =
  match st.toks with _ :: { Token.tok; _ } :: _ -> tok | _ -> Token.Eof

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let eat st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let eat_ident st =
  match peek st with
  | Token.Ident name ->
      advance st;
      name
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Error recovery *)

(* Diagnostics recorded at catch points. Past the cap the parse aborts
   (the input is hopeless, e.g. heavily mutated). *)
let max_recovered_errors = 64

let record st msg line col =
  st.errors <-
    Diag.error ~span:{ Diag.line; col } Diag.Parse_error "%s" msg :: st.errors;
  if List.length st.errors > max_recovered_errors then
    raise (Error ("too many syntax errors, giving up", line, col))

(* Skip to the next statement boundary: a ';' (consumed) or a '}'
   closing the current block (left for the caller), stepping over
   balanced nested braces opened after the error point. *)
let synchronize st =
  let rec loop depth =
    match peek st with
    | Token.Eof -> ()
    | Token.Semicolon when depth = 0 -> advance st
    | Token.Rbrace when depth = 0 -> ()
    | Token.Rbrace ->
        advance st;
        loop (depth - 1)
    | Token.Lbrace ->
        advance st;
        loop (depth + 1)
    | _ ->
        advance st;
        loop depth
  in
  loop 0

(* ------------------------------------------------------------------ *)
(* Types *)

let addr_space_of_token = function
  | Token.Kw_global -> Some Types.Global
  | Token.Kw_local -> Some Types.Local
  | Token.Kw_constant -> Some Types.Constant
  | Token.Kw_private -> Some Types.Private
  | _ -> None

let is_type_start st =
  match peek st with
  | Token.Kw_global | Token.Kw_local | Token.Kw_constant | Token.Kw_private
  | Token.Kw_const ->
      true
  | Token.Ident name -> Types.of_name name <> None
  | _ -> false

(* [base_type] parses [const]? type-name; address space handled by callers
   because its meaning differs for params vs. local decls. *)
let base_type st =
  let rec skip_const () =
    if peek st = Token.Kw_const then begin
      advance st;
      skip_const ()
    end
  in
  skip_const ();
  let name = eat_ident st in
  skip_const ();
  match Types.of_name name with
  | Some t -> t
  | None -> fail st (Printf.sprintf "unknown type name %s" name)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing *)

let rec parse_ternary st =
  let cond = parse_binary st 0 in
  if peek st = Token.Question then begin
    advance st;
    let a = parse_ternary st in
    eat st Token.Colon;
    let b = parse_ternary st in
    Ast.Ternary (cond, a, b)
  end
  else cond

and binop_of_token = function
  | Token.Pipe_pipe -> Some (0, Ast.Lor)
  | Token.Amp_amp -> Some (1, Ast.Land)
  | Token.Pipe -> Some (2, Ast.Bor)
  | Token.Caret -> Some (3, Ast.Bxor)
  | Token.Amp -> Some (4, Ast.Band)
  | Token.Eq_eq -> Some (5, Ast.Eq)
  | Token.Bang_eq -> Some (5, Ast.Ne)
  | Token.Lt -> Some (6, Ast.Lt)
  | Token.Le -> Some (6, Ast.Le)
  | Token.Gt -> Some (6, Ast.Gt)
  | Token.Ge -> Some (6, Ast.Ge)
  | Token.Shl -> Some (7, Ast.Shl)
  | Token.Shr -> Some (7, Ast.Shr)
  | Token.Plus -> Some (8, Ast.Add)
  | Token.Minus -> Some (8, Ast.Sub)
  | Token.Star -> Some (9, Ast.Mul)
  | Token.Slash -> Some (9, Ast.Div)
  | Token.Percent -> Some (9, Ast.Mod)
  | _ -> None

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token (peek st) with
    | Some (prec, op) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop (Ast.Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Token.Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Token.Plus ->
      advance st;
      parse_unary st
  | Token.Tilde ->
      advance st;
      Ast.Unop (Ast.Bnot, parse_unary st)
  | Token.Bang ->
      advance st;
      Ast.Unop (Ast.Lnot, parse_unary st)
  | Token.Lparen when is_cast st -> parse_cast st
  | _ -> parse_postfix st

and is_cast st =
  (* '(' followed by a type name / address-space keyword and then ')' *)
  match peek2 st with
  | Token.Kw_global | Token.Kw_local | Token.Kw_constant | Token.Kw_private ->
      true
  | Token.Ident name -> (
      match Types.of_name name with
      | None -> false
      | Some _ -> (
          (* distinguish "(int)x" from "(x)" where x is a variable named
             like a type: look one token further for ')' or '*' *)
          match st.toks with
          | _ :: _ :: { Token.tok = Token.Rparen | Token.Star; _ } :: _ -> true
          | _ -> false))
  | _ -> false

and parse_cast st =
  eat st Token.Lparen;
  let space =
    match addr_space_of_token (peek st) with
    | Some sp ->
        advance st;
        Some sp
    | None -> None
  in
  let base = base_type st in
  let t =
    if peek st = Token.Star then begin
      advance st;
      Types.Ptr (Option.value space ~default:Types.Private, base)
    end
    else base
  in
  eat st Token.Rparen;
  Ast.Cast (t, parse_unary st)

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match peek st with
    | Token.Lbracket ->
        let idxs = ref [] in
        while peek st = Token.Lbracket do
          advance st;
          idxs := parse_ternary st :: !idxs;
          eat st Token.Rbracket
        done;
        loop (Ast.Index (e, List.rev !idxs))
    | _ -> e
  in
  loop e

and parse_primary st =
  match peek st with
  | Token.Int_lit i ->
      advance st;
      Ast.Int_lit i
  | Token.Float_lit f ->
      advance st;
      Ast.Float_lit f
  | Token.Lparen ->
      advance st;
      let e = parse_ternary st in
      eat st Token.Rparen;
      e
  | Token.Ident name ->
      let line, col = here st in
      advance st;
      if peek st = Token.Lparen then begin
        advance st;
        let args = ref [] in
        if peek st <> Token.Rparen then begin
          args := [ parse_ternary st ];
          while peek st = Token.Comma do
            advance st;
            args := parse_ternary st :: !args
          done
        end;
        eat st Token.Rparen;
        if marked_callee name then
          st.marks <-
            { Ast.m_callee = name; m_line = line; m_col = col } :: st.marks;
        Ast.Call (name, List.rev !args)
      end
      else Ast.Var name
  | t -> fail st (Printf.sprintf "unexpected token %s in expression" (Token.to_string t))

(* ------------------------------------------------------------------ *)
(* Statements *)

let lvalue_of_expr st = function
  | Ast.Var v -> Ast.Lvar v
  | Ast.Index (Ast.Var v, idxs) -> Ast.Lindex (v, idxs)
  | e -> fail st (Printf.sprintf "%s is not assignable" (Ast.expr_to_string e))

let expr_of_lvalue = function
  | Ast.Lvar v -> Ast.Var v
  | Ast.Lindex (v, idxs) -> Ast.Index (Ast.Var v, idxs)

let compound_op = function
  | Token.Plus_assign -> Some Ast.Add
  | Token.Minus_assign -> Some Ast.Sub
  | Token.Star_assign -> Some Ast.Mul
  | Token.Slash_assign -> Some Ast.Div
  | Token.Percent_assign -> Some Ast.Mod
  | Token.Amp_assign -> Some Ast.Band
  | Token.Pipe_assign -> Some Ast.Bor
  | Token.Caret_assign -> Some Ast.Bxor
  | Token.Shl_assign -> Some Ast.Shl
  | Token.Shr_assign -> Some Ast.Shr
  | _ -> None

(* Parse assignment-or-expression without the trailing semicolon (shared
   by expression statements and for-headers). *)
let rec parse_simple_stmt st =
  match peek st with
  | Token.Plus_plus | Token.Minus_minus ->
      (* prefix increment: ++x *)
      let op = if peek st = Token.Plus_plus then Ast.Add else Ast.Sub in
      advance st;
      let e = parse_postfix st in
      let lv = lvalue_of_expr st e in
      Ast.Assign (lv, Ast.Binop (op, expr_of_lvalue lv, Ast.Int_lit 1L))
  | _ -> (
      let e = parse_ternary st in
      match peek st with
      | Token.Assign ->
          advance st;
          let lv = lvalue_of_expr st e in
          Ast.Assign (lv, parse_ternary st)
      | Token.Plus_plus | Token.Minus_minus ->
          let op = if peek st = Token.Plus_plus then Ast.Add else Ast.Sub in
          advance st;
          let lv = lvalue_of_expr st e in
          Ast.Assign (lv, Ast.Binop (op, expr_of_lvalue lv, Ast.Int_lit 1L))
      | tok -> (
          match compound_op tok with
          | Some op ->
              advance st;
              let lv = lvalue_of_expr st e in
              Ast.Assign (lv, Ast.Binop (op, expr_of_lvalue lv, parse_ternary st))
          | None -> Ast.Expr_stmt e))

and parse_decls st ~local =
  (* type already detected; [local] when __local qualifier was present *)
  let base = base_type st in
  let rec declarator acc =
    let base =
      if peek st = Token.Star then begin
        advance st;
        Types.Ptr ((if local then Types.Local else Types.Private), base)
      end
      else base
    in
    let name = eat_ident st in
    (* array dims *)
    let dims = ref [] in
    while peek st = Token.Lbracket do
      advance st;
      (match peek st with
      | Token.Int_lit n ->
          advance st;
          dims := Int64.to_int n :: !dims
      | t -> fail st ("array dimension must be an integer literal, found " ^ Token.to_string t));
      eat st Token.Rbracket
    done;
    let ty = List.fold_left (fun t n -> Types.Array (t, n)) base !dims in
    let stmt =
      if local then begin
        if peek st = Token.Assign then
          fail st "__local variables cannot have initializers";
        Ast.Local_decl (ty, name)
      end
      else begin
        let init =
          if peek st = Token.Assign then begin
            advance st;
            Some (parse_ternary st)
          end
          else None
        in
        Ast.Decl (ty, name, init)
      end
    in
    let acc = stmt :: acc in
    if peek st = Token.Comma then begin
      advance st;
      declarator acc
    end
    else acc
  in
  let decls = declarator [] in
  eat st Token.Semicolon;
  List.rev decls

and parse_stmt st ~pending_attrs =
  match peek st with
  | Token.Pragma words ->
      advance st;
      let attrs = attrs_of_pragma pending_attrs words in
      parse_stmt st ~pending_attrs:attrs
  | Token.Lbrace ->
      (* flatten anonymous blocks into the surrounding statement list *)
      parse_block st
  | Token.Kw_local ->
      advance st;
      parse_decls st ~local:true
  | Token.Kw_if ->
      advance st;
      eat st Token.Lparen;
      let cond = parse_ternary st in
      eat st Token.Rparen;
      let then_body = parse_stmt_or_block st in
      let else_body =
        if peek st = Token.Kw_else then begin
          advance st;
          parse_stmt_or_block st
        end
        else []
      in
      [ Ast.If (cond, then_body, else_body) ]
  | Token.Kw_for ->
      advance st;
      eat st Token.Lparen;
      let init =
        if peek st = Token.Semicolon then None
        else if is_type_start st then begin
          (* single declarator only in for-init *)
          let base = base_type st in
          let name = eat_ident st in
          eat st Token.Assign;
          let e = parse_ternary st in
          Some (Ast.Decl (base, name, Some e))
        end
        else Some (parse_simple_stmt st)
      in
      (match init with
      | Some (Ast.Decl _) -> eat st Token.Semicolon
      | Some _ -> eat st Token.Semicolon
      | None -> eat st Token.Semicolon);
      let cond = if peek st = Token.Semicolon then None else Some (parse_ternary st) in
      eat st Token.Semicolon;
      let step = if peek st = Token.Rparen then None else Some (parse_simple_stmt st) in
      eat st Token.Rparen;
      let body = parse_stmt_or_block st in
      [ Ast.For ({ Ast.init; cond; step }, body, pending_attrs) ]
  | Token.Kw_while ->
      advance st;
      eat st Token.Lparen;
      let cond = parse_ternary st in
      eat st Token.Rparen;
      let body = parse_stmt_or_block st in
      [ Ast.While (cond, body, pending_attrs) ]
  | Token.Kw_return ->
      advance st;
      let e = if peek st = Token.Semicolon then None else Some (parse_ternary st) in
      eat st Token.Semicolon;
      [ Ast.Return e ]
  | Token.Kw_break ->
      advance st;
      eat st Token.Semicolon;
      [ Ast.Break ]
  | Token.Kw_continue ->
      advance st;
      eat st Token.Semicolon;
      [ Ast.Continue ]
  | _ when is_type_start st && is_decl_lookahead st -> parse_decls st ~local:false
  | _ ->
      let s = parse_simple_stmt st in
      eat st Token.Semicolon;
      let s =
        match s with
        | Ast.Expr_stmt (Ast.Call (("barrier" | "mem_fence"), _)) -> Ast.Barrier
        | other -> other
      in
      [ s ]

and is_decl_lookahead st =
  (* Disambiguate "int x = ..." from an expression starting with an
     identifier that happens to be a type name is impossible in our
     subset (type names are reserved), so a type-start token beginning a
     statement is always a declaration. Exception: a lone const. *)
  match peek st with
  | Token.Ident name -> Types.of_name name <> None
  | Token.Kw_const -> true
  | _ -> false

and parse_stmt_or_block st =
  if peek st = Token.Lbrace then parse_block st
  else parse_stmt st ~pending_attrs:Ast.default_loop_attrs

and parse_block st =
  eat st Token.Lbrace;
  let stmts = ref [] in
  let rec loop () =
    match peek st with
    | Token.Rbrace -> advance st
    | Token.Eof ->
        if st.recover then
          let line, col = here st in
          record st "unexpected end of input in block" line col
        else fail st "unexpected end of input in block"
    | _ ->
        (match parse_stmt st ~pending_attrs:Ast.default_loop_attrs with
        | ss -> stmts := List.rev_append ss !stmts
        | exception Error (msg, line, col) when st.recover ->
            record st msg line col;
            synchronize st);
        loop ()
  in
  loop ();
  List.rev !stmts

and attrs_of_pragma attrs words =
  match words with
  | [ "unroll" ] -> { attrs with Ast.unroll = Some max_int (* full unroll *) }
  | [ "unroll"; n ] -> (
      match int_of_string_opt n with
      | Some k when k >= 1 -> { attrs with Ast.unroll = Some k }
      | Some _ | None -> attrs)
  | [ "pipeline" ] | [ "work_item_pipeline" ] -> { attrs with Ast.pipeline = true }
  | _ -> attrs (* unknown pragmas ignored *)

(* ------------------------------------------------------------------ *)
(* Kernels *)

let parse_attribute st attrs =
  (* __attribute__((name(args...))) *)
  eat st Token.Kw_attribute;
  eat st Token.Lparen;
  eat st Token.Lparen;
  let name = eat_ident st in
  let ints = ref [] in
  if peek st = Token.Lparen then begin
    advance st;
    let rec loop () =
      (match peek st with
      | Token.Int_lit n ->
          advance st;
          ints := Int64.to_int n :: !ints
      | Token.Ident _ ->
          advance st (* non-integer attr arg: ignored *)
      | t -> fail st ("unexpected attribute argument " ^ Token.to_string t));
      if peek st = Token.Comma then begin
        advance st;
        loop ()
      end
    in
    if peek st <> Token.Rparen then loop ();
    eat st Token.Rparen
  end;
  eat st Token.Rparen;
  eat st Token.Rparen;
  match (name, List.rev !ints) with
  | "reqd_work_group_size", [ x; y; z ] ->
      { attrs with Ast.reqd_work_group_size = Some (x, y, z) }
  | "work_item_pipeline", _ -> { attrs with Ast.work_item_pipeline = true }
  | _ -> attrs

let parse_param st =
  if peek st = Token.Kw_pipe then begin
    (* pipe <scalar-type> <name> — OpenCL 2.0 program-scope pipes reduced
       to kernel parameters; direction is inferred by sema from usage *)
    advance st;
    let base = base_type st in
    let packet =
      match base with
      | Types.Scalar s -> s
      | t -> fail st (Printf.sprintf "pipe packets must be scalar, got %s" (Types.to_string t))
    in
    let name = eat_ident st in
    { Ast.p_type = Types.Pipe packet; p_name = name; p_const = false }
  end
  else
  let space =
    match addr_space_of_token (peek st) with
    | Some sp ->
        advance st;
        sp
    | None -> Types.Private
  in
  let is_const = peek st = Token.Kw_const in
  let base = base_type st in
  let ty =
    if peek st = Token.Star then begin
      advance st;
      Types.Ptr (space, base)
    end
    else base
  in
  let name = eat_ident st in
  { Ast.p_type = ty; p_name = name; p_const = is_const || space = Types.Constant }

let parse_kernel_def st ~attrs =
  eat st Token.Kw_kernel;
  st.marks <- [];
  let attrs = ref attrs in
  while peek st = Token.Kw_attribute do
    attrs := parse_attribute st !attrs
  done;
  let ret = eat_ident st in
  if ret <> "void" then fail st "kernels must return void";
  while peek st = Token.Kw_attribute do
    attrs := parse_attribute st !attrs
  done;
  let name = eat_ident st in
  eat st Token.Lparen;
  let params = ref [] in
  if peek st <> Token.Rparen then begin
    params := [ parse_param st ];
    while peek st = Token.Comma do
      advance st;
      params := parse_param st :: !params
    done
  end;
  eat st Token.Rparen;
  while peek st = Token.Kw_attribute do
    attrs := parse_attribute st !attrs
  done;
  let body = parse_block st in
  { Ast.k_name = name; k_params = List.rev !params; k_attrs = !attrs;
    k_body = body; k_marks = List.rev st.marks }

let parse_program_toks st =
  let kernels = ref [] in
  let pending = ref Ast.default_kernel_attrs in
  let rec skip_to_kernel () =
    match peek st with
    | Token.Eof | Token.Kw_kernel -> ()
    | _ ->
        advance st;
        skip_to_kernel ()
  in
  let rec loop () =
    match peek st with
    | Token.Eof -> ()
    | Token.Pragma words ->
        advance st;
        (match words with
        | [ "work_item_pipeline" ] ->
            pending := { !pending with Ast.work_item_pipeline = true }
        | _ -> ());
        loop ()
    | Token.Kw_kernel ->
        (match parse_kernel_def st ~attrs:!pending with
        | k ->
            pending := Ast.default_kernel_attrs;
            kernels := k :: !kernels
        | exception Error (msg, line, col) when st.recover ->
            (* parse_kernel_def consumed at least __kernel, so skipping
               to the next kernel keyword always makes progress *)
            record st msg line col;
            skip_to_kernel ());
        loop ()
    | t ->
        if st.recover then begin
          let line, col = here st in
          record st
            (Printf.sprintf "expected __kernel, found %s" (Token.to_string t))
            line col;
          advance st;
          skip_to_kernel ();
          loop ()
        end
        else
          fail st (Printf.sprintf "expected __kernel, found %s" (Token.to_string t))
  in
  loop ();
  List.rev !kernels

let parse_program src = parse_program_toks (fresh (Lexer.tokenize src))

let parse_program_partial src =
  let toks, lex_diags = Lexer.tokenize_partial src in
  let st = fresh ~recover:true toks in
  let kernels =
    try parse_program_toks st
    with Error (msg, line, col) ->
      st.errors <-
        Diag.error ~span:{ Diag.line; col } Diag.Parse_error "%s" msg :: st.errors;
      []
  in
  (kernels, Diag.sort (lex_diags @ List.rev st.errors))

let parse_kernel src =
  match parse_program src with
  | [ k ] -> k
  | ks ->
      raise
        (Error
           (Printf.sprintf "expected exactly one kernel, found %d" (List.length ks), 1, 1))

let parse_kernel_result src =
  match parse_program_partial src with
  | _, (_ :: _ as diags) -> Stdlib.Error diags
  | [ k ], [] -> Stdlib.Ok k
  | ks, [] ->
      Stdlib.Error
        [
          Diag.error ~span:{ Diag.line = 1; col = 1 } Diag.Parse_error
            "expected exactly one kernel, found %d" (List.length ks);
        ]

let parse_expr src =
  let st = fresh (Lexer.tokenize src) in
  let e = parse_ternary st in
  (match peek st with
  | Token.Eof -> ()
  | t -> fail st (Printf.sprintf "trailing token %s after expression" (Token.to_string t)));
  e
