(** Hand-written lexer for the OpenCL-C subset.

    Handles line (`//`) and block comments, decimal / hex integer literals,
    float literals (with optional exponent and `f` suffix), identifiers,
    keywords, multi-character operators and `#pragma` lines (returned as a
    single {!Token.Pragma} token carrying the words after "pragma"). *)

exception Error of string * int * int
(** [Error (message, line, col)] on an unexpected character or malformed
    literal. Lines and columns are 1-based. *)

val tokenize : string -> Token.located list
(** Full token stream for a source string, ending with {!Token.Eof}. *)

val tokenize_partial :
  string -> Token.located list * Flexcl_util.Diag.t list
(** Error-recovering variant: never raises. Offending characters are
    skipped (unterminated comments swallow the rest of the input) and
    each fault is reported as a {!Flexcl_util.Diag.t} with
    {!Flexcl_util.Diag.Lex_error}; the token list always ends with
    {!Token.Eof} and is usable even when diagnostics are present. *)
