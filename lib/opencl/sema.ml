exception Error of string

exception Error_at of string * int * int
(** Like {!Error} but with a source position (line, col) recovered from
    the parser's call marks, so the diagnostic can carry a caret. *)

type pipe_endpoint = {
  pe_packet : Types.scalar;
  pe_reads : bool;
  pe_writes : bool;
}

type info = {
  var_types : (string, Types.t) Hashtbl.t;
  global_arrays : (string * Types.t) list;
  local_arrays : (string * Types.t) list;
  pipes : (string * pipe_endpoint) list;
      (** every [pipe] parameter, with the directions this kernel uses *)
  uses_barrier : bool;
  n_loops : int;
  max_loop_depth : int;
}

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let err_at (mark : Ast.mark option) fmt =
  Printf.ksprintf
    (fun s ->
      match mark with
      | Some m -> raise (Error_at (s, m.Ast.m_line, m.Ast.m_col))
      | None -> raise (Error s))
    fmt

let special_constants =
  [
    ("CLK_LOCAL_MEM_FENCE", Types.Scalar Types.Int);
    ("CLK_GLOBAL_MEM_FENCE", Types.Scalar Types.Int);
    ("INFINITY", Types.Scalar Types.Float);
    ("FLT_MAX", Types.Scalar Types.Float);
    ("FLT_MIN", Types.Scalar Types.Float);
    ("INT_MAX", Types.Scalar Types.Int);
    ("INT_MIN", Types.Scalar Types.Int);
  ]

let lookup_var info name =
  match Hashtbl.find_opt info.var_types name with
  | Some t -> t
  | None -> (
      match List.assoc_opt name special_constants with
      | Some t -> t
      | None -> err "unknown variable %s" name)

let scalar_of name = function
  | Types.Scalar s -> s
  | t -> err "%s: expected a scalar, got %s" name (Types.to_string t)

let rec type_of info (e : Ast.expr) : Types.t =
  match e with
  | Ast.Int_lit _ -> Types.Scalar Types.Int
  | Ast.Float_lit _ -> Types.Scalar Types.Float
  | Ast.Var v -> lookup_var info v
  | Ast.Cast (t, inner) ->
      ignore (type_of info inner);
      t
  | Ast.Unop (Ast.Lnot, a) ->
      ignore (scalar_of "!" (type_of info a));
      Types.Scalar Types.Int
  | Ast.Unop (Ast.Bnot, a) ->
      let s = scalar_of "~" (type_of info a) in
      if Types.is_float s then err "~ applied to float";
      Types.Scalar s
  | Ast.Unop (Ast.Neg, a) -> Types.Scalar (scalar_of "unary -" (type_of info a))
  | Ast.Binop (op, a, b) -> type_of_binop info op a b
  | Ast.Ternary (c, a, b) ->
      ignore (scalar_of "?:" (type_of info c));
      let ta = scalar_of "?:" (type_of info a) in
      let tb = scalar_of "?:" (type_of info b) in
      Types.Scalar (Types.arith_result ta tb)
  | Ast.Index (base, idxs) ->
      let tb = type_of info base in
      List.iter
        (fun i ->
          let ti = type_of info i in
          match ti with
          | Types.Scalar s when Types.is_integer s -> ()
          | t -> err "array index must be an integer, got %s" (Types.to_string t))
        idxs;
      let rec strip t n =
        if n = 0 then t
        else
          match t with
          | Types.Ptr (_, inner) -> strip inner (n - 1)
          | Types.Array (inner, _) -> strip inner (n - 1)
          | t ->
              err "too many subscripts: %s indexed %d more time(s)"
                (Types.to_string t) n
      in
      strip tb (List.length idxs)
  | Ast.Call (f, args) -> type_of_call info f args

and type_of_binop info op a b =
  let ta = type_of info a and tb = type_of info b in
  match op with
  | Ast.Land | Ast.Lor | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      ignore (scalar_of "comparison" ta);
      ignore (scalar_of "comparison" tb);
      Types.Scalar Types.Int
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
      let sa = scalar_of "bitwise op" ta and sb = scalar_of "bitwise op" tb in
      if Types.is_float sa || Types.is_float sb then err "bitwise op on float";
      Types.Scalar (Types.arith_result sa sb)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
      let sa = scalar_of "arithmetic" ta and sb = scalar_of "arithmetic" tb in
      if op = Ast.Mod && (Types.is_float sa || Types.is_float sb) then
        err "%% on float (use fmod)";
      Types.Scalar (Types.arith_result sa sb)

and type_of_call info f args =
  match Builtins.find f with
  | Some b -> (
      let arg_types = List.map (type_of info) args in
      match Builtins.result_type b arg_types with
      | Ok t -> t
      | Error msg -> err "%s" msg)
  | None -> err "unknown function %s" f

let check_assignable info lv =
  match lv with
  | Ast.Lvar v -> ignore (lookup_var info v)
  | Ast.Lindex (v, idxs) ->
      ignore (type_of info (Ast.Index (Ast.Var v, idxs)))

(* ------------------------------------------------------------------ *)
(* Pipe discipline and divergence.

   Runs after type checking, walking statements in the parser's token
   order so each barrier/pipe call is matched with the span the parser
   recorded for it ([Ast.k_marks]).

   Rules (an HLS-subset contract, see DESIGN.md section 14):
   - [read_pipe]/[write_pipe] must form a whole statement
     (x = read_pipe(p); / T x = read_pipe(p); / write_pipe(p, e);) —
     pipe side effects buried in larger expressions have no defined
     ordering across work-items;
   - barriers and pipe accesses must not sit in diverged control flow
     (lexically inside an [if] branch): work-items disagree on whether
     the operation executes, which deadlocks the synthesized hardware. *)

let is_pipe_builtin f =
  match Builtins.find f with
  | Some (Builtins.Pipe_read | Builtins.Pipe_write) -> true
  | Some _ | None -> false

let structural_check (k : Ast.kernel) =
  let marks = ref k.Ast.k_marks in
  (* first remaining mark for one of [callees]; resilient to the rare
     desync from desugared compound assignments (worst case the
     diagnostic loses its caret, never its message) *)
  let next_mark callees =
    let rec take acc = function
      | [] -> (None, List.rev acc)
      | (m : Ast.mark) :: rest when List.mem m.Ast.m_callee callees ->
          (Some m, List.rev_append acc rest)
      | m :: rest -> take (m :: acc) rest
    in
    let found, rest = take [] !marks in
    marks := rest;
    found
  in
  let endpoints : (string, pipe_endpoint) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (p : Ast.param) ->
      match p.Ast.p_type with
      | Types.Pipe s ->
          Hashtbl.replace endpoints p.Ast.p_name
            { pe_packet = s; pe_reads = false; pe_writes = false }
      | _ -> ())
    k.Ast.k_params;
  let note_use f args mark =
    match args with
    | Ast.Var p :: _ -> (
        match Hashtbl.find_opt endpoints p with
        | Some e ->
            let e =
              if f = "read_pipe" then { e with pe_reads = true }
              else { e with pe_writes = true }
            in
            Hashtbl.replace endpoints p e
        | None -> err_at mark "%s: %s is not a pipe parameter" f p)
    | _ -> err_at mark "%s: first argument must name a pipe parameter" f
  in
  (* expression walk in parser recording order: a call's arguments were
     parsed (and marked) before the call itself was recorded *)
  let rec walk_expr ~div ~top (e : Ast.expr) =
    match e with
    | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Var _ -> ()
    | Ast.Unop (_, a) | Ast.Cast (_, a) -> walk_expr ~div ~top:false a
    | Ast.Binop (_, a, b) ->
        walk_expr ~div ~top:false a;
        walk_expr ~div ~top:false b
    | Ast.Ternary (c, a, b) ->
        walk_expr ~div ~top:false c;
        walk_expr ~div ~top:false a;
        walk_expr ~div ~top:false b
    | Ast.Index (base, idxs) ->
        walk_expr ~div ~top:false base;
        List.iter (walk_expr ~div ~top:false) idxs
    | Ast.Call (f, args) ->
        List.iter (walk_expr ~div ~top:false) args;
        if is_pipe_builtin f then begin
          let mark = next_mark [ f ] in
          note_use f args mark;
          if not top then
            err_at mark
              "%s must form a whole statement (x = %s(p); or %s(p, v);), \
               not part of a larger expression" f f f;
          if div then
            err_at mark
              "%s in diverged control flow: work-items disagree on whether \
               this executes (hoist it out of the if)" f
        end
  in
  let rec walk_stmts ~div stmts = List.iter (walk_stmt ~div) stmts
  and walk_stmt ~div (s : Ast.stmt) =
    match s with
    | Ast.Decl (_, _, init) -> Option.iter (walk_expr ~div ~top:true) init
    | Ast.Local_decl _ | Ast.Break | Ast.Continue -> ()
    | Ast.Assign (lv, e) ->
        (match lv with
        | Ast.Lvar _ -> ()
        | Ast.Lindex (_, idxs) -> List.iter (walk_expr ~div ~top:false) idxs);
        walk_expr ~div ~top:true e
    | Ast.If (c, t, e) ->
        walk_expr ~div ~top:false c;
        walk_stmts ~div:true t;
        walk_stmts ~div:true e
    | Ast.For ({ Ast.init; cond; step }, body, _) ->
        Option.iter (walk_stmt ~div) init;
        Option.iter (walk_expr ~div ~top:false) cond;
        Option.iter (walk_stmt ~div) step;
        walk_stmts ~div body
    | Ast.While (c, body, _) ->
        walk_expr ~div ~top:false c;
        walk_stmts ~div body
    | Ast.Barrier ->
        let mark = next_mark [ "barrier"; "mem_fence" ] in
        if div then
          err_at mark
            "barrier in diverged control flow: work-items disagree on \
             whether this executes (hoist it out of the if)"
    | Ast.Return e -> Option.iter (walk_expr ~div ~top:false) e
    | Ast.Expr_stmt e -> walk_expr ~div ~top:true e
  in
  walk_stmts ~div:false k.Ast.k_body;
  List.filter_map
    (fun (p : Ast.param) ->
      match p.Ast.p_type with
      | Types.Pipe _ -> (
          match Hashtbl.find_opt endpoints p.Ast.p_name with
          | Some e -> Some (p.Ast.p_name, e)
          | None -> None)
      | _ -> None)
    k.Ast.k_params

let declare info name ty =
  match Hashtbl.find_opt info.var_types name with
  | Some existing when not (Types.equal existing ty) ->
      err "variable %s redeclared with type %s (was %s)" name
        (Types.to_string ty) (Types.to_string existing)
  | Some _ | None -> Hashtbl.replace info.var_types name ty

let analyze (k : Ast.kernel) : info =
  let info =
    {
      var_types = Hashtbl.create 32;
      global_arrays = [];
      local_arrays = [];
      pipes = [];
      uses_barrier = false;
      n_loops = 0;
      max_loop_depth = 0;
    }
  in
  let globals = ref [] and locals = ref [] in
  let const_params = Hashtbl.create 8 in
  List.iter
    (fun (p : Ast.param) ->
      if Hashtbl.mem info.var_types p.Ast.p_name then
        err "duplicate parameter %s" p.Ast.p_name;
      Hashtbl.replace info.var_types p.Ast.p_name p.Ast.p_type;
      if p.Ast.p_const then Hashtbl.replace const_params p.Ast.p_name ();
      match Types.addr_space_of p.Ast.p_type with
      | Some (Types.Global | Types.Constant) ->
          globals := (p.Ast.p_name, p.Ast.p_type) :: !globals
      | Some Types.Local -> locals := (p.Ast.p_name, p.Ast.p_type) :: !locals
      | Some Types.Private | None -> ())
    k.Ast.k_params;
  let uses_barrier = ref false in
  let n_loops = ref 0 in
  let max_depth = ref 0 in
  let rec check_stmts depth stmts = List.iter (check_stmt depth) stmts
  and check_stmt depth (s : Ast.stmt) =
    match s with
    | Ast.Decl (ty, name, init) ->
        declare info name ty;
        Option.iter (fun e -> ignore (type_of info e)) init
    | Ast.Local_decl (ty, name) ->
        declare info name ty;
        locals := (name, ty) :: !locals
    | Ast.Assign (lv, e) ->
        (match lv with
        | Ast.Lvar v | Ast.Lindex (v, _) ->
            if Hashtbl.mem const_params v then
              err "assignment to const parameter %s" v);
        check_assignable info lv;
        ignore (type_of info e)
    | Ast.If (c, t, e) ->
        ignore (scalar_of "if condition" (type_of info c));
        check_stmts depth t;
        check_stmts depth e
    | Ast.For ({ Ast.init; cond; step }, body, _attrs) ->
        incr n_loops;
        if depth + 1 > !max_depth then max_depth := depth + 1;
        Option.iter (check_stmt depth) init;
        Option.iter (fun c -> ignore (scalar_of "for condition" (type_of info c))) cond;
        Option.iter (check_stmt depth) step;
        check_stmts (depth + 1) body
    | Ast.While (c, body, _attrs) ->
        incr n_loops;
        if depth + 1 > !max_depth then max_depth := depth + 1;
        ignore (scalar_of "while condition" (type_of info c));
        check_stmts (depth + 1) body
    | Ast.Barrier -> uses_barrier := true
    | Ast.Return e -> Option.iter (fun e -> ignore (type_of info e)) e
    | Ast.Break | Ast.Continue -> ()
    | Ast.Expr_stmt e -> ignore (type_of info e)
  in
  check_stmts 0 k.Ast.k_body;
  let pipes = structural_check k in
  {
    info with
    global_arrays = List.rev !globals;
    local_arrays = List.rev !locals;
    pipes;
    uses_barrier = !uses_barrier;
    n_loops = !n_loops;
    max_loop_depth = !max_depth;
  }

let rec is_const_expr = function
  | Ast.Int_lit _ | Ast.Float_lit _ -> true
  | Ast.Unop (_, a) | Ast.Cast (_, a) -> is_const_expr a
  | Ast.Binop (_, a, b) -> is_const_expr a && is_const_expr b
  | Ast.Ternary (c, a, b) -> is_const_expr c && is_const_expr a && is_const_expr b
  | Ast.Var _ | Ast.Call _ | Ast.Index _ -> false

let rec const_eval (e : Ast.expr) : int64 option =
  let open Ast in
  let ( let* ) = Option.bind in
  match e with
  | Int_lit i -> Some i
  | Float_lit _ | Var _ | Call _ | Index _ -> None
  | Cast (_, a) -> const_eval a
  | Unop (Neg, a) ->
      let* v = const_eval a in
      Some (Int64.neg v)
  | Unop (Bnot, a) ->
      let* v = const_eval a in
      Some (Int64.lognot v)
  | Unop (Lnot, a) ->
      let* v = const_eval a in
      Some (if v = 0L then 1L else 0L)
  | Ternary (c, a, b) ->
      let* v = const_eval c in
      if v <> 0L then const_eval a else const_eval b
  | Binop (op, a, b) -> (
      let* x = const_eval a in
      let* y = const_eval b in
      let bool_ c = Some (if c then 1L else 0L) in
      match op with
      | Add -> Some (Int64.add x y)
      | Sub -> Some (Int64.sub x y)
      | Mul -> Some (Int64.mul x y)
      | Div -> if y = 0L then None else Some (Int64.div x y)
      | Mod -> if y = 0L then None else Some (Int64.rem x y)
      | Band -> Some (Int64.logand x y)
      | Bor -> Some (Int64.logor x y)
      | Bxor -> Some (Int64.logxor x y)
      | Shl -> Some (Int64.shift_left x (Int64.to_int y))
      | Shr -> Some (Int64.shift_right x (Int64.to_int y))
      | Land -> bool_ (x <> 0L && y <> 0L)
      | Lor -> bool_ (x <> 0L || y <> 0L)
      | Eq -> bool_ (x = y)
      | Ne -> bool_ (x <> y)
      | Lt -> bool_ (x < y)
      | Le -> bool_ (x <= y)
      | Gt -> bool_ (x > y)
      | Ge -> bool_ (x >= y))
