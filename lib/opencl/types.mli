(** Types of the OpenCL-C subset understood by FlexCL. *)

type addr_space =
  | Global   (** [__global]: off-chip DRAM, modeled by {!Flexcl_dram}. *)
  | Local    (** [__local]: on-chip BRAM shared within a compute unit. *)
  | Constant (** [__constant]: read-only global memory. *)
  | Private  (** registers / per-work-item storage. *)

type scalar =
  | Bool
  | Char
  | Uchar
  | Short
  | Ushort
  | Int
  | Uint
  | Long
  | Ulong
  | Float
  | Double

type t =
  | Void
  | Scalar of scalar
  | Vector of scalar * int  (** e.g. [float4] = [Vector (Float, 4)]. *)
  | Ptr of addr_space * t   (** pointer, e.g. [__global float*]. *)
  | Array of t * int        (** fixed-size array, e.g. [__local float buf[256]]. *)
  | Pipe of scalar
      (** on-chip FIFO channel of scalar packets, e.g. [pipe float p];
          direction is inferred in sema from [read_pipe]/[write_pipe]. *)

val scalar_bits : scalar -> int
(** Storage width in bits (bool counts as 8). *)

val bits : t -> int
(** Total storage width; arrays multiply out, pointers are 64. Raises
    [Invalid_argument] on [Void]. *)

val is_integer : scalar -> bool
val is_float : scalar -> bool
val is_signed : scalar -> bool

val elem : t -> t
(** Element type of a pointer, array, vector or pipe; identity on
    scalars. *)

val addr_space_of : t -> addr_space option
(** Address space if [t] is a pointer (or array-of) into one. *)

val vector_name : scalar -> int -> string option
(** [vector_name s w] is e.g. [Some "float4"]; [None] if [w] is not a
    legal OpenCL vector width (2, 3, 4, 8, 16). *)

val of_name : string -> t option
(** Parse a (possibly vector) type name: ["int"], ["float4"], ... *)

val scalar_name : scalar -> string

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val arith_result : scalar -> scalar -> scalar
(** Usual arithmetic conversions: the wider/floatier type wins. *)
