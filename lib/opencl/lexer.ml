exception Error of string * int * int

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let keywords =
  [
    ("__kernel", Token.Kw_kernel);
    ("kernel", Token.Kw_kernel);
    ("__global", Token.Kw_global);
    ("global", Token.Kw_global);
    ("__local", Token.Kw_local);
    ("local", Token.Kw_local);
    ("__constant", Token.Kw_constant);
    ("constant", Token.Kw_constant);
    ("__private", Token.Kw_private);
    ("const", Token.Kw_const);
    ("restrict", Token.Kw_const);
    (* restrict is accepted and ignored *)
    ("if", Token.Kw_if);
    ("else", Token.Kw_else);
    ("for", Token.Kw_for);
    ("while", Token.Kw_while);
    ("do", Token.Kw_do);
    ("return", Token.Kw_return);
    ("break", Token.Kw_break);
    ("continue", Token.Kw_continue);
    ("__attribute__", Token.Kw_attribute);
    ("pipe", Token.Kw_pipe);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_char c = is_ident_start c || is_digit c

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Error (msg, st.line, st.col))

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec loop () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | Some _, _ ->
            advance st;
            loop ()
        | None, _ -> error st "unterminated block comment"
      in
      loop ();
      skip_trivia st
  | Some _ | None -> ()

let read_while st pred =
  let start = st.pos in
  while (match peek st with Some c -> pred c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start_line = st.line and start_col = st.col in
  let intpart =
    if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
      advance st;
      advance st;
      let digits = read_while st is_hex_digit in
      if digits = "" then error st "malformed hex literal";
      ("0x" ^ digits, true)
    end
    else (read_while st is_digit, false)
  in
  match intpart with
  | hex, true ->
      { Token.tok = Token.Int_lit (Int64.of_string hex); line = start_line; col = start_col }
  | digits, false ->
      let is_float_continuation =
        match peek st with
        | Some '.' -> true
        | Some ('e' | 'E') -> true
        | Some ('f' | 'F') -> true
        | Some _ | None -> false
      in
      if not is_float_continuation then
        { Token.tok = Token.Int_lit (Int64.of_string digits); line = start_line; col = start_col }
      else begin
        let buf = Buffer.create 16 in
        Buffer.add_string buf digits;
        (match peek st with
        | Some '.' ->
            advance st;
            Buffer.add_char buf '.';
            Buffer.add_string buf (read_while st is_digit)
        | Some _ | None -> ());
        (match peek st with
        | Some ('e' | 'E') ->
            advance st;
            Buffer.add_char buf 'e';
            (match peek st with
            | Some (('+' | '-') as sign) ->
                advance st;
                Buffer.add_char buf sign
            | Some _ | None -> ());
            let exp = read_while st is_digit in
            if exp = "" then error st "malformed float exponent";
            Buffer.add_string buf exp
        | Some _ | None -> ());
        (match peek st with
        | Some ('f' | 'F') -> advance st
        | Some _ | None -> ());
        let text = Buffer.contents buf in
        let text = if text.[String.length text - 1] = '.' then text ^ "0" else text in
        { Token.tok = Token.Float_lit (float_of_string text); line = start_line; col = start_col }
      end

let lex_pragma st =
  (* '#' already seen; expect "pragma" then words until end of line. *)
  let start_line = st.line and start_col = st.col in
  advance st;
  let word = read_while st is_ident_char in
  if word <> "pragma" then error st ("unsupported directive #" ^ word);
  let words = ref [] in
  let rec loop () =
    (* skip spaces/tabs but stop at newline *)
    (match peek st with
    | Some (' ' | '\t' | '\r') ->
        advance st;
        loop ()
    | Some '\n' | None -> ()
    | Some c when is_ident_char c ->
        words := read_while st is_ident_char :: !words;
        loop ()
    | Some _ ->
        (* punctuation inside pragma (e.g. parentheses) kept as words *)
        let c = String.make 1 (Option.get (peek st)) in
        advance st;
        words := c :: !words;
        loop ())
  in
  loop ();
  { Token.tok = Token.Pragma (List.rev !words); line = start_line; col = start_col }

let operator_token st =
  let two a b tok_two tok_one =
    if peek2 st = Some b then begin
      advance st;
      advance st;
      tok_two
    end
    else begin
      advance st;
      ignore a;
      tok_one
    end
  in
  let three_or_two first second_assign tok_assign tok_two tok_one =
    (* e.g. '<': "<<=" / "<<" / "<=" / "<" *)
    match peek2 st with
    | Some c when c = first ->
        advance st;
        advance st;
        if peek st = Some '=' then begin
          advance st;
          tok_assign
        end
        else tok_two
    | Some '=' ->
        advance st;
        advance st;
        second_assign
    | Some _ | None ->
        advance st;
        tok_one
  in
  match peek st with
  | Some '+' -> (
      match peek2 st with
      | Some '+' ->
          advance st;
          advance st;
          Token.Plus_plus
      | Some '=' ->
          advance st;
          advance st;
          Token.Plus_assign
      | Some _ | None ->
          advance st;
          Token.Plus)
  | Some '-' -> (
      match peek2 st with
      | Some '-' ->
          advance st;
          advance st;
          Token.Minus_minus
      | Some '=' ->
          advance st;
          advance st;
          Token.Minus_assign
      | Some _ | None ->
          advance st;
          Token.Minus)
  | Some '*' -> two '*' '=' Token.Star_assign Token.Star
  | Some '/' -> two '/' '=' Token.Slash_assign Token.Slash
  | Some '%' -> two '%' '=' Token.Percent_assign Token.Percent
  | Some '^' -> two '^' '=' Token.Caret_assign Token.Caret
  | Some '&' -> (
      match peek2 st with
      | Some '&' ->
          advance st;
          advance st;
          Token.Amp_amp
      | Some '=' ->
          advance st;
          advance st;
          Token.Amp_assign
      | Some _ | None ->
          advance st;
          Token.Amp)
  | Some '|' -> (
      match peek2 st with
      | Some '|' ->
          advance st;
          advance st;
          Token.Pipe_pipe
      | Some '=' ->
          advance st;
          advance st;
          Token.Pipe_assign
      | Some _ | None ->
          advance st;
          Token.Pipe)
  | Some '<' -> three_or_two '<' Token.Le Token.Shl_assign Token.Shl Token.Lt
  | Some '>' -> three_or_two '>' Token.Ge Token.Shr_assign Token.Shr Token.Gt
  | Some '=' -> two '=' '=' Token.Eq_eq Token.Assign
  | Some '!' -> two '!' '=' Token.Bang_eq Token.Bang
  | Some '~' ->
      advance st;
      Token.Tilde
  | Some '(' ->
      advance st;
      Token.Lparen
  | Some ')' ->
      advance st;
      Token.Rparen
  | Some '{' ->
      advance st;
      Token.Lbrace
  | Some '}' ->
      advance st;
      Token.Rbrace
  | Some '[' ->
      advance st;
      Token.Lbracket
  | Some ']' ->
      advance st;
      Token.Rbracket
  | Some ',' ->
      advance st;
      Token.Comma
  | Some ';' ->
      advance st;
      Token.Semicolon
  | Some '?' ->
      advance st;
      Token.Question
  | Some ':' ->
      advance st;
      Token.Colon
  | Some '.' ->
      advance st;
      Token.Dot
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  | None -> Token.Eof

(* One token (the Eof token at end of input). Raises {!Error}. *)
let scan st =
  skip_trivia st;
  match peek st with
  | None -> { Token.tok = Token.Eof; line = st.line; col = st.col }
  | Some '#' -> lex_pragma st
  | Some c when is_digit c
                || (c = '.' && match peek2 st with Some d -> is_digit d | None -> false) ->
      lex_number st
  | Some c when is_ident_start c ->
      let line = st.line and col = st.col in
      let word = read_while st is_ident_char in
      let tok =
        match List.assoc_opt word keywords with
        | Some kw -> kw
        | None -> Token.Ident word
      in
      { Token.tok; line; col }
  | Some _ ->
      let line = st.line and col = st.col in
      let tok = operator_token st in
      { Token.tok; line; col }

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] in
  let rec loop () =
    let t = scan st in
    toks := t :: !toks;
    if t.Token.tok <> Token.Eof then loop ()
  in
  loop ();
  List.rev !toks

let tokenize_partial src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let toks = ref [] and diags = ref [] in
  let rec loop () =
    match scan st with
    | t ->
        toks := t :: !toks;
        if t.Token.tok <> Token.Eof then loop ()
    | exception Error (msg, line, col) ->
        let module D = Flexcl_util.Diag in
        diags := D.error ~span:{ D.line; col } D.Lex_error "%s" msg :: !diags;
        (* skip the offending character and keep lexing *)
        if peek st <> None then advance st;
        loop ()
  in
  loop ();
  (List.rev !toks, List.rev !diags)
