type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr
  | Land
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Bnot | Lnot

type expr =
  | Int_lit of int64
  | Float_lit of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr list
  | Cast of Types.t * expr
  | Ternary of expr * expr * expr

type lvalue = Lvar of string | Lindex of string * expr list

type loop_attrs = { unroll : int option; pipeline : bool }

let default_loop_attrs = { unroll = None; pipeline = false }

type stmt =
  | Decl of Types.t * string * expr option
  | Local_decl of Types.t * string
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of for_header * stmt list * loop_attrs
  | While of expr * stmt list * loop_attrs
  | Barrier
  | Return of expr option
  | Break
  | Continue
  | Expr_stmt of expr

and for_header = { init : stmt option; cond : expr option; step : stmt option }

type param = { p_type : Types.t; p_name : string; p_const : bool }

type kernel_attrs = {
  reqd_work_group_size : (int * int * int) option;
  work_item_pipeline : bool;
}

let default_kernel_attrs = { reqd_work_group_size = None; work_item_pipeline = false }

(* Source position of a barrier/pipe call, recorded by the parser in
   token order so sema can attach spans to diagnostics about them (the
   AST itself carries no positions). *)
type mark = { m_callee : string; m_line : int; m_col : int }

type kernel = {
  k_name : string;
  k_params : param list;
  k_attrs : kernel_attrs;
  k_body : stmt list;
  k_marks : mark list;
}

type program = kernel list

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Int_lit _ | Float_lit _ | Var _ -> acc
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Unop (_, a) | Cast (_, a) -> fold_expr f acc a
  | Call (_, args) -> List.fold_left (fold_expr f) acc args
  | Index (base, idxs) ->
      List.fold_left (fold_expr f) (fold_expr f acc base) idxs
  | Ternary (c, a, b) -> fold_expr f (fold_expr f (fold_expr f acc c) a) b

let exprs_of_stmt = function
  | Decl (_, _, Some e) -> [ e ]
  | Decl (_, _, None) | Local_decl _ | Barrier | Break | Continue -> []
  | Assign (Lvar _, e) -> [ e ]
  | Assign (Lindex (_, idxs), e) -> e :: idxs
  | If (c, _, _) -> [ c ]
  | For ({ cond; _ }, _, _) -> Option.to_list cond
  | While (c, _, _) -> [ c ]
  | Return e -> Option.to_list e
  | Expr_stmt e -> [ e ]

let rec iter_stmts f stmts =
  List.iter
    (fun s ->
      f s;
      match s with
      | If (_, t, e) ->
          iter_stmts f t;
          iter_stmts f e
      | For ({ init; step; _ }, body, _) ->
          Option.iter f init;
          Option.iter f step;
          iter_stmts f body
      | While (_, body, _) -> iter_stmts f body
      | Decl _ | Local_decl _ | Assign _ | Barrier | Return _ | Break
      | Continue | Expr_stmt _ ->
          ())
    stmts

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Land -> "&&"
  | Lor -> "||"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let unop_str = function Neg -> "-" | Bnot -> "~" | Lnot -> "!"

let rec pp_expr ppf = function
  | Int_lit i -> Format.fprintf ppf "%Ld" i
  | Float_lit f -> Format.fprintf ppf "%g" f
  | Var v -> Format.pp_print_string ppf v
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Unop (op, a) -> Format.fprintf ppf "%s%a" (unop_str op) pp_expr a
  | Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_expr)
        args
  | Index (base, idxs) ->
      pp_expr ppf base;
      List.iter (fun i -> Format.fprintf ppf "[%a]" pp_expr i) idxs
  | Cast (t, e) -> Format.fprintf ppf "(%s)%a" (Types.to_string t) pp_expr e
  | Ternary (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let expr_to_string e = Format.asprintf "%a" pp_expr e
