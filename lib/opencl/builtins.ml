type wi_fn =
  | Get_global_id
  | Get_local_id
  | Get_group_id
  | Get_global_size
  | Get_local_size
  | Get_num_groups

type math1 =
  | Sqrt
  | Rsqrt
  | Exp
  | Exp2
  | Log
  | Log2
  | Sin
  | Cos
  | Tan
  | Atan
  | Fabs
  | Floor
  | Ceil
  | Round

type math2 = Pow | Fmax | Fmin | Fmod | Atan2 | Hypot | Max | Min

type math3 = Mad | Fma | Clamp | Mix

type t =
  | Wi of wi_fn
  | Math1 of math1
  | Math2 of math2
  | Math3 of math3
  | Abs
  | Pipe_read   (** [read_pipe(p)] — blocking read, yields one packet. *)
  | Pipe_write  (** [write_pipe(p, v)] — blocking write, yields status int. *)

let all =
  [
    ("get_global_id", Wi Get_global_id);
    ("get_local_id", Wi Get_local_id);
    ("get_group_id", Wi Get_group_id);
    ("get_global_size", Wi Get_global_size);
    ("get_local_size", Wi Get_local_size);
    ("get_num_groups", Wi Get_num_groups);
    ("sqrt", Math1 Sqrt);
    ("native_sqrt", Math1 Sqrt);
    ("rsqrt", Math1 Rsqrt);
    ("exp", Math1 Exp);
    ("native_exp", Math1 Exp);
    ("exp2", Math1 Exp2);
    ("log", Math1 Log);
    ("native_log", Math1 Log);
    ("log2", Math1 Log2);
    ("sin", Math1 Sin);
    ("native_sin", Math1 Sin);
    ("cos", Math1 Cos);
    ("native_cos", Math1 Cos);
    ("tan", Math1 Tan);
    ("atan", Math1 Atan);
    ("fabs", Math1 Fabs);
    ("floor", Math1 Floor);
    ("ceil", Math1 Ceil);
    ("round", Math1 Round);
    ("pow", Math2 Pow);
    ("fmax", Math2 Fmax);
    ("fmin", Math2 Fmin);
    ("fmod", Math2 Fmod);
    ("atan2", Math2 Atan2);
    ("hypot", Math2 Hypot);
    ("max", Math2 Max);
    ("min", Math2 Min);
    ("mad", Math3 Mad);
    ("fma", Math3 Fma);
    ("clamp", Math3 Clamp);
    ("mix", Math3 Mix);
    ("abs", Abs);
    ("read_pipe", Pipe_read);
    ("write_pipe", Pipe_write);
  ]

let find n = List.assoc_opt n all

let name t =
  (* first (canonical) name in the table *)
  match List.find_opt (fun (_, b) -> b = t) all with
  | Some (n, _) -> n
  | None -> assert false

let arity = function
  | Wi _ | Math1 _ | Abs | Pipe_read -> 1
  | Math2 _ | Pipe_write -> 2
  | Math3 _ -> 3

let scalar_of = function
  | Types.Scalar s -> Some s
  | Types.Void | Types.Vector _ | Types.Ptr _ | Types.Array _ | Types.Pipe _ ->
      None

let result_type t args =
  let expect_arity () =
    if List.length args <> arity t then
      Error
        (Printf.sprintf "%s expects %d argument(s), got %d" (name t) (arity t)
           (List.length args))
    else Ok ()
  in
  Result.bind (expect_arity ()) @@ fun () ->
  match (t, args) with
  | Wi _, [ a ] -> (
      match scalar_of a with
      | Some s when Types.is_integer s -> Ok (Types.Scalar Types.Int)
      | Some _ | None -> Error (name t ^ ": dimension must be an integer"))
  | Math1 _, [ a ] -> (
      match scalar_of a with
      | Some s when Types.is_float s -> Ok a
      | Some s when Types.is_integer s -> Ok (Types.Scalar Types.Float)
      | Some _ | None -> Error (name t ^ ": argument must be scalar"))
  | Math2 (Max | Min), [ a; b ] -> (
      match (scalar_of a, scalar_of b) with
      | Some x, Some y -> Ok (Types.Scalar (Types.arith_result x y))
      | (None | Some _), _ -> Error (name t ^ ": arguments must be scalar"))
  | Math2 _, [ a; b ] -> (
      match (scalar_of a, scalar_of b) with
      | Some _, Some _ -> Ok (Types.Scalar Types.Float)
      | (None | Some _), _ -> Error (name t ^ ": arguments must be scalar"))
  | Math3 _, [ a; b; c ] -> (
      match (scalar_of a, scalar_of b, scalar_of c) with
      | Some x, Some y, Some z ->
          Ok (Types.Scalar (Types.arith_result (Types.arith_result x y) z))
      | (None | Some _), _, _ -> Error (name t ^ ": arguments must be scalar"))
  | Abs, [ a ] -> (
      match scalar_of a with
      | Some s when Types.is_integer s -> Ok a
      | Some _ | None -> Error "abs: argument must be an integer scalar")
  | Pipe_read, [ a ] -> (
      match a with
      | Types.Pipe s -> Ok (Types.Scalar s)
      | _ -> Error "read_pipe: argument must be a pipe parameter")
  | Pipe_write, [ a; b ] -> (
      (* the payload converts implicitly, like any scalar assignment *)
      match (a, scalar_of b) with
      | Types.Pipe _, Some _ -> Ok (Types.Scalar Types.Int)
      | Types.Pipe _, None -> Error "write_pipe: payload must be scalar"
      | _, _ -> Error "write_pipe: first argument must be a pipe parameter")
  | (Wi _ | Math1 _ | Math2 _ | Math3 _ | Abs | Pipe_read | Pipe_write), _ ->
      Error (name t ^ ": arity mismatch")
