(** Semantic analysis for parsed kernels: name resolution, type checking
    and collection of the facts later passes need (variable types, array
    address spaces, barrier usage). *)

exception Error of string

exception Error_at of string * int * int
(** Like {!Error} with the source (line, col) of the offending call,
    recovered from the parser's marks, so diagnostics carry a caret. *)

(** How one kernel uses one [pipe] parameter. *)
type pipe_endpoint = {
  pe_packet : Types.scalar;  (** packet type of the channel. *)
  pe_reads : bool;           (** the kernel calls [read_pipe] on it. *)
  pe_writes : bool;          (** the kernel calls [write_pipe] on it. *)
}

type info = {
  var_types : (string, Types.t) Hashtbl.t;
      (** every parameter and declared variable, including loop indices. *)
  global_arrays : (string * Types.t) list;
      (** [__global]/[__constant] pointer parameters, in declaration order. *)
  local_arrays : (string * Types.t) list;
      (** [__local] arrays (declared in the body or passed as params). *)
  pipes : (string * pipe_endpoint) list;
      (** [pipe] parameters in declaration order with inferred directions. *)
  uses_barrier : bool;
  n_loops : int;  (** loops in the body, counting nesting levels once each. *)
  max_loop_depth : int;
}

val analyze : Ast.kernel -> info
(** Type-check the kernel and collect {!info}. Raises {!Error} with a
    human-readable message on the first semantic fault (unknown variable,
    unknown function, arity mismatch, indexing a scalar, assigning to a
    [const] parameter, void-valued expression use). Raises {!Error_at}
    (with a span) when a barrier or pipe access sits in diverged control
    flow — lexically inside an [if] branch — or when a
    [read_pipe]/[write_pipe] is buried inside a larger expression rather
    than forming a whole statement. *)

val type_of : info -> Ast.expr -> Types.t
(** Type of an expression under the kernel's environment. Raises {!Error}
    on ill-typed expressions. Pointer indexing yields the element type;
    comparisons and logical operators yield [int] (as in C). *)

val is_const_expr : Ast.expr -> bool
(** True when the expression contains only literals (so static analyses
    can fold it). *)

val const_eval : Ast.expr -> int64 option
(** Fold an integer constant expression, [None] when not constant or not
    integral. *)
