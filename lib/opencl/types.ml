type addr_space = Global | Local | Constant | Private

type scalar =
  | Bool
  | Char
  | Uchar
  | Short
  | Ushort
  | Int
  | Uint
  | Long
  | Ulong
  | Float
  | Double

type t =
  | Void
  | Scalar of scalar
  | Vector of scalar * int
  | Ptr of addr_space * t
  | Array of t * int
  | Pipe of scalar
      (** OpenCL 2.0 pipe of scalar packets; direction is inferred in sema
          from [read_pipe]/[write_pipe] usage. *)

let scalar_bits = function
  | Bool | Char | Uchar -> 8
  | Short | Ushort -> 16
  | Int | Uint | Float -> 32
  | Long | Ulong | Double -> 64

let rec bits = function
  | Void -> invalid_arg "Types.bits: void has no width"
  | Scalar s -> scalar_bits s
  | Vector (s, w) -> scalar_bits s * w
  | Ptr _ -> 64
  | Array (t, n) -> bits t * n
  | Pipe s -> scalar_bits s

let is_integer = function
  | Bool | Char | Uchar | Short | Ushort | Int | Uint | Long | Ulong -> true
  | Float | Double -> false

let is_float s = not (is_integer s)

let is_signed = function
  | Char | Short | Int | Long -> true
  | Bool | Uchar | Ushort | Uint | Ulong | Float | Double -> false

let elem = function
  | Ptr (_, t) -> t
  | Array (t, _) -> t
  | Vector (s, _) -> Scalar s
  | Pipe s -> Scalar s
  | (Void | Scalar _) as t -> t

let rec addr_space_of = function
  | Ptr (sp, _) -> Some sp
  | Array (t, _) -> addr_space_of t
  | Void | Scalar _ | Vector _ | Pipe _ -> None

let scalar_name = function
  | Bool -> "bool"
  | Char -> "char"
  | Uchar -> "uchar"
  | Short -> "short"
  | Ushort -> "ushort"
  | Int -> "int"
  | Uint -> "uint"
  | Long -> "long"
  | Ulong -> "ulong"
  | Float -> "float"
  | Double -> "double"

let legal_vector_widths = [ 2; 3; 4; 8; 16 ]

let vector_name s w =
  if List.mem w legal_vector_widths then
    Some (scalar_name s ^ string_of_int w)
  else None

let scalars =
  [ Bool; Char; Uchar; Short; Ushort; Int; Uint; Long; Ulong; Float; Double ]

let of_name name =
  let scalar_of n = List.find_opt (fun s -> scalar_name s = n) scalars in
  match scalar_of name with
  | Some s -> Some (Scalar s)
  | None ->
      if name = "void" then Some Void
      else
        (* try vector suffix *)
        let try_width w =
          let suffix = string_of_int w in
          if String.length name > String.length suffix
             && String.sub name
                  (String.length name - String.length suffix)
                  (String.length suffix)
                = suffix
          then
            let base =
              String.sub name 0 (String.length name - String.length suffix)
            in
            Option.map (fun s -> Vector (s, w)) (scalar_of base)
          else None
        in
        List.find_map try_width (List.rev legal_vector_widths)

let space_prefix = function
  | Global -> "__global "
  | Local -> "__local "
  | Constant -> "__constant "
  | Private -> ""

let rec to_string = function
  | Void -> "void"
  | Scalar s -> scalar_name s
  | Vector (s, w) -> scalar_name s ^ string_of_int w
  | Ptr (sp, t) -> space_prefix sp ^ to_string t ^ "*"
  | Array (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
  | Pipe s -> "pipe " ^ scalar_name s

let pp ppf t = Format.pp_print_string ppf (to_string t)

let rec equal a b =
  match (a, b) with
  | Void, Void -> true
  | Scalar x, Scalar y -> x = y
  | Vector (x, w), Vector (y, v) -> x = y && w = v
  | Ptr (s, x), Ptr (r, y) -> s = r && equal x y
  | Array (x, n), Array (y, m) -> n = m && equal x y
  | Pipe x, Pipe y -> x = y
  | (Void | Scalar _ | Vector _ | Ptr _ | Array _ | Pipe _), _ -> false

let rank = function
  | Bool -> 0
  | Char | Uchar -> 1
  | Short | Ushort -> 2
  | Int | Uint -> 3
  | Long | Ulong -> 4
  | Float -> 5
  | Double -> 6

let arith_result a b =
  if is_float a && is_float b then if rank a >= rank b then a else b
  else if is_float a then a
  else if is_float b then b
  else if rank a > rank b then a
  else if rank b > rank a then b
  else if is_signed a then b (* unsigned wins at equal rank *)
  else a
