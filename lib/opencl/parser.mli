(** Recursive-descent parser for the OpenCL-C subset.

    Grammar summary:
    {v
    program   := kernel*
    kernel    := pragma* "__kernel" attribute? "void" IDENT "(" params ")"
                 block
    attribute := "__attribute__" "((" IDENT ( "(" INT ("," INT)* ")" )? "))"
    stmt      := decl | local-decl | assignment | if | for | while
               | "barrier" "(" ... ")" ";" | return | break | continue
               | call ";" | block
    v}

    Pragmas recognized: [#pragma unroll N] and [#pragma pipeline] (attach
    to the following loop), [#pragma work_item_pipeline] (attaches to the
    enclosing/following kernel). Unknown pragmas are ignored. *)

exception Error of string * int * int
(** [Error (message, line, col)]; positions are 1-based. *)

val parse_program : string -> Ast.program
(** Parse source text into kernels. Raises {!Error} or {!Lexer.Error}. *)

val parse_program_partial :
  string -> Ast.program * Flexcl_util.Diag.t list
(** Error-recovering parse: never raises. On a syntax error the parser
    records a diagnostic and synchronizes at the next [;] or [}] (and,
    for kernel-header errors, at the next [__kernel]), so one pass
    reports {e all} syntax errors of a file, not just the first.
    Lexical faults are recovered too (see {!Lexer.tokenize_partial}).
    Kernels that parsed cleanly are returned alongside the diagnostics,
    sorted by position; an empty diagnostic list means the parse was
    exact. *)

val parse_kernel : string -> Ast.kernel
(** Convenience: parse a source containing exactly one kernel. Raises
    {!Error} if there are zero or several kernels. *)

val parse_kernel_result :
  string -> (Ast.kernel, Flexcl_util.Diag.t list) result
(** Total variant of {!parse_kernel} built on {!parse_program_partial}:
    [Ok k] iff the source parsed without any diagnostic and contains
    exactly one kernel. *)

val parse_expr : string -> Ast.expr
(** Parse a standalone expression (used by tests). *)
