(** OpenCL builtin functions known to the frontend, interpreter and
    latency model. *)

(** Work-item indexing functions (argument is the dimension 0..2). *)
type wi_fn =
  | Get_global_id
  | Get_local_id
  | Get_group_id
  | Get_global_size
  | Get_local_size
  | Get_num_groups

type math1 =
  | Sqrt
  | Rsqrt
  | Exp
  | Exp2
  | Log
  | Log2
  | Sin
  | Cos
  | Tan
  | Atan
  | Fabs
  | Floor
  | Ceil
  | Round

type math2 = Pow | Fmax | Fmin | Fmod | Atan2 | Hypot | Max | Min

type math3 = Mad | Fma | Clamp | Mix

type t =
  | Wi of wi_fn
  | Math1 of math1
  | Math2 of math2
  | Math3 of math3
  | Abs  (** integer absolute value *)
  | Pipe_read   (** [read_pipe(p)]: blocking read of one packet. *)
  | Pipe_write  (** [write_pipe(p, v)]: blocking write, yields status. *)

val find : string -> t option
(** Look up a builtin by its OpenCL name. *)

val name : t -> string

val arity : t -> int

val result_type : t -> Types.t list -> (Types.t, string) result
(** Result type given argument types, or an error message on an arity or
    type mismatch. *)

val all : (string * t) list
(** The full table (for tests and documentation). *)
