(** Lexical tokens of the OpenCL-C subset. *)

type t =
  | Ident of string
  | Int_lit of int64
  | Float_lit of float
  (* keywords *)
  | Kw_kernel
  | Kw_global
  | Kw_local
  | Kw_constant
  | Kw_private
  | Kw_const
  | Kw_if
  | Kw_else
  | Kw_for
  | Kw_while
  | Kw_do
  | Kw_return
  | Kw_break
  | Kw_continue
  | Kw_attribute
  | Kw_pipe
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Question
  | Colon
  (* operators *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Pipe_pipe
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Amp_assign
  | Pipe_assign
  | Caret_assign
  | Shl_assign
  | Shr_assign
  | Plus_plus
  | Minus_minus
  | Dot
  (* directives *)
  | Pragma of string list  (** [#pragma w1 w2 ...], words after "pragma". *)
  | Eof

let to_string = function
  | Ident s -> s
  | Int_lit i -> Int64.to_string i
  | Float_lit f -> string_of_float f
  | Kw_kernel -> "__kernel"
  | Kw_global -> "__global"
  | Kw_local -> "__local"
  | Kw_constant -> "__constant"
  | Kw_private -> "__private"
  | Kw_const -> "const"
  | Kw_if -> "if"
  | Kw_else -> "else"
  | Kw_for -> "for"
  | Kw_while -> "while"
  | Kw_do -> "do"
  | Kw_return -> "return"
  | Kw_break -> "break"
  | Kw_continue -> "continue"
  | Kw_attribute -> "__attribute__"
  | Kw_pipe -> "pipe"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Semicolon -> ";"
  | Question -> "?"
  | Colon -> ":"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Percent_assign -> "%="
  | Amp_assign -> "&="
  | Pipe_assign -> "|="
  | Caret_assign -> "^="
  | Shl_assign -> "<<="
  | Shr_assign -> ">>="
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Dot -> "."
  | Pragma ws -> "#pragma " ^ String.concat " " ws
  | Eof -> "<eof>"

type located = { tok : t; line : int; col : int }
