(** Abstract syntax of the OpenCL-C subset. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band  (** bitwise and *)
  | Bor
  | Bxor
  | Shl
  | Shr
  | Land  (** logical and *)
  | Lor
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type unop = Neg | Bnot | Lnot

type expr =
  | Int_lit of int64
  | Float_lit of float
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Index of expr * expr list
      (** [Index (base, [i])] is [base[i]]; multi-dim arrays nest. *)
  | Cast of Types.t * expr
  | Ternary of expr * expr * expr

type lvalue =
  | Lvar of string
  | Lindex of string * expr list  (** [a[i]] or [a[i][j]]. *)

(** Per-loop optimization attributes ([#pragma unroll N] /
    [#pragma pipeline] preceding the loop). *)
type loop_attrs = { unroll : int option; pipeline : bool }

val default_loop_attrs : loop_attrs

type stmt =
  | Decl of Types.t * string * expr option
  | Local_decl of Types.t * string
      (** [__local] declaration inside a kernel body. *)
  | Assign of lvalue * expr
  | If of expr * stmt list * stmt list
  | For of for_header * stmt list * loop_attrs
  | While of expr * stmt list * loop_attrs
  | Barrier  (** [barrier(CLK_..._MEM_FENCE)]. *)
  | Return of expr option
  | Break
  | Continue
  | Expr_stmt of expr  (** call evaluated for effect. *)

and for_header = {
  init : stmt option;  (** [Decl] or [Assign]. *)
  cond : expr option;
  step : stmt option;  (** [Assign]. *)
}

type param = {
  p_type : Types.t;
  p_name : string;
  p_const : bool;  (** [const]-qualified. *)
}

(** Kernel-level attributes: [__attribute__((...))] and kernel-scope
    pragmas. *)
type kernel_attrs = {
  reqd_work_group_size : (int * int * int) option;
  work_item_pipeline : bool;  (** [#pragma work_item_pipeline]. *)
}

val default_kernel_attrs : kernel_attrs

(** Source position of one [barrier]/[mem_fence]/[read_pipe]/[write_pipe]
    call, recorded by the parser in token order. Sema pairs these with
    the corresponding AST occurrences to attach spans to diagnostics. *)
type mark = { m_callee : string; m_line : int; m_col : int }

type kernel = {
  k_name : string;
  k_params : param list;
  k_attrs : kernel_attrs;
  k_body : stmt list;
  k_marks : mark list;
}

type program = kernel list

val fold_expr : ('a -> expr -> 'a) -> 'a -> expr -> 'a
(** Pre-order fold over an expression and its subexpressions. *)

val iter_stmts : (stmt -> unit) -> stmt list -> unit
(** Pre-order traversal of statements, descending into bodies. *)

val exprs_of_stmt : stmt -> expr list
(** Immediate expressions of one statement (not descending into nested
    statement bodies, but including loop-header expressions). *)

val pp_expr : Format.formatter -> expr -> unit
val expr_to_string : expr -> string
