(** Bounded, domain-safe LRU cache.

    The serve subsystem's artifact stores (parse → analysis → predict)
    are instances of this one structure: a capacity-bounded map with
    least-recently-used eviction, a mutex around every operation (server
    requests run concurrently on a {!Flexcl_util.Pool}), and hit / miss /
    eviction counters for the [stats] endpoint.

    Lookups never block on in-flight computations (unlike
    {!Flexcl_util.Memo}): a concurrent miss on the same key may compute
    the value twice, which is harmless for pure analyses and keeps slow
    requests from serializing fast ones behind the cache lock. *)

type ('k, 'v) t

val create : capacity:int -> unit -> ('k, 'v) t
(** Raises [Invalid_argument] if [capacity < 1]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Bumps the entry's recency; counts a hit or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or refresh; evicts the least-recently-used entries beyond
    capacity. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> bool * 'v
(** [(was_hit, value)]. The producer runs {e outside} the lock; under a
    racing miss the last writer wins (both callers see their own fresh
    value). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

val stats : ('k, 'v) t -> stats
val clear : ('k, 'v) t -> unit
(** Drops entries; keeps the counters. *)
