module Json = Flexcl_util.Json

type t = { server : Server.t }

let create ?num_domains ?cache_capacity ?model () =
  { server = Server.create ?num_domains ?cache_capacity ?model () }

let server t = t.server
let request t v = Server.handle_value t.server v
let request_line t line = Server.handle_line t.server line
let stats t = Server.stats_json t.server
