(** The [flexcl serve] engine: a long-lived analysis service.

    One server value owns the content-addressed artifact caches
    (parse, analysis, predict — all {!Cache} LRUs keyed by
    {!Flexcl_util.Hash} content hashes), the {!Flexcl_util.Metrics}
    registry, and a domain-count budget. {!serve_fd} runs the NDJSON
    loop: it blocks for one request line, greedily drains every further
    line already buffered (up to a batch bound), evaluates the batch
    concurrently on a {!Flexcl_util.Pool}, and writes the responses in
    request order — so a client that streams a DSE batch gets
    multi-core evaluation, while an interactive client gets one-in
    one-out latency. Handlers never let an exception escape: every
    failure (malformed JSON, bad fields, broken kernels, fuel
    exhaustion, internal bugs) becomes an error response carrying
    structured {!Flexcl_util.Diag.t} values.

    Within one request, analysis and exploration run sequentially
    ([num_domains = 0] is passed to the DSE engine): concurrency lives
    at the request level, which keeps the pool from nesting. *)

module Json = Flexcl_util.Json

type t

val default_cache_capacity : int
(** 256 entries per artifact cache. *)

val steps_per_ms : int
(** Conservative interpreter throughput used to map a request's
    ["deadline_ms"] onto a profiling fuel budget
    ([max_steps = deadline_ms × steps_per_ms], floored at 1000). *)

val create : ?num_domains:int -> ?cache_capacity:int -> unit -> t
(** [num_domains] sizes the request pool ([0] = handle requests on the
    serving domain; default {!Flexcl_util.Pool.default_num_domains}).
    Raises [Invalid_argument] on negative arguments. *)

val num_domains : t -> int

val handle_value : t -> Json.t -> Json.t
(** Decode-dispatch-respond for one already-parsed request. Total. *)

val handle_line : t -> string -> string
(** One NDJSON request line to one response line (no trailing newline).
    Total: malformed JSON gets an [E-USAGE] error response. *)

val stats_json : t -> Json.t
(** The [stats] result object: request counters, per-kind latency
    summaries (µs), per-cache hit/miss/eviction counts and hit rates. *)

val serve_fd : t -> ?max_batch:int -> Unix.file_descr -> out_channel -> unit
(** Serve until EOF on [fd]. Blank lines are skipped. [max_batch]
    bounds how many buffered requests are drained into one concurrent
    batch (default [4 × (num_domains + 1)]). Responses are flushed
    after every batch. *)

val serve_unix_socket : t -> string -> unit
(** Bind a Unix-domain socket at the path (replacing any stale socket
    file) and serve accepted connections one at a time, each to EOF.
    Never returns normally. *)

val launch_for_kernel :
  Flexcl_opencl.Ast.kernel ->
  global:int ->
  wg:int ->
  buffer_size:int ->
  ints:(string * int) list ->
  floats:(string * float) list ->
  (Flexcl_ir.Launch.t, string list) result
(** The launch-synthesis rule shared with the one-shot CLI: pointer
    parameters become deterministic random buffers of [buffer_size]
    elements (seeded by parameter position), float scalars default to
    1.0, integer scalars default to [buffer_size]; [ints]/[floats] pin
    named scalars. *)
