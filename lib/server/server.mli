(** The [flexcl serve] engine: a long-lived analysis service.

    One server value owns the content-addressed artifact caches
    (parse, analysis, predict — all {!Cache} LRUs keyed by
    {!Flexcl_util.Hash} content hashes), the {!Flexcl_util.Metrics}
    registry, and a domain-count budget. {!serve_fd} runs the NDJSON
    loop: it blocks for one request line, greedily drains every further
    line already buffered (up to a batch bound), evaluates the batch
    concurrently on a {!Flexcl_util.Pool}, and writes the responses in
    request order — so a client that streams a DSE batch gets
    multi-core evaluation, while an interactive client gets one-in
    one-out latency. Handlers never let an exception escape: every
    failure (malformed JSON, bad fields, broken kernels, fuel
    exhaustion, internal bugs) becomes an error response carrying
    structured {!Flexcl_util.Diag.t} values.

    {b Failure semantics} (the full contract is DESIGN.md §12): every
    complete request line receives exactly one response. Frames that
    exceed [max_line_bytes] or end mid-line answer [E-FRAME]; a request
    whose wall-clock ["deadline_ms"] budget expires before compute
    answers [E-DEADLINE]; work past the [max_inflight] high-water mark
    is shed immediately with [E-OVERLOAD] plus a ["retry_after_ms"]
    hint; once draining, new requests answer [E-SHUTDOWN]. A request
    that crashes its worker domain answers [E-INTERNAL] while the pool
    respawns the worker within its restart budget.

    Within one request, analysis and exploration run sequentially
    ([num_domains = 0] is passed to the DSE engine): concurrency lives
    at the request level, which keeps the pool from nesting. *)

module Json = Flexcl_util.Json

type t

val default_cache_capacity : int
(** 256 entries per artifact cache. *)

val default_max_inflight : int
(** 128 requests admitted to compute at once. *)

val default_max_line_bytes : int
(** 1 MiB per request line. *)

val default_drain_timeout_ms : int
(** 5000 ms for connections to wind down after shutdown. *)

val steps_per_ms : int
(** Conservative interpreter throughput used to map a request's
    ["deadline_ms"] onto a profiling fuel budget
    ([max_steps = deadline_ms × steps_per_ms], floored at 1000). *)

exception Injected_fault
(** Raised by the ["panic"] request kind when the server was created
    with [~chaos:true] — deliberately past every handler guard, so the
    worker domain executing the request dies and the supervision path
    (Diag-bearing failure response, bounded respawn) is exercised. *)

val create :
  ?num_domains:int ->
  ?cache_capacity:int ->
  ?max_inflight:int ->
  ?max_line_bytes:int ->
  ?drain_timeout_ms:int ->
  ?restart_budget:int ->
  ?chaos:bool ->
  ?model:Flexcl_learn.Learn.model ->
  unit ->
  t
(** [num_domains] sizes the request pool ([0] = handle requests on the
    serving domain; default {!Flexcl_util.Pool.default_num_domains}).
    [max_inflight] is the admission high-water mark, [max_line_bytes]
    the framing bound (≥ 64), [drain_timeout_ms] how long
    {!serve_unix_socket} waits for connections after shutdown before
    severing them, [restart_budget] the worker-respawn allowance
    (default {!Flexcl_util.Pool.default_restart_budget}), and [chaos]
    enables the fault-injection ["panic"] kind (tests only). [model] is
    the learned-residual model serving ["calibrated":true] predictions
    (the CLI loads it from [--model FILE]); without it such requests
    answer [E-NOMODEL]. Calibrated and raw predictions are distinct
    cached artifacts, so warm hits stay byte-identical either way.
    Raises [Invalid_argument] on out-of-range arguments. *)

val num_domains : t -> int

val request_shutdown : t -> unit
(** Begin draining: serve loops stop accepting new work (rejecting it
    with [E-SHUTDOWN]), finish what was admitted, and return. Also
    triggered by the ["shutdown"] request kind and, in the CLI, by
    SIGTERM/SIGINT. Idempotent. *)

val draining : t -> bool

val inflight : t -> int
(** Requests currently admitted to compute and not yet answered. *)

val handle_value : ?arrival:float -> t -> Json.t -> Json.t
(** Decode-dispatch-respond for one already-parsed request. Total —
    except that with [~chaos:true] a ["panic"] request raises
    {!Injected_fault}. [arrival] (default now,
    [Unix.gettimeofday]-clock) anchors the wall-clock ["deadline_ms"]
    check performed before compute starts. *)

val handle_line : ?arrival:float -> t -> string -> string
(** One NDJSON request line to one response line (no trailing newline),
    through the full admission path: drain rejection, deadline check,
    admission (released before returning), then {!handle_value}.
    Total: malformed JSON gets an [E-USAGE] error response. *)

val stats_json : t -> Json.t
(** The [stats] result object: request counters (including [shed],
    [deadline_expired], [worker_restarts] and [requests.crashed]),
    gauges ([uptime_ms], [inflight]), per-kind latency summaries (µs),
    per-cache hit/miss/eviction counts and hit rates. *)

val serve_fd : t -> ?max_batch:int -> Unix.file_descr -> out_channel -> unit
(** Serve until EOF on [fd] or shutdown. Blank lines are skipped.
    [max_batch] bounds how many buffered requests are drained into one
    concurrent batch (default [4 × (num_domains + 1)]). Responses are
    flushed after every batch. *)

val serve_unix_socket : ?backlog:int -> t -> string -> unit
(** Bind a Unix-domain socket at the path (replacing any stale socket
    file, with [SO_REUSEADDR] set) and serve every accepted connection
    on its own thread against one shared supervised pool. Returns after
    {!request_shutdown}: the listener closes, the socket file is
    unlinked, in-flight requests finish, buffered requests answer
    [E-SHUTDOWN], and connections still open after [drain_timeout_ms]
    are severed. A bind failure raises before any worker is spawned. *)

val launch_for_kernel :
  Flexcl_opencl.Ast.kernel ->
  global:int ->
  wg:int ->
  buffer_size:int ->
  ints:(string * int) list ->
  floats:(string * float) list ->
  (Flexcl_ir.Launch.t, string list) result
(** The launch-synthesis rule shared with the one-shot CLI: pointer
    parameters become deterministic random buffers of [buffer_size]
    elements (seeded by parameter position), float scalars default to
    1.0, integer scalars default to [buffer_size]; [ints]/[floats] pin
    named scalars. *)
