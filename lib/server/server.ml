module Json = Flexcl_util.Json
module Diag = Flexcl_util.Diag
module Hash = Flexcl_util.Hash
module Metrics = Flexcl_util.Metrics
module Pool = Flexcl_util.Pool
module P = Protocol
module L = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module W = Flexcl_workloads.Workload
module Pipelines = Flexcl_workloads.Pipelines
module Graph = Flexcl_graph.Graph
module Learn = Flexcl_learn.Learn
open Flexcl_opencl

let default_cache_capacity = 256
let default_max_inflight = 128
let default_max_line_bytes = 1 lsl 20
let default_drain_timeout_ms = 5_000

(* The interpreter profiles tens of millions of steps per second on
   commodity cores; 20k steps/ms is a deliberate underestimate so a
   deadline translated into fuel expires early rather than late. *)
let steps_per_ms = 20_000

(* Raised (past every handler guard) by the chaos-only "panic" kind so
   the supervision path — worker domain death, Diag-bearing failure for
   the in-flight request, bounded respawn — can be exercised on demand. *)
exception Injected_fault

type t = {
  num_domains : int;
  metrics : Metrics.t;
  started_at : float;
  max_inflight : int;
  max_line_bytes : int;
  drain_timeout_ms : int;
  restart_budget : int;
  chaos : bool;
  (* learned-residual model loaded at startup (--model); calibrated
     predictions are refused with E-NOMODEL when absent *)
  model : Learn.model option;
  parse_cache : (string, (Ast.kernel, Diag.t list) result) Cache.t;
  analysis_cache : (string, Analysis.t) Cache.t;
  predict_cache : (string, Json.t) Cache.t;
  (* analyzed kernel graphs for the pipeline kind: stage profiling is
     the expensive part and depends only on the graph name *)
  graph_cache : (string, (Graph.analyzed, Diag.t list) result) Cache.t;
  (* single-flight registry: keys with a computation in progress.
     Duplicate requests racing on one key would otherwise all miss the
     cache and burn a core each on identical work — the exact pattern
     (one hot kernel, many clients) the server exists to amortize. *)
  sf_mutex : Mutex.t;
  sf_cond : Condition.t;
  sf_inflight : (string, unit) Hashtbl.t;
  (* admission control: requests admitted to compute but not yet
     answered, bounded by [max_inflight]; past the mark new work is shed
     with E-OVERLOAD instead of queueing unboundedly. *)
  adm_mutex : Mutex.t;
  mutable inflight : int;
  mutable ema_us : float;  (* smoothed request latency, for retry hints *)
  shutting_down : bool Atomic.t;
}

let create ?num_domains ?(cache_capacity = default_cache_capacity)
    ?(max_inflight = default_max_inflight)
    ?(max_line_bytes = default_max_line_bytes)
    ?(drain_timeout_ms = default_drain_timeout_ms)
    ?(restart_budget = Pool.default_restart_budget) ?(chaos = false) ?model ()
    =
  let num_domains =
    match num_domains with
    | None -> Pool.default_num_domains ()
    | Some n ->
        if n < 0 then invalid_arg "Server.create: num_domains must be >= 0";
        n
  in
  if cache_capacity < 1 then
    invalid_arg "Server.create: cache_capacity must be >= 1";
  if max_inflight < 1 then
    invalid_arg "Server.create: max_inflight must be >= 1";
  if max_line_bytes < 64 then
    invalid_arg "Server.create: max_line_bytes must be >= 64";
  if drain_timeout_ms < 0 then
    invalid_arg "Server.create: drain_timeout_ms must be >= 0";
  if restart_budget < 0 then
    invalid_arg "Server.create: restart_budget must be >= 0";
  let metrics = Metrics.create () in
  (* overload/fault counters exist from the start, so `stats` shows an
     explicit 0 rather than omitting the key until the first incident *)
  List.iter
    (fun k -> Metrics.incr metrics ~by:0 k)
    [ "shed"; "deadline_expired"; "worker_restarts"; "requests.crashed" ];
  {
    num_domains;
    metrics;
    started_at = Unix.gettimeofday ();
    max_inflight;
    max_line_bytes;
    drain_timeout_ms;
    restart_budget;
    chaos;
    model;
    parse_cache = Cache.create ~capacity:cache_capacity ();
    analysis_cache = Cache.create ~capacity:cache_capacity ();
    predict_cache = Cache.create ~capacity:cache_capacity ();
    graph_cache = Cache.create ~capacity:cache_capacity ();
    sf_mutex = Mutex.create ();
    sf_cond = Condition.create ();
    sf_inflight = Hashtbl.create 16;
    adm_mutex = Mutex.create ();
    inflight = 0;
    ema_us = 0.0;
    shutting_down = Atomic.make false;
  }

let num_domains t = t.num_domains
let request_shutdown t = Atomic.set t.shutting_down true
let draining t = Atomic.get t.shutting_down

let inflight t =
  Mutex.lock t.adm_mutex;
  let n = t.inflight in
  Mutex.unlock t.adm_mutex;
  n

(* admitted → true plus the post-admission depth; shed → false plus the
   depth that triggered the shed (both feed the retry hint) *)
let try_admit t =
  Mutex.lock t.adm_mutex;
  let ok = t.inflight < t.max_inflight in
  if ok then t.inflight <- t.inflight + 1;
  let depth = t.inflight in
  Mutex.unlock t.adm_mutex;
  (ok, depth)

let release t n =
  Mutex.lock t.adm_mutex;
  t.inflight <- t.inflight - n;
  Mutex.unlock t.adm_mutex

(* How long a shed client should back off: the work already in flight,
   spread over the executors, at the smoothed per-request latency. *)
let retry_after_ms t ~depth =
  let per_req_ms = Float.max 1.0 (t.ema_us /. 1000.0) in
  let width = float_of_int (t.num_domains + 1) in
  let est = per_req_ms *. float_of_int depth /. width in
  max 1 (int_of_float (Float.min 60_000.0 (Float.ceil est)))

(* Run [f] as the sole flight for [key]: racing callers block until the
   owner lands, then take their own turn (and find the cache warm).
   Keys are namespaced per artifact, and a flight for "predict#k" may
   open a nested flight for "analysis#k'" — the acquisition order is
   always predict-then-analysis, so the registry cannot cycle. *)
let with_single_flight t key f =
  Mutex.lock t.sf_mutex;
  while Hashtbl.mem t.sf_inflight key do
    Condition.wait t.sf_cond t.sf_mutex
  done;
  Hashtbl.replace t.sf_inflight key ();
  Mutex.unlock t.sf_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.sf_mutex;
      Hashtbl.remove t.sf_inflight key;
      Condition.broadcast t.sf_cond;
      Mutex.unlock t.sf_mutex)

(* ------------------------------------------------------------------ *)
(* Result plumbing: handlers accumulate [Diag.t list] errors. *)

let ( let* ) r f = match r with Ok v -> f v | Error ds -> Error ds
let one r = Result.map_error (fun d -> [ d ]) r
let usage1 fmt = Printf.ksprintf (fun s -> [ P.usage "%s" s ]) fmt

(* ------------------------------------------------------------------ *)
(* Launch synthesis (shared with bin/flexcl_cli.ml) *)

let launch_for_kernel (kernel : Ast.kernel) ~global ~wg ~buffer_size ~ints
    ~floats =
  let args =
    List.concat
      (List.mapi
         (fun i (p : Ast.param) ->
           let name = p.Ast.p_name in
           match p.Ast.p_type with
           | Types.Pipe _ -> [] (* channels take no launch argument *)
           | Types.Ptr _ ->
               [ ( name,
                   L.Buffer
                     { length = buffer_size; init = L.Random_floats (i + 1) } )
               ]
           | Types.Scalar s when Types.is_float s ->
               let v = Option.value (List.assoc_opt name floats) ~default:1.0 in
               [ (name, L.Scalar (L.Float v)) ]
           | _ ->
               let v =
                 Option.value (List.assoc_opt name ints) ~default:buffer_size
               in
               [ (name, L.Scalar (L.Int (Int64.of_int v))) ])
         kernel.Ast.k_params)
  in
  L.make_result ~global:(L.dim3 global) ~local:(L.dim3 wg) ~args

(* ------------------------------------------------------------------ *)
(* Request-field interpretation *)

let all_workloads = Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all

let device_of body =
  let* name = one (P.field_str body "device") in
  match name with
  | None | Some "virtex7" | Some "v7" | Some "xc7vx690t" -> Ok Device.virtex7
  | Some "ku060" | Some "xcku060" -> Ok Device.ku060
  | Some "ku060-2ddr" | Some "xcku060-2ddr" -> Ok Device.ku060_2ddr
  | Some "u280" | Some "xcu280" -> Ok Device.u280
  | Some other ->
      Error
        (usage1 "unknown device %S (virtex7 | ku060 | ku060-2ddr | xcu280)"
           other)

let fuel_of body =
  let* steps = one (P.field_int body "max_steps" ~default:0) in
  let* deadline = one (P.field_num body "deadline_ms") in
  if steps < 0 then Error (usage1 "field \"max_steps\" must be positive")
  else if steps > 0 then Ok (Some steps)
  else
    match deadline with
    | None -> Ok None
    | Some ms when ms > 0.0 && Float.is_finite ms ->
        Ok (Some (max 1000 (int_of_float (ms *. float_of_int steps_per_ms))))
    | Some _ -> Error (usage1 "field \"deadline_ms\" must be positive")

let config_of body ~wg =
  let* pe = one (P.field_int body "pe" ~default:1) in
  let* cu = one (P.field_int body "cu" ~default:1) in
  let* pipe = one (P.field_bool body "pipeline" ~default:false) in
  let* mode = one (P.field_str body "mode") in
  let* comm_mode =
    match mode with
    | None | Some "pipeline" -> Ok Config.Pipeline_mode
    | Some "barrier" -> Ok Config.Barrier_mode
    | Some other ->
        Error (usage1 "unknown mode %S (barrier | pipeline)" other)
  in
  let cfg =
    { Config.wg_size = wg; n_pe = pe; n_cu = cu; wi_pipeline = pipe;
      comm_mode }
  in
  match Config.validate cfg with
  | [] -> Ok cfg
  | problems ->
      Error (List.map (fun p -> Diag.error Diag.Config_invalid "%s" p) problems)

(* ------------------------------------------------------------------ *)
(* Content-addressed artifacts *)

let parse_cached t ~src ~src_hash =
  let _hit, r =
    Cache.find_or_add t.parse_cache src_hash (fun () ->
        Parser.parse_kernel_result src)
  in
  r

type resolved = {
  name : string;
  src_hash : string;
  kernel : Ast.kernel;
  launch : L.t;
}

(* Fields that shape the synthesized launch of an inline kernel; a
   workload brings its own launch, so combining them is a user error,
   not something to ignore silently. *)
let launch_fields =
  [ "global"; "wg"; "buffer_size"; "int_args"; "float_args" ]

let resolve t body =
  let* source = one (P.field_str body "source") in
  let* workload = one (P.field_str body "workload") in
  match (source, workload) with
  | Some _, Some _ ->
      Error (usage1 "\"source\" and \"workload\" are mutually exclusive")
  | None, None ->
      Error (usage1 "one of \"source\" or \"workload\" is required")
  | Some src, None ->
      let src_hash = Hash.to_hex (Hash.string src) in
      let* kernel = parse_cached t ~src ~src_hash in
      let* global = one (P.field_int body "global" ~default:4096) in
      let* wg = one (P.field_int body "wg" ~default:64) in
      let* buffer_size = one (P.field_int body "buffer_size" ~default:4096) in
      let* ints = one (P.field_int_assoc body "int_args") in
      let* floats = one (P.field_float_assoc body "float_args") in
      let* launch =
        match launch_for_kernel kernel ~global ~wg ~buffer_size ~ints ~floats
        with
        | Ok l -> Ok l
        | Error problems ->
            Error
              (List.map
                 (fun p -> Diag.error Diag.Launch_invalid "%s" p)
                 problems)
      in
      Ok { name = kernel.Ast.k_name; src_hash; kernel; launch }
  | None, Some name -> (
      match List.find_opt (fun f -> Json.member f body <> None) launch_fields
      with
      | Some f ->
          Error
            (usage1 "field %S does not apply to a workload request" f)
      | None -> (
          match List.find_opt (fun w -> W.name w = name) all_workloads with
          | None ->
              Error
                (usage1 "unknown workload %S (see the workloads list)" name)
          | Some w ->
              let src_hash = Hash.to_hex (Hash.string w.W.source) in
              let* kernel = parse_cached t ~src:w.W.source ~src_hash in
              Ok { name; src_hash; kernel; launch = w.W.launch }))

(* Buffer→channel placement: the "placement" request field is an object
   of channel indices by buffer name. It is validated against both the
   launch (buffer names) and the device (channel range), then folded
   into the launch so it reaches the fingerprint, the analysis cache key
   and the memory layout. *)
let resolve_placed t body ~dev =
  let* r = resolve t body in
  let* placement = one (P.field_int_assoc body "placement") in
  match placement with
  | [] -> Ok r
  | placement -> (
      match
        Flexcl_dram.Dram.placement_error dev.Device.dram placement
          ~buffers:(L.buffer_names r.launch)
      with
      | Some msg -> Error (usage1 "%s" msg)
      | None -> (
          match L.with_placement_result r.launch placement with
          | Ok launch -> Ok { r with launch }
          | Error problems ->
              Error
                (List.map
                   (fun p -> Diag.error Diag.Launch_invalid "%s" p)
                   problems)))

let analysis_cached t r ~max_steps =
  let key =
    Printf.sprintf "%s#%s#wg%d" r.src_hash (L.fingerprint r.launch)
      (L.wg_size r.launch)
  in
  with_single_flight t ("analysis#" ^ key) (fun () ->
      match Cache.find t.analysis_cache key with
      | Some a -> Ok a
      | None -> (
          match Analysis.analyze_result ?max_steps r.kernel r.launch with
          | Ok a ->
              Cache.add t.analysis_cache key a;
              Ok a
          | Error ds -> Error ds))

(* ------------------------------------------------------------------ *)
(* Handlers: each returns [(cached option, result object)] or diags. *)

let us dev cycles = Device.cycles_to_seconds dev cycles *. 1e6

let handle_parse t body =
  let* source = one (P.field_str body "source") in
  let* workload = one (P.field_str body "workload") in
  let* src =
    match (source, workload) with
    | Some _, Some _ ->
        Error (usage1 "\"source\" and \"workload\" are mutually exclusive")
    | None, None ->
        Error (usage1 "one of \"source\" or \"workload\" is required")
    | Some src, None -> Ok src
    | None, Some name -> (
        match List.find_opt (fun w -> W.name w = name) all_workloads with
        | Some w -> Ok w.W.source
        | None ->
            Error (usage1 "unknown workload %S (see the workloads list)" name))
  in
  let src_hash = Hash.to_hex (Hash.string src) in
  let* kernel = parse_cached t ~src ~src_hash in
  let params =
    List.map
      (fun (p : Ast.param) ->
        Json.Obj
          [
            ("name", Json.Str p.Ast.p_name);
            ("type", Json.Str (Types.to_string p.Ast.p_type));
          ])
      kernel.Ast.k_params
  in
  Ok
    ( None,
      Json.Obj
        [
          ("kernel", Json.Str kernel.Ast.k_name);
          ("params", Json.Arr params);
          ("source_hash", Json.Str src_hash);
        ] )

let breakdown_json dev name cfg (b : Model.breakdown) =
  Json.Obj
    [
      ("kernel", Json.Str name);
      ("device", Json.Str dev.Device.name);
      ("config", Json.Str (Config.to_string cfg));
      ("ii_wi", Json.int b.Model.ii_wi);
      ("rec_mii", Json.int b.Model.rec_mii);
      ("res_mii", Json.int b.Model.res_mii);
      ("depth_pe", Json.int b.Model.depth_pe);
      ("l_pe", Json.Num b.Model.l_pe);
      ("n_pe_eff", Json.int b.Model.n_pe_eff);
      ("l_cu", Json.Num b.Model.l_cu);
      ("n_cu_eff", Json.int b.Model.n_cu_eff);
      ("l_comp_kernel", Json.Num b.Model.l_comp_kernel);
      ("l_mem_wi", Json.Num b.Model.l_mem_wi);
      ( "pattern_counts",
        Json.Obj
          (List.map
             (fun (p, c) -> (Flexcl_dram.Dram.pattern_name p, Json.Num c))
             b.Model.pattern_counts) );
      ("dsp_footprint", Json.int b.Model.dsp_footprint);
      ("cycles", Json.Num b.Model.cycles);
      ("us", Json.Num (b.Model.seconds *. 1e6));
      ("bottleneck", Json.Str (Model.bottleneck b));
    ]

let estimate_for ?(want_trace = false) t body ~resolved:r =
  let* fuel = fuel_of body in
  let* dev = device_of body in
  let* cfg = config_of body ~wg:(L.wg_size r.launch) in
  let* a = analysis_cached t r ~max_steps:fuel in
  if not (Model.feasible dev a cfg) then
    Error
      [
        Diag.error Diag.Config_invalid "design point %s exceeds %s resources"
          (Config.to_string cfg) dev.Device.name;
      ]
  else
    match Model.estimate_result dev a cfg with
    | Error d -> Error [ d ]
    | Ok b ->
        if not want_trace then Ok (dev, cfg, b, None)
        else (
          (* same validated inputs as the estimate, so explain cannot
             fail on anything the estimate did not *)
          match Model.explain dev a cfg with
          | _, tr -> Ok (dev, cfg, b, Some tr)
          | exception (Out_of_memory as e) -> raise e
          | exception exn -> Error [ Analysis.diag_of_exn exn ])

let handle_analyze t body =
  let* dev0 = device_of body in
  let* r = resolve_placed t body ~dev:dev0 in
  let* dev, cfg, b, _ = estimate_for t body ~resolved:r in
  Ok (None, breakdown_json dev r.name cfg b)

let predict_key ~resolved:r ~dev ~cfg =
  Printf.sprintf "%s#%s#%s#%s" r.src_hash (L.fingerprint r.launch)
    dev.Device.name (Config.to_string cfg)

let handle_predict t body =
  let* dev = device_of body in
  let* r = resolve_placed t body ~dev in
  let* cfg = config_of body ~wg:(L.wg_size r.launch) in
  let* want_trace = one (P.field_bool body "trace" ~default:false) in
  let* want_cal = one (P.field_bool body "calibrated" ~default:false) in
  let* model =
    match (want_cal, t.model) with
    | false, _ -> Ok None
    | true, Some m -> Ok (Some m)
    | true, None ->
        Error
          [
            Diag.error Diag.No_model
              "\"calibrated\":true but no learned-residual model is loaded \
               (start the server with --model FILE)";
          ]
  in
  if want_trace then Metrics.incr t.metrics "predict.trace";
  if want_cal then Metrics.incr t.metrics "predict.calibrated";
  (* traced / calibrated predictions are distinct cached artifacts: a
     plain predict must never pay for (or return) either decoration *)
  let key =
    predict_key ~resolved:r ~dev ~cfg
    ^ (if want_trace then "#trace" else "")
    ^ if want_cal then "#cal" else ""
  in
  with_single_flight t ("predict#" ^ key) (fun () ->
      match Cache.find t.predict_cache key with
      | Some result -> Ok (Some true, result)
      | None ->
          let* _, _, b, tr = estimate_for ~want_trace t body ~resolved:r in
          let* cal_fields =
            match model with
            | None -> Ok []
            | Some m ->
                (* the analysis is already warm from estimate_for *)
                let* fuel = fuel_of body in
                let* a = analysis_cached t r ~max_steps:fuel in
                let c =
                  Learn.calibrate m ~device:dev ~est:b.Model.cycles
                    (Learn.features a dev)
                in
                Ok
                  [
                    ("cycles_calibrated", Json.Num c.Learn.cycles);
                    ( "ci",
                      Json.Obj
                        [
                          ("lo", Json.Num c.Learn.lo);
                          ("hi", Json.Num c.Learn.hi);
                        ] );
                  ]
          in
          let result =
            Json.Obj
              ([
                 ("kernel", Json.Str r.name);
                 ("device", Json.Str dev.Device.name);
                 ("config", Json.Str (Config.to_string cfg));
                 ("cycles", Json.Num b.Model.cycles);
                 ("us", Json.Num (b.Model.seconds *. 1e6));
                 ("bottleneck", Json.Str (Model.bottleneck b));
               ]
              @ cal_fields
              @
              match tr with
              | Some tr -> [ ("trace", Flexcl_util.Trace.to_json tr) ]
              | None -> [])
          in
          Cache.add t.predict_cache key result;
          Ok (Some false, result))

let handle_explore t body =
  let* fuel = fuel_of body in
  let* dev = device_of body in
  let* top = one (P.field_int body "top" ~default:10) in
  let* r = resolve_placed t body ~dev in
  let* a = analysis_cached t r ~max_steps:fuel in
  let space =
    Space.default ~total_work_items:(L.n_work_items a.Analysis.launch)
  in
  (* requests already run concurrently on the pool; the sweep itself
     stays sequential so pools never nest *)
  let ranked =
    Explore.exhaustive ~num_domains:0 dev a space
      (Explore.specialized_model_oracle dev)
  in
  if ranked = [] then Error [ Explore.empty_space_diag ]
  else
    let point (e : Explore.evaluated) =
      Json.Obj
        [
          ("config", Json.Str (Config.to_string e.Explore.config));
          ("cycles", Json.Num e.Explore.cycles);
          ("us", Json.Num (us dev e.Explore.cycles));
        ]
    in
    let points =
      List.filteri (fun i _ -> i < top) ranked |> List.map point
    in
    let greedy =
      match
        Heuristic.search_result ~num_domains:0 dev a space
          (Explore.specialized_model_oracle dev)
      with
      | Ok e -> point e
      | Error _ -> Json.Null
    in
    Ok
      ( None,
        Json.Obj
          [
            ("kernel", Json.Str r.name);
            ("device", Json.Str dev.Device.name);
            ("feasible", Json.int (List.length ranked));
            ("points", Json.Arr points);
            ("greedy", greedy);
          ] )

(* ------------------------------------------------------------------ *)
(* Pipeline: estimate a bundled multi-kernel graph at its default joint
   design point (optionally with a uniform FIFO-depth override), with
   the same content-addressed caching discipline as predict — the
   analyzed graph (per-stage profiling, the expensive part) and the
   finished response are both cached, and concurrent misses on one key
   collapse to a single computation. *)

let handle_pipeline t body =
  let* gname =
    let* g = one (P.field_str body "graph") in
    match g with
    | Some g -> Ok g
    | None ->
        Error
          (usage1 "field \"graph\" is required (%s)"
             (String.concat " | "
                (List.map
                   (fun (p : Pipelines.t) -> p.Pipelines.name)
                   Pipelines.all)))
  in
  let* p =
    match Pipelines.find gname with
    | Some p -> Ok p
    | None ->
        Error
          (usage1 "unknown pipeline %S (%s)" gname
             (String.concat " | "
                (List.map
                   (fun (p : Pipelines.t) -> p.Pipelines.name)
                   Pipelines.all)))
  in
  let* dev = device_of body in
  let* depth = one (P.field_int body "depth" ~default:0) in
  let* want_trace = one (P.field_bool body "trace" ~default:false) in
  if depth < 0 then Error (usage1 "field \"depth\" must be positive")
  else
    let key =
      Printf.sprintf "pipeline#%s#%s#%d%s" gname dev.Device.name depth
        (if want_trace then "#trace" else "")
    in
    with_single_flight t ("pipeline#" ^ key) (fun () ->
        match Cache.find t.predict_cache key with
        | Some result -> Ok (Some true, result)
        | None -> (
            let _, ga =
              Cache.find_or_add t.graph_cache gname (fun () ->
                  Graph.analyze (Pipelines.graph p))
            in
            let* g = ga in
            let j0 = Graph.default_joint g in
            let j =
              if depth = 0 then j0
              else
                {
                  j0 with
                  Graph.depths =
                    List.map (fun (c, _) -> (c, depth)) j0.Graph.depths;
                }
            in
            match Graph.estimate_result dev g j with
            | Error d -> Error [ d ]
            | Ok gb ->
                let result =
                  Json.Obj
                    ([
                       ("graph", Json.Str gname);
                       ("device", Json.Str dev.Device.name);
                       ("joint", Json.Str (Graph.joint_to_string j));
                       ( "stages",
                         Json.Arr
                           (List.map
                              (fun (s, (b : Model.breakdown)) ->
                                Json.Obj
                                  [
                                    ("stage", Json.Str s);
                                    ("cycles", Json.Num b.Model.cycles);
                                  ])
                              gb.Graph.per_stage) );
                       ("steady", Json.Num gb.Graph.steady);
                       ("fill", Json.Num gb.Graph.fill);
                       ("stall", Json.Num gb.Graph.stall);
                       ("cycles", Json.Num gb.Graph.cycles);
                       ("us", Json.Num (gb.Graph.seconds *. 1e6));
                       ("bottleneck", Json.Str (Graph.bottleneck gb));
                     ]
                    @
                    if not want_trace then []
                    else
                      let _, tr = Graph.explain dev g j in
                      [ ("trace", Flexcl_util.Trace.to_json tr) ])
                in
                Cache.add t.predict_cache key result;
                Ok (Some false, result)))

(* ------------------------------------------------------------------ *)
(* Stats *)

let cache_stats_json c =
  let s = Cache.stats c in
  let total = s.Cache.hits + s.Cache.misses in
  Json.Obj
    [
      ("hits", Json.int s.Cache.hits);
      ("misses", Json.int s.Cache.misses);
      ("evictions", Json.int s.Cache.evictions);
      ("size", Json.int s.Cache.size);
      ("capacity", Json.int s.Cache.capacity);
      ( "hit_rate",
        Json.Num
          (if total = 0 then 0.0
           else float_of_int s.Cache.hits /. float_of_int total) );
    ]

let stats_json t =
  Metrics.set_gauge t.metrics "uptime_ms"
    ((Unix.gettimeofday () -. t.started_at) *. 1000.0);
  Metrics.set_gauge t.metrics "inflight" (float_of_int (inflight t));
  let counters =
    List.map (fun (k, v) -> (k, Json.int v)) (Metrics.counters t.metrics)
  in
  let gauges =
    List.map (fun (k, v) -> (k, Json.Num v)) (Metrics.gauges t.metrics)
  in
  let summaries =
    List.map
      (fun (k, (s : Metrics.summary)) ->
        ( k,
          Json.Obj
            [
              ("count", Json.int s.Metrics.count);
              ("mean", Json.Num s.Metrics.mean);
              ("max", Json.Num s.Metrics.max);
              ("p50", Json.Num s.Metrics.p50);
              ("p95", Json.Num s.Metrics.p95);
              ("p99", Json.Num s.Metrics.p99);
            ] ))
      (Metrics.summaries t.metrics)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("latency_us", Json.Obj summaries);
      ( "cache",
        Json.Obj
          [
            ("parse", cache_stats_json t.parse_cache);
            ("analysis", cache_stats_json t.analysis_cache);
            ("predict", cache_stats_json t.predict_cache);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let known_kinds =
  [ "parse"; "analyze"; "predict"; "explore"; "pipeline"; "stats"; "shutdown" ]

let dispatch t (req : P.request) =
  match req.P.kind with
  | "parse" -> handle_parse t req.P.body
  | "analyze" -> handle_analyze t req.P.body
  | "predict" -> handle_predict t req.P.body
  | "explore" -> handle_explore t req.P.body
  | "pipeline" -> handle_pipeline t req.P.body
  | "stats" -> Ok (None, stats_json t)
  | "shutdown" ->
      request_shutdown t;
      Ok (None, Json.Obj [ ("draining", Json.Bool true) ])
  | other ->
      Error
        (usage1 "unknown request kind %S (parse | analyze | predict | explore \
                 | pipeline | stats | shutdown)"
           other)

let now_s () = Unix.gettimeofday ()

(* The wall-clock budget: [deadline_ms] counted from the request's
   arrival, as an absolute expiry instant. Type errors are left to
   {!fuel_of}, which reports them with the kind-specific handler. *)
let wall_deadline body ~arrival =
  match Json.member "deadline_ms" body with
  | Some v -> (
      match Json.to_float v with
      | Some ms when ms > 0.0 && Float.is_finite ms ->
          Some (arrival +. (ms /. 1000.0))
      | _ -> None)
  | None -> None

let deadline_response t ~id ~kind ~metric_kind ~stage =
  Metrics.incr t.metrics "deadline_expired";
  Metrics.incr t.metrics (Printf.sprintf "requests.%s.error" metric_kind);
  P.error_response ~id ~kind:(Json.Str kind)
    [
      Diag.error Diag.Deadline_expired
        "request \"deadline_ms\" budget exhausted before %s" stage;
    ]

let handle_value ?arrival t v =
  let t0 = now_s () in
  let arrival = Option.value arrival ~default:t0 in
  match P.request_of_value v with
  | Error d ->
      Metrics.incr t.metrics "requests.malformed";
      let id =
        Option.value (Json.member "id" v) ~default:Json.Null
      in
      let kind = Option.value (Json.member "kind" v) ~default:Json.Null in
      P.error_response ~id ~kind [ d ]
  | Ok req ->
      (* chaos-only: raise past every guard below, so the worker domain
         running this request genuinely dies (and supervision answers) *)
      if t.chaos && req.P.kind = "panic" then raise Injected_fault;
      let metric_kind =
        if List.mem req.P.kind known_kinds then req.P.kind else "unknown"
      in
      let expired =
        match wall_deadline req.P.body ~arrival with
        | Some d -> now_s () > d
        | None -> false
      in
      let resp =
        if expired then
          deadline_response t ~id:req.P.id ~kind:req.P.kind ~metric_kind
            ~stage:"compute started"
        else begin
          let outcome =
            (* the last line of defense: a handler bug must surface as an
               E-INTERNAL response, never as a dead server *)
            try dispatch t req
            with exn -> Error [ Analysis.diag_of_exn exn ]
          in
          match outcome with
          | Ok (cached, result) ->
              Metrics.incr t.metrics
                (Printf.sprintf "requests.%s.ok" metric_kind);
              P.ok_response ~id:req.P.id ~kind:req.P.kind ?cached result
          | Error diags ->
              Metrics.incr t.metrics
                (Printf.sprintf "requests.%s.error" metric_kind);
              P.error_response ~id:req.P.id ~kind:(Json.Str req.P.kind) diags
        end
      in
      let lat_us = (now_s () -. t0) *. 1e6 in
      Metrics.observe t.metrics metric_kind lat_us;
      Mutex.lock t.adm_mutex;
      t.ema_us <-
        (if t.ema_us = 0.0 then lat_us
         else (0.9 *. t.ema_us) +. (0.1 *. lat_us));
      Mutex.unlock t.adm_mutex;
      resp

(* ------------------------------------------------------------------ *)
(* Admission: every line becomes either an immediate response (malformed,
   shed, expired, draining) or admitted work for the compute stage. *)

type plan =
  | Immediate of Json.t
  | Work of Json.t * bool  (* parsed request, holds-an-admission-slot *)

(* stats/shutdown answer from state the server already holds; shedding
   them under load would blind the operator exactly when load matters *)
let admission_exempt = [ "stats"; "shutdown" ]

let id_kind_of_value v =
  ( Option.value (Json.member "id" v) ~default:Json.Null,
    Option.value (Json.member "kind" v) ~default:Json.Null )

let shutdown_plan t line =
  Metrics.incr t.metrics "rejected_shutdown";
  let id, kind =
    match Json.of_string line with
    | Ok v -> id_kind_of_value v
    | Error _ -> (Json.Null, Json.Null)
  in
  Immediate
    (P.error_response ~id ~kind
       [
         Diag.error Diag.Shutting_down
           "server is draining; no new work is accepted";
       ])

let plan_line t ~arrival line =
  if draining t then shutdown_plan t line
  else
    match Json.of_string line with
    | Error msg ->
        Metrics.incr t.metrics "requests.malformed";
        Immediate
          (P.error_response ~id:Json.Null ~kind:Json.Null
             [ P.usage "malformed JSON: %s" msg ])
    | Ok v -> (
        match P.request_of_value v with
        | Error _ ->
            (* handle_value reproduces the decode error response *)
            Work (v, false)
        | Ok req ->
            if List.mem req.P.kind admission_exempt then Work (v, false)
            else
              let metric_kind =
                if List.mem req.P.kind known_kinds then req.P.kind
                else "unknown"
              in
              let expired =
                match wall_deadline req.P.body ~arrival with
                | Some d -> now_s () > d
                | None -> false
              in
              if expired then
                Immediate
                  (deadline_response t ~id:req.P.id ~kind:req.P.kind
                     ~metric_kind ~stage:"admission")
              else
                let ok, depth = try_admit t in
                if ok then Work (v, true)
                else begin
                  Metrics.incr t.metrics "shed";
                  Immediate
                    (P.error_response
                       ~retry_after_ms:(retry_after_ms t ~depth)
                       ~id:req.P.id ~kind:(Json.Str req.P.kind)
                       [
                         Diag.error Diag.Overloaded
                           "server at max_inflight=%d; request shed"
                           t.max_inflight;
                       ])
                end)

let handle_line ?arrival t line =
  let arrival = Option.value arrival ~default:(now_s ()) in
  match plan_line t ~arrival line with
  | Immediate resp -> Json.to_string resp
  | Work (v, admitted) ->
      Fun.protect
        ~finally:(fun () -> if admitted then release t 1)
        (fun () -> Json.to_string (handle_value ~arrival t v))

(* ------------------------------------------------------------------ *)
(* The NDJSON loop *)

module Reader = struct
  (* Incremental, length-bounded line framing. A line longer than
     [max_line] is discarded up to its terminating newline and reported
     as [Oversized] (the stream then resyncs); an unterminated tail at
     EOF is [Truncated]. Both earn an E-FRAME response upstream. *)
  type event =
    | Line of string
    | Oversized of int  (* bytes discarded from the overlong line *)
    | Truncated of int  (* bytes of unterminated tail at EOF *)
    | Eof

  type t = {
    fd : Unix.file_descr;
    max_line : int;
    mutable buf : string;
    mutable pos : int;
    mutable eof : bool;
    mutable discarding : int;  (* > 0: inside an overlong line *)
  }

  let chunk = 65536

  let create ?(max_line = max_int) fd =
    { fd; max_line; buf = ""; pos = 0; eof = false; discarding = 0 }

  (* blocking read; EINTR retries, any other error ends the stream *)
  let refill t =
    let b = Bytes.create chunk in
    let rec read_retry () =
      try Unix.read t.fd b 0 chunk with
      | Unix.Unix_error (Unix.EINTR, _, _) -> read_retry ()
      | Unix.Unix_error (_, _, _) -> 0
    in
    let n = read_retry () in
    if n = 0 then t.eof <- true
    else begin
      let keep = String.sub t.buf t.pos (String.length t.buf - t.pos) in
      t.buf <- keep ^ Bytes.sub_string b 0 n;
      t.pos <- 0
    end

  (* next event derivable from the buffer alone; [None] needs more input *)
  let extract t =
    let len = String.length t.buf in
    if t.discarding > 0 then
      match String.index_from_opt t.buf t.pos '\n' with
      | Some i ->
          let dropped = t.discarding + (i - t.pos) in
          t.pos <- i + 1;
          t.discarding <- 0;
          Some (Oversized dropped)
      | None ->
          t.discarding <- t.discarding + (len - t.pos);
          t.buf <- "";
          t.pos <- 0;
          if t.eof then begin
            let dropped = t.discarding in
            t.discarding <- 0;
            Some (Oversized dropped)
          end
          else None
    else
      match String.index_from_opt t.buf t.pos '\n' with
      | Some i ->
          let n = i - t.pos in
          if n > t.max_line then begin
            t.pos <- i + 1;
            Some (Oversized n)
          end
          else begin
            let line = String.sub t.buf t.pos n in
            t.pos <- i + 1;
            Some (Line line)
          end
      | None ->
          let avail = len - t.pos in
          if avail > t.max_line then begin
            t.discarding <- avail;
            t.buf <- "";
            t.pos <- 0;
            None
          end
          else if t.eof then
            if avail > 0 then begin
              t.pos <- len;
              Some (Truncated avail)
            end
            else Some Eof
          else None

  let readable t timeout =
    try
      let r, _, _ = Unix.select [ t.fd ] [] [] timeout in
      r <> []
    with
    | Unix.Unix_error (Unix.EINTR, _, _) -> false
    | Unix.Unix_error (_, _, _) ->
        (* fd force-closed under us during drain: treat as end of stream *)
        t.eof <- true;
        true

  (* [block = true] waits for input, polling [stop] roughly every 200ms;
     [None] means [stop] fired (blocking) or nothing is buffered
     (non-blocking). At EOF the result is always [Some Eof]-terminated. *)
  let rec next ?(stop = fun () -> false) ~block t =
    match extract t with
    | Some ev -> Some ev
    | None ->
        if t.eof then next ~stop ~block t (* extract yields Some at eof *)
        else if block then
          if stop () then None
          else begin
            if readable t 0.2 then refill t;
            next ~stop ~block t
          end
        else if readable t 0.0 then begin
          refill t;
          next ~stop ~block t
        end
        else None
end

let blank line = String.trim line = ""

let frame_response t msg =
  Metrics.incr t.metrics "requests.frame_error";
  P.error_response ~id:Json.Null ~kind:Json.Null
    [ Diag.error Diag.Frame_error "%s" msg ]

(* A framing event becomes at most one planned response; blank lines
   vanish. During drain, frame errors still answer E-FRAME (the payload
   never existed, so E-SHUTDOWN would misreport it as a valid request). *)
let plan_event t ~arrival ev =
  match ev with
  | Reader.Line line -> if blank line then None else Some (plan_line t ~arrival line)
  | Reader.Oversized n ->
      Some
        (Immediate
           (frame_response t
              (Printf.sprintf
                 "frame exceeds max_line_bytes=%d (%d bytes discarded)"
                 t.max_line_bytes n)))
  | Reader.Truncated n ->
      Some
        (Immediate
           (frame_response t
              (Printf.sprintf "stream ended mid-line (%d bytes unterminated)"
                 n)))
  | Reader.Eof -> None

(* One connection's request/response loop, shared by stdin serving and
   socket connection threads. Admitted work runs on the shared
   supervised [pool]; a worker panic answers E-INTERNAL for exactly the
   request that crashed it. Returns when the stream ends, the peer stops
   accepting responses, or the server drains. *)
let serve_loop t pool rdr out ~max_batch =
  let stop () = draining t in
  let write_all resps =
    try
      List.iter
        (fun r ->
          output_string out r;
          output_char out '\n')
        resps;
      flush out;
      true
    with Sys_error _ -> false
  in
  let crash_response v exn =
    Metrics.incr t.metrics "requests.crashed";
    let id, kind = id_kind_of_value v in
    Json.to_string
      (P.error_response ~id ~kind
         [
           Diag.error Diag.Internal_error
             "request handler crashed: %s (worker respawned; request \
              answered, not retried)"
             (Printexc.to_string exn);
         ])
  in
  (* execute one planned batch, preserving input order in the output *)
  let run_batch ~arrival planned =
    let works =
      List.filter_map (function Work (v, _) -> Some v | _ -> None) planned
    in
    let results =
      Pool.run_results pool
        (List.map (fun v () -> Json.to_string (handle_value ~arrival t v))
           works)
    in
    let admitted =
      List.length (List.filter (function Work (_, true) -> true | _ -> false)
                     planned)
    in
    if admitted > 0 then release t admitted;
    let rec merge planned results =
      match (planned, results) with
      | [], _ -> []
      | Immediate resp :: rest, results ->
          Json.to_string resp :: merge rest results
      | Work (v, _) :: rest, r :: results ->
          (match r with Ok s -> s | Error exn -> crash_response v exn)
          :: merge rest results
      | Work _ :: _, [] -> assert false (* one result per work slot *)
    in
    merge planned results
  in
  let rec loop () =
    match Reader.next ~stop ~block:true rdr with
    | None ->
        (* drain: requests already buffered are answered E-SHUTDOWN (via
           [plan_line], which sheds everything once draining), then the
           connection closes *)
        let rec flush_buffered acc =
          match Reader.next ~block:false rdr with
          | None | Some Reader.Eof -> List.rev acc
          | Some ev -> (
              match plan_event t ~arrival:(now_s ()) ev with
              | None -> flush_buffered acc
              | Some p -> flush_buffered (p :: acc))
        in
        ignore (write_all (run_batch ~arrival:(now_s ()) (flush_buffered [])))
    | Some Reader.Eof -> ()
    | Some first -> (
        let arrival = now_s () in
        let rec gather acc n =
          if n >= max_batch then List.rev acc
          else
            match Reader.next ~block:false rdr with
            | None | Some Reader.Eof -> List.rev acc
            | Some ev -> (
                match plan_event t ~arrival ev with
                | None -> gather acc n
                | Some p -> gather (p :: acc) (n + 1))
        in
        let planned =
          match plan_event t ~arrival first with
          | None -> gather [] 0
          | Some p -> gather [ p ] 1
        in
        if planned = [] then loop ()
        else if write_all (run_batch ~arrival planned) then loop ()
        else () (* peer gone: stop reading, admitted work already done *))
  in
  loop ()

let default_max_batch t = max 1 (4 * (t.num_domains + 1))

let ignore_sigpipe () =
  (* a peer that disconnects mid-response must cost an EPIPE write error
     on one connection, never the process *)
  if Sys.unix then
    try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore) with _ -> ()

let serve_fd t ?max_batch fd out =
  ignore_sigpipe ();
  let max_batch =
    match max_batch with Some n -> max 1 n | None -> default_max_batch t
  in
  Pool.with_pool ~num_domains:t.num_domains
    ~restart_budget:t.restart_budget
    ~on_restart:(fun _ -> Metrics.incr t.metrics "worker_restarts")
    (fun pool ->
      serve_loop t pool (Reader.create ~max_line:t.max_line_bytes fd) out
        ~max_batch)

(* ------------------------------------------------------------------ *)
(* Socket serving: concurrent accept, one reader thread per connection,
   one shared supervised pool, graceful drain. *)

type conn = {
  c_fd : Unix.file_descr;
  mutable c_thread : Thread.t option;
  mutable c_done : bool;
}

let serve_unix_socket ?(backlog = 64) t path =
  ignore_sigpipe ();
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  (match Unix.bind sock (Unix.ADDR_UNIX path) with
  | () -> ()
  | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e);
  Unix.listen sock backlog;
  (* the pool spawns only after the socket is live: a bind failure must
     fail fast, with no domains to tear down *)
  let pool =
    Pool.create ~num_domains:t.num_domains ~restart_budget:t.restart_budget
      ~on_restart:(fun _ -> Metrics.incr t.metrics "worker_restarts")
      ()
  in
  let max_batch = default_max_batch t in
  let conn_mutex = Mutex.create () in
  let conns = ref [] in
  let spawn_conn client =
    Metrics.incr t.metrics "connections";
    let c = { c_fd = client; c_thread = None; c_done = false } in
    Mutex.lock conn_mutex;
    conns := c :: !conns;
    Mutex.unlock conn_mutex;
    let th =
      Thread.create
        (fun () ->
          let out = Unix.out_channel_of_descr client in
          (try
             serve_loop t pool
               (Reader.create ~max_line:t.max_line_bytes client)
               out ~max_batch
           with _ -> ());
          (* closing the channel closes the connection fd *)
          (try close_out out with _ -> ());
          c.c_done <- true)
        ()
    in
    c.c_thread <- Some th
  in
  let accept_readable timeout =
    try
      let r, _, _ = Unix.select [ sock ] [] [] timeout in
      r <> []
    with Unix.Unix_error (Unix.EINTR, _, _) -> false
  in
  while not (draining t) do
    if accept_readable 0.2 then
      match Unix.accept sock with
      | client, _ -> spawn_conn client
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          (* transient accept failure (EMFILE and kin): back off, retry *)
          Thread.delay 0.05
  done;
  (* graceful drain: no new connections, in-flight requests finish,
     idle/buffered requests answer E-SHUTDOWN, then force-close *)
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let snapshot () =
    Mutex.lock conn_mutex;
    let cs = !conns in
    Mutex.unlock conn_mutex;
    cs
  in
  let deadline = now_s () +. (float_of_int t.drain_timeout_ms /. 1000.0) in
  let all_done () = List.for_all (fun c -> c.c_done) (snapshot ()) in
  while (not (all_done ())) && now_s () < deadline do
    Thread.delay 0.01
  done;
  (* stragglers: sever the transport so their blocked reads/writes fail
     and the connection loops unwind; computes in flight still finish *)
  List.iter
    (fun c ->
      if not c.c_done then
        try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
        with Unix.Unix_error _ -> ())
    (snapshot ());
  List.iter
    (fun c -> match c.c_thread with Some th -> Thread.join th | None -> ())
    (snapshot ());
  Pool.shutdown pool
