module Json = Flexcl_util.Json
module Diag = Flexcl_util.Diag
module Hash = Flexcl_util.Hash
module Metrics = Flexcl_util.Metrics
module Pool = Flexcl_util.Pool
module P = Protocol
module L = Flexcl_ir.Launch
module Analysis = Flexcl_core.Analysis
module Model = Flexcl_core.Model
module Config = Flexcl_core.Config
module Device = Flexcl_device.Device
module Space = Flexcl_dse.Space
module Explore = Flexcl_dse.Explore
module Heuristic = Flexcl_dse.Heuristic
module W = Flexcl_workloads.Workload
open Flexcl_opencl

let default_cache_capacity = 256

(* The interpreter profiles tens of millions of steps per second on
   commodity cores; 20k steps/ms is a deliberate underestimate so a
   deadline translated into fuel expires early rather than late. *)
let steps_per_ms = 20_000

type t = {
  num_domains : int;
  metrics : Metrics.t;
  parse_cache : (string, (Ast.kernel, Diag.t list) result) Cache.t;
  analysis_cache : (string, Analysis.t) Cache.t;
  predict_cache : (string, Json.t) Cache.t;
  (* single-flight registry: keys with a computation in progress.
     Duplicate requests racing on one key would otherwise all miss the
     cache and burn a core each on identical work — the exact pattern
     (one hot kernel, many clients) the server exists to amortize. *)
  sf_mutex : Mutex.t;
  sf_cond : Condition.t;
  sf_inflight : (string, unit) Hashtbl.t;
}

let create ?num_domains ?(cache_capacity = default_cache_capacity) () =
  let num_domains =
    match num_domains with
    | None -> Pool.default_num_domains ()
    | Some n ->
        if n < 0 then invalid_arg "Server.create: num_domains must be >= 0";
        n
  in
  if cache_capacity < 1 then
    invalid_arg "Server.create: cache_capacity must be >= 1";
  {
    num_domains;
    metrics = Metrics.create ();
    parse_cache = Cache.create ~capacity:cache_capacity ();
    analysis_cache = Cache.create ~capacity:cache_capacity ();
    predict_cache = Cache.create ~capacity:cache_capacity ();
    sf_mutex = Mutex.create ();
    sf_cond = Condition.create ();
    sf_inflight = Hashtbl.create 16;
  }

let num_domains t = t.num_domains

(* Run [f] as the sole flight for [key]: racing callers block until the
   owner lands, then take their own turn (and find the cache warm).
   Keys are namespaced per artifact, and a flight for "predict#k" may
   open a nested flight for "analysis#k'" — the acquisition order is
   always predict-then-analysis, so the registry cannot cycle. *)
let with_single_flight t key f =
  Mutex.lock t.sf_mutex;
  while Hashtbl.mem t.sf_inflight key do
    Condition.wait t.sf_cond t.sf_mutex
  done;
  Hashtbl.replace t.sf_inflight key ();
  Mutex.unlock t.sf_mutex;
  Fun.protect f ~finally:(fun () ->
      Mutex.lock t.sf_mutex;
      Hashtbl.remove t.sf_inflight key;
      Condition.broadcast t.sf_cond;
      Mutex.unlock t.sf_mutex)

(* ------------------------------------------------------------------ *)
(* Result plumbing: handlers accumulate [Diag.t list] errors. *)

let ( let* ) r f = match r with Ok v -> f v | Error ds -> Error ds
let one r = Result.map_error (fun d -> [ d ]) r
let usage1 fmt = Printf.ksprintf (fun s -> [ P.usage "%s" s ]) fmt

(* ------------------------------------------------------------------ *)
(* Launch synthesis (shared with bin/flexcl_cli.ml) *)

let launch_for_kernel (kernel : Ast.kernel) ~global ~wg ~buffer_size ~ints
    ~floats =
  let args =
    List.mapi
      (fun i (p : Ast.param) ->
        let name = p.Ast.p_name in
        match p.Ast.p_type with
        | Types.Ptr _ ->
            ( name,
              L.Buffer { length = buffer_size; init = L.Random_floats (i + 1) }
            )
        | Types.Scalar s when Types.is_float s ->
            let v = Option.value (List.assoc_opt name floats) ~default:1.0 in
            (name, L.Scalar (L.Float v))
        | _ ->
            let v =
              Option.value (List.assoc_opt name ints) ~default:buffer_size
            in
            (name, L.Scalar (L.Int (Int64.of_int v))))
      kernel.Ast.k_params
  in
  L.make_result ~global:(L.dim3 global) ~local:(L.dim3 wg) ~args

(* ------------------------------------------------------------------ *)
(* Request-field interpretation *)

let all_workloads = Flexcl_workloads.Rodinia.all @ Flexcl_workloads.Polybench.all

let device_of body =
  let* name = one (P.field_str body "device") in
  match name with
  | None | Some "virtex7" | Some "v7" -> Ok Device.virtex7
  | Some "ku060" -> Ok Device.ku060
  | Some other ->
      Error (usage1 "unknown device %S (virtex7 | ku060)" other)

let fuel_of body =
  let* steps = one (P.field_int body "max_steps" ~default:0) in
  let* deadline = one (P.field_num body "deadline_ms") in
  if steps < 0 then Error (usage1 "field \"max_steps\" must be positive")
  else if steps > 0 then Ok (Some steps)
  else
    match deadline with
    | None -> Ok None
    | Some ms when ms > 0.0 && Float.is_finite ms ->
        Ok (Some (max 1000 (int_of_float (ms *. float_of_int steps_per_ms))))
    | Some _ -> Error (usage1 "field \"deadline_ms\" must be positive")

let config_of body ~wg =
  let* pe = one (P.field_int body "pe" ~default:1) in
  let* cu = one (P.field_int body "cu" ~default:1) in
  let* pipe = one (P.field_bool body "pipeline" ~default:false) in
  let* mode = one (P.field_str body "mode") in
  let* comm_mode =
    match mode with
    | None | Some "pipeline" -> Ok Config.Pipeline_mode
    | Some "barrier" -> Ok Config.Barrier_mode
    | Some other ->
        Error (usage1 "unknown mode %S (barrier | pipeline)" other)
  in
  let cfg =
    { Config.wg_size = wg; n_pe = pe; n_cu = cu; wi_pipeline = pipe;
      comm_mode }
  in
  match Config.validate cfg with
  | [] -> Ok cfg
  | problems ->
      Error (List.map (fun p -> Diag.error Diag.Config_invalid "%s" p) problems)

(* ------------------------------------------------------------------ *)
(* Content-addressed artifacts *)

let parse_cached t ~src ~src_hash =
  let _hit, r =
    Cache.find_or_add t.parse_cache src_hash (fun () ->
        Parser.parse_kernel_result src)
  in
  r

type resolved = {
  name : string;
  src_hash : string;
  kernel : Ast.kernel;
  launch : L.t;
}

(* Fields that shape the synthesized launch of an inline kernel; a
   workload brings its own launch, so combining them is a user error,
   not something to ignore silently. *)
let launch_fields =
  [ "global"; "wg"; "buffer_size"; "int_args"; "float_args" ]

let resolve t body =
  let* source = one (P.field_str body "source") in
  let* workload = one (P.field_str body "workload") in
  match (source, workload) with
  | Some _, Some _ ->
      Error (usage1 "\"source\" and \"workload\" are mutually exclusive")
  | None, None ->
      Error (usage1 "one of \"source\" or \"workload\" is required")
  | Some src, None ->
      let src_hash = Hash.to_hex (Hash.string src) in
      let* kernel = parse_cached t ~src ~src_hash in
      let* global = one (P.field_int body "global" ~default:4096) in
      let* wg = one (P.field_int body "wg" ~default:64) in
      let* buffer_size = one (P.field_int body "buffer_size" ~default:4096) in
      let* ints = one (P.field_int_assoc body "int_args") in
      let* floats = one (P.field_float_assoc body "float_args") in
      let* launch =
        match launch_for_kernel kernel ~global ~wg ~buffer_size ~ints ~floats
        with
        | Ok l -> Ok l
        | Error problems ->
            Error
              (List.map
                 (fun p -> Diag.error Diag.Launch_invalid "%s" p)
                 problems)
      in
      Ok { name = kernel.Ast.k_name; src_hash; kernel; launch }
  | None, Some name -> (
      match List.find_opt (fun f -> Json.member f body <> None) launch_fields
      with
      | Some f ->
          Error
            (usage1 "field %S does not apply to a workload request" f)
      | None -> (
          match List.find_opt (fun w -> W.name w = name) all_workloads with
          | None ->
              Error
                (usage1 "unknown workload %S (see the workloads list)" name)
          | Some w ->
              let src_hash = Hash.to_hex (Hash.string w.W.source) in
              let* kernel = parse_cached t ~src:w.W.source ~src_hash in
              Ok { name; src_hash; kernel; launch = w.W.launch }))

let analysis_cached t r ~max_steps =
  let key =
    Printf.sprintf "%s#%s#wg%d" r.src_hash (L.fingerprint r.launch)
      (L.wg_size r.launch)
  in
  with_single_flight t ("analysis#" ^ key) (fun () ->
      match Cache.find t.analysis_cache key with
      | Some a -> Ok a
      | None -> (
          match Analysis.analyze_result ?max_steps r.kernel r.launch with
          | Ok a ->
              Cache.add t.analysis_cache key a;
              Ok a
          | Error ds -> Error ds))

(* ------------------------------------------------------------------ *)
(* Handlers: each returns [(cached option, result object)] or diags. *)

let us dev cycles = Device.cycles_to_seconds dev cycles *. 1e6

let handle_parse t body =
  let* source = one (P.field_str body "source") in
  let* workload = one (P.field_str body "workload") in
  let* src =
    match (source, workload) with
    | Some _, Some _ ->
        Error (usage1 "\"source\" and \"workload\" are mutually exclusive")
    | None, None ->
        Error (usage1 "one of \"source\" or \"workload\" is required")
    | Some src, None -> Ok src
    | None, Some name -> (
        match List.find_opt (fun w -> W.name w = name) all_workloads with
        | Some w -> Ok w.W.source
        | None ->
            Error (usage1 "unknown workload %S (see the workloads list)" name))
  in
  let src_hash = Hash.to_hex (Hash.string src) in
  let* kernel = parse_cached t ~src ~src_hash in
  let params =
    List.map
      (fun (p : Ast.param) ->
        Json.Obj
          [
            ("name", Json.Str p.Ast.p_name);
            ("type", Json.Str (Types.to_string p.Ast.p_type));
          ])
      kernel.Ast.k_params
  in
  Ok
    ( None,
      Json.Obj
        [
          ("kernel", Json.Str kernel.Ast.k_name);
          ("params", Json.Arr params);
          ("source_hash", Json.Str src_hash);
        ] )

let breakdown_json dev name cfg (b : Model.breakdown) =
  Json.Obj
    [
      ("kernel", Json.Str name);
      ("device", Json.Str dev.Device.name);
      ("config", Json.Str (Config.to_string cfg));
      ("ii_wi", Json.int b.Model.ii_wi);
      ("rec_mii", Json.int b.Model.rec_mii);
      ("res_mii", Json.int b.Model.res_mii);
      ("depth_pe", Json.int b.Model.depth_pe);
      ("l_pe", Json.Num b.Model.l_pe);
      ("n_pe_eff", Json.int b.Model.n_pe_eff);
      ("l_cu", Json.Num b.Model.l_cu);
      ("n_cu_eff", Json.int b.Model.n_cu_eff);
      ("l_comp_kernel", Json.Num b.Model.l_comp_kernel);
      ("l_mem_wi", Json.Num b.Model.l_mem_wi);
      ( "pattern_counts",
        Json.Obj
          (List.map
             (fun (p, c) -> (Flexcl_dram.Dram.pattern_name p, Json.Num c))
             b.Model.pattern_counts) );
      ("dsp_footprint", Json.int b.Model.dsp_footprint);
      ("cycles", Json.Num b.Model.cycles);
      ("us", Json.Num (b.Model.seconds *. 1e6));
      ("bottleneck", Json.Str (Model.bottleneck b));
    ]

let estimate_for ?(want_trace = false) t body ~resolved:r =
  let* fuel = fuel_of body in
  let* dev = device_of body in
  let* cfg = config_of body ~wg:(L.wg_size r.launch) in
  let* a = analysis_cached t r ~max_steps:fuel in
  if not (Model.feasible dev a cfg) then
    Error
      [
        Diag.error Diag.Config_invalid "design point %s exceeds %s resources"
          (Config.to_string cfg) dev.Device.name;
      ]
  else
    match Model.estimate_result dev a cfg with
    | Error d -> Error [ d ]
    | Ok b ->
        if not want_trace then Ok (dev, cfg, b, None)
        else (
          (* same validated inputs as the estimate, so explain cannot
             fail on anything the estimate did not *)
          match Model.explain dev a cfg with
          | _, tr -> Ok (dev, cfg, b, Some tr)
          | exception (Out_of_memory as e) -> raise e
          | exception exn -> Error [ Analysis.diag_of_exn exn ])

let handle_analyze t body =
  let* r = resolve t body in
  let* dev, cfg, b, _ = estimate_for t body ~resolved:r in
  Ok (None, breakdown_json dev r.name cfg b)

let predict_key ~resolved:r ~dev ~cfg =
  Printf.sprintf "%s#%s#%s#%s" r.src_hash (L.fingerprint r.launch)
    dev.Device.name (Config.to_string cfg)

let handle_predict t body =
  let* r = resolve t body in
  let* dev = device_of body in
  let* cfg = config_of body ~wg:(L.wg_size r.launch) in
  let* want_trace = one (P.field_bool body "trace" ~default:false) in
  if want_trace then Metrics.incr t.metrics "predict.trace";
  (* traced and untraced predictions are distinct cached artifacts: a
     plain predict must never pay for (or return) a trace *)
  let key =
    predict_key ~resolved:r ~dev ~cfg ^ if want_trace then "#trace" else ""
  in
  with_single_flight t ("predict#" ^ key) (fun () ->
      match Cache.find t.predict_cache key with
      | Some result -> Ok (Some true, result)
      | None ->
          let* _, _, b, tr = estimate_for ~want_trace t body ~resolved:r in
          let result =
            Json.Obj
              ([
                 ("kernel", Json.Str r.name);
                 ("device", Json.Str dev.Device.name);
                 ("config", Json.Str (Config.to_string cfg));
                 ("cycles", Json.Num b.Model.cycles);
                 ("us", Json.Num (b.Model.seconds *. 1e6));
                 ("bottleneck", Json.Str (Model.bottleneck b));
               ]
              @
              match tr with
              | Some tr -> [ ("trace", Flexcl_util.Trace.to_json tr) ]
              | None -> [])
          in
          Cache.add t.predict_cache key result;
          Ok (Some false, result))

let handle_explore t body =
  let* fuel = fuel_of body in
  let* dev = device_of body in
  let* top = one (P.field_int body "top" ~default:10) in
  let* r = resolve t body in
  let* a = analysis_cached t r ~max_steps:fuel in
  let space =
    Space.default ~total_work_items:(L.n_work_items a.Analysis.launch)
  in
  (* requests already run concurrently on the pool; the sweep itself
     stays sequential so pools never nest *)
  let ranked =
    Explore.exhaustive ~num_domains:0 dev a space
      (Explore.specialized_model_oracle dev)
  in
  if ranked = [] then Error [ Explore.empty_space_diag ]
  else
    let point (e : Explore.evaluated) =
      Json.Obj
        [
          ("config", Json.Str (Config.to_string e.Explore.config));
          ("cycles", Json.Num e.Explore.cycles);
          ("us", Json.Num (us dev e.Explore.cycles));
        ]
    in
    let points =
      List.filteri (fun i _ -> i < top) ranked |> List.map point
    in
    let greedy =
      match
        Heuristic.search_result ~num_domains:0 dev a space
          (Explore.specialized_model_oracle dev)
      with
      | Ok e -> point e
      | Error _ -> Json.Null
    in
    Ok
      ( None,
        Json.Obj
          [
            ("kernel", Json.Str r.name);
            ("device", Json.Str dev.Device.name);
            ("feasible", Json.int (List.length ranked));
            ("points", Json.Arr points);
            ("greedy", greedy);
          ] )

(* ------------------------------------------------------------------ *)
(* Stats *)

let cache_stats_json c =
  let s = Cache.stats c in
  let total = s.Cache.hits + s.Cache.misses in
  Json.Obj
    [
      ("hits", Json.int s.Cache.hits);
      ("misses", Json.int s.Cache.misses);
      ("evictions", Json.int s.Cache.evictions);
      ("size", Json.int s.Cache.size);
      ("capacity", Json.int s.Cache.capacity);
      ( "hit_rate",
        Json.Num
          (if total = 0 then 0.0
           else float_of_int s.Cache.hits /. float_of_int total) );
    ]

let stats_json t =
  let counters =
    List.map (fun (k, v) -> (k, Json.int v)) (Metrics.counters t.metrics)
  in
  let summaries =
    List.map
      (fun (k, (s : Metrics.summary)) ->
        ( k,
          Json.Obj
            [
              ("count", Json.int s.Metrics.count);
              ("mean", Json.Num s.Metrics.mean);
              ("max", Json.Num s.Metrics.max);
              ("p50", Json.Num s.Metrics.p50);
              ("p95", Json.Num s.Metrics.p95);
              ("p99", Json.Num s.Metrics.p99);
            ] ))
      (Metrics.summaries t.metrics)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("latency_us", Json.Obj summaries);
      ( "cache",
        Json.Obj
          [
            ("parse", cache_stats_json t.parse_cache);
            ("analysis", cache_stats_json t.analysis_cache);
            ("predict", cache_stats_json t.predict_cache);
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let known_kinds = [ "parse"; "analyze"; "predict"; "explore"; "stats" ]

let dispatch t (req : P.request) =
  match req.P.kind with
  | "parse" -> handle_parse t req.P.body
  | "analyze" -> handle_analyze t req.P.body
  | "predict" -> handle_predict t req.P.body
  | "explore" -> handle_explore t req.P.body
  | "stats" -> Ok (None, stats_json t)
  | other ->
      Error
        (usage1 "unknown request kind %S (parse | analyze | predict | explore \
                 | stats)"
           other)

let now_us () = Unix.gettimeofday () *. 1e6

let handle_value t v =
  let t0 = now_us () in
  match P.request_of_value v with
  | Error d ->
      Metrics.incr t.metrics "requests.malformed";
      let id =
        Option.value (Json.member "id" v) ~default:Json.Null
      in
      let kind = Option.value (Json.member "kind" v) ~default:Json.Null in
      P.error_response ~id ~kind [ d ]
  | Ok req ->
      let outcome =
        (* the last line of defense: a handler bug must surface as an
           E-INTERNAL response, never as a dead server *)
        try dispatch t req
        with exn -> Error [ Analysis.diag_of_exn exn ]
      in
      let metric_kind =
        if List.mem req.P.kind known_kinds then req.P.kind else "unknown"
      in
      let resp =
        match outcome with
        | Ok (cached, result) ->
            Metrics.incr t.metrics
              (Printf.sprintf "requests.%s.ok" metric_kind);
            P.ok_response ~id:req.P.id ~kind:req.P.kind ?cached result
        | Error diags ->
            Metrics.incr t.metrics
              (Printf.sprintf "requests.%s.error" metric_kind);
            P.error_response ~id:req.P.id ~kind:(Json.Str req.P.kind) diags
      in
      Metrics.observe t.metrics metric_kind (now_us () -. t0);
      resp

let handle_line t line =
  match Json.of_string line with
  | Ok v -> Json.to_string (handle_value t v)
  | Error msg ->
      Metrics.incr t.metrics "requests.malformed";
      Json.to_string
        (P.error_response ~id:Json.Null ~kind:Json.Null
           [ P.usage "malformed JSON: %s" msg ])

(* ------------------------------------------------------------------ *)
(* The NDJSON loop *)

module Reader = struct
  type t = {
    fd : Unix.file_descr;
    mutable buf : string;
    mutable pos : int;
    mutable eof : bool;
  }

  let chunk = 65536

  let create fd = { fd; buf = ""; pos = 0; eof = false }

  let rec read_retry fd b =
    try Unix.read fd b 0 chunk
    with Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd b

  (* blocking; false once the fd is exhausted *)
  let refill t =
    let b = Bytes.create chunk in
    let n = read_retry t.fd b in
    if n = 0 then begin
      t.eof <- true;
      false
    end
    else begin
      let keep = String.sub t.buf t.pos (String.length t.buf - t.pos) in
      t.buf <- keep ^ Bytes.sub_string b 0 n;
      t.pos <- 0;
      true
    end

  let take_buffered_line t =
    match String.index_from_opt t.buf t.pos '\n' with
    | Some i ->
        let line = String.sub t.buf t.pos (i - t.pos) in
        t.pos <- i + 1;
        Some line
    | None -> None

  let rec read_line t =
    match take_buffered_line t with
    | Some l -> Some l
    | None ->
        if t.eof then
          (* a final line without the trailing newline still counts *)
          if t.pos < String.length t.buf then begin
            let rest =
              String.sub t.buf t.pos (String.length t.buf - t.pos)
            in
            t.pos <- String.length t.buf;
            Some rest
          end
          else None
        else begin
          ignore (refill t);
          read_line t
        end

  (* a line only if one is already available without blocking *)
  let rec poll_line t =
    match take_buffered_line t with
    | Some l -> Some l
    | None ->
        if t.eof then None
        else
          let readable, _, _ = Unix.select [ t.fd ] [] [] 0.0 in
          if readable = [] then None
          else if refill t then poll_line t
          else None
end

let blank line = String.trim line = ""

let serve_fd t ?max_batch fd out =
  let max_batch =
    match max_batch with
    | Some n -> max 1 n
    | None -> max 1 (4 * (t.num_domains + 1))
  in
  Pool.with_pool ~num_domains:t.num_domains (fun pool ->
      let rdr = Reader.create fd in
      let rec loop () =
        match Reader.read_line rdr with
        | None -> ()
        | Some first when blank first -> loop ()
        | Some first ->
            let rec gather acc n =
              if n >= max_batch then List.rev acc
              else
                match Reader.poll_line rdr with
                | Some l when blank l -> gather acc n
                | Some l -> gather (l :: acc) (n + 1)
                | None -> List.rev acc
            in
            let lines = gather [ first ] 1 in
            let responses =
              match lines with
              | [ line ] -> [ handle_line t line ]
              | lines ->
                  Pool.run pool
                    (List.map (fun line () -> handle_line t line) lines)
            in
            List.iter
              (fun r ->
                output_string out r;
                output_char out '\n')
              responses;
            flush out;
            loop ()
      in
      loop ())

let serve_unix_socket t path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let rec accept_loop () =
    let client, _ = Unix.accept sock in
    let out = Unix.out_channel_of_descr client in
    (try serve_fd t client out with _ -> ());
    (* closing the channel closes the shared socket fd *)
    (try close_out out with _ -> ());
    accept_loop ()
  in
  accept_loop ()
