(* LRU via a generation stamp per entry: [find]/[add] restamp with a
   monotone counter, eviction removes the minimum-stamp entry with a
   linear scan. Capacities are small (hundreds of artifacts), so the
   O(capacity) scan per eviction is noise next to the analyses being
   cached. *)

type ('k, 'v) t = {
  mutex : Mutex.t;
  tbl : ('k, 'v entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

and 'v entry = { mutable stamp : int; value : 'v }

let create ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    tbl = Hashtbl.create (min capacity 64);
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find t k =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | Some e ->
          e.stamp <- next_tick t;
          t.hits <- t.hits + 1;
          Some e.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (k, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t k v =
  locked t (fun () ->
      (match Hashtbl.find_opt t.tbl k with
      | Some _ -> Hashtbl.remove t.tbl k
      | None -> ());
      while Hashtbl.length t.tbl >= t.capacity do
        evict_lru t
      done;
      Hashtbl.replace t.tbl k { stamp = next_tick t; value = v })

let find_or_add t k produce =
  match find t k with
  | Some v -> (true, v)
  | None ->
      let v = produce () in
      add t k v;
      (false, v)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.tbl;
        capacity = t.capacity;
      })

let clear t = locked t (fun () -> Hashtbl.reset t.tbl)
