(** In-process serve client.

    Runs the same dispatch code as the NDJSON loop, without a process
    boundary — what the protocol tests, the fuzz harness and the
    [serve-load] bench drive. Responses are byte-identical to what
    [flexcl serve] writes for the same request, because both go through
    {!Server.handle_line}. *)

module Json = Flexcl_util.Json

type t

val create :
  ?num_domains:int ->
  ?cache_capacity:int ->
  ?model:Flexcl_learn.Learn.model ->
  unit ->
  t
(** A fresh server (own caches and metrics). Requests through the
    client run on the calling domain; [num_domains] only shapes the
    default batch bound if the underlying server is later used with
    {!Server.serve_fd}. [model] serves ["calibrated":true] predictions,
    exactly as [flexcl serve --model] would. *)

val server : t -> Server.t

val request : t -> Json.t -> Json.t
(** One request, decoded form. *)

val request_line : t -> string -> string
(** One request, wire form (no trailing newline on either side). *)

val stats : t -> Json.t
(** Shorthand for a [stats] request's result object. *)
