module Json = Flexcl_util.Json
module Diag = Flexcl_util.Diag

type request = { id : Json.t; kind : string; body : Json.t }

let usage fmt = Diag.error Diag.Usage_error fmt

let request_of_value v =
  match v with
  | Json.Obj _ -> (
      let id = Option.value (Json.member "id" v) ~default:Json.Null in
      match Json.member "kind" v with
      | Some (Json.Str kind) -> Ok { id; kind; body = v }
      | Some _ -> Error (usage "request field \"kind\" must be a string")
      | None -> Error (usage "request is missing the \"kind\" field"))
  | _ -> Error (usage "request must be a JSON object")

let diag_to_json (d : Diag.t) =
  let base =
    [
      ("code", Json.Str (Diag.code_name d.Diag.code));
      ("severity", Json.Str (Diag.severity_name d.Diag.severity));
      ("message", Json.Str d.Diag.message);
    ]
  in
  let file =
    match d.Diag.file with Some f -> [ ("file", Json.Str f) ] | None -> []
  in
  let span =
    match d.Diag.span with
    | Some { Diag.line; col } ->
        [ ("line", Json.int line); ("col", Json.int col) ]
    | None -> []
  in
  Json.Obj (base @ file @ span)

let ok_response ~id ~kind ?cached result =
  let cached =
    match cached with Some c -> [ ("cached", Json.Bool c) ] | None -> []
  in
  Json.Obj
    ([ ("id", id); ("ok", Json.Bool true); ("kind", Json.Str kind) ]
    @ cached
    @ [ ("result", result) ])

let error_response ?retry_after_ms ~id ~kind diags =
  let retry =
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", Json.int ms) ]
    | None -> []
  in
  Json.Obj
    ([
       ("id", id);
       ("ok", Json.Bool false);
       ("kind", kind);
       ("errors", Json.Arr (List.map diag_to_json diags));
     ]
    @ retry)

(* ------------------------------------------------------------------ *)
(* Field extraction *)

let field_int body name ~default =
  match Json.member name body with
  | None -> Ok default
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Error (usage "field %S must be an integer" name))

let field_bool body name ~default =
  match Json.member name body with
  | None -> Ok default
  | Some v -> (
      match Json.to_bool v with
      | Some b -> Ok b
      | None -> Error (usage "field %S must be a boolean" name))

let field_str body name =
  match Json.member name body with
  | None -> Ok None
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok (Some s)
      | None -> Error (usage "field %S must be a string" name))

let field_num body name =
  match Json.member name body with
  | None -> Ok None
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (usage "field %S must be a number" name))

let field_assoc to_elt what body name =
  match Json.member name body with
  | None -> Ok []
  | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
            match to_elt v with
            | Some x -> go ((k, x) :: acc) rest
            | None ->
                Error
                  (usage "field %S: entry %S must be %s" name k what))
      in
      go [] fields
  | Some _ -> Error (usage "field %S must be an object" name)

let field_int_assoc body name =
  field_assoc Json.to_int "an integer" body name

let field_float_assoc body name =
  field_assoc Json.to_float "a number" body name
