(** The serve wire protocol: newline-delimited JSON.

    One request per line in, one response per line out, in request
    order. A request is a JSON object with a ["kind"] field —
    ["parse"], ["analyze"], ["predict"], ["explore"], ["stats"] or
    ["shutdown"] — an optional ["id"] echoed verbatim into the
    response, and kind-specific fields (see README "The serve
    protocol"). A response is
    [{"id":…,"ok":true,"kind":…,"cached":…,"result":{…}}] or
    [{"id":…,"ok":false,"kind":…,"errors":[…]}] where each error is a
    structured {!Flexcl_util.Diag.t} rendered to JSON; a load-shed
    response additionally carries a top-level ["retry_after_ms"] hint.
    The server never answers anything else, whatever the input. *)

module Json = Flexcl_util.Json
module Diag = Flexcl_util.Diag

type request = {
  id : Json.t;  (** [Null] when the request carried no ["id"]. *)
  kind : string;
  body : Json.t;  (** the whole request object. *)
}

val request_of_value : Json.t -> (request, Diag.t) result
(** Requires an object with a string ["kind"]; any JSON [kind] value is
    accepted here — dispatch decides whether it names an endpoint. *)

val diag_to_json : Diag.t -> Json.t
(** [{"code":…,"severity":…,"message":…}] plus ["file"], ["line"],
    ["col"] when present. *)

val ok_response :
  id:Json.t -> kind:string -> ?cached:bool -> Json.t -> Json.t

val error_response :
  ?retry_after_ms:int -> id:Json.t -> kind:Json.t -> Diag.t list -> Json.t
(** [kind] is JSON (not a string) so a response to an undecodable
    request can carry [null]. [retry_after_ms] is attached to shed
    ([E-OVERLOAD]) responses as a client backoff hint. *)

(** {2 Field extraction} — total, defaulting accessors used by the
    dispatcher; a wrong type is a [Usage_error] diagnostic naming the
    field. *)

val field_int : Json.t -> string -> default:int -> (int, Diag.t) result
val field_bool : Json.t -> string -> default:bool -> (bool, Diag.t) result
val field_str : Json.t -> string -> (string option, Diag.t) result
val field_num : Json.t -> string -> (float option, Diag.t) result

val field_int_assoc :
  Json.t -> string -> ((string * int) list, Diag.t) result
(** An object-of-integers field, e.g. [{"n":512}]; missing means []. *)

val field_float_assoc :
  Json.t -> string -> ((string * float) list, Diag.t) result

val usage : ('a, unit, string, Diag.t) format4 -> 'a
(** A [Usage_error] diagnostic — the code every protocol-level fault
    reports. *)
