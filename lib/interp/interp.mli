open Flexcl_opencl
open Flexcl_ir

(** Reference interpreter and dynamic profiler for the OpenCL subset.

    Plays the role of the paper's CPU/GPU profiling run (§3.2): a few
    work-groups of the kernel are executed to collect loop trip counts
    and the global-memory access trace; it also produces functional
    results used to validate the workload kernels.

    Work-group barrier semantics: when every [barrier()] sits at the top
    level of the kernel body, the body is split at barriers and each
    phase runs for all work-items of the group before the next phase
    starts, so producer/consumer communication through [__local] memory
    is exact. Kernels with barriers nested in control flow are executed
    one work-item at a time (trip counts and traces remain usable; local
    data exchange between work-items is then approximate). *)

exception Runtime_error of string

exception Profile_budget_exceeded of int
(** Raised when a profiling run exhausts its step budget (the argument):
    the kernel is almost certainly non-terminating under the given
    launch. One step is one executed statement or loop iteration. *)

val default_max_steps : int
(** Fuel given to a profiling run unless overridden: 10 million steps,
    enough for every bundled workload with two orders of magnitude of
    slack, small enough to cut an infinite loop off in well under a
    second. *)

type value = I of int64 | F of float

val to_float : value -> float
val to_int : value -> int64

type access = {
  array : string;
  index : int;   (** element index within the buffer. *)
  kind : [ `Read | `Write ];
  elem_bits : int;  (** element width, for coalescing and bank mapping. *)
}

type profile = {
  avg_trips : (int * float) list;
      (** loop id -> mean iterations per loop entry. *)
  max_trips : (int * int) list;
  wi_traces : access list array;
      (** global-memory accesses per profiled work-item, program order. *)
  n_work_items_profiled : int;
  buffers : (string * value array) list;
      (** final buffer contents (global arguments only). *)
  pipe_counts : (string * (float * float)) list;
      (** per [pipe] parameter, (reads, writes) per profiled work-item.
          Reads yield a deterministic ramp (the i-th packet read is i). *)
}

val trip_of : profile -> int -> float
(** Average trip count of a loop id; 0. when the loop never ran. *)

val run :
  ?max_work_groups:int ->
  ?max_steps:int ->
  Ast.kernel ->
  Sema.info ->
  Launch.t ->
  profile
(** Execute up to [max_work_groups] (default 2) work-groups. Buffers are
    materialized from the launch description (deterministically seeded);
    indices out of bounds raise {!Runtime_error}. The whole run is
    bounded by [max_steps] fuel (default {!default_max_steps}); crossing
    it raises {!Profile_budget_exceeded}. *)

val run_all : ?max_steps:int -> Ast.kernel -> Sema.info -> Launch.t -> profile
(** Execute every work-group (functional validation of small launches). *)
