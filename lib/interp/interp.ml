open Flexcl_opencl
open Flexcl_ir

exception Runtime_error of string
exception Profile_budget_exceeded of int

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let default_max_steps = 10_000_000

type value = I of int64 | F of float

let to_float = function I i -> Int64.to_float i | F f -> f
let to_int = function I i -> i | F f -> Int64.of_float f

type access = {
  array : string;
  index : int;
  kind : [ `Read | `Write ];
  elem_bits : int;
}

type profile = {
  avg_trips : (int * float) list;
  max_trips : (int * int) list;
  wi_traces : access list array;
  n_work_items_profiled : int;
  buffers : (string * value array) list;
  pipe_counts : (string * (float * float)) list;
      (* pipe name -> (reads, writes) per profiled work-item *)
}

let trip_of p loop_id =
  Option.value (List.assoc_opt loop_id p.avg_trips) ~default:0.0

(* ------------------------------------------------------------------ *)
(* Loop numbering: must match Flexcl_ir.Lower (source pre-order). *)

let number_loops (body : Ast.stmt list) : (Ast.stmt * int) list =
  let counter = ref 0 in
  let table = ref [] in
  let rec walk stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s with
        | Ast.For (_, loop_body, _) | Ast.While (_, loop_body, _) ->
            table := (s, !counter) :: !table;
            incr counter;
            walk loop_body
        | Ast.If (_, t, e) ->
            walk t;
            walk e
        | Ast.Decl _ | Ast.Local_decl _ | Ast.Assign _ | Ast.Barrier
        | Ast.Return _ | Ast.Break | Ast.Continue | Ast.Expr_stmt _ ->
            ())
      stmts
  in
  walk body;
  !table

let loop_id table s =
  match List.find_opt (fun (s', _) -> s' == s) table with
  | Some (_, id) -> id
  | None -> err "internal: unnumbered loop"

(* ------------------------------------------------------------------ *)
(* Buffers *)

let elem_scalar ty =
  match Types.elem ty with
  | Types.Scalar s -> s
  | t -> err "unsupported buffer element type %s" (Types.to_string t)

let materialize_buffer name ty (init : Launch.buffer_init) length =
  let s = elem_scalar ty in
  let is_int = Types.is_integer s in
  let mk f = Array.init length f in
  ignore name;
  match init with
  | Launch.Zeros -> mk (fun _ -> if is_int then I 0L else F 0.0)
  | Launch.Ramp ->
      mk (fun i -> if is_int then I (Int64.of_int i) else F (float_of_int i))
  | Launch.Const_init c ->
      mk (fun _ -> if is_int then I (Int64.of_float c) else F c)
  | Launch.Random_floats seed ->
      let rng = Flexcl_util.Prng.create seed in
      mk (fun _ ->
          let x = Flexcl_util.Prng.float rng 1.0 in
          if is_int then I (Int64.of_float (x *. 100.0)) else F x)
  | Launch.Random_ints (seed, bound) ->
      let rng = Flexcl_util.Prng.create seed in
      mk (fun _ ->
          let x = Flexcl_util.Prng.int rng (max 1 bound) in
          if is_int then I (Int64.of_int x) else F (float_of_int x))

(* ------------------------------------------------------------------ *)
(* Execution state *)

type binding = Scalar of value | Arr of value array

type wi_state = {
  env : (string, binding) Hashtbl.t;
  mutable trace : access list;  (* reversed *)
  gid : Launch.dim3;
  lid : Launch.dim3;
  grp : Launch.dim3;
}

type exec_ctx = {
  kernel : Ast.kernel;
  info : Sema.info;
  launch : Launch.t;
  loop_table : (Ast.stmt * int) list;
  globals : (string, value array) Hashtbl.t;
  wg_locals : (string, value array) Hashtbl.t;  (* cleared per work-group *)
  trip_sum : (int, int) Hashtbl.t;    (* loop id -> total iterations *)
  trip_entries : (int, int) Hashtbl.t;
  trip_max : (int, int) Hashtbl.t;
  pipe_reads : (string, int) Hashtbl.t;   (* pipe name -> packets read *)
  pipe_writes : (string, int) Hashtbl.t;  (* pipe name -> packets written *)
  mutable cur_loop_trip : int;        (* scratch *)
  max_steps : int;                    (* fuel budget for the whole profile *)
  mutable fuel : int;                 (* steps remaining *)
}

(* One unit of fuel per executed statement and per loop iteration, so
   non-terminating kernels (even with empty loop bodies) are cut off. *)
let spend ctx =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel < 0 then raise (Profile_budget_exceeded ctx.max_steps)

exception Break_exc
exception Continue_exc
exception Return_exc

let special_float_constants =
  [ ("INFINITY", infinity); ("FLT_MAX", 3.402823e38); ("FLT_MIN", 1.175494e-38) ]

let special_int_constants =
  [
    ("CLK_LOCAL_MEM_FENCE", 1L);
    ("CLK_GLOBAL_MEM_FENCE", 2L);
    ("INT_MAX", 2147483647L);
    ("INT_MIN", -2147483648L);
  ]

let pick (d : Launch.dim3) dim =
  match dim with 0 -> d.Launch.x | 1 -> d.Launch.y | 2 -> d.Launch.z | _ -> 1

let is_float_scalar ty =
  match ty with Types.Scalar s -> Types.is_float s | _ -> false

let var_type ctx v =
  match Hashtbl.find_opt ctx.info.Sema.var_types v with
  | Some t -> t
  | None -> err "unknown variable %s at runtime" v

let elem_bits_of ctx arr = Types.scalar_bits (elem_scalar (var_type ctx arr))

let lookup_array _ctx wi arr =
  match Hashtbl.find_opt wi.env arr with
  | Some (Arr a) -> a
  | Some (Scalar _) -> err "%s is not an array" arr
  | None -> err "array %s not bound" arr

let is_global_space ctx arr =
  match Types.addr_space_of (var_type ctx arr) with
  | Some (Types.Global | Types.Constant) -> true
  | Some _ | None -> false

(* Linearized element index for a (possibly multi-dim) access. *)
let rec inner_sizes ty n =
  if n = 0 then []
  else
    match ty with
    | Types.Array (inner, _) | Types.Ptr (_, inner) ->
        let this =
          match inner with Types.Array (_, d) -> d | _ -> 1
        in
        this :: inner_sizes inner (n - 1)
    | _ -> [ 1 ]

let linear_index ctx arr (idx_values : int list) =
  match idx_values with
  | [ i ] -> i
  | _ ->
      let ty = var_type ctx arr in
      let dims = inner_sizes ty (List.length idx_values - 1) in
      let rec combine acc rest dims =
        match (rest, dims) with
        | [], _ -> acc
        | i :: rest, d :: ds -> combine ((acc * d) + i) rest ds
        | i :: rest, [] -> combine (acc + i) rest []
      in
      (match idx_values with
      | first :: rest -> combine first rest dims
      | [] -> 0)

(* ------------------------------------------------------------------ *)
(* Expression evaluation *)

let truthy = function I i -> i <> 0L | F f -> f <> 0.0

let int_binop op a b =
  match op with
  | Ast.Add -> Int64.add a b
  | Ast.Sub -> Int64.sub a b
  | Ast.Mul -> Int64.mul a b
  | Ast.Div -> if b = 0L then err "integer division by zero" else Int64.div a b
  | Ast.Mod -> if b = 0L then err "integer modulo by zero" else Int64.rem a b
  | Ast.Band -> Int64.logand a b
  | Ast.Bor -> Int64.logor a b
  | Ast.Bxor -> Int64.logxor a b
  | Ast.Shl -> Int64.shift_left a (Int64.to_int b)
  | Ast.Shr -> Int64.shift_right a (Int64.to_int b)
  | Ast.Land | Ast.Lor | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      assert false

let float_binop op a b =
  match op with
  | Ast.Add -> a +. b
  | Ast.Sub -> a -. b
  | Ast.Mul -> a *. b
  | Ast.Div -> a /. b
  | _ -> assert false

let rec eval ctx wi (e : Ast.expr) : value =
  match e with
  | Ast.Int_lit i -> I i
  | Ast.Float_lit f -> F f
  | Ast.Var v -> (
      match Hashtbl.find_opt wi.env v with
      | Some (Scalar value) -> value
      | Some (Arr _) -> err "array %s used as scalar" v
      | None -> (
          match List.assoc_opt v special_int_constants with
          | Some i -> I i
          | None -> (
              match List.assoc_opt v special_float_constants with
              | Some f -> F f
              | None -> err "variable %s is unbound" v)))
  | Ast.Cast (ty, a) ->
      let v = eval ctx wi a in
      if is_float_scalar ty then F (to_float v) else I (to_int v)
  | Ast.Unop (Ast.Neg, a) -> (
      match eval ctx wi a with I i -> I (Int64.neg i) | F f -> F (-.f))
  | Ast.Unop (Ast.Bnot, a) -> I (Int64.lognot (to_int (eval ctx wi a)))
  | Ast.Unop (Ast.Lnot, a) -> I (if truthy (eval ctx wi a) then 0L else 1L)
  | Ast.Ternary (c, a, b) ->
      if truthy (eval ctx wi c) then eval ctx wi a else eval ctx wi b
  | Ast.Binop (op, a, b) -> eval_binop ctx wi op a b
  | Ast.Index (Ast.Var arr, idxs) ->
      let ivals = List.map (fun i -> Int64.to_int (to_int (eval ctx wi i))) idxs in
      let buf = lookup_array ctx wi arr in
      let i = linear_index ctx arr ivals in
      if i < 0 || i >= Array.length buf then
        err "out-of-bounds read %s[%d] (length %d)" arr i (Array.length buf);
      if is_global_space ctx arr then
        wi.trace <-
          { array = arr; index = i; kind = `Read; elem_bits = elem_bits_of ctx arr }
          :: wi.trace;
      buf.(i)
  | Ast.Index _ -> err "unsupported indexed expression"
  | Ast.Call (f, args) -> eval_call ctx wi f args

and eval_binop ctx wi op a b =
  let bool_ c = I (if c then 1L else 0L) in
  match op with
  | Ast.Land -> bool_ (truthy (eval ctx wi a) && truthy (eval ctx wi b))
  | Ast.Lor -> bool_ (truthy (eval ctx wi a) || truthy (eval ctx wi b))
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
      let va = eval ctx wi a and vb = eval ctx wi b in
      let cmp =
        match (va, vb) with
        | I x, I y -> compare x y
        | _, _ -> compare (to_float va) (to_float vb)
      in
      match op with
      | Ast.Eq -> bool_ (cmp = 0)
      | Ast.Ne -> bool_ (cmp <> 0)
      | Ast.Lt -> bool_ (cmp < 0)
      | Ast.Le -> bool_ (cmp <= 0)
      | Ast.Gt -> bool_ (cmp > 0)
      | Ast.Ge -> bool_ (cmp >= 0)
      | _ -> assert false)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor | Ast.Shl | Ast.Shr -> (
      let va = eval ctx wi a and vb = eval ctx wi b in
      match (va, vb) with
      | I x, I y -> I (int_binop op x y)
      | _, _ -> (
          match op with
          | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
              F (float_binop op (to_float va) (to_float vb))
          | Ast.Mod -> F (Float.rem (to_float va) (to_float vb))
          | _ -> I (int_binop op (to_int va) (to_int vb))))

and eval_call ctx wi f args =
  match Builtins.find f with
  | None -> err "call to unknown function %s" f
  | Some Builtins.Pipe_read -> (
      (* pipes carry no launch data; reads yield a deterministic ramp
         (the i-th packet read from a pipe is i), mirroring Launch.Ramp *)
      match args with
      | [ Ast.Var p ] -> (
          let n = Option.value (Hashtbl.find_opt ctx.pipe_reads p) ~default:0 in
          Hashtbl.replace ctx.pipe_reads p (n + 1);
          match var_type ctx p with
          | Types.Pipe s when Types.is_integer s -> I (Int64.of_int n)
          | Types.Pipe _ -> F (float_of_int n)
          | t -> err "read_pipe: %s has type %s, not pipe" p (Types.to_string t))
      | _ -> err "read_pipe: argument must name a pipe parameter")
  | Some Builtins.Pipe_write -> (
      match args with
      | [ Ast.Var p; payload ] ->
          ignore (eval ctx wi payload);
          let n = Option.value (Hashtbl.find_opt ctx.pipe_writes p) ~default:0 in
          Hashtbl.replace ctx.pipe_writes p (n + 1);
          I 1L (* success status *)
      | _ -> err "write_pipe: first argument must name a pipe parameter")
  | Some b -> (
      let vs = List.map (eval ctx wi) args in
      match (b, vs) with
      | Builtins.Wi fn, [ d ] -> (
          let dim = Int64.to_int (to_int d) in
          let i v = I (Int64.of_int v) in
          match fn with
          | Builtins.Get_global_id -> i (pick wi.gid dim)
          | Builtins.Get_local_id -> i (pick wi.lid dim)
          | Builtins.Get_group_id -> i (pick wi.grp dim)
          | Builtins.Get_global_size -> i (pick ctx.launch.Launch.global dim)
          | Builtins.Get_local_size -> i (pick ctx.launch.Launch.local dim)
          | Builtins.Get_num_groups ->
              i (pick ctx.launch.Launch.global dim / pick ctx.launch.Launch.local dim))
      | Builtins.Math1 m, [ v ] -> (
          let x = to_float v in
          match m with
          | Builtins.Sqrt -> F (sqrt x)
          | Builtins.Rsqrt -> F (1.0 /. sqrt x)
          | Builtins.Exp -> F (exp x)
          | Builtins.Exp2 -> F (Float.exp2 x)
          | Builtins.Log -> F (log x)
          | Builtins.Log2 -> F (Float.log2 x)
          | Builtins.Sin -> F (sin x)
          | Builtins.Cos -> F (cos x)
          | Builtins.Tan -> F (tan x)
          | Builtins.Atan -> F (atan x)
          | Builtins.Fabs -> F (Float.abs x)
          | Builtins.Floor -> F (Float.floor x)
          | Builtins.Ceil -> F (Float.ceil x)
          | Builtins.Round -> F (Float.round x))
      | Builtins.Math2 m, [ va; vb ] -> (
          match m with
          | Builtins.Max | Builtins.Min -> (
              let keep_max = m = Builtins.Max in
              match (va, vb) with
              | I x, I y -> I (if (x > y) = keep_max then x else y)
              | _, _ ->
                  let x = to_float va and y = to_float vb in
                  F (if (x > y) = keep_max then x else y))
          | Builtins.Fmax -> F (Float.max (to_float va) (to_float vb))
          | Builtins.Fmin -> F (Float.min (to_float va) (to_float vb))
          | Builtins.Pow -> F (Float.pow (to_float va) (to_float vb))
          | Builtins.Fmod -> F (Float.rem (to_float va) (to_float vb))
          | Builtins.Atan2 -> F (Float.atan2 (to_float va) (to_float vb))
          | Builtins.Hypot -> F (Float.hypot (to_float va) (to_float vb)))
      | Builtins.Math3 m, [ va; vb; vc ] -> (
          match m with
          | Builtins.Mad | Builtins.Fma ->
              F ((to_float va *. to_float vb) +. to_float vc)
          | Builtins.Clamp ->
              F (Float.min (Float.max (to_float va) (to_float vb)) (to_float vc))
          | Builtins.Mix ->
              let a = to_float va and b = to_float vb and c = to_float vc in
              F (a +. ((b -. a) *. c)))
      | Builtins.Abs, [ v ] -> I (Int64.abs (to_int v))
      | (Builtins.Wi _ | Builtins.Math1 _ | Builtins.Math2 _ | Builtins.Math3 _
        | Builtins.Abs | Builtins.Pipe_read | Builtins.Pipe_write), _ ->
          err "%s: wrong number of arguments" f)

(* ------------------------------------------------------------------ *)
(* Statement execution *)

let default_value ty = if is_float_scalar ty then F 0.0 else I 0L

let private_array_length ty =
  let rec total = function
    | Types.Array (inner, n) -> n * total inner
    | _ -> 1
  in
  total ty

let rec exec_stmt ctx wi (s : Ast.stmt) : unit =
  spend ctx;
  match s with
  | Ast.Decl (ty, v, init) -> (
      match ty with
      | Types.Array _ ->
          let len = private_array_length ty in
          let elem = elem_scalar ty in
          let zero = if Types.is_integer elem then I 0L else F 0.0 in
          Hashtbl.replace wi.env v (Arr (Array.make len zero))
      | _ ->
          let value =
            match init with
            | Some e ->
                let raw = eval ctx wi e in
                if is_float_scalar ty then F (to_float raw) else I (to_int raw)
            | None -> default_value ty
          in
          Hashtbl.replace wi.env v (Scalar value))
  | Ast.Local_decl (ty, v) ->
      let buf =
        match Hashtbl.find_opt ctx.wg_locals v with
        | Some b -> b
        | None ->
            let len = private_array_length ty in
            let elem = elem_scalar ty in
            let zero = if Types.is_integer elem then I 0L else F 0.0 in
            let b = Array.make len zero in
            Hashtbl.replace ctx.wg_locals v b;
            b
      in
      Hashtbl.replace wi.env v (Arr buf)
  | Ast.Assign (Ast.Lvar v, e) ->
      let raw = eval ctx wi e in
      let ty = var_type ctx v in
      let value = if is_float_scalar ty then F (to_float raw) else I (to_int raw) in
      Hashtbl.replace wi.env v (Scalar value)
  | Ast.Assign (Ast.Lindex (arr, idxs), e) ->
      let raw = eval ctx wi e in
      let ivals = List.map (fun i -> Int64.to_int (to_int (eval ctx wi i))) idxs in
      let buf = lookup_array ctx wi arr in
      let i = linear_index ctx arr ivals in
      if i < 0 || i >= Array.length buf then
        err "out-of-bounds write %s[%d] (length %d)" arr i (Array.length buf);
      let elem = elem_scalar (var_type ctx arr) in
      buf.(i) <- (if Types.is_integer elem then I (to_int raw) else F (to_float raw));
      if is_global_space ctx arr then
        wi.trace <-
          { array = arr; index = i; kind = `Write; elem_bits = elem_bits_of ctx arr }
          :: wi.trace
  | Ast.If (c, t, e) ->
      if truthy (eval ctx wi c) then exec_stmts ctx wi t else exec_stmts ctx wi e
  | Ast.For (hdr, body, _) -> exec_loop ctx wi s hdr body
  | Ast.While (c, body, _) -> exec_while ctx wi s c body
  | Ast.Barrier -> () (* phase handling is done at the work-group level *)
  | Ast.Return _ -> raise Return_exc
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Expr_stmt e -> ignore (eval ctx wi e)

and exec_stmts ctx wi stmts = List.iter (exec_stmt ctx wi) stmts

and note_trip ctx id iters =
  Hashtbl.replace ctx.trip_sum id
    (iters + Option.value (Hashtbl.find_opt ctx.trip_sum id) ~default:0);
  Hashtbl.replace ctx.trip_entries id
    (1 + Option.value (Hashtbl.find_opt ctx.trip_entries id) ~default:0);
  let m = Option.value (Hashtbl.find_opt ctx.trip_max id) ~default:0 in
  if iters > m then Hashtbl.replace ctx.trip_max id iters

and exec_loop ctx wi s hdr body =
  let id = loop_id ctx.loop_table s in
  Option.iter (exec_stmt ctx wi) hdr.Ast.init;
  let iters = ref 0 in
  (try
     let continue_ = ref true in
     while !continue_ do
       let cond_ok =
         match hdr.Ast.cond with
         | Some c -> truthy (eval ctx wi c)
         | None -> true
       in
       if not cond_ok then continue_ := false
       else begin
         incr iters;
         spend ctx;
         (try exec_stmts ctx wi body with Continue_exc -> ());
         Option.iter (exec_stmt ctx wi) hdr.Ast.step
       end
     done
   with Break_exc -> ());
  note_trip ctx id !iters

and exec_while ctx wi s c body =
  let id = loop_id ctx.loop_table s in
  let iters = ref 0 in
  (try
     while truthy (eval ctx wi c) do
       incr iters;
       spend ctx;
       try exec_stmts ctx wi body with Continue_exc -> ()
     done
   with Break_exc -> ());
  note_trip ctx id !iters

(* ------------------------------------------------------------------ *)
(* Work-group / NDRange driver *)

let barriers_are_top_level (body : Ast.stmt list) =
  let nested = ref false in
  let rec check_nested stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s with
        | Ast.Barrier -> nested := true
        | Ast.If (_, t, e) ->
            check_nested t;
            check_nested e
        | Ast.For (_, b, _) | Ast.While (_, b, _) -> check_nested b
        | _ -> ())
      stmts
  in
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Barrier -> ()
      | Ast.If (_, t, e) ->
          check_nested t;
          check_nested e
      | Ast.For (_, b, _) | Ast.While (_, b, _) -> check_nested b
      | _ -> ())
    body;
  not !nested

let split_at_barriers (body : Ast.stmt list) : Ast.stmt list list =
  let phases = ref [] and current = ref [] in
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Barrier ->
          phases := List.rev !current :: !phases;
          current := []
      | other -> current := other :: !current)
    body;
  phases := List.rev !current :: !phases;
  List.rev !phases

let bind_args ctx wi =
  List.iter
    (fun (p : Ast.param) ->
      let name = p.Ast.p_name in
      match Launch.find_arg ctx.launch name with
      | Some (Launch.Scalar (Launch.Int i)) -> Hashtbl.replace wi.env name (Scalar (I i))
      | Some (Launch.Scalar (Launch.Float f)) ->
          Hashtbl.replace wi.env name (Scalar (F f))
      | Some (Launch.Buffer _) -> (
          match Hashtbl.find_opt ctx.globals name with
          | Some buf -> Hashtbl.replace wi.env name (Arr buf)
          | None -> err "buffer %s not materialized" name)
      | None -> (
          match p.Ast.p_type with
          | Types.Pipe _ -> () (* pipes are channels, not launch arguments *)
          | _ -> (
              (* __local params are allocated per work-group *)
              match Types.addr_space_of p.Ast.p_type with
              | Some Types.Local -> ()
              | _ -> err "missing argument %s" name)))
    ctx.kernel.Ast.k_params

let run_gen ~max_work_groups ~max_steps (k : Ast.kernel) (info : Sema.info)
    (launch : Launch.t) =
  let globals = Hashtbl.create 8 in
  List.iter
    (fun (name, arg) ->
      match arg with
      | Launch.Buffer { length; init } ->
          let p = List.find_opt (fun (p : Ast.param) -> p.Ast.p_name = name) k.Ast.k_params in
          let ty =
            match p with
            | Some p -> p.Ast.p_type
            | None -> err "argument %s does not match any parameter" name
          in
          Hashtbl.replace globals name (materialize_buffer name ty init length)
      | Launch.Scalar _ -> ())
    launch.Launch.args;
  let ctx =
    {
      kernel = k;
      info;
      launch;
      loop_table = number_loops k.Ast.k_body;
      globals;
      wg_locals = Hashtbl.create 8;
      trip_sum = Hashtbl.create 16;
      trip_entries = Hashtbl.create 16;
      trip_max = Hashtbl.create 16;
      pipe_reads = Hashtbl.create 4;
      pipe_writes = Hashtbl.create 4;
      cur_loop_trip = 0;
      max_steps;
      fuel = max_steps;
    }
  in
  let wgs = Launch.work_groups launch in
  (* sample work-groups across the NDRange: the first two (adjacent, so
     concurrent-CU interactions are observable) plus evenly spaced ones,
     so kernels whose work density varies with position profile
     representatively *)
  let n_wgs = List.length wgs in
  let selected =
    if max_work_groups >= n_wgs then wgs
    else
      let k = max_work_groups in
      let wanted =
        (if k >= 2 then [ 0; 1 ] else [ 0 ])
        @ List.init (max 0 (k - 2)) (fun i ->
              2 + ((i + 1) * (n_wgs - 3) / max 1 (k - 2)))
        |> List.sort_uniq compare
      in
      List.filteri (fun i _ -> List.mem i wanted) wgs
  in
  let lids = Launch.local_ids launch in
  let traces = ref [] in
  let top_level_barriers = barriers_are_top_level k.Ast.k_body in
  let phases =
    if top_level_barriers then split_at_barriers k.Ast.k_body else [ k.Ast.k_body ]
  in
  List.iter
    (fun grp ->
      Hashtbl.reset ctx.wg_locals;
      (* one persistent state per work-item of this group *)
      let states =
        List.map
          (fun lid ->
            let gid =
              {
                Launch.x = (grp.Launch.x * launch.Launch.local.Launch.x) + lid.Launch.x;
                y = (grp.Launch.y * launch.Launch.local.Launch.y) + lid.Launch.y;
                z = (grp.Launch.z * launch.Launch.local.Launch.z) + lid.Launch.z;
              }
            in
            let wi = { env = Hashtbl.create 32; trace = []; gid; lid; grp } in
            bind_args ctx wi;
            wi)
          lids
      in
      List.iter
        (fun phase ->
          List.iter
            (fun wi -> try exec_stmts ctx wi phase with Return_exc -> ())
            states)
        phases;
      List.iter (fun wi -> traces := List.rev wi.trace :: !traces) states)
    selected;
  let avg_trips =
    Hashtbl.fold
      (fun id total acc ->
        let entries = Option.value (Hashtbl.find_opt ctx.trip_entries id) ~default:1 in
        (id, float_of_int total /. float_of_int (max 1 entries)) :: acc)
      ctx.trip_sum []
    |> List.sort compare
  in
  let max_trips =
    Hashtbl.fold (fun id m acc -> (id, m) :: acc) ctx.trip_max [] |> List.sort compare
  in
  let n_profiled = List.length selected * Launch.wg_size launch in
  let pipe_counts =
    let per_wi tbl name =
      float_of_int (Option.value (Hashtbl.find_opt tbl name) ~default:0)
      /. float_of_int (max 1 n_profiled)
    in
    List.map
      (fun (name, _) ->
        (name, (per_wi ctx.pipe_reads name, per_wi ctx.pipe_writes name)))
      info.Sema.pipes
  in
  {
    avg_trips;
    max_trips;
    wi_traces = Array.of_list (List.rev !traces);
    n_work_items_profiled = n_profiled;
    buffers = Hashtbl.fold (fun name buf acc -> (name, buf) :: acc) globals [];
    pipe_counts;
  }

let run ?(max_work_groups = 2) ?(max_steps = default_max_steps) k info launch =
  run_gen ~max_work_groups ~max_steps k info launch

let run_all ?(max_steps = default_max_steps) k info launch =
  run_gen ~max_work_groups:(Launch.n_work_groups launch) ~max_steps k info launch
