(* Pipeline graphs: estimate a multi-kernel streaming pipeline end to
   end.

     dune exec examples/pipeline_graph.exe

   Three kernels connected by on-chip [pipe] channels — a producer
   scaling DRAM data into a FIFO, a compute-weighted filter, a consumer
   committing results — are wired into a kernel graph, estimated by the
   graph model (steady state + fill/drain + channel stalls), checked
   against the co-simulated ground truth, and jointly optimized (per-
   stage DSP share x per-channel FIFO depth). *)

module Graph = Flexcl_graph.Graph
module Cosim = Flexcl_graph.Cosim
module Pipelines = Flexcl_workloads.Pipelines
module Device = Flexcl_device.Device
module Trace = Flexcl_util.Trace

let () =
  let p = Pipelines.produce_filter_consume in
  let dev = Device.virtex7 in

  (* 1. wire and analyze the graph: every stage parses, type-checks and
        profiles on its own; channels are validated (directions, packet
        types, acyclicity) *)
  let t =
    match Graph.analyze (Pipelines.graph p) with
    | Ok t -> t
    | Error ds ->
        prerr_endline (Flexcl_util.Diag.render_all ds);
        exit 1
  in
  Printf.printf "graph %s: %d stages\n\n" (Graph.name t)
    (List.length t.Graph.stage_analyses);

  (* 2. estimate the default joint design point and attribute the
        cycles: the trace recomposes bitwise at every level *)
  let j = Graph.default_joint t in
  let gb, tr = Graph.explain dev t j in
  Printf.printf "%s\n" (Trace.render tr);
  Printf.printf "bottleneck: %s\n\n" (Graph.bottleneck gb);

  (* 3. co-simulated ground truth: per-stage cycle-level simulation
        composed over bounded FIFOs with backpressure *)
  let sim = Cosim.run ~seed:42 dev t j in
  Printf.printf "analytical %.0f vs co-simulated %.0f cycles (%.1f%% error)\n\n"
    gb.Graph.cycles sim.Cosim.cycles
    (100.0 *. Float.abs (gb.Graph.cycles -. sim.Cosim.cycles)
    /. sim.Cosim.cycles);

  (* 4. joint DSE: per-stage candidates staged through the specialized
        oracles, crossed with per-channel FIFO depths *)
  match Graph.best dev t Graph.default_jspace with
  | None -> print_endline "no feasible joint design point"
  | Some (b, stats) ->
      Printf.printf "best joint point (of %d; %d pruned by bound):\n  %s\n"
        stats.Graph.jtotal stats.Graph.jpruned
        (Graph.joint_to_string b.Graph.joint);
      Printf.printf "  %.0f cycles (%.2fx over default)\n" b.Graph.jcycles
        (gb.Graph.cycles /. b.Graph.jcycles)
