.PHONY: all build test check smoke serve-smoke trace-smoke pipeline-smoke suite-smoke hbm-smoke learn-smoke chaos bench bench-dse bench-dse-spec bench-serve bench-trace bench-suite promote promote-suite promote-model clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full verification: build everything, run the test suite (which includes
# the fault-injection harness in test/test_robustness.ml), then smoke-test
# the CLI's diagnostic path on a deliberately broken kernel (must exit 1,
# not crash), the serve loop on a batch with one malformed request, the
# cycle-attribution trace on two bundled kernels in both modes, the
# benchmark-suite smoke matrix against its committed baseline, and the
# seeded chaos storm against a live socket server.
check: build test smoke serve-smoke trace-smoke pipeline-smoke suite-smoke hbm-smoke learn-smoke chaos

smoke:
	@tmp=$$(mktemp --suffix=.cl); \
	printf '__kernel void f(__global float* a) {\n  int x = ;\n  a[0] = 1.0f\n}\n' > $$tmp; \
	dune exec --no-build bin/flexcl_cli.exe -- analyze --kernel $$tmp; \
	status=$$?; rm -f $$tmp; \
	if [ $$status -ne 1 ]; then \
	  echo "smoke: expected exit 1 on broken kernel, got $$status"; exit 1; \
	fi; \
	echo "smoke: broken-kernel diagnostics OK (exit 1)"

# Pipe a 4-request NDJSON batch (one line deliberately malformed) through
# `flexcl serve`: the server must answer every line in order — 3 ok, 1
# structured error — and exit 0 at EOF rather than crash or wedge.
serve-smoke:
	@out=$$(printf '%s\n' \
	  '{"id":1,"kind":"predict","workload":"hotspot/hotspot","pe":2,"cu":2,"pipeline":true}' \
	  'this line is not json' \
	  '{"id":3,"kind":"parse","source":"__kernel void f(__global float* a, int n) { a[0] = 1.0f; }"}' \
	  '{"id":4,"kind":"stats"}' \
	  | dune exec --no-build bin/flexcl_cli.exe -- serve 2>/dev/null); \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "serve-smoke: expected exit 0, got $$status"; exit 1; \
	fi; \
	total=$$(printf '%s\n' "$$out" | wc -l); \
	errors=$$(printf '%s\n' "$$out" | grep -c '"ok":false'); \
	oks=$$(printf '%s\n' "$$out" | grep -c '"ok":true'); \
	if [ $$total -ne 4 ] || [ $$errors -ne 1 ] || [ $$oks -ne 3 ]; then \
	  echo "serve-smoke: expected 3 ok + 1 error responses, got $$oks ok + $$errors error ($$total lines)"; \
	  printf '%s\n' "$$out"; exit 1; \
	fi; \
	echo "serve-smoke: 3 ok + 1 structured error, exit 0 OK"

# `flexcl explain` self-validates its trace before printing (conservation
# check, root-vs-estimate agreement, JSON round-trip) and exits 3 on any
# violation, so the smoke only has to run it and look at the surface:
# a JSON trace with the kernel at the root and Table-1 memory leaves, and
# a text tree in barrier mode on a second kernel.
trace-smoke:
	@out=$$(dune exec --no-build bin/flexcl_cli.exe -- explain \
	  -w hotspot/hotspot --pe 2 --cu 2 --pipeline --json); \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "trace-smoke: explain --json exited $$status"; exit 1; \
	fi; \
	case "$$out" in \
	  *'"trace"'*'hotspot'*'"eq":"Eq.'*) ;; \
	  *) echo "trace-smoke: JSON trace lacks the expected structure"; \
	     printf '%s\n' "$$out"; exit 1 ;; \
	esac; \
	out=$$(dune exec --no-build bin/flexcl_cli.exe -- explain \
	  -w backprop/layer --mode barrier); \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "trace-smoke: explain (barrier) exited $$status"; exit 1; \
	fi; \
	case "$$out" in \
	  *'barrier mode'*'Eq.10'*'Table-1'*) ;; \
	  *) echo "trace-smoke: text trace lacks the barrier-mode root"; \
	     printf '%s\n' "$$out"; exit 1 ;; \
	esac; \
	echo "trace-smoke: conservation-validated traces on 2 kernels OK"

# Pipeline-graph smoke (DESIGN.md §14): a conservation-checked explain
# on every bundled kernel graph (`pipeline explain` exits 3 on any
# violation, so running it is the assertion), a co-sim cross-check on
# the stream pipeline, and the deadlock guard — an unbalanced --rounds
# override must exit 3 with a diagnostic, never hang.
pipeline-smoke:
	@for g in stream/produce-filter-consume stencil/blur-sharpen; do \
	  dune exec --no-build bin/flexcl_cli.exe -- pipeline explain \
	    --graph $$g --json > /dev/null || { \
	    echo "pipeline-smoke: explain --json failed on $$g"; exit 1; }; \
	done; \
	out=$$(dune exec --no-build bin/flexcl_cli.exe -- pipeline cosim \
	  --graph stream/produce-filter-consume --seed 7); \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "pipeline-smoke: cosim exited $$status"; exit 1; \
	fi; \
	case "$$out" in \
	  *'co-sim'*'error'*) ;; \
	  *) echo "pipeline-smoke: cosim output lacks the comparison"; \
	     printf '%s\n' "$$out"; exit 1 ;; \
	esac; \
	dune exec --no-build bin/flexcl_cli.exe -- pipeline cosim \
	  --graph stream/produce-filter-consume --rounds produce=32 \
	  > /dev/null 2>&1; \
	status=$$?; \
	if [ $$status -ne 3 ]; then \
	  echo "pipeline-smoke: expected exit 3 on a deadlocking override, got $$status"; exit 1; \
	fi; \
	echo "pipeline-smoke: 2 graphs explained + co-sim cross-check + deadlock guard OK"

# Benchmark-suite smoke gate (DESIGN.md §13): run the fast subset of the
# (workload x device) matrix and diff it against the committed baseline.
# Accuracy vs simrtl is deterministic and gated tightly; warm latency is
# calibration-normalized and gated outside the measured noise band only.
# Exit 1 here means a real regression — see the REGRESSION lines.
suite-smoke:
	@dune exec --no-build bin/flexcl_cli.exe -- suite --smoke -q \
	  -o _build/BENCH_suite.smoke.json \
	  --model test/goldens/model.golden.json \
	  --compare test/goldens/BENCH_suite.baseline.json

# Learned-residual calibration gate (DESIGN.md §16): refit the committed
# full-matrix fixture and require (a) byte-identical model output — the
# whole fit path is deterministic, any drift is a bug — and (b) the
# leave-one-kernel-out gate: held-out calibrated error must strictly
# beat the raw analytical model in the mean.
learn-smoke:
	@dune exec --no-build bin/flexcl_cli.exe -- fit \
	  --from test/goldens/BENCH_suite.full.json \
	  -o _build/model.smoke.json; \
	if ! cmp -s _build/model.smoke.json test/goldens/model.golden.json; then \
	  echo "learn-smoke: refit model differs from test/goldens/model.golden.json"; \
	  echo "learn-smoke: if the fixture legitimately moved, run 'make promote-model'"; \
	  exit 1; \
	fi; \
	dune exec --no-build bin/flexcl_cli.exe -- crossval \
	  --from test/goldens/BENCH_suite.full.json --gate > /dev/null; \
	echo "learn-smoke: deterministic refit + LOKO gate OK"

# Multi-channel HBM smoke (DESIGN.md §15): a placed analyze on the
# 32-channel xcu280 must beat-or-match shape expectations, a placed
# explain on the dual-DDR4 board self-validates conservation across the
# channel-roofline node (exit 3 on any violation), and a placement that
# names a nonexistent buffer must die with a spanned usage diagnostic
# (exit 2), never a crash.
hbm-smoke:
	@out=$$(dune exec --no-build bin/flexcl_cli.exe -- analyze \
	  -w bfs/bfs_1 --device xcu280 --pe 2 --cu 2 --pipeline \
	  --placement cost=1 --placement edges=2); \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "hbm-smoke: placed analyze exited $$status"; exit 1; \
	fi; \
	case "$$out" in \
	  *'on xcu280'*'TOTAL'*) ;; \
	  *) echo "hbm-smoke: placed analyze output lacks the device header"; \
	     printf '%s\n' "$$out"; exit 1 ;; \
	esac; \
	dune exec --no-build bin/flexcl_cli.exe -- explain \
	  -w mvt/mvt --device xcku060-2ddr --pe 1 --cu 2 --pipeline \
	  --placement x1=1 --json > /dev/null; \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "hbm-smoke: placed explain exited $$status"; exit 1; \
	fi; \
	dune exec --no-build bin/flexcl_cli.exe -- analyze \
	  -w bfs/bfs_1 --device xcu280 --placement zzz=0 > /dev/null 2>&1; \
	status=$$?; \
	if [ $$status -ne 2 ]; then \
	  echo "hbm-smoke: expected exit 2 on an unknown placement buffer, got $$status"; exit 1; \
	fi; \
	echo "hbm-smoke: placed analyze + conservation-validated explain + placement guard OK"

# Chaos harness (DESIGN.md §12): >= 500 seeded trials of malformed
# frames, mid-request disconnects, deadline storms, overload bursts and
# injected worker panics against a live socket server. The hard timeout
# is part of the contract — a hang is a failure, not a slow pass.
# Replay a failure with CHAOS_SEED=<seed from the log> make chaos.
chaos:
	@dune build test/test_chaos.exe; \
	timeout 120 dune exec --no-build test/test_chaos.exe; \
	status=$$?; \
	if [ $$status -eq 124 ]; then \
	  echo "chaos: TIMED OUT after 120s — the server wedged"; exit 1; \
	elif [ $$status -ne 0 ]; then \
	  echo "chaos: failed with exit $$status"; exit $$status; \
	fi

bench:
	dune exec bench/main.exe

# Parallel sweep engine: sequential-vs-parallel timings, pruning counts
# and the pruned-best == exact-best cross-check.
bench-dse:
	dune exec bench/main.exe -- dse-parallel

# Staged model specialization: warm per-point cost of the closed-form
# specialized eval vs the full estimate (>= 5x target), rankings
# cross-checked bit-for-bit, written to BENCH_dse_specialize.json.
bench-dse-spec:
	dune exec bench/main.exe -- dse-specialize

# Regenerate test/goldens/cycles.golden from the current model — run
# deliberately when the model legitimately moves, then review the diff.
promote:
	dune exec test/promote.exe

# Serve cache payoff: cold vs cached predict latency, throughput and
# tail percentiles, written to BENCH_serve.json.
bench-serve:
	dune exec bench/main.exe -- serve-load

# Explain-vs-estimate cost on a warm cache (< 10% target), written to
# BENCH_trace.json.
bench-trace:
	dune exec bench/main.exe -- trace-overhead

# Full benchmark-suite matrix: every Rodinia and PolyBench workload on
# every device, all three estimate engines cross-checked bitwise against
# each other and for accuracy against the simrtl ground truth, written
# to BENCH_suite.json (normalized, schema-versioned).
bench-suite:
	dune exec bin/flexcl_cli.exe -- suite -o BENCH_suite.json

# Refresh the committed suite baseline from the current model — run
# deliberately when accuracy or the hot path legitimately moves, then
# review the diff like any golden (`git diff test/goldens/`).
promote-suite:
	dune exec bin/flexcl_cli.exe -- suite --smoke -q \
	  --model test/goldens/model.golden.json \
	  -o test/goldens/BENCH_suite.baseline.json

# Refresh the committed full-matrix fixture and the model fitted from it
# — the expensive, deliberate counterpart of promote-suite (the full
# (workload x device) matrix runs for several minutes). Review the diff
# alongside the Table-2 error columns in DESIGN.md §16.
promote-model:
	dune exec bin/flexcl_cli.exe -- suite -q --repeat 2 --warmup 1 \
	  -o test/goldens/BENCH_suite.full.json \
	  --fit test/goldens/model.golden.json

clean:
	dune clean
