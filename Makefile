.PHONY: all build test check smoke bench bench-dse clean

all: build

build:
	dune build @all

test:
	dune runtest

# Full verification: build everything, run the test suite (which includes
# the fault-injection harness in test/test_robustness.ml), then smoke-test
# the CLI's diagnostic path on a deliberately broken kernel (must exit 1,
# not crash).
check: build test smoke

smoke:
	@tmp=$$(mktemp --suffix=.cl); \
	printf '__kernel void f(__global float* a) {\n  int x = ;\n  a[0] = 1.0f\n}\n' > $$tmp; \
	dune exec --no-build bin/flexcl_cli.exe -- analyze --kernel $$tmp; \
	status=$$?; rm -f $$tmp; \
	if [ $$status -ne 1 ]; then \
	  echo "smoke: expected exit 1 on broken kernel, got $$status"; exit 1; \
	fi; \
	echo "smoke: broken-kernel diagnostics OK (exit 1)"

bench:
	dune exec bench/main.exe

# Parallel sweep engine: sequential-vs-parallel timings, pruning counts
# and the pruned-best == exact-best cross-check.
bench-dse:
	dune exec bench/main.exe -- dse-parallel

clean:
	dune clean
