FlexCL CLI surface lockdown: the documented exit codes (0 success,
1 input error, 2 usage error, 3 internal error) and the output shape of
the explain/trace surfaces. Numbers printed here are model outputs and
deterministic; if the model legitimately moves, refresh with
`dune runtest --auto-promote` and review the diff alongside
test/goldens/cycles.golden.

Exit 0 — clean runs:

  $ flexcl workloads > /dev/null

  $ flexcl analyze -w hotspot/hotspot --pe 2 --cu 2 --pipeline | grep -E 'TOTAL|bottleneck'
  TOTAL         : 2544 cycles = 12.72 us
  bottleneck    : global memory

Exit 1 — input errors carry a structured diagnostic:

  $ flexcl analyze --kernel /nonexistent.cl
  error[E-IO] /nonexistent.cl: No such file or directory
  [1]

  $ printf '__kernel void f(__global float* a) { int x = ; }\n' > broken.cl
  $ flexcl analyze --kernel broken.cl 2>&1 | tail -1
      |                                              ^

  $ flexcl analyze --kernel broken.cl > /dev/null 2>&1
  [1]

Exit 2 — usage errors:

  $ flexcl bogus-subcommand > /dev/null 2> /dev/null
  [2]

  $ flexcl analyze --bogus-flag > /dev/null 2> /dev/null
  [2]

Exit 3 — internal errors:

  $ flexcl serve --socket /nonexistent/dir/sock < /dev/null
  error[E-INTERNAL] Unix.Unix_error(Unix.ENOENT, "bind", "")
  [3]

explain --json emits a JSON object with the kernel, the design point,
the predicted cycles and a conservation-checked trace whose nodes carry
paper equation labels:

  $ flexcl explain -w hotspot/hotspot --pe 2 --cu 2 --pipeline --json > explain.json
  $ grep -o '"kernel":"[^"]*"' explain.json
  "kernel":"hotspot/hotspot"
  $ grep -o '"config":"[^"]*"' explain.json
  "config":"wg64 pe2 cu2 pipe pipeline"
  $ grep -o '"trace":{"name":"[^"]*"' explain.json
  "trace":{"name":"kernel hotspot (pipeline mode)"
  $ grep -o '"eq":"Eq.[^"]*"' explain.json | sort -u | head -3
  "eq":"Eq.1"
  "eq":"Eq.11"
  "eq":"Eq.11-12"

analyze --trace appends the attribution tree to the breakdown, with the
barrier-mode root on Eq.10 and Table-1 pattern leaves:

  $ flexcl analyze -w backprop/layer --mode barrier --trace > trace.txt
  $ grep -c 'Eq.10' trace.txt
  1
  $ grep -c 'Table-1' trace.txt
  5
  $ grep -E 'TOTAL' trace.txt
  TOTAL         : 408395 cycles = 2041.97 us
