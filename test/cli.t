FlexCL CLI surface lockdown: the documented exit codes (0 success,
1 input error, 2 usage error, 3 internal error) and the output shape of
the explain/trace surfaces. Numbers printed here are model outputs and
deterministic; if the model legitimately moves, refresh with
`dune runtest --auto-promote` and review the diff alongside
test/goldens/cycles.golden.

Exit 0 — clean runs:

  $ flexcl workloads > /dev/null

  $ flexcl analyze -w hotspot/hotspot --pe 2 --cu 2 --pipeline | grep -E 'TOTAL|bottleneck'
  TOTAL         : 2544 cycles = 12.72 us
  bottleneck    : global memory

Exit 1 — input errors carry a structured diagnostic:

  $ flexcl analyze --kernel /nonexistent.cl
  error[E-IO] /nonexistent.cl: No such file or directory
  [1]

  $ printf '__kernel void f(__global float* a) { int x = ; }\n' > broken.cl
  $ flexcl analyze --kernel broken.cl 2>&1 | tail -1
      |                                              ^

  $ flexcl analyze --kernel broken.cl > /dev/null 2>&1
  [1]

Exit 2 — usage errors:

  $ flexcl bogus-subcommand > /dev/null 2> /dev/null
  [2]

  $ flexcl analyze --bogus-flag > /dev/null 2> /dev/null
  [2]

Exit 3 — internal errors:

  $ flexcl serve --socket /nonexistent/dir/sock < /dev/null
  error[E-INTERNAL] Unix.Unix_error(Unix.ENOENT, "bind", "")
  [3]

explain --json emits a JSON object with the kernel, the design point,
the predicted cycles and a conservation-checked trace whose nodes carry
paper equation labels:

  $ flexcl explain -w hotspot/hotspot --pe 2 --cu 2 --pipeline --json > explain.json
  $ grep -o '"kernel":"[^"]*"' explain.json
  "kernel":"hotspot/hotspot"
  $ grep -o '"config":"[^"]*"' explain.json
  "config":"wg64 pe2 cu2 pipe pipeline"
  $ grep -o '"trace":{"name":"[^"]*"' explain.json
  "trace":{"name":"kernel hotspot (pipeline mode)"
  $ grep -o '"eq":"Eq.[^"]*"' explain.json | sort -u | head -3
  "eq":"Eq.1"
  "eq":"Eq.11"
  "eq":"Eq.11-12"

analyze --trace appends the attribution tree to the breakdown, with the
barrier-mode root on Eq.10 and Table-1 pattern leaves:

  $ flexcl analyze -w backprop/layer --mode barrier --trace > trace.txt
  $ grep -c 'Eq.10' trace.txt
  1
  $ grep -c 'Table-1' trace.txt
  5
  $ grep -E 'TOTAL' trace.txt
  TOTAL         : 408395 cycles = 2041.97 us

The benchmark-suite harness: a declarative (workload x device) matrix
with statistical regression gates. --list prints the matrix without
running it:

  $ flexcl suite --list --smoke
  +-----------------------------------+------------+----+
  | entry                             | work-items | wg |
  +===================================+============+====+
  | rodinia/hotspot/hotspot@xc7vx690t |       1024 | 64 |
  | rodinia/backprop/layer@xc7vx690t  |       1024 | 64 |
  | polybench/gemm/gemm@xc7vx690t     |       1024 | 64 |
  | polybench/mvt/mvt@xc7vx690t       |        256 | 64 |
  | rodinia/hotspot/hotspot@xcku060   |       1024 | 64 |
  +-----------------------------------+------------+----+
  5 entries

A filter matching nothing is a usage error, not an empty table:

  $ flexcl suite --list --filter nosuchentry
  error[E-CLI] --filter "nosuchentry" matches no suite entry (try 'flexcl suite --list')
  [2]

So is an unknown suite name on the workloads table:

  $ flexcl workloads --suite bogus
  error[E-CLI] unknown suite "bogus" (polybench | rodinia)
  [2]

A smoke run self-compares cleanly (exit 0) — accuracy is deterministic
and warm latency sits inside the calibration-normalized noise band:

  $ flexcl suite --smoke -o base.json -q > /dev/null 2>&1
  $ flexcl suite --smoke -o fresh.json --compare base.json -q > run.txt 2>&1
  $ grep -o 'gate: PASS' run.txt
  gate: PASS

A seeded accuracy regression fails the gate (exit 1) and names the
offending entries — a baseline claiming zero model error makes the real
errors regressions:

  $ sed 's/"err_pct":[0-9.e+-]*/"err_pct":0/g' base.json > perfect.json
  $ flexcl suite --smoke -o /dev/null --compare perfect.json -q > gate.txt 2>&1
  [1]
  $ grep 'REGRESSION \[accuracy\]' gate.txt
  REGRESSION [accuracy] rodinia/backprop/layer@xc7vx690t: model error vs simrtl rose 0.00% -> 8.84% (limit 0.50%)
  REGRESSION [accuracy] rodinia/hotspot/hotspot@xc7vx690t: model error vs simrtl rose 0.00% -> 3.96% (limit 0.50%)
  REGRESSION [accuracy] rodinia/hotspot/hotspot@xcku060: model error vs simrtl rose 0.00% -> 5.38% (limit 0.50%)
  $ grep -o 'gate: FAIL' gate.txt
  gate: FAIL

A missing or corrupt baseline is an input error (exit 1):

  $ flexcl suite --smoke -o /dev/null --compare missing.json -q
  error[E-IO] missing.json: No such file or directory
  [1]

  $ echo '{"kind":"other"}' > corrupt.json
  $ flexcl suite --smoke -o /dev/null --compare corrupt.json -q 2>&1 | grep -o 'error\[E-PARSE\]'
  error[E-PARSE]
  $ flexcl suite --smoke -o /dev/null --compare corrupt.json -q > /dev/null 2>&1
  [1]
