FlexCL CLI surface lockdown: the documented exit codes (0 success,
1 input error, 2 usage error, 3 internal error) and the output shape of
the explain/trace surfaces. Numbers printed here are model outputs and
deterministic; if the model legitimately moves, refresh with
`dune runtest --auto-promote` and review the diff alongside
test/goldens/cycles.golden.

Exit 0 — clean runs:

  $ flexcl workloads > /dev/null

  $ flexcl analyze -w hotspot/hotspot --pe 2 --cu 2 --pipeline | grep -E 'TOTAL|bottleneck'
  TOTAL         : 2544 cycles = 12.72 us
  bottleneck    : global memory

Exit 1 — input errors carry a structured diagnostic:

  $ flexcl analyze --kernel /nonexistent.cl
  error[E-IO] /nonexistent.cl: No such file or directory
  [1]

  $ printf '__kernel void f(__global float* a) { int x = ; }\n' > broken.cl
  $ flexcl analyze --kernel broken.cl 2>&1 | tail -1
      |                                              ^

  $ flexcl analyze --kernel broken.cl > /dev/null 2>&1
  [1]

Exit 2 — usage errors:

  $ flexcl bogus-subcommand > /dev/null 2> /dev/null
  [2]

  $ flexcl analyze --bogus-flag > /dev/null 2> /dev/null
  [2]

Exit 3 — internal errors:

  $ flexcl serve --socket /nonexistent/dir/sock < /dev/null
  error[E-INTERNAL] Unix.Unix_error(Unix.ENOENT, "bind", "")
  [3]

explain --json emits a JSON object with the kernel, the design point,
the predicted cycles and a conservation-checked trace whose nodes carry
paper equation labels:

  $ flexcl explain -w hotspot/hotspot --pe 2 --cu 2 --pipeline --json > explain.json
  $ grep -o '"kernel":"[^"]*"' explain.json
  "kernel":"hotspot/hotspot"
  $ grep -o '"config":"[^"]*"' explain.json
  "config":"wg64 pe2 cu2 pipe pipeline"
  $ grep -o '"trace":{"name":"[^"]*"' explain.json
  "trace":{"name":"kernel hotspot (pipeline mode)"
  $ grep -o '"eq":"Eq.[^"]*"' explain.json | sort -u | head -3
  "eq":"Eq.1"
  "eq":"Eq.11"
  "eq":"Eq.11-12"

analyze --trace appends the attribution tree to the breakdown, with the
barrier-mode root on Eq.10 and Table-1 pattern leaves:

  $ flexcl analyze -w backprop/layer --mode barrier --trace > trace.txt
  $ grep -c 'Eq.10' trace.txt
  1
  $ grep -c 'Table-1' trace.txt
  5
  $ grep -E 'TOTAL' trace.txt
  TOTAL         : 408395 cycles = 2041.97 us

Multi-channel devices and buffer→channel placement (DESIGN.md §15):
--device selects among the shipped devices and --placement (repeatable)
binds buffers to HBM channels; spreading bfs's hot buffers over
channels lowers the memory-bound estimate:

  $ flexcl analyze -w bfs/bfs_1 --device xcu280 --pe 2 --cu 2 --pipeline | grep -E '^kernel|TOTAL'
  kernel        : bfs/bfs_1 on xcu280
  TOTAL         : 21744 cycles = 72.48 us

  $ flexcl analyze -w bfs/bfs_1 --device xcu280 --placement cost=1 --placement edges=2 --pe 2 --cu 2 --pipeline | grep TOTAL
  TOTAL         : 15112 cycles = 50.37 us

explain --json carries the device, and the conservation-checked trace
records the channel-roofline term win or lose:

  $ flexcl explain -w mvt/mvt --device xcku060-2ddr --placement y1=1 --placement x1=1 --pe 1 --cu 2 --pipeline --json > hbm.json
  $ grep -o '"device":"[^"]*"' hbm.json | head -1
  "device":"xcku060-2ddr"
  $ grep -o 'channel roofline[^"\\]*' hbm.json | sort -u
  channel roofline (not binding)

A placement naming an unknown buffer or an out-of-range channel is a
usage error (exit 2) with a structured diagnostic, as is an unknown
device:

  $ flexcl analyze -w bfs/bfs_1 --device xcu280 --placement nodes=0
  error[E-USAGE] --placement: unknown buffer "nodes" in placement (kernel buffers: node_start, node_len, edges, mask, updating, visited, cost)
  [2]

  $ flexcl analyze -w bfs/bfs_1 --device xcu280 --placement cost=99 2>&1 | grep -o 'channel 99, but device has 32 channels (valid: 0..31)'
  channel 99, but device has 32 channels (valid: 0..31)
  $ flexcl analyze -w bfs/bfs_1 --device xcu280 --placement cost=99 > /dev/null 2>&1
  [2]

  $ flexcl analyze -w bfs/bfs_1 --device hal9000 > /dev/null 2>&1
  [2]

The DSE engine sweeps multi-channel devices like any other:

  $ flexcl explore -w bfs/bfs_1 --device xcu280 --top 1 | grep 'feasible design points'
  bfs/bfs_1: 192 feasible design points

The benchmark-suite harness: a declarative (workload x device) matrix
with statistical regression gates. --list prints the matrix without
running it:

  $ flexcl suite --list --smoke
  +--------------------------------------------------+------------+----+
  | entry                                            | work-items | wg |
  +==================================================+============+====+
  | rodinia/hotspot/hotspot@xc7vx690t                |       1024 | 64 |
  | rodinia/backprop/layer@xc7vx690t                 |       1024 | 64 |
  | polybench/gemm/gemm@xc7vx690t                    |       1024 | 64 |
  | polybench/mvt/mvt@xc7vx690t                      |        256 | 64 |
  | rodinia/hotspot/hotspot@xcku060                  |       1024 | 64 |
  | rodinia/bfs/bfs_1@xcu280                         |       1024 | 64 |
  | polybench/mvt/mvt@xcu280                         |        256 | 64 |
  | pipeline/stream/produce-filter-consume@xc7vx690t |       1536 | 64 |
  +--------------------------------------------------+------------+----+
  8 entries

A filter matching nothing is a usage error, not an empty table:

  $ flexcl suite --list --filter nosuchentry
  error[E-CLI] --filter "nosuchentry" matches no suite entry (try 'flexcl suite --list')
  [2]

So is an unknown suite name on the workloads table:

  $ flexcl workloads --suite bogus
  error[E-CLI] unknown suite "bogus" (polybench | rodinia)
  [2]

A smoke run self-compares cleanly (exit 0) — accuracy is deterministic
and warm latency sits inside the calibration-normalized noise band:

  $ flexcl suite --smoke -o base.json -q > /dev/null 2>&1
  $ flexcl suite --smoke -o fresh.json --compare base.json -q > run.txt 2>&1
  $ grep -o 'gate: PASS' run.txt
  gate: PASS

A seeded accuracy regression fails the gate (exit 1) and names the
offending entries — a baseline claiming zero model error makes the real
errors regressions:

  $ sed 's/"err_pct":[0-9.e+-]*/"err_pct":0/g' base.json > perfect.json
  $ flexcl suite --smoke -o /dev/null --compare perfect.json -q > gate.txt 2>&1
  [1]
  $ grep 'REGRESSION \[accuracy\]' gate.txt
  REGRESSION [accuracy] pipeline/stream/produce-filter-consume@xc7vx690t: model error vs simrtl rose 0.00% -> 18.32% (limit 0.50%)
  REGRESSION [accuracy] rodinia/backprop/layer@xc7vx690t: model error vs simrtl rose 0.00% -> 8.84% (limit 0.50%)
  REGRESSION [accuracy] rodinia/hotspot/hotspot@xc7vx690t: model error vs simrtl rose 0.00% -> 3.96% (limit 0.50%)
  REGRESSION [accuracy] rodinia/hotspot/hotspot@xcku060: model error vs simrtl rose 0.00% -> 5.38% (limit 0.50%)
  $ grep -o 'gate: FAIL' gate.txt
  gate: FAIL

A missing or corrupt baseline is an input error (exit 1):

  $ flexcl suite --smoke -o /dev/null --compare missing.json -q
  error[E-IO] missing.json: No such file or directory
  [1]

  $ echo '{"kind":"other"}' > corrupt.json
  $ flexcl suite --smoke -o /dev/null --compare corrupt.json -q 2>&1 | grep -o 'error\[E-PARSE\]'
  error[E-PARSE]
  $ flexcl suite --smoke -o /dev/null --compare corrupt.json -q > /dev/null 2>&1
  [1]

Learned-residual calibration (DESIGN.md §16): `fit` trains a ridge
model on a suite report's (estimate, simrtl) pairs, `crossval` reports
leave-one-kernel-out errors, and `predict --calibrated` serves the
corrected point estimate with its empirical interval. Artifacts are
byte-deterministic: refitting the committed full-matrix fixture must
reproduce the committed model exactly.

  $ flexcl fit --from goldens/BENCH_suite.full.json -o m1.json
  fit: 248 samples over 62 kernels (lambda 0.3, alpha 0.25)
  wrote m1.json
  $ flexcl fit --from goldens/BENCH_suite.full.json -o m2.json > /dev/null
  $ cmp m1.json m2.json
  $ cmp m1.json goldens/model.golden.json

crossval --gate passes on the full matrix (held-out calibration beats
the raw analytical model) and emits the canonical report:

  $ flexcl crossval --from goldens/BENCH_suite.full.json --gate > cv.json
  $ grep -o '"kernels":62' cv.json
  "kernels":62
  $ grep -o '"mean_raw_mape":6.19[0-9]*' cv.json
  "mean_raw_mape":6.1970684149808895
  $ grep -o '"mean_cal_mape":5.76[0-9]*' cv.json
  "mean_cal_mape":5.768117090872065

but fails (exit 1) on a corpus too small to generalize from, naming
both means:

  $ flexcl crossval --from base.json --gate > /dev/null
  crossval gate: FAIL (held-out calibrated mean 13.433% does not beat raw 4.693%)
  [1]

predict --calibrated appends the corrected estimate and its 90%
empirical interval to the uncalibrated prediction:

  $ flexcl predict -w hotspot/hotspot --pe 2 --cu 2 --pipeline --calibrated goldens/model.golden.json
  kernel       : hotspot/hotspot on xc7vx690t
  design point : wg64 pe2 cu2 pipe pipeline
  prediction   : 2544 cycles = 12.72 us
  calibrated   : 2557 cycles  [2314, 3096] (90% empirical interval)

A suite run with --model records calibrated-error columns, self-gates
cleanly, and a rerun that silently drops the model is a gate failure
(coverage shrank), not a pass:

  $ flexcl suite --smoke -q -o calbase.json --model m1.json > calrun.txt 2>&1
  $ grep -o 'calibrated mean err%' calrun.txt
  calibrated mean err%
  $ flexcl suite --smoke -q -o /dev/null --model m1.json --compare calbase.json 2>&1 | grep -o 'gate: PASS'
  gate: PASS
  $ flexcl suite --smoke -q -o /dev/null --compare calbase.json > dropped.txt 2>&1
  [1]
  $ grep -c 'REGRESSION \[calibration-schema\]' dropped.txt
  8

Exit 1 — an unreadable or corrupt report is an input error:

  $ flexcl fit --from missing.json -o /dev/null
  error[E-IO] missing.json: No such file or directory
  [1]
  $ flexcl crossval --from corrupt.json 2>&1 | grep -o 'error\[E-PARSE\]'
  error[E-PARSE]
  $ flexcl crossval --from corrupt.json > /dev/null 2>&1
  [1]

Exit 2 — a missing or corrupt model artifact is a usage error wherever
a model is accepted:

  $ flexcl predict -w hotspot/hotspot --calibrated nope.json
  error[E-USAGE] nope.json: cannot read model: No such file or directory
  [2]
  $ echo '{"kind":"other"}' > bad-model.json
  $ flexcl predict -w hotspot/hotspot --calibrated bad-model.json
  error[E-USAGE] bad-model.json: model artifact: foreign kind "other" (want "flexcl-learn-model")
  [2]
  $ flexcl suite --smoke -q -o /dev/null --model bad-model.json > /dev/null 2>&1
  [2]

The multi-kernel pipeline surface: kernel graphs over pipe channels
(DESIGN.md §14), with the same exit-code contract.

Exit 0 — list, analyze, explain, co-sim and joint exploration:

  $ flexcl pipeline list
  +-------------------------------+--------+----------+------------+-------+
  | name                          | stages | channels | work-items | depth |
  +===============================+========+==========+============+=======+
  | stream/produce-filter-consume |      3 |        2 |       1536 |    16 |
  | stencil/blur-sharpen          |      2 |        1 |       1024 |     8 |
  +-------------------------------+--------+----------+------------+-------+

  $ flexcl pipeline analyze --graph stream/produce-filter-consume | grep -E 'L_steady|L_fill|L_stall|TOTAL|bottleneck'
  L_steady    : 54784 cycles (stage filter)
  L_fill      : 7872 cycles (path produce -> filter -> consume)
  L_stall     : 0 cycles
  TOTAL       : 62656 cycles = 313.28 us
  bottleneck  : stage filter: compute depth

  $ flexcl pipeline explain --graph stencil/blur-sharpen --max-depth 2
  graph       : stencil/blur-sharpen on xc7vx690t
  joint point : blur[wg64 pe1 cu1 nopipe pipeline]; sharpen[wg64 pe1 cu1 nopipe pipeline]; smooth:d8
  prediction  : 14400 cycles = 72.00 us
  
         14400  pipeline stencil/blur-sharpen [Eq.G1]  (stages=2)
         12800  ├─ steady state [Eq.G2]
         12800  │  ├─ stage blur [Eq.G2]
             0  │  └─ stage sharpen [Eq.G2]  (cycles=12288)
          1600  ├─ fill/drain [Eq.G3]
          1600  │  └─ fill blur [Eq.G3]  (l_cu=1600)
             0  └─ channel stalls [Eq.G4]
             0     └─ channel smooth [Eq.G4]  (depth=8, skew=0)

  $ flexcl pipeline cosim --graph stream/produce-filter-consume --seed 7 | grep -E 'model|co-sim'
  model     : 62656 cycles
  co-sim    : 63349 cycles (24 work-group rounds)

  $ flexcl pipeline explore --graph stencil/blur-sharpen --top 1 | grep -E 'joint design points|bound-pruned'
  stencil/blur-sharpen: 108 joint design points
  bound-pruned search: 48/108 points evaluated (60 pruned)

pipeline explain --json carries the graph, the joint point, the
predicted cycles and the conservation-checked trace with the graph
equation labels:

  $ flexcl pipeline explain --graph stencil/blur-sharpen --json > pexplain.json
  $ grep -o '"graph":"[^"]*"' pexplain.json
  "graph":"stencil/blur-sharpen"
  $ grep -o '"joint":"[^"]*"' pexplain.json
  "joint":"blur[wg64 pe1 cu1 nopipe pipeline]; sharpen[wg64 pe1 cu1 nopipe pipeline]; smooth:d8"
  $ grep -o '"trace":{"name":"[^"]*"' pexplain.json
  "trace":{"name":"pipeline stencil/blur-sharpen"
  $ grep -o '"eq":"Eq.G[0-9]"' pexplain.json | sort -u
  "eq":"Eq.G1"
  "eq":"Eq.G2"
  "eq":"Eq.G3"
  "eq":"Eq.G4"

  $ flexcl pipeline explore --graph stencil/blur-sharpen --top 1 --json | grep -o '"cycles":[0-9]*'
  "cycles":428

Exit 1 — an unknown graph or an invalid depth are input errors:

  $ flexcl pipeline analyze --graph nope/nope
  error[E-IO] unknown pipeline graph "nope/nope" (stream/produce-filter-consume | stencil/blur-sharpen)
  [1]

  $ flexcl pipeline analyze --graph stencil/blur-sharpen --depth=-3
  error[E-CONFIG] Pipeline.estimate: channel "smooth" depth -3 < 1
  [1]

Exit 2 — a missing --graph is usage:

  $ flexcl pipeline analyze
  flexcl: --graph NAME is required (see 'flexcl pipeline list')
  [2]

Exit 3 — an unbalanced --rounds override deadlocks the work-group DES,
which is reported as an internal diagnostic, never a hang:

  $ flexcl pipeline cosim --graph stream/produce-filter-consume --rounds produce=32
  error[E-CONFIG] Pipeline.cosim: deadlock in graph "stream/produce-filter-consume" (no stage can run)
  [3]
