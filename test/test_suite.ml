(* Tests for the benchmark-suite harness (lib/suite):

   - the stats module against closed-form fixtures and qcheck
     properties (CI determinism, monotonicity in sample count);
   - byte-identical JSON round-trips of the normalized report;
   - the regression gate: symmetric/empty on identical reports, and the
     gating contract itself — a fixture baseline plus perturbed reports
     proving it passes within the noise band and fails, naming the
     offending entries, on seeded accuracy and latency regressions;
   - a real (tiny) runner pass: engines bitwise identical, accuracy
     deterministic, report round-trips. *)

module Bstats = Flexcl_suite.Bstats
module Report = Flexcl_suite.Report
module Gate = Flexcl_suite.Gate
module Sdef = Flexcl_suite.Sdef
module Runner = Flexcl_suite.Runner

let check = Alcotest.check

let feq ?(eps = 1e-9) msg a b =
  if Float.abs (a -. b) > eps *. Float.max 1.0 (Float.abs a) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

(* ------------------------------------------------------------------ *)
(* Bstats: closed-form fixtures *)

let test_mean_fixture () =
  feq "mean" (Bstats.mean [| 1.0; 2.0; 3.0; 4.0 |]) 2.5;
  feq "mean empty" (Bstats.mean [||]) 0.0;
  feq "mean singleton" (Bstats.mean [| 42.0 |]) 42.0

let test_stddev_fixture () =
  (* the classic population-stddev example: sigma = 2 exactly *)
  feq "stddev"
    (Bstats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])
    2.0;
  feq "stddev constant" (Bstats.stddev [| 5.0; 5.0; 5.0 |]) 0.0;
  feq "stddev short" (Bstats.stddev [| 1.0 |]) 0.0

let test_percentile_fixture () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  feq "p0" (Bstats.percentile_sorted 0.0 xs) 10.0;
  feq "p100" (Bstats.percentile_sorted 100.0 xs) 40.0;
  feq "p50 interpolates" (Bstats.percentile_sorted 50.0 xs) 25.0

let test_bootstrap_fixture () =
  (* constant data: every resample is the constant, CI collapses *)
  let ci = Bstats.bootstrap_ci_mean ~seed:1 [| 3.0; 3.0; 3.0; 3.0 |] in
  feq "constant lo" ci.Bstats.lo 3.0;
  feq "constant hi" ci.Bstats.hi 3.0;
  (* singleton collapses by definition *)
  let ci1 = Bstats.bootstrap_ci_mean ~seed:1 [| 7.5 |] in
  feq "singleton lo" ci1.Bstats.lo 7.5;
  feq "singleton hi" ci1.Bstats.hi 7.5

let test_bootstrap_rejects_bad_inputs () =
  let bad f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  bad (fun () -> Bstats.bootstrap_ci_mean ~seed:0 [||]);
  bad (fun () -> Bstats.bootstrap_ci_mean ~replicates:0 ~seed:0 [| 1.0; 2.0 |]);
  bad (fun () ->
      Bstats.bootstrap_ci_mean ~confidence:1.0 ~seed:0 [| 1.0; 2.0 |])

let test_bootstrap_deterministic () =
  let xs = [| 1.0; 4.0; 2.0; 8.0; 5.0; 7.0 |] in
  let a = Bstats.bootstrap_ci_mean ~seed:99 xs in
  let b = Bstats.bootstrap_ci_mean ~seed:99 xs in
  check Alcotest.bool "same seed, same CI (bitwise)" true
    (Int64.bits_of_float a.Bstats.lo = Int64.bits_of_float b.Bstats.lo
    && Int64.bits_of_float a.Bstats.hi = Int64.bits_of_float b.Bstats.hi)

(* qcheck: generic samples *)

let sample_gen =
  QCheck.(list_of_size Gen.(int_range 2 24) (float_bound_exclusive 1000.0))

let prop_ci_brackets_data =
  QCheck.Test.make ~name:"bootstrap CI lies within [min,max] of the data"
    ~count:200 sample_gen (fun xs ->
      let a = Array.of_list xs in
      let ci = Bstats.bootstrap_ci_mean ~seed:7 a in
      let lo = Array.fold_left Float.min a.(0) a in
      let hi = Array.fold_left Float.max a.(0) a in
      ci.Bstats.lo >= lo -. 1e-9
      && ci.Bstats.hi <= hi +. 1e-9
      && ci.Bstats.lo <= ci.Bstats.hi +. 1e-12)

let prop_ci_monotone_in_samples =
  (* more samples of the same empirical distribution -> a CI on the mean
     that does not widen (sigma/sqrt(n) shrinks; bootstrap noise gets a
     15% allowance) *)
  QCheck.Test.make ~name:"bootstrap CI width is monotone in sample count"
    ~count:100 sample_gen (fun xs ->
      let small = Array.of_list xs in
      let big = Array.concat [ small; small; small; small ] in
      let w1 = Bstats.ci_width (Bstats.bootstrap_ci_mean ~seed:13 small) in
      let w4 = Bstats.ci_width (Bstats.bootstrap_ci_mean ~seed:13 big) in
      w4 <= (w1 *. 1.15) +. 1e-9)

let prop_mean_shift =
  QCheck.Test.make ~name:"mean commutes with a constant shift" ~count:200
    QCheck.(pair sample_gen (float_bound_exclusive 100.0))
    (fun (xs, c) ->
      let a = Array.of_list xs in
      let shifted = Array.map (fun x -> x +. c) a in
      Float.abs (Bstats.mean shifted -. (Bstats.mean a +. c)) < 1e-6)

let prop_stddev_shift_invariant =
  QCheck.Test.make ~name:"stddev is shift-invariant" ~count:200
    QCheck.(pair sample_gen (float_bound_exclusive 100.0))
    (fun (xs, c) ->
      let a = Array.of_list xs in
      let shifted = Array.map (fun x -> x +. c) a in
      Float.abs (Bstats.stddev shifted -. Bstats.stddev a) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Report fixtures *)

let timing ?(mean = 1.0) ?(noise = 0.05) () =
  {
    Report.mean_us = mean;
    stddev_us = mean *. noise;
    ci_lo_us = mean *. (1.0 -. noise);
    ci_hi_us = mean *. (1.0 +. noise);
    samples = 12;
  }

let entry ?(suite = "rodinia") ?(workload = "hotspot/hotspot")
    ?(device = "xc7vx690t") ?(err = 4.0) ?cal ?schema ?(warm = timing ())
    ?(identical = true) () =
  {
    Report.suite;
    workload;
    device;
    config = "wg64 pe2 cu2 pipe pipeline";
    est_cycles = 2544.0;
    sim_cycles = 2447.0;
    err_pct = err;
    cal_err_pct = cal;
    learn_schema =
      (match (cal, schema) with
      | None, None -> None
      | _, Some _ -> schema
      | Some _, None -> Some Flexcl_learn.Learn.schema_version);
    engines_identical = identical;
    warm;
    features = [ ("ops_per_wi", 100.0); ("work_items", 1024.0) ];
  }

let report ?(smoke = true) ?(calibration = 1000.0) rows =
  Report.normalize
    {
      Report.smoke;
      seed = 42;
      repeat = 12;
      warmup = 3;
      inner = 64;
      calibration_us = calibration;
      analysis_cache = { Report.hits = 3; misses = 2 };
      rows;
      summaries = Report.summarize rows;
    }

let baseline_fixture () =
  report
    [
      entry ();
      entry ~workload:"backprop/layer" ~err:8.8 ~warm:(timing ~mean:0.4 ()) ();
      entry ~suite:"polybench" ~workload:"gemm/gemm" ~err:0.1
        ~warm:(timing ~mean:0.5 ()) ();
    ]

let test_report_roundtrip_bytes () =
  let r = baseline_fixture () in
  let s = Report.to_string r in
  match Report.of_string s with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok r' ->
      check Alcotest.string "byte-identical round-trip" s (Report.to_string r');
      check Alcotest.bool "structurally equal" true (r = r')

let test_report_rejects_foreign () =
  (match Report.of_string "{\"kind\":\"other\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a foreign kind");
  (match Report.of_string "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  let r = baseline_fixture () in
  let replace ~sub ~by s =
    (* first occurrence only; enough to bump the version field *)
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then None
      else if String.sub s i m = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i ->
        String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
  in
  let bumped =
    replace ~sub:"\"schema_version\":1" ~by:"\"schema_version\":999"
      (Report.to_string r)
  in
  match Report.of_string bumped with
  | Error e ->
      check Alcotest.bool "names the version" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "accepted an unknown schema version"

let test_report_normalized_order () =
  let rows =
    [
      entry ~suite:"rodinia" ~workload:"nw/nw1" ();
      entry ~suite:"polybench" ~workload:"atax/atax" ();
    ]
  in
  let r = report rows in
  check Alcotest.string "entries sorted by id" "polybench/atax/atax@xc7vx690t"
    (Report.entry_id (List.hd r.Report.rows))

(* ------------------------------------------------------------------ *)
(* Gate *)

let test_gate_identity_passes () =
  let r = baseline_fixture () in
  check Alcotest.int "self-compare is clean" 0
    (List.length (Gate.gate ~baseline:r ~current:r ()));
  (* symmetric: swapping the roles of two identical reports changes
     nothing either *)
  let r2 = baseline_fixture () in
  check Alcotest.int "forward" 0 (List.length (Gate.gate ~baseline:r ~current:r2 ()));
  check Alcotest.int "backward" 0 (List.length (Gate.gate ~baseline:r2 ~current:r ()))

let with_entry (r : Report.t) workload f =
  Report.normalize
    {
      r with
      Report.rows =
        List.map
          (fun (e : Report.entry) ->
            if e.Report.workload = workload then f e else e)
          r.Report.rows;
    }

let resummarize (r : Report.t) =
  { r with Report.summaries = Report.summarize r.Report.rows }

let test_gate_accuracy_regression () =
  let base = baseline_fixture () in
  (* +5 error points on one entry: beyond the 0.5-point tolerance *)
  let bad =
    resummarize
      (with_entry base "hotspot/hotspot" (fun e ->
           { e with Report.err_pct = e.Report.err_pct +. 5.0 }))
  in
  let offenses = Gate.gate ~baseline:base ~current:bad () in
  check Alcotest.bool "fails" true (offenses <> []);
  check Alcotest.bool "names the offending entry" true
    (List.exists
       (fun (o : Gate.offense) ->
         o.Gate.reason = Gate.Accuracy
         && o.Gate.id = "rodinia/hotspot/hotspot@xc7vx690t")
       offenses);
  (* the suite mean moved too: the per-suite gate also fires *)
  check Alcotest.bool "suite gate fires" true
    (List.exists
       (fun (o : Gate.offense) ->
         o.Gate.reason = Gate.Suite_accuracy && o.Gate.id = "rodinia")
       offenses)

let test_gate_accuracy_within_band_passes () =
  let base = baseline_fixture () in
  let ok =
    resummarize
      (with_entry base "hotspot/hotspot" (fun e ->
           { e with Report.err_pct = e.Report.err_pct +. 0.3 }))
  in
  (* 0.3 points is inside the 0.5-point per-entry tolerance, but the
     default per-suite tolerance (0.25) is tighter than 0.3/3 entries?
     no: the suite mean moves by 0.1 — inside 0.25 *)
  check Alcotest.int "within band passes" 0
    (List.length (Gate.gate ~baseline:base ~current:ok ()))

let test_gate_latency_regression () =
  let base = baseline_fixture () in
  let slow =
    with_entry base "gemm/gemm" (fun e ->
        { e with Report.warm = timing ~mean:5.0 () })
  in
  let offenses = Gate.gate ~baseline:base ~current:slow () in
  check Alcotest.bool "10x latency fails" true
    (List.exists
       (fun (o : Gate.offense) ->
         o.Gate.reason = Gate.Latency
         && o.Gate.id = "polybench/gemm/gemm@xc7vx690t")
       offenses);
  (* 1.3x stays inside the +150% floor *)
  let mild =
    with_entry base "gemm/gemm" (fun e ->
        { e with Report.warm = timing ~mean:0.65 () })
  in
  check Alcotest.int "1.3x passes" 0
    (List.length (Gate.gate ~baseline:base ~current:mild ()))

let test_gate_latency_calibration_normalizes () =
  let base = baseline_fixture () in
  (* twice the latency on a machine measured twice as slow: normalized
     latency is unchanged, so the gate stays quiet *)
  let moved =
    {
      (with_entry base "gemm/gemm" (fun e ->
           { e with Report.warm = timing ~mean:1.0 () }))
      with
      Report.calibration_us = 2000.0;
    }
  in
  let only_lat =
    List.filter
      (fun (o : Gate.offense) -> o.Gate.reason = Gate.Latency)
      (Gate.gate ~baseline:base ~current:moved ())
  in
  check Alcotest.int "slow machine does not gate" 0 (List.length only_lat)

let test_gate_engine_divergence () =
  let base = baseline_fixture () in
  let diverged =
    with_entry base "hotspot/hotspot" (fun e ->
        { e with Report.engines_identical = false })
  in
  check Alcotest.bool "bitwise divergence always fails" true
    (List.exists
       (fun (o : Gate.offense) -> o.Gate.reason = Gate.Identity)
       (Gate.gate ~baseline:base ~current:diverged ()))

let test_gate_missing_entry () =
  let base = baseline_fixture () in
  let shrunk =
    resummarize
      {
        base with
        Report.rows =
          List.filter
            (fun (e : Report.entry) -> e.Report.workload <> "gemm/gemm")
            base.Report.rows;
      }
  in
  check Alcotest.bool "shrunk coverage fails on same-kind runs" true
    (List.exists
       (fun (o : Gate.offense) -> o.Gate.reason = Gate.Missing)
       (Gate.gate ~baseline:base ~current:shrunk ()));
  (* a smoke run against a full baseline legitimately covers a subset *)
  let full_base = { base with Report.smoke = false } in
  check Alcotest.bool "cross-kind comparisons do not gate on coverage" true
    (not
       (List.exists
          (fun (o : Gate.offense) -> o.Gate.reason = Gate.Missing)
          (Gate.gate ~baseline:full_base ~current:shrunk ())))

(* calibrated-column gating: per-entry regressions, schema-mismatch and
   dropped-column coverage semantics, and the report-wide rule that the
   calibrated mean must strictly beat the raw analytical mean *)

let calibrated_fixture () =
  report
    [
      entry ~err:4.0 ~cal:2.0 ();
      entry ~workload:"backprop/layer" ~err:8.8 ~cal:5.0
        ~warm:(timing ~mean:0.4 ()) ();
      entry ~suite:"polybench" ~workload:"gemm/gemm" ~err:0.1 ~cal:0.2
        ~warm:(timing ~mean:0.5 ()) ();
    ]

let test_gate_calibration_identity () =
  let r = calibrated_fixture () in
  check Alcotest.int "calibrated self-compare is clean" 0
    (List.length (Gate.gate ~baseline:r ~current:r ()))

let test_gate_calibration_regression () =
  let base = calibrated_fixture () in
  (* +5 calibrated points on one entry, raw column untouched *)
  let bad =
    resummarize
      (with_entry base "hotspot/hotspot" (fun e ->
           { e with Report.cal_err_pct = Some 7.0 }))
  in
  let offenses = Gate.gate ~baseline:base ~current:bad () in
  check Alcotest.bool "calibration offense names the entry" true
    (List.exists
       (fun (o : Gate.offense) ->
         o.Gate.reason = Gate.Calibration
         && o.Gate.id = "rodinia/hotspot/hotspot@xc7vx690t")
       offenses);
  (* inside the tolerance band: quiet *)
  let ok =
    resummarize
      (with_entry base "hotspot/hotspot" (fun e ->
           { e with Report.cal_err_pct = Some 2.3 }))
  in
  check Alcotest.int "0.3 calibrated points pass" 0
    (List.length (Gate.gate ~baseline:base ~current:ok ()))

let test_gate_calibration_schema_mismatch () =
  let base = calibrated_fixture () in
  let bumped =
    resummarize
      (with_entry base "gemm/gemm" (fun e ->
           { e with Report.learn_schema = Some 999 }))
  in
  let fires r =
    List.exists
      (fun (o : Gate.offense) -> o.Gate.reason = Gate.Calibration_schema)
      r
  in
  check Alcotest.bool "schema bump gates" true
    (fires (Gate.gate ~baseline:base ~current:bumped ()));
  (* schema mismatches gate even across smoke/full comparisons *)
  let full_base = resummarize { base with Report.smoke = false } in
  check Alcotest.bool "schema bump gates cross-kind too" true
    (fires (Gate.gate ~baseline:full_base ~current:bumped ()))

let test_gate_calibration_dropped_column () =
  let base = calibrated_fixture () in
  let dropped =
    resummarize
      (with_entry base "hotspot/hotspot" (fun e ->
           { e with Report.cal_err_pct = None; learn_schema = None }))
  in
  check Alcotest.bool "dropped calibrated column gates on same-kind runs"
    true
    (List.exists
       (fun (o : Gate.offense) ->
         o.Gate.reason = Gate.Calibration_schema
         && o.Gate.id = "rodinia/hotspot/hotspot@xc7vx690t")
       (Gate.gate ~baseline:base ~current:dropped ()));
  (* a smoke run against a full calibrated baseline may drop columns *)
  let full_base = resummarize { base with Report.smoke = false } in
  check Alcotest.bool "cross-kind drop does not gate" true
    (not
       (List.exists
          (fun (o : Gate.offense) -> o.Gate.reason = Gate.Calibration_schema)
          (Gate.gate ~baseline:full_base ~current:dropped ())))

let test_gate_calibration_must_beat_raw () =
  let base = calibrated_fixture () in
  (* calibrated means must strictly beat raw: push every calibrated
     column above its raw column while keeping each within the per-entry
     tolerance of a baseline built the same way *)
  let worse (e : Report.entry) =
    { e with Report.cal_err_pct = Some (e.Report.err_pct +. 0.1) }
  in
  let cur = resummarize { base with Report.rows = List.map worse base.Report.rows } in
  let offenses = Gate.gate ~baseline:cur ~current:cur () in
  check Alcotest.bool "calibrated >= raw mean fails report-wide" true
    (List.exists
       (fun (o : Gate.offense) ->
         o.Gate.reason = Gate.Calibration && o.Gate.id = "suite")
       offenses);
  (* the healthy fixture (calibrated below raw in the mean) stays clean *)
  check Alcotest.int "calibrated < raw mean passes" 0
    (List.length (Gate.gate ~baseline:base ~current:base ()))

let prop_gate_self_compare_clean =
  (* any well-formed fixture report gates cleanly against itself *)
  QCheck.Test.make ~name:"gate is empty on identical reports" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 6)
           (triple (float_bound_exclusive 50.0)
              (float_bound_exclusive 100.0) bool))
        (float_bound_exclusive 5000.0))
    (fun (rows, calib) ->
      let rows =
        List.mapi
          (fun i (err, warm_mean, identical) ->
            entry
              ~workload:(Printf.sprintf "bench%d/kern" i)
              ~err
              ~warm:(timing ~mean:(warm_mean +. 0.001) ())
              ~identical ())
          rows
      in
      let r = report ~calibration:(calib +. 1.0) rows in
      (* entries with diverged engines always gate — filter to the
         self-consistent case the property is about *)
      let r =
        {
          r with
          Report.rows =
            List.filter
              (fun (e : Report.entry) -> e.Report.engines_identical)
              r.Report.rows;
        }
      in
      Gate.gate ~baseline:r ~current:r () = [])

(* ------------------------------------------------------------------ *)
(* Runner: a real (tiny) pass over one workload per suite *)

let tiny_opts =
  { Runner.default_opts with repeat = 4; warmup = 1; inner = 8; smoke = true }

let test_runner_smoke () =
  let entries =
    Sdef.filter "@xc7vx690t"
      (Sdef.smoke ())
  in
  let entries =
    List.filter
      (fun (e : Sdef.entry) ->
        List.mem (Sdef.workload_name e) [ "hotspot/hotspot"; "gemm/gemm" ])
      entries
  in
  check Alcotest.int "two entries selected" 2 (List.length entries);
  let r = Runner.run tiny_opts entries in
  check Alcotest.int "two rows measured" 2 (List.length r.Report.rows);
  List.iter
    (fun (e : Report.entry) ->
      check Alcotest.bool
        (Printf.sprintf "%s engines bitwise identical" (Report.entry_id e))
        true e.Report.engines_identical;
      check Alcotest.bool "error is finite" true (Float.is_finite e.Report.err_pct);
      check Alcotest.bool "simulator ran" true (e.Report.sim_cycles > 0.0);
      check Alcotest.bool "warm timing positive" true
        (e.Report.warm.Report.mean_us > 0.0);
      check Alcotest.bool "CI brackets the mean" true
        (e.Report.warm.Report.ci_lo_us <= e.Report.warm.Report.mean_us +. 1e-9
        && e.Report.warm.Report.mean_us <= e.Report.warm.Report.ci_hi_us +. 1e-9);
      check Alcotest.bool "features recorded" true (e.Report.features <> []))
    r.Report.rows;
  (* accuracy columns are deterministic: a second run reproduces them *)
  let r2 = Runner.run tiny_opts entries in
  List.iter2
    (fun (a : Report.entry) (b : Report.entry) ->
      check Alcotest.bool "est deterministic" true
        (Int64.bits_of_float a.Report.est_cycles
        = Int64.bits_of_float b.Report.est_cycles);
      check Alcotest.bool "sim deterministic" true
        (Int64.bits_of_float a.Report.sim_cycles
        = Int64.bits_of_float b.Report.sim_cycles))
    r.Report.rows r2.Report.rows;
  (* the emitted report round-trips byte-identically *)
  let s = Report.to_string r in
  match Report.of_string s with
  | Error e -> Alcotest.failf "runner report does not decode: %s" e
  | Ok r' ->
      check Alcotest.string "runner report round-trips" s (Report.to_string r');
      (* and gates cleanly against itself *)
      check Alcotest.int "self-gate clean" 0
        (List.length (Gate.gate ~baseline:r ~current:r' ()))

let test_smoke_subset_is_declared () =
  (* the smoke matrix covers both suites, the primary + secondary
     devices and the HBM device (memory-bound gate entries) *)
  let entries = Sdef.smoke () in
  let suites = List.sort_uniq compare (List.map (fun e -> e.Sdef.suite) entries) in
  let devs =
    List.sort_uniq compare (List.map (fun e -> e.Sdef.device_name) entries)
  in
  check (Alcotest.list Alcotest.string) "suites"
    [ "pipeline"; "polybench"; "rodinia" ]
    suites;
  check (Alcotest.list Alcotest.string) "devices"
    [ "xc7vx690t"; "xcku060"; "xcu280" ]
    devs;
  (* full matrix = (every workload + every pipeline graph) x every device *)
  let full = Sdef.full () in
  let n_devices = List.length Sdef.devices in
  check Alcotest.int "4 registered devices" 4 n_devices;
  let n_pipelines = List.length Flexcl_workloads.Pipelines.all in
  check Alcotest.int "full matrix size" ((60 + n_pipelines) * n_devices)
    (List.length full)

let suite =
  [
    Alcotest.test_case "bstats mean fixture" `Quick test_mean_fixture;
    Alcotest.test_case "bstats stddev fixture" `Quick test_stddev_fixture;
    Alcotest.test_case "bstats percentile fixture" `Quick test_percentile_fixture;
    Alcotest.test_case "bstats bootstrap fixtures" `Quick test_bootstrap_fixture;
    Alcotest.test_case "bstats bootstrap rejects bad inputs" `Quick
      test_bootstrap_rejects_bad_inputs;
    Alcotest.test_case "bstats bootstrap deterministic" `Quick
      test_bootstrap_deterministic;
    QCheck_alcotest.to_alcotest prop_ci_brackets_data;
    QCheck_alcotest.to_alcotest prop_ci_monotone_in_samples;
    QCheck_alcotest.to_alcotest prop_mean_shift;
    QCheck_alcotest.to_alcotest prop_stddev_shift_invariant;
    Alcotest.test_case "report round-trip is byte-identical" `Quick
      test_report_roundtrip_bytes;
    Alcotest.test_case "report rejects foreign input" `Quick
      test_report_rejects_foreign;
    Alcotest.test_case "report normalizes entry order" `Quick
      test_report_normalized_order;
    Alcotest.test_case "gate clean on identical reports" `Quick
      test_gate_identity_passes;
    Alcotest.test_case "gate fails on seeded accuracy regression" `Quick
      test_gate_accuracy_regression;
    Alcotest.test_case "gate passes within the accuracy band" `Quick
      test_gate_accuracy_within_band_passes;
    Alcotest.test_case "gate fails on seeded latency regression" `Quick
      test_gate_latency_regression;
    Alcotest.test_case "gate normalizes by calibration" `Quick
      test_gate_latency_calibration_normalizes;
    Alcotest.test_case "gate fails on engine divergence" `Quick
      test_gate_engine_divergence;
    Alcotest.test_case "gate fails on missing entries" `Quick
      test_gate_missing_entry;
    Alcotest.test_case "gate clean on identical calibrated reports" `Quick
      test_gate_calibration_identity;
    Alcotest.test_case "gate fails on calibrated-error regression" `Quick
      test_gate_calibration_regression;
    Alcotest.test_case "gate fails on learn-schema mismatch" `Quick
      test_gate_calibration_schema_mismatch;
    Alcotest.test_case "gate fails on dropped calibrated column" `Quick
      test_gate_calibration_dropped_column;
    Alcotest.test_case "gate requires calibrated to beat raw" `Quick
      test_gate_calibration_must_beat_raw;
    QCheck_alcotest.to_alcotest prop_gate_self_compare_clean;
    Alcotest.test_case "runner measures the smoke subset" `Quick
      test_runner_smoke;
    Alcotest.test_case "declarative matrix shape" `Quick
      test_smoke_subset_is_declared;
  ]
