(* Learned-residual calibration tests (DESIGN.md §16): qcheck properties
   of the closed-form solver (Cholesky reconstruction, ridge shrinkage,
   exact-linear recovery, standardizer inverse, permutation-invariant
   fits), the LOKO cross-validation harness (full cover, no leakage,
   interval coverage on synthetic noise, byte-determinism), the model
   artifact (byte-identical round-trips, foreign kinds and schema
   versions rejected with a Diag), and the headline acceptance claim:
   on the committed full-matrix fixture, per-kernel-held-out calibrated
   error strictly beats the raw analytical error in the mean. *)

module Learn = Flexcl_learn.Learn
module Report = Flexcl_suite.Report
module Runner = Flexcl_suite.Runner
module Prng = Flexcl_util.Prng
module Diag = Flexcl_util.Diag

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Linear-algebra properties *)

(* a random SPD matrix: A = M Mᵀ + I, entries of M in [-1, 1] *)
let gen_spd =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let* cells = list_size (return (n * n)) (float_range (-1.0) 1.0) in
  let m = Array.make_matrix n n 0.0 in
  List.iteri (fun i v -> m.(i / n).(i mod n) <- v) cells;
  let a = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let s = ref (if i = j then 1.0 else 0.0) in
      for k = 0 to n - 1 do
        s := !s +. (m.(i).(k) *. m.(j).(k))
      done;
      a.(i).(j) <- !s
    done
  done;
  return a

let print_mat a =
  String.concat "; "
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat ","
              (Array.to_list (Array.map (Printf.sprintf "%g") row)))
          a))

let prop_cholesky_reconstructs =
  QCheck.Test.make ~name:"cholesky: L Lᵀ reconstructs A within 1e-9"
    ~count:300
    (QCheck.make ~print:print_mat gen_spd)
    (fun a ->
      let n = Array.length a in
      match Learn.cholesky a with
      | Error e -> QCheck.Test.fail_reportf "SPD matrix rejected: %s" e
      | Ok l ->
          let ok = ref true in
          for i = 0 to n - 1 do
            for j = 0 to n - 1 do
              let s = ref 0.0 in
              for k = 0 to n - 1 do
                s := !s +. (l.(i).(k) *. l.(j).(k))
              done;
              if Float.abs (!s -. a.(i).(j)) > 1e-9 then ok := false
            done
          done;
          !ok)

let prop_solve_spd_solves =
  QCheck.Test.make ~name:"solve_spd: A x = b residual within 1e-8" ~count:300
    (QCheck.make
       ~print:(fun (a, _) -> print_mat a)
       QCheck.Gen.(
         let* a = gen_spd in
         let* b =
           list_size (return (Array.length a)) (float_range (-10.0) 10.0)
         in
         return (a, Array.of_list b)))
    (fun (a, b) ->
      let n = Array.length a in
      match Learn.solve_spd a b with
      | Error e -> QCheck.Test.fail_reportf "solve failed: %s" e
      | Ok x ->
          let ok = ref true in
          for i = 0 to n - 1 do
            let s = ref 0.0 in
            for k = 0 to n - 1 do
              s := !s +. (a.(i).(k) *. x.(k))
            done;
            if Float.abs (!s -. b.(i)) > 1e-8 then ok := false
          done;
          !ok)

let test_cholesky_rejects_indefinite () =
  (match Learn.cholesky [| [| 0.0 |] |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a singular matrix");
  match Learn.cholesky [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an indefinite matrix"

(* ------------------------------------------------------------------ *)
(* Synthetic samples *)

let feature_names =
  [ "work_items"; "ops_per_wi"; "loads_per_wi"; "barriers"; "loop_depth" ]

(* [n] samples over [kernels] distinct workloads with a seeded feature
   vector and a caller-chosen log-residual; deterministic in [seed]. *)
let synth_samples ?(kernels = 8) ?(device = Thelpers.virtex7) ~n ~seed resid =
  let g = Prng.create seed in
  List.init n (fun i ->
      let features =
        List.map (fun name -> (name, 1.0 +. Prng.float g 1000.0)) feature_names
      in
      let est = 1000.0 +. Prng.float g 100000.0 in
      let r = resid i features in
      {
        Learn.workload = Printf.sprintf "synth/k%d" (i mod kernels);
        device;
        est_cycles = est;
        sim_cycles = est *. Float.exp r;
        features;
      })

let fit_exn ?lambda ?alpha samples =
  match Learn.fit ?lambda ?alpha samples with
  | Ok m -> m
  | Error d -> Alcotest.failf "fit failed: %s" (Diag.render d)

(* ------------------------------------------------------------------ *)
(* Fit properties *)

let test_ridge_shrinks_to_zero () =
  (* λ → ∞ drives every standardized weight to zero: the model predicts
     a constant (the α-scaled mean residual) everywhere *)
  let samples =
    synth_samples ~n:40 ~seed:7 (fun i _ -> 0.3 +. (0.01 *. float_of_int i))
  in
  let m = fit_exn ~lambda:1e12 ~alpha:1.0 samples in
  Array.iter
    (fun w ->
      check Alcotest.bool "weight shrunk to zero" true (Float.abs w < 1e-6))
    m.Learn.weights;
  let mean_r =
    List.fold_left (fun acc s -> acc +. Learn.residual s) 0.0 samples
    /. float_of_int (List.length samples)
  in
  check (Alcotest.float 1e-6) "intercept is the mean residual" mean_r
    m.Learn.intercept

let test_exact_linear_recovery () =
  (* when the residual is exactly linear in the expanded features, a
     tiny-λ unshrunk fit reproduces it on the training rows *)
  let lin features =
    let x = Learn.expand ~device:Thelpers.virtex7 features in
    List.fold_left
      (fun acc (name, v) ->
        match name with
        | "log1p_ops_per_wi" -> acc +. (0.2 *. v)
        | "log1p_work_items" -> acc -. (0.05 *. v)
        | _ -> acc)
      0.1 x
  in
  let samples = synth_samples ~n:48 ~seed:11 (fun _ f -> lin f) in
  let m = fit_exn ~lambda:1e-9 ~alpha:1.0 samples in
  List.iter
    (fun (s : Learn.sample) ->
      let p =
        Learn.predict_residual m ~device:s.Learn.device s.Learn.features
      in
      check (Alcotest.float 1e-4) "recovers the linear residual"
        (Learn.residual s) p)
    samples

let prop_standardize_roundtrip =
  QCheck.Test.make ~name:"unstandardize ∘ standardize is the identity"
    ~count:300
    QCheck.(
      make
        ~print:(fun (rows, x) ->
          Printf.sprintf "%d rows, x0 %g" (List.length rows)
            (match x with [] -> 0.0 | v :: _ -> v))
        Gen.(
          let* d = int_range 1 6 in
          let* rows =
            list_size (int_range 2 10)
              (list_size (return d) (float_range (-1e4) 1e4))
          in
          let* x = list_size (return d) (float_range (-1e4) 1e4) in
          return (rows, x)))
    (fun (rows, x) ->
      let s =
        Learn.standardizer_of
          (Array.of_list (List.map Array.of_list rows))
      in
      let x = Array.of_list x in
      let back = Learn.unstandardize s (Learn.standardize s x) in
      Array.for_all2
        (fun a b -> Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a))
        x back)

let test_fit_permutation_invariant () =
  let samples =
    synth_samples ~n:30 ~seed:23 (fun i _ ->
        0.2 *. Float.sin (float_of_int i))
  in
  let bytes l = Learn.model_to_string (fit_exn l) in
  let reference = bytes samples in
  check Alcotest.string "reversed order, same bytes" reference
    (bytes (List.rev samples));
  let rotated = List.tl samples @ [ List.hd samples ] in
  check Alcotest.string "rotated order, same bytes" reference (bytes rotated);
  let arr = Array.of_list samples in
  Prng.shuffle (Prng.create 5) arr;
  check Alcotest.string "shuffled order, same bytes" reference
    (bytes (Array.to_list arr))

let test_fit_rejects_unusable () =
  (match Learn.fit [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fit accepted zero samples");
  let bad =
    List.map
      (fun (s : Learn.sample) -> { s with Learn.sim_cycles = 0.0 })
      (synth_samples ~n:4 ~seed:3 (fun _ _ -> 0.0))
  in
  match Learn.fit bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fit accepted all-unusable samples"

(* ------------------------------------------------------------------ *)
(* LOKO cross-validation harness *)

let test_loko_covers_every_kernel_once () =
  let samples =
    synth_samples ~kernels:7 ~n:35 ~seed:13 (fun i _ -> 0.01 *. float_of_int i)
  in
  let folds = Learn.loko_folds samples in
  check Alcotest.int "one fold per distinct workload" 7 (List.length folds);
  let held = List.concat_map (fun (_, _, h) -> h) folds in
  check Alcotest.int "every sample held out exactly once"
    (List.length samples) (List.length held);
  List.iter
    (fun (kernel, train, held_out) ->
      check Alcotest.bool "held-out rows all belong to the fold kernel" true
        (List.for_all
           (fun (s : Learn.sample) -> s.Learn.workload = kernel)
           held_out);
      (* no leakage: the fold kernel never appears in its train split *)
      check Alcotest.bool "no leakage into the train split" true
        (List.for_all
           (fun (s : Learn.sample) -> s.Learn.workload <> kernel)
           train);
      check Alcotest.int "train + held-out partition the samples"
        (List.length samples)
        (List.length train + List.length held_out))
    folds

let crossval_exn ?lambda ?alpha samples =
  match Learn.crossval ?lambda ?alpha samples with
  | Ok cv -> cv
  | Error d -> Alcotest.failf "crossval failed: %s" (Diag.render d)

let test_interval_coverage_on_synthetic_noise () =
  (* homoscedastic seeded noise: the empirical 5/95 interval must cover
     at least (nominal − discreteness slack) of the held-out errors *)
  let g = Prng.create 97 in
  let samples =
    synth_samples ~kernels:10 ~n:200 ~seed:31 (fun _ _ ->
        Prng.gaussian g ~mu:0.1 ~sigma:0.2)
  in
  let cv = crossval_exn samples in
  check Alcotest.int "every usable row scored" 200 cv.Learn.n;
  check Alcotest.bool "quantiles ordered" true
    (cv.Learn.cv_q_lo <= cv.Learn.cv_q_hi);
  check Alcotest.bool
    (Printf.sprintf "achieved coverage %.3f ≥ nominal − 0.02"
       cv.Learn.achieved_coverage)
    true
    (cv.Learn.achieved_coverage >= cv.Learn.cv_coverage -. 0.02)

let test_crossval_byte_deterministic () =
  let samples =
    synth_samples ~kernels:6 ~n:48 ~seed:41 (fun i _ ->
        0.1 *. Float.cos (float_of_int i))
  in
  let bytes l = Learn.cv_to_string (crossval_exn l) in
  let reference = bytes samples in
  check Alcotest.string "repeat run, same bytes" reference (bytes samples);
  check Alcotest.string "permuted samples, same bytes" reference
    (bytes (List.rev samples))

let test_crossval_needs_two_kernels () =
  match Learn.crossval (synth_samples ~kernels:1 ~n:6 ~seed:2 (fun _ _ -> 0.1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "crossval accepted a single-kernel corpus"

(* ------------------------------------------------------------------ *)
(* Model artifact *)

let test_model_roundtrip_bytes () =
  let m = fit_exn (synth_samples ~n:24 ~seed:19 (fun i _ -> 0.02 *. float_of_int i)) in
  let s = Learn.model_to_string m in
  check Alcotest.bool "artifact ends in one newline" true
    (String.length s > 0 && s.[String.length s - 1] = '\n');
  match Learn.model_of_string s with
  | Error d -> Alcotest.failf "decode failed: %s" (Diag.render d)
  | Ok m' ->
      check Alcotest.string "byte-identical round-trip" s
        (Learn.model_to_string m')

let test_model_rejects_foreign () =
  let reject what s =
    match Learn.model_of_string s with
    | Error d ->
        check Alcotest.bool
          (what ^ " rejection carries a code")
          true
          (String.length (Diag.render d) > 0)
    | Ok _ -> Alcotest.failf "accepted %s" what
  in
  reject "garbage" "not json";
  reject "a foreign kind" {|{"kind":"flexcl-suite-report","schema_version":1}|};
  let m = fit_exn (synth_samples ~n:12 ~seed:29 (fun _ _ -> 0.1)) in
  let bumped =
    let s = Learn.model_to_string m in
    let sub = "\"schema_version\":1" and by = "\"schema_version\":999" in
    let n = String.length s and m = String.length sub in
    let rec find i =
      if i + m > n then s
      else if String.sub s i m = sub then
        String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
      else find (i + 1)
    in
    find 0
  in
  reject "an unknown schema version" bumped

(* ------------------------------------------------------------------ *)
(* The committed fixtures: fit determinism and the acceptance claim *)

let golden_path name =
  let candidates =
    [
      Filename.concat "goldens" name;
      Filename.concat (Filename.concat "test" "goldens") name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let read_file path = In_channel.with_open_bin path In_channel.input_all

let full_fixture_samples () =
  match Report.of_string (read_file (golden_path "BENCH_suite.full.json")) with
  | Error e -> Alcotest.failf "full fixture unreadable: %s" e
  | Ok r -> Runner.samples_of_report r

let test_model_golden_roundtrip () =
  let s = read_file (golden_path "model.golden.json") in
  match Learn.model_of_string s with
  | Error d -> Alcotest.failf "golden model unreadable: %s" (Diag.render d)
  | Ok m ->
      check Alcotest.string "committed model round-trips byte-identically" s
        (Learn.model_to_string m);
      check Alcotest.bool "trained on the full matrix" true
        (m.Learn.n_train > 100 && List.length m.Learn.kernels > 30)

let test_fit_matches_committed_model () =
  (* `make promote-model` discipline: re-fitting the committed fixture
     must reproduce the committed model artifact byte for byte *)
  let m = fit_exn (full_fixture_samples ()) in
  check Alcotest.string "fit of the fixture = committed bytes"
    (read_file (golden_path "model.golden.json"))
    (Learn.model_to_string m)

let test_acceptance_loko_beats_raw () =
  (* the PR's headline acceptance criterion, pinned: on the full matrix,
     per-kernel-held-out calibrated error strictly improves the mean *)
  let cv = crossval_exn (full_fixture_samples ()) in
  check Alcotest.bool
    (Printf.sprintf "LOKO calibrated MAPE %.3f%% < raw %.3f%%"
       cv.Learn.mean_cal_mape cv.Learn.mean_raw_mape)
    true
    (cv.Learn.mean_cal_mape < cv.Learn.mean_raw_mape);
  check Alcotest.bool "covers every suite kernel" true (cv.Learn.n_kernels >= 50)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_cholesky_reconstructs;
    QCheck_alcotest.to_alcotest prop_solve_spd_solves;
    Alcotest.test_case "cholesky rejects non-SPD input" `Quick
      test_cholesky_rejects_indefinite;
    Alcotest.test_case "ridge shrinks weights to zero as λ → ∞" `Quick
      test_ridge_shrinks_to_zero;
    Alcotest.test_case "exact-linear residuals are recovered" `Quick
      test_exact_linear_recovery;
    QCheck_alcotest.to_alcotest prop_standardize_roundtrip;
    Alcotest.test_case "fit is permutation-invariant on bytes" `Quick
      test_fit_permutation_invariant;
    Alcotest.test_case "fit rejects unusable corpora" `Quick
      test_fit_rejects_unusable;
    Alcotest.test_case "LOKO folds cover every kernel exactly once" `Quick
      test_loko_covers_every_kernel_once;
    Alcotest.test_case "interval coverage on synthetic noise" `Quick
      test_interval_coverage_on_synthetic_noise;
    Alcotest.test_case "crossval is byte-deterministic" `Quick
      test_crossval_byte_deterministic;
    Alcotest.test_case "crossval needs two kernels" `Quick
      test_crossval_needs_two_kernels;
    Alcotest.test_case "model artifact round-trips byte-identically" `Quick
      test_model_roundtrip_bytes;
    Alcotest.test_case "foreign kinds and versions are rejected" `Quick
      test_model_rejects_foreign;
    Alcotest.test_case "committed model golden round-trips" `Quick
      test_model_golden_roundtrip;
    Alcotest.test_case "fit reproduces the committed model bytes" `Slow
      test_fit_matches_committed_model;
    Alcotest.test_case "acceptance: LOKO calibrated beats raw" `Slow
      test_acceptance_loko_beats_raw;
  ]
