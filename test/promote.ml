(* Regenerate test/goldens/cycles.golden from the current model.

   Run deliberately, by hand, when the model legitimately moves:

     make promote        (dune exec test/promote.exe)

   then review the diff — every changed line is a workload whose best
   default-space design point or its cycle count moved, which is exactly
   what the golden table exists to make loud. *)

let () =
  let out =
    match Sys.argv with
    | [| _; path |] -> path
    | _ -> Filename.concat (Filename.concat "test" "goldens") "cycles.golden"
  in
  let rows = Gen.golden_cycles_rows () in
  let oc = open_out out in
  output_string oc
    "# Best default-space design point per bundled workload on Virtex-7\n";
  output_string oc
    "# (default options). Format: workload | config | cycles (%.17g).\n";
  output_string oc "# Regenerate deliberately with `make promote`.\n";
  List.iter (fun row -> output_string oc (Gen.golden_line row ^ "\n")) rows;
  close_out oc;
  Printf.printf "promote: wrote %d rows to %s\n" (List.length rows) out
